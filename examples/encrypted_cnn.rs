//! Fully encrypted CNN inference — the paper's Fig. 2 pipeline end to
//! end on a single packed ciphertext.
//!
//! Unlike `private_inference` (CryptoNets batching: one neuron across a
//! batch, no rotations), this example packs *one* image into one
//! ciphertext and runs every layer homomorphically:
//!
//! * convolution / batch-norm / pooling / linear → probed into
//!   Halevi–Shoup diagonal matrices, evaluated with baby-step/giant-step
//!   rotations (1 level each);
//! * ReLU → PAF with Static Scaling, the `1/s` and `s` multiplications
//!   folded into the neighbouring affine stages;
//! * MaxPool → window taps + the nested PAF-max fold of §5.4.3.
//!
//! Run with: `cargo run -p smartpaf-examples --release --bin encrypted_cnn`

use smartpaf_ckks::{CkksParams, Evaluator, KeyChain, PafEvaluator};
use smartpaf_heinfer::PipelineBuilder;
use smartpaf_nn::{BatchNorm2d, Conv2d, Flatten, Linear};
use smartpaf_polyfit::{CompositePaf, PafForm};
use smartpaf_tensor::Rng64;

fn main() {
    let mut rng = Rng64::new(2024);
    let paf = CompositePaf::from_form(PafForm::Alpha7);

    // A small CHW CNN: conv3x3 -> BN -> PAF-ReLU -> maxpool -> FC.
    println!("compiling pipeline (probing affine segments into diagonal matrices)...");
    let pipeline = PipelineBuilder::new(&[1, 8, 8])
        .affine(Conv2d::new(1, 2, 3, 1, 1, &mut rng))
        .affine(BatchNorm2d::new(2))
        .paf_relu(&paf, 8.0)
        .paf_maxpool(2, 2, &paf, 8.0)
        .affine(Flatten::new())
        .affine(Linear::new(2 * 4 * 4, 10, &mut rng))
        .compile()
        .fold_scales();
    println!(
        "  {} stages, padded dim {}, total depth {} levels",
        pipeline.stages().len(),
        pipeline.dim(),
        pipeline.total_levels()
    );
    for s in pipeline.stages() {
        println!("    - {:<34} {} level(s)", s.label(), s.levels());
    }

    // CKKS context deep enough for one inference without bootstrapping
    // would need ~26 levels; depth 12 forces refreshes, which is
    // exactly the paper's "deep PAF chains need bootstrapping". The
    // 45-bit scale primes keep the noise floor comfortably below the
    // logit gaps after the dense final layer amplifies it.
    let ctx = CkksParams {
        scale_prime_bits: 45,
        ..CkksParams::default_params()
    }
    .build();
    let keys = KeyChain::generate(&ctx, &mut rng);
    let pe = PafEvaluator::new(Evaluator::new(&keys));
    let bootstrapper = smartpaf_ckks::Bootstrapper::new(pe.evaluator().clone(), pipeline.dim(), 7);

    // A synthetic 8×8 "image".
    let image: Vec<f64> = (0..64)
        .map(|i| {
            let (y, x) = (i / 8, i % 8);
            (((x as f64 - 3.5).powi(2) + (y as f64 - 3.5).powi(2)).sqrt() / 5.0 - 0.5).tanh()
        })
        .collect();

    println!(
        "\nencrypting one {}-pixel image into one ciphertext...",
        image.len()
    );
    let ct = pe
        .evaluator()
        .encrypt_replicated(&pipeline.pad_input(&image), &mut rng);

    let t0 = std::time::Instant::now();
    let (out_ct, stats) = pipeline.eval_encrypted(&pe, Some(&bootstrapper), &ct);
    let wall = t0.elapsed();

    let enc_logits = pe
        .evaluator()
        .decrypt_values(&out_ct, pipeline.output_dim());
    let plain_logits = pipeline.eval_plain(&image);

    println!(
        "encrypted inference: {wall:.2?} ({} simulated bootstraps)",
        stats.bootstraps
    );
    println!(
        "\n{:>5} {:>14} {:>14} {:>10}",
        "class", "plain logit", "enc logit", "abs err"
    );
    let mut max_err = 0.0f64;
    for (i, (p, e)) in plain_logits.iter().zip(&enc_logits).enumerate() {
        let err = (p - e).abs();
        max_err = max_err.max(err);
        println!("{i:>5} {p:>14.5} {e:>14.5} {err:>10.2e}");
    }
    let plain_pred = argmax(&plain_logits);
    let enc_pred = argmax(&enc_logits);
    println!(
        "\nplain argmax = {plain_pred}, encrypted argmax = {enc_pred} ({}), max |err| = {max_err:.2e}",
        if plain_pred == enc_pred { "match" } else { "MISMATCH" }
    );
}

fn argmax(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .expect("non-empty")
}
