//! The SMART-PAF framework end to end: pretrain a CNN, replace its
//! non-polynomial operators with a low-degree PAF, and recover the
//! accuracy with CT + PA + AT + DS/SS.
//!
//! Run with: `cargo run -p smartpaf-examples --release --bin smartpaf_training`

use smartpaf::{TechniqueSet, TrainConfig, Workbench};
use smartpaf_datasets::{SynthDataset, SynthSpec};
use smartpaf_nn::mini_cnn;
use smartpaf_polyfit::PafForm;
use smartpaf_tensor::Rng64;

fn main() {
    println!("SMART-PAF training demo (MiniCNN on the synthetic CIFAR-like task)\n");
    let spec = SynthSpec::tiny(5);
    let dataset = SynthDataset::new(spec);
    let config = TrainConfig::harness_scale(5);
    let mut rng = Rng64::new(5);
    let model = mini_cnn(spec.classes, 0.25, &mut rng);

    println!("pretraining the exact model...");
    let mut bench = Workbench::new(model, dataset, config, 10);
    println!("original accuracy: {:.1}%\n", bench.original_acc() * 100.0);

    let form = PafForm::F1G2; // cheapest, most accuracy-hostile PAF
    println!("replacing ALL non-polynomial operators with {form}\n");

    for (name, techniques) in [
        ("prior work (baseline + SS)", TechniqueSet::baseline_ss()),
        ("baseline + DS", TechniqueSet::baseline_ds()),
        ("SMART-PAF (CT+PA+AT+SS)", TechniqueSet::smartpaf()),
    ] {
        let r = bench.run_cell(techniques, form, false);
        println!(
            "{name:<28} post-replacement {:>5.1}%   final {:>5.1}%",
            r.post_replacement_acc * 100.0,
            r.final_acc * 100.0
        );
    }

    println!("\nThe SMART-PAF row should recover most of the replacement damage;");
    println!("the prior-work static-scale row shows why DS-during-training matters.");
}
