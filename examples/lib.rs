//! Shared helpers for the SMART-PAF examples.

/// Prints a section header.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}
