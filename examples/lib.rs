//! Shared helpers for the SMART-PAF examples.

use smartpaf_ckks::CkksParams;

/// Prints a section header.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// CKKS parameters honouring the `SMARTPAF_SCALE` environment variable:
/// `test` selects the toy ring (N = 256, seconds-scale — what the CI
/// `examples-smoke` job runs), anything else (or unset) the default
/// working parameters (N = 4096, depth 12).
pub fn scale_params() -> CkksParams {
    match std::env::var("SMARTPAF_SCALE").as_deref() {
        Ok("test") => CkksParams::toy(),
        _ => CkksParams::default_params(),
    }
}
