//! Sweeps every PAF form, measuring CKKS ReLU latency and plaintext
//! sign-approximation error, and prints the Pareto frontier — the
//! structure behind the paper's Fig. 1.
//!
//! Run with: `cargo run -p smartpaf-examples --release --bin pareto_sweep`

use smartpaf::{pareto_frontier, LatencyRig, ParetoPoint};
use smartpaf_ckks::CkksParams;
use smartpaf_polyfit::{CompositePaf, PafForm};

fn main() {
    println!("PAF latency / fidelity sweep under CKKS (N = 4096, depth 12)\n");
    let mut rig = LatencyRig::new(&CkksParams::default_params(), 11);

    let mut points = Vec::new();
    println!(
        "{:<20} {:>7} {:>9} {:>14} {:>12}",
        "form", "depth", "ct-mults", "relu latency", "sign error"
    );
    for form in PafForm::all() {
        let report = rig.measure_relu(form, 3);
        let paf = CompositePaf::from_form(form);
        let err = paf.sign_error(0.05, 400);
        println!(
            "{:<20} {:>7} {:>9} {:>14?} {:>12.4}",
            form.paper_name(),
            report.depth,
            report.ct_mults,
            report.relu_latency,
            err
        );
        points.push(ParetoPoint {
            latency_ms: report.relu_latency.as_secs_f64() * 1e3,
            accuracy: 1.0 - err, // fidelity proxy for the demo
        });
    }

    let frontier = pareto_frontier(&points);
    println!("\nPareto frontier (fastest to most accurate):");
    for i in frontier {
        println!(
            "  {:<20} {:>10.1} ms   fidelity {:.4}",
            PafForm::all()[i].paper_name(),
            points[i].latency_ms,
            points[i].accuracy
        );
    }
    println!("\nThe low-degree forms dominate on latency; only the deepest forms");
    println!("buy extra fidelity — exactly the tradeoff SMART-PAF's training exploits.");
}
