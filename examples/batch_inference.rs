//! One Session, three ways to serve it: the traced dry-run cost
//! oracle, a plaintext batch sharded across machine-sized workers, and
//! an encrypted batch — all through the compiled session.
//!
//! Run with: `cargo run -p smartpaf-examples --release --bin batch_inference`

use smartpaf::{Objective, Session};
use smartpaf_nn::{Conv2d, Flatten, Linear};
use smartpaf_tensor::Rng64;

fn main() {
    println!("Session batch demo: plan once, serve plain and encrypted\n");
    let mut rng = Rng64::new(7);
    let plan = Session::builder(&[1, 8, 8])
        .affine(Conv2d::new(1, 2, 3, 1, 1, &mut rng))
        .relu(6.0)
        .maxpool(2, 2, 8.0)
        .affine(Flatten::new())
        .affine(Linear::new(32, 10, &mut rng))
        .params(smartpaf_examples::scale_params())
        .objective(Objective::MinBootstraps)
        .seed(7)
        .plan()
        .expect("at least one form fits the chain");
    print!("{}", plan.report());
    let mut session = plan.compile().expect("slot layout fits the ring");

    // 1. The instant cost oracle: per-stage schedule, no arithmetic.
    //    The form column shows the per-slot assignment — on this
    //    conv+pool pipeline the planner picks a *mixed* vector (deep
    //    comparator ReLU, cheap pool fold).
    let (report, _) = session.dry_run().expect("traceable");
    println!(
        "\n[trace] per-stage schedule with {}:",
        session.chosen_label()
    );
    let forms = session.chosen_forms();
    for s in &report.stages {
        let form = s.slot.map(|i| forms[i].short_name()).unwrap_or("-");
        println!(
            "  {:<28} form {:<8} levels {:>2}  bootstraps {}  exact ct-mults {}",
            s.label, form, s.levels, s.bootstraps, s.ct_mults
        );
    }

    // 2. Plain batch across the machine's worker threads
    //    (SMARTPAF_THREADS overrides the detected width).
    let inputs: Vec<Vec<f64>> = (0..256)
        .map(|i| {
            (0..64)
                .map(|j| (((i + j) * 31) % 17) as f64 / 8.5 - 1.0)
                .collect()
        })
        .collect();
    let run = session.infer_batch_plain(&inputs).expect("valid batch");
    println!(
        "\n[plain] {} inputs on {} thread(s): {:>8.1} inferences/s ({:?} wall)",
        inputs.len(),
        run.threads,
        run.throughput(),
        run.wall
    );

    // 3. Encrypted batch: same runner, one evaluator clone per worker.
    let small: Vec<Vec<f64>> = inputs.iter().take(2).cloned().collect();
    let enc = session.infer_batch(&small).expect("encrypted batch");
    println!(
        "\n[ckks] encrypted batch of {}: {:?} wall, {} bootstraps",
        enc.outputs.len(),
        enc.wall,
        enc.total_bootstraps()
    );
    for (i, (x, out)) in small.iter().zip(&enc.outputs).enumerate() {
        let plain = session.infer_plain(x).expect("valid input");
        let max_err = out
            .iter()
            .zip(&plain)
            .map(|(d, p)| (d - p).abs())
            .fold(0.0f64, f64::max);
        println!("  input {i}: max |encrypted - plain| = {max_err:.4}");
    }
    println!("\ndone.");
}
