//! Execution backends walkthrough: one compiled pipeline, three ways
//! to run it — plain batch across threads, a trace dry run as a cost
//! oracle, and a small encrypted batch.
//!
//! Run with: `cargo run -p smartpaf-examples --release --bin batch_inference`

use smartpaf_ckks::{CkksParams, Evaluator, KeyChain, PafEvaluator};
use smartpaf_heinfer::{BatchRunner, PipelineBuilder};
use smartpaf_nn::{Conv2d, Flatten, Linear};
use smartpaf_polyfit::{CompositePaf, PafForm};
use smartpaf_tensor::Rng64;

fn main() {
    println!("Execution backends demo: one pipeline, three run modes\n");
    let mut rng = Rng64::new(7);
    let relu = CompositePaf::from_form(PafForm::F1G2);
    let pool = CompositePaf::from_form(PafForm::Alpha7);
    let pipe = PipelineBuilder::new(&[1, 8, 8])
        .affine(Conv2d::new(1, 2, 3, 1, 1, &mut rng))
        .paf_relu(&relu, 6.0)
        .paf_maxpool(2, 2, &pool, 8.0)
        .affine(Flatten::new())
        .affine(Linear::new(32, 10, &mut rng))
        .compile()
        .fold_scales();
    println!(
        "compiled: {} stages, dim {}, {} levels end to end",
        pipe.stages().len(),
        pipe.dim(),
        pipe.total_levels()
    );

    // 1. Trace dry run: the instant cost oracle, no arithmetic at all.
    let (report, _) = pipe.dry_run(12, true).expect("12-level chain");
    println!("\n[trace] per-stage schedule on a 12-level chain:");
    for s in &report.stages {
        println!(
            "  {:<28} levels {:>2}  bootstraps {}  exact ct-mults {}",
            s.label, s.levels, s.bootstraps, s.ct_mults
        );
    }
    println!(
        "  total: {} ct-mults, {} bootstraps",
        report.total_ct_mults(),
        report.total_bootstraps()
    );

    // 2. Plain batch across worker threads.
    let inputs: Vec<Vec<f64>> = (0..256)
        .map(|i| {
            (0..64)
                .map(|j| (((i + j) * 31) % 17) as f64 / 8.5 - 1.0)
                .collect()
        })
        .collect();
    println!("\n[plain] batch of {} inputs:", inputs.len());
    for threads in [1usize, 2, 4] {
        let run = BatchRunner::new(threads)
            .run_plain(&pipe, &inputs)
            .expect("valid batch");
        println!(
            "  {} thread(s): {:>8.1} inferences/s ({:?} wall)",
            run.threads,
            run.throughput(),
            run.wall
        );
    }

    // 3. Encrypted batch: same runner, one evaluator clone per worker.
    let ctx = CkksParams::toy().build();
    let keys = KeyChain::generate(&ctx, &mut rng);
    let pe = PafEvaluator::new(Evaluator::new(&keys));
    let small: Vec<Vec<f64>> = inputs.iter().take(2).cloned().collect();
    let cts: Vec<_> = small
        .iter()
        .map(|x| {
            pe.evaluator()
                .encrypt_replicated(&pipe.pad_input(x), &mut rng)
        })
        .collect();
    let bs = smartpaf_ckks::Bootstrapper::new(pe.evaluator().clone(), pipe.dim(), 5);
    let run = BatchRunner::new(2)
        .run_encrypted(&pipe, &pe, Some(&bs), &cts)
        .expect("encrypted batch");
    println!(
        "\n[ckks] encrypted batch of {}: {:?} wall, {} bootstraps",
        run.outputs.len(),
        run.wall,
        run.total_bootstraps()
    );
    for (i, (x, out_ct)) in small.iter().zip(&run.outputs).enumerate() {
        let dec = pe.evaluator().decrypt_values(out_ct, pipe.output_dim());
        let plain = pipe.eval_plain(x);
        let max_err = dec
            .iter()
            .zip(&plain)
            .map(|(d, p)| (d - p).abs())
            .fold(0.0f64, f64::max);
        println!("  input {i}: max |encrypted - plain| = {max_err:.4}");
    }
    println!("\ndone.");
}
