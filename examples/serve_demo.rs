//! The serving layer end to end: N tenants × M requests through the
//! bounded queue, dynamic same-tenant batcher, and per-tenant session
//! cache — planning and keygen paid once per tenant, every answer
//! checked against the tenant's plaintext reference.
//!
//! Run with: `cargo run -p smartpaf-examples --release --bin serve_demo`
//! (set `SMARTPAF_SCALE=test` for the toy ring).

use smartpaf::{serve_sessions_packed, CompiledSession, Objective, Session, SessionError};
use smartpaf_heinfer::serve::{ServeConfig, TenantId};
use smartpaf_nn::Linear;
use smartpaf_tensor::Rng64;
use std::time::{Duration, Instant};

const TENANTS: u64 = 3;
const REQUESTS_PER_TENANT: usize = 4;

/// Each tenant owns its own weights, plan, and CKKS key chain, all
/// derived from the tenant id.
fn tenant_session(tenant: TenantId) -> Result<CompiledSession, SessionError> {
    let mut rng = Rng64::new(tenant.wrapping_add(40));
    Session::builder(&[4])
        .affine(Linear::new(4, 4, &mut rng))
        .relu(2.0)
        .affine(Linear::new(4, 4, &mut rng))
        .relu(2.0)
        .params(smartpaf_examples::scale_params())
        .objective(Objective::MinBootstraps)
        .seed(tenant.wrapping_add(40))
        .plan()?
        .compile()
}

fn request_input(tenant: TenantId, i: usize) -> Vec<f64> {
    (0..4)
        .map(|j| (((tenant as usize * 13 + i * 4 + j) * 7) % 19) as f64 / 9.5 - 1.0)
        .collect()
}

fn main() {
    println!("Serving demo: {TENANTS} tenants x {REQUESTS_PER_TENANT} requests each\n");
    let config = ServeConfig {
        queue_capacity: 32,
        max_batch: 4,
        batch_deadline: Duration::from_millis(2),
        pack_lanes: true,
    };
    println!(
        "queue capacity {}, batch cap {}, coalescing deadline {:?}, slot packing on",
        config.queue_capacity, config.max_batch, config.batch_deadline
    );
    let server = serve_sessions_packed(tenant_session, config);

    smartpaf_examples::section("interleaved submissions");
    // Round-robin the tenants so the batcher has to pull same-tenant
    // requests past the other tenants' to fill a batch.
    let start = Instant::now();
    let mut tickets = Vec::new();
    for i in 0..REQUESTS_PER_TENANT {
        for tenant in 0..TENANTS {
            let ticket = server
                .submit(tenant, request_input(tenant, i))
                .expect("queue sized for the demo");
            tickets.push((tenant, i, ticket));
        }
    }
    println!(
        "submitted {} requests; queue depth {}",
        tickets.len(),
        server.queue_depth()
    );

    smartpaf_examples::section("answers vs plaintext reference");
    let mut max_err = 0.0f64;
    for (tenant, i, ticket) in tickets {
        let out = ticket.wait().expect("request served");
        let reference = tenant_session(tenant)
            .expect("same factory compiles")
            .infer_plain(&request_input(tenant, i))
            .expect("valid input");
        let err = out
            .iter()
            .zip(&reference)
            .map(|(o, r)| (o - r).abs())
            .fold(0.0f64, f64::max);
        max_err = max_err.max(err);
        if i == 0 {
            println!("  tenant {tenant} request {i}: max |served - plain| = {err:.4}");
        }
    }
    let wall = start.elapsed();
    println!("  worst error across all requests: {max_err:.4}");

    smartpaf_examples::section("serving stats");
    let stats = server.shutdown();
    println!(
        "  served {}  failed {}  rejected {}  in {:.2?}  ({:.1} req/s)",
        stats.served,
        stats.failed,
        stats.rejected,
        wall,
        stats.served as f64 / wall.as_secs_f64()
    );
    println!(
        "  latency p50 {:.1} ms  p99 {:.1} ms  queue high-water {}",
        stats.p50_ms(),
        stats.p99_ms(),
        stats.max_queue_depth
    );
    let fills: Vec<String> = stats
        .batch_fill
        .iter()
        .enumerate()
        .filter(|(_, n)| **n > 0)
        .map(|(fill, n)| format!("{n} x fill-{fill}"))
        .collect();
    println!(
        "  {} batches (mean fill {:.2}): {}",
        stats.batches,
        stats.mean_fill(),
        fills.join(", ")
    );
    let lanes: Vec<String> = stats
        .slot_fill
        .iter()
        .enumerate()
        .filter(|(_, n)| **n > 0)
        .map(|(fill, n)| format!("{n} x {fill}-lane"))
        .collect();
    println!(
        "  {} packed ciphertexts (mean slot fill {:.2}): {}",
        stats.slot_batches,
        stats.mean_slot_fill(),
        lanes.join(", ")
    );
    println!("\ndone.");
}
