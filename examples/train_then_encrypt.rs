//! The complete SMART-PAF deployment story in one binary:
//!
//! 1. **Pretrain** a small CNN with exact ReLU on a synthetic task.
//! 2. **Replace** the ReLU with a low-degree PAF under Dynamic Scaling
//!    and **fine-tune** the PAF coefficients with the paper's Tab. 5
//!    hyperparameters (Adam, separate learning rates).
//! 3. **Freeze** the scale (DS → SS conversion, §4.5) and extract the
//!    trained composite.
//! 4. **Compile** the very same trained layers into the encrypted
//!    inference pipeline and classify validation images under CKKS.
//!
//! Run with: `cargo run -p smartpaf-examples --release --bin train_then_encrypt`

use smartpaf_ckks::{Bootstrapper, CkksParams, Evaluator, KeyChain, PafEvaluator};
use smartpaf_datasets::{Split, SynthDataset, SynthSpec};
use smartpaf_heinfer::PipelineBuilder;
use smartpaf_nn::{
    cross_entropy, Adam, BatchNorm2d, Conv2d, GlobalAvgPool, GroupConfig, Layer, Linear, Mode,
    OptimConfig, ReluSlot, ScaleMode,
};
use smartpaf_polyfit::{CompositePaf, PafForm};
use smartpaf_tensor::{Rng64, Tensor};

const CH: usize = 6;

struct Net {
    conv: Conv2d,
    bn: BatchNorm2d,
    relu: ReluSlot,
    pool: GlobalAvgPool,
    lin: Linear,
}

impl Net {
    fn new(classes: usize, rng: &mut Rng64) -> Self {
        Net {
            conv: Conv2d::new(3, CH, 3, 1, 1, rng),
            bn: BatchNorm2d::new(CH),
            relu: ReluSlot::new(0),
            pool: GlobalAvgPool::new(),
            lin: Linear::new(CH, classes, rng),
        }
    }

    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let h = self.conv.forward(x, mode);
        let h = self.bn.forward(&h, mode);
        let h = self.relu.forward(&h, mode);
        let h = self.pool.forward(&h, mode);
        self.lin.forward(&h, mode)
    }

    fn backward(&mut self, grad: &Tensor) {
        let g = self.lin.backward(grad);
        let g = self.pool.backward(&g);
        let g = self.relu.backward(&g);
        let g = self.bn.backward(&g);
        let _ = self.conv.backward(&g);
    }

    fn step(&mut self, opt: &mut Adam) {
        let mut params = Vec::new();
        params.extend(self.conv.params_mut());
        params.extend(self.bn.params_mut());
        params.extend(self.relu.params_mut());
        params.extend(self.lin.params_mut());
        opt.step(&mut params);
    }

    fn accuracy(&mut self, dataset: &SynthDataset, batches: usize, batch: usize) -> f32 {
        let mut hits = 0usize;
        for b in 0..batches {
            let (x, labels) = dataset.batch(Split::Val, b * batch, batch);
            let logits = self.forward(&x, Mode::Eval);
            for (i, &l) in labels.iter().enumerate() {
                let row = logits.row(i);
                let pred = row
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                    .map(|(c, _)| c)
                    .expect("non-empty");
                hits += (pred == l) as usize;
            }
        }
        hits as f32 / (batches * batch) as f32
    }
}

fn train(net: &mut Net, dataset: &SynthDataset, opt: &mut Adam, epochs: usize, batch: usize) {
    for epoch in 0..epochs {
        for b in 0..8 {
            let (x, labels) = dataset.batch(Split::Train, (epoch * 8 + b) * batch, batch);
            let logits = net.forward(&x, Mode::Train);
            let (_, grad) = cross_entropy(&logits, &labels);
            net.backward(&grad);
            net.step(opt);
        }
    }
}

fn main() {
    let spec = SynthSpec {
        image_size: 8,
        ..SynthSpec::tiny(123)
    };
    let dataset = SynthDataset::new(spec);
    let batch = 16;
    let mut rng = Rng64::new(123);
    let mut net = Net::new(spec.classes, &mut rng);

    // Phase 1: pretrain with exact ReLU.
    let mut pre_opt = Adam::new(OptimConfig {
        paf: GroupConfig {
            lr: 1e-3,
            weight_decay: 0.0,
        },
        other: GroupConfig {
            lr: 1e-3,
            weight_decay: 0.0,
        },
    });
    train(&mut net, &dataset, &mut pre_opt, 80, batch);
    let exact_acc = net.accuracy(&dataset, 8, batch);
    println!(
        "[1] pretrained with exact ReLU:        val acc {:.1}%",
        exact_acc * 100.0
    );

    // Phase 2: replace ReLU with a low-degree PAF (Dynamic Scaling) and
    // fine-tune coefficients with the paper's Tab. 5 hyperparameters.
    let base = CompositePaf::from_form(PafForm::F1G2);
    net.relu.replace_with(&base, ScaleMode::Dynamic);
    let drop_acc = net.accuracy(&dataset, 8, batch);
    println!(
        "[2] PAF-replaced (before fine-tune):   val acc {:.1}%",
        drop_acc * 100.0
    );

    let mut ft_opt = Adam::new(OptimConfig::paper_tab5());
    train(&mut net, &dataset, &mut ft_opt, 10, batch);
    let ft_acc = net.accuracy(&dataset, 8, batch);
    println!(
        "[3] after Tab. 5 fine-tuning (DS):     val acc {:.1}%",
        ft_acc * 100.0
    );

    // Phase 3: DS → SS conversion and extraction of the trained PAF.
    net.relu.paf_mut().expect("replaced").freeze_scale();
    let ss_acc = net.accuracy(&dataset, 8, batch);
    let trained_paf = net.relu.paf().expect("replaced").to_composite();
    let scale = match net.relu.paf().expect("replaced").scale_mode {
        ScaleMode::Static(s) => s as f64,
        ScaleMode::Dynamic => unreachable!("frozen above"),
    };
    println!(
        "[4] Static Scaling (s = {scale:.3}):       val acc {:.1}%",
        ss_acc * 100.0
    );

    // Phase 4: compile the trained layers into the encrypted pipeline.
    let Net {
        conv,
        bn,
        relu: _,
        pool,
        lin,
    } = net;
    let pipeline = PipelineBuilder::new(&[3, 8, 8])
        .affine(conv)
        .affine(bn)
        .paf_relu(&trained_paf, scale)
        .affine(pool)
        .affine(lin)
        .compile()
        .fold_scales();
    println!(
        "[5] compiled: {} stages, dim {}, {} levels per inference",
        pipeline.stages().len(),
        pipeline.dim(),
        pipeline.total_levels()
    );

    let ctx = CkksParams {
        scale_prime_bits: 45,
        ..CkksParams::default_params()
    }
    .build();
    let keys = KeyChain::generate(&ctx, &mut rng);
    let pe = PafEvaluator::new(Evaluator::new(&keys));
    let bs = Bootstrapper::new(pe.evaluator().clone(), pipeline.dim(), 17);

    let n_eval = 8usize;
    let mut plain_hits = 0usize;
    let mut enc_hits = 0usize;
    let mut agree = 0usize;
    let t0 = std::time::Instant::now();
    println!(
        "\n{:>6} {:>6} {:>11} {:>10} {:>7}",
        "sample", "label", "plain pred", "enc pred", "match"
    );
    for i in 0..n_eval {
        let (x, label) = dataset.sample(Split::Val, i);
        let flat: Vec<f64> = x.data().iter().map(|&v| v as f64).collect();
        let plain_logits = pipeline.eval_plain(&flat);
        let ct = pe
            .evaluator()
            .encrypt_replicated(&pipeline.pad_input(&flat), &mut rng);
        let (out_ct, _) = pipeline.eval_encrypted(&pe, Some(&bs), &ct);
        let enc_logits = pe
            .evaluator()
            .decrypt_values(&out_ct, pipeline.output_dim());
        let p = argmax(&plain_logits);
        let e = argmax(&enc_logits);
        plain_hits += (p == label) as usize;
        enc_hits += (e == label) as usize;
        agree += (p == e) as usize;
        println!(
            "{i:>6} {label:>6} {p:>11} {e:>10} {:>7}",
            if p == e { "yes" } else { "NO" }
        );
    }
    println!(
        "\nencrypted inference of {n_eval} samples: {:.2?} total, {} bootstraps",
        t0.elapsed(),
        bs.refresh_count()
    );
    println!(
        "plain-PAF accuracy {}/{n_eval}, encrypted accuracy {}/{n_eval}, agreement {}/{n_eval}",
        plain_hits, enc_hits, agree
    );
}

fn argmax(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .expect("non-empty")
}
