//! The plan registry across process boundaries: `save` plans a model
//! and publishes the artifact, `load` (typically a *second* process)
//! compiles and serves from that artifact without running the planner,
//! and the default round-trip mode does both plus a warm-start from a
//! structural neighbour.
//!
//! Run with:
//!
//! ```text
//! cargo run -p smartpaf-examples --release --bin registry_demo -- save /tmp/reg
//! cargo run -p smartpaf-examples --release --bin registry_demo -- load /tmp/reg
//! ```
//!
//! Both invocations print the same `output:` line — the loaded plan
//! serves bit-identically to the freshly planned one (same builder
//! seed, same keys, same ciphertext arithmetic). The CI
//! `registry-smoke` job diffs exactly those lines. Set
//! `SMARTPAF_SCALE=test` for the toy ring.

use smartpaf::{Objective, Plan, PlanRegistry, Session, SessionBuilder};
use smartpaf_examples::section;
use smartpaf_nn::Linear;
use smartpaf_tensor::Rng64;
use std::path::PathBuf;

const SEED: u64 = 41;
const INPUT: [f64; 4] = [0.5, -0.5, 0.25, -0.25];

/// The deployment being shipped: weights, plan and keys all derive
/// from `layer_seed`, so every process reconstructs the same model.
fn builder(layer_seed: u64) -> SessionBuilder {
    let mut rng = Rng64::new(layer_seed);
    Session::builder(&[4])
        .affine(Linear::new(4, 4, &mut rng))
        .relu(2.0)
        .affine(Linear::new(4, 4, &mut rng))
        .relu(2.0)
        .params(smartpaf_examples::scale_params())
        .objective(Objective::MinBootstraps)
        .seed(SEED)
}

fn serve(plan: Plan) -> Vec<f64> {
    let mut session = plan.compile().expect("compile");
    session.infer(&INPUT).expect("infer")
}

fn report(tag: &str, plan: &Plan) {
    println!(
        "{tag}: {} dry run(s), chosen forms {:?}",
        plan.dry_runs_used(),
        plan.chosen().forms
    );
}

fn save(registry: &PlanRegistry) {
    section("save: cold plan, publish artifact");
    let plan = builder(SEED).plan().expect("plan");
    report("cold plan", &plan);
    let key = registry.save_plan(&plan).expect("save_plan");
    println!(
        "artifact: {}",
        registry.root().join(format!("{key}.json")).display()
    );
    println!("output: {:?}", serve(plan));
}

fn load(registry: &PlanRegistry) {
    section("load: compile from artifact, no planning");
    let plan = registry.load_plan(builder(SEED)).expect("load_plan");
    report("loaded plan", &plan);
    assert_eq!(plan.dry_runs_used(), 0, "loading must not run the planner");
    println!("output: {:?}", serve(plan));
}

fn warm_start(registry: &PlanRegistry) {
    section("warm start: new weights, same structure");
    // A different deployment (fresh weights) of the same architecture:
    // no exact artifact exists, but planning seeds the search from the
    // stored neighbour's form vector instead of the uniform pass.
    let cold = builder(SEED + 1).plan().expect("cold plan");
    let warm = builder(SEED + 1)
        .registry(registry)
        .plan()
        .expect("warm plan");
    report("cold", &cold);
    report("warm", &warm);
    assert!(
        warm.dry_runs_used() <= cold.dry_runs_used(),
        "warm start must not spend more dry runs than a cold search"
    );
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mode = args.next().unwrap_or_else(|| "roundtrip".to_string());
    let dir = args
        .next()
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("smartpaf-registry-demo"));
    let registry = PlanRegistry::open(&dir).expect("open registry");

    match mode.as_str() {
        "save" => save(&registry),
        "load" => load(&registry),
        "roundtrip" => {
            save(&registry);
            load(&registry);
            warm_start(&registry);
            for info in registry.list().expect("list") {
                println!(
                    "registry entry {} (model {}): {} dry run(s) banked",
                    info.content_key, info.model_key, info.dry_runs
                );
            }
        }
        other => {
            eprintln!("usage: registry_demo [save|load|roundtrip] [dir] (got {other:?})");
            std::process::exit(2);
        }
    }
}
