//! End-to-end private inference through the Session API: a small
//! PAF-approximated CNN head (conv → PAF-ReLU → PAF-maxpool → linear)
//! served under CKKS, with the batch sharded across machine-sized
//! worker threads.
//!
//! The deployment model is the paper's: weights public, inputs
//! private. Features come from a plaintext extractor (a 4×4 grid of
//! regional means); the head — where the non-polynomial operators
//! live — runs encrypted. The planner searches per-slot *form
//! vectors*, and on this conv+pool head it picks a mixed one: the
//! deep comparator for the ReLU slot, the cheap f1∘g2 fold for the
//! pool — printed below as the per-slot table.
//!
//! Run with: `cargo run -p smartpaf-examples --release --bin private_inference`

use smartpaf::{Objective, Session};
use smartpaf_datasets::{Split, SynthDataset, SynthSpec};
use smartpaf_nn::{Conv2d, Flatten, Linear};
use smartpaf_tensor::{Rng64, Tensor};

const GRID: usize = 4;

fn main() {
    println!("Private inference demo: encrypted mixed-form PAF head over a synthetic task\n");
    let spec = SynthSpec::tiny(9);
    let dataset = SynthDataset::new(spec);
    let batch = 8;
    let (x, labels) = dataset.batch(Split::Val, 0, batch);
    let feats = plain_features(&x); // [batch, 1, GRID, GRID]

    // Plan + compile the head; min-bootstraps searches the per-slot
    // form vector (uniform pass -> greedy -> beam, all trace-priced).
    let mut rng = Rng64::new(77);
    let plan = Session::builder(&[1, GRID, GRID])
        .affine(Conv2d::new(1, 2, 3, 1, 1, &mut rng))
        .relu(4.0)
        .maxpool(2, 2, 6.0)
        .affine(Flatten::new())
        .affine(Linear::new(
            2 * (GRID / 2) * (GRID / 2),
            spec.classes,
            &mut rng,
        ))
        .params(smartpaf_examples::scale_params())
        .objective(Objective::MinBootstraps)
        .seed(77)
        .plan()
        .expect("the candidate forms fit the chain");
    println!(
        "planned {}: {} exact ct-mults, {} traced bootstraps per inference",
        plan.chosen_label(),
        plan.chosen_cost().ct_mults,
        plan.traced_bootstraps()
    );

    // The per-slot form table (which form each ReLU/maxpool slot
    // got), straight from the plan report's rendering.
    print!(
        "\n{}",
        plan.report()
            .per_slot_table()
            .expect("this pipeline has PAF slots")
    );
    let mut session = plan.compile().expect("slot layout fits the ring");

    // Serve the whole batch encrypted; outputs come back in input order.
    let dim = GRID * GRID;
    let inputs: Vec<Vec<f64>> = (0..batch)
        .map(|b| (0..dim).map(|f| feats.data()[b * dim + f] as f64).collect())
        .collect();
    let run = session.infer_batch(&inputs).expect("valid batch");
    println!(
        "\nencrypted batch of {batch} served in {:?} on {} thread(s)\n",
        run.wall, run.threads
    );

    println!(
        "{:>6} {:>6} {:>11} {:>9} {:>6}",
        "sample", "label", "plain pred", "enc pred", "match"
    );
    let mut agree = 0;
    for (b, (input, enc_logits)) in inputs.iter().zip(&run.outputs).enumerate() {
        let plain_pred = argmax(&session.infer_plain(input).expect("valid input"));
        let enc_pred = argmax(enc_logits);
        agree += (plain_pred == enc_pred) as usize;
        println!(
            "{b:>6} {:>6} {plain_pred:>11} {enc_pred:>9} {:>6}",
            labels[b],
            if plain_pred == enc_pred { "yes" } else { "NO" }
        );
    }
    println!("\n{agree}/{batch} encrypted predictions match the plaintext PAF model.");
}

/// Plaintext feature extractor: a GRID×GRID map of regional means over
/// all channels — affine in the input, so the interesting
/// (non-polynomial) work all happens in the encrypted head.
fn plain_features(x: &Tensor) -> Tensor {
    let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let (rh, rw) = (h / GRID, w / GRID);
    let mut out = Tensor::zeros(&[n, 1, GRID, GRID]);
    for b in 0..n {
        for gy in 0..GRID {
            for gx in 0..GRID {
                let mut sum = 0.0f32;
                for ci in 0..c {
                    for dy in 0..rh.max(1) {
                        for dx in 0..rw.max(1) {
                            let y = (gy * rh + dy).min(h - 1);
                            let xx = (gx * rw + dx).min(w - 1);
                            sum += x.data()[((b * c + ci) * h + y) * w + xx];
                        }
                    }
                }
                let count = (c * rh.max(1) * rw.max(1)) as f32;
                out.set(&[b, 0, gy, gx], sum / count);
            }
        }
    }
    out
}

fn argmax(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .expect("non-empty")
}
