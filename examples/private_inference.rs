//! End-to-end private inference: a small PAF-approximated CNN whose
//! activations run under CKKS with CryptoNets-style batching.
//!
//! Packing: one ciphertext holds the *same* neuron across a batch of
//! inputs, so convolutions/linear layers become plain-weight multiply-
//! accumulates over ciphertexts (no rotations needed) and only the
//! non-polynomial operators — replaced here by PAFs — consume depth.
//!
//! To keep the demo fast it encrypts the *pre-activation* features of
//! the model's first PAF layer and runs the PAF + the linear head
//! homomorphically, checking the result against the plaintext model.
//!
//! Run with: `cargo run -p smartpaf-examples --release --bin private_inference`

use smartpaf_ckks::{Ciphertext, CkksParams, Evaluator, KeyChain, PafEvaluator};
use smartpaf_datasets::{Split, SynthDataset, SynthSpec};
use smartpaf_polyfit::{CompositePaf, PafForm};
use smartpaf_tensor::{Rng64, Tensor};

fn main() {
    println!("Private inference demo: encrypted PAF head over a synthetic task\n");
    let spec = SynthSpec::tiny(9);
    let dataset = SynthDataset::new(spec);
    let batch = 8;
    let (x, labels) = dataset.batch(Split::Val, 0, batch);

    // A tiny plaintext "feature extractor": global average pooled
    // channels (stands in for the convolutional trunk, which under
    // CryptoNets batching is all plain-weight MACs anyway).
    let feats = plain_features(&x); // [batch, 3]
    let feat_dim = feats.dims()[1];

    // Plaintext head: linear -> PAF-ReLU -> linear (weights public,
    // data private — the paper's deployment model).
    let mut rng = Rng64::new(77);
    let w1 = Tensor::rand_normal(&[4, feat_dim], 0.0, 0.8, &mut rng);
    let w2 = Tensor::rand_normal(&[spec.classes, 4], 0.0, 0.8, &mut rng);
    let paf = CompositePaf::from_form(PafForm::Alpha7);

    // --- CKKS side ---
    let ctx = CkksParams::default_params().build();
    let keys = KeyChain::generate(&ctx, &mut rng);
    let pe = PafEvaluator::new(Evaluator::new(&keys));
    let ev = pe.evaluator();

    // Encrypt each feature as one ciphertext packing the whole batch.
    let enc_feats: Vec<Ciphertext> = (0..feat_dim)
        .map(|f| {
            let col: Vec<f64> = (0..batch).map(|b| feats.at(&[b, f]) as f64).collect();
            ev.encrypt_values(&col, &mut rng)
        })
        .collect();
    println!(
        "encrypted {} feature ciphertexts ({} samples packed per ciphertext)",
        enc_feats.len(),
        batch
    );

    // Hidden layer: plain-weight MACs, then PAF-ReLU under encryption.
    let t0 = std::time::Instant::now();
    let hidden: Vec<Ciphertext> = (0..4)
        .map(|h| {
            let mut acc = ev.mul_const(&enc_feats[0], w1.at(&[h, 0]) as f64);
            for (f, feat) in enc_feats.iter().enumerate().take(feat_dim).skip(1) {
                let term = ev.mul_const(feat, w1.at(&[h, f]) as f64);
                acc = ev.add(&acc, &term);
            }
            pe.relu(&acc, &paf)
        })
        .collect();
    // Output layer.
    let logits: Vec<Ciphertext> = (0..spec.classes)
        .map(|c| {
            let mut acc = ev.mul_const(&hidden[0], w2.at(&[c, 0]) as f64);
            for (h, hid) in hidden.iter().enumerate().skip(1) {
                let term = ev.mul_const(hid, w2.at(&[c, h]) as f64);
                acc = ev.add(&acc, &term);
            }
            acc
        })
        .collect();
    println!("homomorphic head evaluated in {:?}", t0.elapsed());

    // Decrypt logits and classify.
    let mut enc_logits = vec![vec![0.0f64; spec.classes]; batch];
    for (c, ct) in logits.iter().enumerate() {
        for (b, v) in ev.decrypt_values(ct, batch).iter().enumerate() {
            enc_logits[b][c] = *v;
        }
    }

    // Plaintext reference with the same PAF.
    println!(
        "\n{:>6} {:>8} {:>12} {:>12} {:>8}",
        "sample", "label", "plain pred", "enc pred", "match"
    );
    let mut agree = 0;
    for b in 0..batch {
        let mut plain = vec![0.0f64; spec.classes];
        for (c, p) in plain.iter_mut().enumerate() {
            for h in 0..4 {
                let mut pre = 0.0;
                for f in 0..feat_dim {
                    pre += w1.at(&[h, f]) as f64 * feats.at(&[b, f]) as f64;
                }
                *p += w2.at(&[c, h]) as f64 * paf.relu(pre);
            }
        }
        let plain_pred = argmax(&plain);
        let enc_pred = argmax(&enc_logits[b]);
        if plain_pred == enc_pred {
            agree += 1;
        }
        println!(
            "{b:>6} {:>8} {plain_pred:>12} {enc_pred:>12} {:>8}",
            labels[b],
            if plain_pred == enc_pred { "yes" } else { "NO" }
        );
    }
    println!("\n{agree}/{batch} encrypted predictions match the plaintext PAF model.");
}

fn plain_features(x: &Tensor) -> Tensor {
    let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let mut out = Tensor::zeros(&[n, c]);
    for b in 0..n {
        for ci in 0..c {
            let base = (b * c + ci) * h * w;
            let mean: f32 = x.data()[base..base + h * w].iter().sum::<f32>() / (h * w) as f32;
            out.set(&[b, ci], mean);
        }
    }
    out
}

fn argmax(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .expect("non-empty")
}
