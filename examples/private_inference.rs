//! End-to-end private inference through the Session API: a small
//! PAF-approximated head (linear → PAF-ReLU → linear) served under
//! CKKS, with the batch sharded across machine-sized worker threads.
//!
//! The deployment model is the paper's: weights public, inputs
//! private. Features come from a plaintext extractor (a convolutional
//! trunk is all plain-weight MACs under batching anyway); the head —
//! where the non-polynomial operator lives — runs encrypted.
//!
//! Run with: `cargo run -p smartpaf-examples --release --bin private_inference`

use smartpaf::{Objective, Session};
use smartpaf_datasets::{Split, SynthDataset, SynthSpec};
use smartpaf_nn::Linear;
use smartpaf_polyfit::PafForm;
use smartpaf_tensor::{Rng64, Tensor};

fn main() {
    println!("Private inference demo: encrypted PAF head over a synthetic task\n");
    let spec = SynthSpec::tiny(9);
    let dataset = SynthDataset::new(spec);
    let batch = 8;
    let (x, labels) = dataset.batch(Split::Val, 0, batch);
    let feats = plain_features(&x); // [batch, channels]
    let feat_dim = feats.dims()[1];

    // Plan + compile the head with the α=7 comparator pinned.
    let mut rng = Rng64::new(77);
    let plan = Session::builder(&[feat_dim])
        .affine(Linear::new(feat_dim, 4, &mut rng))
        .relu(4.0)
        .affine(Linear::new(4, spec.classes, &mut rng))
        .params(smartpaf_examples::scale_params())
        .objective(Objective::FixedForm(PafForm::Alpha7))
        .seed(77)
        .plan()
        .expect("α=7 fits the chain");
    println!(
        "planned {}: {} exact ct-mults, {} traced bootstraps per inference",
        plan.chosen_form(),
        plan.chosen_cost().ct_mults,
        plan.traced_bootstraps()
    );
    let mut session = plan.compile().expect("slot layout fits the ring");

    // Serve the whole batch encrypted; outputs come back in input order.
    let inputs: Vec<Vec<f64>> = (0..batch)
        .map(|b| (0..feat_dim).map(|f| feats.at(&[b, f]) as f64).collect())
        .collect();
    let run = session.infer_batch(&inputs).expect("valid batch");
    println!(
        "encrypted batch of {batch} served in {:?} on {} thread(s)\n",
        run.wall, run.threads
    );

    println!(
        "{:>6} {:>6} {:>11} {:>9} {:>6}",
        "sample", "label", "plain pred", "enc pred", "match"
    );
    let mut agree = 0;
    for (b, (input, enc_logits)) in inputs.iter().zip(&run.outputs).enumerate() {
        let plain_pred = argmax(&session.infer_plain(input).expect("valid input"));
        let enc_pred = argmax(enc_logits);
        agree += (plain_pred == enc_pred) as usize;
        println!(
            "{b:>6} {:>6} {plain_pred:>11} {enc_pred:>9} {:>6}",
            labels[b],
            if plain_pred == enc_pred { "yes" } else { "NO" }
        );
    }
    println!("\n{agree}/{batch} encrypted predictions match the plaintext PAF model.");
}

fn plain_features(x: &Tensor) -> Tensor {
    let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let mut out = Tensor::zeros(&[n, c]);
    for b in 0..n {
        for ci in 0..c {
            let base = (b * c + ci) * h * w;
            let mean: f32 = x.data()[base..base + h * w].iter().sum::<f32>() / (h * w) as f32;
            out.set(&[b, ci], mean);
        }
    }
    out
}

fn argmax(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .expect("non-empty")
}
