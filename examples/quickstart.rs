//! Quickstart: the Session API in one screen — plan a PAF form on the
//! trace-priced Pareto frontier, compile the CKKS runtime once, serve
//! encrypted inference, and compare against the plaintext reference.
//!
//! Run with: `cargo run -p smartpaf-examples --release --bin quickstart`

use smartpaf::{Objective, Session};
use smartpaf_nn::Linear;
use smartpaf_tensor::Rng64;

fn main() {
    println!("SMART-PAF quickstart: plan -> compile -> serve\n");
    let mut rng = Rng64::new(2024);

    // Plan: trace-price every candidate PAF form on this chain and pick
    // the cheapest whose sign fidelity is within 0.3 of the best.
    let plan = Session::builder(&[8])
        .affine(Linear::new(8, 8, &mut rng))
        .relu(4.0)
        .params(smartpaf_examples::scale_params())
        .objective(Objective::MinLatency { max_acc_drop: 0.3 })
        .seed(2024)
        .plan()
        .expect("at least one form fits the chain");
    print!("{}", plan.report());

    // Compile: CKKS context, keys, engines — the one-time setup.
    let mut session = plan.compile().expect("slot layout fits the ring");

    // Serve: encrypted inference against the exact plaintext twin.
    let x: Vec<f64> = (0..8).map(|i| (i as f64 - 3.5) / 4.0).collect();
    let t0 = std::time::Instant::now();
    let enc = session.infer(&x).expect("input fits the pipeline");
    let wall = t0.elapsed();
    let plain = session.infer_plain(&x).expect("same input");

    println!(
        "\nencrypted inference with {} took {wall:?} ({} bootstraps)",
        session.chosen_label(),
        session.total_bootstraps()
    );
    println!(
        "{:>6} {:>12} {:>14} {:>10}",
        "slot", "plain", "encrypted", "abs err"
    );
    for (i, (p, e)) in plain.iter().zip(&enc).enumerate() {
        println!("{i:>6} {p:>12.6} {e:>14.6} {:>10.2e}", (p - e).abs());
    }
    println!("\nDone. The encrypted results match the plaintext PAF model up to CKKS noise.");
}
