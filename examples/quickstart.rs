//! Quickstart: approximate ReLU with a low-degree PAF, evaluate it
//! both in plaintext and under CKKS encryption, and compare.
//!
//! Run with: `cargo run -p smartpaf-examples --release --bin quickstart`

use smartpaf_ckks::{CkksParams, Evaluator, KeyChain, PafEvaluator};
use smartpaf_polyfit::{CompositePaf, PafForm};
use smartpaf_tensor::Rng64;

fn main() {
    println!("SMART-PAF quickstart: PAF-ReLU in plaintext and under CKKS\n");

    // 1. Build the paper's sweet-spot 14-degree PAF (f1^2 ∘ g1^2).
    let paf = CompositePaf::from_form(PafForm::F1SqG1Sq);
    println!(
        "PAF {}: multiplication depth {}, sum degree {}",
        paf,
        paf.mult_depth(),
        paf.sum_degree()
    );

    // 2. Plaintext sanity: relu(x) ~ (x + x*paf(x))/2.
    println!("\n{:>8} {:>12} {:>12} {:>12}", "x", "exact", "paf", "error");
    for &x in &[-0.9, -0.5, -0.1, 0.1, 0.5, 0.9] {
        let exact = f64::max(x, 0.0);
        let approx = paf.relu(x);
        println!(
            "{x:>8.2} {exact:>12.6} {approx:>12.6} {:>12.2e}",
            (approx - exact).abs()
        );
    }

    // 3. Encrypted evaluation: same computation on CKKS ciphertexts.
    println!("\nBuilding CKKS context (N = 4096, depth 12)...");
    let ctx = CkksParams::default_params().build();
    let mut rng = Rng64::new(2024);
    let keys = KeyChain::generate(&ctx, &mut rng);
    let pe = PafEvaluator::new(Evaluator::new(&keys));

    let inputs = vec![-0.9, -0.5, -0.1, 0.1, 0.5, 0.9];
    let ct = pe.evaluator().encrypt_values(&inputs, &mut rng);
    println!(
        "fresh ciphertext: {} limbs, scale 2^{:.0}",
        ct.num_limbs(),
        ct.scale.log2()
    );

    let t0 = std::time::Instant::now();
    let relu_ct = pe.relu(&ct, &paf);
    let elapsed = t0.elapsed();
    let out = pe.evaluator().decrypt_values(&relu_ct, inputs.len());

    println!(
        "encrypted PAF-ReLU took {elapsed:?} (depth consumed: {})",
        ct.level() - relu_ct.level()
    );
    println!("\n{:>8} {:>12} {:>14}", "x", "plain paf", "encrypted paf");
    for (x, enc) in inputs.iter().zip(&out) {
        println!("{x:>8.2} {:>12.6} {enc:>14.6}", paf.relu(*x));
    }
    println!("\nDone. The encrypted results match the plaintext PAF up to CKKS noise.");
}
