//! Offline drop-in subset of the [`proptest`] crate.
//!
//! The build container has no registry access, so this shim provides
//! exactly the API surface the SmartPAF property tests use:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`,
//! - range strategies (`-1.0f64..1.0`, `0usize..6`, ...),
//! - [`collection::vec`] with fixed or ranged lengths,
//! - [`bool::ANY`],
//! - [`ProptestConfig::with_cases`].
//!
//! Generation is deterministic: each test derives its RNG seed from the
//! test function name (plus `PROPTEST_SEED` if set), so failures are
//! reproducible run-to-run. There is no shrinking — a failing case
//! panics with the regular assertion message.
//!
//! [`proptest`]: https://docs.rs/proptest

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of one type. Mirror of proptest's
    /// `Strategy`, reduced to generation (no shrinking).
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (self.end - self.start) * rng.unit_f64() as f32
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy producing one fixed value (proptest's `Just`).
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod test_runner {
    /// Deterministic splitmix64 generator seeding each property test.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a label (the test name) so every property test
        /// walks its own reproducible sequence. `PROPTEST_SEED` mixes
        /// in an extra seed for exploratory reruns.
        pub fn deterministic(label: &str) -> Self {
            let mut state = 0x9e37_79b9_7f4a_7c15u64;
            for b in label.bytes() {
                state = state.wrapping_mul(0x100_0000_01b3).wrapping_add(b as u64);
            }
            if let Ok(extra) = std::env::var("PROPTEST_SEED") {
                if let Ok(n) = extra.trim().parse::<u64>() {
                    state = state.wrapping_add(n.wrapping_mul(0x2545_F491_4F6C_DD1D));
                }
            }
            TestRng { state }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Runner configuration; only `cases` is honoured.
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Smaller than upstream's 256: tier-1 `cargo test` must stay
            // minutes-scale with CKKS ops inside the property bodies.
            Config { cases: 32 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length spec for [`vec()`]: a fixed `usize` or a `Range<usize>`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    pub struct VecStrategy<S: Strategy> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a Vec of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform boolean strategy (`proptest::bool::ANY`).
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies, re-running each body `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            (<$crate::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let __case: u32 = __case;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug)]
    struct Seen(Vec<f64>);

    proptest! {
        /// Range strategies stay inside their bounds.
        #[test]
        fn ranges_in_bounds(x in -2.0f64..2.0, n in 3usize..7) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((3..7).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        /// Vec strategies honour fixed and ranged lengths.
        #[test]
        fn vec_lengths(a in crate::collection::vec(-1.0f64..1.0, 4),
                       b in crate::collection::vec(0.0f64..1.0, 1..3)) {
            prop_assert_eq!(a.len(), 4);
            prop_assert!(b.len() == 1 || b.len() == 2);
            prop_assert_ne!(Seen(a).0.len(), 0);
        }
    }

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = crate::test_runner::TestRng::deterministic("label");
        let mut b = crate::test_runner::TestRng::deterministic("label");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
