//! Offline drop-in subset of the [`serde`] + `serde_json` API used by
//! the SmartPAF tree.
//!
//! The build container has no registry access, so — like the
//! `criterion` and `proptest` shims — this crate provides exactly the
//! surface the tree uses: a value-tree serialization model
//! ([`Serialize`] renders a type into a [`json::Value`],
//! [`Deserialize`] reads one back) plus a JSON writer and parser in
//! [`json`]. There is no derive macro and no streaming `Serializer`
//! trait; types implement the two traits by hand, which keeps the
//! on-disk format of every artifact explicit and reviewable (see
//! `docs/ARTIFACT_FORMAT.md` in the repository root).
//!
//! Two properties the plan registry depends on:
//!
//! - **Exact `f64` round-trips.** Floats are written with Rust's
//!   shortest-round-trip formatting (`{:?}`, which always keeps a
//!   `.0`/exponent marker so a float never collapses into an integer
//!   token) and parsed with `str::parse::<f64>`, so
//!   `from_str(&to_string(v))` reproduces every finite float
//!   bit-for-bit.
//! - **Deterministic output.** Object keys keep insertion order and
//!   the compact writer inserts no whitespace, so equal values always
//!   produce byte-identical JSON — the precondition for
//!   content-addressed artifact keys.
//!
//! [`serde`]: https://docs.rs/serde

pub mod json;

pub use json::{Error, Value};

/// Renders `self` into a JSON value tree.
///
/// The shim's analogue of `serde::Serialize`: instead of driving a
/// streaming `Serializer`, implementations build a [`Value`] directly.
///
/// # Example
///
/// ```
/// use serde::{json, Serialize, Value};
///
/// struct Point {
///     x: f64,
///     y: f64,
/// }
///
/// impl Serialize for Point {
///     fn serialize(&self) -> Value {
///         Value::object([("x", self.x.serialize()), ("y", self.y.serialize())])
///     }
/// }
///
/// let v = Point { x: 1.0, y: -2.5 }.serialize();
/// assert_eq!(json::to_string(&v), r#"{"x":1.0,"y":-2.5}"#);
/// ```
pub trait Serialize {
    /// The JSON value tree representing `self`.
    fn serialize(&self) -> Value;
}

/// Reads `Self` back from a JSON value tree.
///
/// The shim's analogue of `serde::Deserialize`; the borrowed input
/// plays the role of the deserializer.
///
/// # Example
///
/// ```
/// use serde::{json, Deserialize};
///
/// let v = json::from_str("[1.5, 2.5]").unwrap();
/// let xs = Vec::<f64>::deserialize(&v).unwrap();
/// assert_eq!(xs, vec![1.5, 2.5]);
/// ```
pub trait Deserialize: Sized {
    /// Parses `Self` from `value`, reporting shape mismatches as
    /// [`Error`]s.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::type_mismatch("bool", other)),
        }
    }
}

impl Serialize for u64 {
    fn serialize(&self) -> Value {
        Value::UInt(*self)
    }
}

impl Deserialize for u64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::UInt(n) => Ok(*n),
            Value::Int(n) if *n >= 0 => Ok(*n as u64),
            other => Err(Error::type_mismatch("u64", other)),
        }
    }
}

impl Serialize for u32 {
    fn serialize(&self) -> Value {
        Value::UInt(u64::from(*self))
    }
}

impl Deserialize for u32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let n = u64::deserialize(value)?;
        u32::try_from(n).map_err(|_| Error::custom(format!("{n} overflows u32")))
    }
}

impl Serialize for usize {
    fn serialize(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Deserialize for usize {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let n = u64::deserialize(value)?;
        usize::try_from(n).map_err(|_| Error::custom(format!("{n} overflows usize")))
    }
}

impl Serialize for i64 {
    fn serialize(&self) -> Value {
        Value::Int(*self)
    }
}

impl Deserialize for i64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Int(n) => Ok(*n),
            Value::UInt(n) => {
                i64::try_from(*n).map_err(|_| Error::custom(format!("{n} overflows i64")))
            }
            other => Err(Error::type_mismatch("i64", other)),
        }
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            other => Err(Error::type_mismatch("number", other)),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::type_mismatch("string", other)),
        }
    }
}

impl Serialize for &str {
    fn serialize(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::type_mismatch("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        let cases: Vec<Value> = vec![
            true.serialize(),
            42u64.serialize(),
            7usize.serialize(),
            (-3i64).serialize(),
            1.5f64.serialize(),
            "hi".serialize(),
            vec![1.0f64, 2.0].serialize(),
            Option::<u64>::None.serialize(),
        ];
        for v in cases {
            let text = json::to_string(&v);
            assert_eq!(json::from_str(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn float_round_trip_is_bit_exact() {
        for &x in &[
            0.0f64,
            -0.0,
            1.0,
            -1.0,
            1.5e-300,
            std::f64::consts::PI,
            f64::MIN_POSITIVE,
            f64::MAX,
            1.2e-9,
            0.1 + 0.2,
        ] {
            let text = json::to_string(&x.serialize());
            let back = f64::deserialize(&json::from_str(&text).unwrap()).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {text}");
        }
    }

    #[test]
    fn integer_floats_stay_floats() {
        // 1.0 must serialize with a `.0` marker so it never collapses
        // into an integer token on the way back.
        let text = json::to_string(&1.0f64.serialize());
        assert_eq!(text, "1.0");
        assert!(matches!(json::from_str(&text).unwrap(), Value::Float(_)));
    }

    #[test]
    fn option_none_is_null() {
        assert_eq!(json::to_string(&Option::<u64>::None.serialize()), "null");
        let some = Option::<u64>::deserialize(&json::from_str("3").unwrap()).unwrap();
        assert_eq!(some, Some(3));
    }

    #[test]
    fn type_mismatches_are_typed_errors() {
        let v = json::from_str("\"nope\"").unwrap();
        assert!(u64::deserialize(&v).is_err());
        assert!(bool::deserialize(&v).is_err());
        assert!(Vec::<f64>::deserialize(&v).is_err());
    }

    #[test]
    fn u64_max_survives() {
        let text = json::to_string(&u64::MAX.serialize());
        let back = u64::deserialize(&json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back, u64::MAX);
    }
}
