//! The JSON value tree, writer, and parser behind the serde shim —
//! the `serde_json` subset the tree uses.

use std::fmt;

/// Maximum nesting depth the parser accepts (arrays/objects), a guard
/// against stack exhaustion on adversarial artifact files.
const MAX_DEPTH: usize = 128;

/// A parsed or constructed JSON value.
///
/// Numbers keep their lexical class: integer tokens parse into
/// [`Value::UInt`]/[`Value::Int`] (so `u64::MAX` survives, which an
/// `f64`-only model would silently round), and tokens with a decimal
/// point or exponent parse into [`Value::Float`]. Objects preserve
/// insertion order, making serialization deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer token.
    UInt(u64),
    /// A negative integer token (positive values normalize to
    /// [`Value::UInt`] on parse).
    Int(i64),
    /// A token with a fraction or exponent. Writing a non-finite
    /// float produces `null` (JSON has no NaN/infinity literal).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, keys in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from `(key, value)` pairs, keys in the given
    /// order.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Member lookup on an object (`None` for missing keys or
    /// non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Member lookup that reports a missing key as a typed [`Error`].
    pub fn req(&self, key: &str) -> Result<&Value, Error> {
        self.get(key)
            .ok_or_else(|| Error::custom(format!("missing field `{key}`")))
    }

    /// The string slice of a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements of a [`Value::Array`].
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// One-word name of the value's JSON type (for error messages).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization failure: a malformed document, a
/// shape mismatch, or a missing field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error with a caller-supplied message (the shim analogue of
    /// `serde::de::Error::custom`).
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// A "wanted X, found Y" shape error.
    pub fn type_mismatch(wanted: &str, found: &Value) -> Self {
        Error::custom(format!("expected {wanted}, found {}", found.type_name()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Serializes a value tree to compact JSON (no whitespace) — the
/// canonical form content-address hashes are computed over.
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    write_value(value, None, 0, &mut out);
    out
}

/// Serializes a value tree to human-readable JSON (two-space indent)
/// — the on-disk artifact form.
pub fn to_string_pretty(value: &Value) -> String {
    let mut out = String::new();
    write_value(value, Some(2), 0, &mut out);
    out
}

fn write_value(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // `{:?}` is Rust's shortest round-trip form and always
                // keeps a `.0` or exponent, so floats stay floats.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out);
            }
            if !items.is_empty() {
                write_newline_indent(indent, depth, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(indent, depth + 1, out);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(v, indent, depth + 1, out);
            }
            if !pairs.is_empty() {
                write_newline_indent(indent, depth, out);
            }
            out.push('}');
        }
    }
}

fn write_newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document into a value tree.
///
/// # Errors
///
/// Malformed syntax, trailing input, nesting beyond an internal depth
/// guard, and invalid escapes all report as [`Error`]s.
pub fn from_str(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::custom(format!(
            "trailing input at byte {pos} of {}",
            bytes.len()
        )));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, Error> {
    if depth > MAX_DEPTH {
        return Err(Error::custom("nesting too deep"));
    }
    match bytes.get(*pos) {
        None => Err(Error::custom("unexpected end of input")),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                skip_ws(bytes, pos);
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::custom(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error::custom(format!("expected `:` at byte {pos}")));
                }
                *pos += 1;
                skip_ws(bytes, pos);
                let value = parse_value(bytes, pos, depth + 1)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(pairs));
                    }
                    _ => return Err(Error::custom(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error::custom(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::custom(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::custom("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'u') => {
                        let hi = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect `\uXXXX` low half.
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return Err(Error::custom("lone high surrogate"));
                            }
                            let lo = parse_hex4(bytes, *pos + 3)?;
                            *pos += 6;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error::custom("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::custom("invalid unicode escape"))?,
                        );
                    }
                    _ => return Err(Error::custom(format!("invalid escape at byte {pos}"))),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => {
                return Err(Error::custom("unescaped control character in string"))
            }
            Some(_) => {
                // Copy one UTF-8 scalar (input is &str, so boundaries
                // are valid).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && (bytes[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).expect("valid UTF-8 input"));
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, Error> {
    let slice = bytes
        .get(at..at + 4)
        .ok_or_else(|| Error::custom("truncated \\u escape"))?;
    let text = std::str::from_utf8(slice).map_err(|_| Error::custom("invalid \\u escape"))?;
    u32::from_str_radix(text, 16).map_err(|_| Error::custom("invalid \\u escape"))
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII number token");
    if text.is_empty() || text == "-" {
        return Err(Error::custom(format!("expected value at byte {start}")));
    }
    if !is_float {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::UInt(n));
        }
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Value::Int(n));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| Error::custom(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = from_str(r#"{"a": [1, -2, 3.5], "b": {"c": null, "d": true}, "e": "x\ny"}"#)
            .expect("valid document");
        assert_eq!(v.req("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.req("b").unwrap().get("c"), Some(&Value::Null));
        assert_eq!(v.req("b").unwrap().get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.req("e").unwrap().as_str(), Some("x\ny"));
        assert!(v.req("missing").is_err());
    }

    #[test]
    fn number_classes_survive() {
        assert_eq!(
            from_str("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
        assert_eq!(from_str("-5").unwrap(), Value::Int(-5));
        assert_eq!(from_str("2.5e3").unwrap(), Value::Float(2500.0));
        assert_eq!(from_str("1e2").unwrap(), Value::Float(100.0));
    }

    #[test]
    fn pretty_and_compact_agree() {
        let v = Value::object([
            ("x", Value::UInt(1)),
            ("y", Value::Array(vec![Value::Bool(false), Value::Null])),
        ]);
        let compact = to_string(&v);
        let pretty = to_string_pretty(&v);
        assert_eq!(compact, r#"{"x":1,"y":[false,null]}"#);
        assert!(pretty.contains('\n'));
        assert_eq!(from_str(&compact).unwrap(), v);
        assert_eq!(from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "quote\" slash\\ ctrl\u{01} tab\t unicode\u{1F600}é";
        let text = to_string(&Value::Str(s.to_string()));
        assert_eq!(from_str(&text).unwrap(), Value::Str(s.to_string()));
        // Escaped input forms parse too.
        assert_eq!(
            from_str(r#""\u0041\ud83d\ude00""#).unwrap(),
            Value::Str("A\u{1F600}".to_string())
        );
    }

    #[test]
    fn malformed_documents_are_errors() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"abc",
            "{\"a\" 1}",
            "[1] trailing",
            "nan",
            "--1",
            "\"\\u12\"",
            "\"\\q\"",
            "{1: 2}",
        ] {
            assert!(from_str(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_guard_rejects_deep_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(from_str(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(from_str(&ok).is_ok());
    }

    #[test]
    fn non_finite_floats_write_null() {
        assert_eq!(to_string(&Value::Float(f64::NAN)), "null");
        assert_eq!(to_string(&Value::Float(f64::INFINITY)), "null");
    }

    #[test]
    fn object_key_order_is_preserved() {
        let text = r#"{"z":1,"a":2}"#;
        assert_eq!(to_string(&from_str(text).unwrap()), text);
    }
}
