//! Offline drop-in subset of the [`criterion`] benchmark harness.
//!
//! The build container has no registry access, so this shim provides
//! the API surface the SmartPAF benches use: `criterion_group!` (both
//! the flat and `name =`/`config =`/`targets =` forms),
//! `criterion_main!`, [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], `bench_with_input`,
//! [`BenchmarkId::from_parameter`], [`black_box`], and
//! `sample_size`.
//!
//! Measurement model: per sample, one timed call of the routine after
//! a small warm-up; the report prints min / mean / max over
//! `sample_size` samples. Passing `--test` (as `cargo test` does for
//! bench targets) runs every routine exactly once without timing.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting the
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Timing loop handle passed to every benchmark closure.
pub struct Bencher<'a> {
    sample_size: usize,
    test_mode: bool,
    samples: &'a mut Vec<Duration>,
}

impl Bencher<'_> {
    /// Times `routine` once per sample. In `--test` mode the routine
    /// runs exactly once, untimed.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        black_box(routine()); // warm-up, untimed
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Top-level harness state; mirrors criterion's builder.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (builder-style).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, self.test_mode, f);
        self
    }

    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: group_name.into(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            _criterion: self,
        }
    }
}

/// A named group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_one(&full, self.sample_size, self.test_mode, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.sample_size, self.test_mode, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Accepts both `&str` and [`BenchmarkId`] where criterion does.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self.to_string() }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, test_mode: bool, mut f: F) {
    let mut samples = Vec::with_capacity(sample_size);
    let mut bencher = Bencher { sample_size, test_mode, samples: &mut samples };
    f(&mut bencher);
    if test_mode {
        println!("{id}: ok (test mode)");
        return;
    }
    if samples.is_empty() {
        println!("{id}: no samples recorded");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = *samples.iter().min().unwrap();
    let max = *samples.iter().max().unwrap();
    println!(
        "{id:<48} time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        }
    };
}

/// Entry point for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_demo(c: &mut Criterion) {
        c.bench_function("demo_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("demo_group");
        group.sample_size(2);
        let n = 64u64;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = bench_demo
    }

    #[test]
    fn group_runner_executes() {
        benches();
    }
}
