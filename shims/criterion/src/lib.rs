//! Offline drop-in subset of the [`criterion`] benchmark harness.
//!
//! The build container has no registry access, so this shim provides
//! the API surface the SmartPAF benches use: `criterion_group!` (both
//! the flat and `name =`/`config =`/`targets =` forms),
//! `criterion_main!`, [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], `bench_with_input`,
//! [`BenchmarkId::from_parameter`], [`black_box`], and
//! `sample_size`.
//!
//! Measurement model: per sample, one timed call of the routine after
//! a small warm-up; the report prints min / mean / max over
//! `sample_size` samples. Passing `--test` (as `cargo test` does for
//! bench targets) runs every routine exactly once without timing.
//!
//! Machine-readable output: [`Criterion::json_output`] (or the
//! `CRITERION_JSON` environment variable) names a file that receives
//! one JSON document with every benchmark's id and min/mean/max
//! nanoseconds when the harness finishes. In `--test` fast-path mode
//! the file is still written (timings zero, `"mode": "test"`), so CI
//! smoke jobs can assert the emission works without paying for real
//! samples.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::fmt;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// One benchmark's aggregate, destined for the JSON report.
#[derive(Debug, Clone)]
struct BenchRecord {
    id: String,
    samples: usize,
    min_ns: u128,
    mean_ns: u128,
    max_ns: u128,
    /// Group-level metadata (e.g. `threads`, `batch`), attached to
    /// every record of the group; empty for ungrouped benchmarks.
    meta: Vec<(String, String)>,
}

/// Opaque value barrier preventing the optimiser from deleting the
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to every benchmark closure.
pub struct Bencher<'a> {
    sample_size: usize,
    test_mode: bool,
    samples: &'a mut Vec<Duration>,
}

impl Bencher<'_> {
    /// Times `routine` once per sample. In `--test` mode the routine
    /// runs exactly once, untimed.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        black_box(routine()); // warm-up, untimed
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Top-level harness state; mirrors criterion's builder.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    json_path: Option<PathBuf>,
    records: Vec<BenchRecord>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            test_mode: std::env::args().any(|a| a == "--test"),
            json_path: std::env::var_os("CRITERION_JSON").map(PathBuf::from),
            records: Vec::new(),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (builder-style).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Writes a machine-readable JSON report to `path` when the
    /// harness finishes (builder-style). The `CRITERION_JSON`
    /// environment variable overrides this at run time.
    pub fn json_output(mut self, path: impl Into<PathBuf>) -> Self {
        if self.json_path.is_none() {
            self.json_path = Some(path.into());
        }
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let rec = run_one(id, self.sample_size, self.test_mode, f);
        self.records.push(rec);
        self
    }

    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: group_name.into(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            meta: Vec::new(),
            criterion: self,
        }
    }
}

impl Drop for Criterion {
    /// Flushes the JSON report when the group runner finishes with
    /// this `Criterion` (the `criterion_group!`-generated function owns
    /// it for exactly one run).
    fn drop(&mut self) {
        let Some(path) = self.json_path.take() else {
            return;
        };
        if self.records.is_empty() {
            return;
        }
        let mode = if self.test_mode { "test" } else { "bench" };
        let mut body = String::from("{\n");
        body.push_str(&format!("  \"mode\": \"{mode}\",\n"));
        body.push_str("  \"benchmarks\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let sep = if i + 1 == self.records.len() { "" } else { "," };
            // `meta` is an optional trailing field: omitted when empty,
            // so consumers of the original shape keep parsing untouched.
            let meta = if r.meta.is_empty() {
                String::new()
            } else {
                let fields: Vec<String> = r
                    .meta
                    .iter()
                    .map(|(k, v)| format!("\"{}\": \"{}\"", json_escape(k), json_escape(v)))
                    .collect();
                format!(", \"meta\": {{{}}}", fields.join(", "))
            };
            body.push_str(&format!(
                "    {{\"id\": \"{}\", \"samples\": {}, \"min_ns\": {}, \"mean_ns\": {}, \"max_ns\": {}{meta}}}{sep}\n",
                json_escape(&r.id),
                r.samples,
                r.min_ns,
                r.mean_ns,
                r.max_ns
            ));
        }
        body.push_str("  ]\n}\n");
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("criterion shim: failed to write {}: {e}", path.display());
        } else {
            println!("criterion shim: wrote JSON report to {}", path.display());
        }
    }
}

/// Minimal JSON string escaping for benchmark ids.
fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// A named group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    meta: Vec<(String, String)>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Attaches a group-level metadata key (e.g. thread count × batch
    /// dims) to every benchmark recorded from this point on. The JSON
    /// report emits it as an optional `"meta"` object per record, so
    /// the output shape stays backward-compatible when unused.
    pub fn meta(&mut self, key: impl Into<String>, value: impl fmt::Display) -> &mut Self {
        let key = key.into();
        let value = value.to_string();
        match self.meta.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => slot.1 = value,
            None => self.meta.push((key, value)),
        }
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().id);
        let mut rec = run_one(&full, self.sample_size, self.test_mode, f);
        rec.meta = self.meta.clone();
        self.criterion.records.push(rec);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        let mut rec = run_one(&full, self.sample_size, self.test_mode, |b| f(b, input));
        rec.meta = self.meta.clone();
        self.criterion.records.push(rec);
        self
    }

    pub fn finish(self) {}
}

/// Accepts both `&str` and [`BenchmarkId`] where criterion does.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    test_mode: bool,
    mut f: F,
) -> BenchRecord {
    let mut samples = Vec::with_capacity(sample_size);
    let mut bencher = Bencher {
        sample_size,
        test_mode,
        samples: &mut samples,
    };
    f(&mut bencher);
    let zero = BenchRecord {
        id: id.to_string(),
        samples: 0,
        min_ns: 0,
        mean_ns: 0,
        max_ns: 0,
        meta: Vec::new(),
    };
    if test_mode {
        println!("{id}: ok (test mode)");
        return zero;
    }
    if samples.is_empty() {
        println!("{id}: no samples recorded");
        return zero;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = *samples.iter().min().unwrap();
    let max = *samples.iter().max().unwrap();
    println!(
        "{id:<48} time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max)
    );
    BenchRecord {
        id: id.to_string(),
        samples: samples.len(),
        min_ns: min.as_nanos(),
        mean_ns: mean.as_nanos(),
        max_ns: max.as_nanos(),
        meta: Vec::new(),
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        }
    };
}

/// Entry point for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_demo(c: &mut Criterion) {
        c.bench_function("demo_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("demo_group");
        group.sample_size(2);
        let n = 64u64;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = bench_demo
    }

    #[test]
    fn group_runner_executes() {
        benches();
    }

    #[test]
    fn json_report_emitted_on_drop() {
        let path = std::env::temp_dir().join("criterion_shim_json_test.json");
        let _ = std::fs::remove_file(&path);
        {
            let mut c = Criterion {
                sample_size: 2,
                test_mode: false,
                json_path: Some(path.clone()),
                records: Vec::new(),
            };
            c.bench_function("json_demo", |b| b.iter(|| (0..10u64).sum::<u64>()));
            let mut g = c.benchmark_group("grp");
            g.bench_function("inner", |b| b.iter(|| 1u64 + 1));
            g.finish();
        } // drop flushes the report
        let body = std::fs::read_to_string(&path).expect("report written");
        assert!(body.contains("\"id\": \"json_demo\""), "{body}");
        assert!(body.contains("\"id\": \"grp/inner\""), "{body}");
        assert!(body.contains("\"mode\": \"bench\""), "{body}");
        assert!(body.contains("\"mean_ns\""), "{body}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn group_meta_lands_in_json_report() {
        let path = std::env::temp_dir().join("criterion_shim_meta_test.json");
        let _ = std::fs::remove_file(&path);
        {
            let mut c = Criterion {
                sample_size: 2,
                test_mode: false,
                json_path: Some(path.clone()),
                records: Vec::new(),
            };
            let mut g = c.benchmark_group("tp");
            g.meta("threads", 4).meta("batch", "256x64");
            g.meta("threads", 4); // idempotent update, no duplicate key
            g.bench_function("run", |b| b.iter(|| 1u64 + 1));
            g.finish();
            // Records without meta keep the original shape.
            c.bench_function("bare", |b| b.iter(|| 2u64 + 2));
        }
        let body = std::fs::read_to_string(&path).expect("report written");
        assert!(
            body.contains("\"meta\": {\"threads\": \"4\", \"batch\": \"256x64\"}"),
            "{body}"
        );
        let bare_line = body
            .lines()
            .find(|l| l.contains("\"id\": \"bare\""))
            .expect("bare record");
        assert!(!bare_line.contains("meta"), "{bare_line}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("tab\tend"), "tab\\u0009end");
    }
}
