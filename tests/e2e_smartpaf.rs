//! End-to-end integration: the full SMART-PAF pipeline on a trained
//! CNN, checking the paper's headline *relative* claims.

use smartpaf::TechniqueSet;
use smartpaf_integration_tests::mini_workbench;
use smartpaf_polyfit::PafForm;

#[test]
fn pretrained_model_beats_chance() {
    let wb = mini_workbench(101);
    assert!(
        wb.original_acc() > 0.4,
        "pretraining failed: {}",
        wb.original_acc()
    );
}

#[test]
fn replacement_without_finetune_costs_accuracy_on_average() {
    // Replacing every non-polynomial operator with the cheapest PAF
    // must hurt before any recovery technique runs. A single tiny
    // validation set (24 samples) is too noisy — the PAF's smoothing
    // can flip a few samples either way — so assert on the mean over
    // seeds, mirroring how EXPERIMENTS.md reports accuracies.
    let mut orig = 0.0;
    let mut post = 0.0;
    for seed in [102, 112, 122] {
        let mut wb = mini_workbench(seed);
        let r = wb.run_cell(
            TechniqueSet {
                fine_tune: false,
                ..TechniqueSet::baseline_ds()
            },
            PafForm::F1G2,
            false,
        );
        orig += r.original_acc / 3.0;
        post += r.post_replacement_acc / 3.0;
    }
    assert!(
        post <= orig + 0.10,
        "replacement should not improve mean accuracy: {post} vs {orig}"
    );
}

#[test]
fn smartpaf_not_worse_than_prior_work_static_scale() {
    // The paper's central comparison: SMART-PAF (CT+PA+AT, DS in
    // training, SS at deployment) vs prior work (baseline + SS).
    let mut wb = mini_workbench(103);
    let prior = wb.run_cell(TechniqueSet::baseline_ss(), PafForm::F1G2, false);
    let ours = wb.run_cell(TechniqueSet::smartpaf(), PafForm::F1G2, false);
    assert!(
        ours.final_acc >= prior.final_acc - 0.05,
        "SMART-PAF {} should not trail prior work {}",
        ours.final_acc,
        prior.final_acc
    );
}

#[test]
fn results_are_deterministic_across_workbenches() {
    let mut a = mini_workbench(104);
    let mut b = mini_workbench(104);
    let ra = a.run_cell(TechniqueSet::smartpaf_ds(), PafForm::F2G2, true);
    let rb = b.run_cell(TechniqueSet::smartpaf_ds(), PafForm::F2G2, true);
    assert_eq!(ra.final_acc, rb.final_acc);
    assert_eq!(ra.post_replacement_acc, rb.post_replacement_acc);
}

#[test]
fn trained_pafs_have_per_layer_coefficients() {
    // After PA + fine-tuning, replaced layers should no longer share
    // identical coefficients (the App. B signature).
    let mut wb = mini_workbench(105);
    let _ = wb.run_cell(TechniqueSet::smartpaf_ds(), PafForm::F1G2, true);
    let pafs = wb.current_relu_pafs();
    assert_eq!(pafs.len(), 6, "all six ReLUs replaced");
    let first = pafs[0].stages()[0].coeffs().to_vec();
    let any_differs = pafs
        .iter()
        .skip(1)
        .any(|p| p.stages()[0].coeffs() != first.as_slice());
    assert!(any_differs, "per-layer coefficients should diverge");
}

#[test]
fn higher_degree_paf_degrades_less_without_finetune() {
    // Tab. 3 / Fig. 7 shape: without fine-tuning, the 14-degree PAF
    // should lose no more accuracy than the cheapest 5-depth PAF.
    let mut wb = mini_workbench(106);
    let no_ft = TechniqueSet {
        fine_tune: false,
        ..TechniqueSet::baseline_ds()
    };
    let rich = wb.run_cell(no_ft, PafForm::F1SqG1Sq, false);
    let cheap = wb.run_cell(no_ft, PafForm::F1G2, false);
    assert!(
        rich.post_replacement_acc >= cheap.post_replacement_acc - 0.05,
        "14-degree {} vs f1g2 {}",
        rich.post_replacement_acc,
        cheap.post_replacement_acc
    );
}
