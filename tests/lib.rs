//! Shared helpers for the cross-crate integration tests.

use smartpaf::{TrainConfig, Workbench};
use smartpaf_datasets::{SynthDataset, SynthSpec};
use smartpaf_nn::mini_cnn;
use smartpaf_tensor::Rng64;

/// A small pretrained MiniCNN workbench for end-to-end tests.
///
/// Pretraining runs to (near) convergence: the paper's claims are
/// about replacing operators in *trained* networks, and an under-fit
/// model can be accidentally improved by the PAF's smoothing.
pub fn mini_workbench(seed: u64) -> Workbench {
    let spec = SynthSpec::tiny(seed);
    let dataset = SynthDataset::new(spec);
    let config = TrainConfig {
        batches_per_epoch: 6,
        val_batches: 4,
        ..TrainConfig::test_scale(seed)
    };
    let mut rng = Rng64::new(seed);
    let model = mini_cnn(spec.classes, 0.25, &mut rng);
    Workbench::new(model, dataset, config, 12)
}

/// The architecture book page, included verbatim so every Rust code
/// fence in `docs/ARCHITECTURE.md` is compiled and run as a doctest —
/// the book cannot drift from the API.
#[doc = include_str!("../docs/ARCHITECTURE.md")]
pub mod architecture_doc {}

/// The plan-artifact wire-format spec, included verbatim so its Rust
/// code fences are compiled and run as doctests.
#[doc = include_str!("../docs/ARTIFACT_FORMAT.md")]
pub mod artifact_format_doc {}
