//! Workspace surface smoke test: constructs at least one object from
//! every public crate in the workspace, so a future manifest or
//! dependency-DAG regression fails fast with an obvious error instead
//! of deep inside an experiment binary.

use smartpaf::{TechniqueSet, TrainConfig, Workbench};
use smartpaf_bench::{scale_from_env, train_config, Scale};
use smartpaf_ckks::{CkksParams, Evaluator, KeyChain, PafEvaluator};
use smartpaf_datasets::{Split, SynthDataset, SynthSpec};
use smartpaf_heinfer::PipelineBuilder;
use smartpaf_hybrid::{scheme_cost, NetworkConfig, Scheme, WorkloadSpec};
use smartpaf_nn::{mini_cnn, Mode};
use smartpaf_polyfit::{CompositePaf, PafForm, Polynomial};
use smartpaf_tensor::{Rng64, Tensor};

/// params → context → keys → evaluator, and one encrypt/decrypt trip.
#[test]
fn ckks_stack_constructs() {
    let ctx = CkksParams::toy().build();
    let mut rng = Rng64::new(7);
    let keys = KeyChain::generate(&ctx, &mut rng);
    let pe = PafEvaluator::new(Evaluator::new(&keys));
    let ct = pe.evaluator().encrypt_values(&[0.25], &mut rng);
    let out = pe.evaluator().decrypt_values(&ct, 1);
    assert!(
        (out[0] - 0.25).abs() < 1e-2,
        "round trip drifted: {}",
        out[0]
    );
}

/// tensor → mini_cnn → one forward pass over a synthetic batch.
#[test]
fn nn_stack_forward_pass() {
    let spec = SynthSpec::tiny(3);
    let dataset = SynthDataset::new(spec);
    let (x, labels) = dataset.batch(Split::Train, 0, 2);
    let mut rng = Rng64::new(3);
    let mut model = mini_cnn(spec.classes, 0.25, &mut rng);
    let logits = model.forward(&x, Mode::Eval);
    assert_eq!(logits.data().len(), labels.len() * spec.classes);
}

/// polyfit PAFs and polynomials evaluate; heinfer compiles a pipeline.
#[test]
fn polyfit_and_heinfer_construct() {
    let p = Polynomial::new(vec![0.0, 1.0]);
    assert_eq!(p.eval(0.5), 0.5);

    let paf = CompositePaf::from_form(PafForm::F1G2);
    let pipe = PipelineBuilder::new(&[1, 4, 4])
        .paf_relu(&paf, 1.0)
        .compile();
    let x = vec![0.25f64; 16];
    let y = pipe.eval_plain(&x);
    assert_eq!(y.len(), 16);
}

/// smartpaf core: a Workbench builds (zero pretrain epochs) and a
/// tensor flows through its dataset accessor.
#[test]
fn smartpaf_workbench_constructs() {
    let spec = SynthSpec::tiny(5);
    let dataset = SynthDataset::new(spec);
    let mut rng = Rng64::new(5);
    let model = mini_cnn(spec.classes, 0.25, &mut rng);
    let wb = Workbench::new(model, dataset, TrainConfig::test_scale(5), 0);
    let (x, _) = wb.dataset().batch(Split::Val, 0, 1);
    let t: &Tensor = &x;
    assert!(!t.data().is_empty());
    let ts = TechniqueSet::smartpaf();
    assert!(ts.ct || ts.pa || ts.at, "smartpaf set enables techniques");
}

/// hybrid cost model and bench harness helpers stay callable.
#[test]
fn hybrid_and_bench_helpers_construct() {
    let cost = scheme_cost(
        Scheme::SmartPaf,
        &WorkloadSpec::resnet18_imagenet(),
        &NetworkConfig::lan(),
    );
    assert!(cost.latency_sec >= 0.0, "negative latency");

    std::env::remove_var("SMARTPAF_SCALE");
    assert_eq!(scale_from_env(), Scale::Test);
    let cfg = train_config(Scale::Test, 0);
    assert!(cfg.batches_per_epoch > 0);
}
