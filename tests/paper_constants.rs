//! Integration: paper-published constants and structural facts that
//! must hold across crates.

use smartpaf_ckks::CkksParams;
use smartpaf_nn::{resnet18, vgg19, OptimConfig};
use smartpaf_polyfit::{paper_coeffs, CompositePaf, PafForm};
use smartpaf_tensor::Rng64;

#[test]
fn model_nonpoly_counts_match_paper_section_5_1() {
    let mut rng = Rng64::new(1);
    let mut vgg = vgg19(10, 0.0625, &mut rng);
    assert_eq!(vgg.slot_counts(), (18, 5), "VGG-19: 18 ReLU + 5 MaxPool");
    let mut resnet = resnet18(10, 0.0625, &mut rng);
    assert_eq!(
        resnet.slot_counts(),
        (17, 1),
        "ResNet-18: 17 ReLU + 1 MaxPool"
    );
}

#[test]
fn tab2_depth_row() {
    let expected = [
        (PafForm::MinimaxDeg27, 10),
        (PafForm::F1SqG1Sq, 8),
        (PafForm::Alpha7, 6),
        (PafForm::F2G3, 6),
        (PafForm::F2G2, 6),
        (PafForm::F1G2, 5),
    ];
    for (form, depth) in expected {
        assert_eq!(
            CompositePaf::from_form(form).mult_depth(),
            depth,
            "{form} depth"
        );
    }
}

#[test]
fn tab5_hyperparameters() {
    let cfg = OptimConfig::paper_tab5();
    assert_eq!(cfg.paf.lr, 1e-4);
    assert_eq!(cfg.other.lr, 1e-5);
    assert_eq!(cfg.paf.weight_decay, 0.01);
    assert_eq!(cfg.other.weight_decay, 0.1);
}

#[test]
fn appendix_tables_cover_all_resnet_relus() {
    assert_eq!(paper_coeffs::RESNET18_RELU_LAYERS, 17);
    assert_eq!(paper_coeffs::F1G2_BEST.len(), 17);
    assert_eq!(paper_coeffs::F1SQ_G1SQ_BEST.len(), 17);
    assert_eq!(paper_coeffs::F2G3_BEST.len(), 17);
    assert_eq!(paper_coeffs::F2G2_BEST.len(), 17);
}

#[test]
fn paper_ckks_parameters_magnitude() {
    // Paper: SEAL CKKS with degree 32768 and 881 modulus bits.
    let p = CkksParams::paper_scale();
    assert_eq!(p.n, 32768);
    assert!((860..=900).contains(&p.modulus_bits()));
}

#[test]
fn comparator_sum_degree_is_27() {
    let paf = CompositePaf::from_form(PafForm::MinimaxDeg27);
    assert_eq!(paf.sum_degree(), 27);
    assert_eq!(paf.mult_depth(), 10);
}
