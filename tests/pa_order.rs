//! Extension experiment (DESIGN.md §5): Progressive Approximation's
//! replacement order, plus scheduler robustness checks.

use smartpaf::{EventKind, TechniqueSet};
use smartpaf_integration_tests::mini_workbench;
use smartpaf_polyfit::PafForm;

#[test]
fn pa_replaces_in_inference_order() {
    let mut wb = mini_workbench(301);
    let r = wb.run_cell(
        TechniqueSet {
            pa: true,
            ..TechniqueSet::baseline_ds()
        },
        PafForm::F1G2,
        false,
    );
    let order: Vec<usize> = r
        .events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Replacement(i) => Some(i),
            _ => None,
        })
        .collect();
    let sorted: Vec<usize> = (0..order.len()).collect();
    assert_eq!(order, sorted, "PA must follow inference order");
}

#[test]
fn relu_only_skips_maxpool_slots() {
    let mut wb = mini_workbench(302);
    let r = wb.run_cell(
        TechniqueSet {
            pa: true,
            ..TechniqueSet::baseline_ds()
        },
        PafForm::F1G2,
        true,
    );
    let replacements = r
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Replacement(_)))
        .count();
    // MiniCNN: 6 ReLU (replaced) + 2 MaxPool (skipped).
    assert_eq!(replacements, 6);
}

#[test]
fn every_step_ends_with_best_model_restored() {
    let mut wb = mini_workbench(303);
    let r = wb.run_cell(
        TechniqueSet {
            pa: true,
            at: true,
            ..TechniqueSet::baseline_ds()
        },
        PafForm::F2G2,
        true,
    );
    let steps = r
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::StepEnd))
        .count();
    assert_eq!(steps, 6, "one step per replaced slot");
    // The step-end accuracy must never be below the accuracy recorded
    // right after that step's replacement (best-model restoration).
    let mut last_replacement_acc = None;
    for e in &r.events {
        match e.kind {
            EventKind::Replacement(_) => last_replacement_acc = Some(e.val_acc),
            EventKind::StepEnd => {
                let base = last_replacement_acc.expect("replacement before step end");
                assert!(
                    e.val_acc >= base - 1e-6,
                    "step ended below its post-replacement accuracy: {} < {base}",
                    e.val_acc
                );
            }
            _ => {}
        }
    }
}

#[test]
fn events_epochs_are_monotonic() {
    let mut wb = mini_workbench(304);
    let r = wb.run_cell(TechniqueSet::smartpaf_ds(), PafForm::F1G2, false);
    let mut prev = 0;
    for e in &r.events {
        assert!(e.epoch >= prev, "epoch counter went backwards");
        prev = e.epoch;
    }
}
