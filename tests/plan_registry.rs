//! The plan registry across the public API: a plan saved by one
//! "process" and loaded by another compiles to a session that serves
//! bit-identically to a freshly planned one, warm starts spend
//! strictly fewer dry runs, and broken artifacts fail with the right
//! typed error instead of a wrong plan.

use proptest::prelude::*;
use smartpaf::{Objective, PlanRegistry, RegistryError, Session, SessionBuilder, FORMAT_VERSION};
use smartpaf_ckks::CkksParams;
use smartpaf_nn::Linear;
use smartpaf_tensor::Rng64;
use std::path::PathBuf;

/// A fresh registry directory unique to this test invocation.
fn registry_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "smartpaf-it-registry-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// `blocks` affine→ReLU blocks over a flat 4-vector on the toy ring.
fn blocks_builder(blocks: usize, scale: f64, layer_seed: u64) -> SessionBuilder {
    let mut rng = Rng64::new(layer_seed);
    let mut b = Session::builder(&[4]).params(CkksParams::toy());
    for _ in 0..blocks {
        b = b.affine(Linear::new(4, 4, &mut rng)).relu(scale);
    }
    b
}

fn inputs() -> Vec<Vec<f64>> {
    (0..3)
        .map(|i| (0..4).map(|j| ((i * 4 + j) as f64).sin()).collect())
        .collect()
}

#[test]
fn shipped_plan_serves_bit_identically() {
    let dir = registry_dir("bit-identical");
    let build = || {
        blocks_builder(2, 2.0, 17)
            .objective(Objective::MinBootstraps)
            .seed(17)
    };

    // "Process A": plan, serve, publish.
    let writer = PlanRegistry::open(&dir).expect("open writer");
    let fresh_plan = build().plan().expect("plan");
    let key = writer.save_plan(&fresh_plan).expect("save");
    let mut fresh = fresh_plan.compile().expect("compile fresh");

    // "Process B": a separate registry handle on the same directory
    // (the in-process stand-in for a second invocation; the CI
    // registry-smoke job and `registry_demo` do it across two real
    // processes).
    let reader = PlanRegistry::open(&dir).expect("open reader");
    let loaded_plan = reader.load_plan(build()).expect("load");
    assert_eq!(loaded_plan.dry_runs_used(), 0, "loading must not plan");
    assert_eq!(
        loaded_plan.chosen().forms,
        build().plan().expect("replan").chosen().forms
    );
    let mut loaded = loaded_plan.compile().expect("compile loaded");

    for x in inputs() {
        let a = fresh.infer(&x).expect("fresh infer");
        let b = loaded.infer(&x).expect("loaded infer");
        assert_eq!(a, b, "shipped plan must serve bit-identically");
    }
    assert_eq!(reader.list().expect("list")[0].content_key, key);
}

#[test]
fn warm_start_spends_strictly_fewer_dry_runs() {
    let dir = registry_dir("warm-start");
    let registry = PlanRegistry::open(&dir).expect("open");

    // Publish a neighbour: same structure, different weights.
    let neighbour = blocks_builder(3, 2.0, 5)
        .objective(Objective::MinBootstraps)
        .plan()
        .expect("neighbour plan");
    registry.save_plan(&neighbour).expect("publish");

    let cold = blocks_builder(3, 2.0, 6)
        .objective(Objective::MinBootstraps)
        .plan()
        .expect("cold plan");
    let warm = blocks_builder(3, 2.0, 6)
        .objective(Objective::MinBootstraps)
        .registry(&registry)
        .plan()
        .expect("warm plan");

    assert_eq!(warm.chosen().forms, cold.chosen().forms);
    assert!(
        warm.dry_runs_used() < cold.dry_runs_used(),
        "warm start must spend strictly fewer dry runs ({} vs {})",
        warm.dry_runs_used(),
        cold.dry_runs_used()
    );
}

#[test]
fn corrupt_envelopes_are_rejected() {
    let dir = registry_dir("corrupt");
    let build = || blocks_builder(1, 2.0, 23).seed(23);
    let registry = PlanRegistry::open(&dir).expect("open");
    let key = registry
        .save_plan(&build().plan().expect("plan"))
        .expect("save");

    // Flip a stored planning input: the artifact still parses but
    // contradicts the model it is addressed to.
    let path = dir.join(format!("{key}.json"));
    let text = std::fs::read_to_string(&path).expect("read artifact");
    let edited = text.replace("\"max_dry_runs\": 96", "\"max_dry_runs\": 7");
    assert_ne!(text, edited, "fixture must actually edit the envelope");
    std::fs::write(&path, edited).expect("write edited");
    match registry.load_plan(build()) {
        Err(RegistryError::Corrupt { .. }) => {}
        other => panic!("edited envelope must be Corrupt, got {other:?}"),
    }

    // Broken JSON is a parse error, not a wrong plan.
    std::fs::write(&path, "{ not json").expect("write broken");
    match registry.load_plan(build()) {
        Err(RegistryError::Parse { .. }) => {}
        other => panic!("broken JSON must be Parse, got {other:?}"),
    }
}

#[test]
fn future_format_versions_are_rejected() {
    let dir = registry_dir("version");
    let build = || blocks_builder(1, 2.0, 29).seed(29);
    let registry = PlanRegistry::open(&dir).expect("open");
    let key = registry
        .save_plan(&build().plan().expect("plan"))
        .expect("save");

    let path = dir.join(format!("{key}.json"));
    let text = std::fs::read_to_string(&path).expect("read artifact");
    let needle = format!("\"format_version\": {FORMAT_VERSION}");
    let edited = text.replace(&needle, "\"format_version\": 999");
    assert_ne!(text, edited, "fixture must actually bump the version");
    std::fs::write(&path, edited).expect("write edited");

    match registry.load_plan(build()) {
        Err(RegistryError::VersionMismatch {
            found: 999,
            supported,
        }) => {
            assert_eq!(supported, FORMAT_VERSION)
        }
        other => panic!("future version must be VersionMismatch, got {other:?}"),
    }
}

#[test]
fn missing_artifacts_are_not_found() {
    let dir = registry_dir("missing");
    let registry = PlanRegistry::open(&dir).expect("open");
    match registry.load_plan(blocks_builder(1, 2.0, 31)) {
        Err(RegistryError::NotFound { key }) => assert_eq!(key.len(), 16),
        other => panic!("empty registry must be NotFound, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any small model / objective / seed: save_plan → load_plan
    /// → compile serves bit-identically to the freshly planned
    /// session, with zero dry runs spent on the load side.
    #[test]
    fn round_trip_is_bit_identical_for_any_model(
        layer_seed in 0u64..200,
        session_seed in 0u64..200,
        blocks in 1usize..3,
        scale in 1.0f64..5.0,
        objective_pick in 0usize..2,
    ) {
        let min_latency = objective_pick == 1;
        let objective = if min_latency {
            Objective::MinLatency { max_acc_drop: 0.9 }
        } else {
            Objective::MinBootstraps
        };
        let dir = registry_dir(&format!("prop-{layer_seed}-{session_seed}-{blocks}-{min_latency}"));
        let registry = PlanRegistry::open(&dir).expect("open");
        let build = || blocks_builder(blocks, scale, layer_seed)
            .objective(objective)
            .seed(session_seed);

        let fresh_plan = build().plan().expect("plan");
        registry.save_plan(&fresh_plan).expect("save");
        let loaded_plan = registry.load_plan(build()).expect("load");
        prop_assert_eq!(loaded_plan.dry_runs_used(), 0);

        let mut fresh = fresh_plan.compile().expect("compile fresh");
        let mut loaded = loaded_plan.compile().expect("compile loaded");
        for x in inputs() {
            let a = fresh.infer(&x).expect("fresh infer");
            let b = loaded.infer(&x).expect("loaded infer");
            prop_assert_eq!(a, b);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
