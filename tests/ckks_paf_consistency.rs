//! Integration: the CKKS evaluator and the plaintext PAF machinery
//! must compute the same function, form by form.

use smartpaf_ckks::{CkksParams, Evaluator, KeyChain, PafEvaluator};
use smartpaf_polyfit::{CompositePaf, PafForm};
use smartpaf_tensor::Rng64;

fn rig(seed: u64) -> (PafEvaluator, Rng64) {
    let ctx = CkksParams::toy().build();
    let mut rng = Rng64::new(seed);
    let keys = KeyChain::generate(&ctx, &mut rng);
    (PafEvaluator::new(Evaluator::new(&keys)), rng)
}

#[test]
fn every_form_relu_matches_plaintext() {
    let (pe, mut rng) = rig(201);
    let xs: Vec<f64> = vec![-0.8, -0.4, -0.1, 0.2, 0.6, 0.9];
    for form in PafForm::all() {
        let paf = CompositePaf::from_form(form);
        let ct = pe.evaluator().encrypt_values(&xs, &mut rng);
        let out = pe.evaluator().decrypt_values(&pe.relu(&ct, &paf), xs.len());
        for (x, got) in xs.iter().zip(&out) {
            let want = paf.relu(*x);
            assert!(
                (got - want).abs() < 5e-2,
                "{form}: relu({x}) = {got}, want {want}"
            );
        }
    }
}

#[test]
fn depth_consumption_matches_analysis() {
    let (pe, mut rng) = rig(202);
    for form in PafForm::all() {
        let paf = CompositePaf::from_form(form);
        let ct = pe.evaluator().encrypt_values(&[0.5], &mut rng);
        let out = pe.relu(&ct, &paf);
        assert_eq!(
            ct.level() - out.level(),
            PafEvaluator::relu_depth(&paf),
            "{form}: depth mismatch"
        );
    }
}

#[test]
fn static_scale_folding_matches_encrypted_path() {
    // SS folds the scale into the PAF input; the encrypted evaluation
    // of the folded PAF on x must match the plain PAF on x/s.
    let (pe, mut rng) = rig(203);
    let paf = CompositePaf::from_form(PafForm::F2G2);
    let s = 4.0;
    let folded = paf.with_input_scale(1.0 / s);
    let xs = vec![-3.0, -1.0, 0.5, 2.0, 3.5];
    let ct = pe.evaluator().encrypt_values(&xs, &mut rng);
    let out = pe
        .evaluator()
        .decrypt_values(&pe.eval_composite(&ct, &folded), xs.len());
    for (x, got) in xs.iter().zip(&out) {
        let want = paf.eval(x / s);
        assert!((got - want).abs() < 5e-2, "x={x}: {got} vs {want}");
    }
}
