//! Cross-crate integration: the full private-inference story — train-
//! side artifacts (CT-tuned PAFs, static scales) flowing into the
//! rotation-based encrypted inference pipeline, and search-derived
//! composites running under real CKKS.

use smartpaf_ckks::{Bootstrapper, CkksParams, Evaluator, KeyChain, PafEvaluator};
use smartpaf_heinfer::PipelineBuilder;
use smartpaf_nn::{BatchNorm2d, Conv2d, Flatten, Layer, Linear, Mode};
use smartpaf_polyfit::{
    min_depth_composite, tune_composite, ActivationProfile, CompositePaf, PafForm, SearchConfig,
    TuneConfig,
};
use smartpaf_tensor::{Rng64, Tensor};

fn setup_he(seed: u64) -> (PafEvaluator, Rng64) {
    let ctx = CkksParams::toy().build();
    let mut rng = Rng64::new(seed);
    let keys = KeyChain::generate(&ctx, &mut rng);
    (PafEvaluator::new(Evaluator::new(&keys)), rng)
}

/// A CT-tuned PAF (fit to a profiled activation distribution, the
/// paper's §4.2) must survive the trip into the encrypted pipeline:
/// encrypted outputs match the plaintext PAF reference, and the tuned
/// PAF beats the untuned one on the profiled distribution.
#[test]
fn ct_tuned_paf_runs_encrypted() {
    // Profile: activations concentrated in [-0.3, 0.3] (post-BN conv
    // outputs scaled by the running max).
    let mut rng = Rng64::new(71);
    let samples: Vec<f32> = (0..4096).map(|_| (rng.next_f32() - 0.5) * 0.6).collect();
    let profile = ActivationProfile::from_samples(&samples, 64);
    let base = CompositePaf::from_form(PafForm::F1G2);
    let (tuned, _) = tune_composite(&base, &profile, &TuneConfig::default());

    // The tuned PAF should fit the profiled (narrow) range better.
    let err = |paf: &CompositePaf| -> f64 {
        (0..200)
            .map(|i| {
                let x = -0.3 + 0.6 * i as f64 / 199.0;
                let want = if x > 0.0 { x } else { 0.0 };
                (paf.relu(x) - want).abs()
            })
            .fold(0.0f64, f64::max)
    };
    // CT minimises the histogram-weighted mean error, so the max error
    // on the profiled range may wiggle slightly; it must not degrade
    // materially.
    assert!(
        err(&tuned) <= err(&base) * 1.15,
        "CT degraded the profiled range: {} vs {}",
        err(&tuned),
        err(&base)
    );

    // Encrypted evaluation of the tuned PAF.
    let (pe, mut rng) = setup_he(72);
    let xs: Vec<f64> = vec![-0.28, -0.1, 0.05, 0.22];
    let ct = pe.evaluator().encrypt_values(&xs, &mut rng);
    let out = pe
        .evaluator()
        .decrypt_values(&pe.relu(&ct, &tuned), xs.len());
    for (x, got) in xs.iter().zip(&out) {
        let want = tuned.relu(*x);
        assert!((got - want).abs() < 4e-2, "relu({x}) = {got}, want {want}");
    }
}

/// A search-derived minimal-depth composite evaluates correctly under
/// CKKS: the encrypted sign approximation stays within the search
/// tolerance plus ciphertext noise.
#[test]
fn searched_composite_signs_under_encryption() {
    let cfg = SearchConfig {
        max_stages: 3,
        samples: 101,
        ..SearchConfig::default()
    };
    let cand = min_depth_composite(&cfg, 0.25).expect("tolerance reachable");
    let paf = cand.to_composite();
    assert!(
        paf.mult_depth() <= 8,
        "search should find a shallow composite"
    );

    let (pe, mut rng) = setup_he(73);
    let xs: Vec<f64> = vec![-0.9, -0.5, -0.1, 0.1, 0.5, 0.9];
    let ct = pe.evaluator().encrypt_values(&xs, &mut rng);
    let out = pe
        .evaluator()
        .decrypt_values(&pe.eval_composite(&ct, &paf), xs.len());
    for (x, got) in xs.iter().zip(&out) {
        let sign = if *x > 0.0 { 1.0 } else { -1.0 };
        assert!(
            (got - sign).abs() < cand.max_error + 0.05,
            "sign({x}) = {got} (cand error {})",
            cand.max_error
        );
    }
}

/// End-to-end: an eval-mode CNN (conv + BN + PAF-ReLU + FC) compiled
/// into the encrypted pipeline classifies like its plaintext PAF
/// reference, and that reference tracks the exact-ReLU network.
#[test]
fn encrypted_cnn_matches_plain_and_exact() {
    let mut rng = Rng64::new(74);
    let paf = CompositePaf::from_form(PafForm::Alpha7);
    let scale = 6.0;

    // Exact-ReLU reference network (same weights via same seed).
    let mut conv = Conv2d::new(1, 2, 3, 1, 1, &mut Rng64::new(74));
    let mut bn = BatchNorm2d::new(2);
    let mut flat = Flatten::new();
    let mut lin = Linear::new(2 * 16, 4, &mut {
        let mut r = Rng64::new(74);
        let _ = Conv2d::new(1, 2, 3, 1, 1, &mut r); // burn the same stream
        r
    });
    let x = Tensor::rand_normal(&[1, 1, 4, 4], 0.0, 1.0, &mut rng);
    let h = conv.forward(&x, Mode::Eval);
    let h = bn.forward(&h, Mode::Eval);
    let h_exact = h.map(|v| v.max(0.0));
    let h_exact = flat.forward(&h_exact, Mode::Eval);
    let exact_logits = lin.forward(&h_exact, Mode::Eval);

    // PAF pipeline with the identical weight stream.
    let mut stream = Rng64::new(74);
    let conv2 = Conv2d::new(1, 2, 3, 1, 1, &mut stream);
    let lin2 = Linear::new(2 * 16, 4, &mut stream);
    let pipe = PipelineBuilder::new(&[1, 4, 4])
        .affine(conv2)
        .affine(BatchNorm2d::new(2))
        .paf_relu(&paf, scale)
        .affine(Flatten::new())
        .affine(lin2)
        .compile()
        .fold_scales();

    let flat_x: Vec<f64> = x.data().iter().map(|&v| v as f64).collect();
    let plain = pipe.eval_plain(&flat_x);

    // Plain PAF logits track the exact-ReLU logits.
    for (p, e) in plain.iter().zip(exact_logits.data()) {
        assert!(
            (p - *e as f64).abs() < 0.35,
            "PAF-vs-exact drift: {p} vs {e}"
        );
    }

    // Encrypted logits track the plain PAF logits tightly.
    let (pe, mut rng) = setup_he(75);
    let bs = Bootstrapper::new(pe.evaluator().clone(), pipe.dim(), 9);
    let ct = pe
        .evaluator()
        .encrypt_replicated(&pipe.pad_input(&flat_x), &mut rng);
    let (out_ct, stats) = pipe.eval_encrypted(&pe, Some(&bs), &ct);
    let enc = pe.evaluator().decrypt_values(&out_ct, pipe.output_dim());
    for (g, p) in enc.iter().zip(&plain) {
        assert!((g - p).abs() < 0.1, "encrypted {g} vs plain {p}");
    }
    assert!(stats.final_level <= pe.evaluator().context().max_level());
}

/// MaxPool under encryption propagates approximation error through the
/// nested fold but stays close to true max pooling — §5.4.3's claim,
/// measured end to end.
#[test]
fn encrypted_maxpool_error_bounded() {
    let paf = CompositePaf::from_form(PafForm::Alpha7);
    let pipe = PipelineBuilder::new(&[1, 4, 4])
        .paf_maxpool(2, 2, &paf, 4.0)
        .compile();
    let x: Vec<f64> = (0..16).map(|i| ((i * 5) % 9) as f64 / 3.0 - 1.2).collect();
    // True max pooling.
    let mut want = [f64::NEG_INFINITY; 4];
    for oy in 0..2 {
        for ox in 0..2 {
            for dy in 0..2 {
                for dx in 0..2 {
                    let v = x[(oy * 2 + dy) * 4 + ox * 2 + dx];
                    want[oy * 2 + ox] = want[oy * 2 + ox].max(v);
                }
            }
        }
    }
    let (pe, mut rng) = setup_he(76);
    let bs = Bootstrapper::new(pe.evaluator().clone(), pipe.dim(), 11);
    let ct = pe
        .evaluator()
        .encrypt_replicated(&pipe.pad_input(&x), &mut rng);
    let (out_ct, _) = pipe.eval_encrypted(&pe, Some(&bs), &ct);
    let got = pe.evaluator().decrypt_values(&out_ct, 4);
    for i in 0..4 {
        assert!(
            (got[i] - want[i]).abs() < 0.3,
            "window {i}: {} vs true max {}",
            got[i],
            want[i]
        );
    }
}
