//! Ad-hoc profiling of packed vs unpacked inference cost (ignored by
//! default; run with `cargo test --release --test pack_profile -- --ignored --nocapture`).

use smartpaf::{CompiledSession, Objective, Session, SessionError};
use smartpaf_ckks::CkksParams;
use smartpaf_heinfer::BatchRunner;
use smartpaf_nn::{Conv2d, Flatten, Linear};
use smartpaf_polyfit::PafForm;
use smartpaf_tensor::Rng64;
use std::time::Instant;

fn session() -> Result<CompiledSession, SessionError> {
    let mut rng = Rng64::new(9000);
    let mut session = Session::builder(&[1, 8, 8])
        .affine(Conv2d::new(1, 1, 3, 1, 1, &mut rng))
        .relu(4.0)
        .maxpool(2, 2, 4.0)
        .affine(Flatten::new())
        .affine(Linear::new(16, 16, &mut rng))
        .params(CkksParams::default_params())
        .objective(Objective::FixedForm(PafForm::F1G2))
        .seed(9000)
        .plan()?
        .compile()?;
    session.set_batch_runner(BatchRunner::new(1));
    Ok(session)
}

#[test]
#[ignore]
fn profile_packed_scaling() {
    let mut s = session().unwrap();
    let x: Vec<f64> = (0..64).map(|j| (j % 17) as f64 / 8.5 - 1.0).collect();
    for i in 0..2 {
        let t = Instant::now();
        s.infer(&x).unwrap();
        println!("infer #{i}: {:?}", t.elapsed());
    }
    for lanes in [2usize, 4, 8] {
        let inputs: Vec<Vec<f64>> = (0..lanes)
            .map(|i| {
                (0..64)
                    .map(|j| ((i * 13 + j * 5) % 17) as f64 / 8.5 - 1.0)
                    .collect()
            })
            .collect();
        let t = Instant::now();
        let run = s.infer_batch_packed(&inputs).unwrap();
        println!(
            "packed {lanes} cold: {:?}  bootstraps {}",
            t.elapsed(),
            run.stats.iter().map(|st| st.bootstraps).sum::<usize>()
        );
        let t = Instant::now();
        s.infer_batch_packed(&inputs).unwrap();
        println!("packed {lanes} warm: {:?}", t.elapsed());
    }
}
