//! Cross-crate tests of the serving layer: the dynamic batcher
//! coalescing queued same-tenant requests into `BatchRunner` batches
//! with outputs bit-identical to sequential `infer` calls, graceful
//! shutdown draining real sessions, and per-tenant isolation through
//! the session cache.

use smartpaf::{
    serve_sessions, serve_sessions_packed, CompiledSession, Objective, Session, SessionError,
};
use smartpaf_ckks::CkksParams;
use smartpaf_heinfer::serve::{ServeConfig, TenantId};
use smartpaf_heinfer::BatchRunner;
use smartpaf_nn::Linear;
use smartpaf_tensor::Rng64;
use std::time::Duration;

/// A deep enough chain to force bootstraps (three ReLU blocks exceed
/// the toy chain), compiled deterministically from the tenant id. The
/// single-threaded runner keeps batched evaluation in input order, so
/// the bootstrapper's RNG stream matches sequential inference draw for
/// draw — the precondition for the bit-identical pin below.
fn tenant_session(tenant: TenantId) -> Result<CompiledSession, SessionError> {
    let mut rng = Rng64::new(tenant.wrapping_add(100));
    let mut b = Session::builder(&[4])
        .params(CkksParams::toy())
        .objective(Objective::MinBootstraps)
        .seed(tenant.wrapping_add(100));
    for _ in 0..3 {
        b = b.affine(Linear::new(4, 4, &mut rng)).relu(2.0);
    }
    let mut session = b.plan()?.compile()?;
    session.set_batch_runner(BatchRunner::new(1));
    Ok(session)
}

fn request_inputs(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| (0..4).map(|j| ((i * 4 + j) as f64 - 8.0) / 10.0).collect())
        .collect()
}

fn burst_config(max_batch: usize) -> ServeConfig {
    ServeConfig {
        queue_capacity: 32,
        max_batch,
        batch_deadline: Duration::ZERO,
        pack_lanes: false,
    }
}

#[test]
fn coalesced_batches_are_bit_identical_to_sequential_inference() {
    // The acceptance pin: N queued same-tenant requests execute in
    // ≤ ceil(N/cap) BatchRunner calls, and every output is
    // *bit-identical* to N sequential `infer` calls on an identically
    // constructed session — the session's encryption RNG and the
    // bootstrapper's refresh RNG are separate streams, each drawn in
    // input order on both paths.
    let n = 6;
    let cap = 4;
    let inputs = request_inputs(n);

    let server = serve_sessions(tenant_session, burst_config(cap));
    server.pause(); // stage the burst so coalescing is deterministic
    let tickets: Vec<_> = inputs
        .iter()
        .map(|x| server.submit(5, x.clone()).expect("queue has room"))
        .collect();
    assert_eq!(server.queue_depth(), n);
    server.resume();
    let served: Vec<Vec<f64>> = tickets
        .into_iter()
        .map(|t| t.wait().expect("request served"))
        .collect();
    let stats = server.shutdown();

    assert_eq!(stats.served, n);
    assert!(
        stats.batches <= n.div_ceil(cap),
        "{n} requests under cap {cap} must coalesce into ≤ {} batches, ran {}",
        n.div_ceil(cap),
        stats.batches
    );
    assert_eq!(stats.batch_fill[cap], 1, "first batch fills to the cap");

    let mut reference = tenant_session(5).expect("same factory compiles");
    for (i, x) in inputs.iter().enumerate() {
        let want = reference.infer(x).expect("sequential inference");
        assert_eq!(
            served[i], want,
            "request {i}: served output must be bit-identical to sequential infer"
        );
    }
}

#[test]
fn graceful_shutdown_drains_real_sessions() {
    let server = serve_sessions(tenant_session, burst_config(8));
    server.pause();
    let tickets: Vec<_> = request_inputs(3)
        .into_iter()
        .map(|x| server.submit(2, x).expect("queue has room"))
        .collect();
    // Shutdown is called while everything still sits in the queue (the
    // batcher is paused); the drain must answer all three.
    let stats = server.shutdown();
    assert_eq!(stats.served, 3, "shutdown drains queued requests");
    for t in tickets {
        t.wait().expect("drained request carries its output");
    }
}

#[test]
fn packed_serving_keeps_tenants_in_separate_ciphertexts() {
    // Slot packing multiplexes *same-tenant* requests into one
    // ciphertext; interleaved tenants must still land in separate
    // packed ciphertexts (they hold different keys — sharing one would
    // corrupt every lane). Each answer is checked against its own
    // tenant's plaintext reference, and the slot-occupancy stats pin
    // exactly one packed ciphertext per tenant.
    let per_tenant = 5;
    let config = ServeConfig {
        queue_capacity: 32,
        max_batch: 2,
        batch_deadline: Duration::ZERO,
        pack_lanes: true,
    };
    let server = serve_sessions_packed(tenant_session, config);
    server.pause(); // stage the interleaved burst
    let mut tickets = Vec::new();
    for i in 0..per_tenant {
        for tenant in [1u64, 2] {
            let x: Vec<f64> = (0..4)
                .map(|j| ((tenant as usize * 16 + i * 4 + j) as f64 - 20.0) / 40.0)
                .collect();
            let ticket = server.submit(tenant, x.clone()).expect("queue has room");
            tickets.push((tenant, i, x, ticket));
        }
    }
    server.resume();
    let answers: Vec<(u64, usize, Vec<f64>, Vec<f64>)> = tickets
        .into_iter()
        .map(|(tenant, i, x, t)| (tenant, i, x, t.wait().expect("request served")))
        .collect();
    let stats = server.shutdown();

    assert_eq!(stats.served, 2 * per_tenant);
    // 5 requests fit one 32-lane ciphertext, so each tenant's burst is
    // exactly one packed ciphertext — never a shared one.
    assert_eq!(stats.slot_batches, 2, "one packed ciphertext per tenant");
    assert_eq!(stats.slot_fill[per_tenant], 2);
    assert!((stats.mean_slot_fill() - per_tenant as f64).abs() < 1e-9);

    let mut ref1 = tenant_session(1).expect("same factory compiles");
    let mut ref2 = tenant_session(2).expect("same factory compiles");
    for (tenant, i, x, out) in &answers {
        let reference = if *tenant == 1 { &mut ref1 } else { &mut ref2 };
        let want = reference.infer_plain(x).expect("valid input");
        for (o, w) in out.iter().zip(&want) {
            assert!(
                (o - w).abs() < 0.25,
                "tenant {tenant} request {i}: served {o} vs plain {w}"
            );
        }
    }
    // Different tenants hold different weights: same request index,
    // different answers.
    assert_ne!(answers[0].3, answers[1].3);
}

#[test]
fn tenants_are_isolated_through_the_session_cache() {
    let server = serve_sessions(tenant_session, burst_config(4));
    let x = vec![0.3, -0.1, 0.5, -0.7];
    let a = server.submit(1, x.clone()).unwrap().wait().unwrap();
    let b = server.submit(2, x.clone()).unwrap().wait().unwrap();
    let a2 = server.submit(1, x.clone()).unwrap().wait().unwrap();
    let stats = server.shutdown();
    assert_eq!(stats.served, 3);
    assert_ne!(a, b, "different tenants hold different weights and keys");

    // Tenant 1's second request rode the *cached* session, so it
    // continues that session's RNG stream — byte-for-byte the same as
    // a reference session serving the same two requests in order.
    let mut reference = tenant_session(1).unwrap();
    assert_eq!(a, reference.infer(&x).unwrap());
    assert_eq!(a2, reference.infer(&x).unwrap());
}
