//! Cross-crate tests of the typed-state Session API: trace-priced
//! planning over per-slot form vectors, plan ↔ runtime agreement, and
//! the delegating old entry points staying consistent with the
//! session path.

use smartpaf::{Objective, PlanBudget, Session, SessionBuilder};
use smartpaf_ckks::CkksParams;
use smartpaf_nn::{Conv2d, Flatten, Linear};
use smartpaf_polyfit::{CompositePaf, PafForm};
use smartpaf_tensor::Rng64;

/// The MNIST-scale ablation pipeline: conv → ReLU → 2×2 maxpool →
/// linear head over an 8×8 image.
fn cnn_builder(seed: u64) -> SessionBuilder {
    let mut rng = Rng64::new(seed);
    Session::builder(&[1, 8, 8])
        .affine(Conv2d::new(1, 2, 3, 1, 1, &mut rng))
        .relu(6.0)
        .maxpool(2, 2, 8.0)
        .affine(Flatten::new())
        .affine(Linear::new(32, 10, &mut rng))
        .params(CkksParams::toy())
        .seed(seed)
}

#[test]
fn plan_selects_by_traced_cost_not_depth_alone() {
    // On the deep conv+pool pipeline every form bootstraps, and the
    // *deepest* form seeds min-bootstraps: the 27-degree comparator's
    // fold refreshes less often per round than the shallow forms. A
    // depth-ranked search would pick f1∘g2; the trace oracle must not.
    let plan = cnn_builder(41)
        .objective(Objective::MinBootstraps)
        .plan()
        .expect("every form fits the toy chain");
    let chosen = plan.chosen();
    let f1g2 = plan
        .candidates()
        .iter()
        .find(|c| c.uniform_form() == Some(PafForm::F1G2))
        .expect("uniform f1∘g2 among the candidates");
    assert!(
        chosen.cost.bootstraps < f1g2.cost.bootstraps,
        "chosen {:?} must beat the shallowest form {:?} on traced bootstraps",
        chosen.cost,
        f1g2.cost
    );
    assert!(
        chosen.cost.relu_levels > f1g2.cost.relu_levels,
        "the traced winner is deeper than the depth-ranked winner"
    );
    // The depth-ranked pick would be the unique minimal-depth form.
    let min_depth = plan
        .candidates()
        .iter()
        .map(|c| c.cost.relu_levels)
        .min()
        .expect("non-empty");
    assert_ne!(chosen.cost.relu_levels, min_depth);
}

#[test]
fn mixed_vector_strictly_beats_the_best_uniform_form() {
    // The per-slot pin (the vector analogue of the depth-vs-trace pin
    // above): on a 13-level chain the deep comparator ReLU leaves the
    // chain empty right before the pool — a cheap refresh of one
    // ciphertext — while its own fold wastes levels and the shallow
    // forms force a refresh of every fold operand. Brute force over
    // all 6² vectors says best uniform = 3 bootstraps, best mixed
    // ([α=10 ReLU, f1∘g2 pool]) = 2. The planner's greedy sweep must
    // find a strictly better mixed vector from the uniform seed.
    let plan = cnn_builder(43)
        .params(CkksParams {
            depth: 13,
            ..CkksParams::toy()
        })
        .objective(Objective::MinBootstraps)
        .plan()
        .expect("every form fits a 13-level chain");
    let best_uniform = plan
        .candidates()
        .iter()
        .filter(|c| c.uniform_form().is_some())
        .map(|c| c.cost.bootstraps)
        .min()
        .expect("uniform candidates evaluated");
    let chosen = plan.chosen();
    assert!(
        chosen.uniform_form().is_none(),
        "the winner must be a genuinely mixed vector, got {:?}",
        plan.chosen_forms()
    );
    assert!(
        chosen.cost.bootstraps < best_uniform,
        "mixed vector {:?} ({} bootstraps) must strictly beat the best \
         uniform form ({best_uniform} bootstraps)",
        plan.chosen_forms(),
        chosen.cost.bootstraps
    );

    // The compiled session executes the mixed vector: measured
    // bootstraps equal the traced count, and the encrypted output
    // agrees with the plain backend within CKKS noise.
    let traced = plan.traced_bootstraps();
    let forms = plan.chosen_forms().to_vec();
    let mut session = plan.compile().expect("toy ring compiles");
    assert_eq!(session.chosen_forms(), &forms[..]);
    let x: Vec<f64> = (0..64).map(|i| ((i % 9) as f64 - 4.0) / 4.0).collect();
    let enc = session.infer(&x).expect("serves the mixed vector");
    let plain = session.infer_plain(&x).expect("valid input");
    for (e, p) in enc.iter().zip(&plain) {
        assert!((e - p).abs() < 0.2, "{e} vs {p}");
    }
    let stats = session.last_stats().expect("stats recorded");
    assert_eq!(stats.bootstraps, traced, "plan-time vs measured bootstraps");
}

#[test]
fn uniform_budget_matches_the_searched_plan_prefix() {
    // PlanBudget::uniform() is the legacy single-form planner; its
    // candidate rows must price byte-identically to the uniform prefix
    // of the searched plan on the same pipeline.
    let uniform = cnn_builder(47)
        .budget(PlanBudget::uniform())
        .plan()
        .expect("plannable");
    let searched = cnn_builder(47).plan().expect("plannable");
    assert!(uniform
        .candidates()
        .iter()
        .all(|c| c.uniform_form().is_some()));
    for (u, s) in uniform
        .candidates()
        .iter()
        .zip(searched.candidates().iter())
    {
        assert_eq!(u, s);
    }
}

#[test]
fn traced_plan_cost_matches_measured_encrypted_run() {
    // Three ReLU blocks exceed the toy chain, so the plan predicts
    // real bootstraps — and one encrypted run must measure exactly
    // that schedule.
    let mut rng = Rng64::new(42);
    let mut b = Session::builder(&[4]).params(CkksParams::toy()).seed(42);
    for _ in 0..3 {
        b = b.affine(Linear::new(4, 4, &mut rng)).relu(2.0);
    }
    let plan = b
        .objective(Objective::FixedForm(PafForm::F1G2))
        .plan()
        .expect("f1∘g2 fits the toy chain");
    let traced = plan.traced_bootstraps();
    assert!(traced >= 1, "the deep pipeline must force bootstraps");
    let trace_levels: Vec<usize> = plan
        .chosen_trace()
        .stages
        .iter()
        .map(|s| s.levels)
        .collect();

    let mut session = plan.compile().expect("toy ring compiles");
    let x = [0.2, -0.4, 0.6, -0.8];
    let enc = session.infer(&x).expect("serves");
    let plain = session.infer_plain(&x).expect("valid input");
    for (e, p) in enc.iter().zip(&plain) {
        assert!((e - p).abs() < 0.15, "{e} vs {p}");
    }
    let stats = session.last_stats().expect("stats recorded").clone();
    assert_eq!(stats.bootstraps, traced, "plan-time vs measured bootstraps");
    assert_eq!(stats.stage_levels, trace_levels);

    // The batch path measures the same schedule per input.
    let run = session
        .infer_batch(&[x.to_vec(), x.to_vec()])
        .expect("batch");
    for s in &run.stats {
        assert_eq!(s.bootstraps, traced);
        assert_eq!(s.stage_levels, stats.stage_levels);
    }
}

#[test]
fn session_agrees_with_legacy_entry_points() {
    // The session's canonical-probe ranking and the legacy
    // `rank_forms_by_dry_run` wrapper must agree on cost rows for the
    // single-ReLU probe pipeline they share.
    let forms = [PafForm::F1G2, PafForm::Alpha7, PafForm::MinimaxDeg27];
    let ranked = smartpaf::rank_forms_by_dry_run(&forms, 12).expect("all fit");
    let plan = Session::builder(&[4])
        .relu(1.0)
        .params(CkksParams::toy())
        .candidates(&forms)
        .objective(Objective::MinBootstraps)
        .plan()
        .expect("plannable");
    for cost in &ranked {
        let candidate = plan
            .candidates()
            .iter()
            .find(|c| c.uniform_form() == Some(cost.form))
            .expect("every ranked form was planned");
        assert_eq!(candidate.cost.bootstraps, cost.bootstraps, "{}", cost.form);
        assert_eq!(candidate.cost.ct_mults, cost.ct_mults, "{}", cost.form);
        assert_eq!(
            candidate.cost.relu_levels, cost.relu_levels,
            "{}",
            cost.form
        );
    }
    assert_eq!(plan.chosen_form(), ranked[0].form);
}

#[test]
fn default_candidates_honour_the_chain_depth() {
    // An 8-level chain silently drops the two deepest forms from the
    // default candidate set, matching the polyfit enumeration helper.
    let mut rng = Rng64::new(43);
    let plan = Session::builder(&[4])
        .affine(Linear::new(4, 4, &mut rng))
        .relu(2.0)
        .params(CkksParams {
            depth: 8,
            ..CkksParams::toy()
        })
        .plan()
        .expect("four forms fit 8 levels");
    let planned: Vec<PafForm> = plan
        .candidates()
        .iter()
        .map(|c| c.uniform_form().expect("one-slot plans stay uniform"))
        .collect();
    assert_eq!(planned, CompositePaf::candidate_forms(8));
    assert!(!planned.contains(&PafForm::MinimaxDeg27));
}
