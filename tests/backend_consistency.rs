//! Cross-crate integration: the `InferenceBackend` stack end to end.
//!
//! One compiled pipeline runs through all three backends and the
//! threaded batch runner; the plain, encrypted, and traced views must
//! agree — outputs within the noise bound, level/bootstrap schedules
//! exactly, and trace ct-mult counts against the polyfit exact
//! schedule.

use smartpaf::rank_forms_by_dry_run;
use smartpaf_ckks::{Bootstrapper, CkksParams, Evaluator, KeyChain, PafEvaluator};
use smartpaf_heinfer::{BatchRunner, HePipeline, PipelineBuilder, RunError};
use smartpaf_nn::{Conv2d, Flatten, Linear};
use smartpaf_polyfit::{CompositePaf, PafForm};
use smartpaf_tensor::Rng64;

fn cnn_pipeline(seed: u64) -> HePipeline {
    let mut rng = Rng64::new(seed);
    let relu = CompositePaf::from_form(PafForm::F1G2);
    PipelineBuilder::new(&[1, 4, 4])
        .affine(Conv2d::new(1, 2, 3, 1, 1, &mut rng))
        .paf_relu(&relu, 6.0)
        .affine(Flatten::new())
        .affine(Linear::new(32, 4, &mut rng))
        .compile()
        .fold_scales()
}

#[test]
fn all_backends_agree_end_to_end() {
    let pipe = cnn_pipeline(71);
    let ctx = CkksParams::toy().build();
    let mut rng = Rng64::new(71);
    let keys = KeyChain::generate(&ctx, &mut rng);
    let pe = PafEvaluator::new(Evaluator::new(&keys));

    let x: Vec<f64> = (0..16).map(|i| ((i % 5) as f64 - 2.0) / 2.0).collect();
    let plain = pipe.eval_plain(&x);

    // Encrypted path through the shared interpreter.
    let ct = pe
        .evaluator()
        .encrypt_replicated(&pipe.pad_input(&x), &mut rng);
    let (out_ct, enc_stats) = pipe.eval_encrypted(&pe, None, &ct);
    let dec = pe.evaluator().decrypt_values(&out_ct, 4);
    for (p, d) in plain.iter().zip(&dec) {
        assert!((p - d).abs() < 0.1, "plain {p} vs decrypted {d}");
    }

    // Trace path replays the identical schedule without arithmetic.
    let max_level = pe.evaluator().context().max_level();
    let (report, trace_stats) = pipe.dry_run(max_level, false).expect("fits");
    assert_eq!(trace_stats.stage_levels, enc_stats.stage_levels);
    assert_eq!(trace_stats.final_level, enc_stats.final_level);

    // Exact ct-mult acceptance: the traced ReLU stage equals the
    // polyfit exact-ladder count plus the ReLU product.
    let relu = CompositePaf::from_form(PafForm::F1G2);
    let relu_stage = report
        .stages
        .iter()
        .find(|s| s.label.starts_with("paf-relu"))
        .expect("relu stage traced");
    assert_eq!(relu_stage.ct_mults, relu.exact_ct_mult_count() + 1);
}

#[test]
fn batch_runner_is_deterministic_across_thread_counts() {
    let pipe = cnn_pipeline(72);
    let inputs: Vec<Vec<f64>> = (0..12)
        .map(|i| {
            (0..16)
                .map(|j| (((i + j) * 13) % 9) as f64 / 4.5 - 1.0)
                .collect()
        })
        .collect();
    let seq = BatchRunner::new(1).run_plain(&pipe, &inputs).unwrap();
    for threads in [2usize, 4, 8] {
        let par = BatchRunner::new(threads).run_plain(&pipe, &inputs).unwrap();
        assert_eq!(seq.outputs, par.outputs, "{threads} threads diverged");
    }
}

#[test]
fn typed_errors_replace_panics_on_the_result_path() {
    let mut rng = Rng64::new(73);
    let paf = CompositePaf::from_form(PafForm::F1G2);
    let mut b = PipelineBuilder::new(&[4]);
    for _ in 0..3 {
        b = b.affine(Linear::new(4, 4, &mut rng)).paf_relu(&paf, 2.0);
    }
    let pipe = b.compile();

    let ctx = CkksParams::toy().build();
    let keys = KeyChain::generate(&ctx, &mut rng);
    let pe = PafEvaluator::new(Evaluator::new(&keys));
    let ct = pe
        .evaluator()
        .encrypt_replicated(&pipe.pad_input(&[0.1; 4]), &mut rng);
    // Without a bootstrapper: typed OutOfLevels instead of a panic.
    let err = pipe.try_eval_encrypted(&pe, None, &ct).unwrap_err();
    assert!(matches!(err, RunError::OutOfLevels { .. }));
    // With one: the same pipeline completes.
    let bs = Bootstrapper::new(pe.evaluator().clone(), pipe.dim(), 5);
    let (_, stats) = pipe.try_eval_encrypted(&pe, Some(&bs), &ct).unwrap();
    assert!(stats.bootstraps >= 1);

    // Compilation errors are typed too.
    let err = PipelineBuilder::new(&[4]).try_compile().err().unwrap();
    assert_eq!(err, RunError::EmptyPipeline);
    let err = PipelineBuilder::new(&[1, 5, 5])
        .paf_maxpool(2, 2, &paf, 1.0)
        .try_compile()
        .err()
        .unwrap();
    assert!(matches!(err, RunError::PoolUntileable { .. }));
}

#[test]
fn scheduler_cost_oracle_orders_forms() {
    let ranked = rank_forms_by_dry_run(&PafForm::all(), 12).expect("12-level chain fits all");
    assert_eq!(ranked.first().map(|c| c.form), Some(PafForm::F1G2));
    assert_eq!(ranked.last().map(|c| c.form), Some(PafForm::MinimaxDeg27));
}
