//! Property-based tests for the CKKS substrate.

use crate::cipher::Evaluator;
use crate::keys::KeyChain;
use crate::params::CkksParams;
use proptest::prelude::*;
use smartpaf_tensor::Rng64;
use std::sync::OnceLock;

/// Key setup is expensive; share one across all property cases.
fn shared() -> &'static Evaluator {
    static EV: OnceLock<Evaluator> = OnceLock::new();
    EV.get_or_init(|| {
        let ctx = CkksParams::toy().build();
        let mut rng = Rng64::new(777);
        let keys = KeyChain::generate(&ctx, &mut rng);
        Evaluator::new(&keys)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Homomorphic addition is exact up to noise for arbitrary slots.
    #[test]
    fn add_homomorphism(
        a in proptest::collection::vec(-2.0f64..2.0, 8),
        b in proptest::collection::vec(-2.0f64..2.0, 8),
        seed in 0u64..1000,
    ) {
        let ev = shared();
        let mut rng = Rng64::new(seed);
        let ca = ev.encrypt_values(&a, &mut rng);
        let cb = ev.encrypt_values(&b, &mut rng);
        let out = ev.decrypt_values(&ev.add(&ca, &cb), 8);
        for i in 0..8 {
            prop_assert!((out[i] - (a[i] + b[i])).abs() < 1e-3);
        }
    }

    /// Homomorphic multiplication is slotwise up to noise.
    #[test]
    fn mul_homomorphism(
        a in proptest::collection::vec(-1.0f64..1.0, 8),
        b in proptest::collection::vec(-1.0f64..1.0, 8),
        seed in 0u64..1000,
    ) {
        let ev = shared();
        let mut rng = Rng64::new(seed);
        let ca = ev.encrypt_values(&a, &mut rng);
        let cb = ev.encrypt_values(&b, &mut rng);
        let mut prod = ev.mul(&ca, &cb);
        ev.rescale(&mut prod);
        let out = ev.decrypt_values(&prod, 8);
        for i in 0..8 {
            prop_assert!(
                (out[i] - a[i] * b[i]).abs() < 1e-2,
                "slot {i}: {} vs {}", out[i], a[i] * b[i]
            );
        }
    }

    /// Encrypting different plaintexts gives different ciphertexts, and
    /// fresh randomness gives semantic-security-style non-determinism.
    #[test]
    fn encryption_randomised(v in -1.0f64..1.0, seed in 0u64..1000) {
        let ev = shared();
        let mut rng = Rng64::new(seed);
        let c1 = ev.encrypt_values(&[v], &mut rng);
        let c2 = ev.encrypt_values(&[v], &mut rng);
        prop_assert_ne!(c1.c0.limb(0), c2.c0.limb(0));
        // Both decrypt to the same value.
        let d1 = ev.decrypt_values(&c1, 1)[0];
        let d2 = ev.decrypt_values(&c2, 1)[0];
        prop_assert!((d1 - v).abs() < 1e-4);
        prop_assert!((d2 - v).abs() < 1e-4);
    }

    /// mul then decrypt == decrypt then multiply (ring homomorphism
    /// composed with plain constants).
    #[test]
    fn const_mul_linear(v in -1.0f64..1.0, c in -3.0f64..3.0, seed in 0u64..1000) {
        let ev = shared();
        let mut rng = Rng64::new(seed);
        let ct = ev.encrypt_values(&[v], &mut rng);
        let out = ev.decrypt_values(&ev.mul_const(&ct, c), 1)[0];
        prop_assert!((out - c * v).abs() < 1e-3, "{out} vs {}", c * v);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Rotation by any step count permutes slots cyclically.
    #[test]
    fn rotation_permutes_slots(
        vals in proptest::collection::vec(-1.0f64..1.0, 16),
        steps in 0usize..128,
        seed in 0u64..1000,
    ) {
        let ev = shared();
        let mut rng = Rng64::new(seed);
        let ct = ev.encrypt_replicated(&vals, &mut rng);
        let rot = ev.rotate(&ct, steps as i64);
        let out = ev.decrypt_values(&rot, 16);
        for j in 0..16 {
            let want = vals[(j + steps) % 16];
            prop_assert!((out[j] - want).abs() < 5e-3, "slot {j}: {} vs {want}", out[j]);
        }
    }

    /// Left and right rotations cancel.
    #[test]
    fn rotation_inverse(
        vals in proptest::collection::vec(-1.0f64..1.0, 8),
        steps in 1i64..64,
        seed in 0u64..1000,
    ) {
        let ev = shared();
        let mut rng = Rng64::new(seed);
        let ct = ev.encrypt_replicated(&vals, &mut rng);
        let back = ev.rotate(&ev.rotate(&ct, steps), -steps);
        let out = ev.decrypt_values(&back, 8);
        for j in 0..8 {
            prop_assert!((out[j] - vals[j]).abs() < 5e-3);
        }
    }

    /// Encrypted matvec agrees with the plaintext diagonal product for
    /// random matrices and vectors.
    #[test]
    fn matvec_matches_plain(
        flat in proptest::collection::vec(-1.0f64..1.0, 64),
        v in proptest::collection::vec(-1.0f64..1.0, 8),
        seed in 0u64..1000,
        use_bsgs in proptest::bool::ANY,
    ) {
        let ev = shared();
        let rows: Vec<Vec<f64>> = flat.chunks(8).map(<[f64]>::to_vec).collect();
        let mat = crate::linear::DiagMatrix::from_rows(&rows);
        let mut rng = Rng64::new(seed);
        let ct = ev.encrypt_replicated(&v, &mut rng);
        let out_ct = if use_bsgs { ev.matvec_bsgs(&mat, &ct) } else { ev.matvec(&mat, &ct) };
        let got = ev.decrypt_values(&out_ct, 8);
        let want = mat.apply_plain(&v);
        for i in 0..8 {
            prop_assert!((got[i] - want[i]).abs() < 3e-2, "slot {i}: {} vs {}", got[i], want[i]);
        }
    }

    /// Lazy-reduction NTT: forward→inverse is the identity, and
    /// pointwise multiplication in the NTT domain matches the O(n²)
    /// schoolbook negacyclic product, across random primes and ring
    /// sizes. Pins the Shoup/lazy kernels to the mathematical
    /// transform, not just to a fixed test vector.
    #[test]
    fn lazy_ntt_roundtrip_and_pointwise_mul(
        bits in 40u32..60,
        log_n in 3u32..10,
        seed in 0u64..1_000_000,
    ) {
        use crate::modular::{mul_mod, ntt_primes};
        use crate::ntt::NttTable;
        let n = 1usize << log_n;
        let q = ntt_primes(bits, 1, n)[0];
        let table = NttTable::new(q, n);
        let mut rng = Rng64::new(seed);
        let a: Vec<u64> = (0..n).map(|_| rng.next_u64() % q).collect();
        let b: Vec<u64> = (0..n).map(|_| rng.next_u64() % q).collect();
        // Round trip.
        let mut rt = a.clone();
        table.forward(&mut rt);
        prop_assert!(rt.iter().all(|&x| x < q), "forward must emit canonical residues");
        table.inverse(&mut rt);
        prop_assert_eq!(&rt, &a);
        // Pointwise product vs schoolbook reference.
        let mut fa = a.clone();
        let mut fb = b.clone();
        table.forward(&mut fa);
        table.forward(&mut fb);
        let mut prod: Vec<u64> = fa.iter().zip(&fb).map(|(&x, &y)| mul_mod(x, y, q)).collect();
        table.inverse(&mut prod);
        prop_assert_eq!(prod, table.negacyclic_mul_reference(&a, &b));
    }

    /// Pooled execution is bit-identical to fresh allocation: the same
    /// seeded pipeline (encrypt → mul → relin → rescale → rotate →
    /// decrypt) produces byte-equal ciphertext limbs and decrypted
    /// values whether buffers come from the thread-local pool (with
    /// debug poisoning) or straight from the allocator.
    #[test]
    fn pooled_matches_fresh_allocation(
        vals in proptest::collection::vec(-1.0f64..1.0, 8),
        steps in 0i64..8,
        seed in 0u64..1000,
    ) {
        let ev = shared();
        let run = || {
            let mut rng = Rng64::new(seed);
            let ct = ev.encrypt_replicated(&vals, &mut rng);
            let mut prod = ev.mul(&ct, &ct);
            ev.rescale(&mut prod);
            let rot = ev.rotate(&prod, steps);
            let out = ev.decrypt_values(&rot, 8);
            (rot, out)
        };
        // Warm the pool so the pooled run actually recycles buffers.
        let _ = run();
        let (ct_pooled, out_pooled) = run();
        let (ct_fresh, out_fresh) = crate::pool::with_pool_disabled(run);
        prop_assert_eq!(ct_pooled.c0.limbs().collect::<Vec<_>>(),
                        ct_fresh.c0.limbs().collect::<Vec<_>>());
        prop_assert_eq!(ct_pooled.c1.limbs().collect::<Vec<_>>(),
                        ct_fresh.c1.limbs().collect::<Vec<_>>());
        // f64 equality is intentional: the pipelines must be identical.
        prop_assert_eq!(out_pooled, out_fresh);
    }

    /// Flat-layout aliasing: `automorphism` writes every word of its
    /// pooled (unspecified-content) output buffer — a dirty recycled
    /// buffer yields exactly the same limbs as a fresh zeroed one, for
    /// random Galois elements and both evaluation domains.
    #[test]
    fn automorphism_overwrites_pooled_buffer(
        g_idx in 0usize..64,
        ntt_domain in proptest::bool::ANY,
        seed in 0u64..1000,
    ) {
        use crate::rns::RnsPoly;
        let ev = shared();
        let ctx = ev.context();
        let n = ctx.n();
        let g = 2 * (g_idx % n) + 1; // odd, in 1..2n
        let mut rng = Rng64::new(seed);
        let q_min = *ctx.primes().iter().min().expect("non-empty chain");
        let coeffs: Vec<u64> = (0..n).map(|_| rng.next_u64() % q_min).collect();
        let make = || {
            let mut p = RnsPoly::from_unsigned_coeffs(ctx, &coeffs, ctx.primes().len());
            if ntt_domain {
                p.to_ntt();
            }
            p
        };
        // Churn the pool so recycled buffers carry poison/garbage.
        drop(make());
        let pooled = make().automorphism(g);
        let fresh = crate::pool::with_pool_disabled(|| make().automorphism(g));
        prop_assert_eq!(pooled.limbs().collect::<Vec<_>>(),
                        fresh.limbs().collect::<Vec<_>>());
    }

    /// The hybrid ω-limb key-switch gadget decrypts within noise of
    /// the per-prime gadget across random digit sizes, levels and ring
    /// sizes: both pipelines run the same seeded encrypt → drop →
    /// mul → relin → rescale → decrypt and must land on the true
    /// product.
    #[test]
    fn hybrid_gadget_matches_per_prime(
        omega in 1usize..9,
        log_n in 6u32..9,
        level_limbs in 2usize..8,
        vals in proptest::collection::vec(-1.0f64..1.0, 4),
        seed in 0u64..1000,
    ) {
        let base = CkksParams {
            n: 1usize << log_n,
            base_prime_bits: 60,
            scale_prime_bits: 40,
            depth: 6,
            ks_digit_limbs: 0,
        };
        let run = |params: CkksParams| {
            let ctx = params.build();
            let mut krng = Rng64::new(seed ^ 0x5EED);
            let keys = KeyChain::generate(&ctx, &mut krng);
            let ev = Evaluator::new(&keys);
            let mut rng = Rng64::new(seed);
            let mut ct = ev.encrypt_values(&vals, &mut rng);
            ct.drop_to(level_limbs);
            let mut prod = ev.mul(&ct, &ct);
            ev.rescale(&mut prod);
            ev.decrypt_values(&prod, 4)
        };
        let per_prime = run(base.clone());
        let hybrid = run(CkksParams { ks_digit_limbs: omega, ..base });
        for i in 0..4 {
            let want = vals[i] * vals[i];
            prop_assert!(
                (per_prime[i] - want).abs() < 1e-2,
                "per-prime slot {i}: {} vs {want}", per_prime[i]
            );
            prop_assert!(
                (hybrid[i] - want).abs() < 1e-2,
                "hybrid(ω={omega}) slot {i}: {} vs {want}", hybrid[i]
            );
            prop_assert!(
                (hybrid[i] - per_prime[i]).abs() < 1e-2,
                "gadget disagreement at slot {i}: {} vs {}", hybrid[i], per_prime[i]
            );
        }
    }

    /// Limb-parallel kernels are byte-identical to the sequential
    /// path: the same seeded pipeline (encrypt → mul → relin →
    /// rescale → rotate) produces byte-equal ciphertext limbs for
    /// every intra-op worker budget from 1 through 8.
    #[test]
    fn limb_parallel_bit_identical_to_sequential(
        workers in 2usize..9,
        vals in proptest::collection::vec(-1.0f64..1.0, 8),
        steps in 0i64..8,
        seed in 0u64..1000,
    ) {
        let ev = shared();
        let run = || {
            let mut rng = Rng64::new(seed);
            let ct = ev.encrypt_replicated(&vals, &mut rng);
            let mut prod = ev.mul(&ct, &ct);
            ev.rescale(&mut prod);
            let rot = ev.rotate(&prod, steps);
            let out = ev.decrypt_values(&rot, 8);
            (rot, out)
        };
        let (ct_seq, out_seq) = crate::par::with_thread_budget(1, run);
        let (ct_par, out_par) = crate::par::with_thread_budget(workers, run);
        prop_assert_eq!(ct_seq.c0.limbs().collect::<Vec<_>>(),
                        ct_par.c0.limbs().collect::<Vec<_>>());
        prop_assert_eq!(ct_seq.c1.limbs().collect::<Vec<_>>(),
                        ct_par.c1.limbs().collect::<Vec<_>>());
        // f64 equality is intentional: the paths must be identical.
        prop_assert_eq!(out_seq, out_par);
    }

    /// A bootstrap refresh preserves slot values and restores the top
    /// level regardless of how deep the input sits.
    #[test]
    fn refresh_preserves_values(
        vals in proptest::collection::vec(-1.0f64..1.0, 8),
        burn in 0usize..6,
        seed in 0u64..1000,
    ) {
        let ev = shared();
        let mut rng = Rng64::new(seed);
        let mut ct = ev.encrypt_replicated(&vals, &mut rng);
        for _ in 0..burn {
            ct = ev.mul_const(&ct, 1.0);
        }
        let bs = crate::noise::Bootstrapper::new(ev.clone(), 8, seed ^ 0xB007);
        let fresh = bs.refresh(&ct);
        prop_assert_eq!(fresh.level(), ev.context().max_level());
        let out = ev.decrypt_values(&fresh, 8);
        for j in 0..8 {
            prop_assert!((out[j] - vals[j]).abs() < 5e-3);
        }
    }
}
