//! Ciphertexts and homomorphic operations.

use crate::encoding::{Encoder, Plaintext};
use crate::keys::{truncate, KeyChain, DIGIT_BITS};
use crate::rns::{CkksContext, RnsPoly};
use smartpaf_tensor::Rng64;
use std::sync::Arc;

/// Maximum tolerated relative scale mismatch when adding ciphertexts.
///
/// Each rescale divides by a prime within ~1e-4 of the nominal scale
/// (NTT-friendly primes are spaced by 2n), so an 11-level evaluation
/// can drift a little over 1e-3 at small ring dimensions. The mismatch
/// bounds the relative slot error of the addition, so 5e-3 stays well
/// inside the simulator's noise budget while still catching genuine
/// scale-management bugs (those are off by a full Δ factor).
const SCALE_TOLERANCE: f64 = 5e-3;

/// A CKKS ciphertext `(c0, c1)` with `m ≈ c0 + c1·s`.
#[derive(Debug, Clone)]
pub struct Ciphertext {
    pub(crate) c0: RnsPoly,
    pub(crate) c1: RnsPoly,
    /// Current encoding scale.
    pub scale: f64,
}

impl Ciphertext {
    /// Number of RNS limbs (level + 1).
    pub fn num_limbs(&self) -> usize {
        self.c0.num_limbs()
    }

    /// Remaining rescale budget.
    pub fn level(&self) -> usize {
        self.num_limbs() - 1
    }

    /// Drops limbs until `num_limbs` remain (plain modulus switch).
    ///
    /// # Panics
    ///
    /// Panics if `num_limbs` is zero or larger than the current count.
    pub fn drop_to(&mut self, num_limbs: usize) {
        assert!(num_limbs >= 1 && num_limbs <= self.num_limbs());
        while self.num_limbs() > num_limbs {
            self.c0.drop_last_limb();
            self.c1.drop_last_limb();
        }
    }
}

/// Homomorphic evaluator bound to a context and key chain.
#[derive(Debug, Clone)]
pub struct Evaluator {
    ctx: Arc<CkksContext>,
    keys: Arc<KeyChain>,
    encoder: Encoder,
}

impl Evaluator {
    /// Creates an evaluator.
    pub fn new(keys: &Arc<KeyChain>) -> Self {
        let ctx = Arc::clone(keys.context());
        Evaluator {
            encoder: Encoder::new(&ctx),
            ctx,
            keys: Arc::clone(keys),
        }
    }

    /// Shared context.
    pub fn context(&self) -> &Arc<CkksContext> {
        &self.ctx
    }

    /// The encoder used for plaintext interop.
    pub fn encoder(&self) -> &Encoder {
        &self.encoder
    }

    /// Encrypts a plaintext under the public key.
    pub fn encrypt(&self, pt: &Plaintext, rng: &mut Rng64) -> Ciphertext {
        let nl = pt.poly.num_limbs();
        let pk = self.keys.public_key();
        let mut u = RnsPoly::random_ternary(&self.ctx, nl, rng);
        u.to_ntt();
        let mut e0 = RnsPoly::random_error(&self.ctx, nl, rng);
        e0.to_ntt();
        let mut e1 = RnsPoly::random_error(&self.ctx, nl, rng);
        e1.to_ntt();
        let mut c0 = pk.b.truncated(nl);
        c0.mul_assign(&u);
        c0.add_assign(&e0);
        c0.add_assign(&pt.poly);
        let mut c1 = pk.a.truncated(nl);
        c1.mul_assign(&u);
        c1.add_assign(&e1);
        Ciphertext {
            c0,
            c1,
            scale: pt.scale,
        }
    }

    /// Convenience: encode + encrypt real slot values at the default
    /// scale and top level.
    pub fn encrypt_values(&self, values: &[f64], rng: &mut Rng64) -> Ciphertext {
        let pt = self
            .encoder
            .encode(values, self.ctx.scale(), self.ctx.primes().len());
        self.encrypt(&pt, rng)
    }

    /// Decrypts to a plaintext.
    pub fn decrypt(&self, ct: &Ciphertext) -> Plaintext {
        let s = truncate(self.keys.secret_key_internal(), ct.num_limbs());
        let mut poly = ct.c0.clone();
        poly.mul_acc(&ct.c1, &s);
        Plaintext {
            poly,
            scale: ct.scale,
        }
    }

    /// Convenience: decrypt + decode `count` slots.
    pub fn decrypt_values(&self, ct: &Ciphertext, count: usize) -> Vec<f64> {
        let pt = self.decrypt(ct);
        self.encoder.decode(&pt, count)
    }

    fn align(&self, a: &Ciphertext, b: &Ciphertext) -> (Ciphertext, Ciphertext) {
        let nl = a.num_limbs().min(b.num_limbs());
        let mut aa = a.clone();
        let mut bb = b.clone();
        aa.drop_to(nl);
        bb.drop_to(nl);
        let rel = (aa.scale - bb.scale).abs() / aa.scale.max(bb.scale);
        assert!(
            rel < SCALE_TOLERANCE,
            "scale mismatch beyond tolerance: {} vs {}",
            aa.scale,
            bb.scale
        );
        (aa, bb)
    }

    /// Homomorphic addition (auto-aligns levels; scales must agree to
    /// within the internal `SCALE_TOLERANCE`).
    ///
    /// # Panics
    ///
    /// Panics on scale mismatch beyond tolerance.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        let (aa, bb) = self.align(a, b);
        Ciphertext {
            c0: aa.c0.add(&bb.c0),
            c1: aa.c1.add(&bb.c1),
            scale: aa.scale.max(bb.scale),
        }
    }

    /// Homomorphic subtraction.
    ///
    /// # Panics
    ///
    /// Panics on scale mismatch beyond tolerance.
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        let (aa, bb) = self.align(a, b);
        Ciphertext {
            c0: aa.c0.sub(&bb.c0),
            c1: aa.c1.sub(&bb.c1),
            scale: aa.scale.max(bb.scale),
        }
    }

    /// Adds an encoded plaintext.
    ///
    /// The (full-level) plaintext poly is read through a limb prefix —
    /// no clone, no limb-dropping, no domain conversion per call.
    ///
    /// # Panics
    ///
    /// Panics on scale mismatch beyond tolerance or level mismatch.
    pub fn add_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        let rel = (a.scale - pt.scale).abs() / a.scale.max(pt.scale);
        assert!(rel < SCALE_TOLERANCE, "plain add scale mismatch");
        Ciphertext {
            c0: a.c0.add_trunc(&pt.poly),
            c1: a.c1.clone(),
            scale: a.scale,
        }
    }

    /// Multiplies by an encoded plaintext. Result scale is the product;
    /// callers usually [`Self::rescale`] afterwards.
    ///
    /// Like [`Self::add_plain`], reads the plaintext through a limb
    /// prefix instead of cloning and truncating it per call.
    pub fn mul_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        Ciphertext {
            c0: a.c0.mul_trunc(&pt.poly),
            c1: a.c1.mul_trunc(&pt.poly),
            scale: a.scale * pt.scale,
        }
    }

    /// Multiplies by a scalar constant, consuming one level (encode at
    /// the default scale, multiply, rescale).
    pub fn mul_const(&self, a: &Ciphertext, value: f64) -> Ciphertext {
        let pt = self
            .encoder
            .encode_constant(value, self.ctx.scale(), a.num_limbs());
        let mut out = self.mul_plain(a, &pt);
        self.rescale(&mut out);
        out
    }

    /// Ciphertext-ciphertext multiplication with relinearisation.
    /// Result scale is the product of input scales; callers usually
    /// [`Self::rescale`] afterwards.
    pub fn mul(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        let (aa, bb) = {
            let nl = a.num_limbs().min(b.num_limbs());
            let mut aa = a.clone();
            let mut bb = b.clone();
            aa.drop_to(nl);
            bb.drop_to(nl);
            (aa, bb)
        };
        let mut d0 = aa.c0.mul(&bb.c0);
        let mut d1 = aa.c0.mul(&bb.c1);
        d1.mul_acc(&aa.c1, &bb.c0);
        let d2 = aa.c1.mul(&bb.c1);
        let (r0, r1) = self.relinearize_d2(&d2);
        d0.add_assign(&r0);
        d1.add_assign(&r1);
        Ciphertext {
            c0: d0,
            c1: d1,
            scale: aa.scale * bb.scale,
        }
    }

    /// Squares a ciphertext (saves one ring multiplication vs `mul`).
    pub fn square(&self, a: &Ciphertext) -> Ciphertext {
        let mut d0 = a.c0.mul(&a.c0);
        let cross = a.c0.mul(&a.c1);
        let mut d1 = cross.add(&cross);
        let d2 = a.c1.mul(&a.c1);
        let (r0, r1) = self.relinearize_d2(&d2);
        d0.add_assign(&r0);
        d1.add_assign(&r1);
        Ciphertext {
            c0: d0,
            c1: d1,
            scale: a.scale * a.scale,
        }
    }

    /// Shared key chain (crate-internal: the Galois module needs it).
    pub(crate) fn keys(&self) -> &Arc<KeyChain> {
        &self.keys
    }

    /// Key-switches the degree-2 component back to a linear ciphertext
    /// using the context's key-switch gadget.
    fn relinearize_d2(&self, d2: &RnsPoly) -> (RnsPoly, RnsPoly) {
        let rk = self.keys.relin_key(d2.num_limbs());
        self.key_switch_with(d2, &rk)
    }

    /// Gadget-decomposes `p` and applies a key-switching key: returns
    /// `(k0, k1)` with `k0 + k1·s ≈ p·s'` for the key's embedded
    /// switched-from secret `s'`. Dispatches on the key's gadget
    /// layout (which follows the context's [`crate::KeySwitchGadget`]).
    pub(crate) fn key_switch_with(
        &self,
        p: &RnsPoly,
        key: &crate::keys::RelinKey,
    ) -> (RnsPoly, RnsPoly) {
        let nl = p.num_limbs();
        assert_eq!(key.num_limbs(), nl, "key level mismatch");
        match &key.inner {
            crate::keys::KskInner::PerPrime(components) => self.key_switch_per_prime(p, components),
            crate::keys::KskInner::Hybrid(ksk) => self.key_switch_hybrid(p, ksk),
        }
    }

    /// The legacy per-prime digit gadget: one component per
    /// `(prime, base-2^16 digit)` pair.
    fn key_switch_per_prime(
        &self,
        p: &RnsPoly,
        components: &[crate::keys::RelinComponent],
    ) -> (RnsPoly, RnsPoly) {
        let nl = p.num_limbs();
        let mut d2c = p.clone();
        d2c.to_coeff();
        let n = self.ctx.n();
        let mask = (1u64 << DIGIT_BITS) - 1;
        // Lazy accumulation: pile raw 128-bit products into wide
        // scratch buffers and Barrett-reduce once at the end. The sum
        // mod q_i is identical to the eager reduce-per-product chain,
        // but the inner loop sheds one reduction per component per
        // accumulator — the single largest cost in relinearisation
        // after the NTTs. Headroom (how many products fit before a
        // flush) is ~2^8 for 60-bit primes, above any component count.
        let mut lazy0 = crate::pool::acquire_wide_zeroed(nl * n);
        let mut lazy1 = crate::pool::acquire_wide_zeroed(nl * n);
        let headroom = self.ctx.lazy_acc_headroom(nl);
        let mut pending = 0usize;
        let mut digit_coeffs = crate::pool::acquire(n);
        for comp in components {
            // Extract this component's digit of the residues mod q_i.
            let src = d2c.limb(comp.prime_index);
            let shift = DIGIT_BITS * comp.digit;
            let mut all_zero = true;
            for (dst, &c) in digit_coeffs.iter_mut().zip(src) {
                *dst = (c >> shift) & mask;
                all_zero &= *dst == 0;
            }
            if all_zero {
                continue;
            }
            let mut u = RnsPoly::from_unsigned_coeffs(&self.ctx, &digit_coeffs, nl);
            u.to_ntt();
            if pending == headroom {
                RnsPoly::reduce_lazy_in_place(&self.ctx, &mut lazy0, nl);
                RnsPoly::reduce_lazy_in_place(&self.ctx, &mut lazy1, nl);
                pending = 0;
            }
            u.mul_into_lazy(&comp.b, &mut lazy0);
            u.mul_into_lazy(&comp.a, &mut lazy1);
            pending += 1;
        }
        crate::pool::release(digit_coeffs);
        let acc0 = RnsPoly::from_lazy_accumulator(&self.ctx, &lazy0, nl, true);
        let acc1 = RnsPoly::from_lazy_accumulator(&self.ctx, &lazy1, nl, true);
        crate::pool::release_wide(lazy0);
        crate::pool::release_wide(lazy1);
        (acc0, acc1)
    }

    /// The hybrid ω-limb gadget. Pipeline per digit `j` covering chain
    /// limbs `[start, end)` with modulus `Q_j = ∏ q_i`:
    ///
    /// 1. `y_i = x_i · [(Q_j/q_i)^{-1}]_{q_i}` on the in-group limbs
    ///    (coefficient domain);
    /// 2. fast base conversion lifts the digit to every limb of the
    ///    extended basis: `c̃_j mod m_t = Σ_i y_i · [(Q_j/q_i)]_{m_t}`
    ///    (in-group targets are an exact copy of `x_t`); the lift
    ///    overshoots by at most `ω·Q_j`, which the huge special
    ///    modulus `P` absorbs as noise;
    /// 3. NTT the raised digit and lazily accumulate
    ///    `c̃_j ⊙ b_j` / `c̃_j ⊙ a_j` in `u128` per extended limb;
    /// 4. mod-down by `P`: inverse-NTT the special limbs, base-convert
    ///    their residues back to the chain, and scale by
    ///    `[P^{-1}]_{q_t}` (approximate base conversion again — error
    ///    ≤ `k` per coefficient, far below the noise floor).
    ///
    /// Every limb of steps 2–4 is independent, so the whole pipeline
    /// fans out across [`crate::par`] when the thread budget allows,
    /// bit-identically to the sequential loop.
    fn key_switch_hybrid(&self, p: &RnsPoly, ksk: &crate::keys::HybridKsk) -> (RnsPoly, RnsPoly) {
        let ctx = &self.ctx;
        let nl = ksk.num_limbs;
        let k = ksk.k;
        let ext = nl + k;
        let n = ctx.n();
        let ndigits = ksk.digits.len();
        // The lazy accumulators take one u128 product per digit with
        // no intermediate flush; headroom is ~2^8 for 60-bit primes,
        // far above any ⌈L/ω⌉.
        assert!(
            ndigits <= ctx.lazy_acc_headroom_ext(nl, k),
            "digit count exceeds lazy accumulator headroom"
        );

        let mut d2c = p.clone();
        d2c.to_coeff();

        // Step 1: per-limb digit scaling (the in-group inverse CRT
        // factors), limb-parallel.
        let mut y = crate::pool::acquire(nl * n);
        let mut inv_by_limb = vec![(0u64, 0u64); nl];
        for d in &ksk.digits {
            inv_by_limb[d.start..d.end].copy_from_slice(&d.inv_qhat[..d.end - d.start]);
        }
        crate::par::for_each_chunk_mut(&mut y, n, |i, dst| {
            let arith = ctx.arith(i);
            let (inv, shoup) = inv_by_limb[i];
            for (out, &x) in dst.iter_mut().zip(d2c.limb(i)) {
                *out = arith.mul_shoup(x, inv, shoup);
            }
        });

        // Steps 2–3, parallel over extended-basis target limbs. Each
        // task owns limb `t` of both accumulators and its own raised
        // scratch.
        let mut lazy0 = crate::pool::acquire_wide_zeroed(ext * n);
        let mut lazy1 = crate::pool::acquire_wide_zeroed(ext * n);
        let mut acc0 = crate::pool::acquire(ext * n);
        let mut acc1 = crate::pool::acquire(ext * n);
        {
            let lazy0_base = lazy0.as_mut_ptr() as usize;
            let lazy1_base = lazy1.as_mut_ptr() as usize;
            let acc0_base = acc0.as_mut_ptr() as usize;
            let acc1_base = acc1.as_mut_ptr() as usize;
            let y = &y[..];
            crate::par::run(ext, |t| {
                // SAFETY: tasks receive distinct `t`, so the limb
                // slices are disjoint; the buffers outlive the `run`
                // call, which blocks until all tasks finish.
                let (l0, l1, a0, a1) = unsafe {
                    (
                        std::slice::from_raw_parts_mut((lazy0_base as *mut u128).add(t * n), n),
                        std::slice::from_raw_parts_mut((lazy1_base as *mut u128).add(t * n), n),
                        std::slice::from_raw_parts_mut((acc0_base as *mut u64).add(t * n), n),
                        std::slice::from_raw_parts_mut((acc1_base as *mut u64).add(t * n), n),
                    )
                };
                let arith = ctx.ext_arith(nl, t);
                let table = ctx.ext_ntt(nl, t);
                let mut raised = crate::pool::acquire(n);
                for digit in &ksk.digits {
                    let group = digit.end - digit.start;
                    if t >= digit.start && t < digit.end {
                        // In-group target: the lifted digit's residue
                        // mod q_t is exactly the input residue.
                        raised.copy_from_slice(d2c.limb(t));
                    } else {
                        let qh = &digit.qhat[t * group..t * group + group];
                        for (c, out) in raised.iter_mut().enumerate() {
                            // ω ≤ 8 terms of < 2^124 each: fits u128.
                            let mut sum = 0u128;
                            for (i, &w) in qh.iter().enumerate() {
                                sum += y[(digit.start + i) * n + c] as u128 * w as u128;
                            }
                            *out = arith.reduce_u128(sum);
                        }
                    }
                    table.forward(&mut raised);
                    let bt = &digit.b[t * n..(t + 1) * n];
                    let at = &digit.a[t * n..(t + 1) * n];
                    for c in 0..n {
                        l0[c] += raised[c] as u128 * bt[c] as u128;
                        l1[c] += raised[c] as u128 * at[c] as u128;
                    }
                }
                crate::pool::release(raised);
                for c in 0..n {
                    a0[c] = arith.reduce_u128(l0[c]);
                    a1[c] = arith.reduce_u128(l1[c]);
                }
            });
        }
        crate::pool::release_wide(lazy0);
        crate::pool::release_wide(lazy1);
        crate::pool::release(y);
        drop(d2c);

        // Step 4: scale both accumulators down by P.
        let k0 = self.hybrid_mod_down(&mut acc0, ksk);
        let k1 = self.hybrid_mod_down(&mut acc1, ksk);
        crate::pool::release(acc0);
        crate::pool::release(acc1);
        (k0, k1)
    }

    /// Divides an extended-basis accumulator (NTT form, flat
    /// limb-major, `(nl + k)·n` entries) by the special modulus `P`,
    /// returning the chain-basis result. Approximate fast base
    /// conversion: per-coefficient error at most `k`, negligible
    /// against the noise floor. Consumes the special limbs of `acc`
    /// as scratch.
    fn hybrid_mod_down(&self, acc: &mut [u64], ksk: &crate::keys::HybridKsk) -> RnsPoly {
        let ctx = &self.ctx;
        let nl = ksk.num_limbs;
        let k = ksk.k;
        let n = ctx.n();
        let (chain_acc, sp) = acc.split_at_mut(nl * n);
        // Special limbs → coefficient domain, scaled by
        // [(P/p_l)^{-1}]_{p_l}; limb-parallel, in place.
        crate::par::for_each_chunk_mut(sp, n, |l, limb| {
            ctx.ntt_special(l).inverse(limb);
            let arith = ctx.arith_special(l);
            let (inv, shoup) = ksk.inv_phat[l];
            for v in limb.iter_mut() {
                *v = arith.mul_shoup(*v, inv, shoup);
            }
        });
        let sp = &sp[..];
        let chain_acc = &chain_acc[..];
        let mut out = RnsPoly::uninit(ctx, nl, true);
        crate::par::for_each_chunk_mut(out.data_mut(), n, |t, dst| {
            let arith = ctx.arith(t);
            let (p_inv, p_inv_shoup) = ksk.p_inv[t];
            let mut corr = crate::pool::acquire(n);
            for (c, out_c) in corr.iter_mut().enumerate() {
                // k ≤ 8 terms: fits u128 without intermediate reduce.
                let mut sum = 0u128;
                for l in 0..k {
                    sum += sp[l * n + c] as u128 * ksk.phat[t * k + l] as u128;
                }
                *out_c = arith.reduce_u128(sum);
            }
            ctx.ntt(t).forward(&mut corr);
            for c in 0..n {
                let diff = arith.sub(chain_acc[t * n + c], corr[c]);
                dst[c] = arith.mul_shoup(diff, p_inv, p_inv_shoup);
            }
            crate::pool::release(corr);
        });
        out
    }

    /// Rescales a ciphertext: divides by the last prime and drops it.
    ///
    /// # Panics
    ///
    /// Panics if only one limb remains.
    pub fn rescale(&self, ct: &mut Ciphertext) {
        let q_last = self.ctx.primes()[ct.num_limbs() - 1];
        ct.c0.rescale();
        ct.c1.rescale();
        ct.scale /= q_last as f64;
    }
}

impl KeyChain {
    /// Internal secret-key accessor for the evaluator.
    pub(crate) fn secret_key_internal(&self) -> &RnsPoly {
        &self.secret_key().s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;

    fn setup(seed: u64) -> (Evaluator, Rng64) {
        let ctx = CkksParams::toy().build();
        let mut rng = Rng64::new(seed);
        let keys = KeyChain::generate(&ctx, &mut rng);
        (Evaluator::new(&keys), rng)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (ev, mut rng) = setup(1);
        let vals: Vec<f64> = (0..32).map(|i| (i as f64 - 16.0) / 10.0).collect();
        let ct = ev.encrypt_values(&vals, &mut rng);
        let out = ev.decrypt_values(&ct, 32);
        for (a, b) in vals.iter().zip(&out) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn homomorphic_add() {
        let (ev, mut rng) = setup(2);
        let a: Vec<f64> = (0..16).map(|i| i as f64 / 8.0).collect();
        let b: Vec<f64> = (0..16).map(|i| 1.0 - i as f64 / 16.0).collect();
        let ca = ev.encrypt_values(&a, &mut rng);
        let cb = ev.encrypt_values(&b, &mut rng);
        let out = ev.decrypt_values(&ev.add(&ca, &cb), 16);
        for i in 0..16 {
            assert!((out[i] - (a[i] + b[i])).abs() < 1e-3);
        }
    }

    #[test]
    fn homomorphic_sub_and_plain_add() {
        let (ev, mut rng) = setup(3);
        let a = vec![0.5, -0.25, 1.0];
        let b = vec![0.1, 0.2, 0.3];
        let ca = ev.encrypt_values(&a, &mut rng);
        let cb = ev.encrypt_values(&b, &mut rng);
        let diff = ev.decrypt_values(&ev.sub(&ca, &cb), 3);
        for i in 0..3 {
            assert!((diff[i] - (a[i] - b[i])).abs() < 1e-3);
        }
        let pt = ev
            .encoder()
            .encode(&b, ev.context().scale(), ca.num_limbs());
        let sum = ev.decrypt_values(&ev.add_plain(&ca, &pt), 3);
        for i in 0..3 {
            assert!((sum[i] - (a[i] + b[i])).abs() < 1e-3);
        }
    }

    #[test]
    fn homomorphic_mul_with_relin_and_rescale() {
        let (ev, mut rng) = setup(4);
        let a: Vec<f64> = (0..16).map(|i| (i as f64 - 8.0) / 8.0).collect();
        let b: Vec<f64> = (0..16).map(|i| (16.0 - i as f64) / 16.0).collect();
        let ca = ev.encrypt_values(&a, &mut rng);
        let cb = ev.encrypt_values(&b, &mut rng);
        let mut prod = ev.mul(&ca, &cb);
        ev.rescale(&mut prod);
        assert_eq!(prod.num_limbs(), ca.num_limbs() - 1);
        let out = ev.decrypt_values(&prod, 16);
        for i in 0..16 {
            assert!(
                (out[i] - a[i] * b[i]).abs() < 1e-2,
                "slot {i}: {} vs {}",
                out[i],
                a[i] * b[i]
            );
        }
    }

    #[test]
    fn square_matches_mul() {
        let (ev, mut rng) = setup(5);
        let a: Vec<f64> = (0..8).map(|i| (i as f64 - 4.0) / 4.0).collect();
        let ca = ev.encrypt_values(&a, &mut rng);
        let mut sq = ev.square(&ca);
        ev.rescale(&mut sq);
        let out = ev.decrypt_values(&sq, 8);
        for i in 0..8 {
            assert!((out[i] - a[i] * a[i]).abs() < 1e-2);
        }
    }

    #[test]
    fn mul_const_scales_slots() {
        let (ev, mut rng) = setup(6);
        let a = vec![0.5, -1.0, 0.25];
        let ca = ev.encrypt_values(&a, &mut rng);
        let out = ev.decrypt_values(&ev.mul_const(&ca, -2.0), 3);
        for i in 0..3 {
            assert!((out[i] + 2.0 * a[i]).abs() < 1e-3, "{}", out[i]);
        }
    }

    #[test]
    fn depth_chain_powers() {
        // Repeated squaring down the whole chain: x^(2^k).
        let (ev, mut rng) = setup(7);
        let x = 0.9f64;
        let mut ct = ev.encrypt_values(&[x], &mut rng);
        let mut expect = x;
        let levels = ct.level();
        for _ in 0..levels.min(4) {
            ct = ev.square(&ct);
            ev.rescale(&mut ct);
            expect *= expect;
            let got = ev.decrypt_values(&ct, 1)[0];
            assert!(
                (got - expect).abs() < 2e-2,
                "after squaring: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn drop_to_preserves_value() {
        let (ev, mut rng) = setup(8);
        let a = vec![0.7, -0.3];
        let mut ca = ev.encrypt_values(&a, &mut rng);
        ca.drop_to(2);
        let out = ev.decrypt_values(&ca, 2);
        assert!((out[0] - 0.7).abs() < 1e-3);
        assert!((out[1] + 0.3).abs() < 1e-3);
    }

    #[test]
    fn warm_mul_rescale_pipeline_allocates_nothing() {
        // The perf contract behind the buffer pool: after one warm-up
        // iteration, the steady-state ct_mult → relinearize → rescale
        // pipeline (including the wide lazy key-switch accumulators)
        // runs entirely off the thread-local free lists. Pinned at an
        // intra-op budget of 1: with workers, which thread serves
        // which limb varies run to run, so per-thread pool warm-up is
        // not deterministic (the pools still converge, just not in a
        // fixed iteration count).
        crate::par::with_thread_budget(1, || {
            let (ev, mut rng) = setup(55);
            let ct = ev.encrypt_values(&[0.4, -0.2], &mut rng);
            let pipeline = || {
                let mut p = ev.mul(&ct, &ct);
                ev.rescale(&mut p);
                p
            };
            // Warm-up: builds the relin key digit decomposition
            // buffers and seeds the pool with every buffer shape the
            // pipeline needs.
            for _ in 0..2 {
                std::hint::black_box(pipeline());
            }
            crate::pool::reset_stats();
            for _ in 0..4 {
                std::hint::black_box(pipeline());
            }
            let stats = crate::pool::stats();
            assert_eq!(
                stats.fresh_allocs, 0,
                "steady-state mul+rescale must not hit the allocator: {stats:?}"
            );
            assert!(stats.reuses > 0, "pipeline must actually use the pool");
            assert_eq!(stats.dropped, 0, "free list churn must stay bounded");
        });
    }

    #[test]
    #[should_panic(expected = "scale mismatch")]
    fn add_rejects_wild_scale_mismatch() {
        let (ev, mut rng) = setup(9);
        let ca = ev.encrypt_values(&[0.5], &mut rng);
        let mut cb = ev.encrypt_values(&[0.5], &mut rng);
        cb.scale *= 2.0;
        let _ = ev.add(&ca, &cb);
    }
}
