//! CKKS encoding: real slot vectors ↔ ring plaintexts via the
//! canonical embedding.
//!
//! Evaluation points are the primitive `2n`-th roots
//! `ζ_k = exp(iπ(2k+1)/n)`. Because `ζ_{n-1-k} = conj(ζ_k)`, a real
//! coefficient vector is determined by `n/2` free complex slots; we
//! expose real-valued slots (imaginary parts are zero).
//!
//! **Slot ordering.** Slot `j` holds the evaluation at root exponent
//! `5^j mod 2n` (the orbit of 5 in the odd residues). Under this
//! ordering the Galois automorphism `X ↦ X^{5^r}` rotates the slot
//! vector cyclically left by `r` — see [`crate::galois`]. Slotwise
//! semantics (add/mul act per slot) are unchanged by the ordering.

use crate::rns::{CkksContext, RnsPoly};
use std::sync::Arc;

/// A CKKS plaintext: an integer ring element carrying a scale.
#[derive(Debug, Clone)]
pub struct Plaintext {
    /// The encoded ring element (NTT form).
    pub poly: RnsPoly,
    /// The scale Δ the slots were multiplied by.
    pub scale: f64,
}

#[derive(Debug, Clone, Copy)]
struct Complex {
    re: f64,
    im: f64,
}

impl Complex {
    fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
    fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }
}

/// Iterative radix-2 FFT. `invert` selects the inverse transform
/// (without the 1/n scaling).
fn fft(a: &mut [Complex], invert: bool) {
    let n = a.len();
    assert!(n.is_power_of_two(), "fft length must be a power of two");
    // Bit reversal permutation.
    let mut j = 0;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            a.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let ang = 2.0 * std::f64::consts::PI / len as f64 * if invert { 1.0 } else { -1.0 };
        let wl = Complex::new(ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = a[i + k];
                let v = a[i + k + len / 2].mul(w);
                a[i + k] = u.add(v);
                a[i + k + len / 2] = u.sub(v);
                w = w.mul(wl);
            }
            i += len;
        }
        len <<= 1;
    }
}

/// The CKKS encoder for a given context.
#[derive(Debug, Clone)]
pub struct Encoder {
    ctx: Arc<CkksContext>,
    /// `orbit[j]` = natural evaluation index `m` with root exponent
    /// `2m+1 = 5^j mod 2n`; the conjugate position is `n-1-m`.
    orbit: Vec<usize>,
}

impl Encoder {
    /// Creates an encoder bound to a context.
    pub fn new(ctx: &Arc<CkksContext>) -> Self {
        let n = ctx.n();
        let slots = ctx.slots();
        let mut orbit = Vec::with_capacity(slots);
        let mut e = 1usize;
        for _ in 0..slots {
            orbit.push((e - 1) / 2);
            e = (e * 5) % (2 * n);
        }
        Encoder {
            ctx: Arc::clone(ctx),
            orbit,
        }
    }

    /// Number of real slots available (`n/2`).
    pub fn slots(&self) -> usize {
        self.ctx.slots()
    }

    /// Encodes up to `slots()` real values at scale `scale` into a
    /// plaintext with `num_limbs` limbs. Missing slots are zero.
    ///
    /// # Panics
    ///
    /// Panics if more than `slots()` values are supplied or the scaled
    /// coefficients overflow the representable range.
    pub fn encode(&self, values: &[f64], scale: f64, num_limbs: usize) -> Plaintext {
        let n = self.ctx.n();
        let slots = self.ctx.slots();
        assert!(values.len() <= slots, "too many values for {slots} slots");
        // Build the conjugate-symmetric evaluation vector: slot j lives
        // at natural index orbit[j], its conjugate at n-1-orbit[j].
        let mut sigma = vec![Complex::new(0.0, 0.0); n];
        for (j, &v) in values.iter().enumerate() {
            let m = self.orbit[j];
            sigma[m] = Complex::new(v, 0.0);
            sigma[n - 1 - m] = sigma[m].conj();
        }
        // c_j = (1/n) * e^{-iπ j/n} * DFT(sigma)_j
        fft(&mut sigma, false);
        let mut coeffs = vec![0i128; n];
        for (idx, s) in sigma.iter().enumerate() {
            let ang = -std::f64::consts::PI * idx as f64 / n as f64;
            let tw = Complex::new(ang.cos(), ang.sin());
            let c = s.mul(tw);
            let real = c.re / n as f64 * scale;
            assert!(
                real.abs() < 1.2e30,
                "scaled coefficient overflow: {real} (scale too large?)"
            );
            coeffs[idx] = real.round() as i128;
        }
        let mut poly = RnsPoly::from_signed_coeffs_i128(&self.ctx, &coeffs, num_limbs);
        poly.to_ntt();
        Plaintext { poly, scale }
    }

    /// Encodes a single scalar replicated into every slot. Constants
    /// have a constant-polynomial representation, so this skips the FFT
    /// entirely.
    pub fn encode_constant(&self, value: f64, scale: f64, num_limbs: usize) -> Plaintext {
        let n = self.ctx.n();
        let mut coeffs = vec![0i128; n];
        coeffs[0] = (value * scale).round() as i128;
        let mut poly = RnsPoly::from_signed_coeffs_i128(&self.ctx, &coeffs, num_limbs);
        poly.to_ntt();
        Plaintext { poly, scale }
    }

    /// Decodes a plaintext back to `count` real slot values.
    ///
    /// Uses exact CRT over the first `min(2, limbs)` primes, so the
    /// (noisy) coefficients must fit in that product — true for every
    /// parameter set in this crate.
    ///
    /// # Panics
    ///
    /// Panics if `count > slots()`.
    pub fn decode(&self, pt: &Plaintext, count: usize) -> Vec<f64> {
        let n = self.ctx.n();
        assert!(count <= self.ctx.slots(), "count exceeds slot capacity");
        let mut poly = pt.poly.clone();
        poly.to_coeff();
        let use_limbs = poly.num_limbs().min(2);
        let mut vals = vec![Complex::new(0.0, 0.0); n];
        for (idx, v) in vals.iter_mut().enumerate() {
            let c = poly.coeff_to_i128(idx, use_limbs) as f64;
            // Untwist: multiply by e^{+iπ j/n} before the inverse DFT.
            let ang = std::f64::consts::PI * idx as f64 / n as f64;
            *v = Complex::new(c * ang.cos(), c * ang.sin());
        }
        fft(&mut vals, true); // inverse DFT without 1/n (encode had 1/n)
        (0..count)
            .map(|j| vals[self.orbit[j]].re / pt.scale)
            .collect()
    }

    /// Decodes a lane-packed plaintext: reads `lanes · lane_dim` slots
    /// and splits them into `lanes` vectors of `take` values each (the
    /// first `take` slots of every stride-`lane_dim` lane). The demux
    /// half of ciphertext-level slot packing — see the `heinfer::pack`
    /// subsystem.
    ///
    /// # Panics
    ///
    /// Panics if `take > lane_dim` or `lanes * lane_dim > slots()`.
    pub fn decode_lanes(
        &self,
        pt: &Plaintext,
        lanes: usize,
        lane_dim: usize,
        take: usize,
    ) -> Vec<Vec<f64>> {
        assert!(
            take <= lane_dim,
            "take {take} exceeds lane width {lane_dim}"
        );
        let flat = self.decode(pt, lanes * lane_dim);
        (0..lanes)
            .map(|l| flat[l * lane_dim..l * lane_dim + take].to_vec())
            .collect()
    }

    /// Decodes slot `j` taking the imaginary part too (diagnostics).
    pub fn decode_complex(&self, pt: &Plaintext, count: usize) -> Vec<(f64, f64)> {
        let n = self.ctx.n();
        assert!(count <= self.ctx.slots(), "count exceeds slot capacity");
        let mut poly = pt.poly.clone();
        poly.to_coeff();
        let use_limbs = poly.num_limbs().min(2);
        let mut vals = vec![Complex::new(0.0, 0.0); n];
        for (idx, v) in vals.iter_mut().enumerate() {
            let c = poly.coeff_to_i128(idx, use_limbs) as f64;
            let ang = std::f64::consts::PI * idx as f64 / n as f64;
            *v = Complex::new(c * ang.cos(), c * ang.sin());
        }
        fft(&mut vals, true);
        (0..count)
            .map(|j| {
                let c = vals[self.orbit[j]];
                (c.re / pt.scale, c.im / pt.scale)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular::ntt_primes;

    fn setup() -> (Arc<CkksContext>, Encoder) {
        let mut primes = ntt_primes(40, 2, 64);
        primes.insert(0, ntt_primes(50, 1, 64)[0]);
        let ctx = CkksContext::new(64, primes, (1u64 << 30) as f64);
        let enc = Encoder::new(&ctx);
        (ctx, enc)
    }

    #[test]
    fn encode_decode_roundtrip() {
        let (ctx, enc) = setup();
        let vals: Vec<f64> = (0..32).map(|i| (i as f64 - 16.0) / 8.0).collect();
        let pt = enc.encode(&vals, ctx.scale(), 3);
        let out = enc.decode(&pt, 32);
        for (a, b) in vals.iter().zip(&out) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn partial_slots_zero_filled() {
        let (ctx, enc) = setup();
        let pt = enc.encode(&[1.0, 2.0], ctx.scale(), 2);
        let out = enc.decode(&pt, 8);
        assert!((out[0] - 1.0).abs() < 1e-6);
        assert!((out[1] - 2.0).abs() < 1e-6);
        for &v in &out[2..] {
            assert!(v.abs() < 1e-6);
        }
    }

    #[test]
    fn constant_encoding_fills_all_slots() {
        let (ctx, enc) = setup();
        let pt = enc.encode_constant(0.75, ctx.scale(), 2);
        let out = enc.decode(&pt, 32);
        for &v in &out {
            assert!((v - 0.75).abs() < 1e-6, "{v}");
        }
    }

    #[test]
    fn plaintext_add_is_slotwise() {
        let (ctx, enc) = setup();
        let a: Vec<f64> = (0..16).map(|i| i as f64 / 4.0).collect();
        let b: Vec<f64> = (0..16).map(|i| 1.0 - i as f64 / 8.0).collect();
        let pa = enc.encode(&a, ctx.scale(), 2);
        let pb = enc.encode(&b, ctx.scale(), 2);
        let sum = Plaintext {
            poly: pa.poly.add(&pb.poly),
            scale: pa.scale,
        };
        let out = enc.decode(&sum, 16);
        for i in 0..16 {
            assert!((out[i] - (a[i] + b[i])).abs() < 1e-6);
        }
    }

    #[test]
    fn plaintext_mul_is_slotwise() {
        // The whole point of the canonical embedding: ring mult acts
        // slotwise on the embedded values.
        let (ctx, enc) = setup();
        let a: Vec<f64> = (0..16).map(|i| (i as f64 - 8.0) / 8.0).collect();
        let b: Vec<f64> = (0..16).map(|i| (i as f64 + 1.0) / 16.0).collect();
        let pa = enc.encode(&a, ctx.scale(), 3);
        let pb = enc.encode(&b, ctx.scale(), 3);
        let prod = Plaintext {
            poly: pa.poly.mul(&pb.poly),
            scale: pa.scale * pb.scale,
        };
        let out = enc.decode(&prod, 16);
        for i in 0..16 {
            assert!(
                (out[i] - a[i] * b[i]).abs() < 1e-5,
                "slot {i}: {} vs {}",
                out[i],
                a[i] * b[i]
            );
        }
    }

    #[test]
    fn orbit_automorphism_rotates_plaintext_slots() {
        // Purely at the encoding layer: applying X -> X^{5^r} to the
        // plaintext polynomial must rotate slots left by r.
        let (ctx, enc) = setup();
        let slots = ctx.slots();
        let vals: Vec<f64> = (0..slots).map(|i| i as f64 / slots as f64).collect();
        let pt = enc.encode(&vals, ctx.scale(), 2);
        for r in [1usize, 2, 5] {
            let g = crate::galois::rotation_element(ctx.n(), r);
            let rotated = Plaintext {
                poly: pt.poly.automorphism(g),
                scale: pt.scale,
            };
            let out = enc.decode(&rotated, slots);
            for j in 0..slots {
                let want = vals[(j + r) % slots];
                assert!(
                    (out[j] - want).abs() < 1e-6,
                    "r={r} slot {j}: {} vs {want}",
                    out[j]
                );
            }
        }
    }

    #[test]
    fn orbit_conjugation_fixes_real_plaintext() {
        let (ctx, enc) = setup();
        let vals = vec![0.25, -0.75, 1.5, -2.0];
        let pt = enc.encode(&vals, ctx.scale(), 2);
        let g = crate::galois::conjugation_element(ctx.n());
        let conj = Plaintext {
            poly: pt.poly.automorphism(g),
            scale: pt.scale,
        };
        let out = enc.decode(&conj, 4);
        for (a, b) in vals.iter().zip(&out) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn decode_complex_real_slots_have_tiny_imaginary_part() {
        let (ctx, enc) = setup();
        let vals = vec![0.5, -0.5, 2.0];
        let pt = enc.encode(&vals, ctx.scale(), 2);
        for (re, im) in enc.decode_complex(&pt, 3) {
            assert!(im.abs() < 1e-6, "imaginary leak {im} at re={re}");
        }
    }

    #[test]
    fn decode_lanes_splits_at_stride() {
        let (ctx, enc) = setup();
        // 4 lanes of width 8, payload 3 values per lane.
        let mut vals = vec![0.0; 32];
        for l in 0..4 {
            for i in 0..3 {
                vals[l * 8 + i] = (l * 10 + i) as f64 / 10.0;
            }
        }
        let pt = enc.encode(&vals, ctx.scale(), 2);
        let lanes = enc.decode_lanes(&pt, 4, 8, 3);
        assert_eq!(lanes.len(), 4);
        for (l, lane) in lanes.iter().enumerate() {
            assert_eq!(lane.len(), 3);
            for (i, v) in lane.iter().enumerate() {
                let want = (l * 10 + i) as f64 / 10.0;
                assert!((v - want).abs() < 1e-6, "lane {l} slot {i}");
            }
        }
    }

    #[test]
    fn negative_values_roundtrip() {
        let (ctx, enc) = setup();
        let vals = vec![-0.5, -1.25, 3.75, -100.0];
        let pt = enc.encode(&vals, ctx.scale(), 2);
        let out = enc.decode(&pt, 4);
        for (a, b) in vals.iter().zip(&out) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }
}
