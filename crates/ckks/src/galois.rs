//! Galois automorphisms on ciphertexts: slot rotations and complex
//! conjugation.
//!
//! With the encoder's orbit slot ordering (slot `j` evaluates the
//! plaintext at the primitive `2n`-th root with exponent `5^j mod 2n`),
//! the automorphism `X ↦ X^{5^r}` cyclically rotates the `n/2` slots
//! left by `r`, and `X ↦ X^{2n−1}` conjugates every slot. Each
//! application needs one key switch (same gadget as relinearisation)
//! and consumes **no** level — rotations are depth-free, which is what
//! makes the diagonal matrix-vector method (see [`crate::linear`])
//! affordable inside a leveled budget.

use crate::cipher::{Ciphertext, Evaluator};

/// Returns the Galois element `5^steps mod 2n` implementing a left
/// rotation by `steps` slots.
///
/// # Panics
///
/// Panics if `n` is not a power of two.
pub fn rotation_element(n: usize, steps: usize) -> usize {
    assert!(n.is_power_of_two(), "n must be a power of two");
    let modulus = 2 * n;
    let mut acc = 1usize;
    let mut base = 5usize % modulus;
    let mut e = steps % (n / 2); // 5 has order n/2 modulo 2n
    while e > 0 {
        if e & 1 == 1 {
            acc = (acc * base) % modulus;
        }
        base = (base * base) % modulus;
        e >>= 1;
    }
    acc
}

/// The Galois element `2n − 1` implementing complex conjugation.
pub fn conjugation_element(n: usize) -> usize {
    2 * n - 1
}

impl Evaluator {
    /// Applies the automorphism `X ↦ X^g` to a ciphertext and
    /// key-switches the result back under the original secret key.
    ///
    /// # Panics
    ///
    /// Panics if `g` is not a valid odd Galois element.
    pub fn apply_galois(&self, ct: &Ciphertext, g: usize) -> Ciphertext {
        if g == 1 {
            return ct.clone();
        }
        let nl = ct.num_limbs();
        let mut c0g = ct.c0.automorphism(g);
        c0g.to_ntt();
        let c1g = ct.c1.automorphism(g); // key_switch converts internally
        let key = self.keys().galois_key(g, nl);
        let mut c1g_ntt = c1g;
        c1g_ntt.to_ntt();
        let (k0, k1) = self.key_switch_with(&c1g_ntt, &key);
        c0g.add_assign(&k0);
        Ciphertext {
            c0: c0g,
            c1: k1,
            scale: ct.scale,
        }
    }

    /// Rotates the slot vector left by `steps` (negative = right).
    ///
    /// Rotation is cyclic over all `n/2` slots; to rotate a shorter
    /// vector of length `m` cyclically, replicate it to fill the slots
    /// (see [`Evaluator::encrypt_replicated`]).
    pub fn rotate(&self, ct: &Ciphertext, steps: i64) -> Ciphertext {
        let slots = self.context().slots();
        let r = steps.rem_euclid(slots as i64) as usize;
        if r == 0 {
            return ct.clone();
        }
        self.apply_galois(ct, rotation_element(self.context().n(), r))
    }

    /// Conjugates every slot. For real-valued slots this is the
    /// identity up to noise — a useful self-check.
    pub fn conjugate(&self, ct: &Ciphertext) -> Ciphertext {
        self.apply_galois(ct, conjugation_element(self.context().n()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyChain;
    use crate::params::CkksParams;
    use smartpaf_tensor::Rng64;

    fn setup(seed: u64) -> (Evaluator, Rng64) {
        let ctx = CkksParams::toy().build();
        let mut rng = Rng64::new(seed);
        let keys = KeyChain::generate(&ctx, &mut rng);
        (Evaluator::new(&keys), rng)
    }

    fn ramp(slots: usize) -> Vec<f64> {
        (0..slots)
            .map(|i| (i as f64 - slots as f64 / 2.0) / slots as f64)
            .collect()
    }

    #[test]
    fn rotation_element_values() {
        let n = 256;
        assert_eq!(rotation_element(n, 0), 1);
        assert_eq!(rotation_element(n, 1), 5);
        assert_eq!(rotation_element(n, 2), 25);
        // Order of 5 mod 2n is n/2: a full cycle is the identity.
        assert_eq!(rotation_element(n, n / 2), 1);
    }

    #[test]
    fn rotate_by_one_shifts_slots_left() {
        let (ev, mut rng) = setup(31);
        let slots = ev.context().slots();
        let vals = ramp(slots);
        let ct = ev.encrypt_values(&vals, &mut rng);
        let rot = ev.rotate(&ct, 1);
        let out = ev.decrypt_values(&rot, slots);
        for j in 0..slots {
            let want = vals[(j + 1) % slots];
            assert!(
                (out[j] - want).abs() < 5e-3,
                "slot {j}: {} vs {want}",
                out[j]
            );
        }
    }

    #[test]
    fn rotate_by_arbitrary_steps() {
        let (ev, mut rng) = setup(32);
        let slots = ev.context().slots();
        let vals = ramp(slots);
        let ct = ev.encrypt_values(&vals, &mut rng);
        for &r in &[3usize, 17, slots - 1] {
            let rot = ev.rotate(&ct, r as i64);
            let out = ev.decrypt_values(&rot, slots);
            for j in (0..slots).step_by(7) {
                let want = vals[(j + r) % slots];
                assert!(
                    (out[j] - want).abs() < 5e-3,
                    "r={r} slot {j}: {} vs {want}",
                    out[j]
                );
            }
        }
    }

    #[test]
    fn negative_rotation_is_right_shift() {
        let (ev, mut rng) = setup(33);
        let slots = ev.context().slots();
        let vals = ramp(slots);
        let ct = ev.encrypt_values(&vals, &mut rng);
        let rot = ev.rotate(&ct, -2);
        let out = ev.decrypt_values(&rot, slots);
        for j in 0..slots {
            let want = vals[(j + slots - 2) % slots];
            assert!((out[j] - want).abs() < 5e-3, "slot {j}");
        }
    }

    #[test]
    fn rotations_compose() {
        let (ev, mut rng) = setup(34);
        let slots = ev.context().slots();
        let vals = ramp(slots);
        let ct = ev.encrypt_values(&vals, &mut rng);
        let a = ev.rotate(&ev.rotate(&ct, 3), 4);
        let b = ev.rotate(&ct, 7);
        let oa = ev.decrypt_values(&a, slots);
        let ob = ev.decrypt_values(&b, slots);
        for j in (0..slots).step_by(11) {
            assert!((oa[j] - ob[j]).abs() < 5e-3, "slot {j}");
        }
    }

    #[test]
    fn rotation_preserves_level_and_scale() {
        let (ev, mut rng) = setup(35);
        let ct = ev.encrypt_values(&[0.5, -0.5], &mut rng);
        let rot = ev.rotate(&ct, 1);
        assert_eq!(rot.num_limbs(), ct.num_limbs());
        assert_eq!(rot.scale, ct.scale);
    }

    #[test]
    fn conjugate_is_identity_on_real_slots() {
        let (ev, mut rng) = setup(36);
        let slots = ev.context().slots();
        let vals = ramp(slots);
        let ct = ev.encrypt_values(&vals, &mut rng);
        let conj = ev.conjugate(&ct);
        let out = ev.decrypt_values(&conj, slots);
        for j in (0..slots).step_by(9) {
            assert!((out[j] - vals[j]).abs() < 5e-3, "slot {j}");
        }
    }

    #[test]
    fn rotate_zero_steps_is_clone() {
        let (ev, mut rng) = setup(37);
        let ct = ev.encrypt_values(&[1.0, 2.0], &mut rng);
        let rot = ev.rotate(&ct, 0);
        let out = ev.decrypt_values(&rot, 2);
        assert!((out[0] - 1.0).abs() < 1e-4);
        assert!((out[1] - 2.0).abs() < 1e-4);
    }

    #[test]
    fn rotation_commutes_with_addition() {
        // rot(a + b) = rot(a) + rot(b): automorphisms are additive.
        let (ev, mut rng) = setup(38);
        let slots = ev.context().slots();
        let va = ramp(slots);
        let vb: Vec<f64> = va.iter().map(|v| 0.3 - v).collect();
        let ca = ev.encrypt_values(&va, &mut rng);
        let cb = ev.encrypt_values(&vb, &mut rng);
        let lhs = ev.rotate(&ev.add(&ca, &cb), 5);
        let rhs = ev.add(&ev.rotate(&ca, 5), &ev.rotate(&cb, 5));
        let ol = ev.decrypt_values(&lhs, slots);
        let or = ev.decrypt_values(&rhs, slots);
        for j in (0..slots).step_by(13) {
            assert!((ol[j] - or[j]).abs() < 2e-3, "slot {j}");
        }
    }

    #[test]
    fn rotated_product_matches_plaintext() {
        // Rotations after a genuine multiply+rescale still decrypt
        // correctly (exercises Galois keys at a reduced level).
        let (ev, mut rng) = setup(39);
        let slots = ev.context().slots();
        let va = ramp(slots);
        let vb: Vec<f64> = va.iter().map(|v| 1.0 - v.abs()).collect();
        let ca = ev.encrypt_values(&va, &mut rng);
        let cb = ev.encrypt_values(&vb, &mut rng);
        let mut prod = ev.mul(&ca, &cb);
        ev.rescale(&mut prod);
        let rot = ev.rotate(&prod, 4);
        let out = ev.decrypt_values(&rot, slots);
        for j in (0..slots).step_by(17) {
            let want = va[(j + 4) % slots] * vb[(j + 4) % slots];
            assert!(
                (out[j] - want).abs() < 2e-2,
                "slot {j}: {} vs {want}",
                out[j]
            );
        }
    }
}
