//! Key generation: secret/public keys and BV-style relinearisation
//! keys with per-prime base-2^w digit decomposition.
//!
//! Relinearisation keys are level-specific (the RNS gadget depends on
//! the active prime set), so [`KeyChain`] generates them lazily per
//! level and caches them. A production deployment would generate all
//! levels offline once; the lazy generation here is a simulator
//! convenience and is excluded from benchmark timings by Criterion's
//! warm-up iterations.

use crate::rns::{CkksContext, RnsPoly};
use smartpaf_tensor::Rng64;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Digit width for the relinearisation gadget (base `2^DIGIT_BITS`).
pub const DIGIT_BITS: u32 = 16;

/// The secret key: a ternary ring element (NTT form, full chain).
#[derive(Debug, Clone)]
pub struct SecretKey {
    pub(crate) s: RnsPoly,
}

/// The public key `(b, a)` with `b = -a·s + e`.
#[derive(Debug, Clone)]
pub struct PublicKey {
    pub(crate) b: RnsPoly,
    pub(crate) a: RnsPoly,
}

/// One key-switching component for a `(prime index, digit)` pair:
/// `(b, a)` with `b = -a·s + e + B^t·ĝ_i·s'` for the switched-from
/// secret `s'` (`s²` for relinearisation, `φ_g(s)` for Galois keys).
#[derive(Debug, Clone)]
pub(crate) struct RelinComponent {
    pub(crate) b: RnsPoly,
    pub(crate) a: RnsPoly,
    pub(crate) prime_index: usize,
    pub(crate) digit: u32,
}

/// A gadget-decomposed key-switching key for one level.
///
/// The same structure serves relinearisation (switching from `s²`) and
/// Galois rotations (switching from `φ_g(s)`); only the embedded
/// secret differs.
#[derive(Debug, Clone)]
pub struct RelinKey {
    pub(crate) components: Vec<RelinComponent>,
    pub(crate) num_limbs: usize,
}

/// Alias making call sites that key-switch under Galois automorphisms
/// read naturally.
pub type KeySwitchKey = RelinKey;

impl RelinKey {
    /// The level (limb count) this key was generated for.
    pub fn num_limbs(&self) -> usize {
        self.num_limbs
    }
}

/// Holds the key material and lazily generates per-level relin keys
/// and per-(element, level) Galois keys.
pub struct KeyChain {
    ctx: Arc<CkksContext>,
    sk: SecretKey,
    pk: PublicKey,
    relin_cache: Mutex<HashMap<usize, Arc<RelinKey>>>,
    galois_cache: Mutex<HashMap<(usize, usize), Arc<RelinKey>>>,
    relin_rng: Mutex<Rng64>,
}

impl std::fmt::Debug for KeyChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyChain")
            .field("n", &self.ctx.n())
            .field("chain_len", &self.ctx.primes().len())
            .finish()
    }
}

impl KeyChain {
    /// Generates a fresh key set.
    pub fn generate(ctx: &Arc<CkksContext>, rng: &mut Rng64) -> Arc<Self> {
        let full = ctx.primes().len();
        let mut s = RnsPoly::random_ternary(ctx, full, rng);
        s.to_ntt();
        let a = RnsPoly::random_uniform(ctx, full, rng);
        let mut e = RnsPoly::random_error(ctx, full, rng);
        e.to_ntt();
        let b = a.mul(&s).neg().add(&e);
        Arc::new(KeyChain {
            ctx: Arc::clone(ctx),
            sk: SecretKey { s },
            pk: PublicKey { b, a },
            relin_cache: Mutex::new(HashMap::new()),
            galois_cache: Mutex::new(HashMap::new()),
            relin_rng: Mutex::new(rng.fork(0x52454C4E)),
        })
    }

    /// Shared context.
    pub fn context(&self) -> &Arc<CkksContext> {
        &self.ctx
    }

    /// The public key.
    pub fn public_key(&self) -> &PublicKey {
        &self.pk
    }

    /// The secret key (exposed because this crate is a research
    /// simulator: decryption-based noise measurement needs it).
    pub fn secret_key(&self) -> &SecretKey {
        &self.sk
    }

    /// Returns (generating and caching if needed) the relinearisation
    /// key for ciphertexts with `num_limbs` limbs.
    ///
    /// # Panics
    ///
    /// Panics if `num_limbs` exceeds the chain length.
    pub fn relin_key(&self, num_limbs: usize) -> Arc<RelinKey> {
        assert!(num_limbs <= self.ctx.primes().len());
        if let Some(k) = self.relin_cache.lock().expect("poisoned").get(&num_limbs) {
            return Arc::clone(k);
        }
        let key = Arc::new(self.generate_relin(num_limbs));
        self.relin_cache
            .lock()
            .expect("poisoned")
            .insert(num_limbs, Arc::clone(&key));
        key
    }

    fn generate_relin(&self, num_limbs: usize) -> RelinKey {
        let mut rng = self
            .relin_rng
            .lock()
            .expect("poisoned")
            .fork(num_limbs as u64);
        let s_trunc = truncate(&self.sk.s, num_limbs);
        let s2 = s_trunc.mul(&s_trunc);
        self.generate_ksk(&s2, num_limbs, &mut rng)
    }

    /// Returns (generating and caching if needed) the Galois key for
    /// automorphism element `g` at `num_limbs` limbs, switching
    /// ciphertext components from `φ_g(s)` back to `s`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is not a valid odd Galois element or `num_limbs`
    /// exceeds the chain length.
    pub fn galois_key(&self, g: usize, num_limbs: usize) -> Arc<RelinKey> {
        assert!(num_limbs <= self.ctx.primes().len());
        let cache_key = (g, num_limbs);
        if let Some(k) = self.galois_cache.lock().expect("poisoned").get(&cache_key) {
            return Arc::clone(k);
        }
        let mut rng = self
            .relin_rng
            .lock()
            .expect("poisoned")
            .fork(0x47414C ^ ((g as u64) << 16) ^ num_limbs as u64);
        let s_trunc = truncate(&self.sk.s, num_limbs);
        let mut s_g = s_trunc.automorphism(g);
        s_g.to_ntt();
        let key = Arc::new(self.generate_ksk(&s_g, num_limbs, &mut rng));
        self.galois_cache
            .lock()
            .expect("poisoned")
            .insert(cache_key, Arc::clone(&key));
        key
    }

    /// Generates a gadget-decomposed key-switching key embedding the
    /// switched-from secret `s_prime` (NTT form, `num_limbs` limbs).
    fn generate_ksk(&self, s_prime: &RnsPoly, num_limbs: usize, rng: &mut Rng64) -> RelinKey {
        let ctx = &self.ctx;
        let s_trunc = truncate(&self.sk.s, num_limbs);
        let mut components = Vec::new();
        for prime_index in 0..num_limbs {
            let q_bits = 64 - ctx.primes()[prime_index].leading_zeros();
            let digits = q_bits.div_ceil(DIGIT_BITS);
            for digit in 0..digits {
                let a = RnsPoly::random_uniform(ctx, num_limbs, rng);
                let mut e = RnsPoly::random_error(ctx, num_limbs, rng);
                e.to_ntt();
                // gadget = B^digit * ĝ_i, which in RNS is the vector
                // that is B^digit at limb prime_index and 0 elsewhere.
                let mut scalars = vec![0u64; num_limbs];
                let q_i = ctx.primes()[prime_index];
                scalars[prime_index] = mod_pow2(DIGIT_BITS * digit, q_i);
                let gadget_sp = s_prime.mul_scalar_residues(&scalars);
                let b = a.mul(&s_trunc).neg().add(&e).add(&gadget_sp);
                components.push(RelinComponent {
                    b,
                    a,
                    prime_index,
                    digit,
                });
            }
        }
        RelinKey {
            components,
            num_limbs,
        }
    }
}

/// `2^e mod q` without overflow.
fn mod_pow2(e: u32, q: u64) -> u64 {
    let mut acc = 1u64 % q;
    for _ in 0..e {
        acc = (acc * 2) % q;
    }
    acc
}

/// Copies the first `num_limbs` limbs of an NTT-form element (one
/// flat prefix `memcpy` into a pooled buffer).
pub(crate) fn truncate(p: &RnsPoly, num_limbs: usize) -> RnsPoly {
    assert!(p.is_ntt(), "truncate expects NTT form");
    p.truncated(num_limbs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;

    #[test]
    fn keygen_deterministic_per_seed() {
        let ctx = CkksParams::toy().build();
        let mut r1 = Rng64::new(7);
        let mut r2 = Rng64::new(7);
        let k1 = KeyChain::generate(&ctx, &mut r1);
        let k2 = KeyChain::generate(&ctx, &mut r2);
        assert_eq!(k1.public_key().a.limb(0), k2.public_key().a.limb(0));
    }

    #[test]
    fn public_key_relation_holds() {
        // b + a·s = e must be small.
        let ctx = CkksParams::toy().build();
        let mut rng = Rng64::new(3);
        let kc = KeyChain::generate(&ctx, &mut rng);
        let mut lhs = kc.pk.b.add(&kc.pk.a.mul(&kc.sk.s));
        lhs.to_coeff();
        for i in 0..ctx.n() {
            assert!(lhs.coeff_to_i128(i, 2).abs() < 64, "coeff {i} too large");
        }
    }

    #[test]
    fn relin_key_gadget_relation() {
        // b + a·s = e + B^t ĝ_i s², so (b + a·s) - gadget·s² is small.
        let ctx = CkksParams::toy().build();
        let mut rng = Rng64::new(9);
        let kc = KeyChain::generate(&ctx, &mut rng);
        let nl = 3;
        let rk = kc.relin_key(nl);
        let s = truncate(&kc.sk.s, nl);
        let s2 = s.mul(&s);
        for comp in rk.components.iter().take(4) {
            let mut scalars = vec![0u64; nl];
            scalars[comp.prime_index] =
                mod_pow2(DIGIT_BITS * comp.digit, ctx.primes()[comp.prime_index]);
            let gadget_s2 = s2.mul_scalar_residues(&scalars);
            let mut resid = comp.b.add(&comp.a.mul(&s)).sub(&gadget_s2);
            resid.to_coeff();
            // Residual is just the error e: check a handful of coeffs
            // via single-limb reconstruction (e is tiny).
            for i in (0..ctx.n()).step_by(17) {
                let r = resid.coeff_to_i128(i, 1);
                assert!(r.abs() < 64, "relin residual {r}");
            }
        }
    }

    #[test]
    fn relin_cache_reuses() {
        let ctx = CkksParams::toy().build();
        let mut rng = Rng64::new(1);
        let kc = KeyChain::generate(&ctx, &mut rng);
        let a = kc.relin_key(2);
        let b = kc.relin_key(2);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn galois_key_gadget_relation() {
        // b + a·s = e + B^t ĝ_i φ_g(s), so (b + a·s) - gadget·φ_g(s)
        // must be small.
        let ctx = CkksParams::toy().build();
        let mut rng = Rng64::new(21);
        let kc = KeyChain::generate(&ctx, &mut rng);
        let nl = 2;
        let g = 5;
        let gk = kc.galois_key(g, nl);
        let s = truncate(&kc.sk.s, nl);
        let mut s_g = s.automorphism(g);
        s_g.to_ntt();
        for comp in gk.components.iter().take(4) {
            let mut scalars = vec![0u64; nl];
            scalars[comp.prime_index] =
                mod_pow2(DIGIT_BITS * comp.digit, ctx.primes()[comp.prime_index]);
            let gadget_sg = s_g.mul_scalar_residues(&scalars);
            let mut resid = comp.b.add(&comp.a.mul(&s)).sub(&gadget_sg);
            resid.to_coeff();
            for i in (0..ctx.n()).step_by(13) {
                let r = resid.coeff_to_i128(i, 1);
                assert!(r.abs() < 64, "galois residual {r}");
            }
        }
    }

    #[test]
    fn galois_cache_reuses_and_distinguishes() {
        let ctx = CkksParams::toy().build();
        let mut rng = Rng64::new(2);
        let kc = KeyChain::generate(&ctx, &mut rng);
        let a = kc.galois_key(5, 2);
        let b = kc.galois_key(5, 2);
        assert!(Arc::ptr_eq(&a, &b));
        let c = kc.galois_key(25, 2);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn mod_pow2_values() {
        assert_eq!(mod_pow2(0, 97), 1);
        assert_eq!(mod_pow2(10, 97), 1024 % 97);
    }
}
