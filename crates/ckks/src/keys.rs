//! Key generation: secret/public keys and key-switching keys under one
//! of two gadgets.
//!
//! - **Per-prime** (legacy): BV-style base-`2^16` digit decomposition
//!   within each RNS limb — `L × ⌈bits/16⌉` components at `L` limbs.
//! - **Hybrid**: ω RNS limbs group into one digit against ω special
//!   primes `P = ∏ p_l`; each digit is raised to the extended basis by
//!   fast base conversion and the accumulated result is scaled back
//!   down by `P` — only `⌈L/ω⌉` components, which is what makes
//!   relinearisation at the top of a deep chain cheap.
//!
//! The gadget is a context property: [`CkksContext::special_primes`]
//! non-empty selects hybrid with ω = its length.
//!
//! Key-switching keys are level-specific (the RNS gadget depends on
//! the active prime set), so [`KeyChain`] generates them lazily per
//! level and caches them. A production deployment would generate all
//! levels offline once; the lazy generation here is a simulator
//! convenience and is excluded from benchmark timings by Criterion's
//! warm-up iterations.

use crate::modular::inv_mod;
use crate::rns::{CkksContext, RnsPoly};
use smartpaf_tensor::Rng64;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Digit width for the per-prime relinearisation gadget
/// (base `2^DIGIT_BITS`).
pub const DIGIT_BITS: u32 = 16;

/// Which key-switch gadget a context uses. Determined by
/// [`CkksContext::special_primes`]; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeySwitchGadget {
    /// Base-`2^digit_bits` digit decomposition within each RNS limb.
    PerPrime {
        /// Digit width in bits.
        digit_bits: u32,
    },
    /// ω-limb digits raised against the special-prime modulus `P`.
    Hybrid {
        /// Digit size in RNS limbs.
        omega: usize,
    },
}

impl KeySwitchGadget {
    /// The gadget `ctx` is configured for.
    pub fn of(ctx: &CkksContext) -> Self {
        if ctx.special_primes().is_empty() {
            KeySwitchGadget::PerPrime {
                digit_bits: DIGIT_BITS,
            }
        } else {
            KeySwitchGadget::Hybrid {
                omega: ctx.special_primes().len(),
            }
        }
    }

    /// Number of key-switch components for a ciphertext with
    /// `num_limbs` limbs over the chain `primes`.
    pub fn component_count(&self, primes: &[u64], num_limbs: usize) -> usize {
        match *self {
            KeySwitchGadget::PerPrime { digit_bits } => primes[..num_limbs]
                .iter()
                .map(|&q| ((64 - q.leading_zeros()).div_ceil(digit_bits)) as usize)
                .sum(),
            KeySwitchGadget::Hybrid { omega } => num_limbs.div_ceil(omega.min(num_limbs)),
        }
    }
}

/// The secret key: a ternary ring element (NTT form, full chain).
#[derive(Debug, Clone)]
pub struct SecretKey {
    pub(crate) s: RnsPoly,
}

/// The public key `(b, a)` with `b = -a·s + e`.
#[derive(Debug, Clone)]
pub struct PublicKey {
    pub(crate) b: RnsPoly,
    pub(crate) a: RnsPoly,
}

/// One key-switching component for a `(prime index, digit)` pair:
/// `(b, a)` with `b = -a·s + e + B^t·ĝ_i·s'` for the switched-from
/// secret `s'` (`s²` for relinearisation, `φ_g(s)` for Galois keys).
#[derive(Debug, Clone)]
pub(crate) struct RelinComponent {
    pub(crate) b: RnsPoly,
    pub(crate) a: RnsPoly,
    pub(crate) prime_index: usize,
    pub(crate) digit: u32,
}

/// One digit of a hybrid key-switching key: the grouped chain-limb
/// range, the fast-base-conversion constants for lifting that digit to
/// the extended basis, and the `(b, a)` pair over the extended basis
/// with `b = -a·s + e + (P·G_j)·s'`.
#[derive(Debug, Clone)]
pub(crate) struct HybridDigit {
    /// First chain limb of the group.
    pub(crate) start: usize,
    /// One past the last chain limb of the group.
    pub(crate) end: usize,
    /// Per in-group limb `i`: `[(Q_j/q_i)^{-1}]_{q_i}` and its Shoup
    /// companion.
    pub(crate) inv_qhat: Vec<(u64, u64)>,
    /// Per extended-basis target limb `t`, per in-group limb `i`:
    /// `[(Q_j/q_i)] mod m_t`, laid out `t`-major
    /// (`qhat[t * group + i]`).
    pub(crate) qhat: Vec<u64>,
    /// `b` over the extended basis, flat limb-major, NTT form.
    pub(crate) b: Vec<u64>,
    /// `a` over the extended basis, flat limb-major, NTT form.
    pub(crate) a: Vec<u64>,
}

/// A hybrid key-switching key for one level: the per-digit components
/// plus the mod-down-by-`P` constants.
#[derive(Debug, Clone)]
pub(crate) struct HybridKsk {
    /// Level (chain limb count) the key was generated for.
    pub(crate) num_limbs: usize,
    /// Special primes in use: `k = min(ω, num_limbs)`.
    pub(crate) k: usize,
    /// The digits, covering `0..num_limbs` in order.
    pub(crate) digits: Vec<HybridDigit>,
    /// Per special limb `l`: `[(P/p_l)^{-1}]_{p_l}` and Shoup companion.
    pub(crate) inv_phat: Vec<(u64, u64)>,
    /// Per chain limb `t`, per special limb `l`: `(P/p_l) mod q_t`,
    /// laid out `t`-major (`phat[t * k + l]`).
    pub(crate) phat: Vec<u64>,
    /// Per chain limb `t`: `[P^{-1}]_{q_t}` and Shoup companion.
    pub(crate) p_inv: Vec<(u64, u64)>,
}

/// The two key-switching key layouts; which one a [`KeyChain`]
/// produces follows the context's [`KeySwitchGadget`].
#[derive(Debug, Clone)]
pub(crate) enum KskInner {
    /// Per-prime digit components.
    PerPrime(Vec<RelinComponent>),
    /// Hybrid ω-limb digits.
    Hybrid(HybridKsk),
}

/// A gadget-decomposed key-switching key for one level.
///
/// The same structure serves relinearisation (switching from `s²`) and
/// Galois rotations (switching from `φ_g(s)`); only the embedded
/// secret differs.
#[derive(Debug, Clone)]
pub struct RelinKey {
    pub(crate) inner: KskInner,
    pub(crate) num_limbs: usize,
}

/// Alias making call sites that key-switch under Galois automorphisms
/// read naturally.
pub type KeySwitchKey = RelinKey;

impl RelinKey {
    /// The level (limb count) this key was generated for.
    pub fn num_limbs(&self) -> usize {
        self.num_limbs
    }

    /// Number of gadget components (digits) in this key.
    pub fn component_count(&self) -> usize {
        match &self.inner {
            KskInner::PerPrime(components) => components.len(),
            KskInner::Hybrid(ksk) => ksk.digits.len(),
        }
    }
}

/// Holds the key material and lazily generates per-level relin keys
/// and per-(element, level) Galois keys.
pub struct KeyChain {
    ctx: Arc<CkksContext>,
    sk: SecretKey,
    /// The ternary secret coefficients behind `sk`: the hybrid gadget
    /// needs `s` residues over the special primes, which the chain-only
    /// `RnsPoly` cannot produce.
    sk_coeffs: Vec<i64>,
    pk: PublicKey,
    relin_cache: Mutex<HashMap<usize, Arc<RelinKey>>>,
    galois_cache: Mutex<HashMap<(usize, usize), Arc<RelinKey>>>,
    relin_rng: Mutex<Rng64>,
}

impl std::fmt::Debug for KeyChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyChain")
            .field("n", &self.ctx.n())
            .field("chain_len", &self.ctx.primes().len())
            .finish()
    }
}

impl KeyChain {
    /// Generates a fresh key set.
    pub fn generate(ctx: &Arc<CkksContext>, rng: &mut Rng64) -> Arc<Self> {
        let full = ctx.primes().len();
        // Same draws as `RnsPoly::random_ternary` (keygen determinism
        // per seed is pinned by tests), but the raw coefficients are
        // retained for special-prime residue construction.
        let sk_coeffs: Vec<i64> = (0..ctx.n()).map(|_| rng.next_below(3) as i64 - 1).collect();
        let mut s = RnsPoly::from_signed_coeffs(ctx, &sk_coeffs, full);
        s.to_ntt();
        let a = RnsPoly::random_uniform(ctx, full, rng);
        let mut e = RnsPoly::random_error(ctx, full, rng);
        e.to_ntt();
        let b = a.mul(&s).neg().add(&e);
        Arc::new(KeyChain {
            ctx: Arc::clone(ctx),
            sk: SecretKey { s },
            sk_coeffs,
            pk: PublicKey { b, a },
            relin_cache: Mutex::new(HashMap::new()),
            galois_cache: Mutex::new(HashMap::new()),
            relin_rng: Mutex::new(rng.fork(0x52454C4E)),
        })
    }

    /// Shared context.
    pub fn context(&self) -> &Arc<CkksContext> {
        &self.ctx
    }

    /// The public key.
    pub fn public_key(&self) -> &PublicKey {
        &self.pk
    }

    /// The secret key (exposed because this crate is a research
    /// simulator: decryption-based noise measurement needs it).
    pub fn secret_key(&self) -> &SecretKey {
        &self.sk
    }

    /// Returns (generating and caching if needed) the relinearisation
    /// key for ciphertexts with `num_limbs` limbs.
    ///
    /// # Panics
    ///
    /// Panics if `num_limbs` exceeds the chain length.
    pub fn relin_key(&self, num_limbs: usize) -> Arc<RelinKey> {
        assert!(num_limbs <= self.ctx.primes().len());
        if let Some(k) = self.relin_cache.lock().expect("poisoned").get(&num_limbs) {
            return Arc::clone(k);
        }
        let key = Arc::new(self.generate_relin(num_limbs));
        self.relin_cache
            .lock()
            .expect("poisoned")
            .insert(num_limbs, Arc::clone(&key));
        key
    }

    fn generate_relin(&self, num_limbs: usize) -> RelinKey {
        let mut rng = self
            .relin_rng
            .lock()
            .expect("poisoned")
            .fork(num_limbs as u64);
        match KeySwitchGadget::of(&self.ctx) {
            KeySwitchGadget::PerPrime { .. } => {
                let s_trunc = truncate(&self.sk.s, num_limbs);
                let s2 = s_trunc.mul(&s_trunc);
                self.generate_ksk(&s2, num_limbs, &mut rng)
            }
            KeySwitchGadget::Hybrid { .. } => RelinKey {
                inner: KskInner::Hybrid(self.generate_hybrid_ksk(
                    SwitchedSecret::Square,
                    num_limbs,
                    &mut rng,
                )),
                num_limbs,
            },
        }
    }

    /// Returns (generating and caching if needed) the Galois key for
    /// automorphism element `g` at `num_limbs` limbs, switching
    /// ciphertext components from `φ_g(s)` back to `s`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is not a valid odd Galois element or `num_limbs`
    /// exceeds the chain length.
    pub fn galois_key(&self, g: usize, num_limbs: usize) -> Arc<RelinKey> {
        assert!(num_limbs <= self.ctx.primes().len());
        let cache_key = (g, num_limbs);
        if let Some(k) = self.galois_cache.lock().expect("poisoned").get(&cache_key) {
            return Arc::clone(k);
        }
        let mut rng = self
            .relin_rng
            .lock()
            .expect("poisoned")
            .fork(0x47414C ^ ((g as u64) << 16) ^ num_limbs as u64);
        let key = match KeySwitchGadget::of(&self.ctx) {
            KeySwitchGadget::PerPrime { .. } => {
                let s_trunc = truncate(&self.sk.s, num_limbs);
                let mut s_g = s_trunc.automorphism(g);
                s_g.to_ntt();
                self.generate_ksk(&s_g, num_limbs, &mut rng)
            }
            KeySwitchGadget::Hybrid { .. } => RelinKey {
                inner: KskInner::Hybrid(self.generate_hybrid_ksk(
                    SwitchedSecret::Auto(g),
                    num_limbs,
                    &mut rng,
                )),
                num_limbs,
            },
        };
        let key = Arc::new(key);
        self.galois_cache
            .lock()
            .expect("poisoned")
            .insert(cache_key, Arc::clone(&key));
        key
    }

    /// Generates a gadget-decomposed key-switching key embedding the
    /// switched-from secret `s_prime` (NTT form, `num_limbs` limbs).
    fn generate_ksk(&self, s_prime: &RnsPoly, num_limbs: usize, rng: &mut Rng64) -> RelinKey {
        let ctx = &self.ctx;
        let s_trunc = truncate(&self.sk.s, num_limbs);
        let mut components = Vec::new();
        for prime_index in 0..num_limbs {
            let q_bits = 64 - ctx.primes()[prime_index].leading_zeros();
            let digits = q_bits.div_ceil(DIGIT_BITS);
            for digit in 0..digits {
                let a = RnsPoly::random_uniform(ctx, num_limbs, rng);
                let mut e = RnsPoly::random_error(ctx, num_limbs, rng);
                e.to_ntt();
                // gadget = B^digit * ĝ_i, which in RNS is the vector
                // that is B^digit at limb prime_index and 0 elsewhere.
                let mut scalars = vec![0u64; num_limbs];
                let q_i = ctx.primes()[prime_index];
                scalars[prime_index] = mod_pow2(DIGIT_BITS * digit, q_i);
                let gadget_sp = s_prime.mul_scalar_residues(&scalars);
                let b = a.mul(&s_trunc).neg().add(&e).add(&gadget_sp);
                components.push(RelinComponent {
                    b,
                    a,
                    prime_index,
                    digit,
                });
            }
        }
        RelinKey {
            inner: KskInner::PerPrime(components),
            num_limbs,
        }
    }

    /// Residues of signed coefficients modulo every limb of the
    /// extended basis `[q_0..q_{nl-1}, p_0..p_{k-1}]`, NTT-transformed
    /// per limb, as one flat limb-major buffer.
    fn ext_residues_ntt(&self, coeffs: &[i64], num_limbs: usize, k: usize) -> Vec<u64> {
        let ctx = &self.ctx;
        let n = ctx.n();
        let ext = num_limbs + k;
        let mut out = vec![0u64; ext * n];
        for t in 0..ext {
            let m = ctx.ext_modulus(num_limbs, t);
            let limb = &mut out[t * n..(t + 1) * n];
            for (dst, &c) in limb.iter_mut().zip(coeffs) {
                let r = if c >= 0 {
                    c as u64 % m
                } else {
                    m - ((-c) as u64 % m)
                };
                *dst = if r == m { 0 } else { r };
            }
            ctx.ext_ntt(num_limbs, t).forward(limb);
        }
        out
    }

    /// Generates a hybrid key-switching key embedding the
    /// switched-from secret (`s²` or `φ_g(s)`), with all base
    /// conversion and mod-down constants precomputed. One-time per
    /// (kind, level) — cached by the callers.
    fn generate_hybrid_ksk(
        &self,
        which: SwitchedSecret,
        num_limbs: usize,
        rng: &mut Rng64,
    ) -> HybridKsk {
        let ctx = &self.ctx;
        let n = ctx.n();
        let omega = ctx.special_primes().len();
        let omega_eff = omega.min(num_limbs);
        let k = omega_eff;
        let ext = num_limbs + k;
        let mulmod = |a: u64, b: u64, m: u64| ((a as u128 * b as u128) % m as u128) as u64;

        // Secrets over the extended basis (NTT form, flat limb-major).
        let s_ext = self.ext_residues_ntt(&self.sk_coeffs, num_limbs, k);
        let sp_ext = match which {
            SwitchedSecret::Square => {
                let mut sq = s_ext.clone();
                for t in 0..ext {
                    let arith = ctx.ext_arith(num_limbs, t);
                    for v in &mut sq[t * n..(t + 1) * n] {
                        *v = arith.mul(*v, *v);
                    }
                }
                sq
            }
            SwitchedSecret::Auto(g) => {
                let two_n = 2 * n;
                let mut coeffs = vec![0i64; n];
                for (i, &c) in self.sk_coeffs.iter().enumerate() {
                    let e = (i * g) % two_n;
                    if e < n {
                        coeffs[e] = c;
                    } else {
                        coeffs[e - n] = -c;
                    }
                }
                self.ext_residues_ntt(&coeffs, num_limbs, k)
            }
        };

        // Mod-down constants: P = ∏ special[..k].
        let mut p_mod = vec![0u64; num_limbs];
        for (t, dst) in p_mod.iter_mut().enumerate() {
            let q = ctx.primes()[t];
            *dst = ctx.special_primes()[..k]
                .iter()
                .fold(1 % q, |acc, &p| mulmod(acc, p % q, q));
        }
        let mut inv_phat = Vec::with_capacity(k);
        for l in 0..k {
            let p_l = ctx.special_primes()[l];
            let mut hat = 1 % p_l;
            for (l2, &p) in ctx.special_primes()[..k].iter().enumerate() {
                if l2 != l {
                    hat = mulmod(hat, p % p_l, p_l);
                }
            }
            let inv = inv_mod(hat, p_l);
            inv_phat.push((inv, ctx.arith_special(l).shoup(inv)));
        }
        let mut phat = vec![0u64; num_limbs * k];
        for t in 0..num_limbs {
            let q = ctx.primes()[t];
            for l in 0..k {
                let mut hat = 1 % q;
                for (l2, &p) in ctx.special_primes()[..k].iter().enumerate() {
                    if l2 != l {
                        hat = mulmod(hat, p % q, q);
                    }
                }
                phat[t * k + l] = hat;
            }
        }
        let p_inv: Vec<(u64, u64)> = (0..num_limbs)
            .map(|t| {
                let q = ctx.primes()[t];
                let inv = inv_mod(p_mod[t], q);
                (inv, ctx.arith(t).shoup(inv))
            })
            .collect();

        // The digits.
        let mut digits = Vec::with_capacity(num_limbs.div_ceil(omega_eff));
        let mut start = 0;
        while start < num_limbs {
            let end = (start + omega_eff).min(num_limbs);
            let group = end - start;
            // Base conversion constants for Q_j = ∏ q_{start..end}.
            let mut inv_qhat = Vec::with_capacity(group);
            for i in start..end {
                let q_i = ctx.primes()[i];
                let mut hat = 1 % q_i;
                for (i2, &q) in ctx.primes()[start..end].iter().enumerate() {
                    if start + i2 != i {
                        hat = mulmod(hat, q % q_i, q_i);
                    }
                }
                let inv = inv_mod(hat, q_i);
                inv_qhat.push((inv, ctx.arith(i).shoup(inv)));
            }
            let mut qhat = vec![0u64; ext * group];
            for t in 0..ext {
                let m = ctx.ext_modulus(num_limbs, t);
                for i in 0..group {
                    let mut hat = 1 % m;
                    for (i2, &q) in ctx.primes()[start..end].iter().enumerate() {
                        if i2 != i {
                            hat = mulmod(hat, q % m, m);
                        }
                    }
                    qhat[t * group + i] = hat;
                }
            }

            // Component (b, a) over the extended basis. Draw order is
            // limb-major like `random_uniform` / `random_error`.
            let mut a = vec![0u64; ext * n];
            for t in 0..ext {
                let m = ctx.ext_modulus(num_limbs, t);
                for dst in &mut a[t * n..(t + 1) * n] {
                    *dst = rng.next_u64() % m;
                }
            }
            let sigma = ctx.sigma();
            let e_coeffs: Vec<i64> = (0..n)
                .map(|_| (rng.next_gaussian() as f64 * sigma).round() as i64)
                .collect();
            let e_ext = self.ext_residues_ntt(&e_coeffs, num_limbs, k);
            // b = -a·s + e + gadget·s', where the gadget residue is
            // `P mod q_t` on in-group chain limbs and 0 elsewhere
            // (every special prime divides P, and G_j ≡ 0 modulo
            // out-of-group chain primes).
            let mut b = vec![0u64; ext * n];
            for t in 0..ext {
                let arith = ctx.ext_arith(num_limbs, t);
                let gadget = if t >= start && t < end { p_mod[t] } else { 0 };
                let (bt, at) = (&mut b[t * n..(t + 1) * n], &a[t * n..(t + 1) * n]);
                let st = &s_ext[t * n..(t + 1) * n];
                let spt = &sp_ext[t * n..(t + 1) * n];
                let et = &e_ext[t * n..(t + 1) * n];
                for c in 0..n {
                    let neg_as = arith.q() - arith.mul(at[c], st[c]);
                    let neg_as = if neg_as == arith.q() { 0 } else { neg_as };
                    let g_sp = arith.mul(gadget, spt[c]);
                    bt[c] = arith.add(arith.add(neg_as, et[c]), g_sp);
                }
            }
            digits.push(HybridDigit {
                start,
                end,
                inv_qhat,
                qhat,
                b,
                a,
            });
            start = end;
        }

        HybridKsk {
            num_limbs,
            k,
            digits,
            inv_phat,
            phat,
            p_inv,
        }
    }
}

/// Which switched-from secret a hybrid key embeds.
enum SwitchedSecret {
    /// `s'` = `s²` (relinearisation).
    Square,
    /// `s'` = `φ_g(s)` (Galois rotation by element `g`).
    Auto(usize),
}

/// `2^e mod q` without overflow.
fn mod_pow2(e: u32, q: u64) -> u64 {
    let mut acc = 1u64 % q;
    for _ in 0..e {
        acc = (acc * 2) % q;
    }
    acc
}

/// Copies the first `num_limbs` limbs of an NTT-form element (one
/// flat prefix `memcpy` into a pooled buffer).
pub(crate) fn truncate(p: &RnsPoly, num_limbs: usize) -> RnsPoly {
    assert!(p.is_ntt(), "truncate expects NTT form");
    p.truncated(num_limbs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;

    /// Toy context forced onto the legacy per-prime gadget.
    fn per_prime_ctx() -> Arc<CkksContext> {
        CkksParams {
            ks_digit_limbs: 0,
            ..CkksParams::toy()
        }
        .build()
    }

    #[test]
    fn keygen_deterministic_per_seed() {
        let ctx = CkksParams::toy().build();
        let mut r1 = Rng64::new(7);
        let mut r2 = Rng64::new(7);
        let k1 = KeyChain::generate(&ctx, &mut r1);
        let k2 = KeyChain::generate(&ctx, &mut r2);
        assert_eq!(k1.public_key().a.limb(0), k2.public_key().a.limb(0));
    }

    #[test]
    fn public_key_relation_holds() {
        // b + a·s = e must be small.
        let ctx = CkksParams::toy().build();
        let mut rng = Rng64::new(3);
        let kc = KeyChain::generate(&ctx, &mut rng);
        let mut lhs = kc.pk.b.add(&kc.pk.a.mul(&kc.sk.s));
        lhs.to_coeff();
        for i in 0..ctx.n() {
            assert!(lhs.coeff_to_i128(i, 2).abs() < 64, "coeff {i} too large");
        }
    }

    #[test]
    fn relin_key_gadget_relation() {
        // b + a·s = e + B^t ĝ_i s², so (b + a·s) - gadget·s² is small.
        let ctx = per_prime_ctx();
        let mut rng = Rng64::new(9);
        let kc = KeyChain::generate(&ctx, &mut rng);
        let nl = 3;
        let rk = kc.relin_key(nl);
        let s = truncate(&kc.sk.s, nl);
        let s2 = s.mul(&s);
        let KskInner::PerPrime(components) = &rk.inner else {
            panic!("per-prime context produced a hybrid key");
        };
        for comp in components.iter().take(4) {
            let mut scalars = vec![0u64; nl];
            scalars[comp.prime_index] =
                mod_pow2(DIGIT_BITS * comp.digit, ctx.primes()[comp.prime_index]);
            let gadget_s2 = s2.mul_scalar_residues(&scalars);
            let mut resid = comp.b.add(&comp.a.mul(&s)).sub(&gadget_s2);
            resid.to_coeff();
            // Residual is just the error e: check a handful of coeffs
            // via single-limb reconstruction (e is tiny).
            for i in (0..ctx.n()).step_by(17) {
                let r = resid.coeff_to_i128(i, 1);
                assert!(r.abs() < 64, "relin residual {r}");
            }
        }
    }

    #[test]
    fn relin_cache_reuses() {
        let ctx = CkksParams::toy().build();
        let mut rng = Rng64::new(1);
        let kc = KeyChain::generate(&ctx, &mut rng);
        let a = kc.relin_key(2);
        let b = kc.relin_key(2);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn galois_key_gadget_relation() {
        // b + a·s = e + B^t ĝ_i φ_g(s), so (b + a·s) - gadget·φ_g(s)
        // must be small.
        let ctx = per_prime_ctx();
        let mut rng = Rng64::new(21);
        let kc = KeyChain::generate(&ctx, &mut rng);
        let nl = 2;
        let g = 5;
        let gk = kc.galois_key(g, nl);
        let s = truncate(&kc.sk.s, nl);
        let mut s_g = s.automorphism(g);
        s_g.to_ntt();
        let KskInner::PerPrime(components) = &gk.inner else {
            panic!("per-prime context produced a hybrid key");
        };
        for comp in components.iter().take(4) {
            let mut scalars = vec![0u64; nl];
            scalars[comp.prime_index] =
                mod_pow2(DIGIT_BITS * comp.digit, ctx.primes()[comp.prime_index]);
            let gadget_sg = s_g.mul_scalar_residues(&scalars);
            let mut resid = comp.b.add(&comp.a.mul(&s)).sub(&gadget_sg);
            resid.to_coeff();
            for i in (0..ctx.n()).step_by(13) {
                let r = resid.coeff_to_i128(i, 1);
                assert!(r.abs() < 64, "galois residual {r}");
            }
        }
    }

    #[test]
    fn galois_cache_reuses_and_distinguishes() {
        let ctx = CkksParams::toy().build();
        let mut rng = Rng64::new(2);
        let kc = KeyChain::generate(&ctx, &mut rng);
        let a = kc.galois_key(5, 2);
        let b = kc.galois_key(5, 2);
        assert!(Arc::ptr_eq(&a, &b));
        let c = kc.galois_key(25, 2);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn mod_pow2_values() {
        assert_eq!(mod_pow2(0, 97), 1);
        assert_eq!(mod_pow2(10, 97), 1024 % 97);
    }

    #[test]
    fn gadget_selection_follows_context() {
        assert_eq!(
            KeySwitchGadget::of(&per_prime_ctx()),
            KeySwitchGadget::PerPrime {
                digit_bits: DIGIT_BITS
            }
        );
        assert_eq!(
            KeySwitchGadget::of(&CkksParams::toy().build()),
            KeySwitchGadget::Hybrid { omega: 3 }
        );
    }

    #[test]
    fn hybrid_component_count_beats_per_prime() {
        let ctx = CkksParams::toy().build();
        let per_prime = KeySwitchGadget::PerPrime {
            digit_bits: DIGIT_BITS,
        };
        let hybrid = KeySwitchGadget::of(&ctx);
        // 13 limbs: 60-bit base → 4 digits + 12 × 40-bit → 3 each = 40
        // per-prime components, vs ⌈13/3⌉ = 5 hybrid digits.
        assert_eq!(per_prime.component_count(ctx.primes(), 13), 40);
        assert_eq!(hybrid.component_count(ctx.primes(), 13), 5);
        // Level-aware digit selection: ω clamps to the live limb count.
        assert_eq!(hybrid.component_count(ctx.primes(), 2), 1);
        assert_eq!(hybrid.component_count(ctx.primes(), 1), 1);
    }

    /// Checks the hybrid key relation `b + a·s − gadget·s' = e` limb
    /// by limb over the extended basis: the residual must be a
    /// centered-small error in every limb.
    fn assert_hybrid_relation(kc: &KeyChain, ksk: &HybridKsk, sp_coeffs_check: &str) {
        let ctx = kc.context();
        let n = ctx.n();
        let nl = ksk.num_limbs;
        let k = ksk.k;
        let ext = nl + k;
        let s_ext = kc.ext_residues_ntt(&kc.sk_coeffs, nl, k);
        // P mod q_t, recomputed independently of keygen.
        let p_mod: Vec<u64> = (0..nl)
            .map(|t| {
                let q = ctx.primes()[t];
                ctx.special_primes()[..k].iter().fold(1 % q, |acc, &p| {
                    ((acc as u128 * (p % q) as u128) % q as u128) as u64
                })
            })
            .collect();
        let sp_ext = match sp_coeffs_check {
            "square" => {
                let mut sq = s_ext.clone();
                for t in 0..ext {
                    let arith = ctx.ext_arith(nl, t);
                    for v in &mut sq[t * n..(t + 1) * n] {
                        *v = arith.mul(*v, *v);
                    }
                }
                sq
            }
            _ => unreachable!(),
        };
        for digit in &ksk.digits {
            for t in 0..ext {
                let arith = ctx.ext_arith(nl, t);
                let gadget = if t >= digit.start && t < digit.end {
                    p_mod[t]
                } else {
                    0
                };
                let mut resid = vec![0u64; n];
                for c in 0..n {
                    let a_s = arith.mul(digit.a[t * n + c], s_ext[t * n + c]);
                    let g_sp = arith.mul(gadget, sp_ext[t * n + c]);
                    resid[c] = arith.sub(arith.add(digit.b[t * n + c], a_s), g_sp);
                }
                ctx.ext_ntt(nl, t).inverse(&mut resid);
                let m = arith.q() as i128;
                for (c, &r) in resid.iter().enumerate().step_by(17) {
                    let centered = if (r as i128) > m / 2 {
                        r as i128 - m
                    } else {
                        r as i128
                    };
                    assert!(
                        centered.abs() < 64,
                        "digit [{},{}) limb {t} coeff {c}: residual {centered}",
                        digit.start,
                        digit.end
                    );
                }
            }
        }
    }

    #[test]
    fn hybrid_relin_key_gadget_relation() {
        let ctx = CkksParams::toy().build();
        let mut rng = Rng64::new(11);
        let kc = KeyChain::generate(&ctx, &mut rng);
        for nl in [1, 2, 5, 13] {
            let rk = kc.relin_key(nl);
            let KskInner::Hybrid(ksk) = &rk.inner else {
                panic!("hybrid context produced a per-prime key");
            };
            assert_eq!(ksk.digits.len(), nl.div_ceil(3.min(nl)));
            assert_eq!(ksk.k, 3.min(nl));
            assert_hybrid_relation(&kc, ksk, "square");
        }
    }

    #[test]
    fn hybrid_digits_partition_the_chain() {
        let ctx = CkksParams::toy().build();
        let mut rng = Rng64::new(13);
        let kc = KeyChain::generate(&ctx, &mut rng);
        for nl in [1, 3, 4, 7, 13] {
            let rk = kc.relin_key(nl);
            let KskInner::Hybrid(ksk) = &rk.inner else {
                panic!("hybrid context produced a per-prime key");
            };
            let mut expect_start = 0;
            for d in &ksk.digits {
                assert_eq!(d.start, expect_start);
                assert!(d.end > d.start && d.end <= nl);
                assert!(d.end - d.start <= 3);
                expect_start = d.end;
            }
            assert_eq!(expect_start, nl);
        }
    }
}
