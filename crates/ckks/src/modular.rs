//! 64-bit prime-field arithmetic and NTT-friendly prime generation.
//!
//! Two tiers of kernels live here:
//!
//! - **Portable helpers** (`add_mod`, `sub_mod`, `mul_mod`, …) that
//!   reduce through a 128-bit remainder. Correct for any `q < 2^63`
//!   but each `mul_mod` costs a hardware division.
//! - **[`PrimeArith`]**: precomputed Barrett and Shoup constants for
//!   one fixed prime, replacing every division in the hot loops with
//!   two or three multiplies. All `PrimeArith` kernels compute exactly
//!   the same residues as the portable helpers — they are drop-in
//!   *representation-preserving* replacements, so swapping them in
//!   cannot change any ciphertext bit.
//!
//! Lazy-reduction variants (`*_lazy`) return representatives in
//! `[0, 2q)` instead of `[0, q)`; callers accumulate in `[0, 4q)` and
//! normalize once at the end (see `ckks::ntt`). All lazy kernels
//! require `q < 2^62` so `4q` fits in a `u64` — enforced by
//! [`PrimeArith::new`] and by [`ntt_primes`].

/// Modular addition in `[0, q)`.
#[inline]
pub fn add_mod(a: u64, b: u64, q: u64) -> u64 {
    let s = a + b; // q < 2^62 so no overflow
    if s >= q {
        s - q
    } else {
        s
    }
}

/// Modular subtraction in `[0, q)`.
#[inline]
pub fn sub_mod(a: u64, b: u64, q: u64) -> u64 {
    if a >= b {
        a - b
    } else {
        a + q - b
    }
}

/// Modular multiplication via 128-bit intermediate.
#[inline]
pub fn mul_mod(a: u64, b: u64, q: u64) -> u64 {
    ((a as u128 * b as u128) % q as u128) as u64
}

/// Modular exponentiation.
pub fn pow_mod(mut base: u64, mut exp: u64, q: u64) -> u64 {
    let mut acc = 1u64;
    base %= q;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, q);
        }
        base = mul_mod(base, base, q);
        exp >>= 1;
    }
    acc
}

/// Modular inverse of `a` modulo prime `q` (Fermat).
///
/// # Panics
///
/// Panics if `a == 0`.
pub fn inv_mod(a: u64, q: u64) -> u64 {
    assert!(!a.is_multiple_of(q), "inverse of zero");
    pow_mod(a, q - 2, q)
}

/// Deterministic Miller-Rabin primality test for `u64`.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &p in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut r = 0;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'witness: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Precomputed Barrett/Shoup constants for a fixed prime `q < 2^62`.
///
/// Every kernel on this struct is an exact replacement for the
/// portable `% q` helpers: for the same inputs it returns the same
/// canonical residue (or, for `*_lazy` variants, a representative that
/// normalizes to it). The point is raw speed — no hardware division
/// anywhere on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrimeArith {
    /// The prime modulus.
    q: u64,
    /// `2q`, the lazy-representative bound.
    two_q: u64,
    /// High 64 bits of `floor(2^128 / q)` (Barrett ratio).
    ratio_hi: u64,
    /// Low 64 bits of `floor(2^128 / q)`.
    ratio_lo: u64,
}

impl PrimeArith {
    /// Precomputes the Barrett ratio `floor(2^128 / q)` for `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q < 2` or `q >= 2^62` (lazy kernels need `4q` to fit
    /// in a `u64`) or if `q` is even (the ratio shortcut below assumes
    /// `q` does not divide `2^128`; all NTT primes are odd).
    pub fn new(q: u64) -> Self {
        assert!(q >= 2, "modulus must be at least 2");
        assert!(q < (1u64 << 62), "modulus must be below 2^62");
        assert!(q & 1 == 1, "modulus must be odd");
        // q is odd, so q never divides 2^128 and
        // floor(2^128 / q) == floor((2^128 - 1) / q).
        let ratio = u128::MAX / q as u128;
        PrimeArith {
            q,
            two_q: 2 * q,
            ratio_hi: (ratio >> 64) as u64,
            ratio_lo: ratio as u64,
        }
    }

    /// The prime modulus.
    #[inline]
    pub fn q(&self) -> u64 {
        self.q
    }

    /// `2q` — the exclusive upper bound on lazy representatives.
    #[inline]
    pub fn two_q(&self) -> u64 {
        self.two_q
    }

    /// Modular addition in `[0, q)`. Same result as [`add_mod`].
    #[inline]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q);
        let s = a + b;
        if s >= self.q {
            s - self.q
        } else {
            s
        }
    }

    /// Modular subtraction in `[0, q)`. Same result as [`sub_mod`].
    #[inline]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q);
        if a >= b {
            a - b
        } else {
            a + self.q - b
        }
    }

    /// Reduces a 128-bit value to `[0, q)` by Barrett reduction —
    /// exact for **any** `u128` input. This is what lets the
    /// key-switch inner loop accumulate raw 128-bit products lazily
    /// and reduce once at the end (see `Evaluator::key_switch_with`).
    ///
    /// Computes the low word of `q_hat ~= floor(x * ratio / 2^128)`
    /// from the four cross products (only the low half of
    /// `x_lo * ratio_lo` is dropped; the estimate is then off by at
    /// most one), and takes `x - q_hat * q` with a single conditional
    /// correction.
    #[inline]
    pub fn reduce_u128(&self, x: u128) -> u64 {
        let x_lo = x as u64;
        let x_hi = (x >> 64) as u64;
        let carry = ((x_lo as u128 * self.ratio_lo as u128) >> 64) as u64;
        let mid = x_lo as u128 * self.ratio_hi as u128;
        let t = (mid as u64 as u128) + carry as u128;
        let tmp3 = ((mid >> 64) as u64).wrapping_add((t >> 64) as u64);
        let mid2 = x_hi as u128 * self.ratio_lo as u128;
        let t2 = (mid2 as u64 as u128) + (t as u64) as u128;
        let carry2 = ((mid2 >> 64) as u64).wrapping_add((t2 >> 64) as u64);
        let q_hat = x_hi
            .wrapping_mul(self.ratio_hi)
            .wrapping_add(tmp3)
            .wrapping_add(carry2);
        let r = x_lo.wrapping_sub(q_hat.wrapping_mul(self.q));
        debug_assert!(r < self.two_q, "Barrett estimate off by more than one");
        if r >= self.q {
            r - self.q
        } else {
            r
        }
    }

    /// Modular multiplication in `[0, q)` without division. Same
    /// result as [`mul_mod`] for canonical inputs.
    #[inline]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q);
        self.reduce_u128(a as u128 * b as u128)
    }

    /// Precomputes the Shoup companion `floor(w * 2^64 / q)` for a
    /// fixed multiplicand `w < q` (twiddle factors, scalar residues).
    #[inline]
    pub fn shoup(&self, w: u64) -> u64 {
        debug_assert!(w < self.q);
        (((w as u128) << 64) / self.q as u128) as u64
    }

    /// Shoup multiplication `a * w mod q` with lazy output in
    /// `[0, 2q)`. `w_shoup` must be `self.shoup(w)`; `a` may be any
    /// `u64` (in particular a `[0, 4q)` lazy representative).
    #[inline]
    pub fn mul_shoup_lazy(&self, a: u64, w: u64, w_shoup: u64) -> u64 {
        debug_assert!(w < self.q);
        let q_est = ((a as u128 * w_shoup as u128) >> 64) as u64;
        let r = a.wrapping_mul(w).wrapping_sub(q_est.wrapping_mul(self.q));
        debug_assert!(r < self.two_q, "Shoup product escaped [0, 2q)");
        r
    }

    /// Shoup multiplication normalized to `[0, q)`. For canonical `a`
    /// this equals `mul_mod(a, w, q)` exactly.
    #[inline]
    pub fn mul_shoup(&self, a: u64, w: u64, w_shoup: u64) -> u64 {
        let r = self.mul_shoup_lazy(a, w, w_shoup);
        if r >= self.q {
            r - self.q
        } else {
            r
        }
    }

    /// Folds a `[0, 4q)` lazy representative down to `[0, 2q)`.
    #[inline]
    pub fn reduce_once(&self, a: u64) -> u64 {
        debug_assert!(a < 2 * self.two_q, "lazy representative escaped [0, 4q)");
        if a >= self.two_q {
            a - self.two_q
        } else {
            a
        }
    }

    /// Normalizes a `[0, 4q)` lazy representative to canonical
    /// `[0, q)` form.
    #[inline]
    pub fn normalize(&self, a: u64) -> u64 {
        let a = self.reduce_once(a);
        if a >= self.q {
            a - self.q
        } else {
            a
        }
    }
}

/// Finds `count` distinct primes of roughly `bits` bits with
/// `p ≡ 1 (mod 2n)` (NTT-friendly for ring dimension `n`), scanning
/// downward from `2^bits`.
///
/// # Panics
///
/// Panics if not enough primes exist above `2^(bits-1)` (never happens
/// for the parameter ranges used here) or if `bits > 62`.
pub fn ntt_primes(bits: u32, count: usize, n: usize) -> Vec<u64> {
    assert!(bits <= 62, "primes above 62 bits unsupported");
    assert!(n.is_power_of_two(), "ring dimension must be a power of two");
    let step = 2 * n as u64;
    let mut candidate = (1u64 << bits) - ((1u64 << bits) % step) + 1;
    let floor = 1u64 << (bits - 1);
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        if candidate <= floor {
            panic!("ran out of {bits}-bit NTT primes for n={n}");
        }
        if is_prime(candidate) {
            out.push(candidate);
        }
        candidate -= step;
    }
    out
}

/// Like [`ntt_primes`], but skips any candidate already present in
/// `exclude`. Used to generate the hybrid key-switch special primes,
/// which must be disjoint from the ciphertext modulus chain.
///
/// # Panics
///
/// Same conditions as [`ntt_primes`].
pub fn ntt_primes_excluding(bits: u32, count: usize, n: usize, exclude: &[u64]) -> Vec<u64> {
    assert!(bits <= 62, "primes above 62 bits unsupported");
    assert!(n.is_power_of_two(), "ring dimension must be a power of two");
    let step = 2 * n as u64;
    let mut candidate = (1u64 << bits) - ((1u64 << bits) % step) + 1;
    let floor = 1u64 << (bits - 1);
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        if candidate <= floor {
            panic!("ran out of {bits}-bit NTT primes for n={n}");
        }
        if !exclude.contains(&candidate) && is_prime(candidate) {
            out.push(candidate);
        }
        candidate -= step;
    }
    out
}

/// Finds a primitive `2n`-th root of unity modulo prime `q`
/// (requires `q ≡ 1 mod 2n`).
///
/// # Panics
///
/// Panics if no such root exists (i.e. `q` is not NTT-friendly).
pub fn primitive_root_2n(q: u64, n: usize) -> u64 {
    let m = 2 * n as u64;
    assert!((q - 1).is_multiple_of(m), "q not ≡ 1 mod 2n");
    // Find a generator-ish element by trying small candidates: g is a
    // primitive 2n-th root iff g^(n) == -1 where g = c^((q-1)/2n).
    for c in 2u64.. {
        let g = pow_mod(c, (q - 1) / m, q);
        if pow_mod(g, n as u64, q) == q - 1 {
            return g;
        }
        if c > 10_000 {
            break;
        }
    }
    panic!("no primitive 2n-th root found for q={q}, n={n}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let q = 97;
        assert_eq!(add_mod(90, 10, q), 3);
        assert_eq!(sub_mod(5, 10, q), 92);
        assert_eq!(mul_mod(10, 10, q), 3);
        assert_eq!(pow_mod(2, 10, q), 1024 % 97);
    }

    #[test]
    fn inverse_is_inverse() {
        let q = 0x1000000000000001u64; // not prime; use a real one
        let q = if is_prime(q) { q } else { 1152921504606846883 };
        assert!(is_prime(q));
        for a in [2u64, 12345, 99999999] {
            let inv = inv_mod(a, q);
            assert_eq!(mul_mod(a, inv, q), 1);
        }
    }

    #[test]
    fn primality_known_values() {
        assert!(is_prime(2));
        assert!(is_prime(3));
        assert!(is_prime(1_000_000_007));
        assert!(is_prime(0xFFFF_FFFF_FFFF_FFC5)); // largest u64 prime
        assert!(!is_prime(1));
        assert!(!is_prime(561)); // Carmichael
        assert!(!is_prime(1_000_000_007u64 * 3));
    }

    #[test]
    fn ntt_primes_are_valid() {
        let primes = ntt_primes(40, 4, 4096);
        assert_eq!(primes.len(), 4);
        for &p in &primes {
            assert!(is_prime(p));
            assert_eq!((p - 1) % 8192, 0);
            assert!(p < (1u64 << 40) && p > (1u64 << 39));
        }
        // Distinct.
        let mut sorted = primes.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    fn barrett_matches_u128_division() {
        for bits in [40u32, 50, 60, 62] {
            let q = ntt_primes(bits, 1, 256)[0];
            let pa = PrimeArith::new(q);
            let mut x = 0x9E3779B97F4A7C15u64;
            for _ in 0..2000 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let a = x % q;
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let b = x % q;
                assert_eq!(pa.mul(a, b), mul_mod(a, b, q), "a={a} b={b} q={q}");
                assert_eq!(pa.add(a, b), add_mod(a, b, q));
                assert_eq!(pa.sub(a, b), sub_mod(a, b, q));
            }
            // Edge operands.
            for &a in &[0u64, 1, q - 1] {
                for &b in &[0u64, 1, q - 1] {
                    assert_eq!(pa.mul(a, b), mul_mod(a, b, q));
                }
            }
        }
    }

    #[test]
    fn barrett_exact_over_full_u128_range() {
        // The lazy key-switch accumulator feeds reduce_u128 sums of up
        // to ~2^126; pin exactness across the whole input range.
        for bits in [40u32, 50, 60, 62] {
            let q = ntt_primes(bits, 1, 256)[0];
            let pa = PrimeArith::new(q);
            let mut x = 0x243F6A8885A308D3u64;
            for i in 0..4000u32 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let lo = x;
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                // Sweep the high word across all magnitudes.
                let hi = x >> (i % 64);
                let v = (hi as u128) << 64 | lo as u128;
                assert_eq!(pa.reduce_u128(v) as u128, v % q as u128, "q={q} v={v}");
            }
            for &v in &[
                0u128,
                1,
                q as u128 - 1,
                q as u128,
                (q as u128) * (q as u128),
                u128::MAX,
                u128::MAX - 1,
                (q as u128) << 64,
                ((q as u128) << 64) - 1,
            ] {
                assert_eq!(pa.reduce_u128(v) as u128, v % q as u128, "q={q} v={v}");
            }
        }
    }

    #[test]
    fn shoup_matches_mul_mod_and_stays_lazy() {
        let q = ntt_primes(60, 1, 256)[0];
        let pa = PrimeArith::new(q);
        let mut x = 7u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(99);
            let w = x % q;
            let ws = pa.shoup(w);
            x = x.wrapping_mul(6364136223846793005).wrapping_add(99);
            // Lazy inputs up to 4q must still reduce correctly.
            let a_lazy = x % (4 * q);
            let lazy = pa.mul_shoup_lazy(a_lazy, w, ws);
            assert!(lazy < 2 * q);
            assert_eq!(
                pa.normalize(lazy),
                mul_mod(a_lazy % q, w, q),
                "w={w} a={a_lazy}"
            );
            let a = a_lazy % q;
            assert_eq!(pa.mul_shoup(a, w, ws), mul_mod(a, w, q));
        }
    }

    #[test]
    fn normalize_covers_every_band() {
        let q = 97u64;
        let pa = PrimeArith::new(q);
        for r in 0..4 * q {
            assert_eq!(pa.normalize(r), r % q);
        }
        for r in 0..2 * q {
            assert_eq!(pa.reduce_once(r + 2 * q), r);
            assert_eq!(pa.reduce_once(r), r);
        }
    }

    #[test]
    #[should_panic(expected = "below 2^62")]
    fn prime_arith_rejects_oversized_modulus() {
        PrimeArith::new(1u64 << 62 | 1);
    }

    #[test]
    fn primitive_root_properties() {
        let q = ntt_primes(40, 1, 1024)[0];
        let psi = primitive_root_2n(q, 1024);
        assert_eq!(pow_mod(psi, 1024, q), q - 1); // psi^n = -1
        assert_eq!(pow_mod(psi, 2048, q), 1); // psi^2n = 1
    }
}
