//! 64-bit prime-field arithmetic and NTT-friendly prime generation.

/// Modular addition in `[0, q)`.
#[inline]
pub fn add_mod(a: u64, b: u64, q: u64) -> u64 {
    let s = a + b; // q < 2^62 so no overflow
    if s >= q {
        s - q
    } else {
        s
    }
}

/// Modular subtraction in `[0, q)`.
#[inline]
pub fn sub_mod(a: u64, b: u64, q: u64) -> u64 {
    if a >= b {
        a - b
    } else {
        a + q - b
    }
}

/// Modular multiplication via 128-bit intermediate.
#[inline]
pub fn mul_mod(a: u64, b: u64, q: u64) -> u64 {
    ((a as u128 * b as u128) % q as u128) as u64
}

/// Modular exponentiation.
pub fn pow_mod(mut base: u64, mut exp: u64, q: u64) -> u64 {
    let mut acc = 1u64;
    base %= q;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, q);
        }
        base = mul_mod(base, base, q);
        exp >>= 1;
    }
    acc
}

/// Modular inverse of `a` modulo prime `q` (Fermat).
///
/// # Panics
///
/// Panics if `a == 0`.
pub fn inv_mod(a: u64, q: u64) -> u64 {
    assert!(!a.is_multiple_of(q), "inverse of zero");
    pow_mod(a, q - 2, q)
}

/// Deterministic Miller-Rabin primality test for `u64`.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &p in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut r = 0;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'witness: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Finds `count` distinct primes of roughly `bits` bits with
/// `p ≡ 1 (mod 2n)` (NTT-friendly for ring dimension `n`), scanning
/// downward from `2^bits`.
///
/// # Panics
///
/// Panics if not enough primes exist above `2^(bits-1)` (never happens
/// for the parameter ranges used here) or if `bits > 62`.
pub fn ntt_primes(bits: u32, count: usize, n: usize) -> Vec<u64> {
    assert!(bits <= 62, "primes above 62 bits unsupported");
    assert!(n.is_power_of_two(), "ring dimension must be a power of two");
    let step = 2 * n as u64;
    let mut candidate = (1u64 << bits) - ((1u64 << bits) % step) + 1;
    let floor = 1u64 << (bits - 1);
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        if candidate <= floor {
            panic!("ran out of {bits}-bit NTT primes for n={n}");
        }
        if is_prime(candidate) {
            out.push(candidate);
        }
        candidate -= step;
    }
    out
}

/// Finds a primitive `2n`-th root of unity modulo prime `q`
/// (requires `q ≡ 1 mod 2n`).
///
/// # Panics
///
/// Panics if no such root exists (i.e. `q` is not NTT-friendly).
pub fn primitive_root_2n(q: u64, n: usize) -> u64 {
    let m = 2 * n as u64;
    assert!((q - 1).is_multiple_of(m), "q not ≡ 1 mod 2n");
    // Find a generator-ish element by trying small candidates: g is a
    // primitive 2n-th root iff g^(n) == -1 where g = c^((q-1)/2n).
    for c in 2u64.. {
        let g = pow_mod(c, (q - 1) / m, q);
        if pow_mod(g, n as u64, q) == q - 1 {
            return g;
        }
        if c > 10_000 {
            break;
        }
    }
    panic!("no primitive 2n-th root found for q={q}, n={n}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let q = 97;
        assert_eq!(add_mod(90, 10, q), 3);
        assert_eq!(sub_mod(5, 10, q), 92);
        assert_eq!(mul_mod(10, 10, q), 3);
        assert_eq!(pow_mod(2, 10, q), 1024 % 97);
    }

    #[test]
    fn inverse_is_inverse() {
        let q = 0x1000000000000001u64; // not prime; use a real one
        let q = if is_prime(q) { q } else { 1152921504606846883 };
        assert!(is_prime(q));
        for a in [2u64, 12345, 99999999] {
            let inv = inv_mod(a, q);
            assert_eq!(mul_mod(a, inv, q), 1);
        }
    }

    #[test]
    fn primality_known_values() {
        assert!(is_prime(2));
        assert!(is_prime(3));
        assert!(is_prime(1_000_000_007));
        assert!(is_prime(0xFFFF_FFFF_FFFF_FFC5)); // largest u64 prime
        assert!(!is_prime(1));
        assert!(!is_prime(561)); // Carmichael
        assert!(!is_prime(1_000_000_007u64 * 3));
    }

    #[test]
    fn ntt_primes_are_valid() {
        let primes = ntt_primes(40, 4, 4096);
        assert_eq!(primes.len(), 4);
        for &p in &primes {
            assert!(is_prime(p));
            assert_eq!((p - 1) % 8192, 0);
            assert!(p < (1u64 << 40) && p > (1u64 << 39));
        }
        // Distinct.
        let mut sorted = primes.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    fn primitive_root_properties() {
        let q = ntt_primes(40, 1, 1024)[0];
        let psi = primitive_root_2n(q, 1024);
        assert_eq!(pow_mod(psi, 1024, q), q - 1); // psi^n = -1
        assert_eq!(pow_mod(psi, 2048, q), 1); // psi^2n = 1
    }
}
