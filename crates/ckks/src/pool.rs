//! Thread-local buffer pool backing [`crate::RnsPoly`] storage.
//!
//! Every `RnsPoly` owns one flat `Vec<u64>` (limb-major residues).
//! Acquisition goes through this pool: dropping a poly returns its
//! buffer to the current thread's free list, and the next acquisition
//! reuses it instead of hitting the allocator. After a warm-up
//! iteration, steady-state ciphertext pipelines (`mul` → `relinearize`
//! → `rescale`, rotations, plaintext ops) run with **zero** per-op
//! heap allocations — asserted by `pool_stats` tests.
//!
//! # Contract
//!
//! `acquire` returns a buffer of the requested length with
//! **unspecified contents** — callers must overwrite every word (or
//! use `acquire_zeroed`). In debug builds, recycled buffers are
//! poisoned with a sentinel pattern so any path that forgets this
//! shows up as a deterministic mismatch in the pooled-vs-fresh
//! proptests rather than flaky garbage.
//!
//! The pool is strictly thread-local: no locks, and buffers released
//! on one thread serve later acquisitions on that same thread (worker
//! threads in `BatchRunner` each warm their own pool). At most
//! [`MAX_POOLED`] buffers are retained per thread; excess buffers are
//! simply dropped.

use std::cell::RefCell;

/// Maximum free buffers retained per thread; beyond this, released
/// buffers are dropped. Steady-state pipelines keep well under this.
pub const MAX_POOLED: usize = 32;

/// Debug-build poison word written into recycled buffers so code that
/// reads pooled memory before initializing it fails deterministically.
const POISON: u64 = 0xDEAD_BEEF_DEAD_BEEF;

/// Counters describing pool traffic on the current thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers created fresh from the allocator (pool empty or
    /// disabled, or no pooled buffer had enough capacity).
    pub fresh_allocs: u64,
    /// Acquisitions served from the free list without allocating.
    pub reuses: u64,
    /// Buffers returned to the free list on release.
    pub released: u64,
    /// Buffers dropped on release because the free list was full or
    /// the pool was disabled.
    pub dropped: u64,
}

struct PoolInner {
    buffers: Vec<Vec<u64>>,
    /// Wide (128-bit) scratch buffers for the lazy key-switch
    /// accumulators; pooled separately because element width differs.
    wide: Vec<Vec<u128>>,
    stats: PoolStats,
    enabled: bool,
}

thread_local! {
    static POOL: RefCell<PoolInner> = RefCell::new(PoolInner {
        buffers: Vec::new(),
        wide: Vec::new(),
        stats: PoolStats::default(),
        enabled: true,
    });
}

/// Acquires a buffer of exactly `len` words with unspecified contents.
/// Callers must overwrite every word before reading.
pub(crate) fn acquire(len: usize) -> Vec<u64> {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if !p.enabled {
            p.stats.fresh_allocs += 1;
            return vec![0u64; len];
        }
        // Best fit: smallest pooled buffer with enough capacity, so
        // large buffers stay available for large requests.
        let mut best: Option<usize> = None;
        for (i, b) in p.buffers.iter().enumerate() {
            if b.capacity() >= len {
                match best {
                    Some(j) if p.buffers[j].capacity() <= b.capacity() => {}
                    _ => best = Some(i),
                }
            }
        }
        match best {
            Some(i) => {
                let mut b = p.buffers.swap_remove(i);
                p.stats.reuses += 1;
                // Capacity suffices, so neither branch reallocates;
                // resize only zero-fills the extension region.
                if b.len() >= len {
                    b.truncate(len);
                } else {
                    b.resize(len, 0);
                }
                b
            }
            None => {
                p.stats.fresh_allocs += 1;
                vec![0u64; len]
            }
        }
    })
}

/// Acquires a buffer of `len` words, zero-filled.
pub(crate) fn acquire_zeroed(len: usize) -> Vec<u64> {
    let mut b = acquire(len);
    b.fill(0);
    b
}

/// Returns a buffer to the current thread's free list (or drops it if
/// the list is full or the pool is disabled).
pub(crate) fn release(mut buf: Vec<u64>) {
    if buf.capacity() == 0 {
        return;
    }
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if !p.enabled || p.buffers.len() >= MAX_POOLED {
            p.stats.dropped += 1;
            return;
        }
        if cfg!(debug_assertions) {
            buf.fill(POISON);
        }
        p.stats.released += 1;
        p.buffers.push(buf);
    });
}

/// Acquires a zero-filled `u128` scratch buffer of `len` elements
/// (lazy product accumulators in the key switch). Same reuse contract
/// and counters as `acquire`.
pub(crate) fn acquire_wide_zeroed(len: usize) -> Vec<u128> {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if !p.enabled {
            p.stats.fresh_allocs += 1;
            return vec![0u128; len];
        }
        let mut best: Option<usize> = None;
        for (i, b) in p.wide.iter().enumerate() {
            if b.capacity() >= len {
                match best {
                    Some(j) if p.wide[j].capacity() <= b.capacity() => {}
                    _ => best = Some(i),
                }
            }
        }
        match best {
            Some(i) => {
                let mut b = p.wide.swap_remove(i);
                p.stats.reuses += 1;
                b.clear();
                b.resize(len, 0);
                b
            }
            None => {
                p.stats.fresh_allocs += 1;
                vec![0u128; len]
            }
        }
    })
}

/// Returns a wide scratch buffer to the current thread's free list.
pub(crate) fn release_wide(buf: Vec<u128>) {
    if buf.capacity() == 0 {
        return;
    }
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if !p.enabled || p.wide.len() >= MAX_POOLED {
            p.stats.dropped += 1;
            return;
        }
        p.stats.released += 1;
        p.wide.push(buf);
    });
}

/// Snapshot of the current thread's pool counters.
pub fn stats() -> PoolStats {
    POOL.with(|p| p.borrow().stats)
}

/// Resets the current thread's pool counters to zero (the free list
/// is left intact).
pub fn reset_stats() {
    POOL.with(|p| p.borrow_mut().stats = PoolStats::default());
}

/// Drops every pooled buffer on the current thread, returning memory
/// to the allocator.
pub fn trim() {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.buffers.clear();
        p.wide.clear();
    });
}

/// Runs `f` with pooling disabled on the current thread: every
/// acquisition allocates fresh zeroed memory and every release drops.
/// Used by tests to pin pooled execution bit-identical to fresh
/// allocation.
pub fn with_pool_disabled<T>(f: impl FnOnce() -> T) -> T {
    struct Guard(bool);
    impl Drop for Guard {
        fn drop(&mut self) {
            POOL.with(|p| p.borrow_mut().enabled = self.0);
        }
    }
    let prev = POOL.with(|p| {
        let mut p = p.borrow_mut();
        let prev = p.enabled;
        p.enabled = false;
        prev
    });
    let _guard = Guard(prev);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_reuses_capacity() {
        trim();
        reset_stats();
        let b = acquire(64);
        assert_eq!(b.len(), 64);
        let ptr = b.as_ptr();
        release(b);
        let b2 = acquire(64);
        assert_eq!(b2.as_ptr(), ptr, "expected buffer reuse");
        let s = stats();
        assert_eq!(s.reuses, 1);
        assert_eq!(s.fresh_allocs, 1);
        release(b2);
    }

    #[test]
    fn acquire_shrinks_and_grows_within_capacity() {
        trim();
        let b = acquire(128);
        release(b);
        let small = acquire(16);
        assert_eq!(small.len(), 16);
        release(small);
        let grown = acquire(100);
        assert_eq!(grown.len(), 100);
        release(grown);
    }

    #[test]
    fn disabled_pool_always_allocates_zeroed() {
        trim();
        with_pool_disabled(|| {
            reset_stats();
            let b = acquire(32);
            assert!(b.iter().all(|&x| x == 0));
            release(b);
            let b2 = acquire(32);
            assert!(b2.iter().all(|&x| x == 0));
            assert_eq!(stats().fresh_allocs, 2);
            assert_eq!(stats().reuses, 0);
        });
    }

    #[test]
    fn zeroed_acquire_is_zeroed_even_after_reuse() {
        trim();
        let mut b = acquire(32);
        b.fill(7);
        release(b);
        let z = acquire_zeroed(32);
        assert!(z.iter().all(|&x| x == 0));
        release(z);
    }

    #[test]
    fn wide_pool_reuses_and_zeroes() {
        trim();
        reset_stats();
        let mut b = acquire_wide_zeroed(16);
        b.fill(u128::MAX);
        let ptr = b.as_ptr();
        release_wide(b);
        let b2 = acquire_wide_zeroed(16);
        assert_eq!(b2.as_ptr(), ptr, "expected wide buffer reuse");
        assert!(b2.iter().all(|&x| x == 0), "wide acquire must zero");
        let s = stats();
        assert_eq!(s.reuses, 1);
        assert_eq!(s.fresh_allocs, 1);
        release_wide(b2);
        trim();
    }

    #[test]
    fn free_list_is_bounded() {
        trim();
        reset_stats();
        let bufs: Vec<_> = (0..MAX_POOLED + 4).map(|_| acquire(8)).collect();
        for b in bufs {
            release(b);
        }
        assert_eq!(stats().dropped, 4);
        assert_eq!(stats().released, MAX_POOLED as u64);
        trim();
    }
}
