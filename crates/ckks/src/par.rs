//! Intra-op limb-parallel worker pool.
//!
//! CKKS primitives decompose into independent per-limb work: NTT
//! transforms, hybrid key-switch digit products and the mod-down
//! correction all touch one RNS limb at a time with no cross-limb
//! data flow. This module fans those limbs out across a small pool of
//! persistent worker threads.
//!
//! Design rules (see docs/ARCHITECTURE.md, *Memory & kernels*):
//!
//! - **One thread budget.** [`max_intra_workers`] reads the same
//!   `SMARTPAF_THREADS` knob as `BatchRunner`; when the runner shards a
//!   batch across `W` workers it hands each shard `budget / W` intra-op
//!   threads via [`with_thread_budget`], so the two layers share cores
//!   instead of oversubscribing them.
//! - **Bit-identical.** Tasks are indexed and side-effect-free on
//!   shared state: each task owns a disjoint slice (or returns a value
//!   into its own slot), and no arithmetic is reassociated. The
//!   parallel path produces byte-identical output to the sequential
//!   loop and is pinned so by tests.
//! - **Gated off at 1 CPU.** With a budget of one (the default on a
//!   single-core container) every entry point degenerates to the plain
//!   sequential loop with no pool, no channels, no atomics.
//! - **Non-reentrant.** A worker that hits a nested parallel region
//!   runs it inline; only the outermost call fans out.
//!
//! Workers keep their own thread-local buffer pools;
//! [`aggregated_pool_stats`] sums them with the caller's so the
//! zero-steady-state-allocation invariant stays observable.

use crate::pool;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};

/// One parallel region: a lifetime-erased task closure plus the claim
/// and completion counters. The raw pointer is only dereferenced while
/// the owning [`run`] call is still on the stack — `run` blocks until
/// `done == count`, so every dereference happens while the closure is
/// alive.
struct RunCtx {
    task: *const (dyn Fn(usize) + Sync),
    count: usize,
    next: AtomicUsize,
    done: AtomicUsize,
    panicked: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

// SAFETY: the raw task pointer is only dereferenced inside
// `work_loop`, which only runs while the originating `run` call is
// blocked waiting for `done == count`; the pointee (`&F` borrowed by
// `run`) therefore outlives every dereference. All other fields are
// plain sync primitives.
unsafe impl Send for RunCtx {}
unsafe impl Sync for RunCtx {}

enum Job {
    Run(Arc<RunCtx>),
    /// Report this worker's thread-local pool stats.
    Stats(mpsc::Sender<pool::PoolStats>),
    /// Reset this worker's thread-local pool stats.
    ResetStats(mpsc::Sender<()>),
}

static WORKERS: OnceLock<Mutex<Vec<mpsc::Sender<Job>>>> = OnceLock::new();

thread_local! {
    /// Set for the lifetime of a pool worker thread: nested parallel
    /// regions run inline instead of re-entering the pool.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Scoped override of the intra-op thread budget (`None` = use the
    /// process default).
    static BUDGET: Cell<Option<usize>> = const { Cell::new(None) };
}

fn default_budget() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("SMARTPAF_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&t| t > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            })
    })
}

/// The intra-op thread budget for the current thread: the scoped
/// [`with_thread_budget`] override if one is active, else
/// `SMARTPAF_THREADS`, else `available_parallelism()`. A budget of 1
/// disables intra-op parallelism entirely.
pub fn max_intra_workers() -> usize {
    BUDGET.with(|b| b.get()).unwrap_or_else(default_budget)
}

/// Runs `f` with the intra-op thread budget capped at `n` on this
/// thread (restored on exit, including on panic). `BatchRunner` uses
/// this to split one `SMARTPAF_THREADS` budget between its shard
/// workers and the per-limb kernels they call.
pub fn with_thread_budget<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            BUDGET.with(|b| b.set(self.0));
        }
    }
    let prev = BUDGET.with(|b| b.replace(Some(n.max(1))));
    let _restore = Restore(prev);
    f()
}

fn work_loop(ctx: &RunCtx) {
    loop {
        let i = ctx.next.fetch_add(1, Ordering::Relaxed);
        if i >= ctx.count {
            break;
        }
        // SAFETY: `run` is still blocked on `done == count`, so the
        // closure behind the pointer is alive (see RunCtx).
        let task = unsafe { &*ctx.task };
        if catch_unwind(AssertUnwindSafe(|| task(i))).is_err() {
            ctx.panicked.store(true, Ordering::Release);
        }
        let finished = ctx.done.fetch_add(1, Ordering::AcqRel) + 1;
        if finished == ctx.count {
            let _guard = ctx.lock.lock().unwrap_or_else(|e| e.into_inner());
            ctx.cv.notify_all();
        }
    }
}

fn worker_main(rx: mpsc::Receiver<Job>) {
    IN_WORKER.with(|f| f.set(true));
    while let Ok(job) = rx.recv() {
        match job {
            Job::Run(ctx) => work_loop(&ctx),
            Job::Stats(tx) => {
                let _ = tx.send(pool::stats());
            }
            Job::ResetStats(tx) => {
                pool::reset_stats();
                let _ = tx.send(());
            }
        }
    }
}

/// Ensures at least `want` workers exist and returns senders for all
/// of them.
fn workers(want: usize) -> Vec<mpsc::Sender<Job>> {
    let registry = WORKERS.get_or_init(|| Mutex::new(Vec::new()));
    let mut guard = registry.lock().unwrap_or_else(|e| e.into_inner());
    while guard.len() < want {
        let (tx, rx) = mpsc::channel();
        let id = guard.len();
        std::thread::Builder::new()
            .name(format!("smartpaf-intra-{id}"))
            .spawn(move || worker_main(rx))
            .expect("spawn intra-op worker");
        guard.push(tx);
    }
    guard.clone()
}

/// Runs `f(0), f(1), …, f(count - 1)`, fanning the indices out across
/// the worker pool when the current thread budget allows. The calling
/// thread participates, so progress never depends on pool
/// availability. Returns only after every index has run.
///
/// # Panics
///
/// Panics if any task panicked (the panic is reported once, from the
/// caller).
pub fn run<F: Fn(usize) + Sync>(count: usize, f: F) {
    let budget = max_intra_workers();
    if count <= 1 || budget <= 1 || IN_WORKER.with(|w| w.get()) {
        for i in 0..count {
            f(i);
        }
        return;
    }
    let helpers = (budget - 1).min(count - 1);
    let task_ref: &(dyn Fn(usize) + Sync) = &f;
    // SAFETY: lifetime erasure only — the pointer is dereferenced
    // exclusively while this call is blocked on `done == count`, i.e.
    // while `f` is alive (see RunCtx).
    let task: *const (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(task_ref) };
    let ctx = Arc::new(RunCtx {
        task,
        count,
        next: AtomicUsize::new(0),
        done: AtomicUsize::new(0),
        panicked: AtomicBool::new(false),
        lock: Mutex::new(()),
        cv: Condvar::new(),
    });
    for tx in workers(helpers).into_iter().take(helpers) {
        // A closed channel just means that worker is gone; the caller
        // still drains the index range itself.
        let _ = tx.send(Job::Run(Arc::clone(&ctx)));
    }
    work_loop(&ctx);
    let mut guard = ctx.lock.lock().unwrap_or_else(|e| e.into_inner());
    while ctx.done.load(Ordering::Acquire) < count {
        guard = ctx.cv.wait(guard).unwrap_or_else(|e| e.into_inner());
    }
    drop(guard);
    if ctx.panicked.load(Ordering::Acquire) {
        panic!("intra-op parallel task panicked");
    }
}

/// Splits `data` into consecutive `chunk`-sized slices and runs
/// `f(i, chunk_i)` for each, in parallel when the budget allows. This
/// is the limb-loop workhorse: `data` is a flat limb-major buffer and
/// `chunk` the ring dimension.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `chunk`, or if a task
/// panics.
pub fn for_each_chunk_mut<F: Fn(usize, &mut [u64]) + Sync>(data: &mut [u64], chunk: usize, f: F) {
    assert_eq!(data.len() % chunk, 0, "buffer not a whole number of chunks");
    let count = data.len() / chunk;
    let base = data.as_mut_ptr() as usize;
    run(count, |i| {
        // SAFETY: tasks receive distinct indices, so the chunks are
        // disjoint; `data` is mutably borrowed for the whole `run`
        // call, which does not return until all tasks finish.
        let limb =
            unsafe { std::slice::from_raw_parts_mut((base as *mut u64).add(i * chunk), chunk) };
        f(i, limb);
    });
}

/// Parallel map: returns `[f(0), f(1), …, f(count - 1)]` in index
/// order. Used for coarse-grained fan-out such as rotation taps, where
/// each task produces an owned value.
pub fn map<T: Send, F: Fn(usize) -> T + Sync>(count: usize, f: F) -> Vec<T> {
    let budget = max_intra_workers();
    if count <= 1 || budget <= 1 || IN_WORKER.with(|w| w.get()) {
        return (0..count).map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    run(count, |i| {
        let v = f(i);
        *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("parallel map slot filled")
        })
        .collect()
}

/// Buffer-pool stats aggregated across the calling thread and every
/// intra-op worker spawned so far. The pools are thread-local, so the
/// caller's own [`pool::stats`] misses allocations made by workers;
/// this is the view the zero-allocation tests should assert on when a
/// thread budget > 1 is active.
pub fn aggregated_pool_stats() -> pool::PoolStats {
    let mut total = pool::stats();
    let registry = match WORKERS.get() {
        Some(r) => r,
        None => return total,
    };
    let senders = registry.lock().unwrap_or_else(|e| e.into_inner()).clone();
    for tx in senders {
        let (reply_tx, reply_rx) = mpsc::channel();
        if tx.send(Job::Stats(reply_tx)).is_err() {
            continue;
        }
        if let Ok(s) = reply_rx.recv() {
            total.fresh_allocs += s.fresh_allocs;
            total.reuses += s.reuses;
            total.released += s.released;
            total.dropped += s.dropped;
        }
    }
    total
}

/// Resets pool stats on the calling thread and every intra-op worker.
/// Companion to [`aggregated_pool_stats`].
pub fn reset_aggregated_pool_stats() {
    pool::reset_stats();
    let registry = match WORKERS.get() {
        Some(r) => r,
        None => return,
    };
    let senders = registry.lock().unwrap_or_else(|e| e.into_inner()).clone();
    for tx in senders {
        let (reply_tx, reply_rx) = mpsc::channel();
        if tx.send(Job::ResetStats(reply_tx)).is_err() {
            continue;
        }
        let _ = reply_rx.recv();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn sequential_when_budget_is_one() {
        with_thread_budget(1, || {
            let hits = AtomicUsize::new(0);
            run(8, |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 8);
        });
    }

    #[test]
    fn parallel_run_covers_every_index_exactly_once() {
        with_thread_budget(4, || {
            let mask = AtomicU64::new(0);
            run(37, |i| {
                let bit = 1u64 << i;
                let prev = mask.fetch_or(bit, Ordering::Relaxed);
                assert_eq!(prev & bit, 0, "index {i} ran twice");
            });
            assert_eq!(mask.load(Ordering::Relaxed), (1u64 << 37) - 1);
        });
    }

    #[test]
    fn chunked_writes_land_in_the_right_chunks() {
        for budget in [1, 2, 3, 8] {
            with_thread_budget(budget, || {
                let mut data = vec![0u64; 6 * 16];
                for_each_chunk_mut(&mut data, 16, |i, chunk| {
                    for (j, v) in chunk.iter_mut().enumerate() {
                        *v = (i * 1000 + j) as u64;
                    }
                });
                for i in 0..6 {
                    for j in 0..16 {
                        assert_eq!(data[i * 16 + j], (i * 1000 + j) as u64);
                    }
                }
            });
        }
    }

    #[test]
    fn map_preserves_index_order() {
        for budget in [1, 4] {
            with_thread_budget(budget, || {
                let out = map(20, |i| i * i);
                assert_eq!(out, (0..20).map(|i| i * i).collect::<Vec<_>>());
            });
        }
    }

    #[test]
    fn nested_regions_run_inline_and_complete() {
        with_thread_budget(4, || {
            let hits = AtomicUsize::new(0);
            run(4, |_| {
                run(4, |_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
            assert_eq!(hits.load(Ordering::Relaxed), 16);
        });
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let result = std::panic::catch_unwind(|| {
            with_thread_budget(4, || {
                run(8, |i| {
                    if i == 5 {
                        panic!("boom");
                    }
                });
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn budget_override_restores_on_exit() {
        let outer = max_intra_workers();
        with_thread_budget(7, || {
            assert_eq!(max_intra_workers(), 7);
            with_thread_budget(2, || assert_eq!(max_intra_workers(), 2));
            assert_eq!(max_intra_workers(), 7);
        });
        assert_eq!(max_intra_workers(), outer);
    }
}
