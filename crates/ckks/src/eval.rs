//! Leveled evaluation of composite PAFs on ciphertexts.
//!
//! Follows the paper's depth-optimal schedule (App. C, Fig. 10):
//! per stage, build the even power ladder `x², x⁴, x⁸, …` by repeated
//! squaring and assemble each odd term `a_k·x^{2k+1}` as
//! `(a_k·x) · Π x^{2^{j+1}}` over the set bits `j` of `k`. Total level
//! consumption per stage is `ceil(log2(deg+1))`, matching Tab. 2.

use crate::cipher::{Ciphertext, Evaluator};
use smartpaf_polyfit::{CompositePaf, OddPowerSchedule, Polynomial};

/// Evaluates composite PAFs, PAF-ReLU and PAF-Max on ciphertexts.
#[derive(Debug, Clone)]
pub struct PafEvaluator {
    ev: Evaluator,
}

impl PafEvaluator {
    /// Wraps an [`Evaluator`].
    pub fn new(ev: Evaluator) -> Self {
        PafEvaluator { ev }
    }

    /// The underlying evaluator.
    pub fn evaluator(&self) -> &Evaluator {
        &self.ev
    }

    /// Levels a ReLU evaluation with this PAF will consume (sign depth
    /// plus one for the `x·sign(x)` product). A PAF-Max costs the same
    /// — sign of the difference plus the `(x−y)·sign(x−y)` product —
    /// so this is also the atomic depth of each round of an encrypted
    /// max-pool fold (`smartpaf-heinfer`'s `PafOp::atomic_depth`
    /// delegates here).
    pub fn relu_depth(paf: &CompositePaf) -> usize {
        paf.mult_depth() + 1
    }

    /// Evaluates one odd polynomial stage on a ciphertext.
    ///
    /// # Panics
    ///
    /// Panics if the stage is not an odd function, is constant, or the
    /// ciphertext lacks the required levels.
    pub fn eval_odd_stage(&self, x: &Ciphertext, stage: &Polynomial) -> Ciphertext {
        // The packed coefficients and ladder shape come from the shared
        // evaluation engine, so the plaintext and ciphertext paths
        // execute the same schedule.
        let sched = OddPowerSchedule::new(stage);
        let odd = sched.odd_coeffs();

        // Degree-1 stage: a0 * x, one level.
        if sched.k_max() == 0 {
            return self.ev.mul_const(x, odd[0]);
        }

        // Even power ladder: ladder[j] = x^(2^(j+1)).
        let bits_needed = sched.ladder_bits();
        let mut ladder: Vec<Ciphertext> = Vec::with_capacity(bits_needed as usize);
        let mut x2 = self.ev.square(x);
        self.ev.rescale(&mut x2);
        ladder.push(x2);
        for _ in 1..bits_needed {
            let prev = ladder.last().expect("ladder non-empty");
            let mut next = self.ev.square(prev);
            self.ev.rescale(&mut next);
            ladder.push(next);
        }

        // Assemble terms a_k x^(2k+1).
        let mut terms: Vec<Ciphertext> = Vec::new();
        for (k, &a) in odd.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let mut t = self.ev.mul_const(x, a);
            for (j, rung) in ladder.iter().enumerate() {
                if (k >> j) & 1 == 1 {
                    let mut r = self.ev.mul(&t, rung);
                    self.ev.rescale(&mut r);
                    t = r;
                }
            }
            terms.push(t);
        }

        // Sum at the deepest term's level.
        let min_limbs = terms
            .iter()
            .map(Ciphertext::num_limbs)
            .min()
            .expect("at least one non-zero term");
        let mut acc: Option<Ciphertext> = None;
        for mut t in terms {
            t.drop_to(min_limbs);
            acc = Some(match acc {
                None => t,
                Some(a) => self.ev.add(&a, &t),
            });
        }
        acc.expect("non-empty sum")
    }

    /// Evaluates a full composite PAF (sign approximation) on a
    /// ciphertext.
    pub fn eval_composite(&self, x: &Ciphertext, paf: &CompositePaf) -> Ciphertext {
        let mut acc = x.clone();
        for stage in paf.stages() {
            acc = self.eval_odd_stage(&acc, stage);
        }
        acc
    }

    /// PAF-ReLU: `(x + x·paf(x)) / 2`, computed as
    /// `x·(paf(x)·0.5) + 0.5x` by folding the 1/2 into the final stage
    /// so no extra level is consumed.
    pub fn relu(&self, x: &Ciphertext, paf: &CompositePaf) -> Ciphertext {
        let half_paf = scale_last_stage(paf, 0.5);
        let half_sign = self.eval_composite(x, &half_paf);
        let mut xd = x.clone();
        xd.drop_to(half_sign.num_limbs());
        let mut prod = self.ev.mul(&xd, &half_sign);
        self.ev.rescale(&mut prod);
        let mut half_x = self.ev.mul_const(x, 0.5);
        half_x.drop_to(prod.num_limbs());
        self.ev.add(&prod, &half_x)
    }

    /// PAF-Max: `((x+y) + (x−y)·paf(x−y)) / 2`.
    pub fn max(&self, x: &Ciphertext, y: &Ciphertext, paf: &CompositePaf) -> Ciphertext {
        let d = self.ev.sub(x, y);
        let half_paf = scale_last_stage(paf, 0.5);
        let half_sign = self.eval_composite(&d, &half_paf);
        let mut dd = d.clone();
        dd.drop_to(half_sign.num_limbs());
        let mut prod = self.ev.mul(&dd, &half_sign);
        self.ev.rescale(&mut prod);
        let mut half_sum = self.ev.mul_const(&self.ev.add(x, y), 0.5);
        half_sum.drop_to(prod.num_limbs());
        self.ev.add(&prod, &half_sum)
    }
}

/// Returns a copy of `paf` with the last stage's coefficients scaled.
fn scale_last_stage(paf: &CompositePaf, alpha: f64) -> CompositePaf {
    let mut stages: Vec<Polynomial> = paf.stages().to_vec();
    let last = stages.last_mut().expect("non-empty composite");
    *last = last.scale(alpha);
    CompositePaf::new(stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyChain;
    use crate::params::CkksParams;
    use smartpaf_polyfit::PafForm;
    use smartpaf_tensor::Rng64;

    fn setup(seed: u64) -> (PafEvaluator, Rng64) {
        let ctx = CkksParams::toy().build();
        let mut rng = Rng64::new(seed);
        let keys = KeyChain::generate(&ctx, &mut rng);
        (PafEvaluator::new(Evaluator::new(&keys)), rng)
    }

    fn test_inputs() -> Vec<f64> {
        vec![-0.9, -0.6, -0.3, -0.1, 0.1, 0.25, 0.5, 0.75, 0.95]
    }

    #[test]
    fn single_stage_matches_plaintext() {
        let (pe, mut rng) = setup(11);
        let stage = Polynomial::from_odd(&[1.5, -0.5]); // f1
        let xs = test_inputs();
        let ct = pe.evaluator().encrypt_values(&xs, &mut rng);
        let out_ct = pe.eval_odd_stage(&ct, &stage);
        let out = pe.evaluator().decrypt_values(&out_ct, xs.len());
        for (x, got) in xs.iter().zip(&out) {
            let want = stage.eval(*x);
            assert!((got - want).abs() < 2e-2, "f1({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn degree7_stage_matches_plaintext() {
        let (pe, mut rng) = setup(12);
        let stage = Polynomial::from_odd(&[2.4, -2.63, 1.55, -0.33]);
        let xs = test_inputs();
        let ct = pe.evaluator().encrypt_values(&xs, &mut rng);
        let out_ct = pe.eval_odd_stage(&ct, &stage);
        let out = pe.evaluator().decrypt_values(&out_ct, xs.len());
        for (x, got) in xs.iter().zip(&out) {
            let want = stage.eval(*x);
            assert!((got - want).abs() < 2e-2, "p({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn stage_consumes_expected_levels() {
        let (pe, mut rng) = setup(13);
        let ct = pe.evaluator().encrypt_values(&[0.5], &mut rng);
        let before = ct.level();
        // degree 3 -> 2 levels
        let out = pe.eval_odd_stage(&ct, &Polynomial::from_odd(&[1.5, -0.5]));
        assert_eq!(before - out.level(), 2);
        // degree 5 -> 3 levels
        let out = pe.eval_odd_stage(&ct, &Polynomial::from_odd(&[1.0, -1.0, 0.2]));
        assert_eq!(before - out.level(), 3);
        // degree 7 -> 3 levels
        let out = pe.eval_odd_stage(&ct, &Polynomial::from_odd(&[1.0, -1.0, 0.2, -0.01]));
        assert_eq!(before - out.level(), 3);
    }

    #[test]
    fn composite_f1g2_matches_plaintext() {
        let (pe, mut rng) = setup(14);
        let paf = CompositePaf::from_form(PafForm::F1G2);
        let xs = test_inputs();
        let ct = pe.evaluator().encrypt_values(&xs, &mut rng);
        let before = ct.level();
        let out_ct = pe.eval_composite(&ct, &paf);
        assert_eq!(before - out_ct.level(), paf.mult_depth());
        let out = pe.evaluator().decrypt_values(&out_ct, xs.len());
        for (x, got) in xs.iter().zip(&out) {
            let want = paf.eval(*x);
            assert!((got - want).abs() < 3e-2, "paf({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn relu_f1sq_g1sq_matches_plaintext() {
        let (pe, mut rng) = setup(15);
        let paf = CompositePaf::from_form(PafForm::F1SqG1Sq);
        let xs = test_inputs();
        let ct = pe.evaluator().encrypt_values(&xs, &mut rng);
        let out_ct = pe.relu(&ct, &paf);
        let out = pe.evaluator().decrypt_values(&out_ct, xs.len());
        for (x, got) in xs.iter().zip(&out) {
            let want = paf.relu(*x);
            assert!((got - want).abs() < 3e-2, "relu({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn relu_depth_accounting() {
        let (pe, mut rng) = setup(16);
        let paf = CompositePaf::from_form(PafForm::Alpha7);
        let ct = pe.evaluator().encrypt_values(&[0.4], &mut rng);
        let before = ct.level();
        let out = pe.relu(&ct, &paf);
        assert_eq!(before - out.level(), PafEvaluator::relu_depth(&paf));
        assert_eq!(PafEvaluator::relu_depth(&paf), 7); // 6 + 1
    }

    #[test]
    fn max_matches_plaintext() {
        let (pe, mut rng) = setup(17);
        let paf = CompositePaf::from_form(PafForm::F2G2);
        let xs = vec![0.3, -0.2, 0.8, -0.6];
        let ys = vec![0.5, -0.5, 0.1, -0.1];
        let cx = pe.evaluator().encrypt_values(&xs, &mut rng);
        let cy = pe.evaluator().encrypt_values(&ys, &mut rng);
        let out_ct = pe.max(&cx, &cy, &paf);
        let out = pe.evaluator().decrypt_values(&out_ct, xs.len());
        for i in 0..xs.len() {
            let want = paf.max(xs[i], ys[i]);
            assert!(
                (out[i] - want).abs() < 4e-2,
                "max({}, {}) = {}, want {want}",
                xs[i],
                ys[i],
                out[i]
            );
        }
    }

    #[test]
    fn zero_coefficients_are_skipped() {
        let (pe, mut rng) = setup(18);
        // x^5 only (a0 = a1 = 0).
        let stage = Polynomial::from_odd(&[0.0, 0.0, 1.0]);
        let ct = pe.evaluator().encrypt_values(&[0.8], &mut rng);
        let out = pe.eval_odd_stage(&ct, &stage);
        let got = pe.evaluator().decrypt_values(&out, 1)[0];
        assert!((got - 0.8f64.powi(5)).abs() < 2e-2, "{got}");
    }
}
