//! RNS polynomial ring: elements of `Z_Q[X]/(X^n+1)` stored as one
//! residue vector ("limb") per prime in the modulus chain.
//!
//! # Flat limb layout
//!
//! A poly's limbs live in **one contiguous `Vec<u64>`**, limb-major:
//! limb `i` is the stride slice `data[i*n .. (i+1)*n]`. Dropping the
//! last limb (modulus switch, rescale) is a truncation, cloning is a
//! single `memcpy`, and the backing buffer is recycled through the
//! thread-local [`crate::pool`] so steady-state ciphertext pipelines
//! do not allocate. See `docs/ARCHITECTURE.md` ("Memory & kernels").
//!
//! All modular arithmetic goes through the per-prime
//! [`crate::modular::PrimeArith`] Barrett/Shoup kernels — same
//! residues as the portable `% q` helpers, no hardware division.

use crate::modular::{add_mod, inv_mod, sub_mod, PrimeArith};
use crate::ntt::NttTable;
use crate::pool;
use smartpaf_tensor::Rng64;
use std::sync::Arc;

/// Precomputed constants for one rescale step: dividing by the prime
/// at `last_idx` inside the limb at `i < last_idx`.
#[derive(Debug, Clone, Copy)]
struct RescalePre {
    /// `q_last mod q_i`.
    q_last_mod: u64,
    /// `(q_last mod q_i)^-1 mod q_i`.
    inv: u64,
    /// Shoup companion of `inv`.
    inv_shoup: u64,
}

/// Shared CKKS ring context: dimension, prime chain, NTT tables and
/// the default encoding scale.
#[derive(Debug)]
pub struct CkksContext {
    n: usize,
    primes: Vec<u64>,
    ntt: Vec<NttTable>,
    /// Hybrid key-switch special primes (empty selects the legacy
    /// per-prime digit gadget). Disjoint from `primes`; their count is
    /// the gadget digit size ω.
    special: Vec<u64>,
    /// NTT tables for the special primes, same order as `special`.
    ntt_sp: Vec<NttTable>,
    /// `rescale_pre[last_idx]` holds constants for limbs
    /// `0..last_idx` when rescaling away the prime at `last_idx`.
    rescale_pre: Vec<Vec<RescalePre>>,
    scale: f64,
    sigma: f64,
}

impl CkksContext {
    /// Builds a context with the legacy per-prime key-switch gadget
    /// (no special primes).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two, `primes` is empty, or any
    /// prime is not NTT-friendly for `n`.
    pub fn new(n: usize, primes: Vec<u64>, scale: f64) -> Arc<Self> {
        Self::with_special_primes(n, primes, Vec::new(), scale)
    }

    /// Builds a context whose key switches use the hybrid gadget:
    /// `special.len()` = ω RNS limbs are grouped per digit and the
    /// raised accumulation runs over the chain extended by the special
    /// primes.
    ///
    /// # Panics
    ///
    /// As [`CkksContext::new`], plus if any special prime repeats a
    /// chain prime.
    pub fn with_special_primes(
        n: usize,
        primes: Vec<u64>,
        special: Vec<u64>,
        scale: f64,
    ) -> Arc<Self> {
        assert!(n.is_power_of_two(), "n must be a power of two");
        assert!(!primes.is_empty(), "empty prime chain");
        for &p in &special {
            assert!(
                !primes.contains(&p),
                "special prime {p} collides with the modulus chain"
            );
        }
        let ntt: Vec<NttTable> = primes.iter().map(|&q| NttTable::new(q, n)).collect();
        let ntt_sp: Vec<NttTable> = special.iter().map(|&p| NttTable::new(p, n)).collect();
        let rescale_pre = (0..primes.len())
            .map(|last_idx| {
                let q_last = primes[last_idx];
                (0..last_idx)
                    .map(|i| {
                        let q = primes[i];
                        let q_last_mod = q_last % q;
                        let inv = inv_mod(q_last_mod, q);
                        RescalePre {
                            q_last_mod,
                            inv,
                            inv_shoup: ntt[i].arith().shoup(inv),
                        }
                    })
                    .collect()
            })
            .collect();
        Arc::new(CkksContext {
            n,
            primes,
            ntt,
            special,
            ntt_sp,
            rescale_pre,
            scale,
            sigma: 3.2,
        })
    }

    /// Ring dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of SIMD slots (`n / 2`).
    pub fn slots(&self) -> usize {
        self.n / 2
    }

    /// The full prime chain, top level first consumed last.
    pub fn primes(&self) -> &[u64] {
        &self.primes
    }

    /// Highest level index (`primes.len() - 1`); a fresh ciphertext has
    /// `level() + 1` limbs and supports `level()` rescales.
    pub fn max_level(&self) -> usize {
        self.primes.len() - 1
    }

    /// Default encoding scale Δ.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Error standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// NTT table for prime index `i`.
    pub fn ntt(&self, i: usize) -> &NttTable {
        &self.ntt[i]
    }

    /// Barrett/Shoup constants for prime index `i`.
    #[inline]
    pub fn arith(&self, i: usize) -> &PrimeArith {
        self.ntt[i].arith()
    }

    /// The hybrid key-switch special primes (empty when the context
    /// uses the per-prime gadget). Their count is the gadget digit
    /// size ω.
    pub fn special_primes(&self) -> &[u64] {
        &self.special
    }

    /// NTT table for special prime index `l`.
    pub fn ntt_special(&self, l: usize) -> &NttTable {
        &self.ntt_sp[l]
    }

    /// Barrett/Shoup constants for special prime index `l`.
    #[inline]
    pub fn arith_special(&self, l: usize) -> &PrimeArith {
        self.ntt_sp[l].arith()
    }

    /// Modulus of limb `t` in the extended basis
    /// `[q_0 .. q_{num_limbs-1}, p_0 .. ]`: chain prime for
    /// `t < num_limbs`, special prime after.
    #[inline]
    pub(crate) fn ext_modulus(&self, num_limbs: usize, t: usize) -> u64 {
        if t < num_limbs {
            self.primes[t]
        } else {
            self.special[t - num_limbs]
        }
    }

    /// NTT table for extended-basis limb `t` (see
    /// [`CkksContext::ext_modulus`]).
    #[inline]
    pub(crate) fn ext_ntt(&self, num_limbs: usize, t: usize) -> &NttTable {
        if t < num_limbs {
            &self.ntt[t]
        } else {
            &self.ntt_sp[t - num_limbs]
        }
    }

    /// Barrett/Shoup constants for extended-basis limb `t` (see
    /// [`CkksContext::ext_modulus`]).
    #[inline]
    pub(crate) fn ext_arith(&self, num_limbs: usize, t: usize) -> &PrimeArith {
        self.ext_ntt(num_limbs, t).arith()
    }

    /// How many raw `u128` products `(q_i-1)^2` can pile up in a lazy
    /// accumulator (on top of one canonical carry-in `< q_i`) before
    /// it must be flushed, minimized over the first `num_limbs`
    /// primes. For 60-bit primes this is ~256, far above any gadget
    /// component count, so the key switch never flushes in practice.
    pub(crate) fn lazy_acc_headroom(&self, num_limbs: usize) -> usize {
        self.primes[..num_limbs]
            .iter()
            .map(|&q| {
                let max_prod = (q as u128 - 1) * (q as u128 - 1);
                ((u128::MAX - (q as u128 - 1)) / max_prod) as usize
            })
            .min()
            .expect("non-empty chain")
    }

    /// [`CkksContext::lazy_acc_headroom`] over the *extended* basis of
    /// `num_limbs` chain primes plus the first `k` special primes; the
    /// hybrid key-switch accumulates over all of them.
    pub(crate) fn lazy_acc_headroom_ext(&self, num_limbs: usize, k: usize) -> usize {
        self.primes[..num_limbs]
            .iter()
            .chain(self.special[..k].iter())
            .map(|&q| {
                let max_prod = (q as u128 - 1) * (q as u128 - 1);
                ((u128::MAX - (q as u128 - 1)) / max_prod) as usize
            })
            .min()
            .expect("non-empty chain")
    }
}

/// An RNS ring element. Limb `i` holds the residues modulo
/// `context.primes()[i]` as the stride slice `data[i*n..(i+1)*n]` of
/// one flat buffer; the number of limbs defines the element's level.
/// `is_ntt` says which domain the limbs are in.
///
/// The backing buffer comes from the thread-local [`crate::pool`] and
/// returns there on drop.
#[derive(Debug)]
pub struct RnsPoly {
    ctx: Arc<CkksContext>,
    data: Vec<u64>,
    num_limbs: usize,
    is_ntt: bool,
}

impl Drop for RnsPoly {
    fn drop(&mut self) {
        pool::release(std::mem::take(&mut self.data));
    }
}

impl Clone for RnsPoly {
    fn clone(&self) -> Self {
        let mut data = pool::acquire(self.data.len());
        data.copy_from_slice(&self.data);
        RnsPoly {
            ctx: Arc::clone(&self.ctx),
            data,
            num_limbs: self.num_limbs,
            is_ntt: self.is_ntt,
        }
    }
}

impl RnsPoly {
    /// A poly with pooled, *uninitialized* (unspecified-content)
    /// storage. Internal: every limb must be fully overwritten before
    /// the value escapes.
    pub(crate) fn uninit(ctx: &Arc<CkksContext>, num_limbs: usize, is_ntt: bool) -> Self {
        assert!(num_limbs >= 1 && num_limbs <= ctx.primes().len());
        RnsPoly {
            ctx: Arc::clone(ctx),
            data: pool::acquire(num_limbs * ctx.n()),
            num_limbs,
            is_ntt,
        }
    }

    /// The zero element with `num_limbs` limbs, in NTT form.
    ///
    /// # Panics
    ///
    /// Panics if `num_limbs` is zero or exceeds the chain length.
    pub fn zero(ctx: &Arc<CkksContext>, num_limbs: usize) -> Self {
        assert!(num_limbs >= 1 && num_limbs <= ctx.primes().len());
        RnsPoly {
            ctx: Arc::clone(ctx),
            data: pool::acquire_zeroed(num_limbs * ctx.n()),
            num_limbs,
            is_ntt: true,
        }
    }

    /// Builds from signed coefficients (coefficient domain), reducing
    /// each modulo every prime.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != n`.
    pub fn from_signed_coeffs(ctx: &Arc<CkksContext>, coeffs: &[i64], num_limbs: usize) -> Self {
        assert_eq!(coeffs.len(), ctx.n(), "coefficient count mismatch");
        let mut out = Self::uninit(ctx, num_limbs, false);
        for i in 0..num_limbs {
            let q = ctx.primes()[i];
            for (dst, &c) in out.limb_mut(i).iter_mut().zip(coeffs) {
                let r = if c >= 0 {
                    c as u64 % q
                } else {
                    q - ((-c) as u64 % q)
                };
                *dst = if r == q { 0 } else { r };
            }
        }
        out
    }

    /// Builds from big signed coefficients given as `i128` (used by the
    /// encoder, whose scaled values can exceed `i64`).
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != n`.
    pub fn from_signed_coeffs_i128(
        ctx: &Arc<CkksContext>,
        coeffs: &[i128],
        num_limbs: usize,
    ) -> Self {
        assert_eq!(coeffs.len(), ctx.n(), "coefficient count mismatch");
        let mut out = Self::uninit(ctx, num_limbs, false);
        for i in 0..num_limbs {
            let q = ctx.primes()[i] as i128;
            for (dst, &c) in out.limb_mut(i).iter_mut().zip(coeffs) {
                *dst = c.rem_euclid(q) as u64;
            }
        }
        out
    }

    /// Builds from small unsigned coefficients (each must be smaller
    /// than every prime in the active chain), coefficient domain.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != n` or a coefficient is too large.
    pub fn from_unsigned_coeffs(ctx: &Arc<CkksContext>, coeffs: &[u64], num_limbs: usize) -> Self {
        assert_eq!(coeffs.len(), ctx.n(), "coefficient count mismatch");
        let min_q = ctx.primes()[..num_limbs]
            .iter()
            .copied()
            .min()
            .expect("non-empty chain");
        assert!(
            coeffs.iter().all(|&c| c < min_q),
            "coefficient exceeds smallest prime"
        );
        let mut out = Self::uninit(ctx, num_limbs, false);
        for i in 0..num_limbs {
            out.limb_mut(i).copy_from_slice(coeffs);
        }
        out
    }

    /// Uniformly random element (NTT form is fine since uniform is
    /// domain-invariant).
    pub fn random_uniform(ctx: &Arc<CkksContext>, num_limbs: usize, rng: &mut Rng64) -> Self {
        let mut out = Self::uninit(ctx, num_limbs, true);
        for i in 0..num_limbs {
            let q = ctx.primes()[i];
            for dst in out.limb_mut(i) {
                *dst = rng.next_u64() % q;
            }
        }
        out
    }

    /// Random ternary element with coefficients in `{-1, 0, 1}`
    /// (coefficient domain).
    pub fn random_ternary(ctx: &Arc<CkksContext>, num_limbs: usize, rng: &mut Rng64) -> Self {
        let coeffs: Vec<i64> = (0..ctx.n()).map(|_| rng.next_below(3) as i64 - 1).collect();
        Self::from_signed_coeffs(ctx, &coeffs, num_limbs)
    }

    /// Random error element with discrete-Gaussian-ish coefficients of
    /// standard deviation `ctx.sigma()` (coefficient domain).
    pub fn random_error(ctx: &Arc<CkksContext>, num_limbs: usize, rng: &mut Rng64) -> Self {
        let sigma = ctx.sigma();
        let coeffs: Vec<i64> = (0..ctx.n())
            .map(|_| (rng.next_gaussian() as f64 * sigma).round() as i64)
            .collect();
        Self::from_signed_coeffs(ctx, &coeffs, num_limbs)
    }

    /// Number of limbs (level + 1).
    pub fn num_limbs(&self) -> usize {
        self.num_limbs
    }

    /// Whether the element is in NTT (evaluation) form.
    pub fn is_ntt(&self) -> bool {
        self.is_ntt
    }

    /// Raw limb access: the stride slice for prime index `i`.
    #[inline]
    pub fn limb(&self, i: usize) -> &[u64] {
        let n = self.ctx.n();
        &self.data[i * n..(i + 1) * n]
    }

    /// Mutable raw limb access.
    #[inline]
    pub fn limb_mut(&mut self, i: usize) -> &mut [u64] {
        let n = self.ctx.n();
        &mut self.data[i * n..(i + 1) * n]
    }

    /// Iterates over limbs as stride slices.
    pub fn limbs(&self) -> impl Iterator<Item = &[u64]> {
        self.data.chunks_exact(self.ctx.n())
    }

    /// Shared context.
    pub fn context(&self) -> &Arc<CkksContext> {
        &self.ctx
    }

    /// The whole flat limb-major buffer, mutably. Internal: the
    /// limb-parallel kernels split it into per-limb chunks.
    pub(crate) fn data_mut(&mut self) -> &mut [u64] {
        &mut self.data
    }

    /// Converts to NTT form in place (no-op if already there). Limbs
    /// transform independently, so with an intra-op thread budget > 1
    /// they run on the [`crate::par`] worker pool (bit-identical to
    /// the sequential path — each limb's arithmetic is untouched).
    pub fn to_ntt(&mut self) {
        if self.is_ntt {
            return;
        }
        let n = self.ctx.n();
        let ctx = &self.ctx;
        crate::par::for_each_chunk_mut(&mut self.data, n, |i, limb| {
            ctx.ntt[i].forward(limb);
        });
        self.is_ntt = true;
    }

    /// Converts to coefficient form in place (no-op if already there).
    /// Limb-parallel like [`RnsPoly::to_ntt`].
    pub fn to_coeff(&mut self) {
        if !self.is_ntt {
            return;
        }
        let n = self.ctx.n();
        let ctx = &self.ctx;
        crate::par::for_each_chunk_mut(&mut self.data, n, |i, limb| {
            ctx.ntt[i].inverse(limb);
        });
        self.is_ntt = false;
    }

    fn assert_binop_compatible(&self, other: &RnsPoly) {
        assert_eq!(self.is_ntt, other.is_ntt, "domain mismatch");
        assert_eq!(self.num_limbs(), other.num_limbs(), "level mismatch");
    }

    /// Copies the first `num_limbs` limbs into a new (pooled) element,
    /// preserving the domain flag. With the flat layout this is a
    /// single prefix `memcpy`.
    ///
    /// # Panics
    ///
    /// Panics if `num_limbs` is zero or exceeds the current count.
    pub fn truncated(&self, num_limbs: usize) -> RnsPoly {
        assert!(
            num_limbs >= 1 && num_limbs <= self.num_limbs(),
            "invalid truncation"
        );
        let n = self.ctx.n();
        let mut out = Self::uninit(&self.ctx, num_limbs, self.is_ntt);
        out.data.copy_from_slice(&self.data[..num_limbs * n]);
        out
    }

    /// `self + other`, reading only the first `self.num_limbs()` limbs
    /// of `other` (which must sit at the same or a higher level). This
    /// is how plaintext application avoids cloning and limb-dropping
    /// the (full-level) encoded plaintext on every call.
    ///
    /// # Panics
    ///
    /// Panics on domain mismatch or if `other` has fewer limbs.
    pub fn add_trunc(&self, other: &RnsPoly) -> RnsPoly {
        assert_eq!(self.is_ntt, other.is_ntt, "domain mismatch");
        assert!(other.num_limbs() >= self.num_limbs(), "level mismatch");
        let mut out = Self::uninit(&self.ctx, self.num_limbs, self.is_ntt);
        let n = self.ctx.n();
        for i in 0..self.num_limbs {
            let q = self.ctx.primes()[i];
            let (a, b) = (self.limb(i), other.limb(i));
            let dst = &mut out.data[i * n..(i + 1) * n];
            for j in 0..n {
                dst[j] = add_mod(a[j], b[j], q);
            }
        }
        out
    }

    /// Pointwise `self * other` (both NTT form), reading only the
    /// first `self.num_limbs()` limbs of `other`.
    ///
    /// # Panics
    ///
    /// Panics on coefficient-form operands or if `other` has fewer
    /// limbs.
    pub fn mul_trunc(&self, other: &RnsPoly) -> RnsPoly {
        assert!(self.is_ntt && other.is_ntt, "mul requires NTT form");
        assert!(other.num_limbs() >= self.num_limbs(), "level mismatch");
        let mut out = Self::uninit(&self.ctx, self.num_limbs, true);
        let n = self.ctx.n();
        for i in 0..self.num_limbs {
            let pa = *self.ctx.arith(i);
            let (a, b) = (self.limb(i), other.limb(i));
            let dst = &mut out.data[i * n..(i + 1) * n];
            for j in 0..n {
                dst[j] = pa.reduce_u128(a[j] as u128 * b[j] as u128);
            }
        }
        out
    }

    /// Ring addition.
    ///
    /// # Panics
    ///
    /// Panics on level or domain mismatch.
    pub fn add(&self, other: &RnsPoly) -> RnsPoly {
        self.assert_binop_compatible(other);
        let mut out = Self::uninit(&self.ctx, self.num_limbs, self.is_ntt);
        let n = self.ctx.n();
        for i in 0..self.num_limbs {
            let q = self.ctx.primes()[i];
            let (a, b) = (self.limb(i), other.limb(i));
            for j in 0..n {
                out.data[i * n + j] = add_mod(a[j], b[j], q);
            }
        }
        out
    }

    /// In-place ring addition (`self += other`).
    ///
    /// # Panics
    ///
    /// Panics on level or domain mismatch.
    pub fn add_assign(&mut self, other: &RnsPoly) {
        self.assert_binop_compatible(other);
        for i in 0..self.num_limbs {
            let q = self.ctx.primes()[i];
            let n = self.ctx.n();
            let (dst, src) = (&mut self.data[i * n..(i + 1) * n], other.limb(i));
            for (x, &y) in dst.iter_mut().zip(src) {
                *x = add_mod(*x, y, q);
            }
        }
    }

    /// Ring subtraction.
    ///
    /// # Panics
    ///
    /// Panics on level or domain mismatch.
    pub fn sub(&self, other: &RnsPoly) -> RnsPoly {
        self.assert_binop_compatible(other);
        let mut out = Self::uninit(&self.ctx, self.num_limbs, self.is_ntt);
        let n = self.ctx.n();
        for i in 0..self.num_limbs {
            let q = self.ctx.primes()[i];
            let (a, b) = (self.limb(i), other.limb(i));
            for j in 0..n {
                out.data[i * n + j] = sub_mod(a[j], b[j], q);
            }
        }
        out
    }

    /// In-place ring subtraction (`self -= other`).
    ///
    /// # Panics
    ///
    /// Panics on level or domain mismatch.
    pub fn sub_assign(&mut self, other: &RnsPoly) {
        self.assert_binop_compatible(other);
        for i in 0..self.num_limbs {
            let q = self.ctx.primes()[i];
            let n = self.ctx.n();
            let (dst, src) = (&mut self.data[i * n..(i + 1) * n], other.limb(i));
            for (x, &y) in dst.iter_mut().zip(src) {
                *x = sub_mod(*x, y, q);
            }
        }
    }

    /// Ring multiplication (pointwise; both operands must be in NTT
    /// form). Products reduce through the per-prime Barrett constants.
    ///
    /// # Panics
    ///
    /// Panics on level mismatch or if either operand is in coefficient
    /// form.
    pub fn mul(&self, other: &RnsPoly) -> RnsPoly {
        assert!(self.is_ntt && other.is_ntt, "mul requires NTT form");
        self.assert_binop_compatible(other);
        let mut out = Self::uninit(&self.ctx, self.num_limbs, true);
        let n = self.ctx.n();
        for i in 0..self.num_limbs {
            let pa = *self.ctx.arith(i);
            let (a, b) = (self.limb(i), other.limb(i));
            for j in 0..n {
                out.data[i * n + j] = pa.reduce_u128(a[j] as u128 * b[j] as u128);
            }
        }
        out
    }

    /// In-place pointwise multiplication (`self *= other`; both in NTT
    /// form).
    ///
    /// # Panics
    ///
    /// Panics on level mismatch or coefficient-form operands.
    pub fn mul_assign(&mut self, other: &RnsPoly) {
        assert!(self.is_ntt && other.is_ntt, "mul requires NTT form");
        self.assert_binop_compatible(other);
        for i in 0..self.num_limbs {
            let pa = *self.ctx.arith(i);
            let n = self.ctx.n();
            let (dst, src) = (&mut self.data[i * n..(i + 1) * n], other.limb(i));
            for (x, &y) in dst.iter_mut().zip(src) {
                *x = pa.reduce_u128(*x as u128 * y as u128);
            }
        }
    }

    /// Fused multiply-add: `self += a * b` (all three in NTT form, same
    /// level). Saves one pooled temporary per accumulation versus
    /// `add_assign(&a.mul(&b))` — the relinearization inner loop runs
    /// entirely on this.
    ///
    /// # Panics
    ///
    /// Panics on level mismatch or coefficient-form operands.
    pub fn mul_acc(&mut self, a: &RnsPoly, b: &RnsPoly) {
        assert!(
            self.is_ntt && a.is_ntt && b.is_ntt,
            "mul_acc requires NTT form"
        );
        a.assert_binop_compatible(b);
        self.assert_binop_compatible(a);
        for i in 0..self.num_limbs {
            let pa = *self.ctx.arith(i);
            let q = pa.q();
            let n = self.ctx.n();
            let dst = &mut self.data[i * n..(i + 1) * n];
            let (x, y) = (a.limb(i), b.limb(i));
            for j in 0..n {
                let prod = pa.reduce_u128(x[j] as u128 * y[j] as u128);
                dst[j] = add_mod(dst[j], prod, q);
            }
        }
    }

    /// Accumulates raw 128-bit products `self[k] * other[k]` into a
    /// flat lazy accumulator without reducing (both operands NTT form,
    /// same level; `acc` is limb-major like the poly data). The caller
    /// owns overflow accounting via
    /// [`CkksContext::lazy_acc_headroom`] and
    /// [`RnsPoly::reduce_lazy_in_place`].
    ///
    /// # Panics
    ///
    /// Panics on level/domain mismatch or accumulator length mismatch.
    pub(crate) fn mul_into_lazy(&self, other: &RnsPoly, acc: &mut [u128]) {
        assert!(
            self.is_ntt && other.is_ntt,
            "lazy accumulation requires NTT form"
        );
        self.assert_binop_compatible(other);
        assert_eq!(acc.len(), self.data.len(), "accumulator length mismatch");
        for ((dst, &x), &y) in acc.iter_mut().zip(&self.data).zip(&other.data) {
            *dst += x as u128 * y as u128;
        }
    }

    /// Flushes a lazy accumulator in place: every element becomes its
    /// canonical residue (as a `u128`), restoring full headroom.
    pub(crate) fn reduce_lazy_in_place(ctx: &CkksContext, acc: &mut [u128], num_limbs: usize) {
        let n = ctx.n();
        assert_eq!(acc.len(), num_limbs * n, "accumulator length mismatch");
        for (i, chunk) in acc.chunks_exact_mut(n).enumerate() {
            let pa = *ctx.arith(i);
            for x in chunk {
                *x = pa.reduce_u128(*x) as u128;
            }
        }
    }

    /// Materializes a lazy accumulator as a canonical poly. Computes
    /// exactly `Σ products mod q_i` per element — the same value an
    /// eager `mul_acc` chain produces, so swapping accumulation
    /// strategies cannot change any ciphertext bit.
    pub(crate) fn from_lazy_accumulator(
        ctx: &Arc<CkksContext>,
        acc: &[u128],
        num_limbs: usize,
        is_ntt: bool,
    ) -> RnsPoly {
        let n = ctx.n();
        assert_eq!(acc.len(), num_limbs * n, "accumulator length mismatch");
        let mut out = Self::uninit(ctx, num_limbs, is_ntt);
        for i in 0..num_limbs {
            let pa = *ctx.arith(i);
            let src = &acc[i * n..(i + 1) * n];
            for (dst, &x) in out.limb_mut(i).iter_mut().zip(src) {
                *dst = pa.reduce_u128(x);
            }
        }
        out
    }

    /// Negation.
    pub fn neg(&self) -> RnsPoly {
        let mut out = self.clone();
        out.neg_assign();
        out
    }

    /// In-place negation.
    pub fn neg_assign(&mut self) {
        for i in 0..self.num_limbs {
            let q = self.ctx.primes()[i];
            for x in self.limb_mut(i) {
                if *x != 0 {
                    *x = q - *x;
                }
            }
        }
    }

    /// Multiplies every limb by a per-limb scalar residue (Shoup
    /// product: the scalar's companion is computed once per limb and
    /// amortized over all `n` coefficients).
    ///
    /// # Panics
    ///
    /// Panics if `scalars.len() != num_limbs()`.
    pub fn mul_scalar_residues(&self, scalars: &[u64]) -> RnsPoly {
        let mut out = self.clone();
        out.mul_scalar_residues_assign(scalars);
        out
    }

    /// In-place per-limb scalar multiplication.
    ///
    /// # Panics
    ///
    /// Panics if `scalars.len() != num_limbs()`.
    pub fn mul_scalar_residues_assign(&mut self, scalars: &[u64]) {
        assert_eq!(scalars.len(), self.num_limbs(), "scalar count mismatch");
        for (i, &s) in scalars.iter().enumerate() {
            let pa = *self.ctx.arith(i);
            let s_shoup = pa.shoup(s);
            for x in self.limb_mut(i) {
                *x = pa.mul_shoup(*x, s, s_shoup);
            }
        }
    }

    /// Drops the last limb without rescaling (plain modulus switch;
    /// valid when the represented value is small enough). With the
    /// flat layout this is a truncation — no allocation, no copy.
    ///
    /// # Panics
    ///
    /// Panics if only one limb remains.
    pub fn drop_last_limb(&mut self) {
        assert!(self.num_limbs() > 1, "cannot drop the last limb");
        self.num_limbs -= 1;
        self.data.truncate(self.num_limbs * self.ctx.n());
    }

    /// CKKS rescale: divides by the last prime (rounding) and drops
    /// that limb. Input may be in either domain; output stays in the
    /// input domain.
    ///
    /// Runs allocation-free: the last limb is read in place through a
    /// split borrow of the flat buffer while the surviving limbs are
    /// rewritten, then truncated away.
    ///
    /// # Panics
    ///
    /// Panics if only one limb remains.
    pub fn rescale(&mut self) {
        assert!(self.num_limbs() > 1, "cannot rescale the last limb");
        let was_ntt = self.is_ntt;
        self.to_coeff();
        let n = self.ctx.n();
        let last_idx = self.num_limbs - 1;
        let q_last = self.ctx.primes()[last_idx];
        let half = q_last / 2;
        let pre = &self.ctx.rescale_pre[last_idx];
        let (head, last) = self.data.split_at_mut(last_idx * n);
        let last = &last[..n];
        for (i, limb) in head.chunks_exact_mut(n).enumerate() {
            let pa = self.ctx.arith(i);
            let q = pa.q();
            let RescalePre {
                q_last_mod,
                inv,
                inv_shoup,
            } = pre[i];
            for (x, &l) in limb.iter_mut().zip(last) {
                // Round(X / q_last) = (X - l') / q_last where l' is the
                // centered remainder of X mod q_last.
                let mut l_centered = pa.reduce_u128(l as u128);
                if l >= half {
                    l_centered = sub_mod(l_centered, q_last_mod, q);
                }
                let num = sub_mod(*x, l_centered, q);
                *x = pa.mul_shoup(num, inv, inv_shoup);
            }
        }
        self.num_limbs = last_idx;
        self.data.truncate(self.num_limbs * n);
        if was_ntt {
            self.to_ntt();
        } else {
            self.is_ntt = false;
        }
    }

    /// Applies the Galois automorphism `X ↦ X^g` for odd `g`.
    ///
    /// In the negacyclic ring `Z_Q[X]/(X^n+1)` the monomial `X^i` maps
    /// to `±X^{(i·g) mod n}` with the sign flipped whenever
    /// `(i·g) mod 2n ≥ n` (because `X^n = −1`). The result is returned
    /// in coefficient form regardless of the input domain.
    ///
    /// For odd `g` the index map `i ↦ (i·g) mod n` is a bijection, so
    /// the (pooled, unspecified-content) output buffer is fully
    /// overwritten — checked by the flat-layout aliasing proptests.
    ///
    /// # Panics
    ///
    /// Panics if `g` is even or not in `1..2n`.
    pub fn automorphism(&self, g: usize) -> RnsPoly {
        let n = self.ctx.n();
        assert!(
            g % 2 == 1 && g >= 1 && g < 2 * n,
            "invalid Galois element {g}"
        );
        let mut src = self.clone();
        src.to_coeff();
        let mut out = Self::uninit(&self.ctx, self.num_limbs, false);
        for limb_idx in 0..self.num_limbs {
            let q = self.ctx.primes()[limb_idx];
            let limb = src.limb(limb_idx);
            let dst = out.limb_mut(limb_idx);
            for (i, &c) in limb.iter().enumerate() {
                let e = (i * g) % (2 * n);
                if e < n {
                    dst[e] = c;
                } else {
                    dst[e - n] = if c == 0 { 0 } else { q - c };
                }
            }
        }
        out
    }

    /// Reconstructs the centered signed value of coefficient `idx`
    /// using the first `use_limbs` limbs via exact CRT in `i128`.
    ///
    /// Only sound when the true centered value fits in the product of
    /// those primes; callers use 1–2 limbs where values are ≤ 2^100.
    ///
    /// # Panics
    ///
    /// Panics in NTT form, or if `use_limbs` is 0, exceeds the limb
    /// count, or the prime product overflows `i128` headroom.
    pub fn coeff_to_i128(&self, idx: usize, use_limbs: usize) -> i128 {
        assert!(!self.is_ntt, "coefficient access requires coefficient form");
        assert!(use_limbs >= 1 && use_limbs <= self.num_limbs());
        let mut q_prod: i128 = 1;
        for i in 0..use_limbs {
            q_prod = q_prod
                .checked_mul(self.ctx.primes()[i] as i128)
                .expect("prime product overflow");
        }
        // Garner / CRT via incremental reconstruction.
        let mut x: i128 = self.limb(0)[idx] as i128;
        let mut modulus: i128 = self.ctx.primes()[0] as i128;
        for i in 1..use_limbs {
            let q = self.ctx.primes()[i] as i128;
            let r = self.limb(i)[idx] as i128;
            // Find t with x + modulus * t ≡ r (mod q).
            let m_inv = inv_mod((modulus.rem_euclid(q)) as u64, q as u64) as i128;
            let t = ((r - x).rem_euclid(q) * m_inv).rem_euclid(q);
            x += modulus * t;
            modulus *= q;
        }
        debug_assert_eq!(modulus, q_prod);
        if x > q_prod / 2 {
            x - q_prod
        } else {
            x
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular::ntt_primes;

    fn ctx() -> Arc<CkksContext> {
        let mut primes = ntt_primes(40, 3, 64);
        primes.insert(0, ntt_primes(50, 1, 64)[0]);
        CkksContext::new(64, primes, (1u64 << 30) as f64)
    }

    #[test]
    fn from_signed_roundtrip() {
        let c = ctx();
        let coeffs: Vec<i64> = (0..64).map(|i| i as i64 - 32).collect();
        let p = RnsPoly::from_signed_coeffs(&c, &coeffs, 2);
        for (i, &v) in coeffs.iter().enumerate() {
            assert_eq!(p.coeff_to_i128(i, 2), v as i128);
        }
    }

    #[test]
    fn ntt_roundtrip_preserves_value() {
        let c = ctx();
        let coeffs: Vec<i64> = (0..64).map(|i| (i as i64 * 7919) % 1000 - 500).collect();
        let mut p = RnsPoly::from_signed_coeffs(&c, &coeffs, 3);
        p.to_ntt();
        p.to_coeff();
        // Reconstruct with two limbs (the 50+40+40-bit product would
        // overflow the i128 CRT headroom; values are tiny anyway).
        for (i, &v) in coeffs.iter().enumerate() {
            assert_eq!(p.coeff_to_i128(i, 2), v as i128);
        }
    }

    #[test]
    fn add_matches_integer_add() {
        let c = ctx();
        let a: Vec<i64> = (0..64).map(|i| i as i64).collect();
        let b: Vec<i64> = (0..64).map(|i| 2 * i as i64 - 10).collect();
        let pa = RnsPoly::from_signed_coeffs(&c, &a, 2);
        let pb = RnsPoly::from_signed_coeffs(&c, &b, 2);
        let s = pa.add(&pb);
        for i in 0..64 {
            assert_eq!(s.coeff_to_i128(i, 2), (a[i] + b[i]) as i128);
        }
    }

    #[test]
    fn assign_ops_match_allocating_ops() {
        let c = ctx();
        let a: Vec<i64> = (0..64).map(|i| (i as i64 * 37) % 101 - 50).collect();
        let b: Vec<i64> = (0..64).map(|i| (i as i64 * 53) % 97 - 48).collect();
        let mut pa = RnsPoly::from_signed_coeffs(&c, &a, 3);
        let mut pb = RnsPoly::from_signed_coeffs(&c, &b, 3);
        pa.to_ntt();
        pb.to_ntt();
        for (fresh, op) in [
            (
                pa.add(&pb),
                Box::new(|x: &mut RnsPoly| x.add_assign(&pb)) as Box<dyn Fn(&mut RnsPoly)>,
            ),
            (pa.sub(&pb), Box::new(|x: &mut RnsPoly| x.sub_assign(&pb))),
            (pa.mul(&pb), Box::new(|x: &mut RnsPoly| x.mul_assign(&pb))),
            (pa.neg(), Box::new(|x: &mut RnsPoly| x.neg_assign())),
        ] {
            let mut inplace = pa.clone();
            op(&mut inplace);
            for i in 0..3 {
                assert_eq!(fresh.limb(i), inplace.limb(i));
            }
        }
    }

    #[test]
    fn mul_acc_matches_mul_then_add() {
        let c = ctx();
        let a: Vec<i64> = (0..64).map(|i| (i as i64 * 11) % 61 - 30).collect();
        let b: Vec<i64> = (0..64).map(|i| (i as i64 * 19) % 71 - 35).collect();
        let s: Vec<i64> = (0..64).map(|i| (i as i64 * 5) % 41 - 20).collect();
        let mut pa = RnsPoly::from_signed_coeffs(&c, &a, 2);
        let mut pb = RnsPoly::from_signed_coeffs(&c, &b, 2);
        let mut acc = RnsPoly::from_signed_coeffs(&c, &s, 2);
        pa.to_ntt();
        pb.to_ntt();
        acc.to_ntt();
        let expect = acc.add(&pa.mul(&pb));
        acc.mul_acc(&pa, &pb);
        for i in 0..2 {
            assert_eq!(acc.limb(i), expect.limb(i));
        }
    }

    #[test]
    fn lazy_accumulator_matches_eager_mul_acc() {
        let c = ctx();
        let mut rng = Rng64::new(77);
        let polys: Vec<(RnsPoly, RnsPoly)> = (0..6)
            .map(|_| {
                (
                    RnsPoly::random_uniform(&c, 3, &mut rng),
                    RnsPoly::random_uniform(&c, 3, &mut rng),
                )
            })
            .collect();
        let mut eager = RnsPoly::zero(&c, 3);
        for (a, b) in &polys {
            eager.mul_acc(a, b);
        }
        let mut acc = vec![0u128; 3 * 64];
        for (a, b) in &polys {
            a.mul_into_lazy(b, &mut acc);
        }
        // A gratuitous mid-stream flush must not change the result.
        let mut acc_flushed = vec![0u128; 3 * 64];
        for (i, (a, b)) in polys.iter().enumerate() {
            a.mul_into_lazy(b, &mut acc_flushed);
            if i == 2 {
                RnsPoly::reduce_lazy_in_place(&c, &mut acc_flushed, 3);
            }
        }
        let lazy = RnsPoly::from_lazy_accumulator(&c, &acc, 3, true);
        let flushed = RnsPoly::from_lazy_accumulator(&c, &acc_flushed, 3, true);
        for i in 0..3 {
            assert_eq!(eager.limb(i), lazy.limb(i), "limb {i}");
            assert_eq!(eager.limb(i), flushed.limb(i), "flushed limb {i}");
        }
    }

    #[test]
    fn lazy_headroom_is_generous_for_real_chains() {
        let c = ctx();
        // 50-bit top prime: ~(2^50)^2 products leave ~2^28 of headroom.
        assert!(c.lazy_acc_headroom(4) >= (1 << 27));
    }

    #[test]
    fn mul_matches_negacyclic_reference() {
        let c = ctx();
        // a = X + 2, b = X^63 (so a*b = X^64 + 2X^63 = -1 + 2X^63).
        let mut a = vec![0i64; 64];
        a[0] = 2;
        a[1] = 1;
        let mut b = vec![0i64; 64];
        b[63] = 1;
        let mut pa = RnsPoly::from_signed_coeffs(&c, &a, 2);
        let mut pb = RnsPoly::from_signed_coeffs(&c, &b, 2);
        pa.to_ntt();
        pb.to_ntt();
        let mut prod = pa.mul(&pb);
        prod.to_coeff();
        assert_eq!(prod.coeff_to_i128(0, 2), -1);
        assert_eq!(prod.coeff_to_i128(63, 2), 2);
        for i in 1..63 {
            assert_eq!(prod.coeff_to_i128(i, 2), 0);
        }
    }

    #[test]
    fn neg_is_additive_inverse() {
        let c = ctx();
        let coeffs: Vec<i64> = (0..64).map(|i| i as i64 * 3 - 50).collect();
        let p = RnsPoly::from_signed_coeffs(&c, &coeffs, 2);
        let z = p.add(&p.neg());
        for i in 0..64 {
            assert_eq!(z.coeff_to_i128(i, 2), 0);
        }
    }

    #[test]
    fn rescale_divides_by_last_prime() {
        let c = ctx();
        let q_last = c.primes()[2] as i128;
        // Encode values that are exact multiples of q_last.
        let coeffs: Vec<i64> = (0..64).map(|i| i as i64 - 32).collect();
        let scaled: Vec<i128> = coeffs.iter().map(|&v| v as i128 * q_last).collect();
        let mut p = RnsPoly::from_signed_coeffs_i128(&c, &scaled, 3);
        p.rescale();
        assert_eq!(p.num_limbs(), 2);
        for (i, &v) in coeffs.iter().enumerate() {
            let got = p.coeff_to_i128(i, 2);
            assert!((got - v as i128).abs() <= 1, "coeff {i}: {got} vs {v}");
        }
    }

    #[test]
    fn ternary_and_error_sampling_bounds() {
        let c = ctx();
        let mut rng = Rng64::new(5);
        let mut t = RnsPoly::random_ternary(&c, 2, &mut rng);
        t.to_coeff();
        for i in 0..64 {
            assert!(t.coeff_to_i128(i, 2).abs() <= 1);
        }
        let mut e = RnsPoly::random_error(&c, 2, &mut rng);
        e.to_coeff();
        for i in 0..64 {
            assert!(e.coeff_to_i128(i, 2).abs() <= 30, "error too large");
        }
    }

    #[test]
    fn automorphism_identity() {
        let c = ctx();
        let coeffs: Vec<i64> = (0..64).map(|i| i as i64 * 13 - 100).collect();
        let p = RnsPoly::from_signed_coeffs(&c, &coeffs, 2);
        let q = p.automorphism(1);
        for (i, &v) in coeffs.iter().enumerate() {
            assert_eq!(q.coeff_to_i128(i, 2), v as i128);
        }
    }

    #[test]
    fn automorphism_monomial_sign_wrap() {
        // X^1 under g = 2n-1 maps to X^(2n-1 mod 2n) = X^{n-1} with a
        // sign flip (exponent 2n-1 >= n).
        let c = ctx();
        let n = 64;
        let mut coeffs = vec![0i64; n];
        coeffs[1] = 1;
        let p = RnsPoly::from_signed_coeffs(&c, &coeffs, 2);
        let q = p.automorphism(2 * n - 1);
        assert_eq!(q.coeff_to_i128(n - 1, 2), -1);
        for i in 0..n - 1 {
            assert_eq!(q.coeff_to_i128(i, 2), 0, "coeff {i}");
        }
    }

    #[test]
    fn automorphism_composes() {
        // φ_g ∘ φ_h = φ_{g·h mod 2n}.
        let c = ctx();
        let n = 64;
        let coeffs: Vec<i64> = (0..n).map(|i| (i as i64 * 31) % 17 - 8).collect();
        let p = RnsPoly::from_signed_coeffs(&c, &coeffs, 2);
        let (g, h) = (5usize, 25usize);
        let lhs = p.automorphism(g).automorphism(h);
        let rhs = p.automorphism((g * h) % (2 * n));
        for i in 0..n {
            assert_eq!(lhs.coeff_to_i128(i, 2), rhs.coeff_to_i128(i, 2));
        }
    }

    #[test]
    fn automorphism_is_ring_homomorphism() {
        // φ_g(a · b) = φ_g(a) · φ_g(b).
        let c = ctx();
        let n = 64;
        let a: Vec<i64> = (0..n).map(|i| (i as i64 % 5) - 2).collect();
        let b: Vec<i64> = (0..n).map(|i| ((i as i64 * 3) % 7) - 3).collect();
        let mut pa = RnsPoly::from_signed_coeffs(&c, &a, 2);
        let mut pb = RnsPoly::from_signed_coeffs(&c, &b, 2);
        pa.to_ntt();
        pb.to_ntt();
        let prod = pa.mul(&pb);
        let lhs = prod.automorphism(5);
        let mut ga = pa.automorphism(5);
        let mut gb = pb.automorphism(5);
        ga.to_ntt();
        gb.to_ntt();
        let mut rhs = ga.mul(&gb);
        rhs.to_coeff();
        for i in 0..n {
            assert_eq!(
                lhs.coeff_to_i128(i, 2),
                rhs.coeff_to_i128(i, 2),
                "coeff {i}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "invalid Galois element")]
    fn automorphism_rejects_even_g() {
        let c = ctx();
        let p = RnsPoly::zero(&c, 2);
        let _ = p.automorphism(4);
    }

    #[test]
    fn drop_last_limb_keeps_value() {
        let c = ctx();
        let coeffs: Vec<i64> = (0..64).map(|i| i as i64).collect();
        let mut p = RnsPoly::from_signed_coeffs(&c, &coeffs, 3);
        p.drop_last_limb();
        assert_eq!(p.num_limbs(), 2);
        for (i, &v) in coeffs.iter().enumerate() {
            assert_eq!(p.coeff_to_i128(i, 2), v as i128);
        }
    }

    #[test]
    fn trunc_ops_match_clone_and_drop() {
        let c = ctx();
        let a: Vec<i64> = (0..64).map(|i| (i as i64 * 7) % 91 - 45).collect();
        let b: Vec<i64> = (0..64).map(|i| (i as i64 * 3) % 83 - 41).collect();
        let mut pa = RnsPoly::from_signed_coeffs(&c, &a, 2);
        let mut pb = RnsPoly::from_signed_coeffs(&c, &b, 4);
        pa.to_ntt();
        pb.to_ntt();
        let pb_dropped = pb.truncated(2);
        assert_eq!(pb_dropped.num_limbs(), 2);
        let sum = pa.add_trunc(&pb);
        let prod = pa.mul_trunc(&pb);
        let sum_ref = pa.add(&pb_dropped);
        let prod_ref = pa.mul(&pb_dropped);
        for i in 0..2 {
            assert_eq!(sum.limb(i), sum_ref.limb(i));
            assert_eq!(prod.limb(i), prod_ref.limb(i));
            assert_eq!(pb_dropped.limb(i), pb.limb(i));
        }
    }

    #[test]
    fn flat_layout_limbs_are_contiguous_strides() {
        let c = ctx();
        let mut p = RnsPoly::zero(&c, 3);
        // Write through limb_mut, read back through the flat iterator
        // and cross-limb adjacency.
        for i in 0..3 {
            let fill = (i as u64 + 1) * 100;
            p.limb_mut(i).fill(fill);
        }
        for (i, limb) in p.limbs().enumerate() {
            assert_eq!(limb.len(), 64);
            assert!(limb.iter().all(|&x| x == (i as u64 + 1) * 100));
        }
        assert_eq!(p.limbs().count(), 3);
    }

    #[test]
    fn clone_is_deep_and_pool_recycled() {
        let c = ctx();
        crate::pool::trim();
        let coeffs: Vec<i64> = (0..64).map(|i| i as i64).collect();
        let p = RnsPoly::from_signed_coeffs(&c, &coeffs, 2);
        let q = p.clone();
        crate::pool::reset_stats();
        drop(q);
        let r = p.clone(); // must reuse the buffer q released
        let s = crate::pool::stats();
        assert_eq!(s.reuses, 1, "clone should reuse the dropped buffer");
        assert_eq!(s.fresh_allocs, 0);
        for i in 0..2 {
            assert_eq!(r.limb(i), p.limb(i));
        }
    }
}
