//! RNS polynomial ring: elements of `Z_Q[X]/(X^n+1)` stored as one
//! residue vector ("limb") per prime in the modulus chain.

use crate::modular::{add_mod, inv_mod, mul_mod, sub_mod};
use crate::ntt::NttTable;
use smartpaf_tensor::Rng64;
use std::sync::Arc;

/// Shared CKKS ring context: dimension, prime chain, NTT tables and
/// the default encoding scale.
#[derive(Debug)]
pub struct CkksContext {
    n: usize,
    primes: Vec<u64>,
    ntt: Vec<NttTable>,
    scale: f64,
    sigma: f64,
}

impl CkksContext {
    /// Builds a context.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two, `primes` is empty, or any
    /// prime is not NTT-friendly for `n`.
    pub fn new(n: usize, primes: Vec<u64>, scale: f64) -> Arc<Self> {
        assert!(n.is_power_of_two(), "n must be a power of two");
        assert!(!primes.is_empty(), "empty prime chain");
        let ntt = primes.iter().map(|&q| NttTable::new(q, n)).collect();
        Arc::new(CkksContext {
            n,
            primes,
            ntt,
            scale,
            sigma: 3.2,
        })
    }

    /// Ring dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of SIMD slots (`n / 2`).
    pub fn slots(&self) -> usize {
        self.n / 2
    }

    /// The full prime chain, top level first consumed last.
    pub fn primes(&self) -> &[u64] {
        &self.primes
    }

    /// Highest level index (`primes.len() - 1`); a fresh ciphertext has
    /// `level() + 1` limbs and supports `level()` rescales.
    pub fn max_level(&self) -> usize {
        self.primes.len() - 1
    }

    /// Default encoding scale Δ.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Error standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// NTT table for prime index `i`.
    pub fn ntt(&self, i: usize) -> &NttTable {
        &self.ntt[i]
    }
}

/// An RNS ring element. `limbs[i]` holds the residues modulo
/// `context.primes()[i]`; the number of limbs defines the element's
/// level. `is_ntt` says which domain the limbs are in.
#[derive(Debug, Clone)]
pub struct RnsPoly {
    ctx: Arc<CkksContext>,
    limbs: Vec<Vec<u64>>,
    is_ntt: bool,
}

impl RnsPoly {
    /// The zero element with `num_limbs` limbs, in NTT form.
    ///
    /// # Panics
    ///
    /// Panics if `num_limbs` is zero or exceeds the chain length.
    pub fn zero(ctx: &Arc<CkksContext>, num_limbs: usize) -> Self {
        assert!(num_limbs >= 1 && num_limbs <= ctx.primes().len());
        RnsPoly {
            ctx: Arc::clone(ctx),
            limbs: vec![vec![0u64; ctx.n()]; num_limbs],
            is_ntt: true,
        }
    }

    /// Builds from signed coefficients (coefficient domain), reducing
    /// each modulo every prime.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != n`.
    pub fn from_signed_coeffs(ctx: &Arc<CkksContext>, coeffs: &[i64], num_limbs: usize) -> Self {
        assert_eq!(coeffs.len(), ctx.n(), "coefficient count mismatch");
        let limbs = (0..num_limbs)
            .map(|i| {
                let q = ctx.primes()[i];
                coeffs
                    .iter()
                    .map(|&c| {
                        if c >= 0 {
                            c as u64 % q
                        } else {
                            q - ((-c) as u64 % q)
                        }
                    })
                    .map(|r| if r == q { 0 } else { r })
                    .collect()
            })
            .collect();
        RnsPoly {
            ctx: Arc::clone(ctx),
            limbs,
            is_ntt: false,
        }
    }

    /// Builds from big signed coefficients given as `i128` (used by the
    /// encoder, whose scaled values can exceed `i64`).
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != n`.
    pub fn from_signed_coeffs_i128(
        ctx: &Arc<CkksContext>,
        coeffs: &[i128],
        num_limbs: usize,
    ) -> Self {
        assert_eq!(coeffs.len(), ctx.n(), "coefficient count mismatch");
        let limbs = (0..num_limbs)
            .map(|i| {
                let q = ctx.primes()[i] as i128;
                coeffs
                    .iter()
                    .map(|&c| {
                        let r = c.rem_euclid(q);
                        r as u64
                    })
                    .collect()
            })
            .collect();
        RnsPoly {
            ctx: Arc::clone(ctx),
            limbs,
            is_ntt: false,
        }
    }

    /// Builds from small unsigned coefficients (each must be smaller
    /// than every prime in the active chain), coefficient domain.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != n` or a coefficient is too large.
    pub fn from_unsigned_coeffs(ctx: &Arc<CkksContext>, coeffs: &[u64], num_limbs: usize) -> Self {
        assert_eq!(coeffs.len(), ctx.n(), "coefficient count mismatch");
        let min_q = ctx.primes()[..num_limbs]
            .iter()
            .copied()
            .min()
            .expect("non-empty chain");
        assert!(
            coeffs.iter().all(|&c| c < min_q),
            "coefficient exceeds smallest prime"
        );
        RnsPoly {
            ctx: Arc::clone(ctx),
            limbs: vec![coeffs.to_vec(); num_limbs],
            is_ntt: false,
        }
    }

    /// Uniformly random element (NTT form is fine since uniform is
    /// domain-invariant).
    pub fn random_uniform(ctx: &Arc<CkksContext>, num_limbs: usize, rng: &mut Rng64) -> Self {
        let limbs = (0..num_limbs)
            .map(|i| {
                let q = ctx.primes()[i];
                (0..ctx.n()).map(|_| rng.next_u64() % q).collect()
            })
            .collect();
        RnsPoly {
            ctx: Arc::clone(ctx),
            limbs,
            is_ntt: true,
        }
    }

    /// Random ternary element with coefficients in `{-1, 0, 1}`
    /// (coefficient domain).
    pub fn random_ternary(ctx: &Arc<CkksContext>, num_limbs: usize, rng: &mut Rng64) -> Self {
        let coeffs: Vec<i64> = (0..ctx.n()).map(|_| rng.next_below(3) as i64 - 1).collect();
        Self::from_signed_coeffs(ctx, &coeffs, num_limbs)
    }

    /// Random error element with discrete-Gaussian-ish coefficients of
    /// standard deviation `ctx.sigma()` (coefficient domain).
    pub fn random_error(ctx: &Arc<CkksContext>, num_limbs: usize, rng: &mut Rng64) -> Self {
        let sigma = ctx.sigma();
        let coeffs: Vec<i64> = (0..ctx.n())
            .map(|_| (rng.next_gaussian() as f64 * sigma).round() as i64)
            .collect();
        Self::from_signed_coeffs(ctx, &coeffs, num_limbs)
    }

    /// Number of limbs (level + 1).
    pub fn num_limbs(&self) -> usize {
        self.limbs.len()
    }

    /// Whether the element is in NTT (evaluation) form.
    pub fn is_ntt(&self) -> bool {
        self.is_ntt
    }

    /// Raw limb access.
    pub fn limb(&self, i: usize) -> &[u64] {
        &self.limbs[i]
    }

    /// Mutable raw limb access.
    pub fn limb_mut(&mut self, i: usize) -> &mut [u64] {
        &mut self.limbs[i]
    }

    /// Shared context.
    pub fn context(&self) -> &Arc<CkksContext> {
        &self.ctx
    }

    /// Converts to NTT form in place (no-op if already there).
    pub fn to_ntt(&mut self) {
        if self.is_ntt {
            return;
        }
        for (i, limb) in self.limbs.iter_mut().enumerate() {
            self.ctx.ntt[i].forward(limb);
        }
        self.is_ntt = true;
    }

    /// Converts to coefficient form in place (no-op if already there).
    pub fn to_coeff(&mut self) {
        if !self.is_ntt {
            return;
        }
        for (i, limb) in self.limbs.iter_mut().enumerate() {
            self.ctx.ntt[i].inverse(limb);
        }
        self.is_ntt = false;
    }

    fn binop(&self, other: &RnsPoly, f: impl Fn(u64, u64, u64) -> u64) -> RnsPoly {
        assert_eq!(self.is_ntt, other.is_ntt, "domain mismatch");
        assert_eq!(self.num_limbs(), other.num_limbs(), "level mismatch");
        let limbs = self
            .limbs
            .iter()
            .zip(&other.limbs)
            .enumerate()
            .map(|(i, (a, b))| {
                let q = self.ctx.primes()[i];
                a.iter().zip(b).map(|(&x, &y)| f(x, y, q)).collect()
            })
            .collect();
        RnsPoly {
            ctx: Arc::clone(&self.ctx),
            limbs,
            is_ntt: self.is_ntt,
        }
    }

    /// Ring addition.
    ///
    /// # Panics
    ///
    /// Panics on level or domain mismatch.
    pub fn add(&self, other: &RnsPoly) -> RnsPoly {
        self.binop(other, add_mod)
    }

    /// Ring subtraction.
    ///
    /// # Panics
    ///
    /// Panics on level or domain mismatch.
    pub fn sub(&self, other: &RnsPoly) -> RnsPoly {
        self.binop(other, sub_mod)
    }

    /// Ring multiplication (pointwise; both operands must be in NTT
    /// form).
    ///
    /// # Panics
    ///
    /// Panics on level mismatch or if either operand is in coefficient
    /// form.
    pub fn mul(&self, other: &RnsPoly) -> RnsPoly {
        assert!(self.is_ntt && other.is_ntt, "mul requires NTT form");
        self.binop(other, mul_mod)
    }

    /// Negation.
    pub fn neg(&self) -> RnsPoly {
        let limbs = self
            .limbs
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let q = self.ctx.primes()[i];
                a.iter().map(|&x| if x == 0 { 0 } else { q - x }).collect()
            })
            .collect();
        RnsPoly {
            ctx: Arc::clone(&self.ctx),
            limbs,
            is_ntt: self.is_ntt,
        }
    }

    /// Multiplies every limb by a per-limb scalar residue.
    ///
    /// # Panics
    ///
    /// Panics if `scalars.len() != num_limbs()`.
    pub fn mul_scalar_residues(&self, scalars: &[u64]) -> RnsPoly {
        assert_eq!(scalars.len(), self.num_limbs(), "scalar count mismatch");
        let limbs = self
            .limbs
            .iter()
            .zip(scalars)
            .enumerate()
            .map(|(i, (a, &s))| {
                let q = self.ctx.primes()[i];
                a.iter().map(|&x| mul_mod(x, s, q)).collect()
            })
            .collect();
        RnsPoly {
            ctx: Arc::clone(&self.ctx),
            limbs,
            is_ntt: self.is_ntt,
        }
    }

    /// Drops the last limb without rescaling (plain modulus switch;
    /// valid when the represented value is small enough).
    ///
    /// # Panics
    ///
    /// Panics if only one limb remains.
    pub fn drop_last_limb(&mut self) {
        assert!(self.num_limbs() > 1, "cannot drop the last limb");
        self.limbs.pop();
    }

    /// CKKS rescale: divides by the last prime (rounding) and drops
    /// that limb. Input may be in either domain; output stays in the
    /// input domain.
    ///
    /// # Panics
    ///
    /// Panics if only one limb remains.
    pub fn rescale(&mut self) {
        assert!(self.num_limbs() > 1, "cannot rescale the last limb");
        let was_ntt = self.is_ntt;
        self.to_coeff();
        let last = self.limbs.pop().expect("non-empty");
        let q_last = self.ctx.primes()[self.limbs.len()];
        let half = q_last / 2;
        for (i, limb) in self.limbs.iter_mut().enumerate() {
            let q = self.ctx.primes()[i];
            let q_last_inv = inv_mod(q_last % q, q);
            let q_last_mod = q_last % q;
            for (x, &l) in limb.iter_mut().zip(&last) {
                // Round(X / q_last) = (X - l') / q_last where l' is the
                // centered remainder of X mod q_last.
                let mut l_centered = l % q;
                if l >= half {
                    l_centered = sub_mod(l_centered, q_last_mod, q);
                }
                let num = sub_mod(*x, l_centered, q);
                *x = mul_mod(num, q_last_inv, q);
            }
        }
        if was_ntt {
            self.to_ntt();
        } else {
            self.is_ntt = false;
        }
    }

    /// Applies the Galois automorphism `X ↦ X^g` for odd `g`.
    ///
    /// In the negacyclic ring `Z_Q[X]/(X^n+1)` the monomial `X^i` maps
    /// to `±X^{(i·g) mod n}` with the sign flipped whenever
    /// `(i·g) mod 2n ≥ n` (because `X^n = −1`). The result is returned
    /// in coefficient form regardless of the input domain.
    ///
    /// # Panics
    ///
    /// Panics if `g` is even or not in `1..2n`.
    pub fn automorphism(&self, g: usize) -> RnsPoly {
        let n = self.ctx.n();
        assert!(
            g % 2 == 1 && g >= 1 && g < 2 * n,
            "invalid Galois element {g}"
        );
        let mut src = self.clone();
        src.to_coeff();
        let mut out = RnsPoly {
            ctx: Arc::clone(&self.ctx),
            limbs: vec![vec![0u64; n]; self.num_limbs()],
            is_ntt: false,
        };
        for (limb_idx, limb) in src.limbs.iter().enumerate() {
            let q = self.ctx.primes()[limb_idx];
            let dst = &mut out.limbs[limb_idx];
            for (i, &c) in limb.iter().enumerate() {
                let e = (i * g) % (2 * n);
                if e < n {
                    dst[e] = c;
                } else {
                    dst[e - n] = if c == 0 { 0 } else { q - c };
                }
            }
        }
        out
    }

    /// Reconstructs the centered signed value of coefficient `idx`
    /// using the first `use_limbs` limbs via exact CRT in `i128`.
    ///
    /// Only sound when the true centered value fits in the product of
    /// those primes; callers use 1–2 limbs where values are ≤ 2^100.
    ///
    /// # Panics
    ///
    /// Panics in NTT form, or if `use_limbs` is 0, exceeds the limb
    /// count, or the prime product overflows `i128` headroom.
    pub fn coeff_to_i128(&self, idx: usize, use_limbs: usize) -> i128 {
        assert!(!self.is_ntt, "coefficient access requires coefficient form");
        assert!(use_limbs >= 1 && use_limbs <= self.num_limbs());
        let mut q_prod: i128 = 1;
        for i in 0..use_limbs {
            q_prod = q_prod
                .checked_mul(self.ctx.primes()[i] as i128)
                .expect("prime product overflow");
        }
        // Garner / CRT via incremental reconstruction.
        let mut x: i128 = self.limbs[0][idx] as i128;
        let mut modulus: i128 = self.ctx.primes()[0] as i128;
        for i in 1..use_limbs {
            let q = self.ctx.primes()[i] as i128;
            let r = self.limbs[i][idx] as i128;
            // Find t with x + modulus * t ≡ r (mod q).
            let m_inv = inv_mod((modulus.rem_euclid(q)) as u64, q as u64) as i128;
            let t = ((r - x).rem_euclid(q) * m_inv).rem_euclid(q);
            x += modulus * t;
            modulus *= q;
        }
        debug_assert_eq!(modulus, q_prod);
        if x > q_prod / 2 {
            x - q_prod
        } else {
            x
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular::ntt_primes;

    fn ctx() -> Arc<CkksContext> {
        let mut primes = ntt_primes(40, 3, 64);
        primes.insert(0, ntt_primes(50, 1, 64)[0]);
        CkksContext::new(64, primes, (1u64 << 30) as f64)
    }

    #[test]
    fn from_signed_roundtrip() {
        let c = ctx();
        let coeffs: Vec<i64> = (0..64).map(|i| i as i64 - 32).collect();
        let p = RnsPoly::from_signed_coeffs(&c, &coeffs, 2);
        for (i, &v) in coeffs.iter().enumerate() {
            assert_eq!(p.coeff_to_i128(i, 2), v as i128);
        }
    }

    #[test]
    fn ntt_roundtrip_preserves_value() {
        let c = ctx();
        let coeffs: Vec<i64> = (0..64).map(|i| (i as i64 * 7919) % 1000 - 500).collect();
        let mut p = RnsPoly::from_signed_coeffs(&c, &coeffs, 3);
        p.to_ntt();
        p.to_coeff();
        // Reconstruct with two limbs (the 50+40+40-bit product would
        // overflow the i128 CRT headroom; values are tiny anyway).
        for (i, &v) in coeffs.iter().enumerate() {
            assert_eq!(p.coeff_to_i128(i, 2), v as i128);
        }
    }

    #[test]
    fn add_matches_integer_add() {
        let c = ctx();
        let a: Vec<i64> = (0..64).map(|i| i as i64).collect();
        let b: Vec<i64> = (0..64).map(|i| 2 * i as i64 - 10).collect();
        let pa = RnsPoly::from_signed_coeffs(&c, &a, 2);
        let pb = RnsPoly::from_signed_coeffs(&c, &b, 2);
        let s = pa.add(&pb);
        for i in 0..64 {
            assert_eq!(s.coeff_to_i128(i, 2), (a[i] + b[i]) as i128);
        }
    }

    #[test]
    fn mul_matches_negacyclic_reference() {
        let c = ctx();
        // a = X + 2, b = X^63 (so a*b = X^64 + 2X^63 = -1 + 2X^63).
        let mut a = vec![0i64; 64];
        a[0] = 2;
        a[1] = 1;
        let mut b = vec![0i64; 64];
        b[63] = 1;
        let mut pa = RnsPoly::from_signed_coeffs(&c, &a, 2);
        let mut pb = RnsPoly::from_signed_coeffs(&c, &b, 2);
        pa.to_ntt();
        pb.to_ntt();
        let mut prod = pa.mul(&pb);
        prod.to_coeff();
        assert_eq!(prod.coeff_to_i128(0, 2), -1);
        assert_eq!(prod.coeff_to_i128(63, 2), 2);
        for i in 1..63 {
            assert_eq!(prod.coeff_to_i128(i, 2), 0);
        }
    }

    #[test]
    fn neg_is_additive_inverse() {
        let c = ctx();
        let coeffs: Vec<i64> = (0..64).map(|i| i as i64 * 3 - 50).collect();
        let p = RnsPoly::from_signed_coeffs(&c, &coeffs, 2);
        let z = p.add(&p.neg());
        for i in 0..64 {
            assert_eq!(z.coeff_to_i128(i, 2), 0);
        }
    }

    #[test]
    fn rescale_divides_by_last_prime() {
        let c = ctx();
        let q_last = c.primes()[2] as i128;
        // Encode values that are exact multiples of q_last.
        let coeffs: Vec<i64> = (0..64).map(|i| i as i64 - 32).collect();
        let scaled: Vec<i128> = coeffs.iter().map(|&v| v as i128 * q_last).collect();
        let mut p = RnsPoly::from_signed_coeffs_i128(&c, &scaled, 3);
        p.rescale();
        assert_eq!(p.num_limbs(), 2);
        for (i, &v) in coeffs.iter().enumerate() {
            let got = p.coeff_to_i128(i, 2);
            assert!((got - v as i128).abs() <= 1, "coeff {i}: {got} vs {v}");
        }
    }

    #[test]
    fn ternary_and_error_sampling_bounds() {
        let c = ctx();
        let mut rng = Rng64::new(5);
        let mut t = RnsPoly::random_ternary(&c, 2, &mut rng);
        t.to_coeff();
        for i in 0..64 {
            assert!(t.coeff_to_i128(i, 2).abs() <= 1);
        }
        let mut e = RnsPoly::random_error(&c, 2, &mut rng);
        e.to_coeff();
        for i in 0..64 {
            assert!(e.coeff_to_i128(i, 2).abs() <= 30, "error too large");
        }
    }

    #[test]
    fn automorphism_identity() {
        let c = ctx();
        let coeffs: Vec<i64> = (0..64).map(|i| i as i64 * 13 - 100).collect();
        let p = RnsPoly::from_signed_coeffs(&c, &coeffs, 2);
        let q = p.automorphism(1);
        for (i, &v) in coeffs.iter().enumerate() {
            assert_eq!(q.coeff_to_i128(i, 2), v as i128);
        }
    }

    #[test]
    fn automorphism_monomial_sign_wrap() {
        // X^1 under g = 2n-1 maps to X^(2n-1 mod 2n) = X^{n-1} with a
        // sign flip (exponent 2n-1 >= n).
        let c = ctx();
        let n = 64;
        let mut coeffs = vec![0i64; n];
        coeffs[1] = 1;
        let p = RnsPoly::from_signed_coeffs(&c, &coeffs, 2);
        let q = p.automorphism(2 * n - 1);
        assert_eq!(q.coeff_to_i128(n - 1, 2), -1);
        for i in 0..n - 1 {
            assert_eq!(q.coeff_to_i128(i, 2), 0, "coeff {i}");
        }
    }

    #[test]
    fn automorphism_composes() {
        // φ_g ∘ φ_h = φ_{g·h mod 2n}.
        let c = ctx();
        let n = 64;
        let coeffs: Vec<i64> = (0..n).map(|i| (i as i64 * 31) % 17 - 8).collect();
        let p = RnsPoly::from_signed_coeffs(&c, &coeffs, 2);
        let (g, h) = (5usize, 25usize);
        let lhs = p.automorphism(g).automorphism(h);
        let rhs = p.automorphism((g * h) % (2 * n));
        for i in 0..n {
            assert_eq!(lhs.coeff_to_i128(i, 2), rhs.coeff_to_i128(i, 2));
        }
    }

    #[test]
    fn automorphism_is_ring_homomorphism() {
        // φ_g(a · b) = φ_g(a) · φ_g(b).
        let c = ctx();
        let n = 64;
        let a: Vec<i64> = (0..n).map(|i| (i as i64 % 5) - 2).collect();
        let b: Vec<i64> = (0..n).map(|i| ((i as i64 * 3) % 7) - 3).collect();
        let mut pa = RnsPoly::from_signed_coeffs(&c, &a, 2);
        let mut pb = RnsPoly::from_signed_coeffs(&c, &b, 2);
        pa.to_ntt();
        pb.to_ntt();
        let prod = pa.mul(&pb);
        let lhs = prod.automorphism(5);
        let mut ga = pa.automorphism(5);
        let mut gb = pb.automorphism(5);
        ga.to_ntt();
        gb.to_ntt();
        let mut rhs = ga.mul(&gb);
        rhs.to_coeff();
        for i in 0..n {
            assert_eq!(
                lhs.coeff_to_i128(i, 2),
                rhs.coeff_to_i128(i, 2),
                "coeff {i}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "invalid Galois element")]
    fn automorphism_rejects_even_g() {
        let c = ctx();
        let p = RnsPoly::zero(&c, 2);
        let _ = p.automorphism(4);
    }

    #[test]
    fn drop_last_limb_keeps_value() {
        let c = ctx();
        let coeffs: Vec<i64> = (0..64).map(|i| i as i64).collect();
        let mut p = RnsPoly::from_signed_coeffs(&c, &coeffs, 3);
        p.drop_last_limb();
        assert_eq!(p.num_limbs(), 2);
        for (i, &v) in coeffs.iter().enumerate() {
            assert_eq!(p.coeff_to_i128(i, 2), v as i128);
        }
    }
}
