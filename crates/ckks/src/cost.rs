//! Analytic cost model for leveled PAF evaluation.
//!
//! Counts the primitive ring operations a PAF-ReLU consumes at given
//! parameters, without executing them. Used to sanity-check measured
//! latencies and to project costs at the paper's N = 32768 scale
//! without running it.

use crate::params::CkksParams;
use smartpaf_polyfit::{CompositePaf, OddPowerSchedule};

/// Primitive-operation counts for one encrypted PAF-ReLU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpCounts {
    /// Ciphertext-ciphertext multiplications (each includes a
    /// relinearisation).
    pub ct_mults: usize,
    /// Plaintext-constant multiplications.
    pub const_mults: usize,
    /// Rescale operations.
    pub rescales: usize,
    /// Number-theoretic transforms across all limbs (the dominant
    /// kernel).
    pub ntts: usize,
    /// 64-bit modular multiply-accumulate operations (≈ total work).
    pub modmuls: u128,
}

/// Digit count of the relinearisation gadget for a prime of `bits`
/// bits (mirrors `keys::DIGIT_BITS`).
fn digits_for(bits: u32) -> usize {
    bits.div_ceil(crate::keys::DIGIT_BITS) as usize
}

/// Digit count of the hybrid gadget at `limbs` limbs: ⌈limbs/ω⌉ with
/// ω clamped to the chain length. Only meaningful when
/// `params.ks_digit_limbs > 0`.
pub fn hybrid_digits(params: &CkksParams, limbs: usize) -> usize {
    let omega = params.ks_digit_limbs.min(limbs).max(1);
    limbs.div_ceil(omega)
}

/// NTT passes consumed by one key switch at `limbs` limbs under the
/// configured gadget.
///
/// Per-prime (`ks_digit_limbs == 0`): one digit-lift NTT per
/// (prime, base-2^16 digit) component.
///
/// Hybrid ω: `limbs` inverse NTTs of the input, one forward NTT per
/// (digit, extended-basis limb) of the raised decomposition, then the
/// mod-down round trip — per accumulator component, `k` inverse NTTs
/// of the special limbs plus `limbs` forward NTTs of the correction.
pub fn key_switch_ntts(params: &CkksParams, limbs: usize) -> usize {
    if params.ks_digit_limbs == 0 {
        limbs * digits_for(params.scale_prime_bits)
    } else {
        let omega = params.ks_digit_limbs.min(limbs).max(1);
        let k = omega;
        let ext = limbs + k;
        let digits = limbs.div_ceil(omega);
        limbs + digits * ext + 2 * (k + limbs)
    }
}

/// Modular multiplies of one key switch at `limbs` limbs under the
/// configured gadget (the relinearisation/rotation core, excluding the
/// tensor product or automorphism around it).
///
/// Per-prime: 2 key-component ring mults per (prime, digit) component
/// against each of `limbs` input limbs — the digit-lift NTTs are
/// tracked separately in [`key_switch_ntts`], mirroring the pre-gadget
/// model so recorded plans re-price identically.
///
/// Hybrid ω (exact counts for the implemented kernel): the NTT passes
/// above at n mults each, plus per-coefficient work — Shoup scaling by
/// (Q_j/q_i)^-1 (`limbs`·n), the raised accumulation Σ yᵢ·(Q_j/q_i)
/// into the out-of-group extended limbs (`digits·(ext−ω)·ω`·n), the
/// lazy inner products against both key components (`2·digits·ext`·n),
/// and the mod-down by P (`2·(k + limbs·k + limbs)`·n).
pub fn key_switch_modmuls(params: &CkksParams, limbs: usize) -> u128 {
    let n = params.n as u128;
    if params.ks_digit_limbs == 0 {
        let digits = digits_for(params.scale_prime_bits);
        2 * (limbs as u128) * ((limbs * digits) as u128) * n
    } else {
        let omega = params.ks_digit_limbs.min(limbs).max(1);
        let k = omega;
        let ext = limbs + k;
        let digits = limbs.div_ceil(omega);
        let ntts = key_switch_ntts(params, limbs) as u128;
        let scale = limbs as u128;
        let raise = (digits * (ext - omega) * omega) as u128;
        let accumulate = 2 * (digits * ext) as u128;
        let mod_down = 2 * (k + limbs * k + limbs) as u128;
        (ntts + scale + raise + accumulate + mod_down) * n
    }
}

/// Work of one ciphertext-ciphertext multiply + relinearisation at
/// `limbs` limbs, in 64-bit modular multiplies: 4 limb-wise ring mults
/// for the tensor product plus the gadget key switch of the degree-2
/// component.
pub fn ct_mult_modmuls(params: &CkksParams, limbs: usize) -> u128 {
    4 * (limbs as u128) * (params.n as u128) + key_switch_modmuls(params, limbs)
}

/// Work of one rescale leaving `limbs` limbs, in modular multiplies
/// (iNTT + NTT per remaining limb plus the division pass).
pub fn rescale_modmuls(params: &CkksParams, limbs: usize) -> u128 {
    (limbs as u128) * (params.n as u128) * 3
}

/// Work of one plaintext-constant multiply at `limbs` limbs, in
/// modular multiplies.
pub fn const_mult_modmuls(params: &CkksParams, limbs: usize) -> u128 {
    (limbs as u128) * (params.n as u128)
}

/// Counts the operations of one PAF-ReLU at the given parameters.
///
/// Mirrors the `PafEvaluator` schedule: per stage, an even-power
/// ladder by squaring plus one (const-mult + bit-product chain) per
/// non-zero odd term; then one ct-mult and one const-mult for the ReLU
/// construction.
pub fn relu_op_counts(params: &CkksParams, paf: &CompositePaf) -> OpCounts {
    let mut level = params.depth + 1; // limbs at the current point
    let mut c = OpCounts {
        ct_mults: 0,
        const_mults: 0,
        rescales: 0,
        ntts: 0,
        modmuls: 0,
    };
    let add_ct_mult = |c: &mut OpCounts, limbs: usize| {
        c.ct_mults += 1;
        c.ntts += key_switch_ntts(params, limbs);
        c.modmuls += ct_mult_modmuls(params, limbs);
    };
    let add_rescale = |c: &mut OpCounts, limbs: usize| {
        c.rescales += 1;
        c.ntts += 2 * limbs;
        c.modmuls += rescale_modmuls(params, limbs);
    };
    let add_const = |c: &mut OpCounts, limbs: usize| {
        c.const_mults += 1;
        c.modmuls += const_mult_modmuls(params, limbs);
    };

    for stage in paf.stages() {
        // Same schedule object the PafEvaluator executes.
        let sched = OddPowerSchedule::new(stage);
        let odd = sched.odd_coeffs();
        if sched.k_max() == 0 {
            add_const(&mut c, level);
            add_rescale(&mut c, level - 1);
            level -= 1;
            continue;
        }
        let bits = sched.ladder_bits();
        // Ladder squarings.
        for j in 0..bits {
            let limbs = level - j as usize;
            add_ct_mult(&mut c, limbs);
            add_rescale(&mut c, limbs - 1);
        }
        // Terms.
        for (k, &a) in odd.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            add_const(&mut c, level);
            add_rescale(&mut c, level - 1);
            let mut cur = level - 1;
            for j in 0..bits {
                if (k >> j) & 1 == 1 {
                    add_ct_mult(&mut c, cur);
                    add_rescale(&mut c, cur - 1);
                    cur -= 1;
                }
            }
        }
        level -= bits as usize;
    }
    // ReLU construction: x * half_sign + 0.5x.
    add_ct_mult(&mut c, level);
    add_rescale(&mut c, level - 1);
    add_const(&mut c, level);
    add_rescale(&mut c, level - 1);
    c
}

/// Projects the runtime of `counts` given a measured per-modmul cost
/// (seconds), the simplest useful calibration.
pub fn project_seconds(counts: &OpCounts, seconds_per_modmul: f64) -> f64 {
    counts.modmuls as f64 * seconds_per_modmul
}

/// Work of one slot rotation (Galois automorphism + key switch) at the
/// given limb count, in 64-bit modular multiplies.
///
/// A rotation costs the same key-switch as a relinearisation plus the
/// automorphism permutation, and consumes no level.
pub fn rotation_modmuls(params: &CkksParams, limbs: usize) -> u128 {
    let n = params.n as u128;
    if params.ks_digit_limbs == 0 {
        // iNTT to coefficient form (2 components), permutation
        // (free-ish), then the per-prime key switch. The digit-lift
        // NTTs are charged here at n mults each, as before the gadget.
        let ntts = 2 * limbs + key_switch_ntts(params, limbs);
        (ntts as u128) * n + key_switch_modmuls(params, limbs)
    } else {
        // c0's automorphism round trip; the hybrid key switch of c1
        // already prices its own NTT passes.
        2 * (limbs as u128) * n + key_switch_modmuls(params, limbs)
    }
}

/// Work of one Halevi–Shoup matrix–vector product with `diagonals`
/// nonzero diagonals using the baby-step/giant-step schedule, in
/// modular multiplies.
pub fn matvec_bsgs_modmuls(
    params: &CkksParams,
    dim: usize,
    diagonals: usize,
    limbs: usize,
) -> u128 {
    let n = params.n as u128;
    let g1 = (dim as f64).sqrt().ceil() as usize;
    let g2 = dim.div_ceil(g1);
    let rotations = (g1.min(diagonals).saturating_sub(1) + g2.min(diagonals)) as u128;
    let plain_mults = diagonals as u128 * (limbs as u128) * n;
    rotations * rotation_modmuls(params, limbs) + plain_mults
}

/// Modeled cost of one simulated bootstrap, in modular multiplies.
///
/// Calibrated to the published CKKS bootstrapping structure: roughly
/// `slots`-dependent homomorphic encode/decode (CoeffToSlot/SlotToCoeff,
/// ~2·log2(slots) rotations each at full level) plus an EvalMod sine
/// approximation of multiplicative depth ~10. This makes the
/// leveled-vs-bootstrapped trade-off in the latency model concrete: at
/// default parameters one bootstrap costs as much as several 27-degree
/// PAF evaluations, which is why the paper's low-degree PAFs avoid it.
pub fn bootstrap_modmuls(params: &CkksParams) -> u128 {
    let full = params.depth + 1;
    let slots = (params.n / 2) as u128;
    let log_slots = 128 - slots.leading_zeros() as u128;
    let linear_rotations = 4 * log_slots; // CoeffToSlot + SlotToCoeff
    let rot = rotation_modmuls(params, full);
    // EvalMod: a depth-10 odd polynomial ≈ 14 ct-mults at full level.
    let ct_mult = ct_mult_modmuls(params, full);
    linear_rotations * rot + 14 * ct_mult
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartpaf_polyfit::PafForm;

    #[test]
    fn deeper_paf_costs_more() {
        let params = CkksParams::default_params();
        let cheap = relu_op_counts(&params, &CompositePaf::from_form(PafForm::F1G2));
        let rich = relu_op_counts(&params, &CompositePaf::from_form(PafForm::MinimaxDeg27));
        assert!(rich.ct_mults > cheap.ct_mults);
        assert!(rich.modmuls > cheap.modmuls);
        assert!(rich.rescales > cheap.rescales);
    }

    #[test]
    fn rescale_count_matches_depth() {
        // Every level consumed corresponds to exactly one rescale of
        // the main operand; ladder/term bookkeeping adds more, but the
        // total must be at least the ReLU depth.
        let params = CkksParams::default_params();
        for form in PafForm::all() {
            let paf = CompositePaf::from_form(form);
            let c = relu_op_counts(&params, &paf);
            assert!(
                c.rescales > paf.mult_depth(),
                "{form}: {} rescales",
                c.rescales
            );
        }
    }

    #[test]
    fn larger_ring_scales_work_linearly() {
        let small = CkksParams {
            n: 4096,
            ..CkksParams::default_params()
        };
        let big = CkksParams {
            n: 8192,
            ..CkksParams::default_params()
        };
        let paf = CompositePaf::from_form(PafForm::Alpha7);
        let a = relu_op_counts(&small, &paf);
        let b = relu_op_counts(&big, &paf);
        assert_eq!(a.ct_mults, b.ct_mults);
        assert_eq!(b.modmuls, a.modmuls * 2);
    }

    #[test]
    fn rotation_cheaper_than_bootstrap() {
        let params = CkksParams::default_params();
        let rot = rotation_modmuls(&params, params.depth + 1);
        let bs = bootstrap_modmuls(&params);
        assert!(bs > 20 * rot, "bootstrap {bs} vs rotation {rot}");
    }

    #[test]
    fn bootstrap_dwarfs_low_degree_paf() {
        // The quantitative version of the paper's motivation: a
        // bootstrap costs more than an entire low-degree PAF-ReLU.
        let params = CkksParams::default_params();
        let paf = relu_op_counts(&params, &CompositePaf::from_form(PafForm::F1G2));
        assert!(bootstrap_modmuls(&params) > paf.modmuls);
    }

    #[test]
    fn bsgs_beats_naive_rotation_count_model() {
        // For a dense 64-dim matrix, BSGS work is well below 64 naive
        // rotations + mults.
        let params = CkksParams::default_params();
        let limbs = 8;
        let dense = matvec_bsgs_modmuls(&params, 64, 64, limbs);
        let naive = 64 * rotation_modmuls(&params, limbs) + 64 * (limbs as u128) * params.n as u128;
        assert!(dense < naive, "bsgs {dense} vs naive {naive}");
    }

    #[test]
    fn sparse_matvec_cheaper_than_dense() {
        let params = CkksParams::default_params();
        let sparse = matvec_bsgs_modmuls(&params, 64, 4, 8);
        let dense = matvec_bsgs_modmuls(&params, 64, 64, 8);
        assert!(sparse < dense);
    }

    #[test]
    fn primitive_helpers_compose_into_relu_counts() {
        // The public per-op helpers must stay the building blocks of
        // the full ReLU model: a hand-assembled degree-1 stage
        // (const mult + rescale, then the ReLU ct-mult + const + two
        // rescales) reproduces `relu_op_counts` exactly.
        let params = CkksParams::default_params();
        let paf = CompositePaf::new(vec![smartpaf_polyfit::Polynomial::from_odd(&[2.0])]);
        let c = relu_op_counts(&params, &paf);
        let top = params.depth + 1;
        let want = const_mult_modmuls(&params, top)
            + rescale_modmuls(&params, top - 1)
            + ct_mult_modmuls(&params, top - 1)
            + rescale_modmuls(&params, top - 2)
            + const_mult_modmuls(&params, top - 1)
            + rescale_modmuls(&params, top - 2);
        assert_eq!(c.modmuls, want);
        assert!(ct_mult_modmuls(&params, 8) > const_mult_modmuls(&params, 8));
    }

    #[test]
    fn per_prime_pricing_unchanged_by_gadget_refactor() {
        // Plans recorded before the hybrid gadget carry
        // ks_digit_limbs = 0 and must re-price to the exact pre-gadget
        // closed forms.
        let params = CkksParams {
            ks_digit_limbs: 0,
            ..CkksParams::default_params()
        };
        let n = params.n as u128;
        let digits = digits_for(params.scale_prime_bits);
        for limbs in [1usize, 5, 13] {
            assert_eq!(
                ct_mult_modmuls(&params, limbs),
                (limbs as u128) * n * (4 + 2 * (limbs * digits) as u128)
            );
            let ntts = 2 * limbs + limbs * digits;
            assert_eq!(
                rotation_modmuls(&params, limbs),
                (ntts as u128) * n + (limbs as u128) * n * (2 * (limbs * digits) as u128)
            );
            assert_eq!(key_switch_ntts(&params, limbs), limbs * digits);
        }
    }

    #[test]
    fn hybrid_gadget_prices_below_per_prime() {
        // The point of the gadget: at a deep chain the modeled relin
        // cost drops by the same >= 1.5x the measured kernel shows.
        let hybrid = CkksParams::default_params();
        assert_eq!(hybrid.ks_digit_limbs, 3);
        let per_prime = CkksParams {
            ks_digit_limbs: 0,
            ..hybrid
        };
        let limbs = hybrid.depth + 1; // 13 at defaults
        let h = ct_mult_modmuls(&hybrid, limbs);
        let p = ct_mult_modmuls(&per_prime, limbs);
        assert!(
            p as f64 / h as f64 >= 1.5,
            "hybrid {h} vs per-prime {p} modmuls"
        );
        assert!(rotation_modmuls(&hybrid, limbs) < rotation_modmuls(&per_prime, limbs));
        assert_eq!(hybrid_digits(&hybrid, limbs), 5);
    }

    #[test]
    fn hybrid_digit_count_clamps_to_chain() {
        let params = CkksParams::default_params();
        assert_eq!(hybrid_digits(&params, 1), 1);
        assert_eq!(hybrid_digits(&params, 2), 1);
        assert_eq!(hybrid_digits(&params, 3), 1);
        assert_eq!(hybrid_digits(&params, 4), 2);
        // Cost stays monotone in the chain length.
        let mut prev = 0u128;
        for limbs in 1..=params.depth + 1 {
            let c = ct_mult_modmuls(&params, limbs);
            assert!(c > prev);
            prev = c;
        }
    }

    #[test]
    fn projection_is_linear() {
        let params = CkksParams::default_params();
        let c = relu_op_counts(&params, &CompositePaf::from_form(PafForm::F2G2));
        let t1 = project_seconds(&c, 1e-9);
        let t2 = project_seconds(&c, 2e-9);
        assert!((t2 - 2.0 * t1).abs() < 1e-12);
    }
}
