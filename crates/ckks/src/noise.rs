//! Noise measurement and simulated bootstrapping.
//!
//! The paper's central latency argument is that high-degree PAFs need
//! long multiplication chains "with bootstrapping" while low-degree
//! PAFs fit in a leveled budget. This module provides (a) slot-level
//! noise measurement so experiments can report precision loss per
//! depth consumed, and (b) a **simulated** bootstrap — a secret-key
//! recryption that refreshes a ciphertext to the top level while
//! charging the analytic cost model ([`crate::cost`]). It reproduces
//! the *accounting* of bootstrapping (when it triggers, what it costs),
//! not the cryptographic procedure itself; this substitution is
//! documented in DESIGN.md.

use crate::cipher::{Ciphertext, Evaluator};
use smartpaf_tensor::Rng64;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Slot-error statistics of a ciphertext against expected values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseReport {
    /// Largest absolute slot error.
    pub max_abs_error: f64,
    /// Mean absolute slot error.
    pub mean_abs_error: f64,
    /// Equivalent clean bits: `-log2(max_abs_error)` (∞-safe: capped
    /// at 64 for exact matches).
    pub clean_bits: f64,
}

/// Decrypts `ct` and compares the first `expected.len()` slots to
/// `expected`.
///
/// # Panics
///
/// Panics if `expected` is empty or exceeds the slot capacity.
pub fn measure_noise(ev: &Evaluator, ct: &Ciphertext, expected: &[f64]) -> NoiseReport {
    assert!(!expected.is_empty(), "expected values must be non-empty");
    let got = ev.decrypt_values(ct, expected.len());
    let mut max_err = 0.0f64;
    let mut sum_err = 0.0f64;
    for (g, e) in got.iter().zip(expected) {
        let err = (g - e).abs();
        max_err = max_err.max(err);
        sum_err += err;
    }
    let clean_bits = if max_err == 0.0 {
        64.0
    } else {
        (-max_err.log2()).min(64.0)
    };
    NoiseReport {
        max_abs_error: max_err,
        mean_abs_error: sum_err / expected.len() as f64,
        clean_bits,
    }
}

/// A simulated bootstrapper: refreshes ciphertexts back to the top of
/// the modulus chain by secret-key recryption, counting invocations so
/// experiments can charge the analytic bootstrap cost.
pub struct Bootstrapper {
    ev: Evaluator,
    slots_in_use: usize,
    refreshes: AtomicUsize,
    rng: Mutex<Rng64>,
}

impl std::fmt::Debug for Bootstrapper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bootstrapper")
            .field("slots_in_use", &self.slots_in_use)
            .field("refreshes", &self.refreshes.load(Ordering::Relaxed))
            .finish()
    }
}

impl Bootstrapper {
    /// Creates a bootstrapper tracking `slots_in_use` meaningful slots
    /// per ciphertext.
    ///
    /// # Panics
    ///
    /// Panics if `slots_in_use` is zero or exceeds the slot capacity.
    pub fn new(ev: Evaluator, slots_in_use: usize, seed: u64) -> Self {
        assert!(
            slots_in_use >= 1 && slots_in_use <= ev.context().slots(),
            "slots_in_use out of range"
        );
        Bootstrapper {
            ev,
            slots_in_use,
            refreshes: AtomicUsize::new(0),
            rng: Mutex::new(Rng64::new(seed)),
        }
    }

    /// The wrapped evaluator.
    pub fn evaluator(&self) -> &Evaluator {
        &self.ev
    }

    /// Refreshes a ciphertext to the top level, preserving slot values.
    ///
    /// When `slots_in_use` divides the slot count the decrypted logical
    /// vector is re-encrypted **replicated** (the [`crate::linear`]
    /// packing), so rotation-based pipelines keep working across a
    /// refresh; otherwise the remaining slots are zero.
    pub fn refresh(&self, ct: &Ciphertext) -> Ciphertext {
        self.refreshes.fetch_add(1, Ordering::Relaxed);
        let values = self.ev.decrypt_values(ct, self.slots_in_use);
        let mut rng = self.rng.lock().expect("poisoned");
        if self.ev.context().slots().is_multiple_of(self.slots_in_use) {
            self.ev.encrypt_replicated(&values, &mut rng)
        } else {
            self.ev.encrypt_values(&values, &mut rng)
        }
    }

    /// Returns `ct` untouched when it still has at least
    /// `needed_levels` rescales left, otherwise a refreshed copy.
    pub fn ensure_level(&self, ct: &Ciphertext, needed_levels: usize) -> Ciphertext {
        if ct.level() >= needed_levels {
            ct.clone()
        } else {
            self.refresh(ct)
        }
    }

    /// Number of refreshes performed so far.
    pub fn refresh_count(&self) -> usize {
        self.refreshes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyChain;
    use crate::params::CkksParams;

    fn setup(seed: u64) -> (Evaluator, Rng64) {
        let ctx = CkksParams::toy().build();
        let mut rng = Rng64::new(seed);
        let keys = KeyChain::generate(&ctx, &mut rng);
        (Evaluator::new(&keys), rng)
    }

    #[test]
    fn fresh_ciphertext_is_clean() {
        let (ev, mut rng) = setup(51);
        let vals = vec![0.5, -0.25, 1.0];
        let ct = ev.encrypt_values(&vals, &mut rng);
        let rep = measure_noise(&ev, &ct, &vals);
        assert!(rep.max_abs_error < 1e-4, "{rep:?}");
        assert!(rep.clean_bits > 13.0, "{rep:?}");
        assert!(rep.mean_abs_error <= rep.max_abs_error);
    }

    #[test]
    fn noise_grows_with_depth() {
        let (ev, mut rng) = setup(52);
        let x = 0.9f64;
        let mut ct = ev.encrypt_values(&[x], &mut rng);
        let fresh = measure_noise(&ev, &ct, &[x]).max_abs_error;
        let mut expect = x;
        for _ in 0..3 {
            ct = ev.square(&ct);
            ev.rescale(&mut ct);
            expect *= expect;
        }
        let deep = measure_noise(&ev, &ct, &[expect]).max_abs_error;
        assert!(deep > fresh, "deep {deep} vs fresh {fresh}");
    }

    #[test]
    fn refresh_restores_top_level() {
        let (ev, mut rng) = setup(53);
        let keys_levels = ev.context().max_level();
        let vals = vec![0.7, -0.2];
        let mut ct = ev.encrypt_values(&vals, &mut rng);
        // Burn most of the chain.
        for _ in 0..keys_levels - 1 {
            ct = ev.mul_const(&ct, 1.0);
        }
        assert_eq!(ct.level(), 1);
        let bs = Bootstrapper::new(ev.clone(), 2, 99);
        let fresh = bs.refresh(&ct);
        assert_eq!(fresh.level(), keys_levels);
        assert_eq!(bs.refresh_count(), 1);
        let rep = measure_noise(&ev, &fresh, &vals);
        assert!(rep.max_abs_error < 1e-3, "{rep:?}");
    }

    #[test]
    fn ensure_level_is_lazy() {
        let (ev, mut rng) = setup(54);
        let ct = ev.encrypt_values(&[0.1], &mut rng);
        let bs = Bootstrapper::new(ev.clone(), 1, 7);
        let same = bs.ensure_level(&ct, 2);
        assert_eq!(bs.refresh_count(), 0);
        assert_eq!(same.level(), ct.level());
        let low = ev.mul_const(&ct, 1.0);
        let needed = ct.level() + 1; // more than `low` has
        let refreshed = bs.ensure_level(&low, needed);
        assert_eq!(bs.refresh_count(), 1);
        assert_eq!(refreshed.level(), ev.context().max_level());
    }

    #[test]
    fn deep_paf_with_bootstrap_matches_shallow() {
        // Evaluate x^16 twice: once within budget, once forcing a
        // refresh in the middle; values must agree.
        let (ev, mut rng) = setup(55);
        let x = 0.8f64;
        let want = x.powi(16);
        let ct = ev.encrypt_values(&[x], &mut rng);
        let bs = Bootstrapper::new(ev.clone(), 1, 11);
        let mut a = ct.clone();
        for _ in 0..4 {
            a = ev.square(&a);
            ev.rescale(&mut a);
        }
        let mut b = ct.clone();
        for i in 0..4 {
            if i == 2 {
                b = bs.refresh(&b);
            }
            b = ev.square(&b);
            ev.rescale(&mut b);
        }
        let va = ev.decrypt_values(&a, 1)[0];
        let vb = ev.decrypt_values(&b, 1)[0];
        assert!((va - want).abs() < 2e-2, "{va} vs {want}");
        assert!((vb - want).abs() < 2e-2, "{vb} vs {want}");
        assert_eq!(bs.refresh_count(), 1);
    }
}
