//! Parameter presets.
//!
//! **Security disclaimer:** this crate is a *performance and accuracy
//! simulator* for the SMART-PAF experiments, not a hardened FHE
//! library. The presets trade ring dimension for wall-clock speed, so
//! most of them fall well short of 128-bit security. Use
//! [`CkksParams::paper_scale`] for parameters matching the paper's
//! SEAL configuration (N = 32768, ~881-bit modulus).

use crate::modular::{ntt_primes, ntt_primes_excluding};
use crate::rns::CkksContext;
use serde::{Deserialize, Error, Serialize, Value};
use std::sync::Arc;

/// A CKKS parameter preset: ring dimension, modulus chain layout and
/// encoding scale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkksParams {
    /// Ring dimension (power of two).
    pub n: usize,
    /// Bit size of the base (decode) prime.
    pub base_prime_bits: u32,
    /// Bit size of each rescaling prime.
    pub scale_prime_bits: u32,
    /// Number of rescaling primes = supported multiplication depth.
    pub depth: usize,
    /// Key-switch gadget digit size ω in RNS limbs: `0` selects the
    /// legacy per-prime digit decomposition; `1..=8` selects the hybrid
    /// gadget that groups ω limbs per digit against ω special primes,
    /// so a ciphertext with `L` limbs pays `⌈L/ω⌉` key-switch
    /// components instead of `L × ⌈bits/16⌉`.
    pub ks_digit_limbs: usize,
}

/// Largest supported hybrid digit size. The fast base conversion sums
/// ω products of two sub-2^62 residues in a `u128`; ω ≤ 8 keeps the
/// sum below 2^127 with no intermediate reduction.
pub const MAX_KS_DIGIT_LIMBS: usize = 8;

impl CkksParams {
    /// Tiny parameters for unit tests: N = 256, depth 8.
    pub fn toy() -> Self {
        CkksParams {
            n: 256,
            base_prime_bits: 60,
            scale_prime_bits: 40,
            depth: 12,
            ks_digit_limbs: 3,
        }
    }

    /// Default working parameters: N = 4096, depth 12 — enough for the
    /// 27-degree comparator's depth-10 sign evaluation plus the ReLU
    /// construction multiply, with margin.
    pub fn default_params() -> Self {
        CkksParams {
            n: 4096,
            base_prime_bits: 60,
            scale_prime_bits: 40,
            depth: 12,
            ks_digit_limbs: 3,
        }
    }

    /// Benchmark parameters: N = 8192, depth 12. Latency trends match
    /// the paper's setup at roughly quarter cost per ring op.
    pub fn benchmark() -> Self {
        CkksParams {
            n: 8192,
            base_prime_bits: 60,
            scale_prime_bits: 40,
            depth: 12,
            ks_digit_limbs: 3,
        }
    }

    /// Paper-matching scale: N = 32768 with ~881 modulus bits
    /// (60 + 20×40 = 860), the configuration the paper used in SEAL.
    /// Slow; opt-in for headline latency reproduction.
    pub fn paper_scale() -> Self {
        CkksParams {
            n: 32768,
            base_prime_bits: 60,
            scale_prime_bits: 40,
            depth: 20,
            ks_digit_limbs: 3,
        }
    }

    /// Total modulus bits in the chain.
    pub fn modulus_bits(&self) -> u32 {
        self.base_prime_bits + self.scale_prime_bits * self.depth as u32
    }

    /// Builds the runtime context (generates primes and NTT tables).
    ///
    /// With `ks_digit_limbs > 0` this also generates ω special primes
    /// (same bit size as the base prime, disjoint from the chain) that
    /// back the hybrid key-switch gadget.
    ///
    /// # Panics
    ///
    /// Panics on invalid dimensions (non-power-of-two `n`, prime sizes
    /// above 62 bits, `ks_digit_limbs > MAX_KS_DIGIT_LIMBS`).
    pub fn build(&self) -> Arc<CkksContext> {
        assert!(
            self.ks_digit_limbs <= MAX_KS_DIGIT_LIMBS,
            "ks_digit_limbs {} exceeds the supported maximum {}",
            self.ks_digit_limbs,
            MAX_KS_DIGIT_LIMBS
        );
        let mut primes = ntt_primes(self.base_prime_bits, 1, self.n);
        primes.extend(ntt_primes(self.scale_prime_bits, self.depth, self.n));
        let scale = 2f64.powi(self.scale_prime_bits as i32);
        if self.ks_digit_limbs == 0 {
            CkksContext::new(self.n, primes, scale)
        } else {
            let bits = self.base_prime_bits.max(self.scale_prime_bits);
            let special = ntt_primes_excluding(bits, self.ks_digit_limbs, self.n, &primes);
            CkksContext::with_special_primes(self.n, primes, special, scale)
        }
    }
}

impl Serialize for CkksParams {
    fn serialize(&self) -> Value {
        Value::object([
            ("n", self.n.serialize()),
            ("base_prime_bits", self.base_prime_bits.serialize()),
            ("scale_prime_bits", self.scale_prime_bits.serialize()),
            ("depth", self.depth.serialize()),
            ("ks_digit_limbs", self.ks_digit_limbs.serialize()),
        ])
    }
}

impl Deserialize for CkksParams {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let params = CkksParams {
            n: usize::deserialize(value.req("n")?)?,
            base_prime_bits: u32::deserialize(value.req("base_prime_bits")?)?,
            scale_prime_bits: u32::deserialize(value.req("scale_prime_bits")?)?,
            depth: usize::deserialize(value.req("depth")?)?,
            // Artifacts recorded before the hybrid gadget carry no
            // gadget field; they were priced and served per-prime, so
            // keep that semantics on load.
            ks_digit_limbs: match value.get("ks_digit_limbs") {
                Some(v) => usize::deserialize(v)?,
                None => 0,
            },
        };
        // The same conditions `build()` would panic on, reported as
        // parse errors so a corrupt artifact cannot take the process
        // down later.
        if !params.n.is_power_of_two() || params.n < 8 {
            return Err(Error::custom(format!(
                "ring dimension {} is not a power of two >= 8",
                params.n
            )));
        }
        if params.base_prime_bits > 62 || params.scale_prime_bits > 62 {
            return Err(Error::custom("prime sizes above 62 bits are unsupported"));
        }
        if params.ks_digit_limbs > MAX_KS_DIGIT_LIMBS {
            return Err(Error::custom(format!(
                "ks_digit_limbs {} exceeds the supported maximum {}",
                params.ks_digit_limbs, MAX_KS_DIGIT_LIMBS
            )));
        }
        Ok(params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serde_round_trip_and_validation() {
        let p = CkksParams::toy();
        let text = serde::json::to_string(&p.serialize());
        assert_eq!(
            CkksParams::deserialize(&serde::json::from_str(&text).unwrap()).unwrap(),
            p
        );
        for bad in [
            r#"{"n":300,"base_prime_bits":60,"scale_prime_bits":40,"depth":12}"#,
            r#"{"n":256,"base_prime_bits":63,"scale_prime_bits":40,"depth":12}"#,
            r#"{"n":256,"base_prime_bits":60,"depth":12}"#,
            r#"{"n":256,"base_prime_bits":60,"scale_prime_bits":40,"depth":12,"ks_digit_limbs":9}"#,
        ] {
            let v = serde::json::from_str(bad).unwrap();
            assert!(CkksParams::deserialize(&v).is_err(), "{bad}");
        }
    }

    #[test]
    fn missing_gadget_field_defaults_to_per_prime() {
        // Pre-gadget artifacts carry only the original four fields and
        // must keep loading — as per-prime, matching how they were
        // priced when recorded.
        let v = serde::json::from_str(
            r#"{"n":256,"base_prime_bits":60,"scale_prime_bits":40,"depth":12}"#,
        )
        .unwrap();
        let p = CkksParams::deserialize(&v).unwrap();
        assert_eq!(p.ks_digit_limbs, 0);
        assert!(p.build().special_primes().is_empty());
    }

    #[test]
    fn toy_builds() {
        let ctx = CkksParams::toy().build();
        assert_eq!(ctx.n(), 256);
        assert_eq!(ctx.primes().len(), 13);
        assert_eq!(ctx.max_level(), 12);
        assert_eq!(ctx.scale(), (1u64 << 40) as f64);
        // The hybrid gadget adds ω special primes outside the chain.
        assert_eq!(ctx.special_primes().len(), 3);
        for &p in ctx.special_primes() {
            assert!(!ctx.primes().contains(&p), "special prime {p} collides");
            assert_eq!((p - 1) % (2 * 256), 0);
        }
    }

    #[test]
    fn default_depth_covers_comparator() {
        // 27-degree PAF: depth 10 sign + 1 for ReLU = 11 < 12.
        let p = CkksParams::default_params();
        assert!(p.depth >= 11);
    }

    #[test]
    fn primes_distinct_and_friendly() {
        let ctx = CkksParams::toy().build();
        let mut seen = std::collections::HashSet::new();
        for &q in ctx.primes() {
            assert!(seen.insert(q), "duplicate prime {q}");
            assert_eq!((q - 1) % (2 * 256), 0);
        }
    }

    #[test]
    fn paper_scale_matches_published_magnitude() {
        let p = CkksParams::paper_scale();
        assert_eq!(p.n, 32768);
        // Paper: 881 modulus bits; ours is the same magnitude.
        assert!((p.modulus_bits() as i64 - 881).abs() < 30);
    }
}
