//! Parameter presets.
//!
//! **Security disclaimer:** this crate is a *performance and accuracy
//! simulator* for the SMART-PAF experiments, not a hardened FHE
//! library. The presets trade ring dimension for wall-clock speed, so
//! most of them fall well short of 128-bit security. Use
//! [`CkksParams::paper_scale`] for parameters matching the paper's
//! SEAL configuration (N = 32768, ~881-bit modulus).

use crate::modular::ntt_primes;
use crate::rns::CkksContext;
use serde::{Deserialize, Error, Serialize, Value};
use std::sync::Arc;

/// A CKKS parameter preset: ring dimension, modulus chain layout and
/// encoding scale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkksParams {
    /// Ring dimension (power of two).
    pub n: usize,
    /// Bit size of the base (decode) prime.
    pub base_prime_bits: u32,
    /// Bit size of each rescaling prime.
    pub scale_prime_bits: u32,
    /// Number of rescaling primes = supported multiplication depth.
    pub depth: usize,
}

impl CkksParams {
    /// Tiny parameters for unit tests: N = 256, depth 8.
    pub fn toy() -> Self {
        CkksParams {
            n: 256,
            base_prime_bits: 60,
            scale_prime_bits: 40,
            depth: 12,
        }
    }

    /// Default working parameters: N = 4096, depth 12 — enough for the
    /// 27-degree comparator's depth-10 sign evaluation plus the ReLU
    /// construction multiply, with margin.
    pub fn default_params() -> Self {
        CkksParams {
            n: 4096,
            base_prime_bits: 60,
            scale_prime_bits: 40,
            depth: 12,
        }
    }

    /// Benchmark parameters: N = 8192, depth 12. Latency trends match
    /// the paper's setup at roughly quarter cost per ring op.
    pub fn benchmark() -> Self {
        CkksParams {
            n: 8192,
            base_prime_bits: 60,
            scale_prime_bits: 40,
            depth: 12,
        }
    }

    /// Paper-matching scale: N = 32768 with ~881 modulus bits
    /// (60 + 20×40 = 860), the configuration the paper used in SEAL.
    /// Slow; opt-in for headline latency reproduction.
    pub fn paper_scale() -> Self {
        CkksParams {
            n: 32768,
            base_prime_bits: 60,
            scale_prime_bits: 40,
            depth: 20,
        }
    }

    /// Total modulus bits in the chain.
    pub fn modulus_bits(&self) -> u32 {
        self.base_prime_bits + self.scale_prime_bits * self.depth as u32
    }

    /// Builds the runtime context (generates primes and NTT tables).
    ///
    /// # Panics
    ///
    /// Panics on invalid dimensions (non-power-of-two `n`, prime sizes
    /// above 62 bits).
    pub fn build(&self) -> Arc<CkksContext> {
        let mut primes = ntt_primes(self.base_prime_bits, 1, self.n);
        primes.extend(ntt_primes(self.scale_prime_bits, self.depth, self.n));
        let scale = 2f64.powi(self.scale_prime_bits as i32);
        CkksContext::new(self.n, primes, scale)
    }
}

impl Serialize for CkksParams {
    fn serialize(&self) -> Value {
        Value::object([
            ("n", self.n.serialize()),
            ("base_prime_bits", self.base_prime_bits.serialize()),
            ("scale_prime_bits", self.scale_prime_bits.serialize()),
            ("depth", self.depth.serialize()),
        ])
    }
}

impl Deserialize for CkksParams {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let params = CkksParams {
            n: usize::deserialize(value.req("n")?)?,
            base_prime_bits: u32::deserialize(value.req("base_prime_bits")?)?,
            scale_prime_bits: u32::deserialize(value.req("scale_prime_bits")?)?,
            depth: usize::deserialize(value.req("depth")?)?,
        };
        // The same conditions `build()` would panic on, reported as
        // parse errors so a corrupt artifact cannot take the process
        // down later.
        if !params.n.is_power_of_two() || params.n < 8 {
            return Err(Error::custom(format!(
                "ring dimension {} is not a power of two >= 8",
                params.n
            )));
        }
        if params.base_prime_bits > 62 || params.scale_prime_bits > 62 {
            return Err(Error::custom("prime sizes above 62 bits are unsupported"));
        }
        Ok(params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serde_round_trip_and_validation() {
        let p = CkksParams::toy();
        let text = serde::json::to_string(&p.serialize());
        assert_eq!(
            CkksParams::deserialize(&serde::json::from_str(&text).unwrap()).unwrap(),
            p
        );
        for bad in [
            r#"{"n":300,"base_prime_bits":60,"scale_prime_bits":40,"depth":12}"#,
            r#"{"n":256,"base_prime_bits":63,"scale_prime_bits":40,"depth":12}"#,
            r#"{"n":256,"base_prime_bits":60,"depth":12}"#,
        ] {
            let v = serde::json::from_str(bad).unwrap();
            assert!(CkksParams::deserialize(&v).is_err(), "{bad}");
        }
    }

    #[test]
    fn toy_builds() {
        let ctx = CkksParams::toy().build();
        assert_eq!(ctx.n(), 256);
        assert_eq!(ctx.primes().len(), 13);
        assert_eq!(ctx.max_level(), 12);
        assert_eq!(ctx.scale(), (1u64 << 40) as f64);
    }

    #[test]
    fn default_depth_covers_comparator() {
        // 27-degree PAF: depth 10 sign + 1 for ReLU = 11 < 12.
        let p = CkksParams::default_params();
        assert!(p.depth >= 11);
    }

    #[test]
    fn primes_distinct_and_friendly() {
        let ctx = CkksParams::toy().build();
        let mut seen = std::collections::HashSet::new();
        for &q in ctx.primes() {
            assert!(seen.insert(q), "duplicate prime {q}");
            assert_eq!((q - 1) % (2 * 256), 0);
        }
    }

    #[test]
    fn paper_scale_matches_published_magnitude() {
        let p = CkksParams::paper_scale();
        assert_eq!(p.n, 32768);
        // Paper: 881 modulus bits; ours is the same magnitude.
        assert!((p.modulus_bits() as i64 - 881).abs() < 30);
    }
}
