//! Negacyclic number-theoretic transform over `Z_q[X]/(X^n + 1)`.
//!
//! Standard Cooley-Tukey / Gentleman-Sande butterflies with
//! bit-reversed tables of powers of a primitive `2n`-th root `psi`
//! (Longa-Naehrig formulation). Polynomial multiplication in the ring
//! is pointwise multiplication between forward transforms.

use crate::modular::{add_mod, inv_mod, mul_mod, primitive_root_2n, sub_mod};

/// Precomputed NTT tables for one prime.
#[derive(Debug, Clone)]
pub struct NttTable {
    /// The prime modulus.
    pub q: u64,
    n: usize,
    psi_brv: Vec<u64>,
    ipsi_brv: Vec<u64>,
    n_inv: u64,
}

fn bit_reverse(i: usize, log_n: u32) -> usize {
    i.reverse_bits() >> (usize::BITS - log_n)
}

impl NttTable {
    /// Builds tables for ring dimension `n` (power of two) and prime
    /// `q ≡ 1 mod 2n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or `q` is not NTT-friendly.
    pub fn new(q: u64, n: usize) -> Self {
        assert!(n.is_power_of_two(), "n must be a power of two");
        let log_n = n.trailing_zeros();
        let psi = primitive_root_2n(q, n);
        let ipsi = inv_mod(psi, q);
        let mut psi_brv = vec![0u64; n];
        let mut ipsi_brv = vec![0u64; n];
        let mut p = 1u64;
        let mut ip = 1u64;
        for i in 0..n {
            psi_brv[bit_reverse(i, log_n)] = p;
            ipsi_brv[bit_reverse(i, log_n)] = ip;
            p = mul_mod(p, psi, q);
            ip = mul_mod(ip, ipsi, q);
        }
        NttTable {
            q,
            n,
            psi_brv,
            ipsi_brv,
            n_inv: inv_mod(n as u64, q),
        }
    }

    /// Ring dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// In-place forward negacyclic NTT.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn forward(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "length mismatch");
        let q = self.q;
        let mut t = self.n;
        let mut m = 1;
        while m < self.n {
            t /= 2;
            for i in 0..m {
                let j1 = 2 * i * t;
                let s = self.psi_brv[m + i];
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = mul_mod(a[j + t], s, q);
                    a[j] = add_mod(u, v, q);
                    a[j + t] = sub_mod(u, v, q);
                }
            }
            m *= 2;
        }
    }

    /// In-place inverse negacyclic NTT.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn inverse(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "length mismatch");
        let q = self.q;
        let mut t = 1;
        let mut m = self.n;
        while m > 1 {
            let h = m / 2;
            let mut j1 = 0;
            for i in 0..h {
                let s = self.ipsi_brv[h + i];
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = a[j + t];
                    a[j] = add_mod(u, v, q);
                    a[j + t] = mul_mod(sub_mod(u, v, q), s, q);
                }
                j1 += 2 * t;
            }
            t *= 2;
            m = h;
        }
        for x in a.iter_mut() {
            *x = mul_mod(*x, self.n_inv, q);
        }
    }

    /// Schoolbook negacyclic multiplication — O(n²) reference used only
    /// by tests to validate the NTT path.
    pub fn negacyclic_mul_reference(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let n = self.n;
        let q = self.q;
        let mut out = vec![0u64; n];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            for (j, &bj) in b.iter().enumerate() {
                let prod = mul_mod(ai, bj, q);
                let k = i + j;
                if k < n {
                    out[k] = add_mod(out[k], prod, q);
                } else {
                    out[k - n] = sub_mod(out[k - n], prod, q);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular::{ntt_primes, pow_mod};

    fn table(n: usize) -> NttTable {
        let q = ntt_primes(40, 1, n)[0];
        NttTable::new(q, n)
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let t = table(64);
        let orig: Vec<u64> = (0..64).map(|i| (i * i + 7) as u64 % t.q).collect();
        let mut a = orig.clone();
        t.forward(&mut a);
        assert_ne!(a, orig, "forward must change representation");
        t.inverse(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn pointwise_mul_matches_schoolbook() {
        let t = table(32);
        let a: Vec<u64> = (0..32).map(|i| (i * 31 + 5) as u64).collect();
        let b: Vec<u64> = (0..32).map(|i| (i * 17 + 11) as u64).collect();
        let expect = t.negacyclic_mul_reference(&a, &b);
        let mut fa = a.clone();
        let mut fb = b.clone();
        t.forward(&mut fa);
        t.forward(&mut fb);
        let mut fc: Vec<u64> = fa
            .iter()
            .zip(&fb)
            .map(|(&x, &y)| mul_mod(x, y, t.q))
            .collect();
        t.inverse(&mut fc);
        assert_eq!(fc, expect);
    }

    #[test]
    fn x_times_x_pow_nminus1_is_minus_one() {
        // X * X^(n-1) = X^n = -1 in the negacyclic ring.
        let t = table(16);
        let mut a = vec![0u64; 16];
        a[1] = 1;
        let mut b = vec![0u64; 16];
        b[15] = 1;
        let c = t.negacyclic_mul_reference(&a, &b);
        let mut expect = vec![0u64; 16];
        expect[0] = t.q - 1;
        assert_eq!(c, expect);
    }

    #[test]
    fn ntt_is_linear() {
        let t = table(32);
        let a: Vec<u64> = (0..32).map(|i| (i * 13) as u64).collect();
        let b: Vec<u64> = (0..32).map(|i| (i * 29 + 3) as u64).collect();
        let sum: Vec<u64> = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| add_mod(x, y, t.q))
            .collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fs = sum.clone();
        t.forward(&mut fa);
        t.forward(&mut fb);
        t.forward(&mut fs);
        for i in 0..32 {
            assert_eq!(fs[i], add_mod(fa[i], fb[i], t.q));
        }
    }

    #[test]
    fn constant_poly_transforms_to_constant_slots() {
        let t = table(16);
        let mut a = vec![0u64; 16];
        a[0] = 42;
        t.forward(&mut a);
        assert!(a.iter().all(|&x| x == 42));
    }

    #[test]
    fn works_at_large_dimension() {
        let t = table(4096);
        let mut a: Vec<u64> = (0..4096).map(|i| i as u64 * 997 % t.q).collect();
        let orig = a.clone();
        t.forward(&mut a);
        t.inverse(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn sixty_bit_prime_roundtrip() {
        let q = ntt_primes(60, 1, 256)[0];
        let t = NttTable::new(q, 256);
        let mut a: Vec<u64> = (0..256).map(|i| pow_mod(3, i as u64, q)).collect();
        let orig = a.clone();
        t.forward(&mut a);
        t.inverse(&mut a);
        assert_eq!(a, orig);
    }
}
