//! Negacyclic number-theoretic transform over `Z_q[X]/(X^n + 1)`.
//!
//! Standard Cooley-Tukey / Gentleman-Sande butterflies with
//! bit-reversed tables of powers of a primitive `2n`-th root `psi`
//! (Longa-Naehrig formulation). Polynomial multiplication in the ring
//! is pointwise multiplication between forward transforms.
//!
//! # Lazy reduction
//!
//! The butterflies run Harvey-style *lazy* modular arithmetic: every
//! twiddle multiply is a two-multiply Shoup product returning a
//! representative in `[0, 2q)`, and butterfly outputs are allowed to
//! drift up to `[0, 4q)` between passes. A single normalization pass
//! at the end folds everything back to canonical `[0, q)` form, so
//! `forward`/`inverse` return **bit-identical** results to a fully
//! reduced implementation — the laziness is invisible outside this
//! module (and is `debug_assert!`-checked inside it; see the
//! `debug-asserts` CI job). This requires `q < 2^62` so `4q` fits in
//! a `u64`, which [`crate::modular::ntt_primes`] guarantees.

use crate::modular::{add_mod, inv_mod, mul_mod, primitive_root_2n, sub_mod, PrimeArith};

/// Precomputed NTT tables for one prime.
#[derive(Debug, Clone)]
pub struct NttTable {
    /// The prime modulus.
    pub q: u64,
    n: usize,
    arith: PrimeArith,
    psi_brv: Vec<u64>,
    psi_brv_shoup: Vec<u64>,
    ipsi_brv: Vec<u64>,
    ipsi_brv_shoup: Vec<u64>,
    n_inv: u64,
    n_inv_shoup: u64,
}

fn bit_reverse(i: usize, log_n: u32) -> usize {
    i.reverse_bits() >> (usize::BITS - log_n)
}

impl NttTable {
    /// Builds tables for ring dimension `n` (power of two) and prime
    /// `q ≡ 1 mod 2n`. Each twiddle is stored together with its Shoup
    /// companion `floor(w * 2^64 / q)` so the butterflies never touch
    /// a hardware division.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or `q` is not NTT-friendly.
    pub fn new(q: u64, n: usize) -> Self {
        assert!(n.is_power_of_two(), "n must be a power of two");
        let arith = PrimeArith::new(q);
        let log_n = n.trailing_zeros();
        let psi = primitive_root_2n(q, n);
        let ipsi = inv_mod(psi, q);
        let mut psi_brv = vec![0u64; n];
        let mut ipsi_brv = vec![0u64; n];
        let mut p = 1u64;
        let mut ip = 1u64;
        for i in 0..n {
            psi_brv[bit_reverse(i, log_n)] = p;
            ipsi_brv[bit_reverse(i, log_n)] = ip;
            p = mul_mod(p, psi, q);
            ip = mul_mod(ip, ipsi, q);
        }
        let psi_brv_shoup = psi_brv.iter().map(|&w| arith.shoup(w)).collect();
        let ipsi_brv_shoup = ipsi_brv.iter().map(|&w| arith.shoup(w)).collect();
        let n_inv = inv_mod(n as u64, q);
        NttTable {
            q,
            n,
            arith,
            psi_brv,
            psi_brv_shoup,
            ipsi_brv,
            ipsi_brv_shoup,
            n_inv,
            n_inv_shoup: arith.shoup(n_inv),
        }
    }

    /// Ring dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The prime's precomputed Barrett/Shoup constants, shared with
    /// callers that do pointwise arithmetic on transformed data.
    #[inline]
    pub fn arith(&self) -> &PrimeArith {
        &self.arith
    }

    /// In-place forward negacyclic NTT.
    ///
    /// Cooley-Tukey butterflies with lazy reduction: working values
    /// stay in `[0, 4q)` across passes (inputs are folded to `[0, 2q)`
    /// just before each butterfly), and one final pass normalizes the
    /// output to canonical `[0, q)` residues — identical to what a
    /// fully reduced transform would produce.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn forward(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "length mismatch");
        let pa = self.arith;
        let two_q = pa.two_q();
        if self.n == 1 {
            return; // single-coefficient ring: the transform is the identity
        }
        let mut t = self.n;
        let mut m = 1;
        while m < self.n {
            t /= 2;
            if t == 1 {
                // Final stage: normalize in the butterfly itself rather
                // than in a separate sweep over the whole array.
                for (i, block) in a.chunks_exact_mut(2).enumerate() {
                    let s = self.psi_brv[m + i];
                    let s_shoup = self.psi_brv_shoup[m + i];
                    let u = pa.reduce_once(block[0]);
                    let v = pa.mul_shoup_lazy(block[1], s, s_shoup);
                    block[0] = pa.normalize(u + v);
                    block[1] = pa.normalize(u + two_q - v);
                }
            } else {
                // Each block of 2t elements splits into a low and a
                // high half sharing one twiddle; the zipped halves
                // compile to a bounds-check-free inner loop.
                for (i, block) in a.chunks_exact_mut(2 * t).enumerate() {
                    let s = self.psi_brv[m + i];
                    let s_shoup = self.psi_brv_shoup[m + i];
                    let (lo, hi) = block.split_at_mut(t);
                    for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                        // u in [0, 2q), v in [0, 2q) => outputs in [0, 4q).
                        let u = pa.reduce_once(*x);
                        let v = pa.mul_shoup_lazy(*y, s, s_shoup);
                        *x = u + v;
                        *y = u + two_q - v;
                    }
                }
            }
            m *= 2;
        }
    }

    /// In-place inverse negacyclic NTT.
    ///
    /// Gentleman-Sande butterflies with lazy reduction (values in
    /// `[0, 2q)` between passes); the final multiply by `n^-1` is a
    /// Shoup product normalized to `[0, q)`.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn inverse(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "length mismatch");
        let pa = self.arith;
        let two_q = pa.two_q();
        let mut t = 1;
        let mut m = self.n;
        while m > 1 {
            let h = m / 2;
            for (i, block) in a.chunks_exact_mut(2 * t).enumerate() {
                let s = self.ipsi_brv[h + i];
                let s_shoup = self.ipsi_brv_shoup[h + i];
                let (lo, hi) = block.split_at_mut(t);
                for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                    // u, v in [0, 2q): sum folded back to [0, 2q),
                    // difference (shifted by 2q) fed to the lazy
                    // Shoup product which tolerates any u64.
                    let u = *x;
                    let v = *y;
                    debug_assert!(u < two_q && v < two_q);
                    *x = pa.reduce_once(u + v);
                    *y = pa.mul_shoup_lazy(u + two_q - v, s, s_shoup);
                }
            }
            t *= 2;
            m = h;
        }
        for x in a.iter_mut() {
            *x = pa.mul_shoup(*x, self.n_inv, self.n_inv_shoup);
        }
    }

    /// Schoolbook negacyclic multiplication — O(n²) reference used only
    /// by tests to validate the NTT path.
    pub fn negacyclic_mul_reference(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let n = self.n;
        let q = self.q;
        let mut out = vec![0u64; n];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            for (j, &bj) in b.iter().enumerate() {
                let prod = mul_mod(ai, bj, q);
                let k = i + j;
                if k < n {
                    out[k] = add_mod(out[k], prod, q);
                } else {
                    out[k - n] = sub_mod(out[k - n], prod, q);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular::{ntt_primes, pow_mod};

    fn table(n: usize) -> NttTable {
        let q = ntt_primes(40, 1, n)[0];
        NttTable::new(q, n)
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let t = table(64);
        let orig: Vec<u64> = (0..64).map(|i| (i * i + 7) as u64 % t.q).collect();
        let mut a = orig.clone();
        t.forward(&mut a);
        assert_ne!(a, orig, "forward must change representation");
        t.inverse(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn pointwise_mul_matches_schoolbook() {
        let t = table(32);
        let a: Vec<u64> = (0..32).map(|i| (i * 31 + 5) as u64).collect();
        let b: Vec<u64> = (0..32).map(|i| (i * 17 + 11) as u64).collect();
        let expect = t.negacyclic_mul_reference(&a, &b);
        let mut fa = a.clone();
        let mut fb = b.clone();
        t.forward(&mut fa);
        t.forward(&mut fb);
        let mut fc: Vec<u64> = fa
            .iter()
            .zip(&fb)
            .map(|(&x, &y)| mul_mod(x, y, t.q))
            .collect();
        t.inverse(&mut fc);
        assert_eq!(fc, expect);
    }

    #[test]
    fn x_times_x_pow_nminus1_is_minus_one() {
        // X * X^(n-1) = X^n = -1 in the negacyclic ring.
        let t = table(16);
        let mut a = vec![0u64; 16];
        a[1] = 1;
        let mut b = vec![0u64; 16];
        b[15] = 1;
        let c = t.negacyclic_mul_reference(&a, &b);
        let mut expect = vec![0u64; 16];
        expect[0] = t.q - 1;
        assert_eq!(c, expect);
    }

    #[test]
    fn ntt_is_linear() {
        let t = table(32);
        let a: Vec<u64> = (0..32).map(|i| (i * 13) as u64).collect();
        let b: Vec<u64> = (0..32).map(|i| (i * 29 + 3) as u64).collect();
        let sum: Vec<u64> = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| add_mod(x, y, t.q))
            .collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fs = sum.clone();
        t.forward(&mut fa);
        t.forward(&mut fb);
        t.forward(&mut fs);
        for i in 0..32 {
            assert_eq!(fs[i], add_mod(fa[i], fb[i], t.q));
        }
    }

    #[test]
    fn constant_poly_transforms_to_constant_slots() {
        let t = table(16);
        let mut a = vec![0u64; 16];
        a[0] = 42;
        t.forward(&mut a);
        assert!(a.iter().all(|&x| x == 42));
    }

    #[test]
    fn works_at_large_dimension() {
        let t = table(4096);
        let mut a: Vec<u64> = (0..4096).map(|i| i as u64 * 997 % t.q).collect();
        let orig = a.clone();
        t.forward(&mut a);
        t.inverse(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn sixty_bit_prime_roundtrip() {
        let q = ntt_primes(60, 1, 256)[0];
        let t = NttTable::new(q, 256);
        let mut a: Vec<u64> = (0..256).map(|i| pow_mod(3, i as u64, q)).collect();
        let orig = a.clone();
        t.forward(&mut a);
        t.inverse(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn outputs_are_canonical_residues() {
        // Lazy reduction must be invisible: every output < q even for
        // worst-case all-(q-1) inputs at the largest supported primes.
        for bits in [40u32, 60, 62] {
            let q = ntt_primes(bits, 1, 128)[0];
            let t = NttTable::new(q, 128);
            let mut a = vec![q - 1; 128];
            t.forward(&mut a);
            assert!(a.iter().all(|&x| x < q), "forward output escaped [0, q)");
            t.inverse(&mut a);
            assert!(a.iter().all(|&x| x < q), "inverse output escaped [0, q)");
            assert!(a.iter().all(|&x| x == q - 1), "roundtrip drifted");
        }
    }

    #[test]
    fn matches_fully_reduced_reference_transform() {
        // Pin bit-identity against the pre-Shoup formulation: plain
        // Cooley-Tukey butterflies reducing through mul_mod at every
        // step must give the same output vector.
        let t = table(64);
        let q = t.q;
        let mut lazy: Vec<u64> = (0..64).map(|i| (i as u64 * 7919 + 13) % q).collect();
        let mut plain = lazy.clone();
        t.forward(&mut lazy);
        {
            let n = 64;
            let a = &mut plain;
            let mut tt = n;
            let mut m = 1;
            while m < n {
                tt /= 2;
                for i in 0..m {
                    let j1 = 2 * i * tt;
                    let s = t.psi_brv[m + i];
                    for j in j1..j1 + tt {
                        let u = a[j];
                        let v = mul_mod(a[j + tt], s, q);
                        a[j] = add_mod(u, v, q);
                        a[j + tt] = sub_mod(u, v, q);
                    }
                }
                m *= 2;
            }
        }
        assert_eq!(lazy, plain, "lazy NTT diverged from reduced reference");
    }
}
