//! Encrypted linear algebra: plaintext matrix × ciphertext vector via
//! the Halevi–Shoup diagonal method, with a baby-step/giant-step
//! variant.
//!
//! This is the substrate that turns the paper's Fig. 2 into a runnable
//! pipeline: convolutions, average pooling and fully-connected layers
//! are all plaintext-weight affine maps applied to an encrypted
//! activation vector, and only the PAF activations consume multiplicative
//! depth beyond the one plaintext-multiply level per affine stage.
//!
//! Packing convention: a length-`m` vector (`m` a power of two dividing
//! the slot count) is **replicated** to fill all `n/2` slots, so full-ring
//! rotations act as cyclic rotations of the logical vector
//! ([`replicate`], [`Evaluator::encrypt_replicated`]).

use crate::cipher::{Ciphertext, Evaluator};
use crate::encoding::Plaintext;
use smartpaf_tensor::Rng64;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// Cache key for an encoded diagonal: (diagonal offset, plaintext
/// pre-rotation shift, slot count, scale bits). The limb count is NOT
/// part of the key — diagonals encode once at the full modulus chain
/// and `mul_plain` reads them through a limb prefix at any level.
type DiagKey = (usize, usize, usize, u64);

/// A real matrix stored by its nonzero generalized diagonals, padded to
/// a power-of-two square dimension.
///
/// Generalized diagonal `d` holds `diag_d[i] = M[i][(i+d) mod dim]`, so
/// `(Mv)[i] = Σ_d diag_d[i] · v[(i+d) mod dim]` — each term is one slot
/// rotation plus one plaintext multiply under CKKS.
///
/// Encoded diagonal plaintexts are cached inside the matrix after
/// first use (one FFT per diagonal per slot layout, ever), so a matrix
/// applied across many ciphertexts — the steady state of every
/// encrypted inference pipeline — pays encoding cost only on its first
/// application.
#[derive(Debug)]
pub struct DiagMatrix {
    dim: usize,
    out_dim: usize,
    in_dim: usize,
    diags: BTreeMap<usize, Vec<f64>>,
    encoded: Mutex<HashMap<DiagKey, Arc<Plaintext>>>,
}

impl Clone for DiagMatrix {
    /// Clones the matrix data; the encoded-plaintext cache starts
    /// empty (entries are cheap to regenerate and usually belong to a
    /// different scale after [`DiagMatrix::scaled`]).
    fn clone(&self) -> Self {
        DiagMatrix {
            dim: self.dim,
            out_dim: self.out_dim,
            in_dim: self.in_dim,
            diags: self.diags.clone(),
            encoded: Mutex::new(HashMap::new()),
        }
    }
}

impl DiagMatrix {
    /// Builds from dense rows (`rows[i][j] = M[i][j]`), zero-padding to
    /// the next power of two of `max(rows, cols)`.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let min_dim = rows.first().map_or(0, |r| r.len().max(rows.len()));
        Self::from_rows_with_dim(rows, min_dim.next_power_of_two())
    }

    /// Builds from dense rows padded to an explicit square dimension
    /// (used when several pipeline stages must share one slot layout).
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or ragged, `dim` is not a power of
    /// two, or `dim` is smaller than the matrix.
    pub fn from_rows_with_dim(rows: &[Vec<f64>], dim: usize) -> Self {
        assert!(!rows.is_empty(), "empty matrix");
        let in_dim = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == in_dim), "ragged matrix rows");
        assert!(in_dim > 0, "empty matrix rows");
        let out_dim = rows.len();
        assert!(dim.is_power_of_two(), "dim must be a power of two");
        assert!(dim >= out_dim.max(in_dim), "dim smaller than matrix");
        let mut diags: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v == 0.0 {
                    continue;
                }
                let d = (j + dim - i % dim) % dim;
                diags.entry(d).or_insert_with(|| vec![0.0; dim])[i] = v;
            }
        }
        DiagMatrix {
            dim,
            out_dim,
            in_dim,
            diags,
            encoded: Mutex::new(HashMap::new()),
        }
    }

    /// The identity on `dim` slots (`dim` rounded up to a power of two).
    pub fn identity(dim: usize) -> Self {
        let dim = dim.next_power_of_two();
        let mut diags = BTreeMap::new();
        diags.insert(0, vec![1.0; dim]);
        DiagMatrix {
            dim,
            out_dim: dim,
            in_dim: dim,
            diags,
            encoded: Mutex::new(HashMap::new()),
        }
    }

    /// Padded square dimension (power of two).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Logical output dimension before padding.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Logical input dimension before padding.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Number of nonzero generalized diagonals (the naive method's
    /// rotation count).
    pub fn num_diagonals(&self) -> usize {
        self.diags.len()
    }

    /// The stored generalized diagonals as `(offset, entries)` pairs in
    /// ascending offset order. Deterministic (the storage is a
    /// `BTreeMap`), which is what lets content digests of probed
    /// matrices be stable across processes.
    pub fn diagonals(&self) -> impl Iterator<Item = (usize, &[f64])> {
        self.diags.iter().map(|(&d, v)| (d, v.as_slice()))
    }

    /// Plaintext reference product on a padded vector.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != dim()`.
    pub fn apply_plain(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.dim, "vector length mismatch");
        let mut out = vec![0.0; self.dim];
        for (&d, diag) in &self.diags {
            for (i, o) in out.iter_mut().enumerate() {
                *o += diag[i] * v[(i + d) % self.dim];
            }
        }
        out
    }

    /// Returns a copy with every entry multiplied by `factor`
    /// (plaintext scale folding — see the heinfer crate).
    pub fn scaled(&self, factor: f64) -> Self {
        let mut out = self.clone();
        if factor == 1.0 {
            return out;
        }
        for diag in out.diags.values_mut() {
            for v in diag.iter_mut() {
                *v *= factor;
            }
        }
        out
    }

    /// Number of encoded diagonal plaintexts currently cached
    /// (diagnostics; see the caching tests).
    pub fn encoded_cache_len(&self) -> usize {
        self.encoded.lock().expect("cache poisoned").len()
    }

    /// Returns the encoded plaintext for generalized diagonal `d`
    /// pre-rotated right by `shift` slots, encoding on first use.
    ///
    /// Encodes at the **full** modulus chain: `mul_plain` reads
    /// plaintexts through a limb prefix, and per-limb residues are
    /// computed independently, so the prefix limbs are bit-identical
    /// to what a per-level encoding would produce. One cache entry
    /// therefore serves ciphertexts at every level.
    fn encoded_diag(&self, ev: &Evaluator, d: usize, shift: usize) -> Arc<Plaintext> {
        let slots = ev.context().slots();
        let scale = ev.context().scale();
        let key = (d, shift, slots, scale.to_bits());
        if let Some(pt) = self.encoded.lock().expect("cache poisoned").get(&key) {
            return Arc::clone(pt);
        }
        let diag = &self.diags[&d];
        let tiled = replicate(diag, slots);
        let pre = if shift == 0 {
            tiled
        } else {
            let mut pre = vec![0.0; slots];
            for (s, p) in pre.iter_mut().enumerate() {
                *p = tiled[(s + slots - shift) % slots];
            }
            pre
        };
        let pt = Arc::new(
            ev.encoder()
                .encode(&pre, scale, ev.context().primes().len()),
        );
        Arc::clone(
            self.encoded
                .lock()
                .expect("cache poisoned")
                .entry(key)
                .or_insert(pt),
        )
    }

    /// Replicates the matrix block-diagonally across `lanes` lanes: the
    /// result is the `(lanes·dim) × (lanes·dim)` map that applies this
    /// matrix independently to each length-`dim` lane of a
    /// lane-concatenated vector — the slot-packing transform that lets
    /// one ciphertext carry `lanes` activations at stride `dim`.
    ///
    /// Each stored generalized diagonal `d` splits into at most two
    /// expanded diagonals: the in-lane part keeps offset `d` (entries
    /// `i < dim − d`), and the wrap-around part moves to offset
    /// `(lanes−1)·dim + d` (entries `i ≥ dim − d`), so a lane's cyclic
    /// indexing never reads a neighbouring lane's slots. Applied plain,
    /// each lane of the expanded product is **bit-identical** to
    /// [`DiagMatrix::apply_plain`] on that lane alone: per output slot
    /// the nonzero terms arrive in the same ascending-`d` order (the
    /// in-lane offsets are exactly the ascending prefix with
    /// `d < dim − i`), and the extra structural-zero terms add `±0.0`
    /// to a never-negative-zero accumulator.
    ///
    /// The encoded-plaintext cache starts empty (the expanded
    /// diagonals tile differently across slots).
    ///
    /// # Panics
    ///
    /// Panics unless `lanes` is a power of two.
    pub fn block_diag(&self, lanes: usize) -> DiagMatrix {
        assert!(lanes.is_power_of_two(), "lanes must be a power of two");
        if lanes == 1 {
            return self.clone();
        }
        let dim = self.dim * lanes;
        let mut diags: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
        for (&d, diag) in &self.diags {
            // Entries i < split stay in-lane at offset d; entries
            // i ≥ split would cross into the next lane, so they move to
            // the wrap offset (lanes−1)·dim + d, which steps back one
            // lane cyclically. The two offset ranges are disjoint, so
            // distinct source diagonals never collide.
            let split = self.dim - d;
            let in_lane = diags.entry(d).or_insert_with(|| vec![0.0; dim]);
            for l in 0..lanes {
                in_lane[l * self.dim..l * self.dim + split].copy_from_slice(&diag[..split]);
            }
            if d > 0 {
                let wrap = diags
                    .entry((lanes - 1) * self.dim + d)
                    .or_insert_with(|| vec![0.0; dim]);
                for l in 0..lanes {
                    wrap[l * self.dim + split..(l + 1) * self.dim].copy_from_slice(&diag[split..]);
                }
            }
        }
        DiagMatrix {
            dim,
            out_dim: (lanes - 1) * self.dim + self.out_dim,
            in_dim: (lanes - 1) * self.dim + self.in_dim,
            diags,
            encoded: Mutex::new(HashMap::new()),
        }
    }

    /// Exact ciphertext-rotation count of [`Evaluator::matvec_bsgs`]
    /// on this matrix: one rotation per distinct nonzero baby step
    /// `d mod g1`, plus one per nonempty giant group `k ≥ 1`
    /// (rotation by zero is a clone, not a key switch).
    pub fn bsgs_rotations(&self) -> usize {
        Self::bsgs_rotations_of(self.dim, self.diags.keys().copied())
    }

    /// Exact rotation count of `matvec_bsgs` on
    /// [`DiagMatrix::block_diag`]`(lanes)`, computed from the diagonal
    /// offsets alone — the wrap-diagonal doubling (source diagonal `d`
    /// keeps offset `d` and, when `d > 0`, adds `(lanes−1)·dim + d`)
    /// is priced without materializing the expanded matrix, so lane
    /// planners can query it per candidate lane count for free.
    ///
    /// # Panics
    ///
    /// Panics unless `lanes` is a power of two.
    pub fn bsgs_rotations_lanes(&self, lanes: usize) -> usize {
        assert!(lanes.is_power_of_two(), "lanes must be a power of two");
        if lanes == 1 {
            return self.bsgs_rotations();
        }
        let offsets = self.diags.keys().flat_map(|&d| {
            let wrap = (d > 0).then(|| (lanes - 1) * self.dim + d);
            std::iter::once(d).chain(wrap)
        });
        Self::bsgs_rotations_of(self.dim * lanes, offsets)
    }

    /// Rotation count of the BSGS schedule over `offsets` at square
    /// dimension `dim` (mirrors the loops of
    /// [`Evaluator::matvec_bsgs`] exactly).
    fn bsgs_rotations_of(dim: usize, offsets: impl Iterator<Item = usize>) -> usize {
        let g1 = (dim as f64).sqrt().ceil() as usize;
        let mut baby = std::collections::BTreeSet::new();
        let mut giant = std::collections::BTreeSet::new();
        for d in offsets {
            if d % g1 != 0 {
                baby.insert(d % g1);
            }
            if d / g1 > 0 {
                giant.insert(d / g1);
            }
        }
        baby.len() + giant.len()
    }

    /// Fraction of entries that are nonzero (density diagnostics for
    /// structured matrices like pooling or Toeplitz convolutions).
    pub fn density(&self) -> f64 {
        let nnz: usize = self
            .diags
            .values()
            .map(|d| d.iter().filter(|&&v| v != 0.0).count())
            .sum();
        nnz as f64 / (self.dim * self.dim) as f64
    }
}

/// Tiles `v` to fill `slots` slots (cyclic replication).
///
/// # Panics
///
/// Panics unless `v.len()` divides `slots`.
pub fn replicate(v: &[f64], slots: usize) -> Vec<f64> {
    assert!(
        !v.is_empty() && slots.is_multiple_of(v.len()),
        "vector length {} must divide slot count {slots}",
        v.len()
    );
    let mut out = Vec::with_capacity(slots);
    while out.len() < slots {
        out.extend_from_slice(v);
    }
    out
}

impl Evaluator {
    /// Encrypts a logical vector replicated across all slots so that
    /// full-ring rotations act cyclically on it.
    ///
    /// # Panics
    ///
    /// Panics unless `v.len()` divides the slot count.
    pub fn encrypt_replicated(&self, v: &[f64], rng: &mut Rng64) -> Ciphertext {
        let tiled = replicate(v, self.context().slots());
        self.encrypt_values(&tiled, rng)
    }

    /// Matrix–vector product by the naive diagonal method: one rotation
    /// and one plaintext multiply per nonzero diagonal. Consumes one
    /// level.
    ///
    /// # Panics
    ///
    /// Panics unless `mat.dim()` divides the slot count.
    pub fn matvec(&self, mat: &DiagMatrix, ct: &Ciphertext) -> Ciphertext {
        let slots = self.context().slots();
        assert!(
            slots.is_multiple_of(mat.dim()),
            "matrix dim must divide slots"
        );
        let mut acc: Option<Ciphertext> = None;
        for &d in mat.diags.keys() {
            let rot = self.rotate(ct, d as i64);
            let pt = mat.encoded_diag(self, d, 0);
            let term = self.mul_plain(&rot, &pt);
            acc = Some(match acc {
                None => term,
                Some(a) => self.add(&a, &term),
            });
        }
        let mut out = acc.unwrap_or_else(|| {
            // All-zero matrix: a zero ciphertext at product scale.
            let pt = self
                .encoder()
                .encode_constant(0.0, self.context().scale(), ct.num_limbs());
            self.mul_plain(ct, &pt)
        });
        self.rescale(&mut out);
        out
    }

    /// Matrix–vector product with baby-step/giant-step rotation
    /// scheduling: `O(√m)` ciphertext rotations instead of `O(m)`,
    /// trading them for plaintext pre-rotations of the diagonals.
    /// Consumes one level; result matches [`Evaluator::matvec`].
    ///
    /// # Panics
    ///
    /// Panics unless `mat.dim()` divides the slot count.
    pub fn matvec_bsgs(&self, mat: &DiagMatrix, ct: &Ciphertext) -> Ciphertext {
        let slots = self.context().slots();
        let m = mat.dim();
        assert!(slots.is_multiple_of(m), "matrix dim must divide slots");
        if mat.diags.is_empty() {
            return self.matvec(mat, ct); // zero path
        }
        let g1 = (m as f64).sqrt().ceil() as usize;
        let g2 = m.div_ceil(g1);

        // Baby steps: rot_j(v) for exactly the j values some diagonal
        // needs.
        let mut baby: Vec<Option<Ciphertext>> = vec![None; g1];
        for &d in mat.diags.keys() {
            let j = d % g1;
            if baby[j].is_none() {
                baby[j] = Some(self.rotate(ct, j as i64));
            }
        }

        // Giant steps: group diagonals by k = d / g1 and pre-rotate the
        // plaintext diagonal by -k·g1 so one outer rotation finishes
        // the job.
        let mut outer: Option<Ciphertext> = None;
        for k in 0..g2 {
            let mut inner: Option<Ciphertext> = None;
            for &d in mat.diags.range(k * g1..(k + 1) * g1).map(|(d, _)| d) {
                let j = d - k * g1;
                let rot_v = baby[j].as_ref().expect("baby step precomputed");
                // Plaintext rotation of the tiled diagonal by -k·g1
                // (done inside the cached encode).
                let shift = (k * g1) % slots;
                let pt = mat.encoded_diag(self, d, shift);
                let term = self.mul_plain(rot_v, &pt);
                inner = Some(match inner {
                    None => term,
                    Some(a) => self.add(&a, &term),
                });
            }
            if let Some(sum) = inner {
                let rotated = self.rotate(&sum, (k * g1) as i64);
                outer = Some(match outer {
                    None => rotated,
                    Some(a) => self.add(&a, &rotated),
                });
            }
        }
        let mut out = outer.expect("at least one diagonal");
        self.rescale(&mut out);
        out
    }

    /// Adds a replicated plaintext bias at the ciphertext's scale.
    ///
    /// # Panics
    ///
    /// Panics unless `bias.len()` divides the slot count.
    pub fn add_bias_replicated(&self, ct: &Ciphertext, bias: &[f64]) -> Ciphertext {
        let tiled = replicate(bias, self.context().slots());
        let pt = self.encoder().encode(&tiled, ct.scale, ct.num_limbs());
        self.add_plain(ct, &pt)
    }

    /// Sums a replicated length-`m` vector: after `log2(m)` rotations
    /// every slot holds `Σ_i v[i]`. Depth-free.
    ///
    /// # Panics
    ///
    /// Panics unless `m` is a power of two dividing the slot count.
    pub fn sum_replicated(&self, ct: &Ciphertext, m: usize) -> Ciphertext {
        assert!(m.is_power_of_two(), "m must be a power of two");
        assert!(
            self.context().slots().is_multiple_of(m),
            "m must divide slots"
        );
        let mut acc = ct.clone();
        let mut step = 1usize;
        while step < m {
            let rot = self.rotate(&acc, step as i64);
            acc = self.add(&acc, &rot);
            step <<= 1;
        }
        acc
    }

    /// Inner product of an encrypted replicated vector with a plaintext
    /// weight vector; every slot of the result holds `Σ_i v[i]·w[i]`.
    /// Consumes one level.
    ///
    /// # Panics
    ///
    /// Panics unless `w.len()` is a power of two dividing the slot
    /// count.
    pub fn inner_product_plain(&self, ct: &Ciphertext, w: &[f64]) -> Ciphertext {
        let slots = self.context().slots();
        let tiled = replicate(w, slots);
        let pt = self
            .encoder()
            .encode(&tiled, self.context().scale(), ct.num_limbs());
        let mut prod = self.mul_plain(ct, &pt);
        self.rescale(&mut prod);
        self.sum_replicated(&prod, w.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyChain;
    use crate::params::CkksParams;

    fn setup(seed: u64) -> (Evaluator, Rng64) {
        let ctx = CkksParams::toy().build();
        let mut rng = Rng64::new(seed);
        let keys = KeyChain::generate(&ctx, &mut rng);
        (Evaluator::new(&keys), rng)
    }

    fn random_matrix(rows: usize, cols: usize, rng: &mut Rng64) -> Vec<Vec<f64>> {
        (0..rows)
            .map(|_| {
                (0..cols)
                    .map(|_| (rng.next_f32() as f64 - 0.5) * 2.0)
                    .collect()
            })
            .collect()
    }

    fn random_vec(m: usize, rng: &mut Rng64) -> Vec<f64> {
        (0..m).map(|_| rng.next_f32() as f64 - 0.5).collect()
    }

    #[test]
    fn diag_matrix_plain_apply_matches_dense() {
        let mut rng = Rng64::new(1);
        let rows = random_matrix(8, 8, &mut rng);
        let mat = DiagMatrix::from_rows(&rows);
        let v = random_vec(8, &mut rng);
        let got = mat.apply_plain(&v);
        for i in 0..8 {
            let want: f64 = (0..8).map(|j| rows[i][j] * v[j]).sum();
            assert!((got[i] - want).abs() < 1e-12, "row {i}");
        }
    }

    #[test]
    fn rectangular_matrix_pads_to_pow2() {
        let rows = vec![vec![1.0, 2.0, 3.0, 4.0, 5.0]; 3];
        let mat = DiagMatrix::from_rows(&rows);
        assert_eq!(mat.dim(), 8);
        assert_eq!(mat.out_dim(), 3);
        assert_eq!(mat.in_dim(), 5);
        let mut v = vec![0.0; 8];
        v[..5].copy_from_slice(&[1.0, 1.0, 1.0, 1.0, 1.0]);
        let out = mat.apply_plain(&v);
        assert!((out[0] - 15.0).abs() < 1e-12);
        // Padded rows are zero.
        assert!((out[3]).abs() < 1e-12);
    }

    #[test]
    fn explicit_dim_padding() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let mat = DiagMatrix::from_rows_with_dim(&rows, 16);
        assert_eq!(mat.dim(), 16);
        let mut v = vec![0.0; 16];
        v[0] = 1.0;
        v[1] = 1.0;
        let out = mat.apply_plain(&v);
        assert!((out[0] - 3.0).abs() < 1e-12);
        assert!((out[1] - 7.0).abs() < 1e-12);
        assert!(out[2..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn scaled_multiplies_entries() {
        let rows = vec![vec![1.0, -2.0], vec![0.5, 0.0]];
        let mat = DiagMatrix::from_rows(&rows).scaled(3.0);
        let v = vec![1.0, 1.0];
        let out = mat.apply_plain(&v);
        assert!((out[0] - -3.0).abs() < 1e-12);
        assert!((out[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn identity_has_one_diagonal() {
        let id = DiagMatrix::identity(16);
        assert_eq!(id.num_diagonals(), 1);
        let v = random_vec(16, &mut Rng64::new(3));
        assert_eq!(id.apply_plain(&v), v);
    }

    #[test]
    fn encrypted_matvec_matches_plain() {
        let (ev, mut rng) = setup(41);
        let m = 8;
        let rows = random_matrix(m, m, &mut rng);
        let mat = DiagMatrix::from_rows(&rows);
        let v = random_vec(m, &mut rng);
        let ct = ev.encrypt_replicated(&v, &mut rng);
        let out_ct = ev.matvec(&mat, &ct);
        let got = ev.decrypt_values(&out_ct, m);
        let want = mat.apply_plain(&v);
        for i in 0..m {
            assert!(
                (got[i] - want[i]).abs() < 1e-2,
                "slot {i}: {} vs {}",
                got[i],
                want[i]
            );
        }
    }

    #[test]
    fn bsgs_matches_naive() {
        let (ev, mut rng) = setup(42);
        let m = 16;
        let rows = random_matrix(m, m, &mut rng);
        let mat = DiagMatrix::from_rows(&rows);
        let v = random_vec(m, &mut rng);
        let ct = ev.encrypt_replicated(&v, &mut rng);
        let naive = ev.decrypt_values(&ev.matvec(&mat, &ct), m);
        let bsgs = ev.decrypt_values(&ev.matvec_bsgs(&mat, &ct), m);
        let want = mat.apply_plain(&v);
        for i in 0..m {
            assert!((naive[i] - want[i]).abs() < 2e-2, "naive slot {i}");
            assert!((bsgs[i] - want[i]).abs() < 2e-2, "bsgs slot {i}");
        }
    }

    #[test]
    fn matvec_consumes_one_level() {
        let (ev, mut rng) = setup(43);
        let mat = DiagMatrix::identity(8);
        let ct = ev.encrypt_replicated(&random_vec(8, &mut rng), &mut rng);
        let before = ct.level();
        assert_eq!(ev.matvec(&mat, &ct).level(), before - 1);
        assert_eq!(ev.matvec_bsgs(&mat, &ct).level(), before - 1);
    }

    #[test]
    fn sparse_matrix_uses_few_diagonals() {
        // Circulant shift matrix: exactly one diagonal.
        let m = 8;
        let mut rows = vec![vec![0.0; m]; m];
        for (i, row) in rows.iter_mut().enumerate() {
            row[(i + 1) % m] = 1.0;
        }
        let mat = DiagMatrix::from_rows(&rows);
        assert_eq!(mat.num_diagonals(), 1);
        assert!(mat.density() < 0.2);
    }

    #[test]
    fn bias_add_matches_plain() {
        let (ev, mut rng) = setup(44);
        let m = 8;
        let v = random_vec(m, &mut rng);
        let bias = random_vec(m, &mut rng);
        let ct = ev.encrypt_replicated(&v, &mut rng);
        let out = ev.decrypt_values(&ev.add_bias_replicated(&ct, &bias), m);
        for i in 0..m {
            assert!((out[i] - (v[i] + bias[i])).abs() < 1e-3, "slot {i}");
        }
    }

    #[test]
    fn sum_replicated_totals_vector() {
        let (ev, mut rng) = setup(45);
        let m = 16;
        let v = random_vec(m, &mut rng);
        let total: f64 = v.iter().sum();
        let ct = ev.encrypt_replicated(&v, &mut rng);
        let out = ev.decrypt_values(&ev.sum_replicated(&ct, m), m);
        for (i, got) in out.iter().enumerate() {
            assert!((got - total).abs() < 1e-2, "slot {i}: {got} vs {total}");
        }
    }

    #[test]
    fn inner_product_matches_plain() {
        let (ev, mut rng) = setup(46);
        let m = 8;
        let v = random_vec(m, &mut rng);
        let w = random_vec(m, &mut rng);
        let want: f64 = v.iter().zip(&w).map(|(a, b)| a * b).sum();
        let ct = ev.encrypt_replicated(&v, &mut rng);
        let out = ev.decrypt_values(&ev.inner_product_plain(&ct, &w), 1);
        assert!((out[0] - want).abs() < 1e-2, "{} vs {want}", out[0]);
    }

    #[test]
    fn chained_affine_stages() {
        // Two matvecs back to back (the pipeline pattern heinfer uses).
        let (ev, mut rng) = setup(47);
        let m = 8;
        let a = random_matrix(m, m, &mut rng);
        let b = random_matrix(m, m, &mut rng);
        let ma = DiagMatrix::from_rows(&a);
        let mb = DiagMatrix::from_rows(&b);
        let v = random_vec(m, &mut rng);
        let ct = ev.encrypt_replicated(&v, &mut rng);
        let stage1 = ev.matvec_bsgs(&ma, &ct);
        let stage2 = ev.matvec_bsgs(&mb, &stage1);
        let got = ev.decrypt_values(&stage2, m);
        let want = mb.apply_plain(&ma.apply_plain(&v));
        for i in 0..m {
            assert!(
                (got[i] - want[i]).abs() < 5e-2,
                "slot {i}: {} vs {}",
                got[i],
                want[i]
            );
        }
    }

    #[test]
    fn encoded_diagonals_are_cached_across_calls() {
        let (ev, mut rng) = setup(49);
        let m = 8;
        let rows = random_matrix(m, m, &mut rng);
        let mat = DiagMatrix::from_rows(&rows);
        assert_eq!(mat.encoded_cache_len(), 0);
        let v = random_vec(m, &mut rng);
        let ct = ev.encrypt_replicated(&v, &mut rng);
        let first = ev.decrypt_values(&ev.matvec(&mat, &ct), m);
        let after_first = mat.encoded_cache_len();
        assert_eq!(after_first, mat.num_diagonals());
        // Second application: no new encodes, identical result.
        let second = ev.decrypt_values(&ev.matvec(&mat, &ct), m);
        assert_eq!(mat.encoded_cache_len(), after_first);
        assert_eq!(first, second);
        // Applying at a lower level reuses the same full-chain entries.
        let mut low = ct.clone();
        low.drop_to(ct.num_limbs() - 2);
        let _ = ev.matvec(&mat, &low);
        assert_eq!(mat.encoded_cache_len(), after_first);
    }

    #[test]
    fn clone_starts_with_empty_cache() {
        let (ev, mut rng) = setup(50);
        let mat = DiagMatrix::identity(8);
        let ct = ev.encrypt_replicated(&random_vec(8, &mut rng), &mut rng);
        let _ = ev.matvec(&mat, &ct);
        assert!(mat.encoded_cache_len() > 0);
        let copy = mat.clone();
        assert_eq!(copy.encoded_cache_len(), 0);
        // Scaled copies must not inherit stale plaintexts.
        let scaled = mat.scaled(2.0);
        assert_eq!(scaled.encoded_cache_len(), 0);
        let out = ev.decrypt_values(&ev.matvec(&scaled, &ct), 8);
        let base = ev.decrypt_values(&ev.matvec(&mat, &ct), 8);
        for i in 0..8 {
            assert!((out[i] - 2.0 * base[i]).abs() < 2e-2, "slot {i}");
        }
    }

    #[test]
    #[should_panic(expected = "must divide slot count")]
    fn replicate_rejects_non_divisor() {
        let _ = replicate(&[1.0, 2.0, 3.0], 128);
    }

    #[test]
    fn block_diag_lanes_are_bitwise_independent() {
        // The slot-packing pin: each lane of the expanded plain product
        // is bit-identical to applying the base matrix to that lane
        // alone — same nonzero terms in the same addition order.
        let mut rng = Rng64::new(51);
        let m = 8;
        let lanes = 4;
        let rows = random_matrix(m, m, &mut rng);
        let mat = DiagMatrix::from_rows(&rows);
        let big = mat.block_diag(lanes);
        assert_eq!(big.dim(), lanes * m);
        // Each source diagonal splits into at most two.
        assert!(big.num_diagonals() <= 2 * mat.num_diagonals());

        let lanes_in: Vec<Vec<f64>> = (0..lanes).map(|_| random_vec(m, &mut rng)).collect();
        let packed: Vec<f64> = lanes_in.iter().flatten().copied().collect();
        let out = big.apply_plain(&packed);
        for (l, lane) in lanes_in.iter().enumerate() {
            let want = mat.apply_plain(lane);
            assert_eq!(
                &out[l * m..(l + 1) * m],
                want.as_slice(),
                "lane {l} must be bit-identical to the standalone product"
            );
        }
    }

    #[test]
    fn block_diag_single_lane_is_the_same_matrix() {
        let mut rng = Rng64::new(52);
        let mat = DiagMatrix::from_rows(&random_matrix(4, 4, &mut rng));
        let same = mat.block_diag(1);
        assert_eq!(same.dim(), mat.dim());
        assert_eq!(same.num_diagonals(), mat.num_diagonals());
        let v = random_vec(4, &mut rng);
        assert_eq!(same.apply_plain(&v), mat.apply_plain(&v));
    }

    #[test]
    fn block_diag_encrypted_matvec_stays_in_lane() {
        // Encrypted path: a lane-concatenated replicated ciphertext
        // through the expanded matrix decrypts to the per-lane
        // products — rotations never leak a neighbouring lane.
        let (ev, mut rng) = setup(53);
        let m = 8;
        let lanes = 4;
        let rows = random_matrix(m, m, &mut rng);
        let mat = DiagMatrix::from_rows(&rows);
        let big = mat.block_diag(lanes);
        let lanes_in: Vec<Vec<f64>> = (0..lanes).map(|_| random_vec(m, &mut rng)).collect();
        let packed: Vec<f64> = lanes_in.iter().flatten().copied().collect();
        let ct = ev.encrypt_replicated(&packed, &mut rng);
        let got = ev.decrypt_values(&ev.matvec_bsgs(&big, &ct), lanes * m);
        for (l, lane) in lanes_in.iter().enumerate() {
            let want = mat.apply_plain(lane);
            for i in 0..m {
                assert!(
                    (got[l * m + i] - want[i]).abs() < 5e-2,
                    "lane {l} slot {i}: {} vs {}",
                    got[l * m + i],
                    want[i]
                );
            }
        }
    }

    #[test]
    fn bsgs_rotation_count_mirrors_the_schedule() {
        // Identity: the single 0-diagonal needs no rotation at all.
        assert_eq!(DiagMatrix::identity(16).bsgs_rotations(), 0);
        // Dense 16×16: g1 = 4, all 16 diagonals present → 3 nonzero
        // baby steps + 3 nonempty giant groups beyond k = 0.
        let mut rng = Rng64::new(54);
        let dense = DiagMatrix::from_rows(&random_matrix(16, 16, &mut rng));
        assert_eq!(dense.num_diagonals(), 16);
        assert_eq!(dense.bsgs_rotations(), 6);
        // And never more than one rotation per diagonal (naive bound).
        let sparse = DiagMatrix::from_rows(&{
            let mut rows = vec![vec![0.0; 16]; 16];
            for (i, row) in rows.iter_mut().enumerate() {
                row[(i + 5) % 16] = 1.0;
            }
            rows
        });
        assert_eq!(sparse.num_diagonals(), 1);
        assert!(sparse.bsgs_rotations() <= 2);
    }

    #[test]
    fn lane_rotation_pricing_matches_materialized_expansion() {
        // The lane planner's oracle: pricing block_diag's wrap-diagonal
        // doubling from the offsets alone must agree exactly with
        // counting on the materialized expanded matrix, for dense,
        // sparse, and diagonal-free shapes alike.
        let mut rng = Rng64::new(55);
        let shapes: Vec<DiagMatrix> = vec![
            DiagMatrix::from_rows(&random_matrix(8, 8, &mut rng)),
            DiagMatrix::from_rows(&random_matrix(16, 16, &mut rng)),
            DiagMatrix::identity(8),
            DiagMatrix::from_rows(&{
                let mut rows = vec![vec![0.0; 8]; 8];
                for (i, row) in rows.iter_mut().enumerate() {
                    row[(i + 3) % 8] = 1.0;
                    row[i] = 0.5;
                }
                rows
            }),
        ];
        for mat in &shapes {
            for lanes in [1usize, 2, 4, 8] {
                assert_eq!(
                    mat.bsgs_rotations_lanes(lanes),
                    mat.block_diag(lanes).bsgs_rotations(),
                    "dim {} lanes {lanes}",
                    mat.dim()
                );
            }
        }
        // Wrap diagonals make packed rotations strictly costlier than
        // lanes·1 would suggest for any matrix with off-diagonals.
        let dense = &shapes[1];
        assert!(dense.bsgs_rotations_lanes(4) > dense.bsgs_rotations());
    }

    #[test]
    fn zero_matrix_yields_zero_ciphertext() {
        let (ev, mut rng) = setup(48);
        let rows = vec![vec![0.0; 8]; 8];
        let mat = DiagMatrix::from_rows(&rows);
        assert_eq!(mat.num_diagonals(), 0);
        let ct = ev.encrypt_replicated(&random_vec(8, &mut rng), &mut rng);
        let out = ev.decrypt_values(&ev.matvec(&mat, &ct), 8);
        for v in out {
            assert!(v.abs() < 1e-3);
        }
    }
}
