//! A from-scratch RNS-CKKS leveled homomorphic encryption substrate.
//!
//! The SMART-PAF paper measures PAF latency with Microsoft SEAL; this
//! crate replaces SEAL with a self-contained implementation exposing
//! exactly the cost structure that matters for the paper's experiments:
//! ciphertext-ciphertext multiplications with relinearisation and
//! rescaling, whose count and depth are what make high-degree PAFs
//! slow.
//!
//! Pipeline: [`CkksParams`] → [`CkksContext`] → [`KeyChain`] →
//! [`Evaluator`] (arithmetic) → [`PafEvaluator`] (PAF-ReLU / PAF-Max).
//!
//! **Security disclaimer:** parameters default to small ring dimensions
//! for experiment turnaround; see [`CkksParams`] for details. This is a
//! research simulator, not a vetted cryptographic library.
//!
//! # Example
//!
//! ```
//! use smartpaf_ckks::{CkksParams, Evaluator, KeyChain, PafEvaluator};
//! use smartpaf_polyfit::{CompositePaf, PafForm};
//! use smartpaf_tensor::Rng64;
//!
//! let ctx = CkksParams::toy().build();
//! let mut rng = Rng64::new(42);
//! let keys = KeyChain::generate(&ctx, &mut rng);
//! let pe = PafEvaluator::new(Evaluator::new(&keys));
//!
//! let paf = CompositePaf::from_form(PafForm::F1G2);
//! let ct = pe.evaluator().encrypt_values(&[0.5, -0.5], &mut rng);
//! let relu_ct = pe.relu(&ct, &paf);
//! let out = pe.evaluator().decrypt_values(&relu_ct, 2);
//! assert!((out[0] - 0.5).abs() < 0.06); // relu(0.5) ~ 0.5
//! assert!(out[1].abs() < 0.06);         // relu(-0.5) ~ 0
//! ```

pub mod modular;
mod ntt;

mod cipher;
pub mod cost;
mod encoding;
mod eval;
pub mod galois;
mod keys;
pub mod linear;
pub mod noise;
pub mod par;
mod params;
pub mod pool;
mod rns;

pub use cipher::{Ciphertext, Evaluator};
pub use encoding::{Encoder, Plaintext};
pub use eval::PafEvaluator;
pub use keys::{KeyChain, KeySwitchGadget, KeySwitchKey, PublicKey, RelinKey, SecretKey};
pub use linear::DiagMatrix;
pub use noise::Bootstrapper;
pub use ntt::NttTable;
pub use params::{CkksParams, MAX_KS_DIGIT_LIMBS};
pub use rns::{CkksContext, RnsPoly};

#[cfg(test)]
mod proptests;
