//! Non-polynomial operator slots and their PAF replacements.
//!
//! [`ReluSlot`] and [`MaxPoolSlot`] are the two operators FHE cannot
//! evaluate. Each slot starts in exact mode and can be switched to a
//! PAF approximation — that switch *is* the paper's "replacement", and
//! Progressive Approximation performs it one slot at a time.

use crate::layer::{Layer, Mode, SlotRef};
use crate::param::{Param, ParamGroup};
use smartpaf_polyfit::{CompositePaf, Polynomial};
use smartpaf_tensor::{
    avg_pool2d, avg_pool2d_backward, global_avg_pool, global_avg_pool_backward, max_pool2d,
    max_pool2d_backward, MaxPoolIndices, PoolSpec, Tensor,
};

/// How a PAF's input is scaled into its accurate range (paper §4.5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScaleMode {
    /// Dynamic Scaling: divide by the batch's max |x| (training only —
    /// FHE has no value-dependent operators).
    Dynamic,
    /// Static Scaling: divide by a frozen constant (FHE-deployable).
    Static(f32),
}

/// A trainable PAF activation replacing ReLU:
/// `y = (x + x·p(x/s)) / 2` with `p` the composite sign approximation.
pub struct PafActivation {
    stage_sizes: Vec<usize>,
    coeffs: Param,
    /// Current scaling mode.
    pub scale_mode: ScaleMode,
    running_max: f32,
    cache: Option<(Tensor, f32)>,
}

impl PafActivation {
    /// Builds from a composite PAF (coefficients become trainable).
    pub fn from_composite(paf: &CompositePaf, scale_mode: ScaleMode) -> Self {
        let stage_sizes: Vec<usize> = paf.stages().iter().map(|s| s.odd_coeffs().len()).collect();
        let flat: Vec<f32> = paf
            .stages()
            .iter()
            .flat_map(|s| s.odd_coeffs().into_iter().map(|c| c as f32))
            .collect();
        let n = flat.len();
        PafActivation {
            stage_sizes,
            coeffs: Param::new(Tensor::from_vec(flat, &[n]), ParamGroup::PafCoeff),
            scale_mode,
            running_max: 0.0,
            cache: None,
        }
    }

    /// Reassembles the (possibly fine-tuned) composite PAF.
    pub fn to_composite(&self) -> CompositePaf {
        let mut stages = Vec::with_capacity(self.stage_sizes.len());
        let mut off = 0;
        for &sz in &self.stage_sizes {
            let odd: Vec<f64> = self.coeffs.value.data()[off..off + sz]
                .iter()
                .map(|&c| c as f64)
                .collect();
            stages.push(Polynomial::from_odd(&odd));
            off += sz;
        }
        CompositePaf::new(stages)
    }

    /// The running max |input| observed during training — the value
    /// Static Scaling freezes to (paper §4.5).
    pub fn running_max(&self) -> f32 {
        self.running_max
    }

    /// Converts Dynamic Scaling to Static Scaling at the running max.
    /// This is the DS→SS conversion applied before FHE deployment.
    pub fn freeze_scale(&mut self) {
        if self.scale_mode == ScaleMode::Dynamic {
            self.scale_mode = ScaleMode::Static(self.running_max.max(1e-6));
        }
    }

    /// Multiplies a static scale by `factor` — the §4.5 sensitivity
    /// experiment (both larger and smaller scales should hurt).
    ///
    /// No-op in dynamic mode.
    pub fn scale_static_by(&mut self, factor: f32) {
        if let ScaleMode::Static(s) = self.scale_mode {
            self.scale_mode = ScaleMode::Static((s * factor).max(1e-6));
        }
    }

    fn stage_polys(&self) -> Vec<Vec<f64>> {
        let mut out = Vec::with_capacity(self.stage_sizes.len());
        let mut off = 0;
        for &sz in &self.stage_sizes {
            out.push(
                self.coeffs.value.data()[off..off + sz]
                    .iter()
                    .map(|&c| c as f64)
                    .collect(),
            );
            off += sz;
        }
        out
    }

    fn eval_stage(odd: &[f64], x: f64) -> f64 {
        let y = x * x;
        let mut acc = 0.0;
        for &c in odd.iter().rev() {
            acc = acc * y + c;
        }
        acc * x
    }

    fn eval_stage_deriv(odd: &[f64], x: f64) -> f64 {
        // d/dx sum c_k x^(2k+1) = sum (2k+1) c_k x^(2k)
        let y = x * x;
        let mut acc = 0.0;
        let mut pow = 1.0;
        for (k, &c) in odd.iter().enumerate() {
            acc += (2 * k + 1) as f64 * c * pow;
            pow *= y;
        }
        acc
    }

    fn pick_scale(&mut self, x: &Tensor, mode: Mode) -> f32 {
        let batch_max = x.abs_max().max(1e-6);
        if mode == Mode::Train {
            self.running_max = self.running_max.max(batch_max);
        }
        match self.scale_mode {
            ScaleMode::Dynamic => batch_max,
            ScaleMode::Static(s) => s.max(1e-6),
        }
    }

    /// Forward pass (see type docs for the formula).
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let s = self.pick_scale(x, mode);
        let stages = self.stage_polys();
        let y = x.map(|v| {
            let mut z = (v / s) as f64;
            for st in &stages {
                z = Self::eval_stage(st, z);
            }
            0.5 * (v + v * z as f32)
        });
        self.cache = Some((x.clone(), s));
        y
    }

    /// Backward pass: input gradient; PAF-coefficient gradients are
    /// accumulated into the internal [`Param`].
    pub fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let (x, s) = self.cache.clone().expect("backward before forward");
        let stages = self.stage_polys();
        let n_stages = stages.len();
        let mut grad_in = Tensor::zeros(x.dims());
        let mut coeff_grad = vec![0.0f64; self.coeffs.numel()];
        // Per-stage flat offsets.
        let mut offsets = Vec::with_capacity(n_stages);
        let mut off = 0;
        for &sz in &self.stage_sizes {
            offsets.push(off);
            off += sz;
        }
        for (i, (&v, &g)) in x.data().iter().zip(grad_output.data()).enumerate() {
            let u = (v / s) as f64;
            // Forward tape.
            let mut zs = Vec::with_capacity(n_stages + 1);
            zs.push(u);
            for st in &stages {
                let z = *zs.last().expect("non-empty");
                zs.push(Self::eval_stage(st, z));
            }
            let p = zs[n_stages];
            // dp/du = product of stage derivatives.
            let mut dp_du = 1.0;
            for (st, &z) in stages.iter().zip(&zs) {
                dp_du *= Self::eval_stage_deriv(st, z);
            }
            // y = (v + v p(u))/2, u = v/s (s treated as constant).
            let dy_dv = 0.5 * (1.0 + p + u * dp_du);
            grad_in.data_mut()[i] = g * dy_dv as f32;
            // Coefficient gradients: dy/dc = (v/2) dp/dc.
            let gv = g as f64 * v as f64 * 0.5;
            if gv != 0.0 {
                let mut chain = 1.0f64;
                for sidx in (0..n_stages).rev() {
                    let z_in = zs[sidx];
                    let y2 = z_in * z_in;
                    let mut pow = z_in;
                    for k in 0..self.stage_sizes[sidx] {
                        coeff_grad[offsets[sidx] + k] += gv * chain * pow;
                        pow *= y2;
                    }
                    chain *= Self::eval_stage_deriv(&stages[sidx], z_in);
                }
            }
        }
        for (g, &cg) in self.coeffs.grad.data_mut().iter_mut().zip(&coeff_grad) {
            *g += cg as f32;
        }
        grad_in
    }

    /// Mutable access to the coefficient parameter.
    pub fn param_mut(&mut self) -> &mut Param {
        &mut self.coeffs
    }
}

enum ReluMode {
    Exact {
        mask: Option<Tensor>,
    },
    Paf(Box<PafActivation>),
    /// Identity pass-through: the slot's non-linearity has been culled
    /// (DeepReDuce-style ReLU reduction, paper §7 "orthogonal" work).
    Culled,
}

/// A ReLU slot: exact ReLU until replaced with a PAF.
pub struct ReluSlot {
    index: usize,
    mode: ReluMode,
    probe: Option<Vec<f32>>,
}

impl ReluSlot {
    /// Creates an exact ReLU slot with a replacement-order index.
    pub fn new(index: usize) -> Self {
        ReluSlot {
            index,
            mode: ReluMode::Exact { mask: None },
            probe: None,
        }
    }

    /// Starts recording (subsampled) forward inputs — the profiling
    /// step of Coefficient Tuning (paper Fig. 3 step 2).
    pub fn start_probe(&mut self) {
        self.probe = Some(Vec::new());
    }

    /// Stops recording and returns the collected input samples.
    pub fn take_probe(&mut self) -> Vec<f32> {
        self.probe.take().unwrap_or_default()
    }

    /// The slot's position in inference order.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Whether the slot has been replaced by a PAF.
    pub fn is_replaced(&self) -> bool {
        matches!(self.mode, ReluMode::Paf(_))
    }

    /// Replaces the exact ReLU with a PAF activation.
    pub fn replace_with(&mut self, paf: &CompositePaf, scale_mode: ScaleMode) {
        self.mode = ReluMode::Paf(Box::new(PafActivation::from_composite(paf, scale_mode)));
    }

    /// Reverts to the exact ReLU.
    pub fn restore_exact(&mut self) {
        self.mode = ReluMode::Exact { mask: None };
    }

    /// Culls the non-linearity: the slot becomes an identity map,
    /// costing zero multiplicative depth under FHE (DeepReDuce-style
    /// ReLU reduction; combinable with PAF replacement of the
    /// surviving slots — paper §7).
    pub fn cull(&mut self) {
        self.mode = ReluMode::Culled;
    }

    /// Whether the slot has been culled to an identity.
    pub fn is_culled(&self) -> bool {
        matches!(self.mode, ReluMode::Culled)
    }

    /// The PAF activation, if replaced.
    pub fn paf_mut(&mut self) -> Option<&mut PafActivation> {
        match &mut self.mode {
            ReluMode::Paf(p) => Some(p),
            _ => None,
        }
    }

    /// Immutable PAF access, if replaced.
    pub fn paf(&self) -> Option<&PafActivation> {
        match &self.mode {
            ReluMode::Paf(p) => Some(p),
            _ => None,
        }
    }
}

impl Layer for ReluSlot {
    fn name(&self) -> String {
        match &self.mode {
            ReluMode::Exact { .. } => format!("ReLU[{}]", self.index),
            ReluMode::Paf(_) => format!("PafReLU[{}]", self.index),
            ReluMode::Culled => format!("CulledReLU[{}]", self.index),
        }
    }

    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        if let Some(buf) = &mut self.probe {
            // Subsample to keep profiling cheap on big feature maps.
            let stride = (x.numel() / 512).max(1);
            buf.extend(x.data().iter().step_by(stride).copied());
        }
        match &mut self.mode {
            ReluMode::Exact { mask } => {
                let m = x.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                let y = x.mul(&m);
                *mask = Some(m);
                y
            }
            ReluMode::Paf(p) => p.forward(x, mode),
            ReluMode::Culled => x.clone(),
        }
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        match &mut self.mode {
            ReluMode::Exact { mask } => {
                grad_output.mul(mask.as_ref().expect("backward before forward"))
            }
            ReluMode::Paf(p) => p.backward(grad_output),
            ReluMode::Culled => grad_output.clone(),
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        match &mut self.mode {
            ReluMode::Paf(p) => vec![p.param_mut()],
            _ => Vec::new(),
        }
    }

    fn visit_slots(&mut self, f: &mut dyn FnMut(SlotRef<'_>)) {
        f(SlotRef::Relu(self));
    }
}

enum PoolMode {
    Exact,
    Paf {
        paf: CompositePaf,
        scale_mode: ScaleMode,
        running_max: f32,
    },
}

/// A MaxPooling slot: exact pooling until replaced with a PAF-based
/// tournament of `max(a,b) = ((a+b) + (a−b)·p((a−b)/s))/2`.
///
/// The backward pass always routes gradients to the window winner
/// (straight-through); PAF coefficients of MaxPool slots are not
/// trained, matching the dominant role ReLU plays in the paper's
/// coefficient tables (App. B covers ReLU layers only).
pub struct MaxPoolSlot {
    index: usize,
    spec: PoolSpec,
    mode: PoolMode,
    cache: Option<MaxPoolIndices>,
    probe: Option<Vec<f32>>,
}

impl MaxPoolSlot {
    /// Creates an exact max-pool slot.
    pub fn new(index: usize, k: usize, stride: usize) -> Self {
        MaxPoolSlot {
            index,
            spec: PoolSpec::new(k, stride),
            mode: PoolMode::Exact,
            cache: None,
            probe: None,
        }
    }

    /// Starts recording (subsampled) forward inputs for profiling.
    pub fn start_probe(&mut self) {
        self.probe = Some(Vec::new());
    }

    /// Stops recording and returns the collected input samples.
    pub fn take_probe(&mut self) -> Vec<f32> {
        self.probe.take().unwrap_or_default()
    }

    /// The slot's position in inference order.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Whether the slot has been replaced by a PAF.
    pub fn is_replaced(&self) -> bool {
        matches!(self.mode, PoolMode::Paf { .. })
    }

    /// Replaces exact pooling with PAF-based pooling.
    pub fn replace_with(&mut self, paf: &CompositePaf, scale_mode: ScaleMode) {
        self.mode = PoolMode::Paf {
            paf: paf.clone(),
            scale_mode,
            running_max: 0.0,
        };
    }

    /// Reverts to exact max pooling.
    pub fn restore_exact(&mut self) {
        self.mode = PoolMode::Exact;
    }

    /// Freezes Dynamic Scaling to the running max (DS→SS conversion).
    pub fn freeze_scale(&mut self) {
        if let PoolMode::Paf {
            scale_mode,
            running_max,
            ..
        } = &mut self.mode
        {
            if *scale_mode == ScaleMode::Dynamic {
                *scale_mode = ScaleMode::Static(running_max.max(1e-6));
            }
        }
    }

    /// Multiplies a static scale by `factor` (no-op in dynamic mode).
    pub fn scale_static_by(&mut self, factor: f32) {
        if let PoolMode::Paf { scale_mode, .. } = &mut self.mode {
            if let ScaleMode::Static(s) = scale_mode {
                *scale_mode = ScaleMode::Static((*s * factor).max(1e-6));
            }
        }
    }

    fn paf_pool(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        let k = self.spec.k;
        let stride = self.spec.stride;
        let oh = (h - k) / stride + 1;
        let ow = (w - k) / stride + 1;
        // First pass: find the max |pairwise difference| for scaling.
        let mut batch_diff_max = 1e-6f32;
        let data = x.data();
        let (paf, scale_mode, running_max) = match &mut self.mode {
            PoolMode::Paf {
                paf,
                scale_mode,
                running_max,
            } => (paf.clone(), *scale_mode, running_max),
            PoolMode::Exact => unreachable!("paf_pool in exact mode"),
        };
        for b in 0..n {
            for ci in 0..c {
                let base = (b * c + ci) * h * w;
                for oi in 0..oh {
                    for oj in 0..ow {
                        let mut lo = f32::INFINITY;
                        let mut hi = f32::NEG_INFINITY;
                        for ki in 0..k {
                            for kj in 0..k {
                                let v = data[base + (oi * stride + ki) * w + oj * stride + kj];
                                lo = lo.min(v);
                                hi = hi.max(v);
                            }
                        }
                        batch_diff_max = batch_diff_max.max(hi - lo);
                    }
                }
            }
        }
        if mode == Mode::Train {
            *running_max = running_max.max(batch_diff_max);
        }
        let s = match scale_mode {
            ScaleMode::Dynamic => batch_diff_max,
            ScaleMode::Static(v) => v.max(1e-6),
        } as f64;
        // Second pass: sequential PAF-max fold over each window.
        let mut out = Vec::with_capacity(n * c * oh * ow);
        for b in 0..n {
            for ci in 0..c {
                let base = (b * c + ci) * h * w;
                for oi in 0..oh {
                    for oj in 0..ow {
                        let mut acc = data[base + (oi * stride) * w + oj * stride] as f64;
                        for ki in 0..k {
                            for kj in 0..k {
                                if ki == 0 && kj == 0 {
                                    continue;
                                }
                                let v =
                                    data[base + (oi * stride + ki) * w + oj * stride + kj] as f64;
                                let d = acc - v;
                                acc = ((acc + v) + d * paf.eval(d / s)) / 2.0;
                            }
                        }
                        out.push(acc as f32);
                    }
                }
            }
        }
        Tensor::from_vec(out, &[n, c, oh, ow])
    }
}

impl Layer for MaxPoolSlot {
    fn name(&self) -> String {
        match self.mode {
            PoolMode::Exact => format!("MaxPool[{}]", self.index),
            PoolMode::Paf { .. } => format!("PafMaxPool[{}]", self.index),
        }
    }

    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        if let Some(buf) = &mut self.probe {
            let stride = (x.numel() / 512).max(1);
            buf.extend(x.data().iter().step_by(stride).copied());
        }
        // Winner indices from the exact pool drive the backward pass in
        // both modes (straight-through for the PAF variant).
        let (exact, idx) = max_pool2d(x, &self.spec);
        self.cache = Some(idx);
        match self.mode {
            PoolMode::Exact => exact,
            PoolMode::Paf { .. } => self.paf_pool(x, mode),
        }
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        max_pool2d_backward(
            grad_output,
            self.cache.as_ref().expect("backward before forward"),
        )
    }

    fn visit_slots(&mut self, f: &mut dyn FnMut(SlotRef<'_>)) {
        f(SlotRef::MaxPool(self));
    }
}

/// Average pooling layer (polynomial — never needs replacement).
pub struct AvgPool2d {
    spec: PoolSpec,
    input_dims: Vec<usize>,
}

impl AvgPool2d {
    /// Creates an average-pool layer.
    pub fn new(k: usize, stride: usize) -> Self {
        AvgPool2d {
            spec: PoolSpec::new(k, stride),
            input_dims: Vec::new(),
        }
    }
}

impl Layer for AvgPool2d {
    fn name(&self) -> String {
        format!("AvgPool2d(k{})", self.spec.k)
    }

    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        self.input_dims = x.dims().to_vec();
        avg_pool2d(x, &self.spec)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        avg_pool2d_backward(grad_output, &self.input_dims, &self.spec)
    }
}

/// Global average pooling `[N,C,H,W] -> [N,C]`.
#[derive(Default)]
pub struct GlobalAvgPool {
    input_dims: Vec<usize>,
}

impl GlobalAvgPool {
    /// Creates a global average pool.
    pub fn new() -> Self {
        GlobalAvgPool::default()
    }
}

impl Layer for GlobalAvgPool {
    fn name(&self) -> String {
        "GlobalAvgPool".to_string()
    }

    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        self.input_dims = x.dims().to_vec();
        global_avg_pool(x)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        global_avg_pool_backward(grad_output, &self.input_dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartpaf_polyfit::PafForm;

    #[test]
    fn exact_relu_forward_backward() {
        let mut slot = ReluSlot::new(0);
        let x = Tensor::from_vec(vec![-2.0, -0.5, 0.5, 2.0], &[1, 4]);
        let y = slot.forward(&x, Mode::Train);
        assert_eq!(y.data(), &[0.0, 0.0, 0.5, 2.0]);
        let g = slot.backward(&Tensor::ones(&[1, 4]));
        assert_eq!(g.data(), &[0.0, 0.0, 1.0, 1.0]);
        assert!(!slot.is_replaced());
    }

    #[test]
    fn paf_relu_approximates_exact() {
        let mut slot = ReluSlot::new(0);
        slot.replace_with(
            &CompositePaf::from_form(PafForm::F1SqG1Sq),
            ScaleMode::Dynamic,
        );
        assert!(slot.is_replaced());
        let x = Tensor::from_vec(vec![-0.8, -0.2, 0.3, 0.9], &[1, 4]);
        let y = slot.forward(&x, Mode::Eval);
        let expect = [0.0, 0.0, 0.3, 0.9];
        for (a, b) in y.data().iter().zip(&expect) {
            assert!((a - b).abs() < 0.07, "{a} vs {b}");
        }
    }

    #[test]
    fn paf_relu_input_gradcheck() {
        let mut paf = PafActivation::from_composite(
            &CompositePaf::from_form(PafForm::F1G2),
            ScaleMode::Static(1.0),
        );
        let x = Tensor::from_vec(vec![-0.7, -0.2, 0.15, 0.6], &[1, 4]);
        let _ = paf.forward(&x, Mode::Eval);
        let gx = paf.backward(&Tensor::ones(&[1, 4]));
        let eps = 1e-3;
        for i in 0..4 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = (paf.forward(&xp, Mode::Eval).sum() - paf.forward(&xm, Mode::Eval).sum())
                / (2.0 * eps);
            assert!(
                (fd - gx.data()[i]).abs() < 1e-2,
                "dX[{i}]: fd {fd} vs {}",
                gx.data()[i]
            );
        }
    }

    #[test]
    fn paf_relu_coeff_gradcheck() {
        let mut paf = PafActivation::from_composite(
            &CompositePaf::from_form(PafForm::F1G2),
            ScaleMode::Static(1.0),
        );
        let x = Tensor::from_vec(vec![-0.5, 0.4, 0.8], &[1, 3]);
        let _ = paf.forward(&x, Mode::Eval);
        let _ = paf.backward(&Tensor::ones(&[1, 3]));
        let analytic: Vec<f32> = paf.coeffs.grad.data().to_vec();
        let eps = 1e-3f32;
        for (i, &analytic_grad) in analytic.iter().enumerate() {
            let orig = paf.coeffs.value.data()[i];
            paf.coeffs.value.data_mut()[i] = orig + eps;
            let lp = paf.forward(&x, Mode::Eval).sum();
            paf.coeffs.value.data_mut()[i] = orig - eps;
            let lm = paf.forward(&x, Mode::Eval).sum();
            paf.coeffs.value.data_mut()[i] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - analytic_grad).abs() < 0.05 * (1.0 + fd.abs()),
                "dC[{i}]: fd {fd} vs {analytic_grad}"
            );
        }
    }

    #[test]
    fn dynamic_scaling_tracks_running_max() {
        let mut paf = PafActivation::from_composite(
            &CompositePaf::from_form(PafForm::Alpha7),
            ScaleMode::Dynamic,
        );
        let x1 = Tensor::from_vec(vec![-3.0, 1.0], &[1, 2]);
        let x2 = Tensor::from_vec(vec![5.0, -1.0], &[1, 2]);
        paf.forward(&x1, Mode::Train);
        assert_eq!(paf.running_max(), 3.0);
        paf.forward(&x2, Mode::Train);
        assert_eq!(paf.running_max(), 5.0);
        paf.freeze_scale();
        assert_eq!(paf.scale_mode, ScaleMode::Static(5.0));
    }

    #[test]
    fn eval_mode_does_not_update_running_max() {
        let mut paf = PafActivation::from_composite(
            &CompositePaf::from_form(PafForm::Alpha7),
            ScaleMode::Dynamic,
        );
        paf.forward(&Tensor::from_vec(vec![10.0], &[1, 1]), Mode::Eval);
        assert_eq!(paf.running_max(), 0.0);
    }

    #[test]
    fn dynamic_scale_keeps_paf_accurate_on_large_inputs() {
        // Without scaling, |x| >> 1 explodes a composite PAF; DS keeps
        // inputs in the accurate band (the paper's §4.5 motivation).
        let mut paf = PafActivation::from_composite(
            &CompositePaf::from_form(PafForm::F1SqG1Sq),
            ScaleMode::Dynamic,
        );
        let x = Tensor::from_vec(vec![-40.0, -10.0, 15.0, 50.0], &[1, 4]);
        let y = paf.forward(&x, Mode::Train);
        let expect = [0.0, 0.0, 15.0, 50.0];
        for (a, b) in y.data().iter().zip(&expect) {
            assert!((a - b).abs() < 4.0, "{a} vs {b}");
        }
    }

    #[test]
    fn exact_maxpool_slot() {
        let mut slot = MaxPoolSlot::new(0, 2, 2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let y = slot.forward(&x, Mode::Train);
        assert_eq!(y.data(), &[4.0]);
        let g = slot.backward(&Tensor::from_vec(vec![1.0], &[1, 1, 1, 1]));
        assert_eq!(g.data(), &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn paf_maxpool_approximates_exact() {
        let mut slot = MaxPoolSlot::new(0, 2, 2);
        slot.replace_with(
            &CompositePaf::from_form(PafForm::F1SqG1Sq),
            ScaleMode::Dynamic,
        );
        let x = Tensor::from_vec(
            vec![0.1, 0.9, -0.3, 0.2, 0.5, 0.4, 0.6, -0.1],
            &[1, 2, 2, 2],
        );
        let y = slot.forward(&x, Mode::Eval);
        assert_eq!(y.dims(), &[1, 2, 1, 1]);
        assert!((y.data()[0] - 0.9).abs() < 0.1, "{}", y.data()[0]);
        assert!((y.data()[1] - 0.6).abs() < 0.1, "{}", y.data()[1]);
    }

    #[test]
    fn paf_maxpool_error_accumulates_with_window_size() {
        // Nested PAF calls accumulate error (paper §5.4.3): a 3x3
        // window (8 nested max ops) should err more than a 2x2 (3 ops).
        let paf = CompositePaf::from_form(PafForm::F1G2);
        let mk = |k: usize| {
            let mut slot = MaxPoolSlot::new(0, k, k);
            slot.replace_with(&paf, ScaleMode::Static(1.0));
            slot
        };
        let mut rng = smartpaf_tensor::Rng64::new(42);
        let x2 = Tensor::rand_uniform(&[4, 2, 4, 4], -0.5, 0.5, &mut rng);
        let x3 = Tensor::rand_uniform(&[4, 2, 6, 6], -0.5, 0.5, &mut rng);
        let err = |slot: &mut MaxPoolSlot, x: &Tensor| {
            let approx = slot.forward(x, Mode::Eval);
            let mut exact_slot = MaxPoolSlot::new(0, slot.spec.k, slot.spec.stride);
            let exact = exact_slot.forward(x, Mode::Eval);
            approx.sub(&exact).map(f32::abs).mean()
        };
        let e2 = err(&mut mk(2), &x2);
        let e3 = err(&mut mk(3), &x3);
        assert!(e3 > e2, "3x3 error {e3} should exceed 2x2 error {e2}");
    }

    #[test]
    fn avgpool_and_global_layers() {
        let mut ap = AvgPool2d::new(2, 2);
        let x = Tensor::arange(16, 0.0, 1.0).reshape(&[1, 1, 4, 4]);
        let y = ap.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[2.5, 4.5, 10.5, 12.5]);
        let g = ap.backward(&Tensor::ones(&[1, 1, 2, 2]));
        assert_eq!(g.sum(), 4.0);

        let mut gp = GlobalAvgPool::new();
        let y = gp.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[7.5]);
        let g = gp.backward(&Tensor::ones(&[1, 1]));
        assert_eq!(g.dims(), &[1, 1, 4, 4]);
    }

    #[test]
    fn restore_exact_reverts() {
        let mut slot = ReluSlot::new(3);
        slot.replace_with(&CompositePaf::from_form(PafForm::F1G2), ScaleMode::Dynamic);
        assert!(slot.is_replaced());
        slot.restore_exact();
        assert!(!slot.is_replaced());
        assert_eq!(slot.index(), 3);
    }
    #[test]
    fn culled_relu_is_identity() {
        let mut slot = ReluSlot::new(0);
        slot.cull();
        assert!(slot.is_culled());
        assert!(!slot.is_replaced());
        let x = Tensor::from_vec(vec![-2.0, -0.5, 0.5, 2.0], &[1, 4]);
        let y = slot.forward(&x, Mode::Eval);
        assert_eq!(y.data(), x.data());
        let g = slot.backward(&Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]));
        assert_eq!(g.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn culled_relu_has_no_params_and_restores() {
        let mut slot = ReluSlot::new(3);
        slot.replace_with(&CompositePaf::from_form(PafForm::F1G2), ScaleMode::Dynamic);
        assert!(!slot.params_mut().is_empty());
        slot.cull();
        assert!(slot.params_mut().is_empty());
        assert!(slot.paf().is_none());
        assert!(slot.name().starts_with("CulledReLU"));
        slot.restore_exact();
        assert!(!slot.is_culled());
        let x = Tensor::from_vec(vec![-1.0, 1.0], &[1, 2]);
        let y = slot.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[0.0, 1.0]);
    }
}
