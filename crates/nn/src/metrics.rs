//! Classification metrics.

use smartpaf_tensor::Tensor;

/// Top-1 accuracy of logits `[N, C]` against integer labels.
///
/// # Panics
///
/// Panics unless logits are 2-D with one label per row.
pub fn top1_accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    assert_eq!(logits.shape().ndim(), 2, "logits must be [N, C]");
    assert_eq!(logits.dims()[0], labels.len(), "one label per sample");
    let preds = logits.argmax_rows();
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f32 / labels.len() as f32
}

/// Streaming accuracy accumulator over many batches.
#[derive(Debug, Default, Clone, Copy)]
pub struct AccuracyMeter {
    correct: usize,
    total: usize,
}

impl AccuracyMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        AccuracyMeter::default()
    }

    /// Adds a batch of predictions.
    pub fn update(&mut self, logits: &Tensor, labels: &[usize]) {
        let preds = logits.argmax_rows();
        self.correct += preds.iter().zip(labels).filter(|(p, l)| p == l).count();
        self.total += labels.len();
    }

    /// Current accuracy in `[0, 1]` (zero when empty).
    pub fn accuracy(&self) -> f32 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f32 / self.total as f32
        }
    }

    /// Number of samples seen.
    pub fn total(&self) -> usize {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_and_zero_accuracy() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert_eq!(top1_accuracy(&logits, &[0, 1]), 1.0);
        assert_eq!(top1_accuracy(&logits, &[1, 0]), 0.0);
    }

    #[test]
    fn meter_accumulates() {
        let mut m = AccuracyMeter::new();
        let a = Tensor::from_vec(vec![1.0, 0.0], &[1, 2]);
        let b = Tensor::from_vec(vec![0.0, 1.0], &[1, 2]);
        m.update(&a, &[0]);
        m.update(&b, &[0]);
        assert_eq!(m.accuracy(), 0.5);
        assert_eq!(m.total(), 2);
    }

    #[test]
    fn empty_meter_is_zero() {
        assert_eq!(AccuracyMeter::new().accuracy(), 0.0);
    }
}
