//! The layer abstraction and structural containers.

use crate::act::{MaxPoolSlot, ReluSlot};
use crate::param::Param;
use smartpaf_tensor::Tensor;

/// Forward-pass mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training: batch statistics, dropout active, dynamic scaling
    /// updates running maxima.
    Train,
    /// Evaluation: running statistics, dropout inactive.
    Eval,
}

/// A mutable reference to a replaceable non-polynomial operator slot.
///
/// The SMART-PAF replacement engine walks these in inference order
/// (Progressive Approximation replaces them one at a time).
pub enum SlotRef<'a> {
    /// A ReLU activation slot.
    Relu(&'a mut ReluSlot),
    /// A MaxPooling slot.
    MaxPool(&'a mut MaxPoolSlot),
}

/// A neural-network layer with explicit forward/backward passes.
///
/// Layers cache whatever they need for the backward pass internally,
/// so `backward` must be called after (and paired with) `forward`.
pub trait Layer {
    /// Human-readable layer name (used in training logs).
    fn name(&self) -> String;

    /// Computes the layer output, caching state for `backward`.
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor;

    /// Propagates the output gradient, accumulating parameter
    /// gradients internally and returning the input gradient.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Mutable access to this layer's parameters (empty by default).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Visits every non-polynomial slot in inference order.
    fn visit_slots(&mut self, _f: &mut dyn FnMut(SlotRef<'_>)) {}
}

/// A sequential stack of layers.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    label: String,
}

impl Sequential {
    /// Creates an empty stack with a label.
    pub fn new(label: impl Into<String>) -> Self {
        Sequential {
            layers: Vec::new(),
            label: label.into(),
        }
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the stack has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn name(&self) -> String {
        format!("Sequential({})", self.label)
    }

    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let mut acc = x.clone();
        for layer in &mut self.layers {
            acc = layer.forward(&acc, mode);
        }
        acc
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    fn visit_slots(&mut self, f: &mut dyn FnMut(SlotRef<'_>)) {
        for layer in &mut self.layers {
            layer.visit_slots(f);
        }
    }
}

/// Flattens `[N, ...]` to `[N, prod(...)]`.
#[derive(Debug, Default)]
pub struct Flatten {
    input_dims: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn name(&self) -> String {
        "Flatten".to_string()
    }

    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        self.input_dims = x.dims().to_vec();
        let n = x.dims()[0];
        x.reshape(&[n, x.numel() / n])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        grad_output.reshape(&self.input_dims)
    }
}

/// Inverted dropout. Inactive in [`Mode::Eval`].
pub struct Dropout {
    /// Drop probability.
    pub p: f32,
    mask: Option<Tensor>,
    rng: smartpaf_tensor::Rng64,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "invalid drop probability {p}");
        Dropout {
            p,
            mask: None,
            rng: smartpaf_tensor::Rng64::new(seed),
        }
    }
}

impl Layer for Dropout {
    fn name(&self) -> String {
        format!("Dropout(p={})", self.p)
    }

    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        if mode == Mode::Eval || self.p == 0.0 {
            self.mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let mut mask = Tensor::zeros(x.dims());
        for m in mask.data_mut() {
            *m = if self.rng.next_f32() < keep {
                1.0 / keep
            } else {
                0.0
            };
        }
        self.mask = Some(mask.clone());
        x.mul(&mask)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        match &self.mask {
            Some(m) => grad_output.mul(m),
            None => grad_output.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act::ReluSlot;

    #[test]
    fn sequential_composes() {
        let mut net = Sequential::new("test")
            .push(Flatten::new())
            .push(ReluSlot::new(0));
        let x = Tensor::from_vec(vec![-1.0, 2.0, -3.0, 4.0], &[1, 2, 2, 1]);
        let y = net.forward(&x, Mode::Eval);
        assert_eq!(y.dims(), &[1, 4]);
        assert_eq!(y.data(), &[0.0, 2.0, 0.0, 4.0]);
    }

    #[test]
    fn sequential_backward_reverses() {
        let mut net = Sequential::new("t")
            .push(ReluSlot::new(0))
            .push(Flatten::new());
        let x = Tensor::from_vec(vec![1.0, -1.0], &[1, 2]);
        let _ = net.forward(&x, Mode::Train);
        let g = net.backward(&Tensor::ones(&[1, 2]));
        assert_eq!(g.data(), &[1.0, 0.0]);
    }

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::ones(&[2, 3, 4, 5]);
        let y = f.forward(&x, Mode::Train);
        assert_eq!(y.dims(), &[2, 60]);
        let g = f.backward(&y);
        assert_eq!(g.dims(), &[2, 3, 4, 5]);
    }

    #[test]
    fn dropout_eval_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::ones(&[4, 4]);
        assert_eq!(d.forward(&x, Mode::Eval), x);
    }

    #[test]
    fn dropout_train_scales_survivors() {
        let mut d = Dropout::new(0.5, 2);
        let x = Tensor::ones(&[100, 100]);
        let y = d.forward(&x, Mode::Train);
        // Survivors are scaled by 1/keep = 2, everything else zero.
        let nonzero = y.data().iter().filter(|&&v| v != 0.0).count();
        assert!(y.data().iter().all(|&v| v == 0.0 || v == 2.0));
        let frac = nonzero as f32 / y.numel() as f32;
        assert!((frac - 0.5).abs() < 0.05, "survivor fraction {frac}");
        // Backward masks consistently.
        let g = d.backward(&Tensor::ones(&[100, 100]));
        for (gy, yy) in g.data().iter().zip(y.data()) {
            assert_eq!(*gy != 0.0, *yy != 0.0);
        }
    }

    #[test]
    fn visit_slots_counts_relus() {
        let mut net = Sequential::new("t")
            .push(ReluSlot::new(0))
            .push(Flatten::new())
            .push(ReluSlot::new(1));
        let mut count = 0;
        net.visit_slots(&mut |s| {
            if matches!(s, SlotRef::Relu(_)) {
                count += 1;
            }
        });
        assert_eq!(count, 2);
    }
}
