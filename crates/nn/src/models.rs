//! The paper's evaluation models: VGG-19, ResNet-18, and the 7-layer
//! CNN of SAFENet's setting (Lou et al. 2021).
//!
//! Layer *topology* is faithful — VGG-19 has exactly 18 ReLU + 5
//! MaxPool slots and ResNet-18 has 17 ReLU + 1 MaxPool, the counts the
//! paper's Progressive Approximation iterates over. A channel
//! `width_mult` scales widths so CPU-only fine-tuning fits the
//! experiment harness; `width_mult = 1.0` gives the full-size models.

use crate::act::{GlobalAvgPool, MaxPoolSlot, ReluSlot};
use crate::conv_layers::{BatchNorm2d, Conv2d, Linear};
use crate::layer::{Flatten, Layer, Mode, SlotRef};
use crate::resnet::ResidualBlock;
use crate::Sequential;
use smartpaf_tensor::{Rng64, Tensor};

/// A complete model: a layer graph plus slot bookkeeping.
pub struct Model {
    net: Sequential,
    /// Human-readable architecture name.
    pub arch: String,
}

impl Model {
    /// Forward pass.
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        self.net.forward(x, mode)
    }

    /// Backward pass.
    pub fn backward(&mut self, grad: &Tensor) -> Tensor {
        self.net.backward(grad)
    }

    /// All trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut crate::param::Param> {
        self.net.params_mut()
    }

    /// Visits non-polynomial slots in inference order.
    pub fn visit_slots(&mut self, f: &mut dyn FnMut(SlotRef<'_>)) {
        self.net.visit_slots(f);
    }

    /// Counts `(relu, maxpool)` slots.
    pub fn slot_counts(&mut self) -> (usize, usize) {
        let mut relu = 0;
        let mut pool = 0;
        self.visit_slots(&mut |s| match s {
            SlotRef::Relu(_) => relu += 1,
            SlotRef::MaxPool(_) => pool += 1,
        });
        (relu, pool)
    }

    /// Total scalar parameter count.
    pub fn num_parameters(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.numel()).sum()
    }
}

fn ch(base: usize, width_mult: f32) -> usize {
    ((base as f32 * width_mult).round() as usize).max(4)
}

/// VGG-19 for 32×32 inputs: 16 conv layers + 3 FC, 18 ReLU slots and
/// 5 MaxPool slots (paper §5.1).
pub fn vgg19(num_classes: usize, width_mult: f32, rng: &mut Rng64) -> Model {
    let cfg: [&[usize]; 5] = [
        &[64, 64],
        &[128, 128],
        &[256, 256, 256, 256],
        &[512, 512, 512, 512],
        &[512, 512, 512, 512],
    ];
    let mut net = Sequential::new("vgg19");
    let mut in_ch = 3;
    let mut relu_idx = 0;
    let mut pool_idx = 0;
    let mut slot = 0;
    for stage in cfg {
        for &out in stage {
            let out = ch(out, width_mult);
            net.push_boxed(Box::new(Conv2d::new(in_ch, out, 3, 1, 1, rng)));
            net.push_boxed(Box::new(BatchNorm2d::new(out)));
            net.push_boxed(Box::new(ReluSlot::new(slot)));
            relu_idx += 1;
            slot += 1;
            in_ch = out;
        }
        net.push_boxed(Box::new(MaxPoolSlot::new(slot, 2, 2)));
        pool_idx += 1;
        slot += 1;
    }
    // 32 / 2^5 = 1: feature map is [N, C, 1, 1].
    net.push_boxed(Box::new(Flatten::new()));
    let hidden = ch(512, width_mult);
    net.push_boxed(Box::new(Linear::new(in_ch, hidden, rng)));
    net.push_boxed(Box::new(ReluSlot::new(slot)));
    slot += 1;
    net.push_boxed(Box::new(Linear::new(hidden, hidden, rng)));
    net.push_boxed(Box::new(ReluSlot::new(slot)));
    net.push_boxed(Box::new(Linear::new(hidden, num_classes, rng)));
    debug_assert_eq!(relu_idx, 16);
    debug_assert_eq!(pool_idx, 5);
    Model {
        net,
        arch: format!("VGG-19(x{width_mult})"),
    }
}

fn basic_block(
    in_ch: usize,
    out_ch: usize,
    stride: usize,
    slot: &mut usize,
    rng: &mut Rng64,
) -> ResidualBlock {
    let main = Sequential::new("main")
        .push(Conv2d::new(in_ch, out_ch, 3, stride, 1, rng))
        .push(BatchNorm2d::new(out_ch))
        .push(ReluSlot::new({
            let s = *slot;
            *slot += 1;
            s
        }))
        .push(Conv2d::new(out_ch, out_ch, 3, 1, 1, rng))
        .push(BatchNorm2d::new(out_ch));
    let shortcut = if stride != 1 || in_ch != out_ch {
        Some(
            Sequential::new("shortcut")
                .push(Conv2d::new(in_ch, out_ch, 1, stride, 0, rng))
                .push(BatchNorm2d::new(out_ch)),
        )
    } else {
        None
    };
    let post = ReluSlot::new({
        let s = *slot;
        *slot += 1;
        s
    });
    ResidualBlock::new(main, shortcut, post, format!("{in_ch}->{out_ch}s{stride}"))
}

/// ResNet-18 (ImageNet layout) for 32×32 inputs: 17 ReLU slots and
/// 1 MaxPool slot (paper §5.1).
pub fn resnet18(num_classes: usize, width_mult: f32, rng: &mut Rng64) -> Model {
    let mut net = Sequential::new("resnet18");
    let mut slot = 0;
    let c64 = ch(64, width_mult);
    // Stem: 7x7/2 conv + BN + ReLU + 3x3/2 maxpool.
    net.push_boxed(Box::new(Conv2d::new(3, c64, 7, 2, 3, rng)));
    net.push_boxed(Box::new(BatchNorm2d::new(c64)));
    net.push_boxed(Box::new(ReluSlot::new(slot)));
    slot += 1;
    net.push_boxed(Box::new(MaxPoolSlot::new(slot, 3, 2)));
    slot += 1;
    // Four stages of two basic blocks.
    let widths = [
        c64,
        ch(128, width_mult),
        ch(256, width_mult),
        ch(512, width_mult),
    ];
    let mut in_ch = c64;
    for (i, &w) in widths.iter().enumerate() {
        let stride = if i == 0 { 1 } else { 2 };
        net.push_boxed(Box::new(basic_block(in_ch, w, stride, &mut slot, rng)));
        net.push_boxed(Box::new(basic_block(w, w, 1, &mut slot, rng)));
        in_ch = w;
    }
    net.push_boxed(Box::new(GlobalAvgPool::new()));
    net.push_boxed(Box::new(Linear::new(in_ch, num_classes, rng)));
    Model {
        net,
        arch: format!("ResNet-18(x{width_mult})"),
    }
}

/// The 7-layer CNN of the SAFENet setting (Lou et al. 2021): 6 conv +
/// 1 FC with 6 ReLU and 2 MaxPool slots; the model prior works used to
/// show PAF training diverging above degree 5.
pub fn mini_cnn(num_classes: usize, width_mult: f32, rng: &mut Rng64) -> Model {
    let mut net = Sequential::new("mini_cnn");
    let mut slot = 0;
    let widths = [32, 32, 64, 64, 128, 128];
    let mut in_ch = 3;
    for (i, &w) in widths.iter().enumerate() {
        let w = ch(w, width_mult);
        net.push_boxed(Box::new(Conv2d::new(in_ch, w, 3, 1, 1, rng)));
        net.push_boxed(Box::new(BatchNorm2d::new(w)));
        net.push_boxed(Box::new(ReluSlot::new(slot)));
        slot += 1;
        if i == 1 || i == 3 {
            net.push_boxed(Box::new(MaxPoolSlot::new(slot, 2, 2)));
            slot += 1;
        }
        in_ch = w;
    }
    net.push_boxed(Box::new(GlobalAvgPool::new()));
    net.push_boxed(Box::new(Linear::new(in_ch, num_classes, rng)));
    Model {
        net,
        arch: format!("MiniCNN(x{width_mult})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg19_slot_counts_match_paper() {
        let mut rng = Rng64::new(1);
        let mut m = vgg19(10, 0.0625, &mut rng);
        assert_eq!(m.slot_counts(), (18, 5));
    }

    #[test]
    fn resnet18_slot_counts_match_paper() {
        let mut rng = Rng64::new(2);
        let mut m = resnet18(10, 0.0625, &mut rng);
        assert_eq!(m.slot_counts(), (17, 1));
    }

    #[test]
    fn mini_cnn_runs_forward_backward() {
        let mut rng = Rng64::new(3);
        let mut m = mini_cnn(10, 0.25, &mut rng);
        let x = Tensor::rand_normal(&[2, 3, 16, 16], 0.0, 1.0, &mut rng);
        let y = m.forward(&x, Mode::Train);
        assert_eq!(y.dims(), &[2, 10]);
        let g = m.backward(&Tensor::ones(&[2, 10]));
        assert_eq!(g.dims(), x.dims());
    }

    #[test]
    fn vgg19_forward_shape() {
        let mut rng = Rng64::new(4);
        let mut m = vgg19(10, 0.0625, &mut rng);
        let x = Tensor::rand_normal(&[1, 3, 32, 32], 0.0, 1.0, &mut rng);
        let y = m.forward(&x, Mode::Eval);
        assert_eq!(y.dims(), &[1, 10]);
    }

    #[test]
    fn resnet18_forward_shape() {
        let mut rng = Rng64::new(5);
        let mut m = resnet18(100, 0.0625, &mut rng);
        let x = Tensor::rand_normal(&[1, 3, 32, 32], 0.0, 1.0, &mut rng);
        let y = m.forward(&x, Mode::Eval);
        assert_eq!(y.dims(), &[1, 100]);
    }

    #[test]
    fn slot_indices_are_inference_ordered() {
        let mut rng = Rng64::new(6);
        let mut m = resnet18(10, 0.0625, &mut rng);
        let mut indices = Vec::new();
        m.visit_slots(&mut |s| {
            indices.push(match s {
                SlotRef::Relu(r) => r.index(),
                SlotRef::MaxPool(p) => p.index(),
            });
        });
        let sorted: Vec<usize> = (0..indices.len()).collect();
        assert_eq!(indices, sorted);
    }

    #[test]
    fn width_mult_scales_parameters() {
        let mut rng = Rng64::new(7);
        let mut small = mini_cnn(10, 0.125, &mut rng);
        let mut big = mini_cnn(10, 0.5, &mut rng);
        assert!(big.num_parameters() > 4 * small.num_parameters());
    }
}
