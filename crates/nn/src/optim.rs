//! Optimisers with per-group hyperparameters.
//!
//! Tab. 5 of the paper trains PAF coefficients and "other layers" with
//! different learning rates and weight decay; Alternate Training (AT)
//! freezes one group while the other trains. Both needs are expressed
//! with [`GroupConfig`] — set a group's learning rate to zero to
//! freeze it.

use crate::param::{Param, ParamGroup};

/// Hyperparameters for one parameter group.
#[derive(Debug, Clone, Copy)]
pub struct GroupConfig {
    /// Learning rate (zero freezes the group).
    pub lr: f32,
    /// Decoupled (AdamW-style) weight decay.
    pub weight_decay: f32,
}

/// Full optimiser configuration: one [`GroupConfig`] per group.
#[derive(Debug, Clone, Copy)]
pub struct OptimConfig {
    /// Configuration for PAF coefficients.
    pub paf: GroupConfig,
    /// Configuration for all other parameters.
    pub other: GroupConfig,
}

impl OptimConfig {
    /// The paper's Tab. 5 baseline hyperparameters: Adam, lr 1e-4 for
    /// PAF coefficients (decay 0.01), lr 1e-5 for other layers
    /// (decay 0.1).
    pub fn paper_tab5() -> Self {
        OptimConfig {
            paf: GroupConfig {
                lr: 1e-4,
                weight_decay: 0.01,
            },
            other: GroupConfig {
                lr: 1e-5,
                weight_decay: 0.1,
            },
        }
    }

    /// Freezes the "other layers" group (AT step training PAFs only).
    pub fn freeze_other(mut self) -> Self {
        self.other.lr = 0.0;
        self
    }

    /// Freezes the PAF-coefficient group (AT step training other
    /// layers only).
    pub fn freeze_paf(mut self) -> Self {
        self.paf.lr = 0.0;
        self
    }

    fn for_group(&self, g: ParamGroup) -> GroupConfig {
        match g {
            ParamGroup::PafCoeff => self.paf,
            ParamGroup::Other => self.other,
        }
    }
}

/// Adam with decoupled weight decay and per-group configs.
///
/// State is positional: call [`Adam::step`] with the same parameter
/// list (same order, same shapes) every time — true for any fixed
/// network, and checked at runtime.
pub struct Adam {
    config: OptimConfig,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates an Adam optimiser.
    pub fn new(config: OptimConfig) -> Self {
        Adam {
            config,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Updates the optimiser configuration (used by AT to swap which
    /// group is frozen without losing moment state).
    pub fn set_config(&mut self, config: OptimConfig) {
        self.config = config;
    }

    /// Current configuration.
    pub fn config(&self) -> OptimConfig {
        self.config
    }

    /// Applies one update step to `params` and zeroes their gradients.
    ///
    /// # Panics
    ///
    /// Panics if the parameter list changes shape between calls.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.is_empty() {
            self.m = params.iter().map(|p| vec![0.0; p.numel()]).collect();
            self.v = params.iter().map(|p| vec![0.0; p.numel()]).collect();
        }
        assert_eq!(self.m.len(), params.len(), "parameter list changed");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for (idx, p) in params.iter_mut().enumerate() {
            assert_eq!(self.m[idx].len(), p.numel(), "parameter {idx} resized");
            let cfg = self.config.for_group(p.group);
            if cfg.lr == 0.0 {
                p.zero_grad();
                continue;
            }
            let m = &mut self.m[idx];
            let v = &mut self.v[idx];
            let gdata = p.grad.data().to_vec();
            for (i, val) in p.value.data_mut().iter_mut().enumerate() {
                let g = gdata[i];
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                *val -= cfg.lr * (mhat / (vhat.sqrt() + self.eps) + cfg.weight_decay * *val);
            }
            p.zero_grad();
        }
    }
}

/// Plain SGD with per-group learning rates (no momentum) — used by the
/// convergence analysis tests, which reason about SGD (paper §3.1).
pub struct Sgd {
    config: OptimConfig,
}

impl Sgd {
    /// Creates an SGD optimiser.
    pub fn new(config: OptimConfig) -> Self {
        Sgd { config }
    }

    /// Applies one update step and zeroes gradients.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        for p in params.iter_mut() {
            let cfg = self.config.for_group(p.group);
            if cfg.lr != 0.0 {
                let gdata = p.grad.data().to_vec();
                for (val, g) in p.value.data_mut().iter_mut().zip(gdata) {
                    *val -= cfg.lr * (g + cfg.weight_decay * *val);
                }
            }
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartpaf_tensor::Tensor;

    fn quad_param(group: ParamGroup) -> Param {
        Param::new(Tensor::from_vec(vec![5.0], &[1]), group)
    }

    /// Minimise f(x) = x² with analytic gradient 2x.
    fn run_steps(opt: &mut Adam, p: &mut Param, steps: usize) {
        for _ in 0..steps {
            p.grad.data_mut()[0] = 2.0 * p.value.data()[0];
            opt.step(&mut [p]);
        }
    }

    #[test]
    fn adam_descends_quadratic() {
        let cfg = OptimConfig {
            paf: GroupConfig {
                lr: 0.1,
                weight_decay: 0.0,
            },
            other: GroupConfig {
                lr: 0.1,
                weight_decay: 0.0,
            },
        };
        let mut opt = Adam::new(cfg);
        let mut p = quad_param(ParamGroup::Other);
        run_steps(&mut opt, &mut p, 200);
        assert!(p.value.data()[0].abs() < 0.1, "{}", p.value.data()[0]);
    }

    #[test]
    fn frozen_group_does_not_move() {
        let cfg = OptimConfig::paper_tab5().freeze_paf();
        let mut opt = Adam::new(cfg);
        let mut p = quad_param(ParamGroup::PafCoeff);
        run_steps(&mut opt, &mut p, 10);
        assert_eq!(p.value.data()[0], 5.0);
        // Gradients still get cleared so stale grads cannot leak.
        assert_eq!(p.grad.data()[0], 0.0);
    }

    #[test]
    fn groups_use_different_learning_rates() {
        let cfg = OptimConfig {
            paf: GroupConfig {
                lr: 0.5,
                weight_decay: 0.0,
            },
            other: GroupConfig {
                lr: 0.001,
                weight_decay: 0.0,
            },
        };
        let mut opt = Adam::new(cfg);
        let mut fast = quad_param(ParamGroup::PafCoeff);
        let mut slow = quad_param(ParamGroup::Other);
        for _ in 0..20 {
            fast.grad.data_mut()[0] = 2.0 * fast.value.data()[0];
            slow.grad.data_mut()[0] = 2.0 * slow.value.data()[0];
            opt.step(&mut [&mut fast, &mut slow]);
        }
        let fast_move = (5.0 - fast.value.data()[0]).abs();
        let slow_move = (5.0 - slow.value.data()[0]).abs();
        assert!(fast_move > slow_move * 5.0, "{fast_move} vs {slow_move}");
    }

    #[test]
    fn weight_decay_shrinks_without_gradient() {
        let cfg = OptimConfig {
            paf: GroupConfig {
                lr: 0.1,
                weight_decay: 0.5,
            },
            other: GroupConfig {
                lr: 0.1,
                weight_decay: 0.5,
            },
        };
        let mut opt = Adam::new(cfg);
        let mut p = quad_param(ParamGroup::Other);
        // Zero gradient: only decay acts.
        opt.step(&mut [&mut p]);
        assert!(p.value.data()[0] < 5.0);
    }

    #[test]
    fn sgd_descends_quadratic() {
        let cfg = OptimConfig {
            paf: GroupConfig {
                lr: 0.1,
                weight_decay: 0.0,
            },
            other: GroupConfig {
                lr: 0.1,
                weight_decay: 0.0,
            },
        };
        let mut opt = Sgd::new(cfg);
        let mut p = quad_param(ParamGroup::Other);
        for _ in 0..100 {
            p.grad.data_mut()[0] = 2.0 * p.value.data()[0];
            opt.step(&mut [&mut p]);
        }
        assert!(p.value.data()[0].abs() < 1e-3);
    }

    #[test]
    fn paper_tab5_values() {
        let cfg = OptimConfig::paper_tab5();
        assert_eq!(cfg.paf.lr, 1e-4);
        assert_eq!(cfg.other.lr, 1e-5);
        assert_eq!(cfg.paf.weight_decay, 0.01);
        assert_eq!(cfg.other.weight_decay, 0.1);
    }
}
