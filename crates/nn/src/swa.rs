//! Stochastic Weight Averaging (SWA).
//!
//! The SMART-PAF framework applies SWA at the end of every training
//! group, averaging the weights of the group's epochs to smooth the
//! update (Fig. 6, Fig. 9's yellow pentagons).

use crate::param::Param;

/// Accumulates running averages of a parameter list.
#[derive(Debug, Default)]
pub struct Swa {
    sums: Vec<Vec<f64>>,
    count: usize,
}

impl Swa {
    /// Creates an empty averager.
    pub fn new() -> Self {
        Swa::default()
    }

    /// Number of snapshots accumulated.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Records a snapshot of the current parameter values.
    ///
    /// # Panics
    ///
    /// Panics if the parameter list shape changes between calls.
    pub fn record(&mut self, params: &[&mut Param]) {
        if self.sums.is_empty() {
            self.sums = params.iter().map(|p| vec![0.0; p.numel()]).collect();
        }
        assert_eq!(self.sums.len(), params.len(), "parameter list changed");
        for (sum, p) in self.sums.iter_mut().zip(params) {
            assert_eq!(sum.len(), p.numel(), "parameter resized");
            for (s, &v) in sum.iter_mut().zip(p.value.data()) {
                *s += v as f64;
            }
        }
        self.count += 1;
    }

    /// Writes the average back into the parameters.
    ///
    /// # Panics
    ///
    /// Panics if no snapshots were recorded.
    pub fn apply(&self, params: &mut [&mut Param]) {
        assert!(self.count > 0, "no snapshots recorded");
        for (sum, p) in self.sums.iter().zip(params.iter_mut()) {
            for (v, &s) in p.value.data_mut().iter_mut().zip(sum) {
                *v = (s / self.count as f64) as f32;
            }
        }
    }

    /// Clears all accumulated snapshots.
    pub fn reset(&mut self) {
        self.sums.clear();
        self.count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamGroup;
    use smartpaf_tensor::Tensor;

    #[test]
    fn average_of_two_snapshots() {
        let mut p = Param::new(Tensor::from_vec(vec![2.0, 4.0], &[2]), ParamGroup::Other);
        let mut swa = Swa::new();
        swa.record(&[&mut p]);
        p.value.data_mut()[0] = 4.0;
        p.value.data_mut()[1] = 8.0;
        swa.record(&[&mut p]);
        swa.apply(&mut [&mut p]);
        assert_eq!(p.value.data(), &[3.0, 6.0]);
        assert_eq!(swa.count(), 2);
    }

    #[test]
    fn single_snapshot_is_identity() {
        let mut p = Param::new(Tensor::from_vec(vec![1.5], &[1]), ParamGroup::Other);
        let mut swa = Swa::new();
        swa.record(&[&mut p]);
        p.value.data_mut()[0] = 99.0;
        swa.apply(&mut [&mut p]);
        assert_eq!(p.value.data(), &[1.5]);
    }

    #[test]
    fn reset_clears_state() {
        let mut p = Param::new(Tensor::from_vec(vec![1.0], &[1]), ParamGroup::Other);
        let mut swa = Swa::new();
        swa.record(&[&mut p]);
        swa.reset();
        assert_eq!(swa.count(), 0);
    }

    #[test]
    #[should_panic(expected = "no snapshots")]
    fn apply_without_record_panics() {
        let mut p = Param::new(Tensor::from_vec(vec![1.0], &[1]), ParamGroup::Other);
        Swa::new().apply(&mut [&mut p]);
    }
}
