//! Parametric linear layers: convolution, fully connected, batch norm.

use crate::layer::{Layer, Mode};
use crate::param::{Param, ParamGroup};
use smartpaf_tensor::{conv2d, conv2d_backward, ConvSpec, Rng64, Tensor};

/// 2-D convolution with bias (He-normal initialisation).
pub struct Conv2d {
    weight: Param,
    bias: Param,
    spec: ConvSpec,
    cached_input: Option<Tensor>,
    label: String,
}

impl Conv2d {
    /// Creates a convolution `in_ch -> out_ch` with square kernel `k`.
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        k: usize,
        stride: usize,
        padding: usize,
        rng: &mut Rng64,
    ) -> Self {
        let fan_in = (in_ch * k * k) as f32;
        let std = (2.0 / fan_in).sqrt();
        Conv2d {
            weight: Param::new(
                Tensor::rand_normal(&[out_ch, in_ch, k, k], 0.0, std, rng),
                ParamGroup::Other,
            ),
            bias: Param::new(Tensor::zeros(&[out_ch]), ParamGroup::Other),
            spec: ConvSpec::new(k, stride, padding),
            cached_input: None,
            label: format!("Conv2d({in_ch}->{out_ch}, k{k}s{stride}p{padding})"),
        }
    }
}

impl Layer for Conv2d {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        self.cached_input = Some(x.clone());
        conv2d(x, &self.weight.value, &self.bias.value, &self.spec)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let x = self.cached_input.as_ref().expect("backward before forward");
        let grads = conv2d_backward(x, &self.weight.value, grad_output, &self.spec);
        self.weight.grad.add_assign(&grads.grad_weight);
        self.bias.grad.add_assign(&grads.grad_bias);
        grads.grad_input
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

/// Fully connected layer `y = x W^T + b`.
pub struct Linear {
    weight: Param, // [out, in]
    bias: Param,   // [out]
    cached_input: Option<Tensor>,
    label: String,
}

impl Linear {
    /// Creates a linear layer (He-normal initialisation).
    pub fn new(in_features: usize, out_features: usize, rng: &mut Rng64) -> Self {
        let std = (2.0 / in_features as f32).sqrt();
        Linear {
            weight: Param::new(
                Tensor::rand_normal(&[out_features, in_features], 0.0, std, rng),
                ParamGroup::Other,
            ),
            bias: Param::new(Tensor::zeros(&[out_features]), ParamGroup::Other),
            cached_input: None,
            label: format!("Linear({in_features}->{out_features})"),
        }
    }
}

impl Layer for Linear {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        self.cached_input = Some(x.clone());
        let mut y = x.matmul(&self.weight.value.transpose2d());
        let (n, o) = (y.dims()[0], y.dims()[1]);
        for i in 0..n {
            for j in 0..o {
                let v = y.at(&[i, j]) + self.bias.value.data()[j];
                y.set(&[i, j], v);
            }
        }
        y
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let x = self.cached_input.as_ref().expect("backward before forward");
        // dW = dY^T X ; db = column sums of dY ; dX = dY W
        self.weight
            .grad
            .add_assign(&grad_output.transpose2d().matmul(x));
        let (n, o) = (grad_output.dims()[0], grad_output.dims()[1]);
        for j in 0..o {
            let mut s = 0.0;
            for i in 0..n {
                s += grad_output.at(&[i, j]);
            }
            self.bias.grad.data_mut()[j] += s;
        }
        grad_output.matmul(&self.weight.value)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

/// Batch normalisation over `[N, C, H, W]` with per-channel affine
/// parameters and running statistics.
///
/// Tab. 5 sets `BatchNorm Tracking = False` during PAF fine-tuning:
/// construct with [`BatchNorm2d::set_tracking`] to control whether
/// running statistics are updated.
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    tracking: bool,
    cache: Option<BnCache>,
    channels: usize,
}

struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    mode: Mode,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` channels.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Param::new(Tensor::ones(&[channels]), ParamGroup::Other),
            beta: Param::new(Tensor::zeros(&[channels]), ParamGroup::Other),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            tracking: true,
            cache: None,
            channels,
        }
    }

    /// Enables or disables running-statistics updates (Tab. 5 uses
    /// `false` during fine-tuning).
    pub fn set_tracking(&mut self, on: bool) {
        self.tracking = on;
    }

    fn stats(&self, x: &Tensor, c: usize) -> (f32, f32) {
        let (n, ch, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        let count = (n * h * w) as f32;
        let mut mean = 0.0f64;
        for b in 0..n {
            let base = (b * ch + c) * h * w;
            for p in 0..h * w {
                mean += x.data()[base + p] as f64;
            }
        }
        let mean = (mean / count as f64) as f32;
        let mut var = 0.0f64;
        for b in 0..n {
            let base = (b * ch + c) * h * w;
            for p in 0..h * w {
                let d = x.data()[base + p] - mean;
                var += (d * d) as f64;
            }
        }
        (mean, (var / count as f64) as f32)
    }
}

impl Layer for BatchNorm2d {
    fn name(&self) -> String {
        format!("BatchNorm2d({})", self.channels)
    }

    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        assert_eq!(c, self.channels, "channel mismatch");
        let mut y = Tensor::zeros(x.dims());
        let mut x_hat = Tensor::zeros(x.dims());
        let mut inv_stds = Vec::with_capacity(c);
        for ci in 0..c {
            let (mean, var) = if mode == Mode::Train {
                let (m, v) = self.stats(x, ci);
                if self.tracking {
                    self.running_mean[ci] =
                        (1.0 - self.momentum) * self.running_mean[ci] + self.momentum * m;
                    self.running_var[ci] =
                        (1.0 - self.momentum) * self.running_var[ci] + self.momentum * v;
                }
                (m, v)
            } else {
                (self.running_mean[ci], self.running_var[ci])
            };
            let inv_std = 1.0 / (var + self.eps).sqrt();
            inv_stds.push(inv_std);
            let g = self.gamma.value.data()[ci];
            let b = self.beta.value.data()[ci];
            for bi in 0..n {
                let base = (bi * c + ci) * h * w;
                for p in 0..h * w {
                    let xh = (x.data()[base + p] - mean) * inv_std;
                    x_hat.data_mut()[base + p] = xh;
                    y.data_mut()[base + p] = g * xh + b;
                }
            }
        }
        self.cache = Some(BnCache {
            x_hat,
            inv_std: inv_stds,
            mode,
        });
        y
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("backward before forward");
        let (n, c, h, w) = (
            grad_output.dims()[0],
            grad_output.dims()[1],
            grad_output.dims()[2],
            grad_output.dims()[3],
        );
        let count = (n * h * w) as f32;
        let mut grad_in = Tensor::zeros(grad_output.dims());
        for ci in 0..c {
            let g = self.gamma.value.data()[ci];
            let inv_std = cache.inv_std[ci];
            // Accumulate dgamma, dbeta and the batch-stat terms.
            let mut dgamma = 0.0f64;
            let mut dbeta = 0.0f64;
            let mut sum_dy = 0.0f64;
            let mut sum_dy_xhat = 0.0f64;
            for bi in 0..n {
                let base = (bi * c + ci) * h * w;
                for p in 0..h * w {
                    let dy = grad_output.data()[base + p];
                    let xh = cache.x_hat.data()[base + p];
                    dgamma += (dy * xh) as f64;
                    dbeta += dy as f64;
                    sum_dy += dy as f64;
                    sum_dy_xhat += (dy * xh) as f64;
                }
            }
            self.gamma.grad.data_mut()[ci] += dgamma as f32;
            self.beta.grad.data_mut()[ci] += dbeta as f32;
            for bi in 0..n {
                let base = (bi * c + ci) * h * w;
                for p in 0..h * w {
                    let dy = grad_output.data()[base + p];
                    let xh = cache.x_hat.data()[base + p];
                    let dx = if cache.mode == Mode::Train {
                        // Full batch-norm backward.
                        g * inv_std
                            * (dy - (sum_dy as f32) / count - xh * (sum_dy_xhat as f32) / count)
                    } else {
                        // Eval mode: statistics are constants.
                        g * inv_std * dy
                    };
                    grad_in.data_mut()[base + p] = dx;
                }
            }
        }
        grad_in
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_forward_known() {
        let mut rng = Rng64::new(1);
        let mut lin = Linear::new(2, 2, &mut rng);
        lin.weight.value = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        lin.bias.value = Tensor::from_vec(vec![0.5, -0.5], &[2]);
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let y = lin.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn linear_gradcheck() {
        let mut rng = Rng64::new(2);
        let mut lin = Linear::new(3, 2, &mut rng);
        let x = Tensor::rand_normal(&[2, 3], 0.0, 1.0, &mut rng);
        let y = lin.forward(&x, Mode::Train);
        let gx = lin.backward(&Tensor::ones(y.dims()));
        let eps = 1e-2;
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = (lin.forward(&xp, Mode::Train).sum() - lin.forward(&xm, Mode::Train).sum())
                / (2.0 * eps);
            assert!((fd - gx.data()[i]).abs() < 1e-2, "dX[{i}]");
        }
    }

    #[test]
    fn conv_layer_shapes_and_params() {
        let mut rng = Rng64::new(3);
        let mut conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
        let x = Tensor::rand_normal(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let y = conv.forward(&x, Mode::Train);
        assert_eq!(y.dims(), &[2, 8, 8, 8]);
        let gx = conv.backward(&Tensor::ones(y.dims()));
        assert_eq!(gx.dims(), x.dims());
        assert_eq!(conv.params_mut().len(), 2);
        // Gradients were accumulated.
        let wsum: f32 = conv.params_mut()[0]
            .grad
            .data()
            .iter()
            .map(|v| v.abs())
            .sum();
        assert!(wsum > 0.0);
    }

    #[test]
    fn batchnorm_normalises_batch() {
        let mut bn = BatchNorm2d::new(2);
        let mut rng = Rng64::new(4);
        let x = Tensor::rand_normal(&[8, 2, 4, 4], 3.0, 2.0, &mut rng);
        let y = bn.forward(&x, Mode::Train);
        // Per channel: mean ~ 0, var ~ 1.
        for c in 0..2 {
            let mut vals = Vec::new();
            for b in 0..8 {
                for p in 0..16 {
                    vals.push(y.data()[(b * 2 + c) * 16 + p]);
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-3, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        let mut rng = Rng64::new(5);
        // Train a few batches to populate running stats.
        for _ in 0..100 {
            let x = Tensor::rand_normal(&[16, 1, 2, 2], 5.0, 1.0, &mut rng);
            bn.forward(&x, Mode::Train);
        }
        // Eval on a shifted batch: output should NOT be normalised to
        // the batch's own stats but to the running ones (mean ~5).
        let x = Tensor::full(&[4, 1, 2, 2], 5.0);
        let y = bn.forward(&x, Mode::Eval);
        for &v in y.data() {
            // Running mean is an EMA of noisy batch means, so a small
            // residual offset remains.
            assert!(v.abs() < 0.2, "eval output {v} should be near 0");
        }
    }

    #[test]
    fn batchnorm_tracking_off_freezes_stats() {
        let mut bn = BatchNorm2d::new(1);
        bn.set_tracking(false);
        let before = bn.running_mean[0];
        let x = Tensor::full(&[4, 1, 2, 2], 100.0);
        bn.forward(&x, Mode::Train);
        assert_eq!(bn.running_mean[0], before);
    }

    #[test]
    fn batchnorm_gradcheck() {
        let mut bn = BatchNorm2d::new(2);
        let mut rng = Rng64::new(6);
        let x = Tensor::rand_normal(&[3, 2, 2, 2], 0.0, 1.0, &mut rng);
        // Use a non-uniform output gradient so batch-stat terms matter.
        let gout = Tensor::rand_normal(&[3, 2, 2, 2], 0.0, 1.0, &mut rng);
        let _ = bn.forward(&x, Mode::Train);
        let gx = bn.backward(&gout);
        let eps = 1e-2;
        let loss = |bn: &mut BatchNorm2d, x: &Tensor| {
            let y = bn.forward(x, Mode::Train);
            y.mul(&gout).sum()
        };
        for &i in &[0usize, 5, 11, 23] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = (loss(&mut bn, &xp) - loss(&mut bn, &xm)) / (2.0 * eps);
            assert!(
                (fd - gx.data()[i]).abs() < 2e-2,
                "dX[{i}]: fd {fd} vs {}",
                gx.data()[i]
            );
        }
    }
}
