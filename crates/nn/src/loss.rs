//! Softmax cross-entropy loss.

use smartpaf_tensor::Tensor;

/// Numerically stable softmax cross-entropy.
///
/// Returns `(mean loss, gradient w.r.t. logits)` for logits `[N, C]`
/// and integer labels.
///
/// # Panics
///
/// Panics unless logits are 2-D with one label per row and every label
/// is a valid class index.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.shape().ndim(), 2, "logits must be [N, C]");
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(labels.len(), n, "one label per sample");
    let mut grad = Tensor::zeros(&[n, c]);
    let mut total = 0.0f64;
    for i in 0..n {
        let row = logits.row(i);
        assert!(labels[i] < c, "label {} out of range", labels[i]);
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&v| (v - m).exp()).collect();
        let z: f32 = exps.iter().sum();
        let log_z = z.ln() + m;
        total += (log_z - row[labels[i]]) as f64;
        for (j, &e) in exps.iter().enumerate() {
            let p = e / z;
            grad.data_mut()[i * c + j] = (p - if j == labels[i] { 1.0 } else { 0.0 }) / n as f32;
        }
    }
    ((total / n as f64) as f32, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_loss_is_log_c() {
        let logits = Tensor::zeros(&[2, 4]);
        let (loss, _) = cross_entropy(&logits, &[0, 3]);
        assert!((loss - 4.0f32.ln()).abs() < 1e-6);
    }

    #[test]
    fn confident_correct_prediction_low_loss() {
        let logits = Tensor::from_vec(vec![10.0, 0.0, 0.0], &[1, 3]);
        let (loss, _) = cross_entropy(&logits, &[0]);
        assert!(loss < 1e-3, "loss {loss}");
    }

    #[test]
    fn gradient_sums_to_zero_per_row() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let (_, grad) = cross_entropy(&logits, &[2, 0]);
        for i in 0..2 {
            let s: f32 = grad.row(i).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![0.5, -0.2, 1.1, 0.0], &[1, 4]);
        let (_, grad) = cross_entropy(&logits, &[1]);
        let eps = 1e-2;
        for i in 0..4 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let fd = (cross_entropy(&lp, &[1]).0 - cross_entropy(&lm, &[1]).0) / (2.0 * eps);
            // f32 forward passes limit finite-difference precision.
            assert!(
                (fd - grad.data()[i]).abs() < 1e-3,
                "d[{i}]: {fd} vs {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn stable_under_large_logits() {
        let logits = Tensor::from_vec(vec![1000.0, 0.0], &[1, 2]);
        let (loss, grad) = cross_entropy(&logits, &[0]);
        assert!(loss.is_finite());
        assert!(grad.data().iter().all(|v| v.is_finite()));
    }
}
