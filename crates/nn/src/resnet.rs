//! Residual block (ResNet basic block).

use crate::act::ReluSlot;
use crate::layer::{Layer, Mode, SlotRef};
use crate::param::Param;
use crate::Sequential;
use smartpaf_tensor::Tensor;

/// A ResNet basic block: `relu(main(x) + shortcut(x))`.
///
/// `main` is conv-bn-relu-conv-bn; `shortcut` is identity or a 1×1
/// projection. The post-addition ReLU is a replaceable [`ReluSlot`].
pub struct ResidualBlock {
    main: Sequential,
    shortcut: Option<Sequential>,
    post_relu: ReluSlot,
    label: String,
}

impl ResidualBlock {
    /// Assembles a block from its pieces.
    pub fn new(
        main: Sequential,
        shortcut: Option<Sequential>,
        post_relu: ReluSlot,
        label: impl Into<String>,
    ) -> Self {
        ResidualBlock {
            main,
            shortcut,
            post_relu,
            label: label.into(),
        }
    }
}

impl Layer for ResidualBlock {
    fn name(&self) -> String {
        format!("ResidualBlock({})", self.label)
    }

    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let main_out = self.main.forward(x, mode);
        let short_out = match &mut self.shortcut {
            Some(s) => s.forward(x, mode),
            None => x.clone(),
        };
        self.post_relu.forward(&main_out.add(&short_out), mode)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let g = self.post_relu.backward(grad_output);
        let g_main = self.main.backward(&g);
        let g_short = match &mut self.shortcut {
            Some(s) => s.backward(&g),
            None => g,
        };
        g_main.add(&g_short)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.main.params_mut();
        if let Some(s) = &mut self.shortcut {
            p.extend(s.params_mut());
        }
        p.extend(self.post_relu.params_mut());
        p
    }

    fn visit_slots(&mut self, f: &mut dyn FnMut(SlotRef<'_>)) {
        self.main.visit_slots(f);
        if let Some(s) = &mut self.shortcut {
            s.visit_slots(f);
        }
        self.post_relu.visit_slots(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv_layers::Conv2d;
    use smartpaf_tensor::Rng64;

    fn tiny_block(rng: &mut Rng64) -> ResidualBlock {
        let main = Sequential::new("main")
            .push(Conv2d::new(2, 2, 3, 1, 1, rng))
            .push(ReluSlot::new(0))
            .push(Conv2d::new(2, 2, 3, 1, 1, rng));
        ResidualBlock::new(main, None, ReluSlot::new(1), "tiny")
    }

    #[test]
    fn identity_shortcut_adds() {
        let mut rng = Rng64::new(1);
        let mut block = tiny_block(&mut rng);
        let x = Tensor::rand_normal(&[1, 2, 4, 4], 0.0, 1.0, &mut rng);
        let y = block.forward(&x, Mode::Eval);
        assert_eq!(y.dims(), x.dims());
        // Output is relu(main + x): non-negative everywhere.
        assert!(y.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn backward_routes_to_both_paths() {
        let mut rng = Rng64::new(2);
        let mut block = tiny_block(&mut rng);
        let x = Tensor::rand_normal(&[1, 2, 4, 4], 0.5, 0.5, &mut rng);
        let y = block.forward(&x, Mode::Train);
        let gx = block.backward(&Tensor::ones(y.dims()));
        assert_eq!(gx.dims(), x.dims());
        // Finite-difference check over all coordinates: individual
        // coordinates can straddle a ReLU kink (where the derivative
        // jumps), so require the bulk to match instead of every one.
        let eps = 1e-3;
        let mut close = 0;
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = (block.forward(&xp, Mode::Train).sum()
                - block.forward(&xm, Mode::Train).sum())
                / (2.0 * eps);
            if (fd - gx.data()[i]).abs() < 0.05 * (1.0 + fd.abs()) {
                close += 1;
            }
        }
        assert!(
            close * 10 >= x.numel() * 8,
            "only {close}/{} gradient coords match finite differences",
            x.numel()
        );
    }

    #[test]
    fn slots_visited_in_order() {
        let mut rng = Rng64::new(3);
        let mut block = tiny_block(&mut rng);
        let mut order = Vec::new();
        block.visit_slots(&mut |s| {
            if let SlotRef::Relu(r) = s {
                order.push(r.index());
            }
        });
        assert_eq!(order, vec![0, 1]);
    }
}
