//! Trainable parameters and parameter groups.

use smartpaf_tensor::Tensor;

/// Which optimiser group a parameter belongs to.
///
/// SMART-PAF's Alternate Training (AT) and the Tab. 5 hyperparameters
/// hinge on this split: PAF coefficients and "other layers"
/// (convolution, linear, batch-norm) get different learning rates,
/// weight decay, and freeze schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamGroup {
    /// Coefficients of a Polynomial Approximated Function.
    PafCoeff,
    /// Every other trainable parameter.
    Other,
}

/// A trainable tensor with its gradient accumulator.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
    /// Optimiser group.
    pub group: ParamGroup,
}

impl Param {
    /// Creates a parameter with a zeroed gradient.
    pub fn new(value: Tensor, group: ParamGroup) -> Self {
        let grad = Tensor::zeros(value.dims());
        Param { value, grad, group }
    }

    /// Zeroes the gradient.
    pub fn zero_grad(&mut self) {
        self.grad.map_in_place(|_| 0.0);
    }

    /// Number of scalar parameters.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(Tensor::ones(&[3, 2]), ParamGroup::Other);
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.numel(), 6);
        assert_eq!(p.group, ParamGroup::Other);
    }

    #[test]
    fn zero_grad_resets() {
        let mut p = Param::new(Tensor::ones(&[2]), ParamGroup::PafCoeff);
        p.grad.data_mut()[0] = 5.0;
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0.0, 0.0]);
    }
}
