//! From-scratch neural-network training substrate for SMART-PAF.
//!
//! Replaces the paper's PyTorch stack with a layer-graph library whose
//! abstractions map one-to-one onto the four SMART-PAF techniques:
//!
//! * replaceable non-polynomial **slots** ([`ReluSlot`],
//!   [`MaxPoolSlot`]) — what Progressive Approximation iterates over;
//! * a trainable [`PafActivation`] whose coefficients live in the
//!   [`ParamGroup::PafCoeff`] optimiser group — what Coefficient
//!   Tuning initialises and Alternate Training freezes/unfreezes;
//! * [`ScaleMode`] implementing Dynamic and Static Scaling;
//! * [`Adam`]/[`Sgd`] with per-group hyperparameters (paper Tab. 5)
//!   and [`Swa`] for the framework's training groups.
//!
//! # Example
//!
//! ```
//! use smartpaf_nn::{mini_cnn, cross_entropy, Mode};
//! use smartpaf_tensor::{Rng64, Tensor};
//!
//! let mut rng = Rng64::new(0);
//! let mut model = mini_cnn(10, 0.125, &mut rng);
//! let x = Tensor::rand_normal(&[2, 3, 16, 16], 0.0, 1.0, &mut rng);
//! let logits = model.forward(&x, Mode::Train);
//! let (loss, grad) = cross_entropy(&logits, &[3, 7]);
//! model.backward(&grad);
//! assert!(loss > 0.0);
//! ```

mod act;
mod conv_layers;
mod layer;
mod loss;
mod metrics;
mod models;
mod optim;
mod param;
mod resnet;
mod swa;

pub use act::{AvgPool2d, GlobalAvgPool, MaxPoolSlot, PafActivation, ReluSlot, ScaleMode};
pub use conv_layers::{BatchNorm2d, Conv2d, Linear};
pub use layer::{Dropout, Flatten, Layer, Mode, Sequential, SlotRef};
pub use loss::cross_entropy;
pub use metrics::{top1_accuracy, AccuracyMeter};
pub use models::{mini_cnn, resnet18, vgg19, Model};
pub use optim::{Adam, GroupConfig, OptimConfig, Sgd};
pub use param::{Param, ParamGroup};
pub use resnet::ResidualBlock;
pub use swa::Swa;

#[cfg(test)]
mod proptests;
