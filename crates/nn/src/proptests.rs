//! Property-based tests for the nn substrate.

use crate::act::{PafActivation, ScaleMode};
use crate::layer::Mode;
use crate::loss::cross_entropy;
use proptest::prelude::*;
use smartpaf_polyfit::{CompositePaf, PafForm};
use smartpaf_tensor::Tensor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cross-entropy loss is non-negative and its gradient rows sum to 0.
    #[test]
    fn ce_loss_invariants(v in proptest::collection::vec(-5.0f32..5.0, 12), label in 0usize..4) {
        let logits = Tensor::from_vec(v, &[3, 4]);
        let (loss, grad) = cross_entropy(&logits, &[label, (label + 1) % 4, (label + 2) % 4]);
        prop_assert!(loss >= 0.0);
        for i in 0..3 {
            let s: f32 = grad.row(i).iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }

    /// PAF-ReLU output is bounded relative to its input scale and the
    /// activation is odd-symmetric in the sign component:
    /// y(x) + y(-x) == x branch identity (x + x p + (-x) + (-x)(-p))/2 = 0...
    /// concretely: y(x) - y(-x) == x for a perfectly odd p.
    #[test]
    fn paf_relu_odd_decomposition(x in 0.05f32..0.95) {
        let mut paf = PafActivation::from_composite(
            &CompositePaf::from_form(PafForm::Alpha7),
            ScaleMode::Static(1.0),
        );
        let t = Tensor::from_vec(vec![x, -x], &[1, 2]);
        let y = paf.forward(&t, Mode::Eval);
        // y(x) - y(-x) = x exactly (p odd), independent of PAF quality.
        prop_assert!((y.data()[0] - y.data()[1] - x).abs() < 1e-4);
    }

    /// Dynamic scaling makes the PAF input land in [-1, 1], so outputs
    /// stay bounded by |x| (plus approximation slack) even for huge inputs.
    #[test]
    fn dynamic_scale_bounds_output(scale in 1.0f32..1000.0) {
        let mut paf = PafActivation::from_composite(
            &CompositePaf::from_form(PafForm::F2G2),
            ScaleMode::Dynamic,
        );
        let t = Tensor::from_vec(vec![scale, -scale, scale / 2.0], &[1, 3]);
        let y = paf.forward(&t, Mode::Train);
        for (yv, xv) in y.data().iter().zip(t.data()) {
            prop_assert!(yv.abs() <= xv.abs() * 1.6 + 1e-3, "y {yv} vs x {xv}");
        }
    }
}
