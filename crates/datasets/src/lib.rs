//! Deterministic synthetic image-classification datasets.
//!
//! The paper evaluates on CIFAR-10 and ImageNet-1k, neither of which
//! is available in this environment. Per the substitution rule
//! (DESIGN.md §2) we replace them with *synthetic* tasks at two
//! difficulty levels that preserve the paper's relevant structure:
//!
//! * [`SynthSpec::cifar_like`] — 10 classes, mild intra-class
//!   variation: easy, like CIFAR-10 relative to ImageNet.
//! * [`SynthSpec::imagenet_like`] — 100 classes, strong jitter,
//!   distractor patterns from other classes: hard. Approximation
//!   error hurts it much more, reproducing the paper's §5.4.4
//!   dataset-complexity effect.
//!
//! Every sample is a pure function of `(dataset seed, split, index)`,
//! so experiments are exactly reproducible.

use smartpaf_tensor::{Rng64, Tensor};

/// Which split a sample belongs to (train and validation samples use
/// disjoint random streams).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Split {
    /// Training split.
    Train,
    /// Validation split.
    Val,
}

impl Split {
    fn tag(self) -> u64 {
        match self {
            Split::Train => 0x5452_4149,
            Split::Val => 0x5641_4C00,
        }
    }
}

/// Generation parameters for a synthetic dataset.
#[derive(Debug, Clone, Copy)]
pub struct SynthSpec {
    /// Number of classes.
    pub classes: usize,
    /// Image height and width.
    pub image_size: usize,
    /// Channels (3 everywhere in the paper's models).
    pub channels: usize,
    /// Per-pixel Gaussian noise standard deviation.
    pub noise_std: f32,
    /// Strength of the per-sample smooth deformation field.
    pub jitter: f32,
    /// Weight of a distractor prototype mixed in from another class
    /// (0 disables distractors).
    pub distractor: f32,
    /// Master seed.
    pub seed: u64,
}

impl SynthSpec {
    /// The easy task standing in for CIFAR-10.
    pub fn cifar_like(seed: u64) -> Self {
        SynthSpec {
            classes: 10,
            image_size: 32,
            channels: 3,
            noise_std: 0.25,
            jitter: 0.4,
            distractor: 0.0,
            seed,
        }
    }

    /// The hard task standing in for ImageNet-1k (more classes, heavy
    /// jitter, distractor textures).
    pub fn imagenet_like(seed: u64) -> Self {
        SynthSpec {
            classes: 100,
            image_size: 32,
            channels: 3,
            noise_std: 0.45,
            jitter: 0.8,
            distractor: 0.35,
            seed,
        }
    }

    /// A tiny variant for fast unit tests and CI-sized experiments.
    pub fn tiny(seed: u64) -> Self {
        SynthSpec {
            classes: 4,
            image_size: 16,
            channels: 3,
            noise_std: 0.2,
            jitter: 0.3,
            distractor: 0.0,
            seed,
        }
    }
}

/// A deterministic synthetic dataset.
#[derive(Debug, Clone)]
pub struct SynthDataset {
    spec: SynthSpec,
    prototypes: Vec<Tensor>, // per class, [C, H, W]
}

/// Generates a smooth random field by bilinear upsampling of a coarse
/// random grid — class prototypes and deformations are "image-like"
/// (spatially correlated) rather than white noise.
fn smooth_field(c: usize, h: usize, w: usize, coarse: usize, amp: f32, rng: &mut Rng64) -> Tensor {
    let grid = Tensor::rand_normal(&[c, coarse, coarse], 0.0, amp, rng);
    let mut out = Tensor::zeros(&[c, h, w]);
    for ci in 0..c {
        for i in 0..h {
            for j in 0..w {
                let fy = i as f32 / h as f32 * (coarse - 1) as f32;
                let fx = j as f32 / w as f32 * (coarse - 1) as f32;
                let (y0, x0) = (fy as usize, fx as usize);
                let (y1, x1) = ((y0 + 1).min(coarse - 1), (x0 + 1).min(coarse - 1));
                let (dy, dx) = (fy - y0 as f32, fx - x0 as f32);
                let v = grid.at(&[ci, y0, x0]) * (1.0 - dy) * (1.0 - dx)
                    + grid.at(&[ci, y1, x0]) * dy * (1.0 - dx)
                    + grid.at(&[ci, y0, x1]) * (1.0 - dy) * dx
                    + grid.at(&[ci, y1, x1]) * dy * dx;
                out.set(&[ci, i, j], v);
            }
        }
    }
    out
}

impl SynthDataset {
    /// Builds the dataset (generates the class prototypes).
    pub fn new(spec: SynthSpec) -> Self {
        let mut rng = Rng64::new(spec.seed);
        let prototypes = (0..spec.classes)
            .map(|c| {
                let mut crng = rng.fork(c as u64 + 1);
                smooth_field(
                    spec.channels,
                    spec.image_size,
                    spec.image_size,
                    5,
                    1.0,
                    &mut crng,
                )
            })
            .collect();
        SynthDataset { spec, prototypes }
    }

    /// Generation parameters.
    pub fn spec(&self) -> &SynthSpec {
        &self.spec
    }

    /// The label of sample `index` (round-robin over classes, so every
    /// batch of `k * classes` samples is exactly class-balanced).
    pub fn label(&self, index: usize) -> usize {
        index % self.spec.classes
    }

    /// Generates sample `index` of a split: `([C, H, W], label)`.
    pub fn sample(&self, split: Split, index: usize) -> (Tensor, usize) {
        let label = self.label(index);
        let mut rng = Rng64::new(
            self.spec
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(split.tag())
                .wrapping_add((index as u64).wrapping_mul(0x100_0000_01B3)),
        );
        let s = &self.spec;
        let scale = 0.8 + 0.4 * rng.next_f32();
        let mut img = self.prototypes[label].scale(scale);
        if s.jitter > 0.0 {
            let deform = smooth_field(
                s.channels,
                s.image_size,
                s.image_size,
                4,
                s.jitter,
                &mut rng,
            );
            img.add_assign(&deform);
        }
        if s.distractor > 0.0 && s.classes > 1 {
            let other = (label + 1 + rng.next_below(s.classes - 1)) % s.classes;
            img.axpy(s.distractor, &self.prototypes[other]);
        }
        if s.noise_std > 0.0 {
            let noise = Tensor::rand_normal(img.dims(), 0.0, s.noise_std, &mut rng);
            img.add_assign(&noise);
        }
        (img, label)
    }

    /// Generates a batch: `([N, C, H, W], labels)` for samples
    /// `start..start+n` of a split.
    pub fn batch(&self, split: Split, start: usize, n: usize) -> (Tensor, Vec<usize>) {
        let mut images = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in start..start + n {
            let (img, l) = self.sample(split, i);
            images.push(img);
            labels.push(l);
        }
        (Tensor::stack(&images), labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_deterministic() {
        let ds = SynthDataset::new(SynthSpec::tiny(7));
        let (a, la) = ds.sample(Split::Train, 5);
        let (b, lb) = ds.sample(Split::Train, 5);
        assert_eq!(a, b);
        assert_eq!(la, lb);
    }

    #[test]
    fn splits_differ() {
        let ds = SynthDataset::new(SynthSpec::tiny(7));
        let (a, _) = ds.sample(Split::Train, 5);
        let (b, _) = ds.sample(Split::Val, 5);
        assert_ne!(a, b);
    }

    #[test]
    fn labels_round_robin() {
        let ds = SynthDataset::new(SynthSpec::tiny(1));
        let (_, labels) = ds.batch(Split::Train, 0, 8);
        assert_eq!(labels, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn batch_shape() {
        let ds = SynthDataset::new(SynthSpec::tiny(2));
        let (x, labels) = ds.batch(Split::Val, 4, 6);
        assert_eq!(x.dims(), &[6, 3, 16, 16]);
        assert_eq!(labels.len(), 6);
    }

    #[test]
    fn same_class_samples_correlate_more_than_cross_class() {
        let ds = SynthDataset::new(SynthSpec::cifar_like(3));
        // Cosine similarity of two samples of class 0 vs class 0 and 1.
        let (a, _) = ds.sample(Split::Train, 0);
        let (b, _) = ds.sample(Split::Train, 10); // class 0 again
        let (c, _) = ds.sample(Split::Train, 1); // class 1
        let cos = |x: &Tensor, y: &Tensor| x.dot(y) / (x.norm() * y.norm());
        assert!(
            cos(&a, &b) > cos(&a, &c),
            "intra {} vs inter {}",
            cos(&a, &b),
            cos(&a, &c)
        );
    }

    #[test]
    fn imagenet_like_is_harder_than_cifar_like() {
        // Harder = lower intra-class correlation relative to inter.
        let easy = SynthDataset::new(SynthSpec::cifar_like(4));
        let hard = SynthDataset::new(SynthSpec::imagenet_like(4));
        let margin = |ds: &SynthDataset| {
            let cls = ds.spec().classes;
            let (a, _) = ds.sample(Split::Train, 0);
            let (b, _) = ds.sample(Split::Train, cls); // same class
            let (c, _) = ds.sample(Split::Train, 1); // next class
            let cos = |x: &Tensor, y: &Tensor| x.dot(y) / (x.norm() * y.norm());
            cos(&a, &b) - cos(&a, &c)
        };
        assert!(
            margin(&easy) > margin(&hard),
            "easy margin {} vs hard margin {}",
            margin(&easy),
            margin(&hard)
        );
    }

    #[test]
    fn different_seeds_give_different_prototypes() {
        let a = SynthDataset::new(SynthSpec::tiny(1));
        let b = SynthDataset::new(SynthSpec::tiny(2));
        assert_ne!(a.sample(Split::Train, 0).0, b.sample(Split::Train, 0).0);
    }

    #[test]
    fn smooth_field_is_spatially_correlated() {
        let mut rng = Rng64::new(9);
        let f = smooth_field(1, 16, 16, 4, 1.0, &mut rng);
        // Neighbouring pixels should be closer than distant ones.
        let mut near = 0.0;
        let mut far = 0.0;
        let mut count = 0;
        for i in 0..15 {
            for j in 0..15 {
                near += (f.at(&[0, i, j]) - f.at(&[0, i, j + 1])).abs();
                far += (f.at(&[0, i, j]) - f.at(&[0, 15 - i, 15 - j])).abs();
                count += 1;
            }
        }
        assert!(near / count as f32 <= far / count as f32);
    }
}
