//! Criterion benchmark: serving-layer throughput and tail latency vs
//! offered load.
//!
//! The MLSys serving question is not "how fast is one inference" but
//! "what latency distribution does a load level buy": a saturating
//! burst fills every batch (best throughput, worst p99), while paced
//! arrivals trade batch fill for queueing delay. Each offered-load
//! point runs the same workload — one tenant, a fixed request count,
//! a fixed arrival interval — through a warmed [`Server`]; a
//! measurement pass outside the bencher records the real
//! [`ServeStats`] (throughput, p50/p99 served latency, mean batch
//! fill) as group metadata, so `BENCH_serve.json` is self-describing
//! even in `--test` mode (the CI `serve-smoke` fast path). The timed
//! pass then re-runs the workload under criterion.
//!
//! The interesting curve is p99 vs offered rate: the burst point shows
//! the coalescing win (mean fill → `max_batch`), the slow point the
//! idle floor (fill → 1, latency → single-inference cost).

use criterion::{criterion_group, criterion_main, Criterion};
use smartpaf::{serve_sessions, CompiledSession, Objective, Session, SessionError};
use smartpaf_ckks::CkksParams;
use smartpaf_heinfer::serve::{ServeConfig, Server, TenantId};
use smartpaf_heinfer::BatchRunner;
use smartpaf_nn::Linear;
use smartpaf_polyfit::PafForm;
use smartpaf_tensor::Rng64;
use std::time::{Duration, Instant};

/// A fixed-form toy-ring session — planning collapses to one dry run,
/// so server startup is encryption-keygen-bound, not search-bound.
fn bench_session(tenant: TenantId) -> Result<CompiledSession, SessionError> {
    let mut rng = Rng64::new(tenant.wrapping_add(7000));
    let mut session = Session::builder(&[4])
        .affine(Linear::new(4, 4, &mut rng))
        .relu(2.0)
        .params(CkksParams::toy())
        .objective(Objective::FixedForm(PafForm::F1G2))
        .seed(tenant.wrapping_add(7000))
        .plan()?
        .compile()?;
    session.set_batch_runner(BatchRunner::new(1));
    Ok(session)
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        queue_capacity: 64,
        max_batch: 4,
        batch_deadline: Duration::from_millis(1),
        pack_lanes: false,
    }
}

const REQUESTS: usize = 8;

/// Submits `REQUESTS` paced requests and blocks until all are served;
/// returns the span from first submission to last answer.
fn drive(
    server: &Server<impl smartpaf_heinfer::BatchService + 'static>,
    interval: Duration,
) -> Duration {
    let start = Instant::now();
    let mut tickets = Vec::with_capacity(REQUESTS);
    for i in 0..REQUESTS {
        if i > 0 && !interval.is_zero() {
            std::thread::sleep(interval);
        }
        let x: Vec<f64> = (0..4).map(|j| ((i * 4 + j) as f64 - 8.0) / 10.0).collect();
        tickets.push(server.submit(0, x).expect("queue sized for the workload"));
    }
    for t in tickets {
        t.wait().expect("request served");
    }
    start.elapsed()
}

fn bench_serving(c: &mut Criterion) {
    // Offered-load sweep: a saturating burst plus two paced rates.
    for (label, interval) in [
        ("burst", Duration::ZERO),
        ("interval_5ms", Duration::from_millis(5)),
        ("interval_20ms", Duration::from_millis(20)),
    ] {
        let mut group = c.benchmark_group(format!("serve_{label}"));
        group.sample_size(10);

        // Measurement pass on a fresh server: the final ServeStats of
        // exactly this workload become the group's metadata.
        let server = serve_sessions(bench_session, serve_config());
        server.submit(0, vec![0.0; 4]).unwrap().wait().unwrap(); // warm the session cache
        let span = drive(&server, interval);
        let stats = server.shutdown();
        let offered_rps = if interval.is_zero() {
            f64::INFINITY
        } else {
            1.0 / interval.as_secs_f64()
        };
        group.meta("requests", REQUESTS);
        group.meta("max_batch", serve_config().max_batch);
        group.meta("offered_rps", format!("{offered_rps:.1}"));
        group.meta(
            "throughput_rps",
            format!("{:.2}", REQUESTS as f64 / span.as_secs_f64()),
        );
        group.meta("p50_ms", format!("{:.3}", stats.p50_ms()));
        group.meta("p99_ms", format!("{:.3}", stats.p99_ms()));
        group.meta("mean_fill", format!("{:.2}", stats.mean_fill()));
        group.meta("batches", stats.batches.saturating_sub(1)); // minus the warmup batch

        // Timed pass: a long-lived warmed server survives the
        // iterations, so criterion times steady-state serving.
        let server = serve_sessions(bench_session, serve_config());
        server.submit(0, vec![0.0; 4]).unwrap().wait().unwrap();
        group.bench_function("drive", |b| {
            b.iter(|| std::hint::black_box(drive(&server, interval)))
        });
        drop(server);
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().json_output("BENCH_serve.json");
    targets = bench_serving
}
criterion_main!(benches);
