//! Criterion benchmark: batched pipeline throughput across thread
//! counts.
//!
//! The ablation pipeline is the MNIST-scale CNN (8×8 input, conv →
//! PAF-ReLU → PAF-maxpool → linear head) compiled once; a fixed batch
//! of inputs then runs through `BatchRunner` at 1/2/4/8 worker
//! threads, plus the single-input `eval_plain` loop as the sequential
//! reference. Group metadata records the threads × batch dims so the
//! JSON report (`BENCH_throughput.json` via `CRITERION_JSON`) is
//! self-describing.
//!
//! The interesting ratio is `threads_4` vs `sequential`: on a host
//! with ≥ 4 cores the sharded runner must deliver ≥ 2× the sequential
//! throughput — asserted at the end of the timed run, so a scaling
//! regression fails the bench. On smaller hosts (or a single-core
//! container) the numbers collapse toward parity and the gate is
//! skipped; the recorded `cores` metadata makes that visible in the
//! JSON instead of mysterious.

use criterion::{criterion_group, criterion_main, Criterion};
use smartpaf_heinfer::{BatchRunner, HePipeline, PipelineBuilder};
use smartpaf_nn::{Conv2d, Flatten, Linear};
use smartpaf_polyfit::{CompositePaf, PafForm};
use smartpaf_tensor::Rng64;
use std::time::{Duration, Instant};

const BATCH: usize = 256;
const INPUT_DIM: usize = 64; // 1×8×8

fn ablation_pipeline() -> HePipeline {
    let mut rng = Rng64::new(42);
    let relu = CompositePaf::from_form(PafForm::F1G2);
    let pool = CompositePaf::from_form(PafForm::Alpha7);
    PipelineBuilder::new(&[1, 8, 8])
        .affine(Conv2d::new(1, 4, 3, 1, 1, &mut rng))
        .paf_relu(&relu, 6.0)
        .paf_maxpool(2, 2, &pool, 8.0)
        .affine(Flatten::new())
        .affine(Linear::new(64, 10, &mut rng))
        .compile()
        .fold_scales()
}

fn batch_inputs() -> Vec<Vec<f64>> {
    (0..BATCH)
        .map(|i| {
            (0..INPUT_DIM)
                .map(|j| (((i * INPUT_DIM + j) * 131) % 257) as f64 / 128.5 - 1.0)
                .collect()
        })
        .collect()
}

/// Best-of-`iters` wall time of `f`, measured inline.
fn min_time(iters: usize, mut f: impl FnMut()) -> Duration {
    (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .min()
        .expect("at least one iteration")
}

fn bench_throughput(c: &mut Criterion) {
    let pipe = ablation_pipeline();
    let inputs = batch_inputs();
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let mut group = c.benchmark_group("paf_throughput");
    group.sample_size(10);
    group.meta("batch", format!("{BATCH}x{INPUT_DIM}"));
    group.meta("stages", pipe.stages().len());
    group.meta("cores", cores);

    // Sequential reference: the single-input entry point in a loop.
    group.meta("threads", 0);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for x in &inputs {
                acc += pipe.eval_plain(x)[0];
            }
            std::hint::black_box(acc)
        })
    });

    for threads in [1usize, 2, 4, 8] {
        let runner = BatchRunner::new(threads);
        group.meta("threads", threads);
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| {
                let run = runner.run_plain(&pipe, &inputs).expect("valid batch");
                std::hint::black_box(run.outputs.len())
            })
        });
    }
    group.finish();

    // The scaling gate: only meaningful where 4 workers can actually
    // run in parallel, so it keys off the recorded core count rather
    // than failing spuriously in small containers.
    let test_mode = std::env::args().any(|a| a == "--test");
    if !test_mode && cores >= 4 {
        let seq = min_time(3, || {
            let mut acc = 0.0;
            for x in &inputs {
                acc += pipe.eval_plain(x)[0];
            }
            std::hint::black_box(acc);
        });
        let runner = BatchRunner::new(4);
        let par4 = min_time(3, || {
            let run = runner.run_plain(&pipe, &inputs).expect("valid batch");
            std::hint::black_box(run.outputs.len());
        });
        let ratio = seq.as_secs_f64() / par4.as_secs_f64();
        println!("throughput gate: sequential {seq:?} vs 4 threads {par4:?} on {cores} cores → {ratio:.2}x");
        assert!(
            ratio >= 2.0,
            "4-thread batch throughput must be >= 2x sequential on a \
             {cores}-core host (got {ratio:.2}x)"
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().json_output("BENCH_throughput.json");
    targets = bench_throughput
}
criterion_main!(benches);
