//! Criterion benchmark: Session planning wall-time vs PAF slot count.
//!
//! The planner's cost is dominated by trace dry runs — one per form
//! vector evaluated — so this measures how the three [`PlanBudget`]
//! tiers scale as the pipeline grows: `uniform` (one dry run per
//! candidate form, the PR-4 single-form planner), `greedy` (per-slot
//! sweeps to a fixpoint), and the default `beam` (greedy plus a
//! 3-wide, 2-round beam). Group metadata records the slot count and
//! strategy, so the JSON report (`BENCH_plan.json` via the
//! criterion-shim hook) is self-describing; CI's `bench-smoke` job
//! uploads it as a workflow artifact.
//!
//! The interesting curve is wall-time vs `slots` per strategy: uniform
//! stays flat (6 dry runs regardless of depth), greedy grows roughly
//! linearly in slots × forms, and beam saturates at the
//! `max_dry_runs` cap — the knob that keeps deep pipelines
//! seconds-scale.

use criterion::{criterion_group, criterion_main, Criterion};
use smartpaf::{Objective, PlanBudget, Session, SessionBuilder};
use smartpaf_ckks::CkksParams;
use smartpaf_nn::Linear;
use smartpaf_tensor::Rng64;

/// `slots` affine→ReLU blocks over a flat 8-vector on the toy ring —
/// deep enough past 2 blocks that every vector bootstraps, so the
/// search space has real structure.
fn blocks_builder(slots: usize) -> SessionBuilder {
    let mut rng = Rng64::new(4242);
    let mut b = Session::builder(&[8]).params(CkksParams::toy()).seed(4242);
    for _ in 0..slots {
        b = b.affine(Linear::new(8, 8, &mut rng)).relu(4.0);
    }
    b
}

fn bench_planning(c: &mut Criterion) {
    for slots in [1usize, 2, 4, 6] {
        let mut group = c.benchmark_group(format!("paf_plan_slots{slots}"));
        group.sample_size(10);
        group.meta("slots", slots);

        for (name, budget) in [
            ("uniform", PlanBudget::uniform()),
            ("greedy", PlanBudget::greedy(96)),
            ("beam", PlanBudget::default()),
        ] {
            group.meta("strategy", name);
            group.bench_function(name, |b| {
                b.iter(|| {
                    let plan = blocks_builder(slots)
                        .objective(Objective::MinBootstraps)
                        .budget(budget)
                        .plan()
                        .expect("the toy chain plans every slot count");
                    std::hint::black_box((plan.dry_runs_used(), plan.traced_bootstraps()))
                })
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().json_output("BENCH_plan.json");
    targets = bench_planning
}
criterion_main!(benches);
