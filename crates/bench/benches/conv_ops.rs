//! Criterion benchmark: tensor substrate convolution kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use smartpaf_tensor::{conv2d, conv2d_backward, ConvSpec, Rng64, Tensor};

fn bench_conv(c: &mut Criterion) {
    let mut rng = Rng64::new(5);
    let x = Tensor::rand_normal(&[4, 16, 16, 16], 0.0, 1.0, &mut rng);
    let w = Tensor::rand_normal(&[32, 16, 3, 3], 0.0, 0.2, &mut rng);
    let bias = Tensor::zeros(&[32]);
    let spec = ConvSpec::new(3, 1, 1);
    c.bench_function("conv2d_fwd_4x16x16x16", |b| {
        b.iter(|| std::hint::black_box(conv2d(&x, &w, &bias, &spec)))
    });
    let y = conv2d(&x, &w, &bias, &spec);
    let g = Tensor::ones(y.dims());
    c.bench_function("conv2d_bwd_4x16x16x16", |b| {
        b.iter(|| std::hint::black_box(conv2d_backward(&x, &w, &g, &spec)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_conv
}
criterion_main!(benches);
