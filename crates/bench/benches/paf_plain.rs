//! Criterion benchmark: plaintext PAF evaluation, including the
//! odd-Horner vs dense-Horner ablation called out in DESIGN.md §5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smartpaf_polyfit::{CompositePaf, PafForm, Polynomial};

fn bench_plain_forms(c: &mut Criterion) {
    let xs: Vec<f64> = (0..4096).map(|i| i as f64 / 2048.0 - 1.0).collect();
    let mut group = c.benchmark_group("paf_plain_eval_4096");
    for form in PafForm::all() {
        let paf = CompositePaf::from_form(form);
        group.bench_with_input(
            BenchmarkId::from_parameter(form.paper_name()),
            &paf,
            |b, paf| {
                b.iter(|| {
                    let s: f64 = xs.iter().map(|&x| paf.relu(x)).sum();
                    std::hint::black_box(s)
                })
            },
        );
    }
    group.finish();
}

fn bench_odd_vs_dense(c: &mut Criterion) {
    let p = Polynomial::from_odd(&[7.3, -34.7, 59.9, -31.9]);
    let xs: Vec<f64> = (0..4096).map(|i| i as f64 / 2048.0 - 1.0).collect();
    c.bench_function("horner_dense_deg7", |b| {
        b.iter(|| {
            let s: f64 = xs.iter().map(|&x| p.eval(x)).sum();
            std::hint::black_box(s)
        })
    });
    c.bench_function("horner_odd_deg7", |b| {
        b.iter(|| {
            let s: f64 = xs.iter().map(|&x| p.eval_odd(x)).sum();
            std::hint::black_box(s)
        })
    });
}

criterion_group!(benches, bench_plain_forms, bench_odd_vs_dense);
criterion_main!(benches);
