//! Criterion benchmark: plaintext PAF evaluation.
//!
//! Two layers:
//!
//! - the original odd-Horner vs dense-Horner head-to-head
//!   (`horner_dense_deg7` / `horner_odd_deg7`) that flagged the PR-1
//!   hot-path regression, now the regression guard for the packed
//!   reverse-walk fix in `Polynomial::eval_odd`;
//! - the evaluation-engine ablation matrix: backend
//!   (dense / odd / estrin / batched) × degree (7 / 15 / 27), all
//!   through `smartpaf_polyfit::PolyEval`.
//!
//! The run emits a machine-readable `BENCH_paf.json` (in the bench
//! package directory) via the criterion shim's JSON hook; the CI
//! `bench-smoke` job uploads it as a workflow artifact.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smartpaf_polyfit::{CompositePaf, EvalPlan, PafForm, PolyEval, Polynomial};

fn grid(n: usize) -> Vec<f64> {
    (0..n).map(|i| i as f64 / (n as f64 / 2.0) - 1.0).collect()
}

/// A deterministic odd polynomial of the given degree with tame,
/// sign-alternating coefficients.
fn odd_poly(degree: usize) -> Polynomial {
    assert!(degree % 2 == 1, "ablation degrees are odd");
    let n = degree.div_ceil(2);
    let odd: Vec<f64> = (0..n)
        .map(|k| {
            let mag = 2.0 / (k as f64 + 1.0);
            if k % 2 == 0 {
                mag
            } else {
                -mag
            }
        })
        .collect();
    Polynomial::from_odd(&odd)
}

fn bench_plain_forms(c: &mut Criterion) {
    let xs = grid(4096);
    let mut group = c.benchmark_group("paf_plain_eval_4096");
    for form in PafForm::all() {
        let paf = CompositePaf::from_form(form);
        group.bench_with_input(
            BenchmarkId::from_parameter(form.paper_name()),
            &paf,
            |b, paf| {
                let eng = paf.prepare();
                let mut out = vec![0.0; xs.len()];
                b.iter(|| {
                    eng.relu_slice(&xs, &mut out);
                    std::hint::black_box(out.iter().sum::<f64>())
                })
            },
        );
    }
    group.finish();
}

fn bench_odd_vs_dense(c: &mut Criterion) {
    let p = Polynomial::from_odd(&[7.3, -34.7, 59.9, -31.9]);
    let xs = grid(4096);
    c.bench_function("horner_dense_deg7", |b| {
        b.iter(|| {
            let s: f64 = xs.iter().map(|&x| p.eval(x)).sum();
            std::hint::black_box(s)
        })
    });
    c.bench_function("horner_odd_deg7", |b| {
        b.iter(|| {
            let s: f64 = xs.iter().map(|&x| p.eval_odd(x)).sum();
            std::hint::black_box(s)
        })
    });
}

/// The engine ablation matrix: backend × degree, 4096-point grid.
fn bench_eval_ablation(c: &mut Criterion) {
    let xs = grid(4096);
    for degree in [7usize, 15, 27] {
        let p = odd_poly(degree);
        let mut group = c.benchmark_group(format!("polyeval_deg{degree}"));

        let dense = PolyEval::with_plan(&p, EvalPlan::DenseHorner);
        group.bench_function("dense", |b| {
            b.iter(|| {
                let s: f64 = xs.iter().map(|&x| dense.eval(x)).sum();
                std::hint::black_box(s)
            })
        });

        let odd = PolyEval::with_plan(&p, EvalPlan::OddHorner);
        group.bench_function("odd", |b| {
            b.iter(|| {
                let s: f64 = xs.iter().map(|&x| odd.eval(x)).sum();
                std::hint::black_box(s)
            })
        });

        let estrin = PolyEval::with_plan(&p, EvalPlan::OddEstrin);
        group.bench_function("estrin", |b| {
            b.iter(|| {
                let s: f64 = xs.iter().map(|&x| estrin.eval(x)).sum();
                std::hint::black_box(s)
            })
        });

        // The auto-selected plan through the batch lane loop.
        let auto = PolyEval::new(&p);
        let mut out = vec![0.0; xs.len()];
        group.bench_function("batched", |b| {
            b.iter(|| {
                auto.eval_slice(&xs, &mut out);
                std::hint::black_box(out.iter().sum::<f64>())
            })
        });

        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().json_output("BENCH_paf.json");
    targets = bench_plain_forms, bench_odd_vs_dense, bench_eval_ablation
}
criterion_main!(benches);
