//! Criterion benchmarks of CKKS primitive operations — the cost model
//! behind every latency number in the paper reproduction.

use criterion::{criterion_group, criterion_main, Criterion};
use smartpaf_ckks::modular::ntt_primes;
use smartpaf_ckks::{CkksParams, Evaluator, KeyChain, NttTable};
use smartpaf_tensor::Rng64;

fn bench_ntt(c: &mut Criterion) {
    let n = 4096;
    let q = ntt_primes(40, 1, n)[0];
    let table = NttTable::new(q, n);
    let data: Vec<u64> = (0..n).map(|i| (i as u64 * 7919) % q).collect();
    c.bench_function("ntt_forward_4096", |b| {
        b.iter(|| {
            let mut a = data.clone();
            table.forward(&mut a);
            std::hint::black_box(a);
        })
    });
    c.bench_function("ntt_inverse_4096", |b| {
        let mut fwd = data.clone();
        table.forward(&mut fwd);
        b.iter(|| {
            let mut a = fwd.clone();
            table.inverse(&mut a);
            std::hint::black_box(a);
        })
    });
}

fn bench_cipher_ops(c: &mut Criterion) {
    let ctx = CkksParams::default_params().build();
    let mut rng = Rng64::new(1);
    let keys = KeyChain::generate(&ctx, &mut rng);
    let ev = Evaluator::new(&keys);
    let vals: Vec<f64> = (0..64).map(|i| i as f64 / 64.0 - 0.5).collect();
    let ct = ev.encrypt_values(&vals, &mut rng);
    // Warm up the relin key cache so mul measures steady-state cost.
    let _ = ev.mul(&ct, &ct);

    c.bench_function("ckks_encrypt_n4096", |b| {
        let pt = ev.encoder().encode(&vals, ctx.scale(), ctx.primes().len());
        let mut r = Rng64::new(2);
        b.iter(|| std::hint::black_box(ev.encrypt(&pt, &mut r)))
    });
    c.bench_function("ckks_add", |b| {
        b.iter(|| std::hint::black_box(ev.add(&ct, &ct)))
    });
    c.bench_function("ckks_mul_relin", |b| {
        b.iter(|| std::hint::black_box(ev.mul(&ct, &ct)))
    });
    c.bench_function("ckks_mul_relin_rescale", |b| {
        b.iter(|| {
            let mut p = ev.mul(&ct, &ct);
            ev.rescale(&mut p);
            std::hint::black_box(p)
        })
    });
    c.bench_function("ckks_mul_const", |b| {
        b.iter(|| std::hint::black_box(ev.mul_const(&ct, 0.5)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ntt, bench_cipher_ops
}
criterion_main!(benches);
