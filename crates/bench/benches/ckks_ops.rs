//! Criterion benchmarks of CKKS primitive operations — the cost model
//! behind every latency number in the paper reproduction.
//!
//! Covers the raw-speed hot path end to end: the lazy-reduction NTT at
//! three ring sizes, and the ciphertext pipeline (encrypt, add,
//! mul+relin, rescale, rotate, mul_const) at N = 4096 and N = 8192.
//! Emits `BENCH_ckks.json` through the criterion shim's JSON hook; CI
//! diffs a timed run against the committed
//! `BENCH_ckks.reference.json` so hot-path regressions fail the build.

use criterion::{criterion_group, criterion_main, Criterion};
use smartpaf_ckks::modular::ntt_primes;
use smartpaf_ckks::{CkksParams, Evaluator, KeyChain, NttTable};
use smartpaf_tensor::Rng64;

fn bench_ntt(c: &mut Criterion) {
    for n in [2048usize, 4096, 8192] {
        let q = ntt_primes(40, 1, n)[0];
        let table = NttTable::new(q, n);
        let data: Vec<u64> = (0..n).map(|i| (i as u64 * 7919) % q).collect();
        c.bench_function(&format!("ntt_forward_{n}"), |b| {
            b.iter(|| {
                let mut a = data.clone();
                table.forward(&mut a);
                std::hint::black_box(a);
            })
        });
        c.bench_function(&format!("ntt_inverse_{n}"), |b| {
            let mut fwd = data.clone();
            table.forward(&mut fwd);
            b.iter(|| {
                let mut a = fwd.clone();
                table.inverse(&mut a);
                std::hint::black_box(a);
            })
        });
    }
}

fn bench_cipher_ops_at(c: &mut Criterion, params: CkksParams) {
    let n = params.n;
    let ctx = params.build();
    let mut rng = Rng64::new(1);
    let keys = KeyChain::generate(&ctx, &mut rng);
    let ev = Evaluator::new(&keys);
    let vals: Vec<f64> = (0..64).map(|i| i as f64 / 64.0 - 0.5).collect();
    let ct = ev.encrypt_values(&vals, &mut rng);
    // Warm up the relin/rotation key caches and the thread-local buffer
    // pool so every measurement sees steady-state (allocation-free)
    // cost.
    let _ = ev.rotate(&ev.mul(&ct, &ct), 1);

    c.bench_function(&format!("ckks_encrypt_n{n}"), |b| {
        let pt = ev.encoder().encode(&vals, ctx.scale(), ctx.primes().len());
        let mut r = Rng64::new(2);
        b.iter(|| std::hint::black_box(ev.encrypt(&pt, &mut r)))
    });
    c.bench_function(&format!("ckks_add_n{n}"), |b| {
        b.iter(|| std::hint::black_box(ev.add(&ct, &ct)))
    });
    c.bench_function(&format!("ckks_mul_relin_n{n}"), |b| {
        b.iter(|| std::hint::black_box(ev.mul(&ct, &ct)))
    });
    // Rescale alone: the clone is microseconds (pooled memcpy) against
    // a milliseconds-scale rescale, so the id still tracks the RNS
    // basis drop.
    let prod = ev.mul(&ct, &ct);
    c.bench_function(&format!("ckks_rescale_n{n}"), |b| {
        b.iter(|| {
            let mut p = prod.clone();
            ev.rescale(&mut p);
            std::hint::black_box(p)
        })
    });
    c.bench_function(&format!("ckks_mul_relin_rescale_n{n}"), |b| {
        b.iter(|| {
            let mut p = ev.mul(&ct, &ct);
            ev.rescale(&mut p);
            std::hint::black_box(p)
        })
    });
    c.bench_function(&format!("ckks_rotate_n{n}"), |b| {
        b.iter(|| std::hint::black_box(ev.rotate(&ct, 1)))
    });
    c.bench_function(&format!("ckks_mul_const_n{n}"), |b| {
        b.iter(|| std::hint::black_box(ev.mul_const(&ct, 0.5)))
    });
}

fn bench_cipher_ops(c: &mut Criterion) {
    bench_cipher_ops_at(c, CkksParams::default_params());
    bench_cipher_ops_at(c, CkksParams::benchmark());
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .json_output("BENCH_ckks.json");
    targets = bench_ntt, bench_cipher_ops
}
criterion_main!(benches);
