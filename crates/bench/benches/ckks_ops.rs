//! Criterion benchmarks of CKKS primitive operations — the cost model
//! behind every latency number in the paper reproduction.
//!
//! Covers the raw-speed hot path end to end: the lazy-reduction NTT at
//! three ring sizes, and the ciphertext pipeline (encrypt, add,
//! mul+relin, rescale, rotate, mul_const) at N = 4096 and N = 8192,
//! with the key-switch gadget's digit count and the host core count
//! recorded as group metadata. `bench_gadget` measures the hybrid
//! gadget against the per-prime baseline in-process at the top of the
//! 13-limb default chain and fails the bench if the hybrid
//! relinearisation is not ≥ 1.5× faster single-core.
//! Emits `BENCH_ckks.json` through the criterion shim's JSON hook; CI
//! diffs a timed run against the committed
//! `BENCH_ckks.reference.json` so hot-path regressions fail the build.

use criterion::{criterion_group, criterion_main, Criterion};
use smartpaf_ckks::modular::ntt_primes;
use smartpaf_ckks::{cost, par, CkksParams, Evaluator, KeyChain, NttTable};
use smartpaf_tensor::Rng64;
use std::time::{Duration, Instant};

fn bench_ntt(c: &mut Criterion) {
    for n in [2048usize, 4096, 8192] {
        let q = ntt_primes(40, 1, n)[0];
        let table = NttTable::new(q, n);
        let data: Vec<u64> = (0..n).map(|i| (i as u64 * 7919) % q).collect();
        c.bench_function(&format!("ntt_forward_{n}"), |b| {
            b.iter(|| {
                let mut a = data.clone();
                table.forward(&mut a);
                std::hint::black_box(a);
            })
        });
        c.bench_function(&format!("ntt_inverse_{n}"), |b| {
            let mut fwd = data.clone();
            table.forward(&mut fwd);
            b.iter(|| {
                let mut a = fwd.clone();
                table.inverse(&mut a);
                std::hint::black_box(a);
            })
        });
    }
}

/// Host logical-core count (what `BatchRunner::auto` would see without
/// an env override), recorded so bench consumers can tell a 1-core
/// recording from a many-core one.
fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn bench_cipher_ops_at(c: &mut Criterion, params: CkksParams) {
    let n = params.n;
    let top_limbs = params.depth + 1;
    let mut g = c.benchmark_group(format!("ckks_n{n}"));
    g.meta("ks_digit_limbs", params.ks_digit_limbs)
        .meta(
            "digits",
            if params.ks_digit_limbs == 0 {
                top_limbs // per-prime: one group per prime
            } else {
                cost::hybrid_digits(&params, top_limbs)
            },
        )
        .meta("cores", host_cores())
        .meta("threads", par::max_intra_workers());
    let ctx = params.build();
    let mut rng = Rng64::new(1);
    let keys = KeyChain::generate(&ctx, &mut rng);
    let ev = Evaluator::new(&keys);
    let vals: Vec<f64> = (0..64).map(|i| i as f64 / 64.0 - 0.5).collect();
    let ct = ev.encrypt_values(&vals, &mut rng);
    // Warm up the relin/rotation key caches and the thread-local buffer
    // pool so every measurement sees steady-state (allocation-free)
    // cost.
    let _ = ev.rotate(&ev.mul(&ct, &ct), 1);

    g.bench_function("encrypt", |b| {
        let pt = ev.encoder().encode(&vals, ctx.scale(), ctx.primes().len());
        let mut r = Rng64::new(2);
        b.iter(|| std::hint::black_box(ev.encrypt(&pt, &mut r)))
    });
    g.bench_function("add", |b| b.iter(|| std::hint::black_box(ev.add(&ct, &ct))));
    g.bench_function("mul_relin", |b| {
        b.iter(|| std::hint::black_box(ev.mul(&ct, &ct)))
    });
    // Rescale alone: the clone is microseconds (pooled memcpy) against
    // a milliseconds-scale rescale, so the id still tracks the RNS
    // basis drop.
    let prod = ev.mul(&ct, &ct);
    g.bench_function("rescale", |b| {
        b.iter(|| {
            let mut p = prod.clone();
            ev.rescale(&mut p);
            std::hint::black_box(p)
        })
    });
    g.bench_function("mul_relin_rescale", |b| {
        b.iter(|| {
            let mut p = ev.mul(&ct, &ct);
            ev.rescale(&mut p);
            std::hint::black_box(p)
        })
    });
    g.bench_function("rotate", |b| {
        b.iter(|| std::hint::black_box(ev.rotate(&ct, 1)))
    });
    g.bench_function("mul_const", |b| {
        b.iter(|| std::hint::black_box(ev.mul_const(&ct, 0.5)))
    });
}

fn bench_cipher_ops(c: &mut Criterion) {
    bench_cipher_ops_at(c, CkksParams::default_params());
    bench_cipher_ops_at(c, CkksParams::benchmark());
}

/// Best-of-`iters` wall time of `f`, measured inline.
fn min_time(iters: usize, mut f: impl FnMut()) -> Duration {
    (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .min()
        .expect("at least one iteration")
}

/// The gadget acceptance gate: hybrid vs per-prime relinearisation at
/// the top of the default 13-limb chain, in one process, pinned to a
/// single core so the comparison isolates the gadget (not the worker
/// pool). The timed run must show the hybrid ct_mult+relin ≥ 1.5×
/// faster; `--test` mode only checks that both paths execute.
fn bench_gadget(c: &mut Criterion) {
    let hybrid_params = CkksParams::default_params();
    assert!(hybrid_params.ks_digit_limbs > 0, "default must be hybrid");
    let per_prime_params = CkksParams {
        ks_digit_limbs: 0,
        ..hybrid_params
    };
    let top_limbs = hybrid_params.depth + 1;
    assert!(top_limbs >= 13, "gate needs a >= 13-level chain");
    let vals: Vec<f64> = (0..64).map(|i| i as f64 / 64.0 - 0.5).collect();
    let test_mode = std::env::args().any(|a| a == "--test");

    let mut mins = [Duration::ZERO; 2];
    for (slot, params) in [per_prime_params, hybrid_params].into_iter().enumerate() {
        let label = if params.ks_digit_limbs == 0 {
            "per_prime"
        } else {
            "hybrid"
        };
        let digits = if params.ks_digit_limbs == 0 {
            top_limbs
        } else {
            cost::hybrid_digits(&params, top_limbs)
        };
        let ctx = params.build();
        let mut rng = Rng64::new(7);
        let keys = KeyChain::generate(&ctx, &mut rng);
        let ev = Evaluator::new(&keys);
        let ct = ev.encrypt_values(&vals, &mut rng);
        let _ = ev.mul(&ct, &ct); // warm pools and key caches
        let mut g = c.benchmark_group(format!("ckks_gadget_n{}", params.n));
        g.meta("ks_digit_limbs", params.ks_digit_limbs)
            .meta("digits", digits)
            .meta("limbs", top_limbs)
            .meta("cores", host_cores());
        g.bench_function(format!("mul_relin_{label}"), |b| {
            b.iter(|| std::hint::black_box(ev.mul(&ct, &ct)))
        });
        drop(g);
        if !test_mode {
            mins[slot] = par::with_thread_budget(1, || {
                min_time(5, || {
                    std::hint::black_box(ev.mul(&ct, &ct));
                })
            });
        }
    }
    if !test_mode {
        let [per_prime, hybrid] = mins;
        let ratio = per_prime.as_secs_f64() / hybrid.as_secs_f64();
        println!(
            "gadget gate: per-prime {per_prime:?} vs hybrid {hybrid:?} \
             at {top_limbs} limbs single-core → {ratio:.2}x"
        );
        assert!(
            ratio >= 1.5,
            "hybrid relinearisation must be >= 1.5x faster than the \
             per-prime baseline at {top_limbs} limbs (got {ratio:.2}x)"
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .json_output("BENCH_ckks.json");
    targets = bench_ntt, bench_cipher_ops, bench_gadget
}
criterion_main!(benches);
