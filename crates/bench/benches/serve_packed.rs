//! Criterion benchmark: packed vs unpacked serving throughput on the
//! conv+pool demo model.
//!
//! The slot-packing claim is structural: one packed evaluation of the
//! lane-expanded pipeline answers `K` requests for roughly the cost of
//! one unpacked inference (PAF stages — the depth and the dominant
//! cost — are elementwise and pack for free; affine stages pay ~2×
//! rotations for the block-diagonal wrap taps). So a saturating burst
//! served packed should beat the same burst served one-request-per-
//! ciphertext by well over the acceptance floor of 3× once the lane
//! capacity is ≥ 4.
//!
//! A measurement pass outside the bencher runs the identical burst
//! through an unpacked and a packed server at the default ring
//! (N = 4096, 2048 slots; the conv+pool model's padded dim is 64, so
//! K = 32) and records both throughputs, their ratio, and the packed
//! server's slot-occupancy stats as group metadata — `BENCH_pack.json`
//! is self-describing even in `--test` mode (the CI `pack-smoke` fast
//! path). The timed pass then re-runs both drives under criterion.

use criterion::{criterion_group, criterion_main, Criterion};
use smartpaf::{
    serve_sessions, serve_sessions_packed, CompiledSession, Objective, Session, SessionError,
};
use smartpaf_ckks::CkksParams;
use smartpaf_heinfer::serve::{ServeConfig, Server, TenantId};
use smartpaf_heinfer::BatchRunner;
use smartpaf_nn::{Conv2d, Flatten, Linear};
use smartpaf_polyfit::PafForm;
use smartpaf_tensor::Rng64;
use std::time::{Duration, Instant};

const REQUESTS: usize = 8;
const INPUT_DIM: usize = 64; // [1, 8, 8]

/// The conv+pool demo model at the default ring: conv → ReLU →
/// max-pool → linear on an 8×8 input, fixed-form so planning is one
/// dry run and startup is keygen-bound.
fn bench_session(tenant: TenantId) -> Result<CompiledSession, SessionError> {
    let mut rng = Rng64::new(tenant.wrapping_add(9000));
    let mut session = Session::builder(&[1, 8, 8])
        .affine(Conv2d::new(1, 1, 3, 1, 1, &mut rng))
        .relu(4.0)
        .maxpool(2, 2, 4.0)
        .affine(Flatten::new())
        .affine(Linear::new(16, 16, &mut rng))
        .params(CkksParams::default_params())
        .objective(Objective::FixedForm(PafForm::F1G2))
        .seed(tenant.wrapping_add(9000))
        .plan()?
        .compile()?;
    session.set_batch_runner(BatchRunner::new(1));
    Ok(session)
}

fn serve_config(pack_lanes: bool) -> ServeConfig {
    ServeConfig {
        queue_capacity: 64,
        max_batch: 4,
        batch_deadline: Duration::ZERO,
        pack_lanes,
    }
}

/// Submits a staged burst of `REQUESTS` same-tenant requests and
/// blocks until all are served; returns the span of the burst.
fn drive(server: &Server<impl smartpaf_heinfer::BatchService + 'static>) -> Duration {
    server.pause();
    let tickets: Vec<_> = (0..REQUESTS)
        .map(|i| {
            let x: Vec<f64> = (0..INPUT_DIM)
                .map(|j| ((i * 13 + j * 5) % 17) as f64 / 8.5 - 1.0)
                .collect();
            server.submit(0, x).expect("queue sized for the burst")
        })
        .collect();
    let start = Instant::now();
    server.resume();
    for t in tickets {
        t.wait().expect("request served");
    }
    start.elapsed()
}

fn bench_packed_serving(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_packed");
    group.sample_size(10);

    // Measurement pass: the same burst through both serving modes on
    // fresh warmed servers; the real stats become group metadata.
    let unpacked = serve_sessions(bench_session, serve_config(false));
    unpacked
        .submit(0, vec![0.0; INPUT_DIM])
        .unwrap()
        .wait()
        .unwrap();
    let unpacked_span = drive(&unpacked);
    let unpacked_stats = unpacked.shutdown();

    // Warm the packed server with one full burst: a single warmup
    // request falls back to the unpacked path, which would leave the
    // lane-expanded pipeline's diagonal encodings and the packed-path
    // bootstrapper to be built *inside* the timed burst. Steady-state
    // packed serving is what the throughput ratio claims.
    let packed = serve_sessions_packed(bench_session, serve_config(true));
    drive(&packed);
    let packed_span = drive(&packed);
    let packed_stats = packed.shutdown();

    let unpacked_rps = REQUESTS as f64 / unpacked_span.as_secs_f64();
    let packed_rps = REQUESTS as f64 / packed_span.as_secs_f64();
    let ratio = packed_rps / unpacked_rps;
    let capacity = 2048 / INPUT_DIM; // slots at N = 4096 over padded dim

    group.meta("requests", REQUESTS);
    group.meta("lane_capacity", capacity);
    group.meta("max_batch", serve_config(false).max_batch);
    group.meta("unpacked_rps", format!("{unpacked_rps:.2}"));
    group.meta("packed_rps", format!("{packed_rps:.2}"));
    group.meta("throughput_ratio", format!("{ratio:.2}"));
    group.meta(
        "mean_slot_fill",
        format!("{:.2}", packed_stats.mean_slot_fill()),
    );
    group.meta("slot_batches", packed_stats.slot_batches);
    group.meta("unpacked_batches", unpacked_stats.batches.saturating_sub(1));

    // The acceptance floor: at lane capacity ≥ 4, packed serving must
    // clear 3× the unpacked throughput on the identical burst.
    assert!(capacity >= 4, "demo model must pack at least 4 lanes");
    assert!(
        ratio > 3.0,
        "packed serving must be >3x unpacked: packed {packed_rps:.2} rps \
         vs unpacked {unpacked_rps:.2} rps (ratio {ratio:.2})"
    );

    // Timed pass: a long-lived warmed server survives the iterations.
    let server = serve_sessions_packed(bench_session, serve_config(true));
    drive(&server);
    group.bench_function("packed_drive", |b| {
        b.iter(|| std::hint::black_box(drive(&server)))
    });
    drop(server);
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().json_output("BENCH_pack.json");
    targets = bench_packed_serving
}
criterion_main!(benches);
