//! Criterion benchmark: one fine-tuning step of a PAF-approximated
//! model — the unit of work the SMART-PAF scheduler repeats.

use criterion::{criterion_group, criterion_main, Criterion};
use smartpaf::replace_all;
use smartpaf_nn::{cross_entropy, mini_cnn, Adam, Mode, OptimConfig};
use smartpaf_polyfit::{CompositePaf, PafForm};
use smartpaf_tensor::{Rng64, Tensor};

fn bench_step(c: &mut Criterion) {
    let mut rng = Rng64::new(6);
    let mut model = mini_cnn(8, 0.125, &mut rng);
    replace_all(
        &mut model,
        &CompositePaf::from_form(PafForm::F1SqG1Sq),
        false,
    );
    let mut opt = Adam::new(OptimConfig::paper_tab5());
    let x = Tensor::rand_normal(&[8, 3, 16, 16], 0.0, 1.0, &mut rng);
    let labels: Vec<usize> = (0..8).map(|i| i % 8).collect();
    c.bench_function("paf_model_train_step_b8", |b| {
        b.iter(|| {
            let logits = model.forward(&x, Mode::Train);
            let (_, grad) = cross_entropy(&logits, &labels);
            model.backward(&grad);
            opt.step(&mut model.params_mut());
        })
    });
    c.bench_function("paf_model_eval_b8", |b| {
        b.iter(|| std::hint::black_box(model.forward(&x, Mode::Eval)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_step
}
criterion_main!(benches);
