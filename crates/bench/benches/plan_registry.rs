//! Criterion benchmark: what a shipped plan artifact buys.
//!
//! Three ways to obtain a servable [`Plan`] for the same model, worst
//! to best amortisation:
//!
//! - `cold_plan` — the full trace-priced search (uniform pass +
//!   greedy sweeps + beam refinement);
//! - `warm_plan` — the search seeded from a registry neighbour's
//!   chosen vector via [`SessionBuilder::registry`] (same structure,
//!   different weights), skipping the uniform pass;
//! - `load_plan` — [`PlanRegistry::load_plan`] on an exact artifact:
//!   no search at all, one validation re-trace.
//!
//! Plus the registry round trip itself (`save_plan`, and
//! `save+load`). Group metadata records slots and dry runs spent, so
//! the JSON report (`BENCH_registry.json` via the criterion-shim
//! hook) is self-describing; CI's `registry-smoke` job uploads it as
//! a workflow artifact.

use criterion::{criterion_group, criterion_main, Criterion};
use smartpaf::{Objective, PlanRegistry, Session, SessionBuilder};
use smartpaf_ckks::CkksParams;
use smartpaf_nn::Linear;
use smartpaf_tensor::Rng64;

const SLOTS: usize = 3;

/// `SLOTS` affine→ReLU blocks over a flat 8-vector on the toy ring;
/// `layer_seed` varies the weights without changing the structure.
fn blocks_builder(layer_seed: u64) -> SessionBuilder {
    let mut rng = Rng64::new(layer_seed);
    let mut b = Session::builder(&[8])
        .params(CkksParams::toy())
        .objective(Objective::MinBootstraps)
        .seed(layer_seed);
    for _ in 0..SLOTS {
        b = b.affine(Linear::new(8, 8, &mut rng)).relu(4.0);
    }
    b
}

fn registry_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "smartpaf-bench-registry-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bench_registry(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_registry");
    group.sample_size(10);
    group.meta("slots", SLOTS);

    // Cold baseline: the full search, no registry anywhere.
    let cold = blocks_builder(1).plan().expect("cold plan");
    group.meta("cold_dry_runs", cold.dry_runs_used());
    group.bench_function("cold_plan", |b| {
        b.iter(|| {
            let plan = blocks_builder(1).plan().expect("cold plan");
            std::hint::black_box(plan.dry_runs_used())
        })
    });

    // Warm start: the registry holds a neighbour (same structure,
    // different weights), so planning skips the uniform pass.
    let warm_reg = PlanRegistry::open(registry_dir("warm")).expect("open");
    warm_reg.save_plan(&cold).expect("publish neighbour");
    let warm = blocks_builder(2)
        .registry(&warm_reg)
        .plan()
        .expect("warm plan");
    group.meta("warm_dry_runs", warm.dry_runs_used());
    assert!(
        warm.dry_runs_used() < cold.dry_runs_used(),
        "warm start must spend strictly fewer dry runs ({} vs {})",
        warm.dry_runs_used(),
        cold.dry_runs_used()
    );
    group.bench_function("warm_plan", |b| {
        b.iter(|| {
            let plan = blocks_builder(2)
                .registry(&warm_reg)
                .plan()
                .expect("warm plan");
            std::hint::black_box(plan.dry_runs_used())
        })
    });

    // Exact-artifact load: zero planning, one validation re-trace.
    let load_reg = PlanRegistry::open(registry_dir("load")).expect("open");
    load_reg.save_plan(&cold).expect("publish exact");
    group.bench_function("load_plan", |b| {
        b.iter(|| {
            let plan = load_reg.load_plan(blocks_builder(1)).expect("load plan");
            std::hint::black_box(plan.dry_runs_used())
        })
    });

    // The round trip itself: serialize + fsync-free write, and the
    // full save→load cycle.
    group.bench_function("save_plan", |b| {
        b.iter(|| std::hint::black_box(load_reg.save_plan(&cold).expect("save")))
    });
    group.bench_function("save_load_round_trip", |b| {
        b.iter(|| {
            load_reg.save_plan(&cold).expect("save");
            let plan = load_reg.load_plan(blocks_builder(1)).expect("load");
            std::hint::black_box(plan.dry_runs_used())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().json_output("BENCH_registry.json");
    targets = bench_registry
}
criterion_main!(benches);
