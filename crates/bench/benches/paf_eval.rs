//! Criterion benchmark: encrypted PAF-ReLU latency per form — the
//! measurement behind Tab. 4's latency column and Fig. 1's x-axis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smartpaf_ckks::{CkksParams, Evaluator, KeyChain, PafEvaluator};
use smartpaf_polyfit::{CompositePaf, PafForm};
use smartpaf_tensor::Rng64;

fn bench_paf_relu(c: &mut Criterion) {
    let ctx = CkksParams::default_params().build();
    let mut rng = Rng64::new(3);
    let keys = KeyChain::generate(&ctx, &mut rng);
    let pe = PafEvaluator::new(Evaluator::new(&keys));
    let vals: Vec<f64> = (0..64).map(|i| i as f64 / 32.0 - 1.0).collect();
    let ct = pe.evaluator().encrypt_values(&vals, &mut rng);

    let mut group = c.benchmark_group("paf_relu_ckks");
    group.sample_size(10);
    for form in PafForm::all() {
        let paf = CompositePaf::from_form(form);
        // Warm up relin keys for the levels this form touches.
        let _ = pe.relu(&ct, &paf);
        group.bench_with_input(
            BenchmarkId::from_parameter(form.paper_name()),
            &paf,
            |b, paf| b.iter(|| std::hint::black_box(pe.relu(&ct, paf))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_paf_relu);
criterion_main!(benches);
