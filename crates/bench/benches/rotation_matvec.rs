//! Criterion benches for the rotation-based encrypted linear algebra:
//! Galois rotation, naive vs BSGS matrix–vector product, slot sums,
//! and the simulated bootstrap — the primitives behind the heinfer
//! end-to-end pipeline and the paper's "rotations are cheap,
//! bootstraps are not" cost structure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smartpaf_ckks::{Bootstrapper, CkksParams, DiagMatrix, Evaluator, KeyChain};
use smartpaf_tensor::Rng64;

fn setup() -> (Evaluator, Rng64) {
    let ctx = CkksParams::default_params().build();
    let mut rng = Rng64::new(99);
    let keys = KeyChain::generate(&ctx, &mut rng);
    (Evaluator::new(&keys), rng)
}

fn bench_rotation(c: &mut Criterion) {
    let (ev, mut rng) = setup();
    let slots = ev.context().slots();
    let vals: Vec<f64> = (0..slots).map(|i| (i % 31) as f64 / 31.0).collect();
    let ct = ev.encrypt_values(&vals, &mut rng);
    // Warm the Galois key caches so key generation is excluded.
    let _ = ev.rotate(&ct, 1);
    let _ = ev.rotate(&ct, 64);
    let mut g = c.benchmark_group("rotation");
    g.sample_size(10);
    for steps in [1i64, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(steps), &steps, |b, &s| {
            b.iter(|| ev.rotate(&ct, s));
        });
    }
    g.bench_function("conjugate", |b| {
        let _ = ev.conjugate(&ct);
        b.iter(|| ev.conjugate(&ct));
    });
    g.finish();
}

fn bench_matvec(c: &mut Criterion) {
    let (ev, mut rng) = setup();
    let m = 64usize;
    let rows: Vec<Vec<f64>> = (0..m)
        .map(|i| {
            (0..m)
                .map(|j| ((i * 7 + j * 3) % 13) as f64 / 13.0 - 0.5)
                .collect()
        })
        .collect();
    let mat = DiagMatrix::from_rows(&rows);
    let v: Vec<f64> = (0..m).map(|i| (i as f64 - 32.0) / 64.0).collect();
    let ct = ev.encrypt_replicated(&v, &mut rng);
    // Warm rotation key caches.
    let _ = ev.matvec_bsgs(&mat, &ct);
    let _ = ev.matvec(&mat, &ct);
    let mut g = c.benchmark_group("matvec_64x64");
    g.sample_size(10);
    g.bench_function("naive_diagonal", |b| b.iter(|| ev.matvec(&mat, &ct)));
    g.bench_function("bsgs", |b| b.iter(|| ev.matvec_bsgs(&mat, &ct)));
    g.finish();

    // Sparse structured matrix (pooling-like): few diagonals.
    let mut sparse_rows = vec![vec![0.0; m]; m / 4];
    for (o, row) in sparse_rows.iter_mut().enumerate() {
        row[o * 4] = 0.25;
        row[o * 4 + 1] = 0.25;
        row[o * 4 + 2] = 0.25;
        row[o * 4 + 3] = 0.25;
    }
    let sparse = DiagMatrix::from_rows_with_dim(&sparse_rows, m);
    let _ = ev.matvec_bsgs(&sparse, &ct);
    let mut g = c.benchmark_group("matvec_sparse_pooling");
    g.sample_size(10);
    g.bench_function("bsgs", |b| b.iter(|| ev.matvec_bsgs(&sparse, &ct)));
    g.finish();
}

fn bench_slot_sums(c: &mut Criterion) {
    let (ev, mut rng) = setup();
    let m = 64usize;
    let v: Vec<f64> = (0..m).map(|i| i as f64 / m as f64).collect();
    let w: Vec<f64> = (0..m).map(|i| 1.0 - i as f64 / m as f64).collect();
    let ct = ev.encrypt_replicated(&v, &mut rng);
    let _ = ev.sum_replicated(&ct, m);
    let mut g = c.benchmark_group("slot_sums");
    g.sample_size(10);
    g.bench_function("sum_replicated_64", |b| {
        b.iter(|| ev.sum_replicated(&ct, m))
    });
    g.bench_function("inner_product_64", |b| {
        b.iter(|| ev.inner_product_plain(&ct, &w))
    });
    g.finish();
}

fn bench_bootstrap(c: &mut Criterion) {
    let (ev, mut rng) = setup();
    let v: Vec<f64> = (0..64).map(|i| (i as f64 - 32.0) / 64.0).collect();
    let ct = ev.encrypt_replicated(&v, &mut rng);
    let low = ev.mul_const(&ct, 1.0); // one level down
    let bs = Bootstrapper::new(ev.clone(), 64, 123);
    let mut g = c.benchmark_group("bootstrap");
    g.sample_size(10);
    g.bench_function("simulated_refresh", |b| b.iter(|| bs.refresh(&low)));
    g.finish();
}

criterion_group!(
    benches,
    bench_rotation,
    bench_matvec,
    bench_slot_sums,
    bench_bootstrap
);
criterion_main!(benches);
