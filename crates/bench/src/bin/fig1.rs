//! Regenerates paper Fig. 1: the latency–accuracy Pareto frontier of
//! PAF forms on ResNet-18, SMART-PAF vs prior work (baseline + SS).

use smartpaf::{pareto_frontier, LatencyRig, ParetoPoint, TechniqueSet};
use smartpaf_bench::{pct, resnet_workbench, scale_from_env};
use smartpaf_ckks::CkksParams;
use smartpaf_polyfit::PafForm;

fn main() {
    let scale = scale_from_env();
    println!("Fig. 1 — latency vs accuracy Pareto frontier ({scale:?} scale)\n");

    let mut rig = LatencyRig::new(&CkksParams::default_params(), 8);
    let mut wb = resnet_workbench(scale, 7);
    println!(
        "ResNet-18 on synth-imagenet, original accuracy {}\n",
        pct(wb.original_acc())
    );

    let mut smart = Vec::new();
    let mut prior = Vec::new();
    println!(
        "{:<14} {:>14} {:>16} {:>16}",
        "PAF", "latency", "SMART-PAF acc", "prior (SS) acc"
    );
    for form in PafForm::smartpaf_set() {
        let lat = rig.measure_relu(form, 3);
        let ms = lat.relu_latency.as_secs_f64() * 1e3;
        let ours = wb.run_cell(TechniqueSet::smartpaf(), form, false);
        let them = wb.run_cell(TechniqueSet::baseline_ss(), form, false);
        println!(
            "{:<14} {:>11.1} ms {:>16} {:>16}",
            form.paper_name(),
            ms,
            pct(ours.final_acc),
            pct(them.final_acc)
        );
        smart.push((form, ms, ours.final_acc));
        prior.push((form, ms, them.final_acc));
    }

    let points: Vec<ParetoPoint> = smart
        .iter()
        .map(|&(_, ms, acc)| ParetoPoint {
            latency_ms: ms,
            accuracy: acc as f64,
        })
        .collect();
    println!("\nSMART-PAF Pareto frontier:");
    for i in pareto_frontier(&points) {
        println!(
            "  {:<14} {:>8.1} ms  {}",
            smart[i].0.paper_name(),
            smart[i].1,
            pct(smart[i].2)
        );
    }
    println!("\npaper shape: SMART-PAF dominates prior work at every latency point;");
    println!("the 14-degree f1²∘g1² reaches comparator-level accuracy ~7.8x faster.");
}
