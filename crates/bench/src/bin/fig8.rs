//! Regenerates paper Fig. 8: Progressive Approximation vs direct
//! replacement, post-fine-tuning accuracy (ReLU replacement,
//! ResNet-18). Includes the green-bar ablation: direct replacement +
//! progressive training.

use smartpaf::TechniqueSet;
use smartpaf_bench::{pct, resnet_workbench, scale_from_env};
use smartpaf_polyfit::PafForm;

fn main() {
    let scale = scale_from_env();
    println!("Fig. 8 — PA vs baseline, post-fine-tune accuracy");
    println!("model: ResNet-18 on synth-imagenet ({scale:?} scale), ReLU replaced\n");
    let mut wb = resnet_workbench(scale, 2);
    println!("original accuracy: {}\n", pct(wb.original_acc()));

    let direct = TechniqueSet::baseline_ds();
    let pa = TechniqueSet {
        pa: true,
        ..TechniqueSet::baseline_ds()
    };

    println!(
        "{:<14} {:>22} {:>22} {:>28}",
        "PAF", "direct repl + train", "progressive (PA)", "direct repl + prog train"
    );
    for form in PafForm::smartpaf_set() {
        let d = wb.run_cell(direct, form, true);
        let p = wb.run_cell(pa, form, true);
        let g = wb.run_cell_direct_replace_progressive(form, true);
        println!(
            "{:<14} {:>22} {:>22} {:>28}",
            form.paper_name(),
            pct(d.final_acc),
            pct(p.final_acc),
            pct(g.final_acc)
        );
    }
    println!("\npaper shape: PA adds ~0.4–1.9% over direct replacement; the");
    println!("green column (direct replacement + progressive training) degrades.");
}
