//! Regenerates paper App. B (Tabs. 6, 7, 9, 10, 11): per-layer
//! post-training PAF coefficients — the paper's published values plus
//! coefficients trained by our own pipeline.

use smartpaf::{TechniqueSet, Workbench};
use smartpaf_bench::{scale_from_env, train_config, width};
use smartpaf_datasets::{SynthDataset, SynthSpec};
use smartpaf_nn::resnet18;
use smartpaf_polyfit::{paper_coeffs, PafForm};
use smartpaf_tensor::Rng64;

fn main() {
    let scale = scale_from_env();
    println!("App. B — post-training PAF coefficients\n");

    println!("Tab. 7 (paper): minimax α=7 coefficients");
    println!("  stage 1 (odd deg 1..7): {:?}", paper_coeffs::ALPHA7.0);
    println!("  stage 2 (odd deg 1..7): {:?}\n", paper_coeffs::ALPHA7.1);

    println!("Tab. 6 (paper): f1∘g2 best per-layer coefficients (first 4 of 17 rows)");
    for (i, row) in paper_coeffs::F1G2_BEST.iter().take(4).enumerate() {
        println!(
            "  layer {i}: c=({:.4}, {:.4}) d=({:.4}, {:.4}, {:.4})",
            row.0, row.1, row.2, row.3, row.4
        );
    }
    println!(
        "  ... ({} rows total; see polyfit::paper_coeffs)\n",
        paper_coeffs::F1G2_BEST.len()
    );

    println!(
        "Tab. 9 (paper): f1²∘g1² row 0: {:?}\n",
        paper_coeffs::F1SQ_G1SQ_BEST[0]
    );

    // Now train our own per-layer coefficients with the full pipeline.
    println!("--- our trained per-layer f1∘g2 coefficients ({scale:?} scale) ---");
    let spec = SynthSpec {
        classes: 8,
        ..SynthSpec::imagenet_like(13)
    };
    let dataset = SynthDataset::new(spec);
    let mut rng = Rng64::new(13);
    let model = resnet18(spec.classes, width(scale), &mut rng);
    let mut wb = Workbench::new(model, dataset, train_config(scale, 13), 6);
    let _ = wb.run_cell(TechniqueSet::smartpaf_ds(), PafForm::F1G2, true);
    let pafs = wb.current_relu_pafs();
    println!(
        "{} ReLU layers replaced; per-layer odd coefficients:",
        pafs.len()
    );
    for (i, paf) in pafs.iter().enumerate() {
        let f: Vec<String> = paf.stages()[0]
            .odd_coeffs()
            .iter()
            .map(|c| format!("{c:.4}"))
            .collect();
        let g: Vec<String> = paf.stages()[1]
            .odd_coeffs()
            .iter()
            .map(|c| format!("{c:.4}"))
            .collect();
        println!("  layer {i:>2}: f=[{}] g=[{}]", f.join(", "), g.join(", "));
    }
    println!("\nLike the paper's tables, coefficients differ per layer — the");
    println!("signature of Coefficient Tuning + per-layer fine-tuning.");
}
