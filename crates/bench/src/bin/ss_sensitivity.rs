//! Extension experiment (paper §4.5 claim): Static Scaling is a local
//! optimum — freezing the scale above or below the running max should
//! both reduce accuracy.
//!
//! Not a numbered paper artifact, but the §4.5 text asserts "either a
//! higher or smaller scale results in lower accuracy"; this binary
//! quantifies that curve.

use smartpaf::TechniqueSet;
use smartpaf_bench::{pct, resnet_workbench, scale_from_env};
use smartpaf_polyfit::PafForm;

fn main() {
    let scale = scale_from_env();
    println!("§4.5 — Static Scaling sensitivity ({scale:?} scale)\n");
    let mut wb = resnet_workbench(scale, 12);
    println!("original accuracy: {}\n", pct(wb.original_acc()));

    println!("{:>14} {:>12}", "scale factor", "val acc");
    for &factor in &[0.25f32, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0] {
        let acc = wb.run_cell_with_scale_factor(
            TechniqueSet::smartpaf(),
            PafForm::F1SqG1Sq,
            false,
            factor,
        );
        println!("{factor:>13}x {:>12}", pct(acc));
    }
    println!("\npaper claim: the running-max scale (factor 1.0) is the sweet spot;");
    println!("both smaller (overflow) and larger (resolution loss) scales hurt.");
}
