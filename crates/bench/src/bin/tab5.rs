//! Regenerates paper Tab. 5: baseline training hyperparameters.

use smartpaf_nn::OptimConfig;

fn main() {
    let cfg = OptimConfig::paper_tab5();
    println!("Tab. 5 — baseline training hyperparameters");
    println!("{:<34} ReLU & MaxPooling", "Replaced layer");
    println!("{:<34} Adam", "Optimizer");
    println!("{:<34} {:e}", "learning rate for PAF", cfg.paf.lr);
    println!(
        "{:<34} {:e}",
        "learning rate for other layers", cfg.other.lr
    );
    println!("{:<34} {}", "Weight decay for PAF", cfg.paf.weight_decay);
    println!(
        "{:<34} {}",
        "Weight decay for other layers", cfg.other.weight_decay
    );
    println!("{:<34} False", "BatchNorm Tracking");
    println!("{:<34} False", "Dropout");
}
