//! Regenerates paper Tab. 8 / Fig. 10: the multiplication-depth
//! walkthrough of evaluating `f1 ∘ g2` under CKKS.

use smartpaf_polyfit::{CompositePaf, DepthTrace, PafForm};

fn main() {
    println!("Tab. 8 / Fig. 10 — multiplication depth walkthrough of f1∘g2\n");
    let trace = DepthTrace::for_stage_degrees(&[3, 5]);
    println!("{trace}\n");

    println!("depth traces of every Tab. 2 form:");
    for form in PafForm::all() {
        let paf = CompositePaf::from_form(form);
        let degs: Vec<usize> = paf.stages().iter().map(|s| s.degree()).collect();
        let trace = DepthTrace::for_stage_degrees(&degs);
        println!(
            "  {:<20} stages {:?} -> total depth {}",
            form.paper_name(),
            degs,
            trace.total_depth()
        );
    }
}
