//! Regenerates paper Tab. 1 quantitatively: communication, latency and
//! accuracy flags for hybrid schemes vs in-FHE PAF processing.
//!
//! Run with: `cargo run -p smartpaf-bench --release --bin tab1`

use smartpaf_hybrid::{tab1_matrix, NetworkConfig, Scheme, WorkloadSpec};

fn mark(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "NO"
    }
}

fn print_matrix(label: &str, w: &WorkloadSpec, net: &NetworkConfig) {
    println!("\n== {label} ==");
    println!(
        "{:<36} {:>12} {:>12} {:>10} {:>9} {:>9} {:>9}",
        "scheme", "online MB", "offline MB", "latency s", "low-comm", "low-acc∆", "low-lat"
    );
    for row in tab1_matrix(w, net) {
        println!(
            "{:<36} {:>12.1} {:>12.1} {:>10.2} {:>9} {:>9} {:>9}",
            row.scheme.to_string(),
            row.cost.online_bytes / 1e6,
            row.cost.offline_bytes / 1e6,
            row.cost.latency_sec,
            mark(row.low_communication),
            mark(row.low_accuracy_degradation),
            mark(row.low_latency),
        );
    }
}

fn main() {
    println!("Tab. 1 — scheme comparison, quantitative reconstruction");
    println!("(paper: SafeNet/CryptoNet/HEAX rows ✗ comm; F1/BTS rows ✗ latency; SMART-PAF ✓✓✓)");
    let resnet = WorkloadSpec::resnet18_imagenet();
    print_matrix(
        "ResNet-18 / ImageNet-1k, LAN (10 Gbit/s)",
        &resnet,
        &NetworkConfig::lan(),
    );
    print_matrix(
        "ResNet-18 / ImageNet-1k, WAN (100 Mbit/s)",
        &resnet,
        &NetworkConfig::wan(),
    );
    let vgg = WorkloadSpec::vgg19_cifar();
    print_matrix(
        "VGG-19 / CIFAR-10, WAN (100 Mbit/s)",
        &vgg,
        &NetworkConfig::wan(),
    );

    println!("\nCrossover bandwidths (hybrid comm latency = SMART-PAF FHE latency):");
    for s in [Scheme::GazelleHybrid, Scheme::DelphiHybrid] {
        let bw = smartpaf_hybrid::crossover_bandwidth(s, &resnet);
        println!("  {s}: {:.1} Mbit/s", bw * 8.0 / 1e6);
    }
}
