//! Composite-PAF search: regenerates the selections behind paper
//! Tab. 2 from first principles and sweeps the α → depth trade-off.
//!
//! Run with: `cargo run -p smartpaf-bench --release --bin paf_search`

use smartpaf_polyfit::{
    enumerate_composites, min_depth_composite, min_depth_under_degree, pareto_frontier,
    SearchConfig,
};

fn main() {
    let cfg = SearchConfig {
        max_stages: 4,
        samples: 201,
        ..SearchConfig::default()
    };
    println!(
        "Composite-PAF search over {{f1,f2,f3,g1,g2,g3}} sequences, up to {} stages, ε = {}",
        cfg.max_stages, cfg.eps
    );

    println!("\n(depth, error) Pareto frontier:");
    println!(
        "{:<16} {:>6} {:>8} {:>12} {:>8}",
        "composite", "depth", "degree", "max error", "α"
    );
    for c in pareto_frontier(enumerate_composites(&cfg)) {
        println!(
            "{:<16} {:>6} {:>8} {:>12.3e} {:>8.2}",
            c.name(),
            c.depth,
            c.degree,
            c.max_error,
            c.alpha()
        );
    }

    println!("\nTab. 2 regeneration — minimal depth under a degree budget:");
    println!(
        "{:<8} {:<16} {:>6} {:>12}",
        "budget", "pick", "depth", "max error"
    );
    for budget in [5usize, 8, 10, 12, 14] {
        match min_depth_under_degree(&cfg, budget) {
            Some(c) => println!(
                "{:<8} {:<16} {:>6} {:>12.3e}",
                budget,
                c.name(),
                c.depth,
                c.max_error
            ),
            None => println!("{budget:<8} (none bounded)"),
        }
    }

    println!("\nα sweep — minimal depth achieving error ≤ 2^-α:");
    println!(
        "{:<6} {:<16} {:>6} {:>12}",
        "α", "pick", "depth", "max error"
    );
    for alpha in 2..=7 {
        let tol = 2f64.powi(-alpha);
        match min_depth_composite(&cfg, tol) {
            Some(c) => println!(
                "{:<6} {:<16} {:>6} {:>12.3e}",
                alpha,
                c.name(),
                c.depth,
                c.max_error
            ),
            None => println!("{alpha:<6} unreachable at {} stages", cfg.max_stages),
        }
    }
    println!("\n(the paper's forms — f1∘g2, f2∘g2, f2∘g3, f1²∘g1² — sit on or near this frontier)");
}
