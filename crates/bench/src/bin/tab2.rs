//! Regenerates paper Tab. 2: PAF forms, degrees and multiplication
//! depth.

use smartpaf_polyfit::{CompositePaf, PafForm};

fn main() {
    println!("Tab. 2 — PAF forms and multiplication depth");
    println!(
        "{:<20} {:>12} {:>10} {:>14} {:>7}",
        "form", "paper degree", "sum degree", "stage degrees", "depth"
    );
    for form in PafForm::all().into_iter().rev() {
        let paf = CompositePaf::from_form(form);
        let stages: Vec<String> = paf
            .stages()
            .iter()
            .map(|s| s.degree().to_string())
            .collect();
        println!(
            "{:<20} {:>12} {:>10} {:>14} {:>7}",
            form.paper_name(),
            form.paper_reported_degree(),
            paf.sum_degree(),
            stages.join("+"),
            paf.mult_depth()
        );
    }
    println!("\npaper depth row: α=10→10, f1²∘g1²→8, α=7→6, f2∘g3→6, f2∘g2→6, f1∘g2→5");
    println!("(our depth column is computed from ceil(log2(deg+1)) per stage, App. C)");
}
