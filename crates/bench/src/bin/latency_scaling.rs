//! Extension experiment: PAF-ReLU latency versus ring dimension.
//!
//! Tab. 4's absolute numbers depend on CKKS parameters; this binary
//! shows that the *speedup ordering* of the PAF forms is stable across
//! ring dimensions and matches the analytic model's projection at the
//! paper's N = 32768.
//!
//! Run with: `cargo run -p smartpaf-bench --release --bin latency_scaling`

use smartpaf::LatencyRig;
use smartpaf_ckks::cost::{project_seconds, relu_op_counts};
use smartpaf_ckks::CkksParams;
use smartpaf_polyfit::{CompositePaf, PafForm};

fn main() {
    let forms = PafForm::all();
    let ns = [1024usize, 2048, 4096];
    println!("PAF-ReLU latency vs ring dimension (measured, 1 iter each)");
    print!("{:<20}", "form");
    for n in ns {
        print!(" {:>12}", format!("N={n}"));
    }
    println!(" {:>14} {:>9}", "proj N=32768", "speedup");

    // Analytic projection at paper scale, calibrated per modmul.
    let paper = CkksParams::paper_scale();
    let per_modmul = 1.2e-9;
    let baseline_proj = project_seconds(
        &relu_op_counts(&paper, &CompositePaf::from_form(PafForm::MinimaxDeg27)),
        per_modmul,
    );

    for form in forms {
        print!("{:<20}", form.paper_name());
        for n in ns {
            let params = CkksParams {
                n,
                ..CkksParams::default_params()
            };
            let mut rig = LatencyRig::new(&params, 7);
            let report = rig.measure_relu(form, 1);
            print!(" {:>11.1}ms", report.relu_latency.as_secs_f64() * 1e3);
        }
        let proj = project_seconds(
            &relu_op_counts(&paper, &CompositePaf::from_form(form)),
            per_modmul,
        );
        println!(" {:>13.2}s {:>8.2}x", proj, baseline_proj / proj);
    }
    println!("\npaper Tab. 4 speedups over the 27-degree PAF: 6.79x – 14.9x;");
    println!("the ordering (f1∘g2 fastest … α=10 slowest) must hold at every N.");
}
