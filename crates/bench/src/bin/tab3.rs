//! Regenerates paper Tab. 3: the full ablation of
//! {CT, PA, AT} × {DS, SS} on ResNet-18 (synth-imagenet) and VGG-19
//! (synth-cifar), for ReLU-only and all-operator replacement.
//!
//! At the default `test` scale only two PAF forms run; set
//! `SMARTPAF_SCALE=harness` (or `paper`) and `SMARTPAF_FORMS=all` for
//! the full grid.

use smartpaf::{TechniqueSet, Workbench};
use smartpaf_bench::{pct, resnet_workbench, scale_from_env, vgg_workbench, Scale};
use smartpaf_polyfit::PafForm;

fn rows() -> Vec<(&'static str, TechniqueSet)> {
    let base = TechniqueSet::baseline_ds();
    vec![
        (
            "baseline + DS w/o fine tune",
            TechniqueSet {
                fine_tune: false,
                ..base
            },
        ),
        (
            "baseline + CT + DS w/o fine tune",
            TechniqueSet {
                ct: true,
                fine_tune: false,
                ..base
            },
        ),
        ("baseline + DS", base),
        ("baseline + SS (prior work)", TechniqueSet::baseline_ss()),
        ("baseline + AT + DS", TechniqueSet { at: true, ..base }),
        ("baseline + PA + DS", TechniqueSet { pa: true, ..base }),
        ("baseline + CT + PA + AT + DS", TechniqueSet::smartpaf_ds()),
        ("SMART-PAF: CT + PA + AT + SS", TechniqueSet::smartpaf()),
    ]
}

fn forms() -> Vec<PafForm> {
    if std::env::var("SMARTPAF_FORMS").as_deref() == Ok("all") {
        PafForm::smartpaf_set().to_vec()
    } else {
        vec![PafForm::F1SqG1Sq, PafForm::F1G2]
    }
}

fn block(title: &str, wb: &mut Workbench, relu_only: bool, forms: &[PafForm]) {
    println!(
        "--- {title} (original accuracy {}) ---",
        pct(wb.original_acc())
    );
    print!("{:<36}", "technique setup");
    for f in forms {
        print!(" {:>12}", f.paper_name());
    }
    println!();
    for (name, t) in rows() {
        print!("{name:<36}");
        for &form in forms {
            let r = wb.run_cell(t, form, relu_only);
            let shown = if t.fine_tune {
                r.final_acc
            } else {
                r.post_replacement_acc
            };
            print!(" {:>12}", pct(shown));
        }
        println!();
    }
    println!();
}

fn main() {
    let scale = scale_from_env();
    let forms = forms();
    println!("Tab. 3 — ablation study ({scale:?} scale)\n");

    let mut resnet = resnet_workbench(scale, 3);
    block(
        "Replace ReLU only: ResNet-18 / synth-imagenet",
        &mut resnet,
        true,
        &forms,
    );
    block(
        "Replace all non-polynomial: ResNet-18 / synth-imagenet",
        &mut resnet,
        false,
        &forms,
    );

    if scale != Scale::Test || std::env::var("SMARTPAF_FORMS").as_deref() == Ok("all") {
        let mut vgg = vgg_workbench(scale, 4);
        block(
            "Replace all non-polynomial: VGG-19 / synth-cifar",
            &mut vgg,
            false,
            &forms,
        );
    } else {
        println!("(VGG-19 block skipped at test scale; set SMARTPAF_SCALE=harness)");
    }

    println!("paper shape to check: DS beats SS for the baseline; CT+PA+AT+DS is");
    println!("the best trainable row; the SS conversion costs a little accuracy but");
    println!("stays far above the prior-work baseline+SS row.");
}
