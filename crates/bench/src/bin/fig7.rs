//! Regenerates paper Fig. 7: post-replacement validation accuracy
//! WITHOUT fine-tuning, Coefficient Tuning (CT) vs baseline.
//! Top block: replace ReLU only. Bottom block: replace ReLU and
//! MaxPooling.

use smartpaf::TechniqueSet;
use smartpaf_bench::{pct, resnet_workbench, scale_from_env};
use smartpaf_polyfit::PafForm;

fn main() {
    let scale = scale_from_env();
    println!("Fig. 7 — CT vs baseline, post-replacement accuracy w/o fine-tune");
    println!("model: ResNet-18 on synth-imagenet ({scale:?} scale)\n");
    let mut wb = resnet_workbench(scale, 1);
    println!("original accuracy: {}\n", pct(wb.original_acc()));

    let no_ft = TechniqueSet {
        fine_tune: false,
        ..TechniqueSet::baseline_ds()
    };
    let ct_no_ft = TechniqueSet { ct: true, ..no_ft };

    for (title, relu_only) in [
        ("top: replace ReLU only", true),
        ("bottom: replace all ReLU and MaxPooling", false),
    ] {
        println!("--- {title} ---");
        println!(
            "{:<14} {:>14} {:>14} {:>9}",
            "PAF", "baseline", "with CT", "gain"
        );
        for form in PafForm::smartpaf_set() {
            let base = wb.run_cell(no_ft, form, relu_only);
            let ct = wb.run_cell(ct_no_ft, form, relu_only);
            let gain = if base.post_replacement_acc > 0.0 {
                ct.post_replacement_acc / base.post_replacement_acc
            } else {
                f32::INFINITY
            };
            println!(
                "{:<14} {:>14} {:>14} {:>8.2}x",
                form.paper_name(),
                pct(base.post_replacement_acc),
                pct(ct.post_replacement_acc),
                gain
            );
        }
        println!();
    }
    println!("paper shape: CT gains 1.05–3.32x, larger for lower-degree PAFs;");
    println!("replacing MaxPooling as well costs extra accuracy in both columns.");
}
