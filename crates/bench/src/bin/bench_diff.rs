//! Quantitative bench-regression gate.
//!
//! Diffs a freshly emitted criterion-shim JSON report against a
//! committed reference with a *normalized* tolerance band: per-id
//! ratios `current/reference` are divided by the run's median ratio,
//! so a uniformly slower or faster host (CI runner vs the machine the
//! reference was recorded on) cancels out and only *relative*
//! regressions — one benchmark drifting away from its peers, like the
//! PR-1 `horner_odd_deg7` incident — trip the gate.
//!
//! Usage:
//!
//! ```text
//! bench_diff <current.json> <reference.json> [tolerance]
//! ```
//!
//! `tolerance` (default 3.0, override with the third argument or the
//! `BENCH_DIFF_TOL` environment variable) is the maximum allowed
//! normalized ratio. Comparisons use each record's `min_ns` — the
//! best-of-samples statistic, which is far less sensitive to scheduler
//! hiccups than the mean on shared CI runners. A current report in
//! `--test` mode (all timings zero) downgrades to a structural check:
//! every reference id must still exist. Exit code 1 on any regression
//! or missing id.

use std::process::ExitCode;

/// One parsed benchmark record.
#[derive(Debug, Clone, PartialEq)]
struct Record {
    id: String,
    best_ns: u128,
}

/// Extracts the string value following `"key": "` on a line.
fn string_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    // Ids are shim-escaped; unescape the two sequences we emit.
    let end = {
        let bytes = rest.as_bytes();
        let mut i = 0;
        loop {
            match bytes.get(i)? {
                b'\\' => i += 2,
                b'"' => break i,
                _ => i += 1,
            }
        }
    };
    Some(rest[..end].replace("\\\"", "\"").replace("\\\\", "\\"))
}

/// Extracts the integer value following `"key": ` on a line.
fn int_field(line: &str, key: &str) -> Option<u128> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Parses a criterion-shim JSON report into (mode, records).
fn parse_report(body: &str) -> (String, Vec<Record>) {
    let mode = body
        .lines()
        .find_map(|l| string_field(l, "mode"))
        .unwrap_or_else(|| "bench".to_string());
    let records = body
        .lines()
        .filter(|l| l.contains("\"id\": "))
        .filter_map(|l| {
            Some(Record {
                id: string_field(l, "id")?,
                best_ns: int_field(l, "min_ns")?,
            })
        })
        .collect();
    (mode, records)
}

fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    values[values.len() / 2]
}

fn run(current_body: &str, reference_body: &str, tolerance: f64) -> Result<String, String> {
    let (cur_mode, current) = parse_report(current_body);
    let (ref_mode, reference) = parse_report(reference_body);
    if ref_mode != "bench" {
        return Err("reference report must be a timed run (mode \"bench\")".into());
    }
    if reference.is_empty() {
        return Err("reference report has no benchmarks".into());
    }

    let missing: Vec<&str> = reference
        .iter()
        .filter(|r| !current.iter().any(|c| c.id == r.id))
        .map(|r| r.id.as_str())
        .collect();
    if !missing.is_empty() {
        return Err(format!(
            "{} reference benchmark(s) missing from the current report: {}",
            missing.len(),
            missing.join(", ")
        ));
    }

    if cur_mode == "test" {
        return Ok(format!(
            "structural check only (current report is --test mode): all {} reference ids present",
            reference.len()
        ));
    }

    let mut pairs: Vec<(&str, f64)> = Vec::new();
    for r in &reference {
        if r.best_ns == 0 {
            continue;
        }
        let cur = current
            .iter()
            .find(|c| c.id == r.id)
            .expect("checked above");
        pairs.push((&r.id, cur.best_ns as f64 / r.best_ns as f64));
    }
    if pairs.is_empty() {
        return Err("no timed benchmarks to compare".into());
    }
    let mut ratios: Vec<f64> = pairs.iter().map(|(_, r)| *r).collect();
    let m = median(&mut ratios);
    if m <= 0.0 {
        return Err("degenerate median ratio".into());
    }

    let mut report = format!(
        "compared {} benchmarks; host speed factor (median ratio) {m:.3}, tolerance {tolerance}x\n",
        pairs.len()
    );
    let mut regressions = Vec::new();
    for (id, ratio) in &pairs {
        let normalized = ratio / m;
        let flag = if normalized > tolerance {
            regressions.push(format!("{id}: {normalized:.2}x over the fleet median"));
            "  REGRESSION"
        } else {
            ""
        };
        report.push_str(&format!(
            "  {id:<44} ratio {ratio:>7.3}  normalized {normalized:>6.3}{flag}\n"
        ));
    }
    if regressions.is_empty() {
        Ok(report)
    } else {
        Err(format!(
            "{report}\nquantitative regressions:\n  {}",
            regressions.join("\n  ")
        ))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 {
        eprintln!("usage: bench_diff <current.json> <reference.json> [tolerance]");
        return ExitCode::FAILURE;
    }
    // An explicit tolerance (argument or env var) that fails to parse
    // must abort, not silently fall back — a typo'd band would let
    // real regressions through a looser default gate.
    let tolerance = match args
        .get(3)
        .cloned()
        .or_else(|| std::env::var("BENCH_DIFF_TOL").ok())
    {
        Some(s) => match s.parse::<f64>() {
            Ok(t) if t > 0.0 => t,
            _ => {
                eprintln!("bench_diff: invalid tolerance {s:?} (need a positive number)");
                return ExitCode::FAILURE;
            }
        },
        None => 3.0,
    };
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let result = read(&args[1])
        .and_then(|cur| read(&args[2]).map(|re| (cur, re)))
        .and_then(|(cur, re)| run(&cur, &re, tolerance));
    match result {
        Ok(report) => {
            println!("bench_diff: OK\n{report}");
            ExitCode::SUCCESS
        }
        Err(report) => {
            eprintln!("bench_diff: FAILED\n{report}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(mode: &str, entries: &[(&str, u128)]) -> String {
        let mut body = format!("{{\n  \"mode\": \"{mode}\",\n  \"benchmarks\": [\n");
        for (i, (id, mean)) in entries.iter().enumerate() {
            let sep = if i + 1 == entries.len() { "" } else { "," };
            body.push_str(&format!(
                "    {{\"id\": \"{id}\", \"samples\": 3, \"min_ns\": {mean}, \"mean_ns\": {mean}, \"max_ns\": {mean}}}{sep}\n"
            ));
        }
        body.push_str("  ]\n}\n");
        body
    }

    #[test]
    fn parses_shim_output_with_and_without_meta() {
        let body = "{\n  \"mode\": \"bench\",\n  \"benchmarks\": [\n    {\"id\": \"a/b\", \"samples\": 2, \"min_ns\": 5, \"mean_ns\": 7, \"max_ns\": 9, \"meta\": {\"threads\": \"4\"}}\n  ]\n}\n";
        let (mode, recs) = parse_report(body);
        assert_eq!(mode, "bench");
        assert_eq!(
            recs,
            vec![Record {
                id: "a/b".into(),
                best_ns: 5
            }]
        );
    }

    #[test]
    fn uniform_slowdown_passes() {
        // 2.5× slower across the board: a slower host, not a regression.
        let reference = report("bench", &[("a", 100), ("b", 200), ("c", 400)]);
        let current = report("bench", &[("a", 250), ("b", 500), ("c", 1000)]);
        assert!(run(&current, &reference, 3.0).is_ok());
    }

    #[test]
    fn single_benchmark_regression_fails() {
        // One benchmark 10× over its peers' drift.
        let reference = report("bench", &[("a", 100), ("b", 200), ("c", 400)]);
        let current = report("bench", &[("a", 100), ("b", 200), ("c", 4000)]);
        let err = run(&current, &reference, 3.0).unwrap_err();
        assert!(err.contains("REGRESSION"), "{err}");
        assert!(err.contains('c'), "{err}");
    }

    #[test]
    fn missing_reference_id_fails() {
        let reference = report("bench", &[("a", 100), ("gone", 200)]);
        let current = report("bench", &[("a", 100)]);
        let err = run(&current, &reference, 3.0).unwrap_err();
        assert!(err.contains("missing"), "{err}");
        assert!(err.contains("gone"), "{err}");
    }

    #[test]
    fn test_mode_downgrades_to_structural_check() {
        let reference = report("bench", &[("a", 100), ("b", 200)]);
        let current = report("test", &[("a", 0), ("b", 0)]);
        let ok = run(&current, &reference, 3.0).unwrap();
        assert!(ok.contains("structural"), "{ok}");
        // But a missing id still fails even in test mode.
        let partial = report("test", &[("a", 0)]);
        assert!(run(&partial, &reference, 3.0).is_err());
    }

    #[test]
    fn reference_must_be_timed() {
        let reference = report("test", &[("a", 0)]);
        let current = report("bench", &[("a", 100)]);
        assert!(run(&current, &reference, 3.0).is_err());
    }
}
