//! Extension experiment (paper §7): DeepReDuce-style ReLU culling
//! combined with SMART-PAF replacement — accuracy vs work saved as the
//! cull count k grows.
//!
//! Run with: `cargo run -p smartpaf-bench --release --bin deepreduce_combo`

use smartpaf::{deepreduce_combo, pretrain};
use smartpaf_bench::{pretrain_epochs, scale_from_env, train_config, width};
use smartpaf_datasets::{SynthDataset, SynthSpec};
use smartpaf_nn::mini_cnn;
use smartpaf_polyfit::{CompositePaf, PafForm};
use smartpaf_tensor::Rng64;

fn main() {
    let scale = scale_from_env();
    let seed = 41u64;
    let spec = SynthSpec::tiny(seed);
    let dataset = SynthDataset::new(spec);
    let config = train_config(scale, seed);
    let paf = CompositePaf::from_form(PafForm::Alpha7);

    println!("DeepReDuce × SMART-PAF combination (MiniCNN, synthetic task, scale {scale:?})");
    println!(
        "{:>3} {:>12} {:>12} {:>12} {:>12}  culled slots",
        "k", "exact acc", "culled acc", "combo acc", "work saved"
    );
    for k in 0..=4usize {
        // Fresh pretrained model per k (culling mutates the model).
        let mut rng = Rng64::new(seed);
        let mut model = mini_cnn(spec.classes, width(scale), &mut rng);
        pretrain(&mut model, &dataset, &config, pretrain_epochs(scale));
        let r = deepreduce_combo(&mut model, &dataset, &config, &paf, k);
        println!(
            "{:>3} {:>11.1}% {:>11.1}% {:>11.1}% {:>11.1}%  {:?}",
            k,
            r.exact_acc * 100.0,
            r.culled_acc * 100.0,
            r.combo_acc * 100.0,
            r.work_saved * 100.0,
            r.culled_positions
        );
    }
    println!("\nReading: culled slots cost zero FHE depth; accuracy should degrade");
    println!("gracefully with k while per-inference PAF work drops linearly —");
    println!("the orthogonal combination the paper's related-work section proposes.");
}
