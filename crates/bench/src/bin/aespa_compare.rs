//! §7 comparison with AESPA's claim: a depth-2 quadratic activation
//! (`(x + x²)/2`, expressible as a degree-1 composite PAF) preserves
//! accuracy on easy tasks but degrades on harder ones, where SMART-PAF's
//! low-degree sign composites hold up — the paper's argument for why
//! quadratic-only replacement does not generalise to ImageNet-scale.
//!
//! Run with: `cargo run -p smartpaf-bench --release --bin aespa_compare`

use smartpaf::{evaluate, pretrain, replace_all, train_epoch, TrainConfig};
use smartpaf_bench::{pretrain_epochs, scale_from_env, train_config, width};
use smartpaf_datasets::{SynthDataset, SynthSpec};
use smartpaf_nn::{mini_cnn, Adam};
use smartpaf_polyfit::{quadratic_paf, CompositePaf, PafForm};
use smartpaf_tensor::Rng64;

fn run_variant(
    label: &str,
    paf: Option<&CompositePaf>,
    spec: SynthSpec,
    config: &TrainConfig,
    pre_epochs: usize,
    ft_epochs: usize,
    w: f32,
) -> (f32, f32, f32) {
    let dataset = SynthDataset::new(spec);
    let mut rng = Rng64::new(config.seed);
    let mut model = mini_cnn(spec.classes, w, &mut rng);
    pretrain(&mut model, &dataset, config, pre_epochs);
    let exact = evaluate(&mut model, &dataset, config);
    let Some(paf) = paf else {
        return (exact, exact, exact);
    };
    replace_all(&mut model, paf, false);
    let dropped = evaluate(&mut model, &dataset, config);
    let mut opt = Adam::new(config.optim);
    for e in 0..ft_epochs {
        let _ = train_epoch(&mut model, &dataset, &mut opt, config, e);
    }
    let tuned = evaluate(&mut model, &dataset, config);
    let _ = label;
    (exact, dropped, tuned)
}

fn main() {
    let scale = scale_from_env();
    let seed = 47u64;
    let config = train_config(scale, seed);
    let w = width(scale);
    let pre = pretrain_epochs(scale);
    let ft = config.epochs_per_group * 2;

    let quad = quadratic_paf();
    let f1g2 = CompositePaf::from_form(PafForm::F1G2);
    let alpha7 = CompositePaf::from_form(PafForm::Alpha7);
    let variants: [(&str, Option<&CompositePaf>); 3] = [
        ("quadratic (AESPA-style)", Some(&quad)),
        ("f1∘g2 (depth 5)", Some(&f1g2)),
        ("α=7 (depth 6)", Some(&alpha7)),
    ];

    println!("AESPA quadratic vs low-degree sign composites (MiniCNN, scale {scale:?})");
    for (task, spec) in [
        ("easy (cifar-like)", SynthSpec::tiny(seed)),
        ("hard (imagenet-like)", {
            let mut s = SynthSpec::tiny(seed);
            s.noise_std = 0.45;
            s.jitter = 0.6;
            s.distractor = 0.5;
            s
        }),
    ] {
        println!("\n== task: {task} ==");
        println!(
            "{:<26} {:>11} {:>13} {:>13} {:>8}",
            "activation", "exact acc", "post-replace", "post-finetune", "drop"
        );
        for (label, paf) in variants {
            let (exact, dropped, tuned) = run_variant(label, paf, spec, &config, pre, ft, w);
            println!(
                "{:<26} {:>10.1}% {:>12.1}% {:>12.1}% {:>7.1}%",
                label,
                exact * 100.0,
                dropped * 100.0,
                tuned * 100.0,
                (exact - tuned) * 100.0
            );
        }
    }
    println!("\nReading: on the easy task every activation recovers; on the hard task");
    println!("the quadratic's drop should exceed the sign composites' — the paper's");
    println!("§7 caveat about AESPA (quadratic ≠ free lunch beyond TinyImageNet).");
}
