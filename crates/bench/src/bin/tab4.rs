//! Regenerates paper Tab. 4: SMART-PAF vs the 27-degree minimax PAF
//! (Lee et al.) — validation accuracy, ReLU latency under CKKS, and
//! speedup.

use smartpaf::{LatencyRig, TechniqueSet};
use smartpaf_bench::{pct, scale_from_env, vgg_workbench};
use smartpaf_ckks::CkksParams;
use smartpaf_polyfit::PafForm;

fn main() {
    let scale = scale_from_env();
    println!("Tab. 4 — SMART-PAF vs 27-degree comparator ({scale:?} scale)\n");

    // Latency column: CKKS PAF-ReLU wall-clock per form.
    println!("building CKKS latency rig (N = 4096, depth 12)...");
    let mut rig = LatencyRig::new(&CkksParams::default_params(), 5);
    let comparator = rig.measure_relu(PafForm::MinimaxDeg27, 5);
    let comparator_ms = comparator.relu_latency.as_secs_f64() * 1e3;

    // Accuracy column: VGG-19 on synth-cifar with full SMART-PAF.
    let mut wb = vgg_workbench(scale, 6);
    println!(
        "VGG-19 workbench ready (original accuracy {})\n",
        pct(wb.original_acc())
    );

    println!(
        "{:<20} {:>12} {:>16} {:>10}",
        "PAF format", "val acc", "ReLU latency", "speedup"
    );
    for form in [
        PafForm::F1G2,
        PafForm::F2G2,
        PafForm::F2G3,
        PafForm::Alpha7,
        PafForm::F1SqG1Sq,
    ] {
        let lat = rig.measure_relu(form, 5);
        let acc = wb.run_cell(TechniqueSet::smartpaf(), form, false);
        let ms = lat.relu_latency.as_secs_f64() * 1e3;
        println!(
            "{:<20} {:>12} {:>13.1} ms {:>9.2}x",
            form.paper_name(),
            pct(acc.final_acc),
            ms,
            comparator_ms / ms
        );
    }
    println!(
        "{:<20} {:>12} {:>13.1} ms {:>9.2}x",
        "α=10/27-deg (Lee)", "(baseline)", comparator_ms, 1.0
    );
    println!("\npaper shape: 6.8–14.9x speedups for the low-degree forms, with");
    println!("f1²∘g1² and α=7 keeping accuracy at or above the comparator's.");
}
