//! Regenerates paper Fig. 9: training curves of baseline vs SMART-PAF
//! with the 14-degree PAF (f1²∘g1²) on ResNet-18, with event markers
//! (replacements, SWA, AT phase swaps).

use smartpaf::{EventKind, TechniqueSet, TrainEvent};
use smartpaf_bench::{pct, resnet_workbench, scale_from_env};
use smartpaf_polyfit::PafForm;

fn print_curve(name: &str, events: &[TrainEvent]) {
    println!("--- {name} ---");
    println!("{:>6} {:>9}  marker", "epoch", "val acc");
    for e in events {
        let marker = match &e.kind {
            EventKind::Replacement(i) if *i == usize::MAX => "replace ALL".to_string(),
            EventKind::Replacement(i) => format!("replace slot {i}"),
            EventKind::Epoch => String::new(),
            EventKind::SwaApplied => "SWA".to_string(),
            EventKind::AtTrainPaf => "AT -> train PAF".to_string(),
            EventKind::AtTrainOther => "AT -> train weights".to_string(),
            EventKind::OverfitDetected => "overfit: boost regularisation".to_string(),
            EventKind::StepEnd => "step end (best model restored)".to_string(),
        };
        println!("{:>6} {:>9}  {marker}", e.epoch, pct(e.val_acc));
    }
    println!();
}

fn main() {
    let scale = scale_from_env();
    println!("Fig. 9 — training curves, baseline vs SMART-PAF (f1²∘g1²)\n");
    let mut wb = resnet_workbench(scale, 9);
    println!("original accuracy: {}\n", pct(wb.original_acc()));

    let baseline = wb.run_cell(TechniqueSet::baseline_ds(), PafForm::F1SqG1Sq, true);
    let smart = wb.run_cell(TechniqueSet::smartpaf_ds(), PafForm::F1SqG1Sq, true);

    print_curve(
        "baseline (direct replacement + joint training)",
        &baseline.events,
    );
    print_curve("SMART-PAF (CT + PA + AT + DS)", &smart.events);

    println!(
        "final: baseline {} vs SMART-PAF {}",
        pct(baseline.final_acc),
        pct(smart.final_acc)
    );
    println!("\npaper shape: baseline starts ~34% lower (no CT), then degrades");
    println!("as training fails to converge; SMART-PAF climbs back after each");
    println!("progressive replacement.");
}
