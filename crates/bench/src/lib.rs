//! Shared harness helpers for the table/figure regeneration binaries.
//!
//! Every binary honours the `SMARTPAF_SCALE` environment variable:
//!
//! * `test` (default) — minutes-scale runs exercising every code path
//!   with tiny models and few epochs;
//! * `harness` — the EXPERIMENTS.md configuration (tens of minutes);
//! * `paper` — paper-faithful epoch counts (E = 20; hours).

use smartpaf::{TrainConfig, Workbench};
use smartpaf_datasets::{SynthDataset, SynthSpec};
use smartpaf_nn::{resnet18, vgg19, Model};
use smartpaf_tensor::Rng64;

/// Which experiment scale to run at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny CI-friendly runs.
    Test,
    /// The EXPERIMENTS.md configuration.
    Harness,
    /// Paper-faithful epochs.
    Paper,
}

/// Reads `SMARTPAF_SCALE` (default `test`).
pub fn scale_from_env() -> Scale {
    match std::env::var("SMARTPAF_SCALE").as_deref() {
        Ok("paper") => Scale::Paper,
        Ok("harness") => Scale::Harness,
        _ => Scale::Test,
    }
}

/// Training config for a scale.
pub fn train_config(scale: Scale, seed: u64) -> TrainConfig {
    match scale {
        // More data than the unit-test config: the width-scaled models
        // must clear chance accuracy for the figures to be meaningful.
        Scale::Test => TrainConfig {
            batches_per_epoch: 8,
            val_batches: 12,
            ..TrainConfig::test_scale(seed)
        },
        Scale::Harness => TrainConfig::harness_scale(seed),
        Scale::Paper => TrainConfig::paper_scale(seed),
    }
}

/// Pretraining epochs for a scale.
pub fn pretrain_epochs(scale: Scale) -> usize {
    match scale {
        Scale::Test => 25,
        Scale::Harness => 25,
        Scale::Paper => 40,
    }
}

/// Model width multiplier for a scale.
pub fn width(scale: Scale) -> f32 {
    match scale {
        Scale::Test => 0.0625,
        Scale::Harness => 0.125,
        Scale::Paper => 1.0,
    }
}

/// The synthetic ImageNet substitute, class count reduced below paper
/// scale so the width-scaled models can learn it (documented in
/// EXPERIMENTS.md).
pub fn imagenet_like(scale: Scale, seed: u64) -> SynthSpec {
    let mut spec = SynthSpec::imagenet_like(seed);
    spec.classes = match scale {
        Scale::Test => 8,
        Scale::Harness => 20,
        Scale::Paper => 100,
    };
    if scale == Scale::Test {
        // Soften the task so the width-0.0625 models clear chance
        // while keeping it harder than the CIFAR-like task.
        spec.jitter = 0.5;
        spec.distractor = 0.2;
        spec.noise_std = 0.35;
    }
    spec
}

/// The synthetic CIFAR substitute.
pub fn cifar_like(scale: Scale, seed: u64) -> SynthSpec {
    let mut spec = SynthSpec::cifar_like(seed);
    if scale == Scale::Test {
        spec.classes = 8;
    }
    spec
}

/// ResNet-18 workbench on the ImageNet-like task (the paper's primary
/// evaluation target).
pub fn resnet_workbench(scale: Scale, seed: u64) -> Workbench {
    let spec = imagenet_like(scale, seed);
    let dataset = SynthDataset::new(spec);
    let mut rng = Rng64::new(seed);
    let model: Model = resnet18(spec.classes, width(scale), &mut rng);
    Workbench::new(
        model,
        dataset,
        train_config(scale, seed),
        pretrain_epochs(scale),
    )
}

/// VGG-19 workbench on the CIFAR-like task.
pub fn vgg_workbench(scale: Scale, seed: u64) -> Workbench {
    let spec = cifar_like(scale, seed);
    let dataset = SynthDataset::new(spec);
    let mut rng = Rng64::new(seed);
    let model: Model = vgg19(spec.classes, width(scale), &mut rng);
    Workbench::new(
        model,
        dataset,
        train_config(scale, seed),
        pretrain_epochs(scale),
    )
}

/// Prints a percentage cell.
pub fn pct(v: f32) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_test() {
        std::env::remove_var("SMARTPAF_SCALE");
        assert_eq!(scale_from_env(), Scale::Test);
    }

    #[test]
    fn scales_monotone() {
        assert!(pretrain_epochs(Scale::Paper) > pretrain_epochs(Scale::Test));
        assert!(width(Scale::Paper) > width(Scale::Test));
        assert!(imagenet_like(Scale::Paper, 1).classes > imagenet_like(Scale::Test, 1).classes);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.694), "69.4%");
    }
}
