//! Pipeline construction: probing affine layer runs into diagonal
//! matrices and compiling an alternating affine/PAF stage list.

use crate::exec::RunError;
use crate::maxpool::pool_taps;
use smartpaf_ckks::DiagMatrix;
use smartpaf_nn::{Layer, Mode};
use smartpaf_polyfit::{CompositeEval, CompositePaf, PafForm, PafSlotKind};
use smartpaf_tensor::Tensor;
use std::sync::Arc;

/// One compiled stage of an encrypted inference pipeline.
#[derive(Clone)]
pub enum Stage {
    /// An affine map `x ↦ Mx + b` (conv / BN / pooling / linear runs,
    /// linearised by probing). Costs one level.
    Affine {
        /// The padded diagonal matrix.
        mat: DiagMatrix,
        /// Bias, padded to the pipeline dimension.
        bias: Vec<f64>,
    },
    /// A PAF-ReLU with Static Scaling:
    /// `y = post_scale · paf_relu(pre_scale · x)`.
    PafRelu {
        /// The composite sign approximation.
        paf: CompositePaf,
        /// Input scale (normally `1/s`; 1.0 after folding).
        pre_scale: f64,
        /// Output scale (normally `s`; 1.0 after folding).
        post_scale: f64,
    },
    /// A PAF max pool: window taps (pre-scaled by `1/s` at compile
    /// time, so tap selection costs one level total) followed by the
    /// nested PAF-max fold of §5.4.3, then `post_scale`.
    PafMax {
        /// One selection matrix per window offset, already scaled.
        taps: Vec<DiagMatrix>,
        /// The composite sign approximation.
        paf: CompositePaf,
        /// Output scale (normally `s`; 1.0 after folding).
        post_scale: f64,
    },
}

impl Stage {
    /// Multiplicative levels this stage consumes.
    pub fn levels(&self) -> usize {
        match self {
            Stage::Affine { .. } => 1,
            Stage::PafRelu {
                paf,
                pre_scale,
                post_scale,
            } => {
                let mut l = paf.mult_depth() + 1; // sign + ReLU product
                if *pre_scale != 1.0 {
                    l += 1;
                }
                if *post_scale != 1.0 {
                    l += 1;
                }
                l
            }
            Stage::PafMax {
                taps,
                paf,
                post_scale,
            } => {
                // Pairwise tree fold: ceil(log2(taps)) rounds deep.
                let rounds = taps.len().next_power_of_two().trailing_zeros() as usize;
                let mut l = 1 + rounds * (paf.mult_depth() + 1);
                if *post_scale != 1.0 {
                    l += 1;
                }
                l
            }
        }
    }

    /// Short label for logs.
    pub fn label(&self) -> String {
        match self {
            Stage::Affine { mat, .. } => {
                format!(
                    "affine[{}x{} diag={}]",
                    mat.out_dim(),
                    mat.in_dim(),
                    mat.num_diagonals()
                )
            }
            Stage::PafRelu { paf, .. } => format!("paf-relu[depth={}]", paf.mult_depth()),
            Stage::PafMax { taps, paf, .. } => {
                format!("paf-max[taps={} depth={}]", taps.len(), paf.mult_depth())
            }
        }
    }
}

enum RawStage {
    Affine {
        rows: Vec<Vec<f64>>,
        bias: Vec<f64>,
    },
    Relu {
        paf: CompositePaf,
        scale: f64,
    },
    Max {
        shape: Vec<usize>,
        k: usize,
        stride: usize,
        paf: CompositePaf,
        scale: f64,
    },
}

enum Spec {
    Affine(Box<dyn Layer>),
    Relu {
        paf: CompositePaf,
        scale: f64,
    },
    Max {
        k: usize,
        stride: usize,
        paf: CompositePaf,
        scale: f64,
    },
}

/// Builds an encrypted inference pipeline from `smartpaf-nn` layers and
/// PAF activation specs.
///
/// Layers passed to [`PipelineBuilder::affine`] must be affine in eval
/// mode (convolution, batch norm, linear, average pooling, flatten —
/// anything without data-dependent branching). Consecutive affine
/// layers are fused into one matrix by exact probing.
pub struct PipelineBuilder {
    input_shape: Vec<usize>,
    specs: Vec<Spec>,
}

impl PipelineBuilder {
    /// Starts a pipeline for inputs of the given (batch-free) shape,
    /// e.g. `[3, 8, 8]` for a CHW image or `[16]` for a flat vector.
    ///
    /// # Panics
    ///
    /// Panics on an empty or zero-sized shape.
    pub fn new(input_shape: &[usize]) -> Self {
        assert!(
            !input_shape.is_empty() && input_shape.iter().all(|&d| d > 0),
            "invalid input shape {input_shape:?}"
        );
        PipelineBuilder {
            input_shape: input_shape.to_vec(),
            specs: Vec::new(),
        }
    }

    /// Appends an affine layer (builder style).
    pub fn affine(mut self, layer: impl Layer + 'static) -> Self {
        self.specs.push(Spec::Affine(Box::new(layer)));
        self
    }

    /// Appends an already-boxed affine layer — the dynamic twin of
    /// [`PipelineBuilder::affine`], for builders that assemble stage
    /// lists at run time (the smartpaf Session API).
    pub fn affine_boxed(mut self, layer: Box<dyn Layer>) -> Self {
        self.specs.push(Spec::Affine(layer));
        self
    }

    /// Appends a PAF-ReLU with static scale `s` (inputs are divided by
    /// `s` before the PAF and multiplied back after — paper §4.5).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn paf_relu(mut self, paf: &CompositePaf, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        self.specs.push(Spec::Relu {
            paf: paf.clone(),
            scale,
        });
        self
    }

    /// Appends a PAF max pool (`k×k`, stride `stride`) with static
    /// scale `s`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn paf_maxpool(mut self, k: usize, stride: usize, paf: &CompositePaf, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        self.specs.push(Spec::Max {
            k,
            stride,
            paf: paf.clone(),
            scale,
        });
        self
    }

    /// Probes and compiles the pipeline.
    ///
    /// # Panics
    ///
    /// Panics if a max-pool window does not tile its input, or the
    /// builder is empty ([`PipelineBuilder::try_compile`] returns the
    /// same conditions as typed [`RunError`]s instead).
    pub fn compile(self) -> HePipeline {
        self.try_compile().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Probes and compiles the pipeline, reporting structural problems
    /// (empty builder, untileable pool window, non-CHW pool input) as
    /// typed [`RunError`]s.
    pub fn try_compile(self) -> Result<HePipeline, RunError> {
        if self.specs.is_empty() {
            return Err(RunError::EmptyPipeline);
        }
        let input_dim: usize = self.input_shape.iter().product();
        let mut shape = self.input_shape.clone();
        let mut raw: Vec<RawStage> = Vec::new();
        let mut pending: Vec<Box<dyn Layer>> = Vec::new();

        let flush =
            |pending: &mut Vec<Box<dyn Layer>>, shape: &mut Vec<usize>, raw: &mut Vec<RawStage>| {
                if pending.is_empty() {
                    return;
                }
                let (rows, bias, out_shape) = probe_affine(pending, shape);
                *shape = out_shape;
                raw.push(RawStage::Affine { rows, bias });
                pending.clear();
            };

        for spec in self.specs {
            match spec {
                Spec::Affine(layer) => pending.push(layer),
                Spec::Relu { paf, scale } => {
                    flush(&mut pending, &mut shape, &mut raw);
                    raw.push(RawStage::Relu { paf, scale });
                }
                Spec::Max {
                    k,
                    stride,
                    paf,
                    scale,
                } => {
                    flush(&mut pending, &mut shape, &mut raw);
                    if shape.len() != 3 {
                        return Err(RunError::NotChw { dims: shape });
                    }
                    let (h, w) = (shape[1], shape[2]);
                    // k == 0 / stride == 0 are degenerate specs that
                    // would divide by zero below; fold them into the
                    // same typed error as an untileable window.
                    if k == 0
                        || stride == 0
                        || h < k
                        || w < k
                        || !(h - k).is_multiple_of(stride)
                        || !(w - k).is_multiple_of(stride)
                    {
                        return Err(RunError::PoolUntileable { h, w, k, stride });
                    }
                    let in_shape = shape.clone();
                    let ho = (h - k) / stride + 1;
                    let wo = (w - k) / stride + 1;
                    shape = vec![shape[0], ho, wo];
                    raw.push(RawStage::Max {
                        shape: in_shape,
                        k,
                        stride,
                        paf,
                        scale,
                    });
                }
            }
        }
        flush(&mut pending, &mut shape, &mut raw);
        let output_dim: usize = shape.iter().product();

        // Global padded dimension: every stage shares one slot layout.
        let mut dim = input_dim.max(output_dim);
        for r in &raw {
            if let RawStage::Affine { rows, .. } = r {
                dim = dim.max(rows.len()).max(rows[0].len());
            }
            if let RawStage::Max { shape, .. } = r {
                dim = dim.max(shape.iter().product());
            }
        }
        let dim = dim.next_power_of_two();

        let stages: Vec<Stage> = raw
            .into_iter()
            .map(|r| match r {
                RawStage::Affine { rows, bias } => {
                    let mat = DiagMatrix::from_rows_with_dim(&rows, dim);
                    let mut b = bias;
                    b.resize(dim, 0.0);
                    Stage::Affine { mat, bias: b }
                }
                RawStage::Relu { paf, scale } => Stage::PafRelu {
                    paf,
                    pre_scale: 1.0 / scale,
                    post_scale: scale,
                },
                RawStage::Max {
                    shape,
                    k,
                    stride,
                    paf,
                    scale,
                } => {
                    let (taps, _) = pool_taps(&shape, k, stride, dim);
                    let taps = taps.into_iter().map(|t| t.scaled(1.0 / scale)).collect();
                    Stage::PafMax {
                        taps,
                        paf,
                        post_scale: scale,
                    }
                }
            })
            .collect();

        let prepared = prepare_stage_engines(&stages);
        Ok(HePipeline {
            stages,
            prepared,
            dim,
            input_dim,
            output_dim,
        })
    }
}

/// One prepared plaintext evaluation engine per PAF stage (`None` for
/// affine stages), built once at compile time so `eval_plain` pays no
/// per-call preparation.
///
/// Stages sharing the same composite share one `Arc`'d engine: the
/// packed `OddPowerSchedule`s inside a [`CompositeEval`] are prepared
/// once per *distinct* form, not once per slot — the cost that matters
/// when a planner swaps form vectors thousands of times.
fn prepare_stage_engines(stages: &[Stage]) -> Vec<Option<Arc<CompositeEval>>> {
    let mut cache: Vec<(&CompositePaf, Arc<CompositeEval>)> = Vec::new();
    stages
        .iter()
        .map(|s| match s {
            Stage::Affine { .. } => None,
            Stage::PafRelu { paf, .. } | Stage::PafMax { paf, .. } => {
                if let Some((_, eng)) = cache.iter().find(|(p, _)| *p == paf) {
                    return Some(Arc::clone(eng));
                }
                let eng = Arc::new(paf.prepare());
                cache.push((paf, Arc::clone(&eng)));
                Some(eng)
            }
        })
        .collect()
}

/// Linearises a run of affine layers by an exact batched probe:
/// row 0 of the batch is the zero input (giving the bias), row `i+1`
/// is the `i`-th unit vector (giving column `i`).
fn probe_affine(
    layers: &mut [Box<dyn Layer>],
    in_shape: &[usize],
) -> (Vec<Vec<f64>>, Vec<f64>, Vec<usize>) {
    let d_in: usize = in_shape.iter().product();
    let mut batch_dims = vec![d_in + 1];
    batch_dims.extend_from_slice(in_shape);
    let mut x = Tensor::zeros(&batch_dims);
    for i in 0..d_in {
        x.data_mut()[(i + 1) * d_in + i] = 1.0;
    }
    let mut acc = x;
    for layer in layers.iter_mut() {
        acc = layer.forward(&acc, Mode::Eval);
    }
    let out_shape = acc.dims()[1..].to_vec();
    let d_out: usize = out_shape.iter().product();
    let data = acc.data();
    let bias: Vec<f64> = data[..d_out].iter().map(|&v| v as f64).collect();
    let mut rows = vec![vec![0.0f64; d_in]; d_out];
    for i in 0..d_in {
        let base = (i + 1) * d_out;
        for (o, row) in rows.iter_mut().enumerate() {
            row[i] = data[base + o] as f64 - bias[o];
        }
    }
    (rows, bias, out_shape)
}

/// A compiled encrypted inference pipeline (see the crate docs).
pub struct HePipeline {
    pub(crate) stages: Vec<Stage>,
    /// Prepared plaintext engines, parallel to `stages` (shared
    /// between stages that use the same composite).
    prepared: Vec<Option<Arc<CompositeEval>>>,
    pub(crate) dim: usize,
    input_dim: usize,
    output_dim: usize,
}

impl HePipeline {
    /// The shared padded slot dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Logical input length.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Logical output length.
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// The compiled stages.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Total multiplicative levels one inference consumes without
    /// bootstrapping.
    pub fn total_levels(&self) -> usize {
        self.stages.iter().map(Stage::levels).sum()
    }

    /// The prepared plaintext engines, parallel to the stage list
    /// (`None` for affine stages).
    pub(crate) fn prepared_engines(&self) -> &[Option<Arc<CompositeEval>>] {
        &self.prepared
    }

    /// Zero-pads a logical input to the pipeline dimension.
    ///
    /// # Panics
    ///
    /// Panics if `x` is longer than [`HePipeline::input_dim`].
    pub fn pad_input(&self, x: &[f64]) -> Vec<f64> {
        self.try_pad_input(x).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Zero-pads a logical input, reporting an over-long input as a
    /// typed [`RunError`].
    pub fn try_pad_input(&self, x: &[f64]) -> Result<Vec<f64>, RunError> {
        if x.len() > self.input_dim {
            return Err(RunError::InputTooLong {
                len: x.len(),
                max: self.input_dim,
            });
        }
        let mut v = x.to_vec();
        v.resize(self.dim, 0.0);
        Ok(v)
    }

    /// Exact plaintext reference of the compiled pipeline (same
    /// arithmetic as the encrypted path, PAF approximation included) —
    /// a thin wrapper over the shared interpreter with
    /// [`PlainBackend`](crate::PlainBackend).
    ///
    /// # Panics
    ///
    /// Panics if `x` is longer than the input dimension.
    pub fn eval_plain(&self, x: &[f64]) -> Vec<f64> {
        let (mut out, _) = self
            .run(&mut crate::backends::PlainBackend, self.pad_input(x))
            .expect("the plain backend has no failure modes");
        out.truncate(self.output_dim);
        out
    }

    /// Number of PAF stages (ReLU + MaxPool) in the compiled pipeline.
    pub fn num_paf_stages(&self) -> usize {
        self.stages
            .iter()
            .filter(|s| !matches!(s, Stage::Affine { .. }))
            .count()
    }

    /// The composite installed in each PAF slot, in stage order — the
    /// per-slot twin of walking [`HePipeline::stages`] by hand. Forms
    /// are `None` for hand-built composites without a
    /// [`PafForm`] tag.
    pub fn paf_forms(&self) -> Vec<Option<PafForm>> {
        self.stages
            .iter()
            .filter_map(|s| match s {
                Stage::Affine { .. } => None,
                Stage::PafRelu { paf, .. } | Stage::PafMax { paf, .. } => Some(paf.form()),
            })
            .collect()
    }

    /// What each PAF slot computes, in stage order — the input to
    /// kind-aware candidate enumeration
    /// ([`CompositePaf::candidate_forms_per_slot`]).
    pub fn paf_slot_kinds(&self) -> Vec<PafSlotKind> {
        self.stages
            .iter()
            .filter_map(|s| match s {
                Stage::Affine { .. } => None,
                Stage::PafRelu { .. } => Some(PafSlotKind::Relu),
                Stage::PafMax { .. } => Some(PafSlotKind::MaxPool),
            })
            .collect()
    }

    /// Rebuilds this pipeline with every PAF stage's composite replaced
    /// by `paf`, keeping the probed affine matrices, scales, taps, and
    /// slot layout untouched and re-preparing the plaintext engines —
    /// the uniform (single-form) case of [`HePipeline::with_pafs`].
    ///
    /// Probing affine runs is the expensive part of
    /// [`PipelineBuilder::try_compile`]; this hook lets a planner probe
    /// once and then enumerate candidate PAF forms in microseconds (one
    /// engine preparation per swap), which is what makes trace-priced
    /// Pareto search over forms practical.
    pub fn with_paf(&self, paf: &CompositePaf) -> HePipeline {
        let uniform = vec![paf.clone(); self.num_paf_stages()];
        self.try_with_pafs(&uniform)
            .expect("uniform vector length matches by construction")
    }

    /// Rebuilds this pipeline with the `i`-th PAF stage's composite
    /// replaced by `pafs[i]` (stage order), keeping the probed affine
    /// matrices, scales, taps, and slot layout untouched. Slots that
    /// pick the same composite share one prepared evaluation engine.
    ///
    /// This is the per-slot generalisation of [`HePipeline::with_paf`]
    /// that lets a planner search *form vectors* — the paper's
    /// per-layer replacement tables assign a different form to every
    /// ReLU/maxpool slot.
    ///
    /// # Panics
    ///
    /// Panics when `pafs.len() != self.num_paf_stages()`
    /// ([`HePipeline::try_with_pafs`] reports the same condition as a
    /// typed [`RunError::FormCountMismatch`] instead).
    pub fn with_pafs(&self, pafs: &[CompositePaf]) -> HePipeline {
        self.try_with_pafs(pafs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Rebuilds this pipeline with per-slot composites, reporting a
    /// length mismatch between `pafs` and the pipeline's PAF slot
    /// count as a typed [`RunError::FormCountMismatch`].
    ///
    /// Engines for composites already installed in this pipeline are
    /// reused rather than re-prepared; a planner that evaluates many
    /// vectors over a small form set should prepare one engine per
    /// distinct form itself and use
    /// [`HePipeline::try_with_prepared_pafs`].
    pub fn try_with_pafs(&self, pafs: &[CompositePaf]) -> Result<HePipeline, RunError> {
        // Seed the engine cache with this pipeline's prepared engines:
        // slots keeping (or reusing) a composite already installed
        // here skip the re-preparation entirely.
        let mut cache: Vec<(&CompositePaf, Arc<CompositeEval>)> = self
            .stages
            .iter()
            .zip(&self.prepared)
            .filter_map(|(s, eng)| match (s, eng) {
                (Stage::PafRelu { paf, .. } | Stage::PafMax { paf, .. }, Some(e)) => {
                    Some((paf, Arc::clone(e)))
                }
                _ => None,
            })
            .collect();
        let pairs: Vec<(CompositePaf, Arc<CompositeEval>)> = pafs
            .iter()
            .map(|paf| {
                let eng = match cache.iter().find(|(p, _)| *p == paf) {
                    Some((_, eng)) => Arc::clone(eng),
                    None => {
                        let eng = Arc::new(paf.prepare());
                        cache.push((paf, Arc::clone(&eng)));
                        eng
                    }
                };
                (paf.clone(), eng)
            })
            .collect();
        self.try_with_prepared_pafs(&pairs)
    }

    /// Per-slot swap with caller-prepared engines: no schedule packing
    /// happens at all — each slot's engine is the supplied `Arc`.
    ///
    /// The engine paired with each composite **must** be that
    /// composite's own [`CompositePaf::prepare`] output; the pairing
    /// is the caller's contract (the smartpaf planner holds one
    /// prepared engine per distinct candidate form and reuses it
    /// across every vector of a search — one preparation per form per
    /// search, not per swap).
    pub fn try_with_prepared_pafs(
        &self,
        pafs: &[(CompositePaf, Arc<CompositeEval>)],
    ) -> Result<HePipeline, RunError> {
        let expected = self.num_paf_stages();
        if pafs.len() != expected {
            return Err(RunError::FormCountMismatch {
                expected,
                got: pafs.len(),
            });
        }
        let mut next = pafs.iter();
        let mut prepared: Vec<Option<Arc<CompositeEval>>> = Vec::with_capacity(self.stages.len());
        let stages: Vec<Stage> = self
            .stages
            .iter()
            .map(|s| match s {
                Stage::Affine { .. } => {
                    prepared.push(None);
                    s.clone()
                }
                Stage::PafRelu {
                    pre_scale,
                    post_scale,
                    ..
                } => {
                    let (paf, eng) = next.next().expect("one composite per PAF slot");
                    prepared.push(Some(Arc::clone(eng)));
                    Stage::PafRelu {
                        paf: paf.clone(),
                        pre_scale: *pre_scale,
                        post_scale: *post_scale,
                    }
                }
                Stage::PafMax {
                    taps, post_scale, ..
                } => {
                    let (paf, eng) = next.next().expect("one composite per PAF slot");
                    prepared.push(Some(Arc::clone(eng)));
                    Stage::PafMax {
                        taps: taps.clone(),
                        paf: paf.clone(),
                        post_scale: *post_scale,
                    }
                }
            })
            .collect();
        Ok(HePipeline {
            stages,
            prepared,
            dim: self.dim,
            input_dim: self.input_dim,
            output_dim: self.output_dim,
        })
    }

    /// How many independent inputs one ciphertext of `slots` slots can
    /// carry for this pipeline — the slot-packing capacity
    /// `K = slots / dim` (0 when the padded dimension does not divide
    /// the slot count). Both operands are powers of two, so a nonzero
    /// capacity is always a power of two and [`HePipeline::expand_lanes`]
    /// accepts any power-of-two lane count up to it.
    pub fn lane_capacity(&self, slots: usize) -> usize {
        if slots.is_multiple_of(self.dim) {
            slots / self.dim
        } else {
            0
        }
    }

    /// Rebuilds this pipeline at `lanes` slot lanes: every affine
    /// matrix and pool tap is replicated block-diagonally
    /// ([`DiagMatrix::block_diag`]), biases are tiled across lanes, and
    /// PAF stages — elementwise by construction — carry over untouched,
    /// sharing their prepared engines with the source pipeline.
    ///
    /// The expanded pipeline is an ordinary [`HePipeline`] at padded
    /// dimension `lanes · dim` whose plain evaluation applies the base
    /// pipeline independently (and bit-identically) to each
    /// length-`dim` lane of a lane-concatenated input. Its logical
    /// input/output dimensions are the full `lanes · dim` flat vector;
    /// per-lane padding and demultiplexing are the packing layer's job
    /// (see the `pack` module).
    ///
    /// # Panics
    ///
    /// Panics unless `lanes` is a power of two.
    pub fn expand_lanes(&self, lanes: usize) -> HePipeline {
        assert!(lanes.is_power_of_two(), "lanes must be a power of two");
        if lanes == 1 {
            return HePipeline {
                stages: self.stages.clone(),
                prepared: self.prepared.clone(),
                dim: self.dim,
                input_dim: self.input_dim,
                output_dim: self.output_dim,
            };
        }
        let dim = self.dim * lanes;
        let stages: Vec<Stage> = self
            .stages
            .iter()
            .map(|s| match s {
                Stage::Affine { mat, bias } => {
                    let mut tiled = Vec::with_capacity(dim);
                    for _ in 0..lanes {
                        tiled.extend_from_slice(bias);
                    }
                    Stage::Affine {
                        mat: mat.block_diag(lanes),
                        bias: tiled,
                    }
                }
                Stage::PafRelu { .. } => s.clone(),
                Stage::PafMax {
                    taps,
                    paf,
                    post_scale,
                } => Stage::PafMax {
                    taps: taps.iter().map(|t| t.block_diag(lanes)).collect(),
                    paf: paf.clone(),
                    post_scale: *post_scale,
                },
            })
            .collect();
        HePipeline {
            stages,
            prepared: self.prepared.clone(),
            dim,
            input_dim: dim,
            output_dim: dim,
        }
    }

    /// Folds Static-Scaling multiplications into neighbouring affine
    /// matrices: an affine stage directly before a PAF-ReLU absorbs the
    /// `1/s` pre-scale, and an affine stage directly after any PAF
    /// stage absorbs the `s` post-scale. Saves up to two levels per
    /// activation with bit-identical plaintext semantics.
    pub fn fold_scales(mut self) -> Self {
        // Pre-fold: affine followed by PafRelu.
        for i in 1..self.stages.len() {
            let pre = match &self.stages[i] {
                Stage::PafRelu { pre_scale, .. } if *pre_scale != 1.0 => *pre_scale,
                _ => continue,
            };
            if let Stage::Affine { mat, bias } = &mut self.stages[i - 1] {
                *mat = mat.scaled(pre);
                for b in bias.iter_mut() {
                    *b *= pre;
                }
                if let Stage::PafRelu { pre_scale, .. } = &mut self.stages[i] {
                    *pre_scale = 1.0;
                }
            }
        }
        // Post-fold: PAF stage followed by affine.
        for i in 0..self.stages.len().saturating_sub(1) {
            let post = match &self.stages[i] {
                Stage::PafRelu { post_scale, .. } if *post_scale != 1.0 => *post_scale,
                Stage::PafMax { post_scale, .. } if *post_scale != 1.0 => *post_scale,
                _ => continue,
            };
            if matches!(self.stages[i + 1], Stage::Affine { .. }) {
                if let Stage::Affine { mat, .. } = &mut self.stages[i + 1] {
                    *mat = mat.scaled(post);
                }
                match &mut self.stages[i] {
                    Stage::PafRelu { post_scale, .. } => *post_scale = 1.0,
                    Stage::PafMax { post_scale, .. } => *post_scale = 1.0,
                    Stage::Affine { .. } => unreachable!(),
                }
            }
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartpaf_nn::{AvgPool2d, BatchNorm2d, Conv2d, Flatten, Linear};
    use smartpaf_polyfit::PafForm;
    use smartpaf_tensor::Rng64;

    fn relu_paf() -> CompositePaf {
        CompositePaf::from_form(PafForm::F1G2)
    }

    #[test]
    fn probe_linear_layer_matches_weights() {
        let mut rng = Rng64::new(3);
        let lin = Linear::new(4, 3, &mut rng);
        let pipe = PipelineBuilder::new(&[4]).affine(lin).compile();
        assert_eq!(pipe.input_dim(), 4);
        assert_eq!(pipe.output_dim(), 3);
        assert_eq!(pipe.dim(), 4);
        // Linearity check: f(2x) - f(0) = 2(f(x) - f(0)).
        let x = [0.5, -1.0, 0.25, 2.0];
        let x2: Vec<f64> = x.iter().map(|v| 2.0 * v).collect();
        let f0 = pipe.eval_plain(&[0.0; 4]);
        let fx = pipe.eval_plain(&x);
        let f2x = pipe.eval_plain(&x2);
        for o in 0..3 {
            let lhs = f2x[o] - f0[o];
            let rhs = 2.0 * (fx[o] - f0[o]);
            assert!((lhs - rhs).abs() < 1e-4, "output {o}");
        }
    }

    #[test]
    fn probed_conv_matches_direct_forward() {
        let mut rng = Rng64::new(5);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = Tensor::rand_normal(&[1, 2, 4, 4], 0.0, 1.0, &mut rng);
        let want = conv.forward(&x, Mode::Eval);
        let pipe = PipelineBuilder::new(&[2, 4, 4]).affine(conv).compile();
        let flat: Vec<f64> = x.data().iter().map(|&v| v as f64).collect();
        let got = pipe.eval_plain(&flat);
        assert_eq!(got.len(), 3 * 4 * 4);
        for (g, w) in got.iter().zip(want.data()) {
            assert!((g - *w as f64).abs() < 1e-4, "{g} vs {w}");
        }
    }

    #[test]
    fn consecutive_affine_layers_fuse_into_one_stage() {
        let mut rng = Rng64::new(7);
        let pipe = PipelineBuilder::new(&[2, 4, 4])
            .affine(Conv2d::new(2, 2, 3, 1, 1, &mut rng))
            .affine(BatchNorm2d::new(2))
            .affine(AvgPool2d::new(2, 2))
            .affine(Flatten::new())
            .affine(Linear::new(8, 4, &mut rng))
            .compile();
        assert_eq!(pipe.stages().len(), 1);
        assert_eq!(pipe.output_dim(), 4);
    }

    #[test]
    fn full_pipeline_matches_layerwise_reference() {
        let mut rng = Rng64::new(11);
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, &mut rng);
        let mut lin = Linear::new(8, 3, &mut rng);
        let paf = relu_paf();
        let scale = 4.0;

        let x = Tensor::rand_normal(&[1, 1, 4, 4], 0.0, 1.0, &mut rng);
        // Reference: conv -> PAF relu -> avgpool -> flatten -> linear.
        let h = conv.forward(&x, Mode::Eval);
        let h = h.map(|v| (scale * paf.relu(v as f64 / scale)) as f32);
        let mut pool = AvgPool2d::new(2, 2);
        let h = pool.forward(&h, Mode::Eval);
        let mut flat = Flatten::new();
        let h = flat.forward(&h, Mode::Eval);
        let want = lin.forward(&h, Mode::Eval);

        let pipe = PipelineBuilder::new(&[1, 4, 4])
            .affine(conv)
            .paf_relu(&paf, scale)
            .affine(pool)
            .affine(flat)
            .affine(lin)
            .compile();
        let flat_x: Vec<f64> = x.data().iter().map(|&v| v as f64).collect();
        let got = pipe.eval_plain(&flat_x);
        for (g, w) in got.iter().zip(want.data()) {
            assert!((g - *w as f64).abs() < 1e-3, "{g} vs {w}");
        }
    }

    #[test]
    fn maxpool_stage_approximates_true_max() {
        let mut rng = Rng64::new(13);
        let conv = Conv2d::new(1, 1, 3, 1, 1, &mut rng);
        let paf = CompositePaf::from_form(PafForm::Alpha7);
        let pipe = PipelineBuilder::new(&[1, 4, 4])
            .affine(conv)
            .paf_maxpool(2, 2, &paf, 8.0)
            .compile();
        let x: Vec<f64> = (0..16).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
        let got = pipe.eval_plain(&x);
        assert_eq!(got.len(), 4);
        // Compare against exact max pooling of the conv output.
        let probe = PipelineBuilder::new(&[1, 4, 4])
            .affine(Conv2d::new(1, 1, 3, 1, 1, &mut Rng64::new(13)))
            .compile();
        let conv_out = probe.eval_plain(&x);
        for oy in 0..2 {
            for ox in 0..2 {
                let mut m = f64::NEG_INFINITY;
                for dy in 0..2 {
                    for dx in 0..2 {
                        m = m.max(conv_out[(oy * 2 + dy) * 4 + ox * 2 + dx]);
                    }
                }
                let g = got[oy * 2 + ox];
                assert!((g - m).abs() < 0.25, "window ({oy},{ox}): {g} vs {m}");
            }
        }
    }

    #[test]
    fn total_levels_accounts_for_scales() {
        let mut rng = Rng64::new(17);
        let paf = relu_paf();
        let pipe = PipelineBuilder::new(&[4])
            .affine(Linear::new(4, 4, &mut rng))
            .paf_relu(&paf, 2.0)
            .affine(Linear::new(4, 2, &mut rng))
            .compile();
        // affine(1) + relu(pre 1 + depth+1 + post 1) + affine(1)
        let relu_levels = paf.mult_depth() + 3;
        assert_eq!(pipe.total_levels(), 2 + relu_levels);
    }

    #[test]
    fn fold_scales_preserves_semantics_and_saves_levels() {
        let mut rng = Rng64::new(19);
        let paf = relu_paf();
        let build = |rng: &mut Rng64| {
            PipelineBuilder::new(&[4])
                .affine(Linear::new(4, 4, rng))
                .paf_relu(&paf, 3.0)
                .affine(Linear::new(4, 4, rng))
                .paf_relu(&paf, 5.0)
                .affine(Linear::new(4, 2, rng))
                .compile()
        };
        let plain = build(&mut Rng64::new(19));
        let folded = build(&mut rng).fold_scales();
        assert!(folded.total_levels() + 4 == plain.total_levels());
        let x = [0.4, -0.8, 1.2, -0.1];
        let a = plain.eval_plain(&x);
        let b = folded.eval_plain(&x);
        for (ai, bi) in a.iter().zip(&b) {
            assert!((ai - bi).abs() < 1e-9, "{ai} vs {bi}");
        }
    }

    #[test]
    fn pad_input_fills_to_dim() {
        let mut rng = Rng64::new(23);
        let pipe = PipelineBuilder::new(&[3])
            .affine(Linear::new(3, 5, &mut rng))
            .compile();
        assert_eq!(pipe.dim(), 8);
        let padded = pipe.pad_input(&[1.0, 2.0, 3.0]);
        assert_eq!(padded.len(), 8);
        assert_eq!(&padded[..3], &[1.0, 2.0, 3.0]);
        assert!(padded[3..].iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "empty pipeline")]
    fn empty_builder_rejected() {
        let _ = PipelineBuilder::new(&[4]).compile();
    }

    #[test]
    fn degenerate_pool_specs_are_typed_errors() {
        // stride == 0 and k == 0 would divide by zero in the shape
        // arithmetic; both must surface as PoolUntileable, not panics.
        let paf = relu_paf();
        for (k, stride) in [(2usize, 0usize), (0, 1)] {
            let err = PipelineBuilder::new(&[1, 2, 2])
                .paf_maxpool(k, stride, &paf, 1.0)
                .try_compile()
                .err()
                .expect("degenerate spec rejected");
            assert!(
                matches!(err, crate::RunError::PoolUntileable { .. }),
                "k={k} stride={stride}: {err}"
            );
        }
    }

    #[test]
    fn with_paf_swaps_forms_without_reprobing() {
        let mut rng = Rng64::new(31);
        let scale = 4.0;
        let base = PipelineBuilder::new(&[4])
            .affine(Linear::new(4, 4, &mut rng))
            .paf_relu(&relu_paf(), scale)
            .compile()
            .fold_scales();
        let rich = CompositePaf::from_form(PafForm::Alpha7);
        let swapped = base.with_paf(&rich);
        assert_eq!(swapped.dim(), base.dim());
        assert_eq!(swapped.num_paf_stages(), 1);
        // The swapped pipeline equals compiling with the new form
        // directly (same probed affine matrices, same folded scales).
        let direct = PipelineBuilder::new(&[4])
            .affine(Linear::new(4, 4, &mut Rng64::new(31)))
            .paf_relu(&rich, scale)
            .compile()
            .fold_scales();
        let x = [0.4, -0.8, 1.2, -0.1];
        let a = swapped.eval_plain(&x);
        let b = direct.eval_plain(&x);
        for (ai, bi) in a.iter().zip(&b) {
            assert!((ai - bi).abs() < 1e-12, "{ai} vs {bi}");
        }
        assert_eq!(swapped.total_levels(), direct.total_levels());
    }

    #[test]
    fn with_pafs_assigns_forms_per_slot() {
        let mut rng = Rng64::new(37);
        let cheap = relu_paf();
        let rich = CompositePaf::from_form(PafForm::Alpha7);
        let base = PipelineBuilder::new(&[1, 4, 4])
            .affine(Conv2d::new(1, 1, 3, 1, 1, &mut rng))
            .paf_relu(&cheap, 4.0)
            .paf_maxpool(2, 2, &cheap, 8.0)
            .compile()
            .fold_scales();
        assert_eq!(base.num_paf_stages(), 2);
        let mixed = base.with_pafs(&[rich.clone(), cheap.clone()]);
        assert_eq!(
            mixed.paf_forms(),
            vec![Some(PafForm::Alpha7), Some(PafForm::F1G2)]
        );
        // The swap equals compiling the mixed pipeline directly.
        let direct = PipelineBuilder::new(&[1, 4, 4])
            .affine(Conv2d::new(1, 1, 3, 1, 1, &mut Rng64::new(37)))
            .paf_relu(&rich, 4.0)
            .paf_maxpool(2, 2, &cheap, 8.0)
            .compile()
            .fold_scales();
        let x: Vec<f64> = (0..16).map(|i| ((i * 5) % 9) as f64 / 4.0 - 1.0).collect();
        let a = mixed.eval_plain(&x);
        let b = direct.eval_plain(&x);
        for (ai, bi) in a.iter().zip(&b) {
            assert!((ai - bi).abs() < 1e-12, "{ai} vs {bi}");
        }
        assert_eq!(mixed.total_levels(), direct.total_levels());
        // The uniform hook is the trivial length-n case of the vector.
        let uniform = base.with_paf(&rich);
        let via_vector = base.with_pafs(&[rich.clone(), rich.clone()]);
        assert_eq!(uniform.paf_forms(), via_vector.paf_forms());
        assert_eq!(uniform.eval_plain(&x), via_vector.eval_plain(&x));
    }

    #[test]
    fn form_vector_length_mismatch_is_typed() {
        let mut rng = Rng64::new(41);
        let paf = relu_paf();
        let pipe = PipelineBuilder::new(&[4])
            .affine(Linear::new(4, 4, &mut rng))
            .paf_relu(&paf, 2.0)
            .compile();
        let err = pipe
            .try_with_pafs(&[paf.clone(), paf.clone()])
            .err()
            .expect("one slot, two composites");
        assert_eq!(
            err,
            crate::RunError::FormCountMismatch {
                expected: 1,
                got: 2
            }
        );
        assert!(err.to_string().contains("PAF slot"));
        // Empty vector against a slotless pipeline is fine.
        let slotless = PipelineBuilder::new(&[4])
            .affine(Linear::new(4, 4, &mut rng))
            .compile();
        assert!(slotless.try_with_pafs(&[]).is_ok());
    }

    #[test]
    #[should_panic(expected = "form vector has 0 composite(s)")]
    fn with_pafs_panicking_wrapper_formats_the_error() {
        let paf = relu_paf();
        let pipe = PipelineBuilder::new(&[4]).paf_relu(&paf, 1.0).compile();
        let _ = pipe.with_pafs(&[]);
    }

    #[test]
    fn slots_sharing_a_form_share_one_prepared_engine() {
        let paf = relu_paf();
        let pipe = PipelineBuilder::new(&[1, 4, 4])
            .paf_relu(&paf, 2.0)
            .paf_maxpool(2, 2, &paf, 4.0)
            .compile();
        let engines: Vec<_> = pipe.prepared_engines().iter().flatten().collect();
        assert_eq!(engines.len(), 2);
        assert!(
            std::sync::Arc::ptr_eq(engines[0], engines[1]),
            "same composite must share one prepared engine"
        );
        // Distinct forms keep distinct engines.
        let mixed = pipe.with_pafs(&[paf.clone(), CompositePaf::from_form(PafForm::Alpha7)]);
        let engines: Vec<_> = mixed.prepared_engines().iter().flatten().collect();
        assert!(!std::sync::Arc::ptr_eq(engines[0], engines[1]));
    }

    #[test]
    fn with_pafs_reuses_prepared_engines_from_the_source() {
        // Swapping a vector that keeps a slot's composite must reuse
        // the source pipeline's prepared engine (Arc identity), not
        // re-prepare it — the planner swaps from its previous pipeline
        // so a whole search pays one preparation per distinct form.
        let cheap = relu_paf();
        let rich = CompositePaf::from_form(PafForm::Alpha7);
        let base = PipelineBuilder::new(&[1, 4, 4])
            .paf_relu(&cheap, 2.0)
            .paf_maxpool(2, 2, &rich, 4.0)
            .compile();
        let base_engines: Vec<_> = base.prepared_engines().iter().flatten().collect();
        // Keep slot 0, change slot 1 to slot 0's form: both slots of
        // the swap reuse the base's slot-0 engine.
        let swapped = base.with_pafs(&[cheap.clone(), cheap.clone()]);
        let swapped_engines: Vec<_> = swapped.prepared_engines().iter().flatten().collect();
        assert!(std::sync::Arc::ptr_eq(base_engines[0], swapped_engines[0]));
        assert!(std::sync::Arc::ptr_eq(base_engines[0], swapped_engines[1]));
        // And the dropped form's engine is gone, not leaked into the
        // new pipeline.
        assert!(!std::sync::Arc::ptr_eq(base_engines[1], swapped_engines[1]));
    }

    #[test]
    fn stage_labels_are_informative() {
        let mut rng = Rng64::new(29);
        let paf = relu_paf();
        let pipe = PipelineBuilder::new(&[4])
            .affine(Linear::new(4, 4, &mut rng))
            .paf_relu(&paf, 2.0)
            .compile();
        assert!(pipe.stages()[0].label().starts_with("affine"));
        assert!(pipe.stages()[1].label().starts_with("paf-relu"));
    }

    #[test]
    fn lane_capacity_is_slot_count_over_dim() {
        let mut rng = Rng64::new(31);
        let pipe = PipelineBuilder::new(&[4])
            .affine(Linear::new(4, 4, &mut rng))
            .compile();
        assert_eq!(pipe.dim(), 4);
        assert_eq!(pipe.lane_capacity(128), 32);
        assert_eq!(pipe.lane_capacity(4), 1);
        // Non-divisible slot counts have no packing capacity.
        assert_eq!(pipe.lane_capacity(6), 0);
        assert_eq!(pipe.lane_capacity(2), 0);
    }

    #[test]
    fn expanded_lanes_eval_each_lane_bit_identically() {
        // A conv + PAF-relu + maxpool pipeline covers every stage
        // kind; the lane-expanded pipeline applied to concatenated
        // inputs must reproduce each per-lane base eval bit for bit.
        let mut rng = Rng64::new(33);
        let paf = relu_paf();
        let pipe = PipelineBuilder::new(&[1, 4, 4])
            .affine(Conv2d::new(1, 1, 3, 1, 1, &mut rng))
            .paf_relu(&paf, 4.0)
            .paf_maxpool(2, 2, &paf, 4.0)
            .affine(Flatten::new())
            .affine(Linear::new(4, 4, &mut rng))
            .compile();
        let lanes = 4;
        let wide = pipe.expand_lanes(lanes);
        assert_eq!(wide.dim(), lanes * pipe.dim());
        assert_eq!(wide.input_dim(), lanes * pipe.dim());
        assert_eq!(wide.output_dim(), lanes * pipe.dim());

        let inputs: Vec<Vec<f64>> = (0..lanes)
            .map(|l| {
                (0..16)
                    .map(|i| ((i * 7 + l * 3) % 9) as f64 / 3.0 - 1.0)
                    .collect()
            })
            .collect();
        let mut flat = Vec::new();
        for x in &inputs {
            let mut padded = x.clone();
            padded.resize(pipe.dim(), 0.0);
            flat.extend_from_slice(&padded);
        }
        let got = wide.eval_plain(&flat);
        for (l, x) in inputs.iter().enumerate() {
            let want = pipe.eval_plain(x);
            let lane = &got[l * pipe.dim()..l * pipe.dim() + want.len()];
            assert_eq!(
                lane.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "lane {l} must match the sequential eval bit for bit"
            );
        }
    }

    #[test]
    fn expanded_lanes_share_prepared_paf_engines() {
        let paf = relu_paf();
        let pipe = PipelineBuilder::new(&[4]).paf_relu(&paf, 2.0).compile();
        let wide = pipe.expand_lanes(8);
        let base: Vec<_> = pipe.prepared_engines().iter().flatten().collect();
        let exp: Vec<_> = wide.prepared_engines().iter().flatten().collect();
        assert_eq!(base.len(), exp.len());
        assert!(
            std::sync::Arc::ptr_eq(base[0], exp[0]),
            "expansion must not re-prepare PAF engines"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn expand_lanes_rejects_non_power_of_two() {
        let mut rng = Rng64::new(35);
        let pipe = PipelineBuilder::new(&[4])
            .affine(Linear::new(4, 4, &mut rng))
            .compile();
        let _ = pipe.expand_lanes(3);
    }
}
