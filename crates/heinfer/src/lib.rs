//! End-to-end encrypted CNN inference: the paper's Fig. 2 pipeline as
//! a runnable system.
//!
//! The SMART-PAF deployment model keeps the network weights public and
//! the input private: every linear operator (convolution, batch norm,
//! pooling, fully-connected) is an affine map evaluated directly on the
//! encrypted activation vector, and every non-polynomial operator has
//! been replaced by a PAF with a Static Scale. This crate compiles a
//! stack of `smartpaf-nn` layers into that form and executes it under
//! the `smartpaf-ckks` substrate:
//!
//! 1. **Probing** — each run of affine layers is linearised exactly by
//!    a batched forward pass over unit inputs (eval-mode conv/BN/pool/
//!    linear are affine, so probing is lossless), producing a
//!    [`DiagMatrix`](smartpaf_ckks::DiagMatrix) + bias per segment.
//! 2. **Packing** — the activation vector lives replicated across CKKS
//!    slots; affine stages run as Halevi–Shoup diagonal matrix–vector
//!    products with baby-step/giant-step rotations.
//! 3. **PAF stages** — ReLU slots become `s · paf_relu(x/s)` (Static
//!    Scaling, paper §4.5); MaxPool slots become window-tap selections
//!    followed by the nested `paf_max` fold the paper analyses in
//!    §5.4.3.
//! 4. **Scale folding** — the optional [`HePipeline::fold_scales`]
//!    pass absorbs the `1/s` and `s` multiplications into neighbouring
//!    affine matrices, saving two levels per activation.
//! 5. **Level management** — stages declare their depth; a
//!    [`Bootstrapper`](smartpaf_ckks::Bootstrapper) refreshes the
//!    ciphertext when the chain runs dry (simulated bootstrap,
//!    DESIGN.md §2).
//!
//! # Execution backends
//!
//! One interpreter loop ([`HePipeline::run`]) drives every execution
//! mode through the [`InferenceBackend`] trait:
//!
//! - [`PlainBackend`] — batched `f64` slices through the prepared
//!   evaluation engines; `eval_plain` is a thin wrapper over it.
//! - [`CkksBackend`] — leveled CKKS with bootstrap-on-exhaustion;
//!   `eval_encrypted` is a thin wrapper over it.
//! - [`TraceBackend`] — no arithmetic: records per-stage levels,
//!   bootstraps, and exact ct-mult counts ([`HePipeline::dry_run`]),
//!   an instant cost oracle for schedulers.
//!
//! [`BatchRunner`] shards batches of inputs across `std::thread`
//! workers over any of these, with deterministic input-order results;
//! [`BatchRunner::auto`] sizes the pool from the machine (or the
//! `SMARTPAF_THREADS` override). [`HePipeline::with_pafs`] installs a
//! per-slot *form vector* — one composite per ReLU/maxpool slot —
//! without re-probing the affine segments (slots picking the same form
//! share one prepared engine), and [`HePipeline::with_paf`] is its
//! uniform single-form case; planners (the `smartpaf` Session API) use
//! the pair to enumerate candidate form vectors and price each one
//! with [`HePipeline::dry_run`] in microseconds, reading per-slot
//! costs off [`StageTrace::slot`].
//!
//! # Example
//!
//! ```
//! use smartpaf_ckks::{CkksParams, Evaluator, KeyChain, PafEvaluator};
//! use smartpaf_heinfer::PipelineBuilder;
//! use smartpaf_nn::Linear;
//! use smartpaf_polyfit::{CompositePaf, PafForm};
//! use smartpaf_tensor::Rng64;
//!
//! let mut rng = Rng64::new(7);
//! let paf = CompositePaf::from_form(PafForm::F1G2);
//! let pipeline = PipelineBuilder::new(&[8])
//!     .affine(Linear::new(8, 8, &mut rng))
//!     .paf_relu(&paf, 4.0)
//!     .affine(Linear::new(8, 4, &mut rng))
//!     .compile();
//!
//! let ctx = CkksParams::toy().build();
//! let keys = KeyChain::generate(&ctx, &mut rng);
//! let pe = PafEvaluator::new(Evaluator::new(&keys));
//! let x: Vec<f64> = (0..8).map(|i| (i as f64 - 4.0) / 2.0).collect();
//! let ct = pe.evaluator().encrypt_replicated(&pipeline.pad_input(&x), &mut rng);
//! let (out_ct, stats) = pipeline.eval_encrypted(&pe, None, &ct);
//! let enc = pe.evaluator().decrypt_values(&out_ct, 4);
//! let plain = pipeline.eval_plain(&x);
//! for (e, p) in enc.iter().zip(&plain) {
//!     assert!((e - p).abs() < 0.1);
//! }
//! assert!(stats.bootstraps == 0);
//! ```

mod backends;
mod batch;
mod describe;
mod exec;
mod maxpool;
pub mod pack;
mod pipeline;
#[cfg(test)]
mod proptests;
mod runner;
pub mod serve;

pub use backends::{CkksBackend, PlainBackend, StageTrace, TraceBackend, TraceReport};
pub use batch::{BatchRun, BatchRunner};
pub use describe::{fnv1a_64, PipelineDesc, StageDesc};
pub use exec::{InferenceBackend, PafOp, RunError, RunStats};
pub use maxpool::pool_taps;
pub use pack::{LanePacker, PackError, PackedBatch, SlotLayout};
pub use pipeline::{HePipeline, PipelineBuilder, Stage};
pub use serve::{BatchService, ServeConfig, ServeError, ServeStats, Server, TenantId, Ticket};
