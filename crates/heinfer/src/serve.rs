//! A long-lived serving front end for encrypted inference: bounded
//! request queue, dynamic same-tenant batching, backpressure, and
//! graceful shutdown — std-only (worker thread + `mpsc`/`Condvar`).
//!
//! The serving shape is the classic MLSys one: clients [`Server::submit`]
//! single inputs and get a [`Ticket`] back; a batcher thread coalesces
//! queued requests *of the same tenant* into one batch — up to
//! [`ServeConfig::max_batch`] or until [`ServeConfig::batch_deadline`]
//! passes, whichever comes first — and hands it to the tenant's
//! [`BatchService`] (in the full stack, a cached `CompiledSession`
//! driving [`BatchRunner`](crate::BatchRunner)). Admission control is a
//! bounded queue: once [`ServeConfig::queue_capacity`] requests are
//! waiting, submissions are rejected with [`ServeError::QueueFull`]
//! instead of growing latency without bound. [`Server::shutdown`]
//! drains every queued request before returning the final
//! [`ServeStats`] (p50/p99 served latency, batch-fill histogram, queue
//! high-water mark).
//!
//! A panic inside the service is contained (the batch's tickets
//! resolve to [`ServeError::ServerGone`]) and the batcher keeps
//! serving — one poisoned input cannot take the process down.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Identifies a tenant: one tenant = one model + key material, so
/// requests of different tenants can never share a batch.
pub type TenantId = u64;

/// The inference engine a [`Server`] drives: anything that can run a
/// same-tenant batch of plaintext-encoded inputs end to end. The
/// serving layer stays independent of how sessions are built — the
/// `smartpaf` crate implements this for its per-tenant session cache.
pub trait BatchService: Send {
    /// The service's own error type, cloned to every request of a
    /// failed batch.
    type Error: Clone + Send + fmt::Debug + 'static;

    /// Runs one batch for one tenant, returning one output per input
    /// in input order.
    fn run_batch(
        &mut self,
        tenant: TenantId,
        inputs: &[Vec<f64>],
    ) -> Result<Vec<Vec<f64>>, Self::Error>;

    /// How many inputs this tenant's engine can multiplex into one
    /// ciphertext (the slot-packing capacity `K = slots / padded_dim`,
    /// see `heinfer::pack`). The default of 1 means "no packing";
    /// packing-aware services override it so the batcher
    /// ([`ServeConfig::pack_lanes`]) can fill slot lanes before
    /// growing worker batches.
    fn lane_capacity(&mut self, tenant: TenantId) -> usize {
        let _ = tenant;
        1
    }
}

/// Why a request was rejected or failed, typed so callers can
/// distinguish backpressure from real errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError<E> {
    /// The bounded queue is at capacity — back off and retry.
    QueueFull {
        /// The configured queue capacity the request bounced off.
        capacity: usize,
    },
    /// The server is draining; no new requests are admitted.
    ShuttingDown,
    /// The batch this request rode in failed; every member gets the
    /// same service error.
    Service(E),
    /// The server (or the batch's worker) died before answering —
    /// e.g. a panic inside the service.
    ServerGone,
}

impl<E: fmt::Display> fmt::Display for ServeError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => {
                write!(f, "request queue full ({capacity} waiting); retry later")
            }
            ServeError::ShuttingDown => f.write_str("server is shutting down"),
            ServeError::Service(e) => write!(f, "batch failed: {e}"),
            ServeError::ServerGone => f.write_str("server dropped the request without answering"),
        }
    }
}

impl<E: fmt::Display + fmt::Debug> std::error::Error for ServeError<E> {}

/// Serving knobs: queue bound, batch cap, and coalescing deadline.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Requests the queue admits before [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Most requests one batch carries.
    pub max_batch: usize,
    /// How long the batcher waits for more same-tenant requests before
    /// dispatching a partial batch. `Duration::ZERO` dispatches
    /// whatever is queued immediately (deterministic, good for tests).
    pub batch_deadline: Duration,
    /// Fill slot lanes first: when set, the batcher asks the service
    /// for each tenant's [`BatchService::lane_capacity`] `K` and
    /// coalesces up to `max_batch · K` same-tenant requests per
    /// dispatch, so the service can multiplex each group of `K` inputs
    /// into one ciphertext (`heinfer::pack`). [`ServeStats`] then
    /// records slot-occupancy metrics alongside the request batch-fill
    /// histogram. Off by default — the service must actually pack for
    /// this to help.
    pub pack_lanes: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            max_batch: 8,
            batch_deadline: Duration::from_millis(2),
            pack_lanes: false,
        }
    }
}

/// Counters and latency records of one server's lifetime, returned by
/// [`Server::stats`] (a snapshot) and [`Server::shutdown`] (final).
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Requests answered successfully.
    pub served: usize,
    /// Requests answered with a service error (or dropped by a panic).
    pub failed: usize,
    /// Submissions bounced off the full queue.
    pub rejected: usize,
    /// Batches dispatched.
    pub batches: usize,
    /// Batch-fill histogram: `batch_fill[k]` batches carried exactly
    /// `k` requests (index 0 is unused).
    pub batch_fill: Vec<usize>,
    /// Most requests ever waiting at once (queue high-water mark).
    pub max_queue_depth: usize,
    /// Ciphertext lane-groups dispatched under slot packing
    /// ([`ServeConfig::pack_lanes`]); 0 when packing is off.
    pub slot_batches: usize,
    /// Slot-fill histogram: `slot_fill[k]` lane-groups carried exactly
    /// `k` requests in their slot lanes (index 0 is unused).
    pub slot_fill: Vec<usize>,
    /// Served latency per request (submit → answer), milliseconds.
    latencies_ms: Vec<f64>,
}

impl ServeStats {
    /// Served latency at percentile `p` in `[0, 100]` (nearest-rank on
    /// the sorted record), in milliseconds; 0.0 before anything was
    /// served.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    }

    /// Median served latency in milliseconds.
    pub fn p50_ms(&self) -> f64 {
        self.percentile_ms(50.0)
    }

    /// 99th-percentile served latency in milliseconds.
    pub fn p99_ms(&self) -> f64 {
        self.percentile_ms(99.0)
    }

    /// Mean requests per dispatched batch (0.0 before any batch).
    pub fn mean_fill(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        let total: usize = self
            .batch_fill
            .iter()
            .enumerate()
            .map(|(fill, count)| fill * count)
            .sum();
        total as f64 / self.batches as f64
    }

    /// Mean requests per ciphertext lane-group under slot packing
    /// (0.0 when packing never dispatched). Read together with
    /// [`ServeStats::mean_fill`]: `mean_fill` is requests per *worker
    /// batch*, `mean_slot_fill` requests per *ciphertext* — the lane
    /// occupancy that the packed-eval amortization actually tracks.
    pub fn mean_slot_fill(&self) -> f64 {
        if self.slot_batches == 0 {
            return 0.0;
        }
        let total: usize = self
            .slot_fill
            .iter()
            .enumerate()
            .map(|(fill, count)| fill * count)
            .sum();
        total as f64 / self.slot_batches as f64
    }

    fn record_batch(&mut self, fill: usize) {
        self.batches += 1;
        if self.batch_fill.len() <= fill {
            self.batch_fill.resize(fill + 1, 0);
        }
        self.batch_fill[fill] += 1;
    }

    fn record_slot_group(&mut self, fill: usize) {
        self.slot_batches += 1;
        if self.slot_fill.len() <= fill {
            self.slot_fill.resize(fill + 1, 0);
        }
        self.slot_fill[fill] += 1;
    }
}

/// One queued request.
struct Request<E> {
    tenant: TenantId,
    input: Vec<f64>,
    enqueued: Instant,
    reply: mpsc::Sender<Result<Vec<f64>, ServeError<E>>>,
}

/// Queue state guarded by one mutex; the batcher sleeps on the condvar.
struct QueueState<E> {
    queue: VecDeque<Request<E>>,
    shutting_down: bool,
    paused: bool,
}

struct Shared<E> {
    state: Mutex<QueueState<E>>,
    available: Condvar,
    stats: Mutex<ServeStats>,
}

/// A pending request's receipt: redeem with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket<E> {
    rx: mpsc::Receiver<Result<Vec<f64>, ServeError<E>>>,
}

impl<E> Ticket<E> {
    /// Blocks until the request is answered. A server that died (or a
    /// batch whose worker panicked) surfaces as
    /// [`ServeError::ServerGone`].
    pub fn wait(self) -> Result<Vec<f64>, ServeError<E>> {
        match self.rx.recv() {
            Ok(result) => result,
            Err(_) => Err(ServeError::ServerGone),
        }
    }
}

/// The serving front end: owns the bounded queue and the batcher
/// thread (which owns the [`BatchService`]).
///
/// # Example
///
/// ```
/// use smartpaf_heinfer::serve::{BatchService, ServeConfig, Server, TenantId};
///
/// struct Doubler;
/// impl BatchService for Doubler {
///     type Error = std::convert::Infallible;
///     fn run_batch(
///         &mut self,
///         _tenant: TenantId,
///         inputs: &[Vec<f64>],
///     ) -> Result<Vec<Vec<f64>>, Self::Error> {
///         Ok(inputs.iter().map(|x| x.iter().map(|v| 2.0 * v).collect()).collect())
///     }
/// }
///
/// let server = Server::start(Doubler, ServeConfig::default());
/// let ticket = server.submit(0, vec![1.0, 2.0]).unwrap();
/// assert_eq!(ticket.wait().unwrap(), vec![2.0, 4.0]);
/// let stats = server.shutdown();
/// assert_eq!(stats.served, 1);
/// ```
pub struct Server<S: BatchService> {
    shared: Arc<Shared<S::Error>>,
    config: ServeConfig,
    batcher: Option<JoinHandle<()>>,
}

impl<S: BatchService + 'static> Server<S> {
    /// Starts the server: spawns the batcher thread, which takes
    /// ownership of `service`.
    pub fn start(service: S, config: ServeConfig) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutting_down: false,
                paused: false,
            }),
            available: Condvar::new(),
            stats: Mutex::new(ServeStats::default()),
        });
        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || batcher_loop(service, shared, config))
        };
        Server {
            shared,
            config,
            batcher: Some(batcher),
        }
    }

    /// Submits one request. Admission control happens here: a full
    /// queue answers [`ServeError::QueueFull`] immediately (the
    /// backpressure signal), a draining server
    /// [`ServeError::ShuttingDown`].
    pub fn submit(
        &self,
        tenant: TenantId,
        input: Vec<f64>,
    ) -> Result<Ticket<S::Error>, ServeError<S::Error>> {
        let mut st = self.shared.state.lock().expect("serve state poisoned");
        if st.shutting_down {
            return Err(ServeError::ShuttingDown);
        }
        if st.queue.len() >= self.config.queue_capacity {
            drop(st);
            self.shared.stats.lock().expect("stats poisoned").rejected += 1;
            return Err(ServeError::QueueFull {
                capacity: self.config.queue_capacity,
            });
        }
        let (tx, rx) = mpsc::channel();
        st.queue.push_back(Request {
            tenant,
            input,
            enqueued: Instant::now(),
            reply: tx,
        });
        let depth = st.queue.len();
        drop(st);
        {
            let mut stats = self.shared.stats.lock().expect("stats poisoned");
            stats.max_queue_depth = stats.max_queue_depth.max(depth);
        }
        self.shared.available.notify_all();
        Ok(Ticket { rx })
    }

    /// Requests currently waiting (in-flight batches not included).
    pub fn queue_depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("serve state poisoned")
            .queue
            .len()
    }

    /// Freezes the batcher so submissions accumulate — the hook tests
    /// and demos use to stage a burst and observe coalescing
    /// deterministically. Shutdown overrides a pause.
    pub fn pause(&self) {
        self.shared
            .state
            .lock()
            .expect("serve state poisoned")
            .paused = true;
    }

    /// Resumes a paused batcher.
    pub fn resume(&self) {
        self.shared
            .state
            .lock()
            .expect("serve state poisoned")
            .paused = false;
        self.shared.available.notify_all();
    }

    /// A snapshot of the serving counters so far.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats.lock().expect("stats poisoned").clone()
    }

    /// Graceful shutdown: stops admitting, drains every queued request
    /// through the batcher, joins it, and returns the final stats.
    pub fn shutdown(mut self) -> ServeStats {
        self.begin_shutdown();
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
        self.shared.stats.lock().expect("stats poisoned").clone()
    }

    fn begin_shutdown(&self) {
        let mut st = self.shared.state.lock().expect("serve state poisoned");
        st.shutting_down = true;
        st.paused = false;
        drop(st);
        self.shared.available.notify_all();
    }
}

impl<S: BatchService> Drop for Server<S> {
    /// Dropping the server without [`Server::shutdown`] still drains
    /// gracefully.
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("serve state poisoned");
            st.shutting_down = true;
            st.paused = false;
        }
        self.shared.available.notify_all();
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
    }
}

/// Removes up to `cap` requests of `tenant` from anywhere in the
/// queue, preserving arrival order.
fn drain_tenant<E>(
    queue: &mut VecDeque<Request<E>>,
    tenant: TenantId,
    cap: usize,
) -> Vec<Request<E>> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < queue.len() && out.len() < cap {
        if queue[i].tenant == tenant {
            out.push(queue.remove(i).expect("index checked"));
        } else {
            i += 1;
        }
    }
    out
}

/// The batcher: wait → coalesce one tenant's requests (cap or
/// deadline) → run the batch → answer every member. Exits once
/// shutdown is flagged *and* the queue is drained.
fn batcher_loop<S: BatchService>(
    mut service: S,
    shared: Arc<Shared<S::Error>>,
    config: ServeConfig,
) {
    let max_batch = config.max_batch.max(1);
    loop {
        let batch = {
            let mut st = shared.state.lock().expect("serve state poisoned");
            loop {
                if st.queue.is_empty() {
                    if st.shutting_down {
                        return; // drained: graceful exit
                    }
                } else if !st.paused || st.shutting_down {
                    break;
                }
                st = shared.available.wait(st).expect("serve state poisoned");
            }
            let tenant = st.queue.front().expect("non-empty").tenant;
            // Slot packing multiplies the coalescing cap: each group
            // of `lanes` requests shares one ciphertext, so one worker
            // batch of `max_batch` ciphertexts carries up to
            // `max_batch · lanes` requests.
            let lanes = if config.pack_lanes {
                service.lane_capacity(tenant).max(1)
            } else {
                1
            };
            let cap = max_batch.saturating_mul(lanes);
            let mut batch = drain_tenant(&mut st.queue, tenant, cap);
            // Coalescing window: wait out the deadline for more
            // same-tenant arrivals unless the batch is already full or
            // we are draining.
            if batch.len() < cap && !st.shutting_down && !config.batch_deadline.is_zero() {
                let deadline = Instant::now() + config.batch_deadline;
                loop {
                    let now = Instant::now();
                    if now >= deadline || batch.len() >= cap || st.shutting_down {
                        break;
                    }
                    let (guard, timeout) = shared
                        .available
                        .wait_timeout(st, deadline - now)
                        .expect("serve state poisoned");
                    st = guard;
                    batch.extend(drain_tenant(&mut st.queue, tenant, cap - batch.len()));
                    if timeout.timed_out() {
                        break;
                    }
                }
            }
            (batch, lanes)
        };
        let (batch, lanes) = batch;

        let tenant = batch[0].tenant;
        let inputs: Vec<Vec<f64>> = batch.iter().map(|r| r.input.clone()).collect();
        // Contain a panicking service exactly like `BatchRunner`
        // contains a panicking worker: the batch's tickets resolve to
        // `ServerGone` and the server keeps serving.
        let result = catch_unwind(AssertUnwindSafe(|| service.run_batch(tenant, &inputs)));
        let answered = Instant::now();
        let mut stats = shared.stats.lock().expect("stats poisoned");
        stats.record_batch(batch.len());
        if config.pack_lanes {
            // Slot occupancy: the service packs each consecutive group
            // of `lanes` inputs into one ciphertext; record how full
            // each lane-group ran.
            let mut left = batch.len();
            while left > 0 {
                let fill = left.min(lanes);
                stats.record_slot_group(fill);
                left -= fill;
            }
        }
        match result {
            Ok(Ok(outputs)) if outputs.len() == batch.len() => {
                stats.served += batch.len();
                for (req, out) in batch.into_iter().zip(outputs) {
                    stats
                        .latencies_ms
                        .push(answered.duration_since(req.enqueued).as_secs_f64() * 1e3);
                    let _ = req.reply.send(Ok(out));
                }
            }
            Ok(Ok(_)) | Err(_) => {
                // A panicking or arity-breaking service: drop the
                // reply senders so every ticket sees `ServerGone`.
                stats.failed += batch.len();
            }
            Ok(Err(e)) => {
                stats.failed += batch.len();
                for req in batch {
                    let _ = req.reply.send(Err(ServeError::Service(e.clone())));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shared log of `(tenant, batch_len)` per dispatched batch.
    type CallLog = Arc<Mutex<Vec<(TenantId, usize)>>>;

    /// A service that records every batch it runs.
    struct Recorder {
        calls: CallLog,
        panic_on: Option<f64>,
        fail_on: Option<f64>,
        lanes: usize,
    }

    impl Recorder {
        fn new() -> (Self, CallLog) {
            let calls = Arc::new(Mutex::new(Vec::new()));
            (
                Recorder {
                    calls: Arc::clone(&calls),
                    panic_on: None,
                    fail_on: None,
                    lanes: 1,
                },
                calls,
            )
        }
    }

    impl BatchService for Recorder {
        type Error = String;
        fn run_batch(
            &mut self,
            tenant: TenantId,
            inputs: &[Vec<f64>],
        ) -> Result<Vec<Vec<f64>>, String> {
            self.calls.lock().unwrap().push((tenant, inputs.len()));
            for x in inputs {
                if Some(x[0]) == self.panic_on {
                    panic!("poisoned input");
                }
                if Some(x[0]) == self.fail_on {
                    return Err("bad batch".to_string());
                }
            }
            Ok(inputs
                .iter()
                .map(|x| {
                    x.iter()
                        .map(|v| v + f64::from(u32::try_from(tenant).unwrap()))
                        .collect()
                })
                .collect())
        }

        fn lane_capacity(&mut self, _tenant: TenantId) -> usize {
            self.lanes
        }
    }

    fn burst_config() -> ServeConfig {
        // Zero deadline + pause/resume makes coalescing deterministic.
        ServeConfig {
            queue_capacity: 16,
            max_batch: 4,
            batch_deadline: Duration::ZERO,
            pack_lanes: false,
        }
    }

    #[test]
    fn a_staged_burst_coalesces_to_ceil_n_over_cap_batches() {
        let (svc, calls) = Recorder::new();
        let server = Server::start(svc, burst_config());
        server.pause();
        let tickets: Vec<_> = (0..6)
            .map(|i| server.submit(7, vec![i as f64]).unwrap())
            .collect();
        assert_eq!(server.queue_depth(), 6);
        server.resume();
        for (i, t) in tickets.into_iter().enumerate() {
            assert_eq!(t.wait().unwrap(), vec![i as f64 + 7.0]);
        }
        let stats = server.shutdown();
        assert_eq!(stats.served, 6);
        assert_eq!(stats.batches, 2, "6 requests under cap 4 → 2 batches");
        assert_eq!(calls.lock().unwrap().as_slice(), &[(7, 4), (7, 2)]);
        assert_eq!(stats.batch_fill[4], 1);
        assert_eq!(stats.batch_fill[2], 1);
        assert_eq!(stats.max_queue_depth, 6);
        assert!(stats.p99_ms() >= stats.p50_ms());
    }

    #[test]
    fn pack_lanes_fill_slots_before_growing_worker_batches() {
        // K=4 lanes per ciphertext, max_batch 4 → one dispatch can
        // carry 16 requests; a burst of 10 coalesces into a single
        // run_batch call and three lane-groups (4, 4, 2).
        let (mut svc, calls) = Recorder::new();
        svc.lanes = 4;
        let server = Server::start(
            svc,
            ServeConfig {
                pack_lanes: true,
                ..burst_config()
            },
        );
        server.pause();
        let tickets: Vec<_> = (0..10)
            .map(|i| server.submit(7, vec![i as f64]).unwrap())
            .collect();
        server.resume();
        for (i, t) in tickets.into_iter().enumerate() {
            assert_eq!(t.wait().unwrap(), vec![i as f64 + 7.0]);
        }
        let stats = server.shutdown();
        assert_eq!(stats.served, 10);
        assert_eq!(stats.batches, 1, "10 requests fit one packed dispatch");
        assert_eq!(calls.lock().unwrap().as_slice(), &[(7, 10)]);
        assert_eq!(stats.batch_fill[10], 1);
        assert_eq!(stats.slot_batches, 3);
        assert_eq!(stats.slot_fill[4], 2);
        assert_eq!(stats.slot_fill[2], 1);
        assert!((stats.mean_slot_fill() - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn packing_off_records_no_slot_metrics() {
        let (svc, _) = Recorder::new();
        let server = Server::start(svc, burst_config());
        server.submit(0, vec![1.0]).unwrap().wait().unwrap();
        let stats = server.shutdown();
        assert_eq!(stats.slot_batches, 0);
        assert!(stats.slot_fill.is_empty());
        assert_eq!(stats.mean_slot_fill(), 0.0);
    }

    #[test]
    fn batches_never_mix_tenants() {
        let (svc, calls) = Recorder::new();
        let server = Server::start(svc, burst_config());
        server.pause();
        // Interleave two tenants; coalescing must pull same-tenant
        // requests past the other tenant's.
        let mut tickets = Vec::new();
        for i in 0..6u64 {
            tickets.push((i, server.submit(i % 2, vec![i as f64]).unwrap()));
        }
        server.resume();
        for (i, t) in tickets {
            let out = t.wait().unwrap();
            assert_eq!(out, vec![i as f64 + (i % 2) as f64]);
        }
        let stats = server.shutdown();
        assert_eq!(stats.served, 6);
        for (_, fill) in calls.lock().unwrap().iter() {
            assert!(*fill <= 3, "each tenant only ever had 3 queued");
        }
    }

    #[test]
    fn full_queue_rejects_with_backpressure() {
        let (svc, _) = Recorder::new();
        let server = Server::start(
            svc,
            ServeConfig {
                queue_capacity: 2,
                ..burst_config()
            },
        );
        server.pause();
        let t0 = server.submit(1, vec![0.0]).unwrap();
        let t1 = server.submit(1, vec![1.0]).unwrap();
        let err = server.submit(1, vec![2.0]).unwrap_err();
        assert_eq!(err, ServeError::QueueFull { capacity: 2 });
        server.resume();
        t0.wait().unwrap();
        t1.wait().unwrap();
        let stats = server.shutdown();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.served, 2);
    }

    #[test]
    fn shutdown_drains_queued_requests_and_rejects_new_ones() {
        let (svc, _) = Recorder::new();
        let server = Server::start(svc, burst_config());
        server.pause();
        let tickets: Vec<_> = (0..5)
            .map(|i| server.submit(3, vec![i as f64]).unwrap())
            .collect();
        // Shutdown with the batcher paused: the drain must override
        // the pause and answer everything already queued.
        let stats = server.shutdown();
        assert_eq!(stats.served, 5, "graceful shutdown drains the queue");
        for (i, t) in tickets.into_iter().enumerate() {
            assert_eq!(t.wait().unwrap(), vec![i as f64 + 3.0]);
        }
    }

    #[test]
    fn submitting_to_a_draining_server_is_rejected() {
        let (svc, _) = Recorder::new();
        let server = Server::start(svc, burst_config());
        server.begin_shutdown();
        let err = server.submit(0, vec![0.0]).unwrap_err();
        assert_eq!(err, ServeError::ShuttingDown);
    }

    #[test]
    fn service_error_reaches_every_batch_member() {
        let (mut svc, _) = Recorder::new();
        svc.fail_on = Some(1.0);
        let server = Server::start(svc, burst_config());
        server.pause();
        let tickets: Vec<_> = (0..3)
            .map(|i| server.submit(0, vec![i as f64]).unwrap())
            .collect();
        server.resume();
        for t in tickets {
            assert_eq!(
                t.wait().unwrap_err(),
                ServeError::Service("bad batch".to_string())
            );
        }
        let stats = server.shutdown();
        assert_eq!(stats.failed, 3);
        assert_eq!(stats.served, 0);
    }

    #[test]
    fn a_panicking_service_is_contained_and_serving_continues() {
        let (mut svc, calls) = Recorder::new();
        svc.panic_on = Some(13.0);
        let server = Server::start(svc, burst_config());
        let poisoned = server.submit(0, vec![13.0]).unwrap();
        assert_eq!(poisoned.wait().unwrap_err(), ServeError::ServerGone);
        // The server survived: the next request is answered normally.
        let ok = server.submit(0, vec![1.0]).unwrap();
        assert_eq!(ok.wait().unwrap(), vec![1.0]);
        let stats = server.shutdown();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.served, 1);
        assert_eq!(calls.lock().unwrap().len(), 2);
    }

    #[test]
    fn deadline_coalesces_trickling_arrivals() {
        // With a generous deadline, requests submitted one by one
        // still share a batch: the batcher picks up the first and
        // waits out the window.
        let (svc, _) = Recorder::new();
        let server = Server::start(
            svc,
            ServeConfig {
                queue_capacity: 16,
                max_batch: 8,
                batch_deadline: Duration::from_millis(200),
                pack_lanes: false,
            },
        );
        let t0 = server.submit(0, vec![0.0]).unwrap();
        let t1 = server.submit(0, vec![1.0]).unwrap();
        t0.wait().unwrap();
        t1.wait().unwrap();
        let stats = server.shutdown();
        assert_eq!(stats.served, 2);
        // Both fit one window on any sane scheduler; allow 2 batches
        // if the first dispatched alone, but the mean fill must be
        // recorded either way.
        assert!(stats.batches <= 2);
        assert!(stats.mean_fill() >= 1.0);
    }

    #[test]
    fn stats_helpers_handle_the_empty_server() {
        let stats = ServeStats::default();
        assert_eq!(stats.p50_ms(), 0.0);
        assert_eq!(stats.p99_ms(), 0.0);
        assert_eq!(stats.mean_fill(), 0.0);
        let (svc, _) = Recorder::new();
        let server: Server<Recorder> = Server::start(svc, burst_config());
        let stats = server.shutdown();
        assert_eq!(stats.served + stats.failed + stats.rejected, 0);
    }

    #[test]
    fn serve_error_display_strings_are_stable() {
        let e: ServeError<String> = ServeError::QueueFull { capacity: 8 };
        assert_eq!(e.to_string(), "request queue full (8 waiting); retry later");
        let e: ServeError<String> = ServeError::ShuttingDown;
        assert_eq!(e.to_string(), "server is shutting down");
        let e: ServeError<String> = ServeError::Service("boom".into());
        assert_eq!(e.to_string(), "batch failed: boom");
        let e: ServeError<String> = ServeError::ServerGone;
        assert_eq!(
            e.to_string(),
            "server dropped the request without answering"
        );
    }
}
