//! Encrypted execution of a compiled pipeline with level management —
//! thin wrappers over the shared interpreter ([`HePipeline::run`])
//! driving the [`CkksBackend`]. The threaded batch driver is
//! [`crate::BatchRunner`] (defined in [`crate::batch`]).

use crate::backends::CkksBackend;
use crate::exec::{RunError, RunStats};
use crate::pipeline::HePipeline;
use smartpaf_ckks::{Bootstrapper, Ciphertext, PafEvaluator};

impl HePipeline {
    /// Runs the pipeline on an encrypted (replicated, padded) input.
    ///
    /// Pass a [`Bootstrapper`] to refresh the ciphertext when a stage
    /// needs more levels than remain; without one, running out of
    /// levels panics — exactly the constraint that makes high-degree
    /// PAFs expensive in the paper.
    /// [`HePipeline::try_eval_encrypted`] reports the same conditions
    /// as typed [`RunError`]s instead.
    ///
    /// # Panics
    ///
    /// Panics if a stage needs more levels than the whole chain offers,
    /// or the chain runs dry and `bootstrapper` is `None`.
    pub fn eval_encrypted(
        &self,
        pe: &PafEvaluator,
        bootstrapper: Option<&Bootstrapper>,
        ct: &Ciphertext,
    ) -> (Ciphertext, RunStats) {
        self.try_eval_encrypted(pe, bootstrapper, ct)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs the pipeline on an encrypted input, reporting level
    /// exhaustion and packing mismatches as typed [`RunError`]s.
    pub fn try_eval_encrypted(
        &self,
        pe: &PafEvaluator,
        bootstrapper: Option<&Bootstrapper>,
        ct: &Ciphertext,
    ) -> Result<(Ciphertext, RunStats), RunError> {
        let mut backend = CkksBackend::new(pe, bootstrapper);
        self.run(&mut backend, ct.clone())
    }
}

#[cfg(test)]
mod tests {
    use crate::pipeline::PipelineBuilder;
    use smartpaf_ckks::{Bootstrapper, CkksParams, Evaluator, KeyChain, PafEvaluator};
    use smartpaf_nn::{Conv2d, Flatten, Linear};
    use smartpaf_polyfit::{CompositePaf, PafForm};
    use smartpaf_tensor::Rng64;

    fn setup(seed: u64) -> (PafEvaluator, Rng64) {
        let ctx = CkksParams::toy().build();
        let mut rng = Rng64::new(seed);
        let keys = KeyChain::generate(&ctx, &mut rng);
        (PafEvaluator::new(Evaluator::new(&keys)), rng)
    }

    #[test]
    fn encrypted_affine_matches_plain() {
        let (pe, mut rng) = setup(61);
        let pipe = PipelineBuilder::new(&[8])
            .affine(Linear::new(8, 8, &mut rng))
            .compile();
        let x: Vec<f64> = (0..8).map(|i| (i as f64 - 4.0) / 4.0).collect();
        let ct = pe
            .evaluator()
            .encrypt_replicated(&pipe.pad_input(&x), &mut rng);
        let (out_ct, stats) = pipe.eval_encrypted(&pe, None, &ct);
        let got = pe.evaluator().decrypt_values(&out_ct, 8);
        let want = pipe.eval_plain(&x);
        for i in 0..8 {
            assert!(
                (got[i] - want[i]).abs() < 2e-2,
                "slot {i}: {} vs {}",
                got[i],
                want[i]
            );
        }
        assert_eq!(stats.total_levels(), 1);
        assert_eq!(stats.bootstraps, 0);
    }

    #[test]
    fn encrypted_relu_pipeline_matches_plain() {
        let (pe, mut rng) = setup(62);
        let paf = CompositePaf::from_form(PafForm::F1G2);
        let pipe = PipelineBuilder::new(&[8])
            .affine(Linear::new(8, 8, &mut rng))
            .paf_relu(&paf, 4.0)
            .affine(Linear::new(8, 4, &mut rng))
            .compile()
            .fold_scales();
        let x: Vec<f64> = (0..8).map(|i| (i as f64 - 3.0) / 3.0).collect();
        let ct = pe
            .evaluator()
            .encrypt_replicated(&pipe.pad_input(&x), &mut rng);
        let (out_ct, stats) = pipe.eval_encrypted(&pe, None, &ct);
        let got = pe.evaluator().decrypt_values(&out_ct, 4);
        let want = pipe.eval_plain(&x);
        for i in 0..4 {
            assert!(
                (got[i] - want[i]).abs() < 6e-2,
                "slot {i}: {} vs {}",
                got[i],
                want[i]
            );
        }
        assert_eq!(stats.total_levels(), pipe.total_levels());
    }

    #[test]
    fn encrypted_cnn_with_conv_matches_plain() {
        let (pe, mut rng) = setup(63);
        let paf = CompositePaf::from_form(PafForm::F1G2);
        let pipe = PipelineBuilder::new(&[1, 4, 4])
            .affine(Conv2d::new(1, 2, 3, 1, 1, &mut rng))
            .paf_relu(&paf, 6.0)
            .affine(Flatten::new())
            .affine(Linear::new(32, 4, &mut rng))
            .compile()
            .fold_scales();
        let x: Vec<f64> = (0..16).map(|i| ((i % 5) as f64 - 2.0) / 2.0).collect();
        let ct = pe
            .evaluator()
            .encrypt_replicated(&pipe.pad_input(&x), &mut rng);
        let (out_ct, _) = pipe.eval_encrypted(&pe, None, &ct);
        let got = pe.evaluator().decrypt_values(&out_ct, 4);
        let want = pipe.eval_plain(&x);
        for i in 0..4 {
            assert!(
                (got[i] - want[i]).abs() < 0.1,
                "slot {i}: {} vs {}",
                got[i],
                want[i]
            );
        }
    }

    #[test]
    fn bootstrap_triggers_when_chain_runs_dry() {
        let (pe, mut rng) = setup(64);
        let paf = CompositePaf::from_form(PafForm::F1G2); // depth 5
                                                          // Three PAF blocks at depth 7 each + affines exceed the toy
                                                          // chain (12 levels), forcing at least one refresh.
        let mut b = PipelineBuilder::new(&[4]);
        for _ in 0..3 {
            b = b.affine(Linear::new(4, 4, &mut rng)).paf_relu(&paf, 2.0);
        }
        let pipe = b.compile().fold_scales();
        assert!(pipe.total_levels() > 12);
        let bs = Bootstrapper::new(pe.evaluator().clone(), pipe.dim(), 5);
        let x = [0.2, -0.4, 0.6, -0.8];
        let ct = pe
            .evaluator()
            .encrypt_replicated(&pipe.pad_input(&x), &mut rng);
        let (out_ct, stats) = pipe.eval_encrypted(&pe, Some(&bs), &ct);
        assert!(stats.bootstraps >= 1);
        assert_eq!(stats.bootstraps, bs.refresh_count());
        let got = pe.evaluator().decrypt_values(&out_ct, 4);
        let want = pipe.eval_plain(&x);
        for i in 0..4 {
            assert!(
                (got[i] - want[i]).abs() < 0.15,
                "slot {i}: {} vs {}",
                got[i],
                want[i]
            );
        }
    }

    #[test]
    #[should_panic(expected = "level exhausted")]
    fn no_bootstrapper_panics_on_exhaustion() {
        let (pe, mut rng) = setup(65);
        let paf = CompositePaf::from_form(PafForm::F1G2);
        let mut b = PipelineBuilder::new(&[4]);
        for _ in 0..3 {
            b = b.affine(Linear::new(4, 4, &mut rng)).paf_relu(&paf, 2.0);
        }
        let pipe = b.compile();
        let ct = pe
            .evaluator()
            .encrypt_replicated(&pipe.pad_input(&[0.1; 4]), &mut rng);
        let _ = pipe.eval_encrypted(&pe, None, &ct);
    }

    #[test]
    fn encrypted_maxpool_matches_plain() {
        let (pe, mut rng) = setup(66);
        let paf = CompositePaf::from_form(PafForm::Alpha7);
        let pipe = PipelineBuilder::new(&[1, 4, 4])
            .paf_maxpool(2, 2, &paf, 4.0)
            .compile();
        let x: Vec<f64> = (0..16).map(|i| ((i * 3) % 7) as f64 / 2.0 - 1.5).collect();
        let ct = pe
            .evaluator()
            .encrypt_replicated(&pipe.pad_input(&x), &mut rng);
        // 1 + 2·(depth+1) = 15 levels > the toy chain's 12: the fold
        // must refresh mid-stage.
        let bs = Bootstrapper::new(pe.evaluator().clone(), pipe.dim(), 3);
        let (out_ct, stats) = pipe.eval_encrypted(&pe, Some(&bs), &ct);
        assert!(stats.bootstraps >= 1);
        let got = pe.evaluator().decrypt_values(&out_ct, 4);
        let want = pipe.eval_plain(&x);
        for i in 0..4 {
            assert!(
                (got[i] - want[i]).abs() < 0.15,
                "slot {i}: {} vs {}",
                got[i],
                want[i]
            );
        }
    }
}
