//! Encrypted execution of a compiled pipeline with level management.

use crate::pipeline::{HePipeline, Stage};
use smartpaf_ckks::{Bootstrapper, Ciphertext, PafEvaluator};
use std::time::{Duration, Instant};

/// Execution statistics of one encrypted inference.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Levels consumed per stage, in order.
    pub stage_levels: Vec<usize>,
    /// Bootstraps (simulated refreshes) triggered.
    pub bootstraps: usize,
    /// Remaining rescale budget after the last stage.
    pub final_level: usize,
    /// Wall-clock time of the encrypted evaluation.
    pub wall: Duration,
}

impl RunStats {
    /// Total levels consumed across all stages.
    pub fn total_levels(&self) -> usize {
        self.stage_levels.iter().sum()
    }
}

impl HePipeline {
    /// Runs the pipeline on an encrypted (replicated, padded) input.
    ///
    /// Pass a [`Bootstrapper`] to refresh the ciphertext when a stage
    /// needs more levels than remain; without one, running out of
    /// levels panics — exactly the constraint that makes high-degree
    /// PAFs expensive in the paper.
    ///
    /// # Panics
    ///
    /// Panics if a stage needs more levels than the whole chain offers,
    /// or the chain runs dry and `bootstrapper` is `None`.
    pub fn eval_encrypted(
        &self,
        pe: &PafEvaluator,
        bootstrapper: Option<&Bootstrapper>,
        ct: &Ciphertext,
    ) -> (Ciphertext, RunStats) {
        let ev = pe.evaluator();
        assert!(
            ev.context().slots().is_multiple_of(self.dim),
            "pipeline dim {} must divide slot count {}",
            self.dim,
            ev.context().slots()
        );
        let start = Instant::now();
        let mut stats = RunStats {
            stage_levels: Vec::with_capacity(self.stages.len()),
            bootstraps: 0,
            final_level: 0,
            wall: Duration::ZERO,
        };
        let max_level = ev.context().max_level();
        // Refreshes `v` when it cannot afford `need` more levels. The
        // `need` must be an *atomic* depth (a single PAF evaluation at
        // most) — larger stages refresh between their atomic ops.
        let ensure = |v: Ciphertext, need: usize, label: &str, stats: &mut RunStats| {
            assert!(
                need <= max_level,
                "atomic op in `{label}` needs {need} levels but the chain only has {max_level}"
            );
            if v.level() >= need {
                return v;
            }
            match bootstrapper {
                Some(bs) => {
                    stats.bootstraps += 1;
                    bs.refresh(&v)
                }
                None => panic!(
                    "level exhausted before `{label}` ({} < {need}); supply a Bootstrapper",
                    v.level()
                ),
            }
        };
        let mut acc = ct.clone();
        for stage in &self.stages {
            let label = stage.label();
            let before = acc.level();
            let refreshes_before = stats.bootstraps;
            acc = match stage {
                Stage::Affine { mat, bias } => {
                    let v = ensure(acc, 1, &label, &mut stats);
                    let y = ev.matvec_bsgs(mat, &v);
                    ev.add_bias_replicated(&y, bias)
                }
                Stage::PafRelu {
                    paf,
                    pre_scale,
                    post_scale,
                } => {
                    let mut need = paf.mult_depth() + 1;
                    if *pre_scale != 1.0 {
                        need += 1;
                    }
                    if *post_scale != 1.0 {
                        need += 1;
                    }
                    let mut v = ensure(acc, need, &label, &mut stats);
                    if *pre_scale != 1.0 {
                        v = ev.mul_const(&v, *pre_scale);
                    }
                    v = pe.relu(&v, paf);
                    if *post_scale != 1.0 {
                        v = ev.mul_const(&v, *post_scale);
                    }
                    v
                }
                Stage::PafMax {
                    taps,
                    paf,
                    post_scale,
                } => {
                    let v = ensure(acc, 1, &label, &mut stats);
                    let mut items: Vec<Ciphertext> =
                        taps.iter().map(|t| ev.matvec_bsgs(t, &v)).collect();
                    let fold_need = paf.mult_depth() + 1;
                    // Pairwise tree fold with per-round refresh; all
                    // items sit at the same level each round.
                    while items.len() > 1 {
                        if items[0].level() < fold_need {
                            match bootstrapper {
                                Some(bs) => {
                                    stats.bootstraps += items.len();
                                    items = items.iter().map(|c| bs.refresh(c)).collect();
                                }
                                None => panic!(
                                    "level exhausted inside `{label}`; supply a Bootstrapper"
                                ),
                            }
                        }
                        let mut next = Vec::with_capacity(items.len().div_ceil(2));
                        let mut it = items.into_iter();
                        while let Some(a) = it.next() {
                            match it.next() {
                                Some(b) => next.push(pe.max(&a, &b, paf)),
                                None => next.push(a),
                            }
                        }
                        items = next;
                    }
                    let mut m = items.pop().expect("at least one tap");
                    if *post_scale != 1.0 {
                        m = ensure(m, 1, &label, &mut stats);
                        m = ev.mul_const(&m, *post_scale);
                    }
                    m
                }
            };
            // Measured consumption when the stage ran without a
            // refresh; the nominal stage depth otherwise (a refresh
            // resets the level mid-stage, making the difference
            // meaningless).
            let consumed = if stats.bootstraps == refreshes_before {
                before - acc.level()
            } else {
                stage.levels()
            };
            stats.stage_levels.push(consumed);
        }
        stats.final_level = acc.level();
        stats.wall = start.elapsed();
        (acc, stats)
    }
}

#[cfg(test)]
mod tests {
    use crate::pipeline::PipelineBuilder;
    use smartpaf_ckks::{Bootstrapper, CkksParams, Evaluator, KeyChain, PafEvaluator};
    use smartpaf_nn::{Conv2d, Flatten, Linear};
    use smartpaf_polyfit::{CompositePaf, PafForm};
    use smartpaf_tensor::Rng64;

    fn setup(seed: u64) -> (PafEvaluator, Rng64) {
        let ctx = CkksParams::toy().build();
        let mut rng = Rng64::new(seed);
        let keys = KeyChain::generate(&ctx, &mut rng);
        (PafEvaluator::new(Evaluator::new(&keys)), rng)
    }

    #[test]
    fn encrypted_affine_matches_plain() {
        let (pe, mut rng) = setup(61);
        let pipe = PipelineBuilder::new(&[8])
            .affine(Linear::new(8, 8, &mut rng))
            .compile();
        let x: Vec<f64> = (0..8).map(|i| (i as f64 - 4.0) / 4.0).collect();
        let ct = pe
            .evaluator()
            .encrypt_replicated(&pipe.pad_input(&x), &mut rng);
        let (out_ct, stats) = pipe.eval_encrypted(&pe, None, &ct);
        let got = pe.evaluator().decrypt_values(&out_ct, 8);
        let want = pipe.eval_plain(&x);
        for i in 0..8 {
            assert!(
                (got[i] - want[i]).abs() < 2e-2,
                "slot {i}: {} vs {}",
                got[i],
                want[i]
            );
        }
        assert_eq!(stats.total_levels(), 1);
        assert_eq!(stats.bootstraps, 0);
    }

    #[test]
    fn encrypted_relu_pipeline_matches_plain() {
        let (pe, mut rng) = setup(62);
        let paf = CompositePaf::from_form(PafForm::F1G2);
        let pipe = PipelineBuilder::new(&[8])
            .affine(Linear::new(8, 8, &mut rng))
            .paf_relu(&paf, 4.0)
            .affine(Linear::new(8, 4, &mut rng))
            .compile()
            .fold_scales();
        let x: Vec<f64> = (0..8).map(|i| (i as f64 - 3.0) / 3.0).collect();
        let ct = pe
            .evaluator()
            .encrypt_replicated(&pipe.pad_input(&x), &mut rng);
        let (out_ct, stats) = pipe.eval_encrypted(&pe, None, &ct);
        let got = pe.evaluator().decrypt_values(&out_ct, 4);
        let want = pipe.eval_plain(&x);
        for i in 0..4 {
            assert!(
                (got[i] - want[i]).abs() < 6e-2,
                "slot {i}: {} vs {}",
                got[i],
                want[i]
            );
        }
        assert_eq!(stats.total_levels(), pipe.total_levels());
    }

    #[test]
    fn encrypted_cnn_with_conv_matches_plain() {
        let (pe, mut rng) = setup(63);
        let paf = CompositePaf::from_form(PafForm::F1G2);
        let pipe = PipelineBuilder::new(&[1, 4, 4])
            .affine(Conv2d::new(1, 2, 3, 1, 1, &mut rng))
            .paf_relu(&paf, 6.0)
            .affine(Flatten::new())
            .affine(Linear::new(32, 4, &mut rng))
            .compile()
            .fold_scales();
        let x: Vec<f64> = (0..16).map(|i| ((i % 5) as f64 - 2.0) / 2.0).collect();
        let ct = pe
            .evaluator()
            .encrypt_replicated(&pipe.pad_input(&x), &mut rng);
        let (out_ct, _) = pipe.eval_encrypted(&pe, None, &ct);
        let got = pe.evaluator().decrypt_values(&out_ct, 4);
        let want = pipe.eval_plain(&x);
        for i in 0..4 {
            assert!(
                (got[i] - want[i]).abs() < 0.1,
                "slot {i}: {} vs {}",
                got[i],
                want[i]
            );
        }
    }

    #[test]
    fn bootstrap_triggers_when_chain_runs_dry() {
        let (pe, mut rng) = setup(64);
        let paf = CompositePaf::from_form(PafForm::F1G2); // depth 5
                                                          // Three PAF blocks at depth 7 each + affines exceed the toy
                                                          // chain (12 levels), forcing at least one refresh.
        let mut b = PipelineBuilder::new(&[4]);
        for _ in 0..3 {
            b = b.affine(Linear::new(4, 4, &mut rng)).paf_relu(&paf, 2.0);
        }
        let pipe = b.compile().fold_scales();
        assert!(pipe.total_levels() > 12);
        let bs = Bootstrapper::new(pe.evaluator().clone(), pipe.dim(), 5);
        let x = [0.2, -0.4, 0.6, -0.8];
        let ct = pe
            .evaluator()
            .encrypt_replicated(&pipe.pad_input(&x), &mut rng);
        let (out_ct, stats) = pipe.eval_encrypted(&pe, Some(&bs), &ct);
        assert!(stats.bootstraps >= 1);
        assert_eq!(stats.bootstraps, bs.refresh_count());
        let got = pe.evaluator().decrypt_values(&out_ct, 4);
        let want = pipe.eval_plain(&x);
        for i in 0..4 {
            assert!(
                (got[i] - want[i]).abs() < 0.15,
                "slot {i}: {} vs {}",
                got[i],
                want[i]
            );
        }
    }

    #[test]
    #[should_panic(expected = "level exhausted")]
    fn no_bootstrapper_panics_on_exhaustion() {
        let (pe, mut rng) = setup(65);
        let paf = CompositePaf::from_form(PafForm::F1G2);
        let mut b = PipelineBuilder::new(&[4]);
        for _ in 0..3 {
            b = b.affine(Linear::new(4, 4, &mut rng)).paf_relu(&paf, 2.0);
        }
        let pipe = b.compile();
        let ct = pe
            .evaluator()
            .encrypt_replicated(&pipe.pad_input(&[0.1; 4]), &mut rng);
        let _ = pipe.eval_encrypted(&pe, None, &ct);
    }

    #[test]
    fn encrypted_maxpool_matches_plain() {
        let (pe, mut rng) = setup(66);
        let paf = CompositePaf::from_form(PafForm::Alpha7);
        let pipe = PipelineBuilder::new(&[1, 4, 4])
            .paf_maxpool(2, 2, &paf, 4.0)
            .compile();
        let x: Vec<f64> = (0..16).map(|i| ((i * 3) % 7) as f64 / 2.0 - 1.5).collect();
        let ct = pe
            .evaluator()
            .encrypt_replicated(&pipe.pad_input(&x), &mut rng);
        // 1 + 2·(depth+1) = 15 levels > the toy chain's 12: the fold
        // must refresh mid-stage.
        let bs = Bootstrapper::new(pe.evaluator().clone(), pipe.dim(), 3);
        let (out_ct, stats) = pipe.eval_encrypted(&pe, Some(&bs), &ct);
        assert!(stats.bootstraps >= 1);
        let got = pe.evaluator().decrypt_values(&out_ct, 4);
        let want = pipe.eval_plain(&x);
        for i in 0..4 {
            assert!(
                (got[i] - want[i]).abs() < 0.15,
                "slot {i}: {} vs {}",
                got[i],
                want[i]
            );
        }
    }
}
