//! Window-tap selection matrices for encrypted max pooling.
//!
//! A `k×k` stride-`s` max pool over a `(C, H, W)` activation is
//! expressed as `k²` sparse 0/1 selection matrices ("taps"), one per
//! window offset: tap `(dy, dx)` maps flattened input position
//! `(c, oy·s+dy, ox·s+dx)` to flattened output position `(c, oy, ox)`.
//! The encrypted max then folds the `k²` tap ciphertexts through the
//! PAF max operator — the nested composition whose error accumulation
//! the paper quantifies in §5.4.3.

use smartpaf_ckks::DiagMatrix;

/// Builds the `k²` tap selection matrices for a `k×k` stride-`stride`
/// pool over a `(channels, height, width)` input, padded to `dim`.
///
/// Returns `(taps, out_shape)`.
///
/// # Panics
///
/// Panics if the window does not tile the input exactly, or the
/// flattened input/output exceed `dim`.
pub fn pool_taps(
    shape: &[usize],
    k: usize,
    stride: usize,
    dim: usize,
) -> (Vec<DiagMatrix>, Vec<usize>) {
    assert_eq!(shape.len(), 3, "expected (C, H, W) shape");
    let (c, h, w) = (shape[0], shape[1], shape[2]);
    assert!(k >= 1 && stride >= 1, "degenerate pool spec");
    assert!(
        h >= k && (h - k).is_multiple_of(stride) && w >= k && (w - k).is_multiple_of(stride),
        "pool window must tile the input exactly ({h}x{w}, k={k}, stride={stride})"
    );
    let ho = (h - k) / stride + 1;
    let wo = (w - k) / stride + 1;
    let in_dim = c * h * w;
    let out_dim = c * ho * wo;
    assert!(in_dim <= dim && out_dim <= dim, "shape exceeds padded dim");

    let mut taps = Vec::with_capacity(k * k);
    for dy in 0..k {
        for dx in 0..k {
            let mut rows = vec![vec![0.0f64; in_dim]; out_dim];
            for ci in 0..c {
                for oy in 0..ho {
                    for ox in 0..wo {
                        let out_idx = (ci * ho + oy) * wo + ox;
                        let iy = oy * stride + dy;
                        let ix = ox * stride + dx;
                        let in_idx = (ci * h + iy) * w + ix;
                        rows[out_idx][in_idx] = 1.0;
                    }
                }
            }
            taps.push(DiagMatrix::from_rows_with_dim(&rows, dim));
        }
    }
    (taps, vec![c, ho, wo])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plain_pool_max(x: &[f64], shape: &[usize], k: usize, stride: usize) -> Vec<f64> {
        let (c, h, w) = (shape[0], shape[1], shape[2]);
        let ho = (h - k) / stride + 1;
        let wo = (w - k) / stride + 1;
        let mut out = vec![f64::NEG_INFINITY; c * ho * wo];
        for ci in 0..c {
            for oy in 0..ho {
                for ox in 0..wo {
                    let o = (ci * ho + oy) * wo + ox;
                    for dy in 0..k {
                        for dx in 0..k {
                            let v = x[(ci * h + oy * stride + dy) * w + ox * stride + dx];
                            if v > out[o] {
                                out[o] = v;
                            }
                        }
                    }
                }
            }
        }
        out
    }

    #[test]
    fn taps_cover_every_window_position() {
        let shape = [2usize, 4, 4];
        let dim = 32;
        let (taps, out_shape) = pool_taps(&shape, 2, 2, dim);
        assert_eq!(taps.len(), 4);
        assert_eq!(out_shape, vec![2, 2, 2]);
        // Exact max via taking elementwise max across tap outputs must
        // equal a direct max pool.
        let x: Vec<f64> = (0..32).map(|i| ((i * 37) % 23) as f64 - 11.0).collect();
        let mut padded = x.clone();
        padded.resize(dim, 0.0);
        let mut folded = vec![f64::NEG_INFINITY; dim];
        for tap in &taps {
            let sel = tap.apply_plain(&padded);
            for (f, s) in folded.iter_mut().zip(&sel) {
                *f = f.max(*s);
            }
        }
        let want = plain_pool_max(&x, &shape, 2, 2);
        for (i, w) in want.iter().enumerate() {
            assert!((folded[i] - w).abs() < 1e-12, "pos {i}");
        }
    }

    #[test]
    fn taps_are_sparse_selections() {
        let (taps, _) = pool_taps(&[1, 4, 4], 2, 2, 16);
        for tap in &taps {
            assert!(tap.density() <= 4.0 / 16.0);
        }
    }

    #[test]
    fn stride_one_overlapping_windows() {
        let shape = [1usize, 3, 3];
        let (taps, out_shape) = pool_taps(&shape, 2, 1, 16);
        assert_eq!(out_shape, vec![1, 2, 2]);
        assert_eq!(taps.len(), 4);
        let x: Vec<f64> = (0..9).map(|i| i as f64).collect();
        let mut padded = x.clone();
        padded.resize(16, 0.0);
        let mut folded = [f64::NEG_INFINITY; 16];
        for tap in &taps {
            let sel = tap.apply_plain(&padded);
            for (f, s) in folded.iter_mut().zip(&sel) {
                *f = f.max(*s);
            }
        }
        assert_eq!(&folded[..4], &[4.0, 5.0, 7.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "tile the input exactly")]
    fn rejects_untileable_window() {
        let _ = pool_taps(&[1, 5, 5], 2, 2, 32);
    }
}
