//! The shared stage interpreter and the [`InferenceBackend`] trait.
//!
//! A compiled [`HePipeline`] is a list of [`Stage`]s; *how* each stage
//! executes — batched `f64` arithmetic, leveled CKKS, or a pure cost
//! trace — is a backend concern. This module owns the single
//! interpreter loop ([`HePipeline::run`]) that walks the stage list,
//! delegates every operation to an [`InferenceBackend`], and does the
//! level/bootstrap bookkeeping that used to be duplicated between
//! `eval_plain` and `eval_encrypted`. The three backends live in
//! [`crate::backends`]; the threaded batch driver in [`crate::batch`].

use crate::pipeline::{HePipeline, Stage};
use smartpaf_ckks::{DiagMatrix, PafEvaluator};
use smartpaf_polyfit::{CompositeEval, CompositePaf};
use std::fmt;
use std::time::{Duration, Instant};

/// Typed failure of pipeline compilation or execution.
///
/// The legacy `panic!`/`assert!` exits of `eval_encrypted` and
/// `PipelineBuilder::compile` map onto these variants; the panicking
/// entry points remain as thin wrappers whose messages are exactly the
/// `Display` strings below.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The builder was compiled with no stages.
    EmptyPipeline,
    /// A max pool was applied to a non-`(C, H, W)` activation.
    NotChw {
        /// The offending shape.
        dims: Vec<usize>,
    },
    /// A pool window does not tile its input exactly.
    PoolUntileable {
        /// Input height.
        h: usize,
        /// Input width.
        w: usize,
        /// Window size.
        k: usize,
        /// Window stride.
        stride: usize,
    },
    /// An input vector exceeds the pipeline's logical input dimension.
    InputTooLong {
        /// Supplied length.
        len: usize,
        /// Maximum accepted length.
        max: usize,
    },
    /// The pipeline's padded dimension does not divide the ciphertext
    /// slot count, so replicated packing cannot hold the activation.
    SlotMismatch {
        /// Pipeline padded dimension.
        dim: usize,
        /// Ciphertext slot count.
        slots: usize,
    },
    /// The modulus chain ran dry and no bootstrapper was supplied.
    OutOfLevels {
        /// Label of the stage that could not start (or continue).
        label: String,
        /// Levels still available.
        available: usize,
        /// Levels the next atomic operation needs.
        needed: usize,
        /// True when the exhaustion happened inside a stage (a
        /// max-pool fold round), false at a stage boundary.
        mid_stage: bool,
    },
    /// A single atomic operation needs more levels than the whole
    /// modulus chain offers — no amount of bootstrapping helps.
    AtomicDepthExceeded {
        /// Label of the offending stage.
        label: String,
        /// Levels the atomic operation needs.
        needed: usize,
        /// Total levels the chain offers.
        max_level: usize,
    },
    /// A per-stage PAF form vector's length does not match the
    /// pipeline's PAF slot count
    /// ([`HePipeline::try_with_pafs`](crate::HePipeline::try_with_pafs)).
    FormCountMismatch {
        /// PAF slots the pipeline has.
        expected: usize,
        /// Composites the caller supplied.
        got: usize,
    },
    /// A batch worker panicked while evaluating an input. The panic is
    /// contained by [`BatchRunner`](crate::BatchRunner) so a long-lived
    /// serving process survives one poisoned input; results from the
    /// rest of the batch are discarded.
    WorkerPanicked,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::EmptyPipeline => f.write_str("empty pipeline"),
            RunError::NotChw { dims } => {
                write!(f, "max pool needs a (C,H,W) input, got {dims:?}")
            }
            RunError::PoolUntileable { h, w, k, stride } => write!(
                f,
                "pool window must tile the input exactly ({h}x{w}, k={k}, stride={stride})"
            ),
            RunError::InputTooLong { len, max } => {
                write!(f, "input too long ({len} > {max})")
            }
            RunError::SlotMismatch { dim, slots } => {
                write!(f, "pipeline dim {dim} must divide slot count {slots}")
            }
            RunError::OutOfLevels {
                label,
                available,
                needed,
                mid_stage,
            } => {
                if *mid_stage {
                    write!(
                        f,
                        "level exhausted inside `{label}` ({available} < {needed}); \
                         supply a Bootstrapper"
                    )
                } else {
                    write!(
                        f,
                        "level exhausted before `{label}` ({available} < {needed}); \
                         supply a Bootstrapper"
                    )
                }
            }
            RunError::AtomicDepthExceeded {
                label,
                needed,
                max_level,
            } => write!(
                f,
                "atomic op in `{label}` needs {needed} levels but the chain only has {max_level}"
            ),
            RunError::FormCountMismatch { expected, got } => write!(
                f,
                "form vector has {got} composite(s) but the pipeline has {expected} PAF slot(s)"
            ),
            RunError::WorkerPanicked => {
                f.write_str("a batch worker panicked; the batch was discarded")
            }
        }
    }
}

impl RunError {
    /// True when the failure means the configuration can *never*
    /// execute on this modulus chain ([`RunError::AtomicDepthExceeded`])
    /// — no bootstrap schedule helps. Planners use this to drop a
    /// candidate form from the search instead of aborting the whole
    /// plan; every other variant is a real error worth surfacing.
    pub fn is_infeasible_form(&self) -> bool {
        matches!(self, RunError::AtomicDepthExceeded { .. })
    }
}

impl std::error::Error for RunError {}

/// Execution statistics of one pipeline run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Levels consumed per stage, in order. Backends without level
    /// semantics (the plain backend) report each stage's nominal
    /// [`Stage::levels`].
    pub stage_levels: Vec<usize>,
    /// Bootstraps (simulated refreshes) triggered.
    pub bootstraps: usize,
    /// Remaining rescale budget after the last stage (0 for backends
    /// without level semantics).
    pub final_level: usize,
    /// Wall-clock time of the evaluation.
    pub wall: Duration,
}

impl RunStats {
    /// Total levels consumed across all stages.
    pub fn total_levels(&self) -> usize {
        self.stage_levels.iter().sum()
    }
}

/// One PAF activation as a backend sees it: the composite polynomial
/// (ciphertext-side schedule source) plus the compile-time-prepared
/// plaintext evaluation engine.
pub struct PafOp<'a> {
    /// The composite sign approximation.
    pub paf: &'a CompositePaf,
    /// The prepared plaintext engine (built once at pipeline compile).
    pub engine: &'a CompositeEval,
}

impl PafOp<'_> {
    /// Levels one ReLU / one max-fold round with this PAF consumes —
    /// the ciphertext evaluator's own depth formula, so the backends
    /// can never drift from what [`PafEvaluator`] actually consumes.
    pub fn atomic_depth(&self) -> usize {
        PafEvaluator::relu_depth(self.paf)
    }
}

/// One execution mode of a compiled pipeline.
///
/// The interpreter ([`HePipeline::run`]) calls exactly one method per
/// stage; backends own all representation- and level-specific
/// behaviour. `Value` is the activation representation flowing through
/// the stages: `Vec<f64>` for plain slices, `Ciphertext` for CKKS, and
/// `()` for the arithmetic-free trace.
pub trait InferenceBackend {
    /// The activation representation this backend transforms.
    type Value;

    /// Called once before the first stage; backends validate pipeline
    /// compatibility here (e.g. slot packing).
    fn begin(&mut self, _pipe: &HePipeline) -> Result<(), RunError> {
        Ok(())
    }

    /// Affine stage: `v ← M·v + b`.
    fn affine(
        &mut self,
        v: &mut Self::Value,
        mat: &DiagMatrix,
        bias: &[f64],
        label: &str,
    ) -> Result<(), RunError>;

    /// PAF-ReLU stage with Static Scaling:
    /// `v ← post_scale · paf_relu(pre_scale · v)`.
    fn paf_relu(
        &mut self,
        v: &mut Self::Value,
        op: &PafOp<'_>,
        pre_scale: f64,
        post_scale: f64,
        label: &str,
    ) -> Result<(), RunError>;

    /// PAF max-pool stage: tap selection followed by the pairwise
    /// PAF-max tree fold, then `post_scale`.
    fn paf_max(
        &mut self,
        v: &mut Self::Value,
        taps: &[DiagMatrix],
        op: &PafOp<'_>,
        post_scale: f64,
        label: &str,
    ) -> Result<(), RunError>;

    /// Remaining rescale budget of a value, for backends with level
    /// semantics. The interpreter uses this for per-stage consumption
    /// accounting; `None` falls back to nominal stage depths.
    fn level_of(&self, _v: &Self::Value) -> Option<usize> {
        None
    }

    /// Bootstraps performed so far.
    fn bootstraps(&self) -> usize {
        0
    }
}

impl HePipeline {
    /// Runs the compiled stage list through a backend — the single
    /// interpreter loop behind `eval_plain`, `eval_encrypted`, and the
    /// trace dry run.
    ///
    /// Per-stage level consumption is measured from
    /// [`InferenceBackend::level_of`] when the stage ran without a
    /// refresh, and falls back to the nominal [`Stage::levels`]
    /// otherwise (a refresh resets the level mid-stage, making the
    /// difference meaningless).
    pub fn run<B: InferenceBackend>(
        &self,
        backend: &mut B,
        mut value: B::Value,
    ) -> Result<(B::Value, RunStats), RunError> {
        backend.begin(self)?;
        let start = Instant::now();
        let mut stats = RunStats {
            stage_levels: Vec::with_capacity(self.stages.len()),
            bootstraps: 0,
            final_level: 0,
            wall: Duration::ZERO,
        };
        for (stage, prepared) in self.stages.iter().zip(self.prepared_engines()) {
            let label = stage.label();
            let before = backend.level_of(&value);
            let refreshes_before = backend.bootstraps();
            match stage {
                Stage::Affine { mat, bias } => backend.affine(&mut value, mat, bias, &label)?,
                Stage::PafRelu {
                    paf,
                    pre_scale,
                    post_scale,
                } => {
                    let op = PafOp {
                        paf,
                        engine: prepared.as_deref().expect("PAF stage has an engine"),
                    };
                    backend.paf_relu(&mut value, &op, *pre_scale, *post_scale, &label)?
                }
                Stage::PafMax {
                    taps,
                    paf,
                    post_scale,
                } => {
                    let op = PafOp {
                        paf,
                        engine: prepared.as_deref().expect("PAF stage has an engine"),
                    };
                    backend.paf_max(&mut value, taps, &op, *post_scale, &label)?
                }
            }
            let consumed = match (before, backend.level_of(&value)) {
                (Some(b), Some(a)) if backend.bootstraps() == refreshes_before => b - a,
                _ => stage.levels(),
            };
            stats.stage_levels.push(consumed);
        }
        stats.bootstraps = backend.bootstraps();
        stats.final_level = backend.level_of(&value).unwrap_or(0);
        stats.wall = start.elapsed();
        Ok((value, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_error_display_strings_are_stable() {
        // The panicking wrappers format these errors verbatim; seed
        // tests match on the substrings, so the wording is load-bearing.
        assert_eq!(RunError::EmptyPipeline.to_string(), "empty pipeline");
        let e = RunError::OutOfLevels {
            label: "paf-relu[depth=5]".into(),
            available: 2,
            needed: 6,
            mid_stage: false,
        };
        assert!(e.to_string().contains("level exhausted before"));
        assert!(e.to_string().contains("supply a Bootstrapper"));
        let e = RunError::OutOfLevels {
            label: "paf-max[taps=4 depth=6]".into(),
            available: 2,
            needed: 7,
            mid_stage: true,
        };
        assert!(e.to_string().contains("level exhausted inside"));
        let e = RunError::PoolUntileable {
            h: 5,
            w: 5,
            k: 2,
            stride: 2,
        };
        assert!(e.to_string().contains("tile the input exactly"));
        let e = RunError::SlotMismatch { dim: 64, slots: 96 };
        assert_eq!(e.to_string(), "pipeline dim 64 must divide slot count 96");
        let e = RunError::AtomicDepthExceeded {
            label: "x".into(),
            needed: 9,
            max_level: 8,
        };
        assert!(e.to_string().contains("needs 9 levels"));
        let e = RunError::FormCountMismatch {
            expected: 3,
            got: 1,
        };
        assert_eq!(
            e.to_string(),
            "form vector has 1 composite(s) but the pipeline has 3 PAF slot(s)"
        );
        assert_eq!(
            RunError::WorkerPanicked.to_string(),
            "a batch worker panicked; the batch was discarded"
        );
    }
}
