//! Cross-request slot packing: a ciphertext-level SIMD multiplexer.
//!
//! A compiled pipeline of padded dimension `dim` running on a ring
//! with `slots` slots uses only the first `dim` slots of every
//! replication period — on the default N=4096 ring a dim-64 pipeline
//! wastes 2048−64 slots per encrypted eval. This module packs up to
//! `K = slots / dim` independent same-tenant inputs into one
//! ciphertext at stride `dim` (one *lane* per input), lane-expands the
//! pipeline so a single encrypted eval applies it to every lane at
//! once, and demultiplexes the K outputs afterwards:
//!
//! ```text
//! slots:  |  lane 0  |  lane 1  |  lane 2  |  lane 3  |
//!         |<- dim  ->|<- dim  ->|<- dim  ->|<- dim  ->|
//!  input:   x⁽⁰⁾ pad    x⁽¹⁾ pad    x⁽²⁾ pad    0 (idle)
//! ```
//!
//! - [`SlotLayout`] computes the capacity rule `K = slots / dim` from
//!   a compiled [`HePipeline`] and rejects pipelines whose stages
//!   would rotate across a lane boundary (typed [`PackError`]).
//! - [`PackedBatch`] is the multiplexed flat vector: inputs padded to
//!   the lane stride and concatenated, idle lanes zeroed.
//! - [`LanePacker`] owns the lane-expanded pipeline
//!   ([`HePipeline::expand_lanes`]) plus the packed encode / encrypt /
//!   decrypt paths; its plain eval is bit-identical per lane to the
//!   sequential per-input evals, and the expanded affine stages reuse
//!   the per-matrix diagonal-encoding cache exactly like the base
//!   pipeline.
//!
//! PAF stages are elementwise per slot, so they pack for free; all
//! slot *mixing* in a compiled pipeline happens through
//! [`DiagMatrix`](smartpaf_ckks::DiagMatrix) stages (maxpool window
//! taps included), which
//! [`block_diag`](smartpaf_ckks::DiagMatrix::block_diag) replicates
//! block-diagonally so no rotation ever reads another lane's slots.

use crate::pipeline::{HePipeline, Stage};
use smartpaf_ckks::{Ciphertext, Evaluator};
use smartpaf_tensor::Rng64;
use std::fmt;

/// Typed slot-packing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackError {
    /// The pipeline's padded dimension does not divide the slot count
    /// (or exceeds it): the ciphertext cannot carry even one lane.
    NoCapacity {
        /// Pipeline padded dimension (the would-be lane stride).
        dim: usize,
        /// Ring slot count.
        slots: usize,
    },
    /// More inputs (or requested lanes) than the layout has capacity
    /// for.
    TooManyInputs {
        /// Inputs or lanes requested.
        got: usize,
        /// Lanes available.
        capacity: usize,
    },
    /// An input is longer than the pipeline's logical input dimension.
    InputTooLong {
        /// Offending input length.
        len: usize,
        /// Pipeline input dimension.
        max: usize,
    },
    /// No inputs to pack.
    EmptyBatch,
    /// A stage mixes slots at a stride other than the pipeline's
    /// padded dimension, so its rotations would cross a lane boundary.
    /// Compiled pipelines share one slot layout across stages, so this
    /// is a defensive check; it cannot fire for `PipelineBuilder`
    /// output.
    LaneCrossing {
        /// Label of the offending stage.
        stage: String,
        /// The stage matrix's slot stride.
        mat_dim: usize,
        /// The lane stride it would have to respect.
        dim: usize,
    },
}

impl fmt::Display for PackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackError::NoCapacity { dim, slots } => write!(
                f,
                "pipeline dim {dim} must divide slot count {slots}: no packing capacity"
            ),
            PackError::TooManyInputs { got, capacity } => {
                write!(f, "{got} inputs exceed the slot-packing capacity {capacity}")
            }
            PackError::InputTooLong { len, max } => {
                write!(f, "input length {len} exceeds pipeline input dim {max}")
            }
            PackError::EmptyBatch => write!(f, "cannot pack an empty batch"),
            PackError::LaneCrossing { stage, mat_dim, dim } => write!(
                f,
                "stage `{stage}` mixes slots at stride {mat_dim}, crossing the {dim}-slot lane boundary"
            ),
        }
    }
}

impl std::error::Error for PackError {}

/// The slot layout of a packed ciphertext: lane stride, logical
/// input/output widths, and the capacity rule `K = slots / dim`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotLayout {
    dim: usize,
    input_dim: usize,
    output_dim: usize,
    slots: usize,
    capacity: usize,
}

impl SlotLayout {
    /// Computes the layout for `pipe` on a ring with `slots` slots.
    ///
    /// Fails with [`PackError::NoCapacity`] when the padded dimension
    /// does not divide the slot count, and with
    /// [`PackError::LaneCrossing`] if any stage mixes slots at a
    /// stride other than the pipeline dimension (a defensive check —
    /// compiled pipelines share one slot layout across stages).
    pub fn for_pipeline(pipe: &HePipeline, slots: usize) -> Result<SlotLayout, PackError> {
        let capacity = pipe.lane_capacity(slots);
        if capacity == 0 {
            return Err(PackError::NoCapacity {
                dim: pipe.dim(),
                slots,
            });
        }
        for stage in pipe.stages() {
            let mats: &[smartpaf_ckks::DiagMatrix] = match stage {
                Stage::Affine { mat, .. } => std::slice::from_ref(mat),
                Stage::PafMax { taps, .. } => taps,
                Stage::PafRelu { .. } => &[],
            };
            for mat in mats {
                if mat.dim() != pipe.dim() {
                    return Err(PackError::LaneCrossing {
                        stage: stage.label(),
                        mat_dim: mat.dim(),
                        dim: pipe.dim(),
                    });
                }
            }
        }
        Ok(SlotLayout {
            dim: pipe.dim(),
            input_dim: pipe.input_dim(),
            output_dim: pipe.output_dim(),
            slots,
            capacity,
        })
    }

    /// Lane capacity `K = slots / dim` (always a power of two).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The lane stride: the pipeline's padded dimension.
    pub fn lane_stride(&self) -> usize {
        self.dim
    }

    /// Logical per-input width (pre-padding).
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Logical per-output width.
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// Ring slot count the layout was computed for.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// The smallest power-of-two lane count that fits `count` inputs.
    pub fn lanes_for(&self, count: usize) -> Result<usize, PackError> {
        if count == 0 {
            return Err(PackError::EmptyBatch);
        }
        if count > self.capacity {
            return Err(PackError::TooManyInputs {
                got: count,
                capacity: self.capacity,
            });
        }
        Ok(count.next_power_of_two())
    }
}

/// A slot-multiplexed batch: up to `lanes` inputs padded to the lane
/// stride and concatenated into one flat vector, idle lanes zeroed.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedBatch {
    layout: SlotLayout,
    lanes: usize,
    count: usize,
    values: Vec<f64>,
}

impl PackedBatch {
    /// Packs `inputs` into `lanes` slot lanes under `layout`.
    ///
    /// `lanes` must be a power of two within the layout's capacity;
    /// [`SlotLayout::lanes_for`] picks the smallest such count.
    pub fn pack(
        layout: &SlotLayout,
        lanes: usize,
        inputs: &[Vec<f64>],
    ) -> Result<PackedBatch, PackError> {
        assert!(lanes.is_power_of_two(), "lanes must be a power of two");
        if lanes > layout.capacity {
            return Err(PackError::TooManyInputs {
                got: lanes,
                capacity: layout.capacity,
            });
        }
        if inputs.is_empty() {
            return Err(PackError::EmptyBatch);
        }
        if inputs.len() > lanes {
            return Err(PackError::TooManyInputs {
                got: inputs.len(),
                capacity: lanes,
            });
        }
        let mut values = vec![0.0; lanes * layout.dim];
        for (l, x) in inputs.iter().enumerate() {
            if x.len() > layout.input_dim {
                return Err(PackError::InputTooLong {
                    len: x.len(),
                    max: layout.input_dim,
                });
            }
            values[l * layout.dim..l * layout.dim + x.len()].copy_from_slice(x);
        }
        Ok(PackedBatch {
            layout: *layout,
            lanes,
            count: inputs.len(),
            values,
        })
    }

    /// The layout this batch was packed under.
    pub fn layout(&self) -> &SlotLayout {
        &self.layout
    }

    /// Lane count of the multiplexed vector (power of two).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of real inputs packed (the rest of the lanes are idle).
    pub fn count(&self) -> usize {
        self.count
    }

    /// Slot-fill of this batch: real inputs over lanes carried.
    pub fn fill(&self) -> f64 {
        self.count as f64 / self.lanes as f64
    }

    /// The multiplexed flat vector, `lanes · lane_stride` long.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Demultiplexes a flat lane-expanded output back into one
    /// `output_dim`-wide vector per *real* input (idle lanes are
    /// dropped).
    ///
    /// # Panics
    ///
    /// Panics if `flat` is shorter than the packed extent.
    pub fn unpack(&self, flat: &[f64]) -> Vec<Vec<f64>> {
        assert!(
            flat.len() >= (self.lanes - 1) * self.layout.dim + self.layout.output_dim,
            "flat output shorter than the packed extent"
        );
        (0..self.count)
            .map(|l| {
                flat[l * self.layout.dim..l * self.layout.dim + self.layout.output_dim].to_vec()
            })
            .collect()
    }
}

/// The packed execution engine: a [`SlotLayout`] plus the
/// lane-expanded pipeline and the packed encrypt / decrypt paths.
///
/// The expansion cost (block-diagonal matrices, fresh encoding caches)
/// is paid once per `(pipeline, lanes)` pair; callers cache one
/// `LanePacker` per lane count they serve.
pub struct LanePacker {
    layout: SlotLayout,
    lanes: usize,
    expanded: HePipeline,
}

impl LanePacker {
    /// Builds a packer for `pipe` on a `slots`-slot ring carrying
    /// `lanes` inputs per ciphertext.
    pub fn new(pipe: &HePipeline, slots: usize, lanes: usize) -> Result<LanePacker, PackError> {
        let layout = SlotLayout::for_pipeline(pipe, slots)?;
        if !lanes.is_power_of_two() || lanes > layout.capacity() {
            return Err(PackError::TooManyInputs {
                got: lanes,
                capacity: layout.capacity(),
            });
        }
        Ok(LanePacker {
            layout,
            lanes,
            expanded: pipe.expand_lanes(lanes),
        })
    }

    /// The slot layout (of the *base* pipeline).
    pub fn layout(&self) -> &SlotLayout {
        &self.layout
    }

    /// Lanes carried per ciphertext.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The lane-expanded pipeline (padded dim `lanes · lane_stride`).
    pub fn expanded(&self) -> &HePipeline {
        &self.expanded
    }

    /// Packs `inputs` into this packer's lane count.
    pub fn pack(&self, inputs: &[Vec<f64>]) -> Result<PackedBatch, PackError> {
        PackedBatch::pack(&self.layout, self.lanes, inputs)
    }

    /// Evaluates the packed batch on the plain backend and
    /// demultiplexes: bit-identical per lane to sequential
    /// [`HePipeline::eval_plain`] calls on each input.
    pub fn eval_plain(&self, batch: &PackedBatch) -> Vec<Vec<f64>> {
        batch.unpack(&self.expanded.eval_plain(batch.values()))
    }

    /// Encrypts the multiplexed vector (replicated across the ring, so
    /// full-ring rotations act cyclically on the lane-expanded
    /// layout).
    pub fn encrypt(&self, batch: &PackedBatch, ev: &Evaluator, rng: &mut Rng64) -> Ciphertext {
        ev.encrypt_replicated(batch.values(), rng)
    }

    /// Decrypts a packed output ciphertext and demultiplexes it into
    /// one `output_dim`-wide vector per real input of `batch`.
    pub fn decrypt(&self, ct: &Ciphertext, batch: &PackedBatch, ev: &Evaluator) -> Vec<Vec<f64>> {
        let pt = ev.decrypt(ct);
        let lanes = ev.encoder().decode_lanes(
            &pt,
            self.lanes,
            self.layout.lane_stride(),
            self.layout.output_dim(),
        );
        lanes.into_iter().take(batch.count()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineBuilder;
    use smartpaf_ckks::{CkksParams, Evaluator, KeyChain, PafEvaluator};
    use smartpaf_nn::{Conv2d, Flatten, Linear};
    use smartpaf_polyfit::{CompositePaf, PafForm};
    use smartpaf_tensor::Rng64;

    fn demo_pipeline(seed: u64) -> HePipeline {
        let mut rng = Rng64::new(seed);
        let paf = CompositePaf::from_form(PafForm::F1G2);
        PipelineBuilder::new(&[1, 4, 4])
            .affine(Conv2d::new(1, 1, 3, 1, 1, &mut rng))
            .paf_relu(&paf, 4.0)
            .paf_maxpool(2, 2, &paf, 4.0)
            .affine(Flatten::new())
            .affine(Linear::new(4, 4, &mut rng))
            .compile()
    }

    fn inputs(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|l| {
                (0..16)
                    .map(|i| ((i * 5 + l * 7) % 11) as f64 / 4.0 - 1.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn layout_computes_capacity_from_the_pipeline() {
        let pipe = demo_pipeline(61);
        let layout = SlotLayout::for_pipeline(&pipe, 128).expect("fits");
        assert_eq!(layout.lane_stride(), 16);
        assert_eq!(layout.capacity(), 8);
        assert_eq!(layout.input_dim(), 16);
        assert_eq!(layout.output_dim(), 4);
        assert_eq!(layout.lanes_for(3), Ok(4));
        assert_eq!(layout.lanes_for(8), Ok(8));
        assert_eq!(layout.lanes_for(0), Err(PackError::EmptyBatch));
        assert_eq!(
            layout.lanes_for(9),
            Err(PackError::TooManyInputs {
                got: 9,
                capacity: 8
            })
        );
        // A ring smaller than the pipeline has no capacity at all.
        let err = SlotLayout::for_pipeline(&pipe, 8).expect_err("dim > slots");
        assert_eq!(err, PackError::NoCapacity { dim: 16, slots: 8 });
        assert!(err.to_string().contains("no packing capacity"));
    }

    #[test]
    fn pack_round_trips_lane_values() {
        let pipe = demo_pipeline(62);
        let layout = SlotLayout::for_pipeline(&pipe, 128).expect("fits");
        let xs = inputs(3);
        let batch = PackedBatch::pack(&layout, 4, &xs).expect("packs");
        assert_eq!(batch.lanes(), 4);
        assert_eq!(batch.count(), 3);
        assert!((batch.fill() - 0.75).abs() < 1e-12);
        assert_eq!(batch.values().len(), 4 * 16);
        // Lane l carries input l; the idle lane is zero.
        for (l, x) in xs.iter().enumerate() {
            assert_eq!(&batch.values()[l * 16..l * 16 + 16], x.as_slice());
        }
        assert!(batch.values()[3 * 16..].iter().all(|&v| v == 0.0));
        // Unpacking the input vector itself returns the output-width
        // prefixes of the real lanes.
        let outs = batch.unpack(batch.values());
        assert_eq!(outs.len(), 3);
        assert_eq!(outs[1], xs[1][..4].to_vec());
    }

    #[test]
    fn pack_reports_typed_errors() {
        let pipe = demo_pipeline(63);
        let layout = SlotLayout::for_pipeline(&pipe, 128).expect("fits");
        assert_eq!(
            PackedBatch::pack(&layout, 4, &[]),
            Err(PackError::EmptyBatch)
        );
        assert_eq!(
            PackedBatch::pack(&layout, 4, &inputs(5)),
            Err(PackError::TooManyInputs {
                got: 5,
                capacity: 4
            })
        );
        assert_eq!(
            PackedBatch::pack(&layout, 16, &inputs(2)),
            Err(PackError::TooManyInputs {
                got: 16,
                capacity: 8
            })
        );
        let long = vec![vec![0.0; 17]];
        assert_eq!(
            PackedBatch::pack(&layout, 4, &long),
            Err(PackError::InputTooLong { len: 17, max: 16 })
        );
    }

    #[test]
    fn packed_plain_eval_is_bit_identical_to_sequential() {
        let pipe = demo_pipeline(64);
        let packer = LanePacker::new(&pipe, 128, 4).expect("builds");
        let xs = inputs(3);
        let batch = packer.pack(&xs).expect("packs");
        let got = packer.eval_plain(&batch);
        assert_eq!(got.len(), 3);
        for (x, out) in xs.iter().zip(&got) {
            let want = pipe.eval_plain(x);
            assert_eq!(
                out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "packed lane must match the sequential eval bit for bit"
            );
        }
    }

    #[test]
    fn packed_encrypted_eval_matches_sequential_within_noise() {
        let pipe = demo_pipeline(65);
        let ctx = CkksParams::toy().build();
        let mut rng = Rng64::new(66);
        let keys = KeyChain::generate(&ctx, &mut rng);
        let pe = PafEvaluator::new(Evaluator::new(&keys));
        let packer = LanePacker::new(&pipe, ctx.slots(), 4).expect("builds");
        let xs = inputs(4);
        let batch = packer.pack(&xs).expect("packs");
        let bs =
            smartpaf_ckks::Bootstrapper::new(pe.evaluator().clone(), packer.expanded().dim(), 67);
        let ct = packer.encrypt(&batch, pe.evaluator(), &mut rng);
        let (out_ct, _) = packer.expanded().eval_encrypted(&pe, Some(&bs), &ct);
        let got = packer.decrypt(&out_ct, &batch, pe.evaluator());
        assert_eq!(got.len(), 4);
        for (x, out) in xs.iter().zip(&got) {
            let want = pipe.eval_plain(x);
            for (g, w) in out.iter().zip(&want) {
                assert!((g - w).abs() < 0.1, "{g} vs {w}");
            }
        }
    }
}
