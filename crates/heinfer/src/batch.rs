//! Threaded batch execution of a compiled pipeline.
//!
//! [`BatchRunner`] shards a batch of independent inputs across
//! `std::thread` workers. Each worker gets its own backend (one
//! [`PafEvaluator`] clone per worker on the encrypted path), inputs are
//! split into contiguous index ranges, and results come back in input
//! order. On the plain path a 4-thread run is bit-identical to the
//! sequential one, only faster. The encrypted path keeps the same
//! deterministic result *order*, but a shared [`Bootstrapper`] draws
//! its re-encryption randomness from one RNG, so when refreshes fire
//! the exact ciphertext bits (not the decrypted values) depend on
//! thread interleaving.

use crate::backends::{CkksBackend, PlainBackend, TraceBackend};
use crate::exec::{RunError, RunStats};
use crate::pack::LanePacker;
use crate::pipeline::HePipeline;
use smartpaf_ckks::{Bootstrapper, Ciphertext, PafEvaluator};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Result of one batch run: outputs and per-input statistics, both in
/// input order.
#[derive(Debug, Clone)]
pub struct BatchRun<T> {
    /// One output per input, in input order.
    pub outputs: Vec<T>,
    /// Per-input run statistics, parallel to `outputs`.
    pub stats: Vec<RunStats>,
    /// Wall-clock time of the whole batch (including sharding).
    pub wall: Duration,
    /// Worker threads the batch actually used (configured count,
    /// clamped to the number of contiguous shards the batch split
    /// into).
    pub threads: usize,
}

impl<T> BatchRun<T> {
    /// Total bootstraps across the batch.
    pub fn total_bootstraps(&self) -> usize {
        self.stats.iter().map(|s| s.bootstraps).sum()
    }

    /// Total levels consumed across the batch.
    pub fn total_levels(&self) -> usize {
        self.stats.iter().map(RunStats::total_levels).sum()
    }

    /// Inputs processed per second of wall-clock time
    /// (`f64::INFINITY` when the batch was too fast to resolve).
    pub fn throughput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            f64::INFINITY
        } else {
            self.outputs.len() as f64 / secs
        }
    }
}

/// Shards batches of pipeline inputs across worker threads.
///
/// # Example
///
/// ```
/// use smartpaf_heinfer::{BatchRunner, PipelineBuilder};
/// use smartpaf_nn::Linear;
/// use smartpaf_polyfit::{CompositePaf, PafForm};
/// use smartpaf_tensor::Rng64;
///
/// let mut rng = Rng64::new(5);
/// let paf = CompositePaf::from_form(PafForm::F1G2);
/// let pipe = PipelineBuilder::new(&[4])
///     .affine(Linear::new(4, 4, &mut rng))
///     .paf_relu(&paf, 2.0)
///     .compile();
/// let inputs: Vec<Vec<f64>> = (0..8)
///     .map(|i| vec![i as f64 / 4.0 - 1.0; 4])
///     .collect();
/// let run = BatchRunner::new(2).run_plain(&pipe, &inputs).unwrap();
/// assert_eq!(run.outputs.len(), 8);
/// assert_eq!(run.outputs[3], pipe.eval_plain(&inputs[3]));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BatchRunner {
    threads: usize,
}

impl Default for BatchRunner {
    /// Machine-sized runner ([`BatchRunner::auto`]).
    fn default() -> Self {
        BatchRunner::auto()
    }
}

impl BatchRunner {
    /// Creates a runner with the given worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "need at least one worker thread");
        BatchRunner { threads }
    }

    /// Creates a runner sized for this machine: the `SMARTPAF_THREADS`
    /// environment variable when set to a positive integer, otherwise
    /// [`std::thread::available_parallelism`] (falling back to 1 when
    /// the parallelism query fails). Prefer this over hard-coding a
    /// worker count.
    pub fn auto() -> Self {
        Self::auto_from(std::env::var("SMARTPAF_THREADS").ok().as_deref())
    }

    /// The override-parsing core of [`BatchRunner::auto`], taking the
    /// env value as a parameter so tests never mutate process-global
    /// state.
    fn auto_from(override_threads: Option<&str>) -> Self {
        let threads = override_threads
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            });
        BatchRunner::new(threads)
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs a batch of plaintext inputs through the pipeline's plain
    /// backend. Outputs are truncated to the logical output dimension,
    /// exactly like [`HePipeline::eval_plain`].
    pub fn run_plain(
        &self,
        pipe: &HePipeline,
        inputs: &[Vec<f64>],
    ) -> Result<BatchRun<Vec<f64>>, RunError> {
        // Validate every input up front so no thread spawns for a
        // malformed batch.
        let padded: Vec<Vec<f64>> = inputs
            .iter()
            .map(|x| pipe.try_pad_input(x))
            .collect::<Result<_, _>>()?;
        self.run_sharded(
            &padded,
            || PlainBackend,
            |backend, x| {
                let (mut out, stats) = pipe.run(backend, x.clone())?;
                out.truncate(pipe.output_dim());
                Ok((out, stats))
            },
        )
    }

    /// Runs a batch of encrypted inputs, one evaluator clone per
    /// worker. The optional [`Bootstrapper`] is shared — its refresh
    /// counter aggregates across the whole batch.
    pub fn run_encrypted(
        &self,
        pipe: &HePipeline,
        pe: &PafEvaluator,
        bootstrapper: Option<&Bootstrapper>,
        inputs: &[Ciphertext],
    ) -> Result<BatchRun<Ciphertext>, RunError> {
        // Validate the whole batch up front so no evaluator clone or
        // worker thread spawns for a malformed batch — the encrypted
        // twin of `run_plain`'s padding check. The slot-layout check
        // mirrors `CkksBackend::begin`, and a per-ciphertext trace dry
        // run (microseconds each) fails with exactly the error the
        // CKKS backend would otherwise hit mid-shard.
        let ctx = pe.evaluator().context();
        let slots = ctx.slots();
        if !slots.is_multiple_of(pipe.dim()) {
            return Err(RunError::SlotMismatch {
                dim: pipe.dim(),
                slots,
            });
        }
        let max_level = ctx.max_level();
        for ct in inputs {
            let mut trace = TraceBackend::new(max_level, bootstrapper.is_some())
                .with_start_level(ct.level().min(max_level));
            pipe.run(&mut trace, ())?;
        }
        self.run_sharded(
            inputs,
            || pe.clone(),
            |worker_pe, ct| {
                let mut backend = CkksBackend::new(worker_pe, bootstrapper);
                pipe.run(&mut backend, ct.clone())
            },
        )
    }

    /// Runs a batch of slot-packed ciphertexts through a
    /// [`LanePacker`]'s lane-expanded pipeline, sharding the packed
    /// ciphertexts across workers exactly like
    /// [`BatchRunner::run_encrypted`]. Each input ciphertext carries up
    /// to `packer.lanes()` multiplexed inputs (see [`crate::pack`]), so
    /// one entry of `BatchRun::outputs` demultiplexes into a whole
    /// lane-group of results via [`crate::PackedBatch::unpack`].
    pub fn run_packed(
        &self,
        packer: &LanePacker,
        pe: &PafEvaluator,
        bootstrapper: Option<&Bootstrapper>,
        inputs: &[Ciphertext],
    ) -> Result<BatchRun<Ciphertext>, RunError> {
        self.run_encrypted(packer.expanded(), pe, bootstrapper, inputs)
    }

    /// The generic shard-spawn-join loop: contiguous input ranges, one
    /// worker state per thread, results re-assembled in input order.
    fn run_sharded<I, O, W>(
        &self,
        inputs: &[I],
        make_worker: impl Fn() -> W + Sync,
        eval: impl Fn(&mut W, &I) -> Result<(O, RunStats), RunError> + Sync,
    ) -> Result<BatchRun<O>, RunError>
    where
        I: Sync,
        O: Send,
    {
        let start = Instant::now();
        let workers = self.threads.min(inputs.len()).max(1);
        let chunk = inputs.len().div_ceil(workers);
        // Chunk rounding can leave fewer shards than `workers` (e.g.
        // 5 inputs on 4 threads → chunks of 2 → 3 shards); report the
        // count that actually runs.
        let workers = if inputs.is_empty() {
            1
        } else {
            inputs.len().div_ceil(chunk)
        };
        let mut outputs = Vec::with_capacity(inputs.len());
        let mut stats = Vec::with_capacity(inputs.len());
        if workers == 1 {
            // Sequential fast path: no spawn overhead, same code path
            // (including panic containment) the workers run.
            let mut w = catch_unwind(AssertUnwindSafe(&make_worker))
                .map_err(|_| RunError::WorkerPanicked)?;
            for input in inputs {
                let (o, s) = catch_unwind(AssertUnwindSafe(|| eval(&mut w, input)))
                    .unwrap_or(Err(RunError::WorkerPanicked))?;
                outputs.push(o);
                stats.push(s);
            }
        } else {
            // Batch-level shards and intra-op limb parallelism share
            // one thread budget: each shard thread gets an equal slice
            // of this thread's budget so `shards × intra-op workers`
            // never oversubscribes `SMARTPAF_THREADS`.
            let intra = (smartpaf_ckks::par::max_intra_workers() / workers).max(1);
            let shard_results: Vec<Result<Vec<(O, RunStats)>, RunError>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = inputs
                        .chunks(chunk)
                        .map(|shard| {
                            scope.spawn(|| {
                                smartpaf_ckks::par::with_thread_budget(intra, || {
                                    let mut w = make_worker();
                                    shard
                                        .iter()
                                        .map(|input| {
                                            catch_unwind(AssertUnwindSafe(|| eval(&mut w, input)))
                                                .unwrap_or(Err(RunError::WorkerPanicked))
                                        })
                                        .collect::<Result<Vec<_>, _>>()
                                })
                            })
                        })
                        .collect();
                    // `catch_unwind` above contains per-input panics;
                    // the join fallback catches the rest (a panicking
                    // `make_worker`) so one poisoned shard surfaces as
                    // a typed error instead of aborting the process.
                    handles
                        .into_iter()
                        .map(|h| h.join().unwrap_or(Err(RunError::WorkerPanicked)))
                        .collect()
                });
            for shard in shard_results {
                for (o, s) in shard? {
                    outputs.push(o);
                    stats.push(s);
                }
            }
        }
        Ok(BatchRun {
            outputs,
            stats,
            wall: start.elapsed(),
            threads: workers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineBuilder;
    use smartpaf_ckks::{CkksParams, Evaluator, KeyChain};
    use smartpaf_nn::{Conv2d, Flatten, Linear};
    use smartpaf_polyfit::{CompositePaf, PafForm};
    use smartpaf_tensor::Rng64;

    #[test]
    fn shard_workers_split_the_intra_op_budget() {
        // 8-thread budget over 4 shard workers → each shard sees an
        // intra-op budget of 2; the sequential fast path keeps all 8.
        let empty_stats = || RunStats {
            stage_levels: Vec::new(),
            bootstraps: 0,
            final_level: 0,
            wall: Duration::ZERO,
        };
        let inputs: Vec<usize> = (0..8).collect();
        let seen = std::sync::Mutex::new(Vec::new());
        smartpaf_ckks::par::with_thread_budget(8, || {
            BatchRunner::new(4)
                .run_sharded(
                    &inputs,
                    || (),
                    |(), _| {
                        seen.lock()
                            .unwrap()
                            .push(smartpaf_ckks::par::max_intra_workers());
                        Ok((0usize, empty_stats()))
                    },
                )
                .unwrap();
            assert!(seen.lock().unwrap().iter().all(|&b| b == 2));
            seen.lock().unwrap().clear();
            BatchRunner::new(1)
                .run_sharded(
                    &inputs,
                    || (),
                    |(), _| {
                        seen.lock()
                            .unwrap()
                            .push(smartpaf_ckks::par::max_intra_workers());
                        Ok((0usize, empty_stats()))
                    },
                )
                .unwrap();
            assert!(seen.lock().unwrap().iter().all(|&b| b == 8));
        });
    }

    /// An MNIST-scale (downsampled digit) CNN pipeline: conv → PAF-ReLU
    /// → PAF-maxpool → linear head over an 8×8 image.
    fn mnist_scale_pipeline(seed: u64) -> crate::pipeline::HePipeline {
        let mut rng = Rng64::new(seed);
        let relu = CompositePaf::from_form(PafForm::F1G2);
        let pool = CompositePaf::from_form(PafForm::Alpha7);
        PipelineBuilder::new(&[1, 8, 8])
            .affine(Conv2d::new(1, 2, 3, 1, 1, &mut rng))
            .paf_relu(&relu, 6.0)
            .paf_maxpool(2, 2, &pool, 8.0)
            .affine(Flatten::new())
            .affine(Linear::new(32, 10, &mut rng))
            .compile()
            .fold_scales()
    }

    fn batch_inputs(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..64)
                    .map(|j| (((i * 64 + j) * 37) % 41) as f64 / 20.5 - 1.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn four_threads_bit_identical_to_sequential() {
        let pipe = mnist_scale_pipeline(201);
        let inputs = batch_inputs(16);
        let seq = BatchRunner::new(1).run_plain(&pipe, &inputs).unwrap();
        let par = BatchRunner::new(4).run_plain(&pipe, &inputs).unwrap();
        assert_eq!(seq.outputs.len(), 16);
        assert_eq!(par.threads, 4);
        // Bit-identical outputs in the same order...
        for (i, (s, p)) in seq.outputs.iter().zip(&par.outputs).enumerate() {
            assert_eq!(s, p, "input {i} diverged across thread counts");
        }
        // ...and identical stage orderings/consumption per input.
        for (s, p) in seq.stats.iter().zip(&par.stats) {
            assert_eq!(s.stage_levels, p.stage_levels);
        }
        // Both match the single-input entry point exactly.
        for (x, o) in inputs.iter().zip(&seq.outputs) {
            assert_eq!(&pipe.eval_plain(x), o);
        }
    }

    #[test]
    fn thread_counts_beyond_batch_are_clamped() {
        let pipe = mnist_scale_pipeline(202);
        let inputs = batch_inputs(3);
        let run = BatchRunner::new(16).run_plain(&pipe, &inputs).unwrap();
        assert_eq!(run.threads, 3);
        assert_eq!(run.outputs.len(), 3);
        assert!(run.throughput() > 0.0);
    }

    #[test]
    fn auto_runner_honours_env_override() {
        assert_eq!(BatchRunner::auto_from(Some("3")).threads(), 3);
        assert_eq!(BatchRunner::auto_from(Some(" 5 ")).threads(), 5);
        // Unparsable and zero overrides fall back to detection.
        let detected = BatchRunner::auto_from(None).threads();
        assert!(detected >= 1);
        assert_eq!(
            BatchRunner::auto_from(Some("not-a-number")).threads(),
            detected
        );
        assert_eq!(BatchRunner::auto_from(Some("0")).threads(), detected);
        assert!(BatchRunner::default().threads() >= 1);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let pipe = mnist_scale_pipeline(203);
        let run = BatchRunner::new(4).run_plain(&pipe, &[]).unwrap();
        assert!(run.outputs.is_empty());
        assert!(run.stats.is_empty());
    }

    #[test]
    fn malformed_input_is_rejected_before_spawning() {
        let pipe = mnist_scale_pipeline(204);
        let mut inputs = batch_inputs(4);
        inputs[2] = vec![0.0; 65]; // longer than the 8×8 input
        let err = BatchRunner::new(2).run_plain(&pipe, &inputs).unwrap_err();
        assert!(matches!(err, RunError::InputTooLong { len: 65, max: 64 }));
    }

    #[test]
    fn encrypted_batch_matches_sequential_eval() {
        let ctx = CkksParams::toy().build();
        let mut rng = Rng64::new(205);
        let keys = KeyChain::generate(&ctx, &mut rng);
        let pe = smartpaf_ckks::PafEvaluator::new(Evaluator::new(&keys));
        let paf = CompositePaf::from_form(PafForm::F1G2);
        let pipe = PipelineBuilder::new(&[8])
            .affine(Linear::new(8, 8, &mut rng))
            .paf_relu(&paf, 4.0)
            .affine(Linear::new(8, 4, &mut rng))
            .compile()
            .fold_scales();
        let batch: Vec<Vec<f64>> = (0..4)
            .map(|i| (0..8).map(|j| ((i + j) as f64 - 5.0) / 5.0).collect())
            .collect();
        let cts: Vec<_> = batch
            .iter()
            .map(|x| {
                pe.evaluator()
                    .encrypt_replicated(&pipe.pad_input(x), &mut rng)
            })
            .collect();
        let run = BatchRunner::new(2)
            .run_encrypted(&pipe, &pe, None, &cts)
            .unwrap();
        assert_eq!(run.outputs.len(), 4);
        assert_eq!(run.total_bootstraps(), 0);
        for (i, (x, out_ct)) in batch.iter().zip(&run.outputs).enumerate() {
            let got = pe.evaluator().decrypt_values(out_ct, 4);
            let want = pipe.eval_plain(x);
            for k in 0..4 {
                assert!(
                    (got[k] - want[k]).abs() < 6e-2,
                    "input {i} slot {k}: {} vs {}",
                    got[k],
                    want[k]
                );
            }
        }
        // Per-input stats mirror the single-input wrapper.
        let (_, solo) = pipe.eval_encrypted(&pe, None, &cts[0]);
        assert_eq!(run.stats[0].stage_levels, solo.stage_levels);
    }

    #[test]
    fn packed_batch_matches_per_input_plain_eval() {
        // Two packed ciphertexts, four lanes each, sharded across two
        // workers: every demultiplexed lane must agree with the base
        // pipeline's per-input plain eval within noise.
        let ctx = CkksParams::toy().build();
        let mut rng = Rng64::new(208);
        let keys = KeyChain::generate(&ctx, &mut rng);
        let pe = smartpaf_ckks::PafEvaluator::new(Evaluator::new(&keys));
        let paf = CompositePaf::from_form(PafForm::F1G2);
        let pipe = PipelineBuilder::new(&[8])
            .affine(Linear::new(8, 8, &mut rng))
            .paf_relu(&paf, 4.0)
            .affine(Linear::new(8, 4, &mut rng))
            .compile()
            .fold_scales();
        let packer = crate::pack::LanePacker::new(&pipe, ctx.slots(), 4).unwrap();
        let groups: Vec<Vec<Vec<f64>>> = (0..2)
            .map(|g| {
                (0..4)
                    .map(|i| {
                        (0..8)
                            .map(|j| ((g * 4 + i + j) as f64 - 5.0) / 5.0)
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let batches: Vec<_> = groups.iter().map(|g| packer.pack(g).unwrap()).collect();
        let cts: Vec<_> = batches
            .iter()
            .map(|b| packer.encrypt(b, pe.evaluator(), &mut rng))
            .collect();
        let run = BatchRunner::new(2)
            .run_packed(&packer, &pe, None, &cts)
            .unwrap();
        assert_eq!(run.outputs.len(), 2);
        for (group, (batch, out_ct)) in groups.iter().zip(batches.iter().zip(&run.outputs)) {
            let outs = packer.decrypt(out_ct, batch, pe.evaluator());
            assert_eq!(outs.len(), 4);
            for (x, got) in group.iter().zip(&outs) {
                let want = pipe.eval_plain(x);
                for (g, w) in got.iter().zip(&want) {
                    assert!((g - w).abs() < 6e-2, "{g} vs {w}");
                }
            }
        }
    }

    fn zero_stats() -> RunStats {
        RunStats {
            stage_levels: Vec::new(),
            bootstraps: 0,
            final_level: 0,
            wall: Duration::ZERO,
        }
    }

    #[test]
    fn batch_of_one_matches_single_eval() {
        let pipe = mnist_scale_pipeline(206);
        let inputs = batch_inputs(1);
        let run = BatchRunner::new(4).run_plain(&pipe, &inputs).unwrap();
        assert_eq!(run.threads, 1, "a 1-input batch collapses to one shard");
        assert_eq!(run.outputs, vec![pipe.eval_plain(&inputs[0])]);
        assert_eq!(run.stats.len(), 1);
    }

    #[test]
    fn worker_panic_surfaces_as_a_typed_error() {
        // One poisoned input must not abort the process: both the
        // sequential fast path and the threaded path contain the panic
        // and hand the caller `WorkerPanicked`.
        let inputs: Vec<usize> = (0..9).collect();
        for threads in [1, 3] {
            let err = BatchRunner::new(threads)
                .run_sharded(
                    &inputs,
                    || (),
                    |_, &i| {
                        if i == 4 {
                            panic!("poisoned input");
                        }
                        Ok((i, zero_stats()))
                    },
                )
                .unwrap_err();
            assert_eq!(err, RunError::WorkerPanicked, "{threads} thread(s)");
        }
    }

    #[test]
    fn error_in_a_middle_shard_propagates_and_discards_the_batch() {
        // 9 inputs on 3 threads → shards [0..3), [3..6), [6..9); the
        // failure sits in the middle shard, so the first shard's
        // results exist and must be discarded.
        let inputs: Vec<usize> = (0..9).collect();
        let err = BatchRunner::new(3)
            .run_sharded(
                &inputs,
                || (),
                |_, &i| {
                    if i == 4 {
                        Err(RunError::EmptyPipeline)
                    } else {
                        Ok((i * 10, zero_stats()))
                    }
                },
            )
            .unwrap_err();
        assert_eq!(err, RunError::EmptyPipeline);
    }

    #[test]
    fn malformed_encrypted_batch_fails_fast() {
        let ctx = CkksParams::toy().build();
        let mut rng = Rng64::new(207);
        let keys = KeyChain::generate(&ctx, &mut rng);
        let pe = smartpaf_ckks::PafEvaluator::new(Evaluator::new(&keys));

        // A consumed ciphertext in the middle of the batch with no
        // bootstrapper: the up-front trace rejects it with the exact
        // error the CKKS backend would hit mid-shard.
        let paf = CompositePaf::from_form(PafForm::F1G2);
        let pipe = PipelineBuilder::new(&[8])
            .affine(Linear::new(8, 8, &mut rng))
            .paf_relu(&paf, 4.0)
            .compile()
            .fold_scales();
        let mut cts: Vec<_> = (0..3)
            .map(|i| {
                let x = vec![i as f64 / 3.0; 8];
                pe.evaluator()
                    .encrypt_replicated(&pipe.pad_input(&x), &mut rng)
            })
            .collect();
        cts[1].drop_to(1); // level 0: nothing left to rescale
        let err = BatchRunner::new(2)
            .run_encrypted(&pipe, &pe, None, &cts)
            .unwrap_err();
        assert!(
            matches!(err, RunError::OutOfLevels { .. }),
            "expected OutOfLevels, got {err:?}"
        );

        // A pipeline wider than the ring's slot count is rejected
        // before any evaluator clone is made.
        let wide = PipelineBuilder::new(&[1, 16, 16])
            .affine(Flatten::new())
            .compile();
        let ct = pe.evaluator().encrypt_replicated(&vec![0.0; 128], &mut rng);
        let err = BatchRunner::new(2)
            .run_encrypted(&wide, &pe, None, &[ct])
            .unwrap_err();
        assert!(
            matches!(err, RunError::SlotMismatch { dim: 256, .. }),
            "expected SlotMismatch, got {err:?}"
        );
    }
}
