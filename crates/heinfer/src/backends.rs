//! The three [`InferenceBackend`] implementations.
//!
//! - [`PlainBackend`] — batched `f64` slices through the prepared
//!   `polyfit` evaluation engines (the exact plaintext reference).
//! - [`CkksBackend`] — leveled CKKS execution with level accounting
//!   and bootstrap-on-exhaustion, absorbing the former
//!   `eval_encrypted` body.
//! - [`TraceBackend`] — no arithmetic at all: simulates the level /
//!   bootstrap schedule and records exact ciphertext-multiplication
//!   counts per stage, giving schedulers an instant dry-run cost
//!   oracle.

use crate::exec::{InferenceBackend, PafOp, RunError, RunStats};
use crate::pipeline::HePipeline;
use serde::{Deserialize, Error, Serialize, Value};
use smartpaf_ckks::{Bootstrapper, Ciphertext, DiagMatrix, PafEvaluator};

/// The batched plaintext backend: the activation is a padded `f64`
/// vector, PAF stages run through the compile-time-prepared
/// [`smartpaf_polyfit::CompositeEval`] engines.
#[derive(Debug, Default, Clone, Copy)]
pub struct PlainBackend;

impl InferenceBackend for PlainBackend {
    type Value = Vec<f64>;

    fn affine(
        &mut self,
        v: &mut Vec<f64>,
        mat: &DiagMatrix,
        bias: &[f64],
        _label: &str,
    ) -> Result<(), RunError> {
        let mut y = mat.apply_plain(v);
        for (yi, bi) in y.iter_mut().zip(bias) {
            *yi += bi;
        }
        *v = y;
        Ok(())
    }

    fn paf_relu(
        &mut self,
        v: &mut Vec<f64>,
        op: &PafOp<'_>,
        pre_scale: f64,
        post_scale: f64,
        _label: &str,
    ) -> Result<(), RunError> {
        // The whole activation vector goes through the batch backend.
        let scaled: Vec<f64> = v.iter().map(|&xi| pre_scale * xi).collect();
        let mut out = vec![0.0; scaled.len()];
        op.engine.relu_slice(&scaled, &mut out);
        for o in out.iter_mut() {
            *o *= post_scale;
        }
        *v = out;
        Ok(())
    }

    fn paf_max(
        &mut self,
        v: &mut Vec<f64>,
        taps: &[DiagMatrix],
        op: &PafOp<'_>,
        post_scale: f64,
        _label: &str,
    ) -> Result<(), RunError> {
        // Pairwise tree fold, mirroring the encrypted schedule exactly
        // (PAF max is not associative up to approximation error); each
        // round runs as one batched max over the paired tap vectors.
        let mut items: Vec<Vec<f64>> = taps.iter().map(|t| t.apply_plain(v)).collect();
        while items.len() > 1 {
            let mut next = Vec::with_capacity(items.len().div_ceil(2));
            let mut it = items.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => {
                        let mut m = vec![0.0; a.len()];
                        op.engine.max_slice(&a, &b, &mut m);
                        next.push(m);
                    }
                    None => next.push(a),
                }
            }
            items = next;
        }
        let acc = items.pop().expect("at least one tap");
        *v = acc.iter().map(|&a| post_scale * a).collect();
        Ok(())
    }
}

/// The leveled CKKS backend: wraps a [`PafEvaluator`] and an optional
/// [`Bootstrapper`], refreshing the ciphertext when a stage needs more
/// levels than remain — exactly the constraint that makes high-degree
/// PAFs expensive in the paper.
///
/// Slot-packed execution (see [`crate::pack`]) needs no special
/// backend support: a lane-expanded pipeline is an ordinary
/// [`HePipeline`] at the wider padded dimension, its block-diagonal
/// affine stages run through the same
/// [`smartpaf_ckks::Evaluator::matvec_bsgs`] path with its per-matrix
/// diagonal-encoding cache,
/// and PAF stages are elementwise per slot so they act per lane for
/// free.
pub struct CkksBackend<'a> {
    pe: &'a PafEvaluator,
    bootstrapper: Option<&'a Bootstrapper>,
    max_level: usize,
    bootstraps: usize,
}

impl<'a> CkksBackend<'a> {
    /// Creates a backend over an evaluator and an optional refresher.
    pub fn new(pe: &'a PafEvaluator, bootstrapper: Option<&'a Bootstrapper>) -> Self {
        CkksBackend {
            pe,
            bootstrapper,
            max_level: pe.evaluator().context().max_level(),
            bootstraps: 0,
        }
    }

    /// Refreshes `v` when it cannot afford `need` more levels. The
    /// `need` must be an *atomic* depth (a single PAF evaluation at
    /// most) — larger stages refresh between their atomic ops.
    fn ensure(&mut self, v: &mut Ciphertext, need: usize, label: &str) -> Result<(), RunError> {
        if need > self.max_level {
            return Err(RunError::AtomicDepthExceeded {
                label: label.to_string(),
                needed: need,
                max_level: self.max_level,
            });
        }
        if v.level() >= need {
            return Ok(());
        }
        match self.bootstrapper {
            Some(bs) => {
                self.bootstraps += 1;
                *v = bs.refresh(v);
                Ok(())
            }
            None => Err(RunError::OutOfLevels {
                label: label.to_string(),
                available: v.level(),
                needed: need,
                mid_stage: false,
            }),
        }
    }
}

impl InferenceBackend for CkksBackend<'_> {
    type Value = Ciphertext;

    fn begin(&mut self, pipe: &HePipeline) -> Result<(), RunError> {
        let slots = self.pe.evaluator().context().slots();
        if !slots.is_multiple_of(pipe.dim()) {
            return Err(RunError::SlotMismatch {
                dim: pipe.dim(),
                slots,
            });
        }
        Ok(())
    }

    fn affine(
        &mut self,
        v: &mut Ciphertext,
        mat: &DiagMatrix,
        bias: &[f64],
        label: &str,
    ) -> Result<(), RunError> {
        self.ensure(v, 1, label)?;
        let ev = self.pe.evaluator();
        let y = ev.matvec_bsgs(mat, v);
        *v = ev.add_bias_replicated(&y, bias);
        Ok(())
    }

    fn paf_relu(
        &mut self,
        v: &mut Ciphertext,
        op: &PafOp<'_>,
        pre_scale: f64,
        post_scale: f64,
        label: &str,
    ) -> Result<(), RunError> {
        let ev = self.pe.evaluator();
        let mut need = op.atomic_depth();
        if pre_scale != 1.0 {
            need += 1;
        }
        if post_scale != 1.0 {
            need += 1;
        }
        self.ensure(v, need, label)?;
        if pre_scale != 1.0 {
            *v = ev.mul_const(v, pre_scale);
        }
        *v = self.pe.relu(v, op.paf);
        if post_scale != 1.0 {
            *v = ev.mul_const(v, post_scale);
        }
        Ok(())
    }

    fn paf_max(
        &mut self,
        v: &mut Ciphertext,
        taps: &[DiagMatrix],
        op: &PafOp<'_>,
        post_scale: f64,
        label: &str,
    ) -> Result<(), RunError> {
        let ev = self.pe.evaluator();
        let fold_need = op.atomic_depth();
        // A single-tap pool runs no fold at all, so only a real fold
        // can demand the PAF-max atomic depth from the chain.
        if taps.len() > 1 && fold_need > self.max_level {
            return Err(RunError::AtomicDepthExceeded {
                label: label.to_string(),
                needed: fold_need,
                max_level: self.max_level,
            });
        }
        self.ensure(v, 1, label)?;
        // Tap matvecs are independent; fan them out across the shared
        // intra-op worker pool. Results land in tap order, so the fold
        // below is bit-identical to the sequential schedule.
        let mut items: Vec<Ciphertext> = {
            let v = &*v;
            smartpaf_ckks::par::map(taps.len(), |i| ev.matvec_bsgs(&taps[i], v))
        };
        // Pairwise tree fold with per-round refresh; all items sit at
        // the same level each round.
        while items.len() > 1 {
            if items[0].level() < fold_need {
                match self.bootstrapper {
                    Some(bs) => {
                        self.bootstraps += items.len();
                        items = items.iter().map(|c| bs.refresh(c)).collect();
                    }
                    None => {
                        return Err(RunError::OutOfLevels {
                            label: label.to_string(),
                            available: items[0].level(),
                            needed: fold_need,
                            mid_stage: true,
                        })
                    }
                }
            }
            let mut next = Vec::with_capacity(items.len().div_ceil(2));
            let mut it = items.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => next.push(self.pe.max(&a, &b, op.paf)),
                    None => next.push(a),
                }
            }
            items = next;
        }
        let mut m = items.pop().expect("at least one tap");
        if post_scale != 1.0 {
            self.ensure(&mut m, 1, label)?;
            m = ev.mul_const(&m, post_scale);
        }
        *v = m;
        Ok(())
    }

    fn level_of(&self, v: &Ciphertext) -> Option<usize> {
        Some(v.level())
    }

    fn bootstraps(&self) -> usize {
        self.bootstraps
    }
}

/// Per-stage record of a [`TraceBackend`] dry run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTrace {
    /// Stage label (matches [`crate::Stage::label`]).
    pub label: String,
    /// PAF slot index of this stage (stage order, counting only
    /// ReLU/maxpool stages), `None` for affine stages. This is the
    /// index a per-slot form vector assigns
    /// ([`crate::HePipeline::with_pafs`]), so planners can read
    /// per-slot levels/bootstraps/ct-mults straight off the trace.
    pub slot: Option<usize>,
    /// Levels the stage consumed (nominal depth when a refresh fired
    /// mid-stage, mirroring the measured-stats convention).
    pub levels: usize,
    /// Bootstraps triggered by this stage.
    pub bootstraps: usize,
    /// Exact ciphertext-ciphertext multiplications
    /// ([`smartpaf_polyfit::OddPowerSchedule::exact_ct_mults`] per PAF
    /// evaluation, plus one per ReLU/max product; affine stages cost
    /// only ciphertext-plaintext work and count zero).
    pub ct_mults: usize,
    /// Exact ciphertext rotations (each a Galois key switch): the BSGS
    /// schedule of every affine matvec and maxpool tap selection, at
    /// the trace's lane count ([`TraceBackend::with_lanes`]) — wrap
    /// diagonals of the lane-expanded block-diagonal matrices are
    /// priced without materializing them.
    pub rotations: usize,
}

/// Aggregate result of a trace dry run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceReport {
    /// Per-stage records, in execution order.
    pub stages: Vec<StageTrace>,
    /// Remaining rescale budget after the last stage.
    pub final_level: usize,
}

impl TraceReport {
    /// Total exact ciphertext multiplications across all stages.
    pub fn total_ct_mults(&self) -> usize {
        self.stages.iter().map(|s| s.ct_mults).sum()
    }

    /// Total bootstraps across all stages.
    pub fn total_bootstraps(&self) -> usize {
        self.stages.iter().map(|s| s.bootstraps).sum()
    }

    /// Total levels consumed across all stages.
    pub fn total_levels(&self) -> usize {
        self.stages.iter().map(|s| s.levels).sum()
    }

    /// Total ciphertext rotations across all stages.
    pub fn total_rotations(&self) -> usize {
        self.stages.iter().map(|s| s.rotations).sum()
    }

    /// The PAF-slot records only (stages with a
    /// [`StageTrace::slot`] index), in slot order — one row per entry
    /// of a per-slot form vector.
    pub fn paf_slots(&self) -> Vec<&StageTrace> {
        self.stages.iter().filter(|s| s.slot.is_some()).collect()
    }
}

impl Serialize for StageTrace {
    fn serialize(&self) -> Value {
        Value::object([
            ("label", self.label.serialize()),
            ("slot", self.slot.serialize()),
            ("levels", self.levels.serialize()),
            ("bootstraps", self.bootstraps.serialize()),
            ("ct_mults", self.ct_mults.serialize()),
            ("rotations", self.rotations.serialize()),
        ])
    }
}

impl Deserialize for StageTrace {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(StageTrace {
            label: String::deserialize(value.req("label")?)?,
            slot: Option::<usize>::deserialize(value.req("slot")?)?,
            levels: usize::deserialize(value.req("levels")?)?,
            bootstraps: usize::deserialize(value.req("bootstraps")?)?,
            ct_mults: usize::deserialize(value.req("ct_mults")?)?,
            // Absent from traces recorded before rotation pricing.
            rotations: match value.get("rotations") {
                Some(v) => usize::deserialize(v)?,
                None => 0,
            },
        })
    }
}

impl Serialize for TraceReport {
    fn serialize(&self) -> Value {
        Value::object([
            ("stages", self.stages.serialize()),
            ("final_level", self.final_level.serialize()),
        ])
    }
}

impl Deserialize for TraceReport {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(TraceReport {
            stages: Vec::<StageTrace>::deserialize(value.req("stages")?)?,
            final_level: usize::deserialize(value.req("final_level")?)?,
        })
    }
}

/// The arithmetic-free cost backend: replays the exact level /
/// bootstrap schedule of [`CkksBackend`] without touching a single
/// coefficient, recording per-stage levels, bootstraps, and exact
/// ct-mult counts. A full dry run costs microseconds, so schedulers
/// can query it per candidate configuration.
#[derive(Debug, Clone)]
pub struct TraceBackend {
    max_level: usize,
    level: usize,
    allow_bootstrap: bool,
    bootstraps: usize,
    next_slot: usize,
    lanes: usize,
    stages: Vec<StageTrace>,
}

impl TraceBackend {
    /// Creates a trace starting from a fresh ciphertext at the top of
    /// a modulus chain with `max_level` rescale levels. With
    /// `allow_bootstrap`, exhaustion refreshes (and is charged);
    /// without, it surfaces as [`RunError::OutOfLevels`] exactly where
    /// the CKKS backend would fail.
    pub fn new(max_level: usize, allow_bootstrap: bool) -> Self {
        TraceBackend {
            max_level,
            level: max_level,
            allow_bootstrap,
            bootstraps: 0,
            next_slot: 0,
            lanes: 1,
            stages: Vec::new(),
        }
    }

    /// Prices rotations as if the pipeline were slot-packed at `lanes`
    /// lanes ([`HePipeline::expand_lanes`]): each affine matrix is
    /// costed through [`DiagMatrix::bsgs_rotations_lanes`], which
    /// accounts for the wrap-diagonal doubling of the block-diagonal
    /// expansion without building the expanded pipeline. Levels,
    /// bootstraps, and ct-mults are lane-invariant, so a lane planner
    /// can sweep candidate lane counts over one compiled pipeline.
    ///
    /// # Panics
    ///
    /// Panics unless `lanes` is a power of two.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        assert!(lanes.is_power_of_two(), "lanes must be a power of two");
        self.lanes = lanes;
        self
    }

    /// Claims the next PAF slot index (stage order).
    fn take_slot(&mut self) -> usize {
        let slot = self.next_slot;
        self.next_slot += 1;
        slot
    }

    /// Starts the trace below the top of the chain (a partially
    /// consumed input ciphertext).
    pub fn with_start_level(mut self, level: usize) -> Self {
        assert!(level <= self.max_level, "start level above the chain");
        self.level = level;
        self
    }

    /// The per-stage records collected so far, as a report.
    pub fn report(&self) -> TraceReport {
        TraceReport {
            stages: self.stages.clone(),
            final_level: self.level,
        }
    }

    fn ensure(&mut self, need: usize, label: &str, mid_stage: bool) -> Result<usize, RunError> {
        if need > self.max_level {
            return Err(RunError::AtomicDepthExceeded {
                label: label.to_string(),
                needed: need,
                max_level: self.max_level,
            });
        }
        if self.level >= need {
            return Ok(0);
        }
        if self.allow_bootstrap {
            self.level = self.max_level;
            self.bootstraps += 1;
            Ok(1)
        } else {
            Err(RunError::OutOfLevels {
                label: label.to_string(),
                available: self.level,
                needed: need,
                mid_stage,
            })
        }
    }
}

impl InferenceBackend for TraceBackend {
    type Value = ();

    fn affine(
        &mut self,
        _v: &mut (),
        mat: &DiagMatrix,
        _bias: &[f64],
        label: &str,
    ) -> Result<(), RunError> {
        let boots = self.ensure(1, label, false)?;
        self.level -= 1;
        self.stages.push(StageTrace {
            label: label.to_string(),
            slot: None,
            levels: 1,
            bootstraps: boots,
            ct_mults: 0,
            rotations: mat.bsgs_rotations_lanes(self.lanes),
        });
        Ok(())
    }

    fn paf_relu(
        &mut self,
        _v: &mut (),
        op: &PafOp<'_>,
        pre_scale: f64,
        post_scale: f64,
        label: &str,
    ) -> Result<(), RunError> {
        let mut need = op.atomic_depth();
        if pre_scale != 1.0 {
            need += 1;
        }
        if post_scale != 1.0 {
            need += 1;
        }
        let boots = self.ensure(need, label, false)?;
        self.level -= need;
        let slot = self.take_slot();
        self.stages.push(StageTrace {
            label: label.to_string(),
            slot: Some(slot),
            levels: need,
            bootstraps: boots,
            // Sign stages + the x·sign(x) product; the scale
            // multiplications are plaintext-constant, not ct-ct.
            ct_mults: op.engine.exact_ct_mults() + 1,
            rotations: 0,
        });
        Ok(())
    }

    fn paf_max(
        &mut self,
        _v: &mut (),
        taps: &[DiagMatrix],
        op: &PafOp<'_>,
        post_scale: f64,
        label: &str,
    ) -> Result<(), RunError> {
        let before = self.level;
        let fold_need = op.atomic_depth();
        // Mirror CkksBackend: a single-tap pool runs no fold, so the
        // atomic-depth check only applies when a fold will execute.
        if taps.len() > 1 && fold_need > self.max_level {
            return Err(RunError::AtomicDepthExceeded {
                label: label.to_string(),
                needed: fold_need,
                max_level: self.max_level,
            });
        }
        let mut boots = self.ensure(1, label, false)?;
        self.level -= 1; // tap selection matvecs (all items in lockstep)
        let per_max = op.engine.exact_ct_mults() + 1;
        let mut ct_mults = 0;
        let mut items = taps.len();
        // Mirror the encrypted pairwise fold: all surviving items sit
        // at the same level, refreshed together when a round cannot
        // afford one more PAF-max.
        while items > 1 {
            if self.level < fold_need {
                if self.allow_bootstrap {
                    self.bootstraps += items;
                    boots += items;
                    self.level = self.max_level;
                } else {
                    return Err(RunError::OutOfLevels {
                        label: label.to_string(),
                        available: self.level,
                        needed: fold_need,
                        mid_stage: true,
                    });
                }
            }
            let pairs = items / 2;
            ct_mults += pairs * per_max;
            self.level -= fold_need;
            items = pairs + items % 2;
        }
        if post_scale != 1.0 {
            boots += self.ensure(1, label, false)?;
            self.level -= 1;
        }
        let levels = if boots > 0 {
            // Nominal stage depth; a refresh makes the delta meaningless.
            let rounds = taps.len().next_power_of_two().trailing_zeros() as usize;
            1 + rounds * fold_need + usize::from(post_scale != 1.0)
        } else {
            before - self.level
        };
        let slot = self.take_slot();
        self.stages.push(StageTrace {
            label: label.to_string(),
            slot: Some(slot),
            levels,
            bootstraps: boots,
            ct_mults,
            rotations: taps
                .iter()
                .map(|t| t.bsgs_rotations_lanes(self.lanes))
                .sum(),
        });
        Ok(())
    }

    fn level_of(&self, _v: &()) -> Option<usize> {
        Some(self.level)
    }

    fn bootstraps(&self) -> usize {
        self.bootstraps
    }
}

impl HePipeline {
    /// Traces the pipeline through [`TraceBackend`] without any
    /// arithmetic: an instant dry-run cost oracle over a modulus chain
    /// of `max_level` rescale levels.
    pub fn dry_run(
        &self,
        max_level: usize,
        allow_bootstrap: bool,
    ) -> Result<(TraceReport, RunStats), RunError> {
        let mut backend = TraceBackend::new(max_level, allow_bootstrap);
        let ((), stats) = self.run(&mut backend, ())?;
        Ok((backend.report(), stats))
    }

    /// [`HePipeline::dry_run`] priced at `lanes` slot-packing lanes:
    /// rotation counts reflect the block-diagonal expansion's wrap
    /// diagonals without ever building the expanded pipeline
    /// ([`TraceBackend::with_lanes`]).
    pub fn dry_run_lanes(
        &self,
        max_level: usize,
        allow_bootstrap: bool,
        lanes: usize,
    ) -> Result<(TraceReport, RunStats), RunError> {
        let mut backend = TraceBackend::new(max_level, allow_bootstrap).with_lanes(lanes);
        let ((), stats) = self.run(&mut backend, ())?;
        Ok((backend.report(), stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineBuilder;
    use smartpaf_ckks::{Bootstrapper, CkksParams, Evaluator, KeyChain};
    use smartpaf_nn::{Conv2d, Linear};
    use smartpaf_polyfit::{CompositePaf, PafForm};
    use smartpaf_tensor::Rng64;

    fn setup(seed: u64) -> (PafEvaluator, Rng64) {
        let ctx = CkksParams::toy().build();
        let mut rng = Rng64::new(seed);
        let keys = KeyChain::generate(&ctx, &mut rng);
        (PafEvaluator::new(Evaluator::new(&keys)), rng)
    }

    #[test]
    fn plain_backend_matches_eval_plain() {
        let mut rng = Rng64::new(101);
        let paf = CompositePaf::from_form(PafForm::F1G2);
        let pipe = PipelineBuilder::new(&[4])
            .affine(Linear::new(4, 4, &mut rng))
            .paf_relu(&paf, 2.0)
            .affine(Linear::new(4, 3, &mut rng))
            .compile();
        let x = [0.3, -0.7, 1.1, -0.2];
        let via_wrapper = pipe.eval_plain(&x);
        let (mut out, stats) = pipe
            .run(&mut PlainBackend, pipe.pad_input(&x))
            .expect("plain backend cannot fail");
        out.truncate(pipe.output_dim());
        assert_eq!(out, via_wrapper);
        // Plain stats report nominal stage depths.
        assert_eq!(stats.total_levels(), pipe.total_levels());
        assert_eq!(stats.bootstraps, 0);
    }

    #[test]
    fn trace_matches_ckks_levels_without_bootstrap() {
        let (pe, mut rng) = setup(102);
        let paf = CompositePaf::from_form(PafForm::F1G2);
        let pipe = PipelineBuilder::new(&[8])
            .affine(Linear::new(8, 8, &mut rng))
            .paf_relu(&paf, 4.0)
            .affine(Linear::new(8, 4, &mut rng))
            .compile();
        let x: Vec<f64> = (0..8).map(|i| (i as f64 - 4.0) / 4.0).collect();
        let ct = pe
            .evaluator()
            .encrypt_replicated(&pipe.pad_input(&x), &mut rng);
        let (_, enc_stats) = pipe.eval_encrypted(&pe, None, &ct);
        let max_level = pe.evaluator().context().max_level();
        let (report, trace_stats) = pipe.dry_run(max_level, false).expect("fits the chain");
        assert_eq!(trace_stats.stage_levels, enc_stats.stage_levels);
        assert_eq!(trace_stats.bootstraps, enc_stats.bootstraps);
        assert_eq!(trace_stats.final_level, enc_stats.final_level);
        assert_eq!(report.final_level, enc_stats.final_level);
        assert_eq!(report.total_levels(), enc_stats.total_levels());
    }

    #[test]
    fn trace_matches_ckks_bootstraps_when_chain_runs_dry() {
        let (pe, mut rng) = setup(103);
        let paf = CompositePaf::from_form(PafForm::F1G2);
        let mut b = PipelineBuilder::new(&[4]);
        for _ in 0..3 {
            b = b.affine(Linear::new(4, 4, &mut rng)).paf_relu(&paf, 2.0);
        }
        let pipe = b.compile().fold_scales();
        let bs = Bootstrapper::new(pe.evaluator().clone(), pipe.dim(), 5);
        let ct = pe
            .evaluator()
            .encrypt_replicated(&pipe.pad_input(&[0.2, -0.4, 0.6, -0.8]), &mut rng);
        let (_, enc_stats) = pipe.eval_encrypted(&pe, Some(&bs), &ct);
        assert!(enc_stats.bootstraps >= 1);
        let max_level = pe.evaluator().context().max_level();
        let (report, trace_stats) = pipe.dry_run(max_level, true).expect("bootstrap allowed");
        assert_eq!(trace_stats.bootstraps, enc_stats.bootstraps);
        assert_eq!(trace_stats.stage_levels, enc_stats.stage_levels);
        assert_eq!(report.total_bootstraps(), enc_stats.bootstraps);
    }

    #[test]
    fn trace_ct_mults_match_exact_schedule() {
        let paf = CompositePaf::from_form(PafForm::Alpha7);
        let pipe = PipelineBuilder::new(&[8]).paf_relu(&paf, 1.0).compile();
        let (report, _) = pipe.dry_run(12, false).expect("fits");
        assert_eq!(report.stages.len(), 1);
        // Exactly the even-power-ladder count plus the ReLU product.
        assert_eq!(report.total_ct_mults(), paf.exact_ct_mult_count() + 1);
        // Maxpool: three pairwise folds of four taps.
        let pool = PipelineBuilder::new(&[1, 2, 2])
            .paf_maxpool(2, 2, &paf, 1.0)
            .compile();
        let (report, _) = pool.dry_run(30, false).expect("fits");
        assert_eq!(report.total_ct_mults(), 3 * (paf.exact_ct_mult_count() + 1));
    }

    #[test]
    fn trace_without_bootstrap_fails_like_ckks() {
        let mut rng = Rng64::new(104);
        let paf = CompositePaf::from_form(PafForm::F1G2);
        let mut b = PipelineBuilder::new(&[4]);
        for _ in 0..3 {
            b = b.affine(Linear::new(4, 4, &mut rng)).paf_relu(&paf, 2.0);
        }
        let pipe = b.compile();
        let err = pipe.dry_run(12, false).expect_err("chain too short");
        assert!(matches!(err, RunError::OutOfLevels { .. }));
        assert!(err.to_string().contains("level exhausted"));
    }

    #[test]
    fn trace_rejects_atomic_depth_beyond_chain() {
        let paf = CompositePaf::from_form(PafForm::MinimaxDeg27); // depth 10 + 1
        let pipe = PipelineBuilder::new(&[4]).paf_relu(&paf, 1.0).compile();
        let err = pipe.dry_run(8, true).expect_err("atomic op too deep");
        assert!(matches!(err, RunError::AtomicDepthExceeded { .. }));
    }

    #[test]
    fn single_tap_pool_needs_no_fold_depth() {
        // A 1×1 pool compiles to one tap and runs no fold, so a chain
        // far shallower than the PAF's atomic depth still executes it.
        let paf = CompositePaf::from_form(PafForm::MinimaxDeg27); // fold depth 11
        let pipe = PipelineBuilder::new(&[1, 2, 2])
            .paf_maxpool(1, 1, &paf, 1.0)
            .compile();
        let (report, stats) = pipe.dry_run(3, false).expect("tap selection only");
        assert_eq!(report.total_ct_mults(), 0);
        assert_eq!(stats.total_levels(), 1);
    }

    #[test]
    fn mixed_form_pipeline_executes_and_traces_per_slot() {
        // Heterogeneous forms in one pipeline: a deep α=7 ReLU feeding
        // a cheap f1∘g2 max fold. The CKKS backend must execute both,
        // measure the trace's schedule exactly, and the trace must
        // attribute costs to the right PAF slot.
        let (pe, mut rng) = setup(106);
        let deep = CompositePaf::from_form(PafForm::Alpha7);
        let cheap = CompositePaf::from_form(PafForm::F1G2);
        let pipe = PipelineBuilder::new(&[1, 4, 4])
            .affine(Conv2d::new(1, 1, 3, 1, 1, &mut rng))
            .paf_relu(&cheap, 4.0)
            .paf_maxpool(2, 2, &cheap, 6.0)
            .compile()
            .fold_scales()
            .with_pafs(&[deep.clone(), cheap.clone()]);
        assert_eq!(
            pipe.paf_forms(),
            vec![Some(PafForm::Alpha7), Some(PafForm::F1G2)]
        );
        let bs = Bootstrapper::new(pe.evaluator().clone(), pipe.dim(), 9);
        let x: Vec<f64> = (0..16).map(|i| ((i * 7) % 11) as f64 / 5.0 - 1.0).collect();
        let ct = pe
            .evaluator()
            .encrypt_replicated(&pipe.pad_input(&x), &mut rng);
        let (out_ct, enc_stats) = pipe.eval_encrypted(&pe, Some(&bs), &ct);
        let got = pe.evaluator().decrypt_values(&out_ct, pipe.output_dim());
        let want = pipe.eval_plain(&x);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 0.2, "{g} vs {w}");
        }
        let max_level = pe.evaluator().context().max_level();
        let (report, trace_stats) = pipe.dry_run(max_level, true).expect("traceable");
        assert_eq!(trace_stats.bootstraps, enc_stats.bootstraps);
        assert_eq!(trace_stats.stage_levels, enc_stats.stage_levels);
        // Per-slot attribution: slot 0 is the ReLU (α=7 schedule),
        // slot 1 the max fold (three pairwise f1∘g2 maxes).
        let slots = report.paf_slots();
        assert_eq!(slots.len(), 2);
        assert_eq!(slots[0].slot, Some(0));
        assert_eq!(slots[1].slot, Some(1));
        assert_eq!(slots[0].ct_mults, deep.exact_ct_mult_count() + 1);
        assert_eq!(slots[1].ct_mults, 3 * (cheap.exact_ct_mult_count() + 1));
        // Affine stages carry no slot index.
        assert!(report.stages.iter().any(|s| s.slot.is_none()));
    }

    #[test]
    fn lane_priced_trace_matches_materialized_expansion() {
        // The lane planner's contract: dry_run_lanes on the base
        // pipeline must report exactly the rotation counts of tracing
        // the materialized expand_lanes pipeline, stage by stage —
        // wrap-diagonal doubling priced before any expansion exists.
        let mut rng = Rng64::new(108);
        let paf = CompositePaf::from_form(PafForm::F1G2);
        let pipe = PipelineBuilder::new(&[1, 4, 4])
            .affine(Conv2d::new(1, 2, 3, 1, 1, &mut rng))
            .paf_relu(&paf, 4.0)
            .paf_maxpool(2, 2, &paf, 6.0)
            .affine(smartpaf_nn::Flatten::new())
            .affine(Linear::new(8, 4, &mut rng))
            .compile()
            .fold_scales();
        for lanes in [1usize, 2, 4] {
            let (base, _) = pipe.dry_run_lanes(30, false, lanes).expect("fits");
            let (wide, _) = pipe.expand_lanes(lanes).dry_run(30, false).expect("fits");
            assert_eq!(base.stages.len(), wide.stages.len());
            for (b, w) in base.stages.iter().zip(&wide.stages) {
                assert_eq!(b.rotations, w.rotations, "lanes {lanes} stage {}", b.label);
                assert_eq!(b.ct_mults, w.ct_mults);
                assert_eq!(b.levels, w.levels);
            }
            assert_eq!(base.total_rotations(), wide.total_rotations());
        }
        // Packing is not free: more lanes means strictly more
        // rotations for any pipeline with off-diagonal affine work.
        let r1 = pipe
            .dry_run_lanes(30, false, 1)
            .unwrap()
            .0
            .total_rotations();
        let r4 = pipe
            .dry_run_lanes(30, false, 4)
            .unwrap()
            .0
            .total_rotations();
        assert!(r4 > r1, "lanes=4 {r4} vs lanes=1 {r1}");
    }

    #[test]
    fn stage_trace_rotations_default_for_old_recordings() {
        // Traces serialized before rotation pricing lack the field and
        // must deserialize to zero rotations.
        let old = r#"{"label":"fc","slot":null,"levels":1,"bootstraps":0,"ct_mults":0}"#;
        let st = StageTrace::deserialize(&serde::json::from_str(old).unwrap()).unwrap();
        assert_eq!(st.rotations, 0);
        // Round trip keeps the recorded count.
        let mut st = st;
        st.rotations = 7;
        let back = StageTrace::deserialize(&st.serialize()).unwrap();
        assert_eq!(back, st);
    }

    #[test]
    fn ckks_backend_runs_lane_expanded_pipelines_unchanged() {
        // A lane-expanded pipeline is an ordinary pipeline to this
        // backend: each lane of the packed encrypted eval must match
        // the base pipeline's plain eval of that lane's input.
        let (pe, mut rng) = setup(107);
        let paf = CompositePaf::from_form(PafForm::F1G2);
        let pipe = PipelineBuilder::new(&[8])
            .affine(Linear::new(8, 8, &mut rng))
            .paf_relu(&paf, 4.0)
            .compile()
            .fold_scales();
        let lanes = 2;
        let wide = pipe.expand_lanes(lanes);
        let xs: Vec<Vec<f64>> = (0..lanes)
            .map(|l| (0..8).map(|j| ((l * 3 + j) as f64 - 4.0) / 4.0).collect())
            .collect();
        let mut flat = Vec::new();
        for x in &xs {
            flat.extend_from_slice(&pipe.pad_input(x));
        }
        let ct = pe.evaluator().encrypt_replicated(&flat, &mut rng);
        let (out_ct, _) = wide.eval_encrypted(&pe, None, &ct);
        for (l, x) in xs.iter().enumerate() {
            let want = pipe.eval_plain(x);
            let got = pe.evaluator().decrypt_values(&out_ct, (l + 1) * pipe.dim());
            for (k, w) in want.iter().enumerate() {
                let g = got[l * pipe.dim() + k];
                assert!((g - w).abs() < 6e-2, "lane {l} slot {k}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn ckks_backend_reports_slot_mismatch() {
        let (pe, mut rng) = setup(105);
        // dim 8 pipeline but a 3-wide builder forced to dim 4? Build a
        // pipeline whose padded dim does not divide the toy slot count
        // (toy slots = 128): dim 48 is impossible (power of two), so
        // exercise the check by shrinking slots instead: use dim larger
        // than slots.
        let pipe = PipelineBuilder::new(&[300])
            .affine(Linear::new(300, 4, &mut rng))
            .compile();
        assert!(pipe.dim() > pe.evaluator().context().slots());
        let ct = pe.evaluator().encrypt_values(&[0.0; 4], &mut rng);
        let err = pipe
            .try_eval_encrypted(&pe, None, &ct)
            .expect_err("dim cannot divide slots");
        assert!(matches!(err, RunError::SlotMismatch { .. }));
    }
}
