//! Property-based tests for pipeline compilation.

use crate::pipeline::PipelineBuilder;
use proptest::prelude::*;
use smartpaf_nn::Linear;
use smartpaf_polyfit::{CompositePaf, PafForm};
use smartpaf_tensor::Rng64;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A probed affine pipeline is actually affine:
    /// f(x + y) - f(0) = (f(x) - f(0)) + (f(y) - f(0)).
    #[test]
    fn probed_pipeline_is_affine(
        seed in 0u64..1000,
        x in proptest::collection::vec(-2.0f64..2.0, 6),
        y in proptest::collection::vec(-2.0f64..2.0, 6),
    ) {
        let mut rng = Rng64::new(seed);
        let pipe = PipelineBuilder::new(&[6])
            .affine(Linear::new(6, 5, &mut rng))
            .affine(Linear::new(5, 4, &mut rng))
            .compile();
        let zero = pipe.eval_plain(&[0.0; 6]);
        let fx = pipe.eval_plain(&x);
        let fy = pipe.eval_plain(&y);
        let xy: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let fxy = pipe.eval_plain(&xy);
        for o in 0..4 {
            let lhs = fxy[o] - zero[o];
            let rhs = (fx[o] - zero[o]) + (fy[o] - zero[o]);
            prop_assert!((lhs - rhs).abs() < 1e-3, "output {o}: {lhs} vs {rhs}");
        }
    }

    /// Scale folding never changes plaintext semantics, for arbitrary
    /// static scales.
    #[test]
    fn fold_scales_semantics_invariant(
        seed in 0u64..1000,
        s1 in 0.5f64..16.0,
        s2 in 0.5f64..16.0,
        x in proptest::collection::vec(-1.0f64..1.0, 4),
    ) {
        let paf = CompositePaf::from_form(PafForm::F1G2);
        let build = |rng: &mut Rng64| {
            PipelineBuilder::new(&[4])
                .affine(Linear::new(4, 4, rng))
                .paf_relu(&paf, s1)
                .affine(Linear::new(4, 4, rng))
                .paf_relu(&paf, s2)
                .affine(Linear::new(4, 3, rng))
                .compile()
        };
        let plain = build(&mut Rng64::new(seed));
        let folded = build(&mut Rng64::new(seed)).fold_scales();
        let a = plain.eval_plain(&x);
        let b = folded.eval_plain(&x);
        for (ai, bi) in a.iter().zip(&b) {
            prop_assert!((ai - bi).abs() < 1e-6 * (1.0 + ai.abs()), "{ai} vs {bi}");
        }
    }

    /// Stage level accounting is consistent: folding saves exactly the
    /// number of eliminated scale multiplications.
    #[test]
    fn fold_scales_level_accounting(seed in 0u64..1000, s in 1.5f64..8.0) {
        let paf = CompositePaf::from_form(PafForm::F2G2);
        let build = |rng: &mut Rng64| {
            PipelineBuilder::new(&[4])
                .affine(Linear::new(4, 4, rng))
                .paf_relu(&paf, s)
                .affine(Linear::new(4, 2, rng))
                .compile()
        };
        let plain = build(&mut Rng64::new(seed));
        let folded = build(&mut Rng64::new(seed)).fold_scales();
        // One PAF between two affines: both pre and post fold away.
        prop_assert_eq!(folded.total_levels() + 2, plain.total_levels());
    }
}
