//! Property-based tests for pipeline compilation and the execution
//! backends.

use crate::pack::LanePacker;
use crate::pipeline::PipelineBuilder;
use proptest::prelude::*;
use smartpaf_ckks::{CkksParams, Evaluator, KeyChain, PafEvaluator};
use smartpaf_nn::Linear;
use smartpaf_polyfit::{CompositePaf, PafForm};
use smartpaf_tensor::Rng64;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A probed affine pipeline is actually affine:
    /// f(x + y) - f(0) = (f(x) - f(0)) + (f(y) - f(0)).
    #[test]
    fn probed_pipeline_is_affine(
        seed in 0u64..1000,
        x in proptest::collection::vec(-2.0f64..2.0, 6),
        y in proptest::collection::vec(-2.0f64..2.0, 6),
    ) {
        let mut rng = Rng64::new(seed);
        let pipe = PipelineBuilder::new(&[6])
            .affine(Linear::new(6, 5, &mut rng))
            .affine(Linear::new(5, 4, &mut rng))
            .compile();
        let zero = pipe.eval_plain(&[0.0; 6]);
        let fx = pipe.eval_plain(&x);
        let fy = pipe.eval_plain(&y);
        let xy: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let fxy = pipe.eval_plain(&xy);
        for o in 0..4 {
            let lhs = fxy[o] - zero[o];
            let rhs = (fx[o] - zero[o]) + (fy[o] - zero[o]);
            prop_assert!((lhs - rhs).abs() < 1e-3, "output {o}: {lhs} vs {rhs}");
        }
    }

    /// Scale folding never changes plaintext semantics, for arbitrary
    /// static scales.
    #[test]
    fn fold_scales_semantics_invariant(
        seed in 0u64..1000,
        s1 in 0.5f64..16.0,
        s2 in 0.5f64..16.0,
        x in proptest::collection::vec(-1.0f64..1.0, 4),
    ) {
        let paf = CompositePaf::from_form(PafForm::F1G2);
        let build = |rng: &mut Rng64| {
            PipelineBuilder::new(&[4])
                .affine(Linear::new(4, 4, rng))
                .paf_relu(&paf, s1)
                .affine(Linear::new(4, 4, rng))
                .paf_relu(&paf, s2)
                .affine(Linear::new(4, 3, rng))
                .compile()
        };
        let plain = build(&mut Rng64::new(seed));
        let folded = build(&mut Rng64::new(seed)).fold_scales();
        let a = plain.eval_plain(&x);
        let b = folded.eval_plain(&x);
        for (ai, bi) in a.iter().zip(&b) {
            prop_assert!((ai - bi).abs() < 1e-6 * (1.0 + ai.abs()), "{ai} vs {bi}");
        }
    }

    /// Slot packing is invisible to plaintext semantics: packing
    /// `count` random inputs into `lanes` lanes, evaluating the
    /// lane-expanded pipeline once, and unpacking is *bit-identical*
    /// to `count` sequential single-input evaluations — for arbitrary
    /// weights, PAF scales, lane counts, and partial fills.
    #[test]
    fn packed_plain_eval_is_bit_identical_to_sequential(
        seed in 0u64..1000,
        scale in 1.0f64..6.0,
        lanes_log2 in 0u32..4,
        raw in proptest::collection::vec(proptest::collection::vec(-1.0f64..1.0, 4), 1..9),
    ) {
        let mut rng = Rng64::new(seed);
        let paf = CompositePaf::from_form(PafForm::F1G2);
        let pipe = PipelineBuilder::new(&[4])
            .affine(Linear::new(4, 4, &mut rng))
            .paf_relu(&paf, scale)
            .affine(Linear::new(4, 4, &mut rng))
            .compile();

        let lanes = 1usize << lanes_log2;
        let inputs = &raw[..raw.len().min(lanes)];
        let packer = LanePacker::new(&pipe, 64, lanes).expect("dim 4 divides 64 slots");
        let batch = packer.pack(inputs).expect("inputs fit the lanes");
        let packed = packer.eval_plain(&batch);

        prop_assert_eq!(packed.len(), inputs.len());
        for (i, x) in inputs.iter().enumerate() {
            let want = pipe.eval_plain(x);
            prop_assert_eq!(packed[i].len(), want.len());
            for (o, (p, w)) in packed[i].iter().zip(&want).enumerate() {
                prop_assert_eq!(
                    p.to_bits(), w.to_bits(),
                    "input {i} output {o}: packed {p} vs sequential {w}"
                );
            }
        }
    }

    /// Stage level accounting is consistent: folding saves exactly the
    /// number of eliminated scale multiplications.
    #[test]
    fn fold_scales_level_accounting(seed in 0u64..1000, s in 1.5f64..8.0) {
        let paf = CompositePaf::from_form(PafForm::F2G2);
        let build = |rng: &mut Rng64| {
            PipelineBuilder::new(&[4])
                .affine(Linear::new(4, 4, rng))
                .paf_relu(&paf, s)
                .affine(Linear::new(4, 2, rng))
                .compile()
        };
        let plain = build(&mut Rng64::new(seed));
        let folded = build(&mut Rng64::new(seed)).fold_scales();
        // One PAF between two affines: both pre and post fold away.
        prop_assert_eq!(folded.total_levels() + 2, plain.total_levels());
    }
}

proptest! {
    // CKKS keygen per case keeps these heavier: a handful of cases
    // still covers random shapes, scales, and inputs.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Backend agreement across random small pipelines: the plain
    /// backend's output matches the decrypted CKKS backend output
    /// within the simulator's noise bound, and the trace backend's
    /// per-stage level counts equal the levels the CKKS backend
    /// actually consumed.
    #[test]
    fn backends_agree_on_random_pipelines(
        seed in 0u64..500,
        scale in 1.0f64..6.0,
        hidden in 4usize..9,
        x in proptest::collection::vec(-1.0f64..1.0, 8),
    ) {
        let mut rng = Rng64::new(seed);
        let paf = CompositePaf::from_form(PafForm::F1G2);
        let pipe = PipelineBuilder::new(&[8])
            .affine(Linear::new(8, hidden, &mut rng))
            .paf_relu(&paf, scale)
            .affine(Linear::new(hidden, 4, &mut rng))
            .compile();

        let ctx = CkksParams::toy().build();
        let keys = KeyChain::generate(&ctx, &mut rng);
        let pe = PafEvaluator::new(Evaluator::new(&keys));
        let ct = pe
            .evaluator()
            .encrypt_replicated(&pipe.pad_input(&x), &mut rng);
        let (out_ct, enc_stats) = pipe.eval_encrypted(&pe, None, &ct);

        // PlainBackend ≈ decrypt(CkksBackend ...) within noise.
        let plain = pipe.eval_plain(&x);
        let dec = pe.evaluator().decrypt_values(&out_ct, 4);
        for (i, (p, d)) in plain.iter().zip(&dec).enumerate() {
            prop_assert!((p - d).abs() < 0.1, "slot {i}: plain {p} vs decrypted {d}");
        }

        // TraceBackend level counts == levels CkksBackend consumed.
        let max_level = pe.evaluator().context().max_level();
        let (report, trace_stats) = pipe
            .dry_run(max_level, false)
            .expect("pipeline fits the toy chain");
        prop_assert_eq!(&trace_stats.stage_levels, &enc_stats.stage_levels);
        prop_assert_eq!(trace_stats.bootstraps, enc_stats.bootstraps);
        prop_assert_eq!(trace_stats.final_level, enc_stats.final_level);
        prop_assert_eq!(report.total_levels(), enc_stats.total_levels());
    }
}
