//! Serializable pipeline descriptions: the model-shape fingerprint the
//! plan registry content-addresses artifacts by.
//!
//! A [`PipelineDesc`] captures everything about a compiled
//! [`HePipeline`] that planning depends on — stage structure, logical
//! dimensions, Static-Scaling factors, and content digests of the
//! probed affine matrices — while staying *form-independent*: two
//! pipelines that differ only in which composite PAF sits in each slot
//! describe identically, because [`HePipeline::with_pafs`] keeps the
//! probed matrices, scales, taps, and slot layout untouched. That is
//! exactly the invariance a plan cache needs: a stored plan applies to
//! any form assignment of the same model.
//!
//! The probed weights themselves are **not** serialized — only their
//! [`fnv1a_64`] digests over exact `f64` bit patterns (weights are the
//! loading process's responsibility; see `docs/ARTIFACT_FORMAT.md`).

use crate::pipeline::{HePipeline, Stage};
use serde::{Deserialize, Error, Serialize, Value};

/// 64-bit FNV-1a over a byte stream — the stable, dependency-free hash
/// behind matrix digests and registry content addresses. Not
/// collision-resistant against adversaries; registries are a cache,
/// not an integrity boundary.
///
/// # Example
///
/// ```
/// use smartpaf_heinfer::fnv1a_64;
///
/// assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
/// assert_ne!(fnv1a_64(b"a"), fnv1a_64(b"b"));
/// ```
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn digest_f64s(h: &mut u64, values: impl IntoIterator<Item = f64>) {
    for v in values {
        for b in v.to_bits().to_le_bytes() {
            *h ^= u64::from(b);
            *h = h.wrapping_mul(0x100000001b3);
        }
    }
}

/// One stage of a [`PipelineDesc`]: the form-independent facts of the
/// corresponding [`Stage`].
#[derive(Debug, Clone, PartialEq)]
pub enum StageDesc {
    /// A probed affine segment, identified by shape and a content
    /// digest of its diagonals and bias.
    Affine {
        /// Logical output dimension of the probed matrix.
        out_dim: usize,
        /// Logical input dimension of the probed matrix.
        in_dim: usize,
        /// [`fnv1a_64`]-style digest over the matrix's generalized
        /// diagonals (offset + exact entry bits) and the bias vector.
        digest: u64,
    },
    /// A PAF-ReLU slot (the composite itself is deliberately absent).
    PafRelu {
        /// Static-Scaling input factor (`1/s`; 1.0 after folding).
        pre_scale: f64,
        /// Static-Scaling output factor (`s`; 1.0 after folding).
        post_scale: f64,
    },
    /// A PAF max-pool slot.
    PafMax {
        /// Number of window taps (the fold's operand count).
        taps: usize,
        /// Digest over every tap matrix, in order.
        taps_digest: u64,
        /// Static-Scaling output factor.
        post_scale: f64,
    },
}

/// Form-independent serializable description of a compiled
/// [`HePipeline`] — see the module docs.
///
/// # Example
///
/// ```
/// use smartpaf_heinfer::PipelineBuilder;
/// use smartpaf_nn::Linear;
/// use smartpaf_polyfit::{CompositePaf, PafForm};
/// use smartpaf_tensor::Rng64;
///
/// let build = |form| {
///     PipelineBuilder::new(&[4])
///         .affine(Linear::new(4, 4, &mut Rng64::new(7)))
///         .paf_relu(&CompositePaf::from_form(form), 2.0)
///         .compile()
/// };
/// // Same model, different PAF form: identical description.
/// let a = build(PafForm::F1G2).describe();
/// let b = build(PafForm::Alpha7).describe();
/// assert_eq!(a, b);
/// assert_eq!(a.num_paf_slots(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineDesc {
    /// Shared padded slot dimension.
    pub dim: usize,
    /// Logical input length.
    pub input_dim: usize,
    /// Logical output length.
    pub output_dim: usize,
    /// Per-stage descriptions, in execution order.
    pub stages: Vec<StageDesc>,
}

impl PipelineDesc {
    /// Number of PAF slots (ReLU + max-pool stages).
    pub fn num_paf_slots(&self) -> usize {
        self.stages
            .iter()
            .filter(|s| !matches!(s, StageDesc::Affine { .. }))
            .count()
    }
}

impl HePipeline {
    /// Builds the form-independent [`PipelineDesc`] of this pipeline.
    pub fn describe(&self) -> PipelineDesc {
        let stages = self
            .stages()
            .iter()
            .map(|s| match s {
                Stage::Affine { mat, bias } => {
                    let mut h: u64 = 0xcbf29ce484222325;
                    for (d, entries) in mat.diagonals() {
                        digest_f64s(&mut h, [d as f64]);
                        digest_f64s(&mut h, entries.iter().copied());
                    }
                    digest_f64s(&mut h, bias.iter().copied());
                    StageDesc::Affine {
                        out_dim: mat.out_dim(),
                        in_dim: mat.in_dim(),
                        digest: h,
                    }
                }
                Stage::PafRelu {
                    pre_scale,
                    post_scale,
                    ..
                } => StageDesc::PafRelu {
                    pre_scale: *pre_scale,
                    post_scale: *post_scale,
                },
                Stage::PafMax {
                    taps, post_scale, ..
                } => {
                    let mut h: u64 = 0xcbf29ce484222325;
                    for tap in taps {
                        for (d, entries) in tap.diagonals() {
                            digest_f64s(&mut h, [d as f64]);
                            digest_f64s(&mut h, entries.iter().copied());
                        }
                    }
                    StageDesc::PafMax {
                        taps: taps.len(),
                        taps_digest: h,
                        post_scale: *post_scale,
                    }
                }
            })
            .collect();
        PipelineDesc {
            dim: self.dim(),
            input_dim: self.input_dim(),
            output_dim: self.output_dim(),
            stages,
        }
    }
}

impl Serialize for StageDesc {
    fn serialize(&self) -> Value {
        match self {
            StageDesc::Affine {
                out_dim,
                in_dim,
                digest,
            } => Value::object([
                ("kind", "affine".serialize()),
                ("out_dim", out_dim.serialize()),
                ("in_dim", in_dim.serialize()),
                ("digest", digest.serialize()),
            ]),
            StageDesc::PafRelu {
                pre_scale,
                post_scale,
            } => Value::object([
                ("kind", "paf_relu".serialize()),
                ("pre_scale", pre_scale.serialize()),
                ("post_scale", post_scale.serialize()),
            ]),
            StageDesc::PafMax {
                taps,
                taps_digest,
                post_scale,
            } => Value::object([
                ("kind", "paf_max".serialize()),
                ("taps", taps.serialize()),
                ("taps_digest", taps_digest.serialize()),
                ("post_scale", post_scale.serialize()),
            ]),
        }
    }
}

impl Deserialize for StageDesc {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let kind = String::deserialize(value.req("kind")?)?;
        match kind.as_str() {
            "affine" => Ok(StageDesc::Affine {
                out_dim: usize::deserialize(value.req("out_dim")?)?,
                in_dim: usize::deserialize(value.req("in_dim")?)?,
                digest: u64::deserialize(value.req("digest")?)?,
            }),
            "paf_relu" => Ok(StageDesc::PafRelu {
                pre_scale: f64::deserialize(value.req("pre_scale")?)?,
                post_scale: f64::deserialize(value.req("post_scale")?)?,
            }),
            "paf_max" => Ok(StageDesc::PafMax {
                taps: usize::deserialize(value.req("taps")?)?,
                taps_digest: u64::deserialize(value.req("taps_digest")?)?,
                post_scale: f64::deserialize(value.req("post_scale")?)?,
            }),
            other => Err(Error::custom(format!("unknown stage kind `{other}`"))),
        }
    }
}

impl Serialize for PipelineDesc {
    fn serialize(&self) -> Value {
        Value::object([
            ("dim", self.dim.serialize()),
            ("input_dim", self.input_dim.serialize()),
            ("output_dim", self.output_dim.serialize()),
            ("stages", self.stages.serialize()),
        ])
    }
}

impl Deserialize for PipelineDesc {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(PipelineDesc {
            dim: usize::deserialize(value.req("dim")?)?,
            input_dim: usize::deserialize(value.req("input_dim")?)?,
            output_dim: usize::deserialize(value.req("output_dim")?)?,
            stages: Vec::<StageDesc>::deserialize(value.req("stages")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineBuilder;
    use serde::json;
    use smartpaf_nn::Conv2d;
    use smartpaf_polyfit::{CompositePaf, PafForm};
    use smartpaf_tensor::Rng64;

    fn sample_pipeline(seed: u64) -> HePipeline {
        let mut rng = Rng64::new(seed);
        let paf = CompositePaf::from_form(PafForm::F1G2);
        PipelineBuilder::new(&[1, 4, 4])
            .affine(Conv2d::new(1, 1, 3, 1, 1, &mut rng))
            .paf_relu(&paf, 4.0)
            .paf_maxpool(2, 2, &paf, 8.0)
            .compile()
    }

    #[test]
    fn describe_is_form_independent() {
        let base = sample_pipeline(3);
        let rich = CompositePaf::from_form(PafForm::Alpha7);
        let swapped = base.with_pafs(&[rich.clone(), rich]);
        assert_eq!(base.describe(), swapped.describe());
    }

    #[test]
    fn describe_distinguishes_weights_and_structure() {
        let a = sample_pipeline(3).describe();
        let b = sample_pipeline(4).describe();
        assert_ne!(a, b, "different weights must change affine digests");
        assert_eq!(a.stages.len(), b.stages.len());
        assert_eq!(a.num_paf_slots(), 2);
    }

    #[test]
    fn describe_is_stable_across_recompiles() {
        assert_eq!(sample_pipeline(9).describe(), sample_pipeline(9).describe());
    }

    #[test]
    fn desc_serde_round_trip() {
        let desc = sample_pipeline(5).describe();
        let text = json::to_string(&desc.serialize());
        let back = PipelineDesc::deserialize(&json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back, desc);
    }

    #[test]
    fn unknown_stage_kind_is_rejected() {
        let v = json::from_str(r#"{"kind":"conv"}"#).unwrap();
        assert!(StageDesc::deserialize(&v).is_err());
    }
}
