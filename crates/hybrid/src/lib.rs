//! Quantitative cost model behind the paper's Tab. 1: hybrid-scheme
//! offload (Gazelle / Delphi / Cheetah-style GC or MPC) versus
//! processing non-polynomial operators *inside* FHE as PAFs.
//!
//! The paper's Tab. 1 is a qualitative ✓/✗ matrix over three axes —
//! communication overhead, accuracy degradation, latency overhead.
//! This crate makes the matrix quantitative: a network model
//! (bandwidth + RTT), per-operator communication footprints published
//! for the hybrid protocols, and the [`smartpaf_ckks::cost`] analytic
//! model for in-FHE PAF latency. The FHE rows are traced through the
//! same [`Session`] plan path a deployment takes
//! ([`Objective::FixedForm`] over single-stage probe pipelines), so
//! the table prices exactly the schedule a compiled session executes.
//! The ✓/✗ pattern then *emerges* from thresholds instead of being
//! asserted.
//!
//! # Example
//!
//! ```
//! use smartpaf_hybrid::{NetworkConfig, Scheme, WorkloadSpec, tab1_matrix};
//!
//! let rows = tab1_matrix(&WorkloadSpec::resnet18_imagenet(), &NetworkConfig::lan());
//! let smart = rows.iter().find(|r| r.scheme == Scheme::SmartPaf).unwrap();
//! assert!(smart.low_communication && smart.low_accuracy_degradation && smart.low_latency);
//! ```

use smartpaf::{trace_modmuls, Objective, Session};
use smartpaf_ckks::CkksParams;
use smartpaf_heinfer::TraceReport;
use smartpaf_polyfit::PafForm;
use std::fmt;

/// Calibrated cost of one 64-bit modular multiply on a workstation
/// core (order-of-magnitude of the paper's AMD 2990WX) — re-exported
/// from [`smartpaf::SECONDS_PER_MODMUL`] so the Tab. 1 rows and the
/// Session planner's priced frontier can never drift apart.
pub const SECONDS_PER_MODMUL: f64 = smartpaf::SECONDS_PER_MODMUL;

/// Network link between the data owner and the compute server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// Usable bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// Round-trip time in seconds.
    pub rtt_sec: f64,
}

impl NetworkConfig {
    /// Datacenter LAN: 10 Gbit/s, 0.2 ms RTT.
    pub fn lan() -> Self {
        NetworkConfig {
            bandwidth_bytes_per_sec: 1.25e9,
            rtt_sec: 2e-4,
        }
    }

    /// Consumer WAN: 100 Mbit/s, 40 ms RTT — the setting where prior
    /// work reports hybrid schemes dominated by communication.
    pub fn wan() -> Self {
        NetworkConfig {
            bandwidth_bytes_per_sec: 1.25e7,
            rtt_sec: 4e-2,
        }
    }
}

/// Per-model non-polynomial workload (element counts of every ReLU and
/// MaxPool input in one inference).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Total ReLU input elements.
    pub relu_elements: usize,
    /// Total MaxPool input elements.
    pub maxpool_elements: usize,
    /// Number of non-polynomial *layers* (sets the GC round count).
    pub nonpoly_layers: usize,
}

impl WorkloadSpec {
    /// ResNet-18 at 224×224 (ImageNet-1k): ~2.23M ReLU elements across
    /// 17 ReLU layers plus the stem MaxPool.
    pub fn resnet18_imagenet() -> Self {
        WorkloadSpec {
            relu_elements: 2_228_224,
            maxpool_elements: 802_816,
            nonpoly_layers: 18,
        }
    }

    /// VGG-19 at 32×32 (CIFAR-10): ~320K ReLU elements across 18 ReLU
    /// layers plus 5 MaxPools.
    pub fn vgg19_cifar() -> Self {
        WorkloadSpec {
            relu_elements: 319_488,
            maxpool_elements: 106_496,
            nonpoly_layers: 23,
        }
    }

    /// All non-polynomial elements.
    pub fn total_elements(&self) -> usize {
        self.relu_elements + self.maxpool_elements
    }
}

/// The scheme families compared in Tab. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Gazelle-style per-inference GC: garbled tables shipped online.
    GazelleHybrid,
    /// Delphi-style preprocessed GC: tables offline, light online phase.
    DelphiHybrid,
    /// Pure FHE with the 27-degree minimax PAF (the F1/BTS setting).
    Fhe27Degree,
    /// Pure FHE with SMART-PAF's 14-degree PAF and trained coefficients.
    SmartPaf,
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Scheme::GazelleHybrid => "Gazelle-style hybrid (GC online)",
            Scheme::DelphiHybrid => "Delphi-style hybrid (GC offline)",
            Scheme::Fhe27Degree => "FHE + 27-degree PAF",
            Scheme::SmartPaf => "SMART-PAF (FHE + 14-degree PAF)",
        };
        f.write_str(s)
    }
}

/// Published per-element communication footprints (bytes per ReLU
/// element; MaxPool windows cost ~3 comparisons each, folded into the
/// same rate).
mod footprint {
    /// Gazelle §6: ~17 KB of garbled-circuit material per ReLU online.
    pub const GAZELLE_ONLINE_PER_RELU: f64 = 17_408.0;
    /// Delphi: ~2 KB offline preprocessing per ReLU…
    pub const DELPHI_OFFLINE_PER_RELU: f64 = 2_048.0;
    /// …plus ~176 B online.
    pub const DELPHI_ONLINE_PER_RELU: f64 = 176.0;
    /// GC evaluation CPU cost per ReLU (both parties, amortised).
    pub const GC_CPU_SEC_PER_RELU: f64 = 2.0e-6;
    /// Two message flows per non-polynomial layer.
    pub const ROUNDS_PER_LAYER: usize = 2;
}

/// Cost of running one model's non-polynomial workload under a scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchemeCost {
    /// Bytes exchanged during inference (online phase).
    pub online_bytes: f64,
    /// Bytes exchanged in preprocessing (offline phase).
    pub offline_bytes: f64,
    /// End-to-end latency of the non-polynomial operators (seconds),
    /// online phase, including communication.
    pub latency_sec: f64,
    /// Accuracy drop versus the unmodified model (percentage points,
    /// from the paper's Tab. 3 / our Tab. 3 reproduction).
    pub accuracy_drop_pct: f64,
}

/// Evaluates the cost model for one scheme.
pub fn scheme_cost(scheme: Scheme, w: &WorkloadSpec, net: &NetworkConfig) -> SchemeCost {
    use footprint::*;
    let elems = w.total_elements() as f64;
    let rounds_latency = (ROUNDS_PER_LAYER * w.nonpoly_layers) as f64 * net.rtt_sec;
    match scheme {
        Scheme::GazelleHybrid => {
            let online = elems * GAZELLE_ONLINE_PER_RELU;
            SchemeCost {
                online_bytes: online,
                offline_bytes: 0.0,
                latency_sec: online / net.bandwidth_bytes_per_sec
                    + rounds_latency
                    + elems * GC_CPU_SEC_PER_RELU,
                // GC computes exact ReLU/MaxPool: no approximation loss.
                accuracy_drop_pct: 0.0,
            }
        }
        Scheme::DelphiHybrid => {
            let online = elems * DELPHI_ONLINE_PER_RELU;
            SchemeCost {
                online_bytes: online,
                offline_bytes: elems * DELPHI_OFFLINE_PER_RELU,
                latency_sec: online / net.bandwidth_bytes_per_sec
                    + rounds_latency
                    + elems * GC_CPU_SEC_PER_RELU,
                accuracy_drop_pct: 0.0,
            }
        }
        Scheme::Fhe27Degree => fhe_cost(
            PafForm::MinimaxDeg27,
            w,
            // The 27-degree comparator preserves accuracy (69.3%).
            0.0,
        ),
        Scheme::SmartPaf => fhe_cost(
            PafForm::F1SqG1Sq,
            w,
            // Paper Tab. 4: 69.4% vs original 69.3% — no degradation
            // after SMART-PAF training.
            0.0,
        ),
    }
}

/// Plans a single-stage probe pipeline through the Session API with a
/// fixed form and returns the traced schedule — the same plan → trace
/// path a deployment takes, so Tab. 1 prices exactly what a
/// [`smartpaf::CompiledSession`] would execute.
fn session_trace(form: PafForm, pool: bool) -> TraceReport {
    let builder = if pool {
        Session::builder(&[1, 2, 2]).maxpool(2, 2, 1.0)
    } else {
        Session::builder(&[8]).relu(1.0)
    };
    builder
        .params(CkksParams::paper_scale())
        .objective(Objective::FixedForm(form))
        .plan()
        .expect("the paper-scale chain runs any PAF with bootstrapping")
        .chosen_trace()
        .clone()
}

/// FHE latency rows priced through a [`Session`] plan: a single
/// PAF-ReLU stage and a single 2×2 PAF-max-pool stage are planned with
/// [`Objective::FixedForm`] (no ciphertext arithmetic), and the
/// recorded level / bootstrap / exact-ct-mult schedule is priced with
/// the analytic per-op costs. Unlike the earlier analytic-only model,
/// the pool row follows the *actual* pairwise fold schedule —
/// including any bootstraps the paper-scale chain forces — rather than
/// a flat 0.75× ReLU heuristic.
fn fhe_cost(form: PafForm, w: &WorkloadSpec, accuracy_drop_pct: f64) -> SchemeCost {
    let params = CkksParams::paper_scale();
    let slots = (params.n / 2) as f64;

    // One slot-batch of ReLU: `slots` elements per run.
    let relu_trace = session_trace(form, false);
    let relu_per_element = trace_modmuls(&params, &relu_trace) as f64 * SECONDS_PER_MODMUL / slots;

    // One slot-batch of 2×2 max pooling: the trace covers 4 input
    // elements per window, 3 pairwise PAF-max folds — per input
    // element this is the 0.75× sign-eval rate the old heuristic
    // assumed, but with the fold's real level schedule.
    let pool_trace = session_trace(form, true);
    let pool_per_element = trace_modmuls(&params, &pool_trace) as f64 * SECONDS_PER_MODMUL / slots;

    SchemeCost {
        // Only the input/output ciphertexts travel; non-polynomial ops
        // are computed server-side.
        online_bytes: 2.0 * (params.n as f64) * 8.0 * (params.depth as f64 + 1.0),
        offline_bytes: 0.0,
        latency_sec: w.relu_elements as f64 * relu_per_element
            + w.maxpool_elements as f64 * pool_per_element,
        accuracy_drop_pct,
    }
}

/// One row of the quantitative Tab. 1.
#[derive(Debug, Clone)]
pub struct Tab1Row {
    /// Scheme family.
    pub scheme: Scheme,
    /// Underlying cost numbers.
    pub cost: SchemeCost,
    /// ✓ when total communication stays below 20 MB per inference
    /// (a couple of ciphertexts; the hybrid schemes ship gigabytes).
    pub low_communication: bool,
    /// ✓ when accuracy drop stays below 1 percentage point.
    pub low_accuracy_degradation: bool,
    /// ✓ when latency stays below half the 27-degree FHE reference —
    /// the slow scheme every row of the paper's Tab. 1 is implicitly
    /// measured against.
    pub low_latency: bool,
}

/// Builds the quantitative Tab. 1 matrix for a workload and network.
pub fn tab1_matrix(w: &WorkloadSpec, net: &NetworkConfig) -> Vec<Tab1Row> {
    let schemes = [
        Scheme::GazelleHybrid,
        Scheme::DelphiHybrid,
        Scheme::Fhe27Degree,
        Scheme::SmartPaf,
    ];
    let costs: Vec<SchemeCost> = schemes.iter().map(|&s| scheme_cost(s, w, net)).collect();
    let reference = scheme_cost(Scheme::Fhe27Degree, w, net).latency_sec;
    schemes
        .iter()
        .zip(costs)
        .map(|(&scheme, cost)| Tab1Row {
            scheme,
            low_communication: cost.online_bytes + cost.offline_bytes < 20e6,
            low_accuracy_degradation: cost.accuracy_drop_pct < 1.0,
            low_latency: cost.latency_sec < 0.5 * reference,
            cost,
        })
        .collect()
}

/// The bandwidth (bytes/s) at which a hybrid scheme's communication
/// latency equals the SMART-PAF in-FHE latency — above it the hybrid
/// wins on latency, below it PAF-in-FHE wins.
pub fn crossover_bandwidth(scheme: Scheme, w: &WorkloadSpec) -> f64 {
    let paf = scheme_cost(Scheme::SmartPaf, w, &NetworkConfig::lan());
    let bytes = match scheme {
        Scheme::GazelleHybrid => w.total_elements() as f64 * footprint::GAZELLE_ONLINE_PER_RELU,
        Scheme::DelphiHybrid => w.total_elements() as f64 * footprint::DELPHI_ONLINE_PER_RELU,
        _ => return f64::INFINITY,
    };
    bytes / paf.latency_sec
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartpaf_ckks::cost::{project_seconds, relu_op_counts};
    use smartpaf_polyfit::CompositePaf;

    #[test]
    fn hybrid_ships_orders_of_magnitude_more_bytes() {
        let w = WorkloadSpec::resnet18_imagenet();
        let net = NetworkConfig::lan();
        let gazelle = scheme_cost(Scheme::GazelleHybrid, &w, &net);
        let smart = scheme_cost(Scheme::SmartPaf, &w, &net);
        assert!(gazelle.online_bytes > 1000.0 * (smart.online_bytes + smart.offline_bytes));
    }

    #[test]
    fn wan_makes_hybrid_communication_dominant() {
        let w = WorkloadSpec::resnet18_imagenet();
        let wan = scheme_cost(Scheme::GazelleHybrid, &w, &NetworkConfig::wan());
        let lan = scheme_cost(Scheme::GazelleHybrid, &w, &NetworkConfig::lan());
        assert!(wan.latency_sec > 10.0 * lan.latency_sec);
    }

    #[test]
    fn smartpaf_faster_than_27_degree() {
        let w = WorkloadSpec::resnet18_imagenet();
        let net = NetworkConfig::lan();
        let deep = scheme_cost(Scheme::Fhe27Degree, &w, &net);
        let smart = scheme_cost(Scheme::SmartPaf, &w, &net);
        let speedup = deep.latency_sec / smart.latency_sec;
        // Paper reports 7.81×; the analytic model should land within
        // the same regime (>2×).
        assert!(speedup > 2.0, "speedup {speedup}");
    }

    #[test]
    fn tab1_reproduces_paper_pattern() {
        let rows = tab1_matrix(&WorkloadSpec::resnet18_imagenet(), &NetworkConfig::lan());
        let get = |s: Scheme| rows.iter().find(|r| r.scheme == s).expect("row");
        // Hybrid rows: high communication.
        assert!(!get(Scheme::GazelleHybrid).low_communication);
        assert!(!get(Scheme::DelphiHybrid).low_communication);
        // FHE accelerator row (27-degree): low comm + accuracy, slow.
        let deep = get(Scheme::Fhe27Degree);
        assert!(deep.low_communication && deep.low_accuracy_degradation);
        assert!(!deep.low_latency);
        // SMART-PAF: all three ✓.
        let smart = get(Scheme::SmartPaf);
        assert!(smart.low_communication && smart.low_accuracy_degradation && smart.low_latency);
    }

    #[test]
    fn crossover_bandwidth_is_finite_and_positive() {
        let w = WorkloadSpec::vgg19_cifar();
        let bw = crossover_bandwidth(Scheme::GazelleHybrid, &w);
        assert!(bw.is_finite() && bw > 0.0);
        // Below the crossover, hybrid is slower than SMART-PAF.
        let slow_net = NetworkConfig {
            bandwidth_bytes_per_sec: bw / 100.0,
            rtt_sec: 0.0,
        };
        let hybrid = scheme_cost(Scheme::GazelleHybrid, &w, &slow_net);
        let smart = scheme_cost(Scheme::SmartPaf, &w, &slow_net);
        assert!(hybrid.latency_sec > smart.latency_sec);
    }

    #[test]
    fn delphi_moves_cost_offline() {
        let w = WorkloadSpec::resnet18_imagenet();
        let net = NetworkConfig::wan();
        let gazelle = scheme_cost(Scheme::GazelleHybrid, &w, &net);
        let delphi = scheme_cost(Scheme::DelphiHybrid, &w, &net);
        assert!(delphi.online_bytes < gazelle.online_bytes / 10.0);
        assert!(delphi.offline_bytes > 0.0);
        assert!(delphi.latency_sec < gazelle.latency_sec);
    }

    #[test]
    fn traced_rows_stay_in_the_analytic_regime() {
        // The trace-driven rows price the same ct-mult schedule the
        // old analytic-only model counted, so a ReLU-only workload
        // must land within a small constant factor of it.
        let w = WorkloadSpec {
            relu_elements: 1_000_000,
            maxpool_elements: 0,
            nonpoly_layers: 1,
        };
        let params = CkksParams::paper_scale();
        let slots = (params.n / 2) as f64;
        let net = NetworkConfig::lan();
        for (scheme, form) in [
            (Scheme::SmartPaf, PafForm::F1SqG1Sq),
            (Scheme::Fhe27Degree, PafForm::MinimaxDeg27),
        ] {
            let traced = scheme_cost(scheme, &w, &net).latency_sec;
            let counts = relu_op_counts(&params, &CompositePaf::from_form(form));
            let analytic =
                w.relu_elements as f64 * project_seconds(&counts, SECONDS_PER_MODMUL) / slots;
            let ratio = traced / analytic;
            assert!(
                ratio > 0.2 && ratio < 5.0,
                "{scheme}: traced {traced} vs analytic {analytic} (ratio {ratio})"
            );
        }
    }

    #[test]
    fn deep_pool_fold_pays_for_bootstraps() {
        // The 27-degree comparator's 2×2 pool fold cannot finish the
        // paper-scale chain leveled — the traced row charges real
        // bootstraps where the old heuristic charged a flat 0.75×.
        let pool_only = WorkloadSpec {
            relu_elements: 0,
            maxpool_elements: 802_816,
            nonpoly_layers: 1,
        };
        let net = NetworkConfig::lan();
        let deep = scheme_cost(Scheme::Fhe27Degree, &pool_only, &net);
        let smart = scheme_cost(Scheme::SmartPaf, &pool_only, &net);
        // Well beyond the bare exact-ct-mult ratio (~2.8): bootstraps
        // dominate the deep fold.
        assert!(
            deep.latency_sec > 4.0 * smart.latency_sec,
            "deep {} vs smart {}",
            deep.latency_sec,
            smart.latency_sec
        );
    }

    #[test]
    fn workload_totals_add_up() {
        let w = WorkloadSpec::resnet18_imagenet();
        assert_eq!(w.total_elements(), w.relu_elements + w.maxpool_elements);
    }

    #[test]
    fn larger_workload_costs_more_everywhere() {
        let small = WorkloadSpec::vgg19_cifar();
        let big = WorkloadSpec::resnet18_imagenet();
        let net = NetworkConfig::wan();
        for s in [
            Scheme::GazelleHybrid,
            Scheme::DelphiHybrid,
            Scheme::Fhe27Degree,
            Scheme::SmartPaf,
        ] {
            let cs = scheme_cost(s, &small, &net);
            let cb = scheme_cost(s, &big, &net);
            assert!(cb.latency_sec > cs.latency_sec, "{s}");
        }
    }

    #[test]
    fn lan_flips_latency_verdict_for_delphi() {
        // On a fast LAN the hybrid's online phase is quick — its
        // latency ✗ in Tab. 1 is a WAN statement. Our model shows the
        // dependence explicitly.
        let w = WorkloadSpec::vgg19_cifar();
        let lan = scheme_cost(Scheme::DelphiHybrid, &w, &NetworkConfig::lan());
        let wan = scheme_cost(Scheme::DelphiHybrid, &w, &NetworkConfig::wan());
        assert!(lan.latency_sec < wan.latency_sec);
    }
}
