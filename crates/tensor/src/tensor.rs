//! The core dense tensor type.

use crate::init::Rng64;
use crate::shape::Shape;
use std::fmt;

/// A contiguous, row-major, `f32` dense tensor.
///
/// This is the single data type flowing through the whole workspace:
/// activations, weights, gradients, profiled distributions.
///
/// # Example
///
/// ```
/// use smartpaf_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.numel(), 6);
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {} ({} elements)",
            data.len(),
            shape,
            shape.numel()
        );
        Tensor { data, shape }
    }

    /// All-zeros tensor.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![0.0; shape.numel()],
            shape,
        }
    }

    /// All-ones tensor.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Constant-filled tensor.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![value; shape.numel()],
            shape,
        }
    }

    /// Identity matrix of size `n`×`n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Uniform random tensor in `[lo, hi)`, deterministic in `rng`.
    pub fn rand_uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut Rng64) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.numel())
            .map(|_| lo + (hi - lo) * rng.next_f32())
            .collect();
        Tensor { data, shape }
    }

    /// Gaussian random tensor with the given mean and standard deviation.
    pub fn rand_normal(dims: &[usize], mean: f32, std: f32, rng: &mut Rng64) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.numel())
            .map(|_| mean + std * rng.next_gaussian())
            .collect();
        Tensor { data, shape }
    }

    /// Evenly spaced values from `start` with step `step`.
    pub fn arange(n: usize, start: f32, step: f32) -> Self {
        let data = (0..n).map(|i| start + step * i as f32).collect();
        Tensor::from_vec(data, &[n])
    }

    /// `n` points linearly spaced over `[lo, hi]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn linspace(lo: f32, hi: f32, n: usize) -> Self {
        assert!(n >= 2, "linspace needs at least two points");
        let step = (hi - lo) / (n - 1) as f32;
        let data = (0..n).map(|i| lo + step * i as f32).collect();
        Tensor::from_vec(data, &[n])
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension extents as a slice (shorthand for `shape().dims()`).
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the backing data, row-major.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing data, row-major.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the backing vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-bounds index.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.shape.offset(idx)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-bounds index.
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let off = self.shape.offset(idx);
        self.data[off] = value;
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.numel(),
            self.numel(),
            "cannot reshape {} elements into {}",
            self.numel(),
            shape
        );
        Tensor {
            data: self.data.clone(),
            shape,
        }
    }

    /// In-place reshape (no copy).
    ///
    /// # Panics
    ///
    /// Panics if element counts differ.
    pub fn reshape_in_place(&mut self, dims: &[usize]) {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.numel(),
            self.numel(),
            "reshape element count mismatch"
        );
        self.shape = shape;
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors elementwise.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "zip_map shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        Tensor {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            shape: self.shape.clone(),
        }
    }

    /// Returns the row `i` of a 2-D tensor as a slice.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is 2-D and `i` is in bounds.
    pub fn row(&self, i: usize) -> &[f32] {
        assert_eq!(self.shape.ndim(), 2, "row() requires a 2-D tensor");
        let cols = self.shape.dim(1);
        &self.data[i * cols..(i + 1) * cols]
    }

    /// Extracts sample `i` of a batched tensor (first axis), keeping the
    /// remaining axes.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is 0-D or `i` is out of bounds.
    pub fn slice_batch(&self, i: usize) -> Tensor {
        assert!(self.shape.ndim() >= 1, "slice_batch requires rank >= 1");
        let n = self.shape.dim(0);
        assert!(i < n, "batch index {i} out of bounds ({n})");
        let rest: Vec<usize> = self.shape.dims()[1..].to_vec();
        let chunk = self.numel() / n;
        let dims = if rest.is_empty() { vec![1] } else { rest };
        Tensor::from_vec(self.data[i * chunk..(i + 1) * chunk].to_vec(), &dims)
    }

    /// Concatenates tensors along a new leading batch axis.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or shapes differ.
    pub fn stack(items: &[Tensor]) -> Tensor {
        assert!(!items.is_empty(), "stack of zero tensors");
        let inner = items[0].shape.clone();
        let mut data = Vec::with_capacity(items.len() * inner.numel());
        for t in items {
            assert_eq!(t.shape, inner, "stack shape mismatch");
            data.extend_from_slice(&t.data);
        }
        let mut dims = vec![items.len()];
        dims.extend_from_slice(inner.dims());
        Tensor::from_vec(data, &dims)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let preview: Vec<f32> = self.data.iter().take(8).copied().collect();
        write!(
            f,
            "Tensor(shape={}, data[..{}]={:?}{})",
            self.shape,
            preview.len(),
            preview,
            if self.numel() > 8 { ", ..." } else { "" }
        )
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn set_and_map() {
        let mut t = Tensor::zeros(&[2, 2]);
        t.set(&[1, 1], 5.0);
        let u = t.map(|x| x * 2.0);
        assert_eq!(u.at(&[1, 1]), 10.0);
        assert_eq!(u.at(&[0, 0]), 0.0);
    }

    #[test]
    fn reshape_roundtrip() {
        let t = Tensor::arange(12, 0.0, 1.0);
        let m = t.reshape(&[3, 4]);
        assert_eq!(m.at(&[2, 3]), 11.0);
        let back = m.reshape(&[12]);
        assert_eq!(back.data(), t.data());
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_bad_count() {
        Tensor::zeros(&[4]).reshape(&[3]);
    }

    #[test]
    fn eye_is_identity_under_matmul() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let i = Tensor::eye(2);
        assert_eq!(a.matmul(&i).data(), a.data());
        assert_eq!(i.matmul(&a).data(), a.data());
    }

    #[test]
    fn stack_and_slice_batch() {
        let a = Tensor::full(&[2, 2], 1.0);
        let b = Tensor::full(&[2, 2], 2.0);
        let s = Tensor::stack(&[a.clone(), b.clone()]);
        assert_eq!(s.dims(), &[2, 2, 2]);
        assert_eq!(s.slice_batch(0), a);
        assert_eq!(s.slice_batch(1), b);
    }

    #[test]
    fn linspace_endpoints() {
        let t = Tensor::linspace(-1.0, 1.0, 5);
        assert_eq!(t.data(), &[-1.0, -0.5, 0.0, 0.5, 1.0]);
    }

    #[test]
    fn rand_deterministic() {
        let mut r1 = Rng64::new(42);
        let mut r2 = Rng64::new(42);
        let a = Tensor::rand_uniform(&[8], 0.0, 1.0, &mut r1);
        let b = Tensor::rand_uniform(&[8], 0.0, 1.0, &mut r2);
        assert_eq!(a, b);
        assert!(a.data().iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn rand_normal_moments() {
        let mut rng = Rng64::new(7);
        let t = Tensor::rand_normal(&[20000], 1.0, 2.0, &mut rng);
        let mean = t.data().iter().sum::<f32>() / t.numel() as f32;
        let var = t
            .data()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / t.numel() as f32;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }
}
