//! Elementwise, reduction, and linear-algebra operations on [`Tensor`].

use crate::tensor::Tensor;

impl Tensor {
    /// Elementwise sum of two same-shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// Adds `other` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data_mut().iter_mut().zip(other.data()) {
            *a += b;
        }
    }

    /// `self += alpha * other`, the classic AXPY update.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, b) in self.data_mut().iter_mut().zip(other.data()) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by a scalar, returning a new tensor.
    pub fn scale(&self, alpha: f32) -> Tensor {
        self.map(|x| x * alpha)
    }

    /// Adds a scalar to every element, returning a new tensor.
    pub fn add_scalar(&self, c: f32) -> Tensor {
        self.map(|x| x + c)
    }

    /// Sum of all elements (f64 accumulator for stability).
    pub fn sum(&self) -> f32 {
        self.data().iter().map(|&x| x as f64).sum::<f64>() as f32
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.numel() as f32
    }

    /// Population variance of all elements.
    pub fn variance(&self) -> f32 {
        let m = self.mean() as f64;
        let ss: f64 = self
            .data()
            .iter()
            .map(|&x| {
                let d = x as f64 - m;
                d * d
            })
            .sum();
        (ss / self.numel() as f64) as f32
    }

    /// Maximum element.
    pub fn max(&self) -> f32 {
        self.data()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    pub fn min(&self) -> f32 {
        self.data().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Maximum absolute value; the quantity Dynamic Scaling divides by.
    pub fn abs_max(&self) -> f32 {
        self.data().iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Index of the maximum element (first on ties).
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor (impossible by construction).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &x) in self.data().iter().enumerate() {
            if x > best_v {
                best_v = x;
                best = i;
            }
        }
        best
    }

    /// Row-wise argmax of a 2-D tensor; used for classification accuracy.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.shape().ndim(), 2, "argmax_rows requires a 2-D tensor");
        (0..self.shape().dim(0))
            .map(|i| {
                let row = self.row(i);
                let mut best = 0;
                for (j, &x) in row.iter().enumerate() {
                    if x > row[best] {
                        best = j;
                    }
                }
                best
            })
            .collect()
    }

    /// Dense matrix multiplication of 2-D tensors: `[m,k] x [k,n] -> [m,n]`.
    ///
    /// Simple ikj-ordered kernel; fast enough for the scaled models used
    /// in the experiments and exactly reproducible.
    ///
    /// # Panics
    ///
    /// Panics unless both operands are 2-D with matching inner dims.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape().ndim(), 2, "matmul lhs must be 2-D");
        assert_eq!(other.shape().ndim(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape().dim(0), self.shape().dim(1));
        let (k2, n) = (other.shape().dim(0), other.shape().dim(1));
        assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
        let a = self.data();
        let b = other.data();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (p, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose2d(&self) -> Tensor {
        assert_eq!(self.shape().ndim(), 2, "transpose2d requires a 2-D tensor");
        let (m, n) = (self.shape().dim(0), self.shape().dim(1));
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data()[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Dot product of two same-shaped tensors viewed as flat vectors.
    ///
    /// # Panics
    ///
    /// Panics if element counts differ.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.numel(), other.numel(), "dot length mismatch");
        self.data()
            .iter()
            .zip(other.data())
            .map(|(&a, &b)| (a as f64) * (b as f64))
            .sum::<f64>() as f32
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Mean squared error against another tensor.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mse(&self, other: &Tensor) -> f32 {
        let d = self.sub(other);
        d.dot(&d) / d.numel() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(v.to_vec(), dims)
    }

    #[test]
    fn elementwise_ops() {
        let a = t(&[1.0, 2.0, 3.0], &[3]);
        let b = t(&[4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
        assert_eq!(a.add_scalar(1.0).data(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn axpy_updates() {
        let mut a = t(&[1.0, 1.0], &[2]);
        a.axpy(0.5, &t(&[2.0, 4.0], &[2]));
        assert_eq!(a.data(), &[2.0, 3.0]);
    }

    #[test]
    fn reductions() {
        let a = t(&[1.0, -3.0, 2.0, 0.0], &[4]);
        assert_eq!(a.sum(), 0.0);
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.max(), 2.0);
        assert_eq!(a.min(), -3.0);
        assert_eq!(a.abs_max(), 3.0);
        assert_eq!(a.argmax(), 2);
        assert!((a.variance() - 3.5).abs() < 1e-6);
    }

    #[test]
    fn matmul_known_values() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_transpose_identity() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let at = a.transpose2d();
        assert_eq!(at.dims(), &[3, 2]);
        assert_eq!(at.transpose2d(), a);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_dim_mismatch() {
        t(&[1.0, 2.0], &[1, 2]).matmul(&t(&[1.0], &[1, 1]));
    }

    #[test]
    fn argmax_rows_ties_first() {
        let a = t(&[1.0, 1.0, 0.0, 0.5, 0.9, 0.9], &[2, 3]);
        assert_eq!(a.argmax_rows(), vec![0, 1]);
    }

    #[test]
    fn dot_and_norm() {
        let a = t(&[3.0, 4.0], &[2]);
        assert_eq!(a.dot(&a), 25.0);
        assert_eq!(a.norm(), 5.0);
    }

    #[test]
    fn mse_zero_for_equal() {
        let a = t(&[1.0, 2.0], &[2]);
        assert_eq!(a.mse(&a), 0.0);
        assert_eq!(a.mse(&t(&[2.0, 3.0], &[2])), 1.0);
    }
}
