//! Deterministic random number generation.
//!
//! Everything stochastic in the workspace flows through [`Rng64`], a
//! small splitmix64/xoshiro-style generator with an explicit seed, so
//! that every experiment in EXPERIMENTS.md is exactly reproducible.

/// A deterministic 64-bit PRNG (xoshiro256++ seeded via splitmix64).
///
/// # Example
///
/// ```
/// use smartpaf_tensor::Rng64;
///
/// let mut a = Rng64::new(1);
/// let mut b = Rng64::new(1);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
    cached_gaussian: Option<f32>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng64 {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng64 {
            s,
            cached_gaussian: None,
        }
    }

    /// Derives an independent child generator; used to give each layer
    /// or dataset shard its own stream.
    pub fn fork(&mut self, tag: u64) -> Rng64 {
        Rng64::new(self.next_u64() ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        // 24 high bits -> exactly representable in f32.
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn next_below(&mut self, n: usize) -> usize {
        assert!(n > 0, "next_below(0)");
        // Rejection-free modulo is fine here: n is tiny vs 2^64 so the
        // bias is far below f32 noise in any experiment.
        (self.next_u64() % n as u64) as usize
    }

    /// Standard Gaussian via Box-Muller (cached pair).
    pub fn next_gaussian(&mut self) -> f32 {
        if let Some(g) = self.cached_gaussian.take() {
            return g;
        }
        // Avoid log(0).
        let u1 = (self.next_f64()).max(1e-300);
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached_gaussian = Some((r * theta.sin()) as f32);
        (r * theta.cos()) as f32
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i + 1);
            xs.swap(i, j);
        }
    }

    /// A random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        self.shuffle(&mut p);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng64::new(123);
        let mut b = Rng64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut r = Rng64::new(5);
        for _ in 0..10_000 {
            let x = r.next_f32();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Rng64::new(9);
        let n = 50_000;
        let xs: Vec<f32> = (0..n).map(|_| r.next_gaussian()).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn permutation_is_bijection() {
        let mut r = Rng64::new(3);
        let mut p = r.permutation(100);
        p.sort_unstable();
        assert_eq!(p, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fork_gives_independent_streams() {
        let mut root = Rng64::new(10);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn next_below_bounds() {
        let mut r = Rng64::new(17);
        for _ in 0..1000 {
            assert!(r.next_below(7) < 7);
        }
    }
}
