//! Shape bookkeeping for row-major tensors.

use std::fmt;

/// An owned tensor shape (list of dimension extents).
///
/// Row-major ("C") layout: the last dimension varies fastest.
///
/// # Example
///
/// ```
/// use smartpaf_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from dimension extents.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero; degenerate tensors are not
    /// needed anywhere in this workspace and banning them removes a
    /// class of edge cases from every kernel.
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.iter().all(|&d| d > 0),
            "zero-sized dimension in shape {dims:?}"
        );
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Extent of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.ndim()`.
    pub fn dim(&self, i: usize) -> usize {
        self.dims[i]
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Linear offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has the wrong rank or is out of bounds.
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.dims.len(), "index rank mismatch");
        let strides = self.strides();
        idx.iter()
            .zip(&self.dims)
            .zip(&strides)
            .map(|((&i, &d), &s)| {
                assert!(i < d, "index {i} out of bounds for dim of extent {d}");
                i * s
            })
            .sum()
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.ndim(), 3);
    }

    #[test]
    fn offset_matches_manual() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 23);
        assert_eq!(s.offset(&[1, 0, 2]), 14);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_oob_panics() {
        Shape::new(&[2, 2]).offset(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "zero-sized")]
    fn zero_dim_rejected() {
        Shape::new(&[3, 0]);
    }

    #[test]
    fn scalar_rank_zero() {
        let s = Shape::new(&[]);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.offset(&[]), 0);
    }
}
