//! im2col-based 2-D convolution with full gradients.
//!
//! Layout convention: activations are `[N, C, H, W]`, weights are
//! `[O, C, KH, KW]`, biases are `[O]`.

use crate::tensor::Tensor;

/// Geometry of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvSpec {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
}

impl ConvSpec {
    /// Creates a square-kernel spec.
    pub fn new(k: usize, stride: usize, padding: usize) -> Self {
        assert!(k > 0 && stride > 0, "kernel and stride must be positive");
        ConvSpec {
            kh: k,
            kw: k,
            stride,
            padding,
        }
    }

    /// Output spatial size for an input of extent `h`.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the padded input.
    pub fn out_dim(&self, h: usize, k: usize) -> usize {
        let padded = h + 2 * self.padding;
        assert!(padded >= k, "kernel {k} larger than padded input {padded}");
        (padded - k) / self.stride + 1
    }
}

/// Gradients of a convolution with respect to all its inputs.
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient w.r.t. the input activations, `[N, C, H, W]`.
    pub grad_input: Tensor,
    /// Gradient w.r.t. the weights, `[O, C, KH, KW]`.
    pub grad_weight: Tensor,
    /// Gradient w.r.t. the bias, `[O]`.
    pub grad_bias: Tensor,
}

/// Unfolds one sample `[C, H, W]` into a `[C*KH*KW, OH*OW]` matrix.
///
/// # Panics
///
/// Panics unless the input is 3-D.
pub fn im2col(input: &Tensor, spec: &ConvSpec) -> Tensor {
    assert_eq!(input.shape().ndim(), 3, "im2col expects [C,H,W]");
    let (c, h, w) = (input.dims()[0], input.dims()[1], input.dims()[2]);
    let oh = spec.out_dim(h, spec.kh);
    let ow = spec.out_dim(w, spec.kw);
    let rows = c * spec.kh * spec.kw;
    let cols = oh * ow;
    let mut out = vec![0.0f32; rows * cols];
    let data = input.data();
    let pad = spec.padding as isize;
    for ci in 0..c {
        for ki in 0..spec.kh {
            for kj in 0..spec.kw {
                let r = (ci * spec.kh + ki) * spec.kw + kj;
                for oi in 0..oh {
                    let ii = (oi * spec.stride) as isize + ki as isize - pad;
                    if ii < 0 || ii >= h as isize {
                        continue;
                    }
                    for oj in 0..ow {
                        let jj = (oj * spec.stride) as isize + kj as isize - pad;
                        if jj < 0 || jj >= w as isize {
                            continue;
                        }
                        out[r * cols + oi * ow + oj] =
                            data[(ci * h + ii as usize) * w + jj as usize];
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[rows, cols])
}

/// Folds a `[C*KH*KW, OH*OW]` matrix back onto a `[C, H, W]` grid,
/// accumulating overlapping contributions (adjoint of [`im2col`]).
fn col2im(cols: &Tensor, c: usize, h: usize, w: usize, spec: &ConvSpec) -> Tensor {
    let oh = spec.out_dim(h, spec.kh);
    let ow = spec.out_dim(w, spec.kw);
    let ncols = oh * ow;
    let mut out = vec![0.0f32; c * h * w];
    let data = cols.data();
    let pad = spec.padding as isize;
    for ci in 0..c {
        for ki in 0..spec.kh {
            for kj in 0..spec.kw {
                let r = (ci * spec.kh + ki) * spec.kw + kj;
                for oi in 0..oh {
                    let ii = (oi * spec.stride) as isize + ki as isize - pad;
                    if ii < 0 || ii >= h as isize {
                        continue;
                    }
                    for oj in 0..ow {
                        let jj = (oj * spec.stride) as isize + kj as isize - pad;
                        if jj < 0 || jj >= w as isize {
                            continue;
                        }
                        out[(ci * h + ii as usize) * w + jj as usize] +=
                            data[r * ncols + oi * ow + oj];
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[c, h, w])
}

/// Batched 2-D convolution: `[N,C,H,W] * [O,C,KH,KW] + [O] -> [N,O,OH,OW]`.
///
/// # Panics
///
/// Panics on rank or channel mismatches.
pub fn conv2d(input: &Tensor, weight: &Tensor, bias: &Tensor, spec: &ConvSpec) -> Tensor {
    assert_eq!(input.shape().ndim(), 4, "conv2d input must be [N,C,H,W]");
    assert_eq!(
        weight.shape().ndim(),
        4,
        "conv2d weight must be [O,C,KH,KW]"
    );
    let (n, c, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let (o, wc, kh, kw) = (
        weight.dims()[0],
        weight.dims()[1],
        weight.dims()[2],
        weight.dims()[3],
    );
    assert_eq!(c, wc, "channel mismatch: input {c}, weight {wc}");
    assert_eq!((kh, kw), (spec.kh, spec.kw), "kernel/spec mismatch");
    assert_eq!(bias.numel(), o, "bias length mismatch");
    let oh = spec.out_dim(h, kh);
    let ow = spec.out_dim(w, kw);
    let wmat = weight.reshape(&[o, c * kh * kw]);
    let mut out = Vec::with_capacity(n * o * oh * ow);
    for b in 0..n {
        let sample = input.slice_batch(b);
        let cols = im2col(&sample, spec);
        let y = wmat.matmul(&cols); // [O, OH*OW]
        for oi in 0..o {
            let bval = bias.data()[oi];
            out.extend(y.row(oi).iter().map(|&v| v + bval));
        }
    }
    Tensor::from_vec(out, &[n, o, oh, ow])
}

/// Backward pass of [`conv2d`].
///
/// `grad_output` must be `[N, O, OH, OW]` as produced by the forward
/// pass on the same `input`/`weight`/`spec`.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
    spec: &ConvSpec,
) -> Conv2dGrads {
    let (n, c, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let (o, _, kh, kw) = (
        weight.dims()[0],
        weight.dims()[1],
        weight.dims()[2],
        weight.dims()[3],
    );
    let oh = spec.out_dim(h, kh);
    let ow = spec.out_dim(w, kw);
    assert_eq!(
        grad_output.dims(),
        &[n, o, oh, ow],
        "grad_output shape mismatch"
    );

    let wmat = weight.reshape(&[o, c * kh * kw]);
    let wmat_t = wmat.transpose2d();
    let mut grad_w = Tensor::zeros(&[o, c * kh * kw]);
    let mut grad_b = Tensor::zeros(&[o]);
    let mut grad_in = Vec::with_capacity(n * c * h * w);

    for b in 0..n {
        let sample = input.slice_batch(b);
        let cols = im2col(&sample, spec);
        let gout = grad_output.slice_batch(b).reshape(&[o, oh * ow]);
        // dW += dY * cols^T
        grad_w.add_assign(&gout.matmul(&cols.transpose2d()));
        // db += row sums of dY
        for oi in 0..o {
            grad_b.data_mut()[oi] += gout.row(oi).iter().sum::<f32>();
        }
        // dX = col2im(W^T * dY)
        let gcols = wmat_t.matmul(&gout);
        let gx = col2im(&gcols, c, h, w, spec);
        grad_in.extend_from_slice(gx.data());
    }

    Conv2dGrads {
        grad_input: Tensor::from_vec(grad_in, &[n, c, h, w]),
        grad_weight: grad_w.reshape(&[o, c, kh, kw]),
        grad_bias: grad_b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Rng64;

    #[test]
    fn identity_kernel_passthrough() {
        // 1x1 kernel of value 1 reproduces the input.
        let x = Tensor::arange(9, 1.0, 1.0).reshape(&[1, 1, 3, 3]);
        let w = Tensor::ones(&[1, 1, 1, 1]);
        let b = Tensor::zeros(&[1]);
        let spec = ConvSpec::new(1, 1, 0);
        let y = conv2d(&x, &w, &b, &spec);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn known_3x3_sum_kernel() {
        // All-ones 3x3 kernel over a 3x3 input with no padding = sum.
        let x = Tensor::arange(9, 1.0, 1.0).reshape(&[1, 1, 3, 3]);
        let w = Tensor::ones(&[1, 1, 3, 3]);
        let b = Tensor::full(&[1], 0.5);
        let spec = ConvSpec::new(3, 1, 0);
        let y = conv2d(&x, &w, &b, &spec);
        assert_eq!(y.dims(), &[1, 1, 1, 1]);
        assert_eq!(y.data()[0], 45.5);
    }

    #[test]
    fn padding_preserves_size() {
        let x = Tensor::ones(&[2, 3, 8, 8]);
        let w = Tensor::ones(&[4, 3, 3, 3]);
        let b = Tensor::zeros(&[4]);
        let spec = ConvSpec::new(3, 1, 1);
        let y = conv2d(&x, &w, &b, &spec);
        assert_eq!(y.dims(), &[2, 4, 8, 8]);
        // Interior output = 3*3*3 = 27 ones.
        assert_eq!(y.at(&[0, 0, 4, 4]), 27.0);
        // Corner output sees only a 2x2 window per channel = 12.
        assert_eq!(y.at(&[0, 0, 0, 0]), 12.0);
    }

    #[test]
    fn stride_halves_output() {
        let x = Tensor::ones(&[1, 1, 8, 8]);
        let w = Tensor::ones(&[1, 1, 2, 2]);
        let b = Tensor::zeros(&[1]);
        let spec = ConvSpec {
            kh: 2,
            kw: 2,
            stride: 2,
            padding: 0,
        };
        let y = conv2d(&x, &w, &b, &spec);
        assert_eq!(y.dims(), &[1, 1, 4, 4]);
    }

    /// Finite-difference check of all three conv gradients.
    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng64::new(11);
        let x = Tensor::rand_normal(&[2, 2, 5, 5], 0.0, 1.0, &mut rng);
        let w = Tensor::rand_normal(&[3, 2, 3, 3], 0.0, 0.5, &mut rng);
        let b = Tensor::rand_normal(&[3], 0.0, 0.5, &mut rng);
        let spec = ConvSpec::new(3, 1, 1);

        // Loss = sum(conv(x)) so dL/dY = 1.
        let y = conv2d(&x, &w, &b, &spec);
        let gout = Tensor::ones(y.dims());
        let grads = conv2d_backward(&x, &w, &gout, &spec);

        let eps = 1e-2f32;
        let loss = |x: &Tensor, w: &Tensor, b: &Tensor| conv2d(x, w, b, &spec).sum();

        // Check a scattering of coordinates in each gradient.
        for &i in &[0usize, 17, 49, 99] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = (loss(&xp, &w, &b) - loss(&xm, &w, &b)) / (2.0 * eps);
            let an = grads.grad_input.data()[i];
            assert!((fd - an).abs() < 0.05, "dX[{i}]: fd {fd} vs an {an}");
        }
        for &i in &[0usize, 10, 25, 53] {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let fd = (loss(&x, &wp, &b) - loss(&x, &wm, &b)) / (2.0 * eps);
            let an = grads.grad_weight.data()[i];
            assert!((fd - an).abs() < 0.05, "dW[{i}]: fd {fd} vs an {an}");
        }
        for i in 0..3 {
            let mut bp = b.clone();
            bp.data_mut()[i] += eps;
            let mut bm = b.clone();
            bm.data_mut()[i] -= eps;
            let fd = (loss(&x, &w, &bp) - loss(&x, &w, &bm)) / (2.0 * eps);
            let an = grads.grad_bias.data()[i];
            assert!((fd - an).abs() < 0.05, "dB[{i}]: fd {fd} vs an {an}");
        }
    }

    #[test]
    fn im2col_col2im_adjoint() {
        // <im2col(x), y> == <x, col2im(y)> : the two ops are adjoint.
        let mut rng = Rng64::new(3);
        let x = Tensor::rand_normal(&[2, 6, 6], 0.0, 1.0, &mut rng);
        let spec = ConvSpec::new(3, 2, 1);
        let cols = im2col(&x, &spec);
        let y = Tensor::rand_normal(cols.dims(), 0.0, 1.0, &mut rng);
        let lhs = cols.dot(&y);
        let folded = col2im(&y, 2, 6, 6, &spec);
        let rhs = x.dot(&folded);
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }
}
