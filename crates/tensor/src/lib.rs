//! Dense `f32` tensor substrate for the SMART-PAF reproduction.
//!
//! This crate provides the minimal numerical kernel the rest of the
//! workspace builds on: a contiguous row-major [`Tensor`], elementwise
//! and linear-algebra operations, im2col-based 2-D convolution with
//! gradients, pooling with gradients, and deterministic random
//! initialisation.
//!
//! Everything is `f32` and single-threaded by design: the SMART-PAF
//! experiments care about *relative* accuracy/latency relations and
//! deterministic reproducibility, not peak FLOPs.
//!
//! # Example
//!
//! ```
//! use smartpaf_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```

mod conv;
mod init;
mod ops;
mod pool;
mod shape;
mod tensor;

pub use conv::{conv2d, conv2d_backward, im2col, Conv2dGrads, ConvSpec};
pub use init::Rng64;
pub use pool::{
    avg_pool2d, avg_pool2d_backward, global_avg_pool, global_avg_pool_backward, max_pool2d,
    max_pool2d_backward, MaxPoolIndices, PoolSpec,
};
pub use shape::Shape;
pub use tensor::Tensor;

#[cfg(test)]
mod proptests;
