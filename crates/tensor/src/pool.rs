//! Pooling operators with gradients.
//!
//! MaxPooling is one of the two non-polynomial operators SMART-PAF
//! replaces, so the plaintext reference implementation here is the
//! ground truth every PAF-based Max approximation is compared against.

use crate::tensor::Tensor;

/// Geometry of a pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolSpec {
    /// Window size (square).
    pub k: usize,
    /// Stride.
    pub stride: usize,
}

impl PoolSpec {
    /// Creates a pooling spec.
    ///
    /// # Panics
    ///
    /// Panics if `k` or `stride` is zero.
    pub fn new(k: usize, stride: usize) -> Self {
        assert!(
            k > 0 && stride > 0,
            "pool window and stride must be positive"
        );
        PoolSpec { k, stride }
    }

    fn out_dim(&self, h: usize) -> usize {
        assert!(h >= self.k, "pool window {} larger than input {h}", self.k);
        (h - self.k) / self.stride + 1
    }
}

/// Flat indices of the winners of a max-pool, needed for the backward
/// pass.
#[derive(Debug, Clone)]
pub struct MaxPoolIndices {
    indices: Vec<usize>,
    input_dims: Vec<usize>,
}

/// Max pooling over `[N, C, H, W]`.
///
/// Returns the pooled tensor and the winner indices for
/// [`max_pool2d_backward`].
///
/// # Panics
///
/// Panics unless the input is 4-D and the window fits.
pub fn max_pool2d(input: &Tensor, spec: &PoolSpec) -> (Tensor, MaxPoolIndices) {
    assert_eq!(
        input.shape().ndim(),
        4,
        "max_pool2d input must be [N,C,H,W]"
    );
    let (n, c, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let oh = spec.out_dim(h);
    let ow = spec.out_dim(w);
    let mut out = Vec::with_capacity(n * c * oh * ow);
    let mut idx = Vec::with_capacity(n * c * oh * ow);
    let data = input.data();
    for b in 0..n {
        for ci in 0..c {
            let base = (b * c + ci) * h * w;
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_at = 0;
                    for ki in 0..spec.k {
                        for kj in 0..spec.k {
                            let p = base + (oi * spec.stride + ki) * w + oj * spec.stride + kj;
                            if data[p] > best {
                                best = data[p];
                                best_at = p;
                            }
                        }
                    }
                    out.push(best);
                    idx.push(best_at);
                }
            }
        }
    }
    (
        Tensor::from_vec(out, &[n, c, oh, ow]),
        MaxPoolIndices {
            indices: idx,
            input_dims: input.dims().to_vec(),
        },
    )
}

/// Backward pass of [`max_pool2d`]: routes each output gradient to the
/// window winner.
///
/// # Panics
///
/// Panics if `grad_output` has a different element count than the
/// forward output.
pub fn max_pool2d_backward(grad_output: &Tensor, indices: &MaxPoolIndices) -> Tensor {
    assert_eq!(
        grad_output.numel(),
        indices.indices.len(),
        "grad_output size mismatch"
    );
    let mut grad_in = Tensor::zeros(&indices.input_dims);
    for (g, &p) in grad_output.data().iter().zip(&indices.indices) {
        grad_in.data_mut()[p] += g;
    }
    grad_in
}

/// Average pooling over `[N, C, H, W]`.
///
/// # Panics
///
/// Panics unless the input is 4-D and the window fits.
pub fn avg_pool2d(input: &Tensor, spec: &PoolSpec) -> Tensor {
    assert_eq!(
        input.shape().ndim(),
        4,
        "avg_pool2d input must be [N,C,H,W]"
    );
    let (n, c, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let oh = spec.out_dim(h);
    let ow = spec.out_dim(w);
    let inv = 1.0 / (spec.k * spec.k) as f32;
    let mut out = Vec::with_capacity(n * c * oh * ow);
    let data = input.data();
    for b in 0..n {
        for ci in 0..c {
            let base = (b * c + ci) * h * w;
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut s = 0.0;
                    for ki in 0..spec.k {
                        for kj in 0..spec.k {
                            s += data[base + (oi * spec.stride + ki) * w + oj * spec.stride + kj];
                        }
                    }
                    out.push(s * inv);
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c, oh, ow])
}

/// Backward pass of [`avg_pool2d`], spreading gradients uniformly over
/// each window.
pub fn avg_pool2d_backward(grad_output: &Tensor, input_dims: &[usize], spec: &PoolSpec) -> Tensor {
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    let oh = spec.out_dim(h);
    let ow = spec.out_dim(w);
    assert_eq!(grad_output.dims(), &[n, c, oh, ow], "grad_output mismatch");
    let inv = 1.0 / (spec.k * spec.k) as f32;
    let mut grad_in = Tensor::zeros(input_dims);
    let g = grad_output.data();
    for b in 0..n {
        for ci in 0..c {
            let base = (b * c + ci) * h * w;
            let obase = (b * c + ci) * oh * ow;
            for oi in 0..oh {
                for oj in 0..ow {
                    let gv = g[obase + oi * ow + oj] * inv;
                    for ki in 0..spec.k {
                        for kj in 0..spec.k {
                            grad_in.data_mut()
                                [base + (oi * spec.stride + ki) * w + oj * spec.stride + kj] += gv;
                        }
                    }
                }
            }
        }
    }
    grad_in
}

/// Global average pool: `[N, C, H, W] -> [N, C]`.
pub fn global_avg_pool(input: &Tensor) -> Tensor {
    assert_eq!(input.shape().ndim(), 4, "global_avg_pool input must be 4-D");
    let (n, c, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let inv = 1.0 / (h * w) as f32;
    let mut out = Vec::with_capacity(n * c);
    for b in 0..n {
        for ci in 0..c {
            let base = (b * c + ci) * h * w;
            out.push(input.data()[base..base + h * w].iter().sum::<f32>() * inv);
        }
    }
    Tensor::from_vec(out, &[n, c])
}

/// Backward pass of [`global_avg_pool`].
pub fn global_avg_pool_backward(grad_output: &Tensor, input_dims: &[usize]) -> Tensor {
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    assert_eq!(grad_output.dims(), &[n, c], "grad_output mismatch");
    let inv = 1.0 / (h * w) as f32;
    let mut grad_in = Tensor::zeros(input_dims);
    for b in 0..n {
        for ci in 0..c {
            let gv = grad_output.data()[b * c + ci] * inv;
            let base = (b * c + ci) * h * w;
            for p in 0..h * w {
                grad_in.data_mut()[base + p] = gv;
            }
        }
    }
    grad_in
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Rng64;

    #[test]
    fn maxpool_known_values() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 3.0, //
                4.0, 0.0, 1.0, 2.0, //
                7.0, 1.0, 0.0, 0.0, //
                2.0, 3.0, 4.0, 9.0,
            ],
            &[1, 1, 4, 4],
        );
        let (y, _) = max_pool2d(&x, &PoolSpec::new(2, 2));
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[4.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_winner() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let (_, idx) = max_pool2d(&x, &PoolSpec::new(2, 2));
        let g = Tensor::from_vec(vec![10.0], &[1, 1, 1, 1]);
        let gx = max_pool2d_backward(&g, &idx);
        assert_eq!(gx.data(), &[0.0, 0.0, 0.0, 10.0]);
    }

    #[test]
    fn avgpool_known_values() {
        let x = Tensor::arange(16, 0.0, 1.0).reshape(&[1, 1, 4, 4]);
        let y = avg_pool2d(&x, &PoolSpec::new(2, 2));
        assert_eq!(y.data(), &[2.5, 4.5, 10.5, 12.5]);
    }

    #[test]
    fn avgpool_backward_finite_difference() {
        let mut rng = Rng64::new(21);
        let x = Tensor::rand_normal(&[1, 2, 4, 4], 0.0, 1.0, &mut rng);
        let spec = PoolSpec::new(2, 2);
        let y = avg_pool2d(&x, &spec);
        let gout = Tensor::ones(y.dims());
        let gx = avg_pool2d_backward(&gout, x.dims(), &spec);
        let eps = 1e-2;
        for &i in &[0usize, 7, 15, 31] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = (avg_pool2d(&xp, &spec).sum() - avg_pool2d(&xm, &spec).sum()) / (2.0 * eps);
            assert!((fd - gx.data()[i]).abs() < 1e-2);
        }
    }

    #[test]
    fn global_avg_matches_mean() {
        let x = Tensor::arange(8, 1.0, 1.0).reshape(&[1, 2, 2, 2]);
        let y = global_avg_pool(&x);
        assert_eq!(y.dims(), &[1, 2]);
        assert_eq!(y.data(), &[2.5, 6.5]);
    }

    #[test]
    fn global_avg_backward_uniform() {
        let g = Tensor::from_vec(vec![4.0, 8.0], &[1, 2]);
        let gx = global_avg_pool_backward(&g, &[1, 2, 2, 2]);
        assert_eq!(gx.data(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn overlapping_maxpool_stride_one() {
        let x = Tensor::from_vec(
            vec![1.0, 5.0, 2.0, 3.0, 4.0, 0.0, 6.0, 1.0, 2.0],
            &[1, 1, 3, 3],
        );
        let (y, _) = max_pool2d(&x, &PoolSpec::new(2, 1));
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[5.0, 5.0, 6.0, 4.0]);
    }
}
