//! Property-based tests for core tensor invariants.

use crate::conv::{conv2d, conv2d_backward, ConvSpec};
use crate::init::Rng64;
use crate::pool::{avg_pool2d, max_pool2d, max_pool2d_backward, PoolSpec};
use crate::tensor::Tensor;
use proptest::prelude::*;

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, len)
}

proptest! {
    /// add is commutative.
    #[test]
    fn add_commutative(a in small_vec(24), b in small_vec(24)) {
        let ta = Tensor::from_vec(a, &[4, 6]);
        let tb = Tensor::from_vec(b, &[4, 6]);
        prop_assert_eq!(ta.add(&tb), tb.add(&ta));
    }

    /// (a - b) + b == a up to float rounding.
    #[test]
    fn sub_add_roundtrip(a in small_vec(12), b in small_vec(12)) {
        let ta = Tensor::from_vec(a, &[12]);
        let tb = Tensor::from_vec(b, &[12]);
        let r = ta.sub(&tb).add(&tb);
        for (x, y) in r.data().iter().zip(ta.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// matmul distributes over addition: A(B+C) = AB + AC.
    #[test]
    fn matmul_distributive(a in small_vec(6), b in small_vec(6), c in small_vec(6)) {
        let ta = Tensor::from_vec(a, &[2, 3]);
        let tb = Tensor::from_vec(b, &[3, 2]);
        let tc = Tensor::from_vec(c, &[3, 2]);
        let lhs = ta.matmul(&tb.add(&tc));
        let rhs = ta.matmul(&tb).add(&ta.matmul(&tc));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// (AB)^T == B^T A^T.
    #[test]
    fn matmul_transpose_law(a in small_vec(6), b in small_vec(6)) {
        let ta = Tensor::from_vec(a, &[2, 3]);
        let tb = Tensor::from_vec(b, &[3, 2]);
        let lhs = ta.matmul(&tb).transpose2d();
        let rhs = tb.transpose2d().matmul(&ta.transpose2d());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// max pooling output is >= average pooling output elementwise.
    #[test]
    fn maxpool_dominates_avgpool(v in small_vec(32)) {
        let x = Tensor::from_vec(v, &[1, 2, 4, 4]);
        let spec = PoolSpec::new(2, 2);
        let (mx, _) = max_pool2d(&x, &spec);
        let av = avg_pool2d(&x, &spec);
        for (m, a) in mx.data().iter().zip(av.data()) {
            prop_assert!(m >= a);
        }
    }

    /// maxpool backward conserves total gradient mass.
    #[test]
    fn maxpool_backward_mass(v in small_vec(32), g in small_vec(8)) {
        let x = Tensor::from_vec(v, &[1, 2, 4, 4]);
        let (_, idx) = max_pool2d(&x, &PoolSpec::new(2, 2));
        let gout = Tensor::from_vec(g, &[1, 2, 2, 2]);
        let gin = max_pool2d_backward(&gout, &idx);
        prop_assert!((gin.sum() - gout.sum()).abs() < 1e-3);
    }

    /// conv2d is linear in the input: conv(ax) == a * conv(x) (zero bias).
    #[test]
    fn conv_linear_in_input(v in small_vec(32), alpha in -3.0f32..3.0) {
        let x = Tensor::from_vec(v, &[1, 2, 4, 4]);
        let mut rng = Rng64::new(99);
        let w = Tensor::rand_normal(&[2, 2, 3, 3], 0.0, 1.0, &mut rng);
        let b = Tensor::zeros(&[2]);
        let spec = ConvSpec::new(3, 1, 1);
        let lhs = conv2d(&x.scale(alpha), &w, &b, &spec);
        let rhs = conv2d(&x, &w, &b, &spec).scale(alpha);
        for (p, q) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((p - q).abs() < 1e-2);
        }
    }

    /// Weight gradient is linear in grad_output.
    #[test]
    fn conv_backward_linear(v in small_vec(32)) {
        let x = Tensor::from_vec(v, &[1, 2, 4, 4]);
        let mut rng = Rng64::new(7);
        let w = Tensor::rand_normal(&[2, 2, 3, 3], 0.0, 1.0, &mut rng);
        let spec = ConvSpec::new(3, 1, 1);
        let g1 = Tensor::ones(&[1, 2, 4, 4]);
        let g2 = g1.scale(2.0);
        let d1 = conv2d_backward(&x, &w, &g1, &spec);
        let d2 = conv2d_backward(&x, &w, &g2, &spec);
        for (p, q) in d2.grad_weight.data().iter().zip(d1.grad_weight.data()) {
            prop_assert!((p - 2.0 * q).abs() < 1e-2);
        }
    }

    /// reshape preserves data and sum.
    #[test]
    fn reshape_preserves_sum(v in small_vec(24)) {
        let t = Tensor::from_vec(v, &[2, 3, 4]);
        let r = t.reshape(&[6, 4]);
        prop_assert_eq!(t.data(), r.data());
    }
}
