//! ReLU reduction (DeepReDuce, Jha et al. 2021) combined with
//! SMART-PAF — the "orthogonal" combination the paper's §7 points at.
//!
//! DeepReDuce observes that many ReLUs contribute little to accuracy
//! and can be culled (replaced by the identity) before private
//! inference. Each culled slot costs **zero** multiplicative depth
//! under FHE, so culling composes multiplicatively with SMART-PAF's
//! low-degree replacement of the surviving slots: fewer slots × a
//! cheaper PAF per slot.
//!
//! This module ranks ReLU slots by a leave-one-out sensitivity score,
//! culls the `k` least sensitive, replaces the survivors with PAFs,
//! and reports accuracy plus the FHE depth saved.

use crate::config::TrainConfig;
use crate::trainer::evaluate;
use smartpaf_datasets::SynthDataset;
use smartpaf_nn::{Model, ScaleMode, SlotRef};
use smartpaf_polyfit::CompositePaf;

/// Leave-one-out sensitivity of every ReLU slot: the validation
/// accuracy drop when that slot alone becomes an identity. Returned in
/// slot order (MaxPool slots get `f32::INFINITY` — never culled).
pub fn relu_sensitivity(
    model: &mut Model,
    dataset: &SynthDataset,
    config: &TrainConfig,
) -> Vec<f32> {
    let baseline = evaluate(model, dataset, config);
    let n = crate::replace::num_slots(model);
    let mut out = Vec::with_capacity(n);
    for pos in 0..n {
        let mut is_relu = false;
        let mut i = 0;
        model.visit_slots(&mut |s| {
            if i == pos {
                if let SlotRef::Relu(r) = s {
                    r.cull();
                    is_relu = true;
                }
            }
            i += 1;
        });
        if !is_relu {
            out.push(f32::INFINITY);
            continue;
        }
        let acc = evaluate(model, dataset, config);
        out.push(baseline - acc);
        // Restore the slot.
        let mut i = 0;
        model.visit_slots(&mut |s| {
            if i == pos {
                if let SlotRef::Relu(r) = s {
                    r.restore_exact();
                }
            }
            i += 1;
        });
    }
    out
}

/// Culls the `k` ReLU slots with the smallest sensitivity. Returns the
/// culled slot positions (inference order).
///
/// # Panics
///
/// Panics if `k` exceeds the number of ReLU slots.
pub fn cull_least_sensitive(model: &mut Model, sensitivity: &[f32], k: usize) -> Vec<usize> {
    let mut ranked: Vec<(usize, f32)> = sensitivity
        .iter()
        .copied()
        .enumerate()
        .filter(|(_, s)| s.is_finite())
        .collect();
    assert!(
        k <= ranked.len(),
        "cannot cull {k} of {} ReLUs",
        ranked.len()
    );
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite sensitivity"));
    let mut targets: Vec<usize> = ranked[..k].iter().map(|&(i, _)| i).collect();
    targets.sort_unstable();
    let mut i = 0;
    model.visit_slots(&mut |s| {
        if targets.contains(&i) {
            if let SlotRef::Relu(r) = s {
                r.cull();
            }
        }
        i += 1;
    });
    targets
}

/// Replaces every *surviving* (non-culled) ReLU slot with a PAF and
/// every MaxPool slot too, leaving culled slots as identities.
pub fn replace_survivors(model: &mut Model, paf: &CompositePaf) {
    model.visit_slots(&mut |s| match s {
        SlotRef::Relu(r) => {
            if !r.is_culled() {
                r.replace_with(paf, ScaleMode::Dynamic);
            }
        }
        SlotRef::MaxPool(p) => p.replace_with(paf, ScaleMode::Dynamic),
    });
}

/// Outcome of a ReLU-reduction + PAF-replacement combination.
#[derive(Debug, Clone)]
pub struct ComboReport {
    /// Number of ReLU slots culled.
    pub culled: usize,
    /// Positions culled (inference order).
    pub culled_positions: Vec<usize>,
    /// Validation accuracy of the exact model.
    pub exact_acc: f32,
    /// Validation accuracy after culling only.
    pub culled_acc: f32,
    /// Validation accuracy after culling + PAF replacement.
    pub combo_acc: f32,
    /// Fraction of per-inference PAF-ReLU work avoided by culling
    /// (depth-weighted: culled slots cost zero sign evaluations).
    pub work_saved: f32,
}

/// Runs the full combination experiment: sensitivity ranking → cull
/// `k` → PAF-replace the survivors → measure.
pub fn deepreduce_combo(
    model: &mut Model,
    dataset: &SynthDataset,
    config: &TrainConfig,
    paf: &CompositePaf,
    k: usize,
) -> ComboReport {
    let exact_acc = evaluate(model, dataset, config);
    let sens = relu_sensitivity(model, dataset, config);
    let relu_count = sens.iter().filter(|s| s.is_finite()).count();
    let culled_positions = cull_least_sensitive(model, &sens, k);
    let culled_acc = evaluate(model, dataset, config);
    replace_survivors(model, paf);
    let combo_acc = evaluate(model, dataset, config);
    ComboReport {
        culled: k,
        culled_positions,
        exact_acc,
        culled_acc,
        combo_acc,
        work_saved: k as f32 / relu_count.max(1) as f32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::pretrain;
    use smartpaf_datasets::{SynthDataset, SynthSpec};
    use smartpaf_nn::mini_cnn;
    use smartpaf_polyfit::PafForm;
    use smartpaf_tensor::Rng64;

    fn setup() -> (Model, SynthDataset, TrainConfig) {
        let spec = SynthSpec::tiny(31);
        let dataset = SynthDataset::new(spec);
        let config = TrainConfig::test_scale(31);
        let mut rng = Rng64::new(31);
        let mut model = mini_cnn(spec.classes, 0.25, &mut rng);
        pretrain(&mut model, &dataset, &config, 2);
        (model, dataset, config)
    }

    #[test]
    fn sensitivity_marks_pools_infinite() {
        let (mut model, dataset, config) = setup();
        let sens = relu_sensitivity(&mut model, &dataset, &config);
        assert_eq!(sens.len(), 8); // 6 ReLU + 2 MaxPool
        let infinite = sens.iter().filter(|s| s.is_infinite()).count();
        assert_eq!(infinite, 2);
    }

    #[test]
    fn sensitivity_restores_model() {
        let (mut model, dataset, config) = setup();
        let before = evaluate(&mut model, &dataset, &config);
        let _ = relu_sensitivity(&mut model, &dataset, &config);
        let after = evaluate(&mut model, &dataset, &config);
        assert_eq!(
            before, after,
            "sensitivity probing must be side-effect free"
        );
    }

    #[test]
    fn cull_marks_expected_count() {
        let (mut model, dataset, config) = setup();
        let sens = relu_sensitivity(&mut model, &dataset, &config);
        let culled = cull_least_sensitive(&mut model, &sens, 3);
        assert_eq!(culled.len(), 3);
        let mut n_culled = 0;
        model.visit_slots(&mut |s| {
            if let SlotRef::Relu(r) = s {
                n_culled += r.is_culled() as usize;
            }
        });
        assert_eq!(n_culled, 3);
    }

    #[test]
    #[should_panic(expected = "cannot cull")]
    fn cull_rejects_oversized_k() {
        let (mut model, dataset, config) = setup();
        let sens = relu_sensitivity(&mut model, &dataset, &config);
        let _ = cull_least_sensitive(&mut model, &sens, 7);
    }

    #[test]
    fn survivors_get_pafs_culled_stay_identity() {
        let (mut model, dataset, config) = setup();
        let sens = relu_sensitivity(&mut model, &dataset, &config);
        let _ = cull_least_sensitive(&mut model, &sens, 2);
        replace_survivors(&mut model, &CompositePaf::from_form(PafForm::F1G2));
        let (mut culled, mut replaced) = (0, 0);
        model.visit_slots(&mut |s| {
            if let SlotRef::Relu(r) = s {
                culled += r.is_culled() as usize;
                replaced += r.is_replaced() as usize;
            }
        });
        assert_eq!(culled, 2);
        assert_eq!(replaced, 4);
    }

    #[test]
    fn combo_reports_consistent_fields() {
        let (mut model, dataset, config) = setup();
        let paf = CompositePaf::from_form(PafForm::Alpha7);
        let report = deepreduce_combo(&mut model, &dataset, &config, &paf, 2);
        assert_eq!(report.culled, 2);
        assert_eq!(report.culled_positions.len(), 2);
        assert!((report.work_saved - 2.0 / 6.0).abs() < 1e-6);
        assert!(report.exact_acc >= 0.0 && report.exact_acc <= 1.0);
        assert!(report.culled_acc >= 0.0 && report.combo_acc >= 0.0);
    }

    #[test]
    fn culling_least_sensitive_hurts_less_than_most_sensitive() {
        // Core DeepReDuce premise: the ranking is informative. Culling
        // the k *least* sensitive slots should not hurt more than
        // culling the k *most* sensitive ones.
        let (mut model, dataset, config) = setup();
        let sens = relu_sensitivity(&mut model, &dataset, &config);
        let k = 2;
        let _ = cull_least_sensitive(&mut model, &sens, k);
        let least_acc = evaluate(&mut model, &dataset, &config);
        // Restore, then cull the most sensitive instead.
        model.visit_slots(&mut |s| {
            if let SlotRef::Relu(r) = s {
                if r.is_culled() {
                    r.restore_exact();
                }
            }
        });
        let mut inverted: Vec<f32> = sens
            .iter()
            .map(|&s| if s.is_finite() { -s } else { s })
            .collect();
        // MaxPools stay infinite (never culled) in the inverted list.
        for v in inverted.iter_mut() {
            if v.is_infinite() && *v < 0.0 {
                *v = f32::INFINITY;
            }
        }
        let _ = cull_least_sensitive(&mut model, &inverted, k);
        let most_acc = evaluate(&mut model, &dataset, &config);
        assert!(
            least_acc >= most_acc - 1e-6,
            "least-sensitive cull {least_acc} vs most-sensitive cull {most_acc}"
        );
    }
}
